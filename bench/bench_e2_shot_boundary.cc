/// \file bench_e2_shot_boundary.cc
/// E2 — segment detector quality (paper §3): shot-boundary precision /
/// recall / F1 for a fixed-threshold sweep under three histogram distances
/// and several noise levels, plus the adaptive-threshold detector
/// (the configuration the demo ran). Expected shape (DESIGN.md §4): a broad
/// high-F1 plateau that narrows as sensor noise grows; the adaptive
/// threshold stays at the plateau without tuning.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench_util.h"
#include "detectors/shot_boundary.h"
#include "util/stats.h"
#include "vision/frame_feature_cache.h"
#include "vision/histogram.h"
#include "vision/kernels.h"

namespace {

using namespace cobra;  // NOLINT

/// The seed's ColorHistogram::FromRegion hot loop, reproduced faithfully:
/// per-call double-bin vector, At() addressing, and — crucially — a
/// *runtime* bins_per_channel, so the three per-pixel divisions stay real
/// divisions exactly as they did behind the seed's function boundary
/// (noinline keeps the constant from propagating in this reproduction).
__attribute__((noinline)) std::vector<double> LegacyHistogram(
    const media::Frame& frame, int bins_per_channel) {
  const int shift_div = 256 / bins_per_channel;
  std::vector<double> values(static_cast<size_t>(bins_per_channel) *
                                 bins_per_channel * bins_per_channel,
                             0.0);
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const media::Rgb& p = frame.At(x, y);
      size_t bin = (static_cast<size_t>(p.r / shift_div) * bins_per_channel +
                    p.g / shift_div) *
                       bins_per_channel +
                   p.b / shift_div;
      values[bin] += 1.0;
    }
  }
  const double total = static_cast<double>(frame.PixelCount());
  for (double& v : values) v /= total;
  return values;
}

/// Pixel-kernel throughput for the histogram hot path (DESIGN.md §4d):
/// the seed's per-pixel FromRegion (reproduced above) vs the current
/// kernel-backed ColorHistogram::FromFrame at the scalar tier and the
/// dispatched SIMD tier, all single-thread API-level measurements.
void PrintKernelThroughput() {
  bench::PrintHeader("E2", "histogram pixel-kernel throughput (1 thread)");
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  media::Frame frame = broadcast.video->GetFrame(0).TakeValue();
  const int64_t pixels = frame.PixelCount();
  constexpr int kBins = 8;     // ShotBoundaryConfig default
  constexpr int kPasses = 64;  // frames binned per timed repetition
  constexpr int kReps = 9;
  const size_t num_bins = static_cast<size_t>(kBins) * kBins * kBins;
  std::printf("%dx%d frame, %d^3 bins, p50 of %d reps x %d frames\n",
              frame.width(), frame.height(), kBins, kReps, kPasses);

  // The bin count reaches the reproduction as an opaque runtime value, as it
  // reached the seed library from ShotBoundaryConfig — otherwise IPA
  // constant propagation rewrites the per-pixel divisions into shifts and
  // the "legacy" row silently measures a loop the seed never ran.
  int runtime_bins = kBins;
  benchmark::DoNotOptimize(runtime_bins);
  const double legacy = bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      std::vector<double> values = LegacyHistogram(frame, runtime_bins);
      benchmark::DoNotOptimize(values.data());
    }
  });

  auto kernel_rate = [&](vision::kernels::SimdLevel level) {
    const auto previous = vision::kernels::SetActiveLevel(level);
    const double rate = bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
      for (int pass = 0; pass < kPasses; ++pass) {
        auto histogram = vision::ColorHistogram::FromFrame(frame, kBins);
        benchmark::DoNotOptimize(histogram);
      }
    });
    vision::kernels::SetActiveLevel(previous);
    return rate;
  };
  const double scalar = kernel_rate(vision::kernels::SimdLevel::kScalar);
  const double simd = kernel_rate(vision::kernels::BestSupportedLevel());
  const char* simd_name =
      vision::kernels::SimdLevelName(vision::kernels::BestSupportedLevel());

  std::printf("%-22s %10.1f Mpix/s\n", "legacy per-pixel loop", legacy);
  std::printf("%-22s %10.1f Mpix/s\n", "kernel (scalar)", scalar);
  std::printf("kernel (%-13s %10.1f Mpix/s\n",
              (std::string(simd_name) + ")").c_str(), simd);
  std::printf("speedup vs legacy: %.2fx\n", simd / legacy);
  bench::PrintJsonMetric("e2_shot_boundary", "hist_legacy_mpixps", legacy);
  bench::PrintJsonMetric("e2_shot_boundary", "hist_scalar_mpixps", scalar);
  bench::PrintJsonMetric("e2_shot_boundary", "hist_simd_mpixps", simd);
  bench::PrintJsonMetric("e2_shot_boundary", "hist_simd_speedup",
                         simd / legacy);

  // L1 distance over two normalized 8^3-bin histograms: the seed's fabs
  // loop vs the fixed-tree l1 kernel.
  media::Frame other =
      broadcast.video->GetFrame(broadcast.video->num_frames() / 2).TakeValue();
  const std::vector<double> ha = LegacyHistogram(frame, kBins);
  const std::vector<double> hb = LegacyHistogram(other, kBins);
  auto median_us_per_call = [kReps](auto&& fn) {
    constexpr int kCalls = 50000;
    std::vector<double> us;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::WallTimer timer;
      for (int call = 0; call < kCalls; ++call) fn();
      us.push_back(timer.Millis() * 1e3 / kCalls);
    }
    std::sort(us.begin(), us.end());
    return us[us.size() / 2];
  };
  const double l1_legacy = median_us_per_call([&] {
    double d = 0.0;
    for (size_t i = 0; i < num_bins; ++i) d += std::fabs(ha[i] - hb[i]);
    benchmark::DoNotOptimize(d);
  });
  const double l1_kernel = median_us_per_call([&] {
    double d = vision::kernels::Ops().l1(ha.data(), hb.data(), num_bins);
    benchmark::DoNotOptimize(d);
  });
  std::printf("L1 distance (512 bins): legacy %.4f us, kernel %.4f us "
              "(%.2fx)\n",
              l1_legacy, l1_kernel, l1_legacy / l1_kernel);
  bench::PrintJsonMetric("e2_shot_boundary", "l1_legacy_us", l1_legacy);
  bench::PrintJsonMetric("e2_shot_boundary", "l1_kernel_us", l1_kernel);
  bench::PrintJsonMetric("e2_shot_boundary", "l1_speedup",
                         l1_legacy / l1_kernel);
  bench::PrintRule();
}

/// The E2 workload that the shared frame-feature cache deduplicates, all
/// single-threaded: the three metric sweeps recompute identical per-frame
/// histograms (only the distance differs), and the gradual-transition
/// detector's verification pass re-reads histograms the signal pass already
/// built. One attached cache turns all of that into hits.
double TimeSweepWorkload(const media::VideoSource& video,
                         vision::FrameFeatureCache* cache) {
  const vision::HistogramDistance kMetrics[] = {
      vision::HistogramDistance::kL1, vision::HistogramDistance::kChiSquare,
      vision::HistogramDistance::kIntersection};
  bench::WallTimer timer;
  for (auto metric : kMetrics) {
    detectors::ShotBoundaryConfig config;
    config.metric = metric;
    detectors::ShotBoundaryDetector detector(config);
    detector.SetExecution(cache, /*pool=*/nullptr);
    auto distances = detector.ComputeDistances(video).TakeValue();
    benchmark::DoNotOptimize(distances);
  }
  detectors::ShotBoundaryConfig gradual_config;
  gradual_config.detect_gradual = true;
  detectors::ShotBoundaryDetector gradual(gradual_config);
  gradual.SetExecution(cache, /*pool=*/nullptr);
  auto result = gradual.Detect(video).TakeValue();
  benchmark::DoNotOptimize(result);
  return timer.Millis();
}

void PrintCacheEffect() {
  bench::PrintHeader("E2", "shared frame-feature cache (num_threads=1)");
  auto broadcast = media::TennisBroadcastSynthesizer(bench::DefaultBroadcast())
                       .Synthesize()
                       .TakeValue();
  std::printf("3-metric sweep + gradual pass over %lld frames:\n",
              static_cast<long long>(broadcast.video->num_frames()));

  TimeSweepWorkload(*broadcast.video, nullptr);  // warm-up
  double uncached_ms = TimeSweepWorkload(*broadcast.video, nullptr);
  vision::FrameFeatureCache cache(*broadcast.video);
  double cached_ms = TimeSweepWorkload(*broadcast.video, &cache);
  auto stats = cache.stats();

  std::printf("%-22s %12.1f\n", "uncached", uncached_ms);
  std::printf("%-22s %12.1f   (hits=%lld misses=%lld)\n", "cached", cached_ms,
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses));
  std::printf("speedup from caching: %.2fx\n", uncached_ms / cached_ms);
  bench::PrintJsonMetric("e2_shot_boundary", "uncached_ms", uncached_ms);
  bench::PrintJsonMetric("e2_shot_boundary", "cached_ms", cached_ms);
  bench::PrintJsonMetric("e2_shot_boundary", "cache_speedup",
                         uncached_ms / cached_ms);
  bench::PrintJsonMetric("e2_shot_boundary", "cache_hits",
                         static_cast<double>(stats.hits));
  bench::PrintRule();
}

void RunSweep() {
  bench::PrintHeader("E2", "shot boundary detection quality");
  const double kNoiseLevels[] = {0.0, 4.0, 8.0, 12.0};
  const vision::HistogramDistance kMetrics[] = {
      vision::HistogramDistance::kL1, vision::HistogramDistance::kChiSquare,
      vision::HistogramDistance::kIntersection};
  const double kThresholds[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.2};

  for (double noise : kNoiseLevels) {
    auto broadcast = media::TennisBroadcastSynthesizer(
                         bench::DefaultBroadcast(42, noise))
                         .Synthesize()
                         .TakeValue();
    auto cuts = broadcast.truth.CutPositions();
    std::printf("\nnoise sigma = %.0f (%zu true cuts, %lld frames)\n", noise,
                cuts.size(),
                static_cast<long long>(broadcast.video->num_frames()));
    std::printf("%-14s %-10s %8s %8s %8s\n", "metric", "threshold", "P", "R",
                "F1");
    for (auto metric : kMetrics) {
      detectors::ShotBoundaryConfig config;
      config.metric = metric;
      config.mode = detectors::ThresholdMode::kFixed;
      detectors::ShotBoundaryDetector detector(config);
      auto distances = detector.ComputeDistances(*broadcast.video).TakeValue();
      for (double threshold : kThresholds) {
        detectors::ShotBoundaryConfig sweep_config = config;
        sweep_config.fixed_threshold = threshold;
        detectors::ShotBoundaryDetector sweep(sweep_config);
        auto found = sweep.ThresholdSignal(distances);
        PrecisionRecall pr = MatchWithTolerance(cuts, found, 2);
        std::printf("%-14s %-10.2f %8.3f %8.3f %8.3f\n",
                    vision::HistogramDistanceToString(metric), threshold,
                    pr.Precision(), pr.Recall(), pr.F1());
      }
      // Adaptive row (the demo's default).
      detectors::ShotBoundaryConfig adaptive_config;
      adaptive_config.metric = metric;
      adaptive_config.mode = detectors::ThresholdMode::kAdaptive;
      detectors::ShotBoundaryDetector adaptive(adaptive_config);
      auto found = adaptive.ThresholdSignal(distances);
      PrecisionRecall pr = MatchWithTolerance(cuts, found, 2);
      std::printf("%-14s %-10s %8.3f %8.3f %8.3f\n",
                  vision::HistogramDistanceToString(metric), "adaptive",
                  pr.Precision(), pr.Recall(), pr.F1());
    }
  }

  // --- gradual transitions (dissolves): naive vs twin comparison ---
  std::printf("\ngradual transitions (50%% of cuts are 12-frame dissolves):\n");
  std::printf("%-26s %8s %8s %8s\n", "method", "P", "R", "F1");
  auto dissolve_config = bench::DefaultBroadcast(11);
  dissolve_config.dissolve_prob = 0.5;
  auto dissolved = media::TennisBroadcastSynthesizer(dissolve_config)
                       .Synthesize()
                       .TakeValue();
  auto all_cuts = dissolved.truth.CutPositions();
  {
    detectors::ShotBoundaryDetector naive;
    auto result = naive.Detect(*dissolved.video).TakeValue();
    PrecisionRecall pr = MatchWithTolerance(all_cuts, result.boundaries, 4);
    std::printf("%-26s %8.3f %8.3f %8.3f\n", "hard-cut only", pr.Precision(),
                pr.Recall(), pr.F1());
  }
  {
    detectors::ShotBoundaryConfig config;
    config.detect_gradual = true;
    detectors::ShotBoundaryDetector twin(config);
    auto result = twin.Detect(*dissolved.video).TakeValue();
    std::vector<int64_t> combined = result.boundaries;
    for (const auto& t : result.gradual) combined.push_back(t.begin);
    PrecisionRecall pr = MatchWithTolerance(all_cuts, combined, 4);
    std::printf("%-26s %8.3f %8.3f %8.3f\n", "twin comparison (+gradual)",
                pr.Precision(), pr.Recall(), pr.F1());
  }
  bench::PrintRule();
}

void BM_DistanceSignal(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 2;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::ShotBoundaryConfig boundary_config;
  boundary_config.metric =
      static_cast<vision::HistogramDistance>(state.range(0));
  detectors::ShotBoundaryDetector detector(boundary_config);
  for (auto _ : state) {
    auto distances = detector.ComputeDistances(*broadcast.video);
    benchmark::DoNotOptimize(distances);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistanceSignal)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cobra::bench::OpenJsonArtifact("BENCH_E2.json");
  RunSweep();
  PrintCacheEffect();
  PrintKernelThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
