/// \file bench_e2_shot_boundary.cc
/// E2 — segment detector quality (paper §3): shot-boundary precision /
/// recall / F1 for a fixed-threshold sweep under three histogram distances
/// and several noise levels, plus the adaptive-threshold detector
/// (the configuration the demo ran). Expected shape (DESIGN.md §4): a broad
/// high-F1 plateau that narrows as sensor noise grows; the adaptive
/// threshold stays at the plateau without tuning.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detectors/shot_boundary.h"
#include "util/stats.h"

namespace {

using namespace cobra;  // NOLINT

void RunSweep() {
  bench::PrintHeader("E2", "shot boundary detection quality");
  const double kNoiseLevels[] = {0.0, 4.0, 8.0, 12.0};
  const vision::HistogramDistance kMetrics[] = {
      vision::HistogramDistance::kL1, vision::HistogramDistance::kChiSquare,
      vision::HistogramDistance::kIntersection};
  const double kThresholds[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.2};

  for (double noise : kNoiseLevels) {
    auto broadcast = media::TennisBroadcastSynthesizer(
                         bench::DefaultBroadcast(42, noise))
                         .Synthesize()
                         .TakeValue();
    auto cuts = broadcast.truth.CutPositions();
    std::printf("\nnoise sigma = %.0f (%zu true cuts, %lld frames)\n", noise,
                cuts.size(),
                static_cast<long long>(broadcast.video->num_frames()));
    std::printf("%-14s %-10s %8s %8s %8s\n", "metric", "threshold", "P", "R",
                "F1");
    for (auto metric : kMetrics) {
      detectors::ShotBoundaryConfig config;
      config.metric = metric;
      config.mode = detectors::ThresholdMode::kFixed;
      detectors::ShotBoundaryDetector detector(config);
      auto distances = detector.ComputeDistances(*broadcast.video).TakeValue();
      for (double threshold : kThresholds) {
        detectors::ShotBoundaryConfig sweep_config = config;
        sweep_config.fixed_threshold = threshold;
        detectors::ShotBoundaryDetector sweep(sweep_config);
        auto found = sweep.ThresholdSignal(distances);
        PrecisionRecall pr = MatchWithTolerance(cuts, found, 2);
        std::printf("%-14s %-10.2f %8.3f %8.3f %8.3f\n",
                    vision::HistogramDistanceToString(metric), threshold,
                    pr.Precision(), pr.Recall(), pr.F1());
      }
      // Adaptive row (the demo's default).
      detectors::ShotBoundaryConfig adaptive_config;
      adaptive_config.metric = metric;
      adaptive_config.mode = detectors::ThresholdMode::kAdaptive;
      detectors::ShotBoundaryDetector adaptive(adaptive_config);
      auto found = adaptive.ThresholdSignal(distances);
      PrecisionRecall pr = MatchWithTolerance(cuts, found, 2);
      std::printf("%-14s %-10s %8.3f %8.3f %8.3f\n",
                  vision::HistogramDistanceToString(metric), "adaptive",
                  pr.Precision(), pr.Recall(), pr.F1());
    }
  }

  // --- gradual transitions (dissolves): naive vs twin comparison ---
  std::printf("\ngradual transitions (50%% of cuts are 12-frame dissolves):\n");
  std::printf("%-26s %8s %8s %8s\n", "method", "P", "R", "F1");
  auto dissolve_config = bench::DefaultBroadcast(11);
  dissolve_config.dissolve_prob = 0.5;
  auto dissolved = media::TennisBroadcastSynthesizer(dissolve_config)
                       .Synthesize()
                       .TakeValue();
  auto all_cuts = dissolved.truth.CutPositions();
  {
    detectors::ShotBoundaryDetector naive;
    auto result = naive.Detect(*dissolved.video).TakeValue();
    PrecisionRecall pr = MatchWithTolerance(all_cuts, result.boundaries, 4);
    std::printf("%-26s %8.3f %8.3f %8.3f\n", "hard-cut only", pr.Precision(),
                pr.Recall(), pr.F1());
  }
  {
    detectors::ShotBoundaryConfig config;
    config.detect_gradual = true;
    detectors::ShotBoundaryDetector twin(config);
    auto result = twin.Detect(*dissolved.video).TakeValue();
    std::vector<int64_t> combined = result.boundaries;
    for (const auto& t : result.gradual) combined.push_back(t.begin);
    PrecisionRecall pr = MatchWithTolerance(all_cuts, combined, 4);
    std::printf("%-26s %8.3f %8.3f %8.3f\n", "twin comparison (+gradual)",
                pr.Precision(), pr.Recall(), pr.F1());
  }
  bench::PrintRule();
}

void BM_DistanceSignal(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 2;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::ShotBoundaryConfig boundary_config;
  boundary_config.metric =
      static_cast<vision::HistogramDistance>(state.range(0));
  detectors::ShotBoundaryDetector detector(boundary_config);
  for (auto _ : state) {
    auto distances = detector.ComputeDistances(*broadcast.video);
    benchmark::DoNotOptimize(distances);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DistanceSignal)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
