/// \file bench_e14_similarity.cc
/// E14 — SIMD perceptual signatures + sublinear ANN search (DESIGN.md §4j).
///   a) a 100k-shot procedural signature corpus with planted near-duplicate
///      families: per-query p50 of the exhaustive SIMD oracle vs the
///      multi-index-hashing SearchSimilar on one core (target: >= 20x), with
///      the top-N asserted bit-identical at every compiled SIMD tier and
///      across 1/2/7-shard partitions merged under the total neighbor order;
///   b) FindNearDuplicates batching the index against itself: wall time plus
///      precision/recall against the planted families;
///   c) the synthesizer arm: near-duplicate clips (crop/letterbox/noise) of
///      a tennis broadcast, extraction throughput with the shared frame
///      cache's hit rate, and dedup precision/recall against the clip
///      ground truth.
///
/// Environment knobs (CI reduction): COBRA_E14_SHOTS (corpus size),
/// COBRA_E14_QUERIES (query count).

#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "engine/similarity/similarity.h"
#include "media/near_duplicate.h"
#include "media/tennis_synthesizer.h"
#include "util/rng.h"
#include "vision/signature.h"
#include "vision/signature_kernels.h"

namespace {

using namespace cobra;  // NOLINT
using engine::similarity::Neighbor;
using engine::similarity::NeighborBefore;
using engine::similarity::SignatureIndex;
using engine::similarity::SignatureIndexConfig;
namespace sk = vision::signature_kernels;

constexpr const char* kBench = "e14_similarity";
constexpr size_t kTopK = 16;
constexpr int64_t kShotsPerVideo = 200;

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const int64_t parsed = std::atoll(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

vision::ShotSignature RandomSignature(Rng* rng) {
  vision::ShotSignature sig;
  for (uint64_t& word : sig.hash) word = rng->NextU64();
  for (uint8_t& byte : sig.sketch) {
    byte = static_cast<uint8_t>(rng->NextBounded(256));
  }
  return sig;
}

vision::ShotSignature Perturb(const vision::ShotSignature& sig, int flips,
                              Rng* rng) {
  vision::ShotSignature out = sig;
  for (int f = 0; f < flips; ++f) {
    const uint32_t bit = static_cast<uint32_t>(rng->NextBounded(256));
    out.hash[bit / 64] ^= uint64_t{1} << (bit % 64);
  }
  for (uint8_t& byte : out.sketch) {
    if (rng->NextBounded(4) == 0) {
      byte = static_cast<uint8_t>(
          std::min<int64_t>(255, byte + rng->NextBounded(5)));
    }
  }
  return out;
}

using ShotKey = std::pair<int64_t, int64_t>;  // (video_id, begin)

/// `count` records across videos of kShotsPerVideo shots. Every 10th shot
/// founds a near-duplicate family: its 1-2 other members are <= 12-bit
/// perturbations planted at later rows. `families` receives every
/// unordered within-family pair — the dedup ground truth.
std::vector<vision::SignatureRecord> MakeCorpus(
    int64_t count, std::set<std::pair<ShotKey, ShotKey>>* families) {
  Rng rng(0xE14);
  std::vector<vision::SignatureRecord> records;
  records.reserve(static_cast<size_t>(count));
  std::vector<std::vector<size_t>> pending_families;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t video = i / kShotsPerVideo + 1;
    const int64_t shot = i % kShotsPerVideo;
    vision::SignatureRecord rec;
    rec.video_id = video;
    rec.begin = shot * 120;
    rec.end = rec.begin + 119;
    const bool plant = !pending_families.empty() &&
                       pending_families.front().front() + count / 20 <
                           static_cast<size_t>(i);
    if (plant) {
      // A family member lands far from its founder's row (other videos).
      std::vector<size_t>& family = pending_families.front();
      rec.sig = Perturb(records[family.front()].sig,
                        1 + static_cast<int>(rng.NextBounded(12)), &rng);
      family.push_back(records.size());
      if (family.size() > rng.NextBounded(2) + 1) {
        for (size_t a = 0; a < family.size(); ++a) {
          for (size_t b = a + 1; b < family.size(); ++b) {
            const auto& ra = records[family[a]];
            families->insert({{ra.video_id, ra.begin},
                              {rec.video_id, rec.begin}});
            if (b + 1 < family.size()) continue;
          }
        }
        pending_families.erase(pending_families.begin());
      }
    } else {
      rec.sig = RandomSignature(&rng);
      if (i % 10 == 0) pending_families.push_back({records.size()});
    }
    records.push_back(rec);
  }
  // Rebuild the truth exactly: every unordered pair within max_hamming 31
  // of the default config (the planted perturbations compose, so compute
  // it rather than tracking founder links).
  families->clear();
  return records;
}

/// Every unordered record pair within `threshold` — the brute-force truth
/// FindNearDuplicates is scored against. O(n²) in pair count but the SIMD
/// batch kernel makes the scan itself linear per row.
std::set<std::pair<ShotKey, ShotKey>> BruteForcePairs(
    const std::vector<vision::SignatureRecord>& records, uint32_t threshold) {
  const auto& ops = sk::Ops();
  std::set<std::pair<ShotKey, ShotKey>> pairs;
  std::vector<uint32_t> distances(records.size());
  const auto* base = reinterpret_cast<const uint8_t*>(records[0].sig.hash);
  for (size_t i = 0; i < records.size(); ++i) {
    const size_t n = records.size() - i - 1;
    if (n == 0) continue;
    ops.Hamming256Batch(records[i].sig.hash,
                        base + (i + 1) * sizeof(vision::SignatureRecord),
                        sizeof(vision::SignatureRecord), n, distances.data());
    for (size_t j = 0; j < n; ++j) {
      if (distances[j] > threshold) continue;
      const auto& a = records[i];
      const auto& b = records[i + 1 + j];
      pairs.insert({{a.video_id, a.begin}, {b.video_id, b.begin}});
    }
  }
  return pairs;
}

bool SameNeighbors(const std::vector<Neighbor>& a,
                   const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].hamming != b[i].hamming || a[i].l2sq != b[i].l2sq ||
        a[i].record->video_id != b[i].record->video_id ||
        a[i].record->begin != b[i].record->begin ||
        a[i].record->end != b[i].record->end) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::OpenJsonArtifact("BENCH_E14.json");
  bench::PrintHeader("E14", "SIMD signatures + sublinear ANN similarity");

  const int64_t num_shots = EnvInt("COBRA_E14_SHOTS", 100000);
  const size_t num_queries =
      static_cast<size_t>(EnvInt("COBRA_E14_QUERIES", 200));
  std::set<std::pair<ShotKey, ShotKey>> planted;
  const std::vector<vision::SignatureRecord> records =
      MakeCorpus(num_shots, &planted);
  std::printf("corpus: %lld shots (%lld videos), SIMD best tier %s\n",
              static_cast<long long>(num_shots),
              static_cast<long long>(num_shots / kShotsPerVideo + 1),
              util::simd::SimdLevelName(sk::BestSupportedLevel()));
  bench::PrintJsonMetric(kBench, "corpus_shots",
                         static_cast<double>(num_shots));

  SignatureIndex index;
  index.AddRecords(records.data(), records.size());

  // Query mix: half family members re-perturbed (queries with true
  // neighbors), half fresh noise (threshold rejects everything).
  std::vector<vision::ShotSignature> queries;
  Rng rng(515);
  for (size_t i = 0; i < num_queries; ++i) {
    if (i % 2 == 0) {
      const auto& rec = records[rng.NextBounded(records.size())];
      queries.push_back(Perturb(rec.sig, 1 + static_cast<int>(rng.NextBounded(8)),
                                &rng));
    } else {
      queries.push_back(RandomSignature(&rng));
    }
  }

  // ---- a) exhaustive oracle vs ANN, per-query p50, 1 core. ----
  const sk::SimdLevel best = sk::ActiveLevel();
  std::vector<std::vector<Neighbor>> oracle_answers;
  std::vector<double> exhaustive_ms, ann_ms;
  for (const auto& query : queries) {
    bench::WallTimer timer;
    oracle_answers.push_back(index.SearchSimilarExhaustive(query, kTopK));
    exhaustive_ms.push_back(timer.Millis());
  }
  bool identical = true;
  size_t fallbacks = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    engine::similarity::SimilaritySearchStats stats;
    bench::WallTimer timer;
    const auto fast = index.SearchSimilar(queries[i], kTopK, &stats);
    ann_ms.push_back(timer.Millis());
    identical = identical && SameNeighbors(oracle_answers[i], fast);
    fallbacks += stats.exhaustive_fallback ? 1 : 0;
  }
  const double p50_exhaustive = bench::Percentile(exhaustive_ms, 0.50);
  const double p50_ann = bench::Percentile(ann_ms, 0.50);
  const double speedup = p50_ann > 0.0 ? p50_exhaustive / p50_ann : 0.0;
  std::printf(
      "exhaustive p50 %8.4f ms   ann p50 %8.4f ms   speedup %7.1fx   "
      "fallbacks %zu/%zu\n",
      p50_exhaustive, p50_ann, speedup, fallbacks, queries.size());
  bench::PrintJsonMetric(kBench, "exhaustive_p50_ms", p50_exhaustive);
  bench::PrintJsonMetric(kBench, "ann_p50_ms", p50_ann);
  bench::PrintJsonMetric(kBench, "ann_speedup", speedup);

  // Bit-identity across every compiled SIMD tier (the slow tiers answer a
  // thinned query set — identity, not timing, is the point there).
  for (sk::SimdLevel level :
       {sk::SimdLevel::kScalar, sk::SimdLevel::kSse41, sk::SimdLevel::kAvx2}) {
    if (sk::OpsFor(level) == nullptr) continue;
    sk::SetActiveLevel(level);
    for (size_t i = 0; i < queries.size(); i += 8) {
      identical = identical &&
                  SameNeighbors(oracle_answers[i],
                                index.SearchSimilar(queries[i], kTopK)) &&
                  SameNeighbors(oracle_answers[i],
                                index.SearchSimilarExhaustive(queries[i], kTopK));
    }
  }
  sk::SetActiveLevel(best);

  // Shard partitions 1/2/7: per-shard exact top-(k+1) lists merged under
  // the total neighbor order must reproduce the unsharded answer (the
  // serving frontend's SimilarSeed merge).
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{7}}) {
    std::vector<SignatureIndex> shards(num_shards);
    for (const auto& rec : records) {
      const size_t shard =
          static_cast<size_t>(rec.video_id) * num_shards /
          (static_cast<size_t>(num_shots / kShotsPerVideo) + 2);
      shards[std::min(shard, num_shards - 1)].AddRecords(&rec, 1);
    }
    for (size_t i = 0; i < queries.size(); i += 8) {
      std::vector<Neighbor> merged;
      for (const SignatureIndex& shard : shards) {
        const auto part = shard.SearchSimilar(queries[i], kTopK);
        merged.insert(merged.end(), part.begin(), part.end());
      }
      std::sort(merged.begin(), merged.end(), NeighborBefore);
      if (merged.size() > kTopK) merged.resize(kTopK);
      identical = identical && SameNeighbors(oracle_answers[i], merged);
    }
  }
  std::printf("bit-identity (tiers + 1/2/7 shards): %s\n",
              identical ? "yes" : "NO");
  bench::PrintJsonMetric(kBench, "bit_identical", identical ? 1.0 : 0.0);

  // ---- b) FindNearDuplicates vs the brute-force pair truth. ----
  const uint32_t threshold = index.config().max_hamming;
  bench::WallTimer dedup_timer;
  const auto pairs = index.FindNearDuplicates(threshold);
  const double dedup_ms = dedup_timer.Millis();
  const auto truth = BruteForcePairs(records, threshold);
  size_t correct = 0;
  for (const auto& pair : pairs) {
    if (truth.count({{pair.a->video_id, pair.a->begin},
                     {pair.b->video_id, pair.b->begin}}) > 0) {
      ++correct;
    }
  }
  const double precision =
      pairs.empty() ? 1.0 : static_cast<double>(correct) / pairs.size();
  const double recall =
      truth.empty() ? 1.0 : static_cast<double>(correct) / truth.size();
  std::printf(
      "near-duplicates: %zu pairs in %.1f ms (truth %zu)   precision %.3f   "
      "recall %.3f\n",
      pairs.size(), dedup_ms, truth.size(), precision, recall);
  bench::PrintJsonMetric(kBench, "dedup_ms", dedup_ms);
  bench::PrintJsonMetric(kBench, "dedup_pairs", static_cast<double>(pairs.size()));
  bench::PrintJsonMetric(kBench, "dedup_precision", precision);
  bench::PrintJsonMetric(kBench, "dedup_recall", recall);

  // ---- c) synthesizer arm: transformed clips + extraction cache. ----
  bench::PrintRule();
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast(97))
          .Synthesize()
          .TakeValue();
  vision::FrameFeatureCache cache(*broadcast.video);
  std::vector<FrameInterval> shots;
  for (const auto& shot : broadcast.truth.shots) shots.push_back(shot.range);
  vision::SignatureExtractionStats cold_stats;
  auto sources =
      vision::ExtractShotSignatures(cache, 1, shots, &cold_stats).TakeValue();
  vision::SignatureExtractionStats warm_stats;
  (void)vision::ExtractShotSignatures(cache, 1, shots, &warm_stats)
      .TakeValue();
  const double warm_hit_rate =
      warm_stats.cache_hits + warm_stats.cache_misses > 0
          ? static_cast<double>(warm_stats.cache_hits) /
                static_cast<double>(warm_stats.cache_hits +
                                    warm_stats.cache_misses)
          : 0.0;
  std::printf(
      "extraction: %lld shots, cold %.1f ms (%lld misses), warm %.1f ms "
      "(hit rate %.2f)\n",
      static_cast<long long>(cold_stats.shots), cold_stats.millis,
      static_cast<long long>(cold_stats.cache_misses), warm_stats.millis,
      warm_hit_rate);
  bench::PrintJsonMetric(kBench, "extract_cold_ms", cold_stats.millis);
  bench::PrintJsonMetric(kBench, "extract_warm_hit_rate", warm_hit_rate);

  // Clip dedup: index sources + transformed clips, pair within a loose
  // threshold, score against the clip -> source ground truth.
  auto clips = media::MakeNearDuplicateClips(*broadcast.video, broadcast.truth,
                                             /*every_nth=*/1, /*min_frames=*/10,
                                             {})
                   .TakeValue();
  SignatureIndexConfig clip_config;
  clip_config.max_hamming = 96;
  SignatureIndex clip_index(clip_config);
  clip_index.AddRecords(sources.data(), sources.size());
  std::map<ShotKey, int64_t> truth_pairs;  // clip shot key -> source begin
  int64_t clip_video = 1000;
  std::vector<vision::SignatureRecord> clip_records;
  for (const auto& clip : clips) {
    vision::FrameFeatureCache clip_cache(*clip.video);
    const std::vector<FrameInterval> clip_shots = {
        {0, clip.video->num_frames() - 1}};
    auto recs = vision::ExtractShotSignatures(clip_cache, ++clip_video,
                                              clip_shots)
                    .TakeValue();
    truth_pairs[{clip_video, recs[0].begin}] = clip.source_range.begin;
    clip_index.AddRecords(recs.data(), recs.size());
  }
  const auto clip_pairs = clip_index.FindNearDuplicates(clip_config.max_hamming);
  size_t reported = 0, true_positive = 0;
  for (const auto& pair : clip_pairs) {
    // Only clip<->source pairs count; source<->source pairs are the
    // broadcast's own recurring scenes, not dedup claims.
    const bool b_is_clip = pair.b->video_id >= 1000;
    if (pair.a->video_id >= 1000 || !b_is_clip) continue;
    ++reported;
    const auto it = truth_pairs.find({pair.b->video_id, pair.b->begin});
    if (it != truth_pairs.end() && it->second == pair.a->begin) {
      ++true_positive;
    }
  }
  const double clip_precision =
      reported == 0 ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(reported);
  const double clip_recall =
      clips.empty() ? 0.0
                    : static_cast<double>(true_positive) /
                          static_cast<double>(clips.size());
  std::printf(
      "clip dedup: %zu clips, %zu clip-source pairs reported, precision "
      "%.3f, recall %.3f\n",
      clips.size(), reported, clip_precision, clip_recall);
  bench::PrintJsonMetric(kBench, "clip_dedup_precision", clip_precision);
  bench::PrintJsonMetric(kBench, "clip_dedup_recall", clip_recall);
  return identical ? 0 : 1;
}
