/// \file bench_e1_fde_graph.cc
/// E1 — paper Figure 1: the tennis FDE detector dependency graph.
///
/// Regenerates the figure as (a) the node/edge listing, (b) the topological
/// detector execution order the FDE derives from it, (c) Graphviz dot, and
/// (d) one FDE population run with per-detector annotation counts and
/// timings. The google-benchmark part times a full FDE run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "grammar/feature_grammar.h"
#include "util/strings.h"
#include "vision/histogram.h"

namespace {

using namespace cobra;  // NOLINT

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Wave-parallel FDE scaling on a DAG with 4 independent detectors in one
/// wave (acceptance target: >= 1.5x wall-time speedup at 4 threads). Each
/// branch computes per-frame color histograms at a distinct resolution, so
/// the branches share no cacheable work. `stall_us` emulates a per-frame
/// decode stall (frames served from disk or a remote store); independent
/// branches overlap their stalls under the wave scheduler, which is what
/// makes the speedup visible even on a single-core host.
double TimeDagRun(const media::VideoSource& video, int num_threads,
                  int stall_us) {
  auto dag = grammar::FeatureGrammar::Parse(
                 "start v ;\n"
                 "h2 : v ;\nh4 : v ;\nh8 : v ;\nh16 : v ;\n"
                 "merge : h2 h4 h8 h16 ;")
                 .TakeValue();
  grammar::FdeConfig config;
  config.num_threads = num_threads;
  config.cache_bytes = 0;  // no shared work: measure scheduling only
  grammar::FeatureDetectorEngine fde(std::move(dag), config);
  for (int bins : {2, 4, 8, 16}) {
    CheckOk(fde.RegisterDetector(
                StringFormat("h%d", bins),
                [bins, stall_us](const grammar::DetectionContext& ctx)
                    -> Result<std::vector<grammar::Annotation>> {
                  double mass = 0.0;
                  for (int64_t f = 0; f < ctx.video().num_frames(); ++f) {
                    COBRA_ASSIGN_OR_RETURN(media::Frame frame,
                                           ctx.video().GetFrame(f));
                    if (stall_us > 0) {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(stall_us));
                    }
                    COBRA_ASSIGN_OR_RETURN(
                        auto hist,
                        vision::ColorHistogram::FromFrame(frame, bins));
                    mass += hist.values().front();
                  }
                  std::vector<grammar::Annotation> out;
                  grammar::Annotation a(
                      "", FrameInterval{0, ctx.video().num_frames() - 1});
                  a.Set("mass", mass);
                  out.push_back(std::move(a));
                  return out;
                }),
            "register");
  }
  CheckOk(fde.RegisterDetector(
              "merge",
              [](const grammar::DetectionContext& ctx) {
                std::vector<grammar::Annotation> out;
                grammar::Annotation a("", FrameInterval{0, 0});
                a.Set("branches", static_cast<int64_t>(
                                      ctx.Of("h2").size() + ctx.Of("h4").size() +
                                      ctx.Of("h8").size() + ctx.Of("h16").size()));
                out.push_back(std::move(a));
                return out;
              }),
          "merge");

  bench::WallTimer timer;
  auto report = fde.Run(video);
  double millis = timer.Millis();
  CheckOk(report.status(), "run");
  return millis;
}

void PrintParallelScaling() {
  bench::PrintHeader("E1", "wave-parallel FDE scaling");
  auto broadcast = media::TennisBroadcastSynthesizer(bench::DefaultBroadcast())
                       .Synthesize()
                       .TakeValue();

  // A 300 us/frame decode stall models frames arriving from disk or a
  // remote store (the library-search deployment); stall 0 is the pure
  // CPU-bound variant, whose parallel speedup is bounded by the core count.
  for (int stall_us : {300, 0}) {
    std::printf("4-branch DAG, %lld frames, decode stall %d us/frame:\n",
                static_cast<long long>(broadcast.video->num_frames()),
                stall_us);
    std::printf("%-22s %12s\n", "configuration", "wall ms");
    const char* suffix = stall_us > 0 ? "" : "_cpubound";
    double dag_ms[2] = {0, 0};
    int i = 0;
    for (int threads : {1, 4}) {
      // Warm-up run, then the measured run.
      TimeDagRun(*broadcast.video, threads, stall_us);
      dag_ms[i] = TimeDagRun(*broadcast.video, threads, stall_us);
      std::printf("%-22s %12.1f\n",
                  StringFormat("num_threads=%d", threads).c_str(), dag_ms[i]);
      bench::PrintJsonMetric(
          "e1_fde_graph",
          StringFormat("dag_wall_ms_threads%d%s", threads, suffix).c_str(),
          dag_ms[i]);
      ++i;
    }
    double dag_speedup = dag_ms[0] / dag_ms[1];
    std::printf("speedup at 4 threads: %.2fx\n\n", dag_speedup);
    bench::PrintJsonMetric("e1_fde_graph",
                           StringFormat("dag_speedup_4t%s", suffix).c_str(),
                           dag_speedup);
  }

  std::printf("tennis pipeline end-to-end (wave + frame parallelism):\n");
  std::printf("%-22s %12s\n", "configuration", "wall ms");
  double idx_ms[2] = {0, 0};
  int i = 0;
  for (int threads : {1, 4}) {
    core::TennisIndexerConfig config;
    config.fde.num_threads = threads;
    auto indexer = core::TennisVideoIndexer::Create(config).TakeValue();
    indexer->Index(*broadcast.video, 1, "warmup").TakeValue();
    bench::WallTimer timer;
    indexer->Index(*broadcast.video, 1, "bench").TakeValue();
    idx_ms[i] = timer.Millis();
    std::printf("%-22s %12.1f\n",
                StringFormat("num_threads=%d", threads).c_str(), idx_ms[i]);
    bench::PrintJsonMetric(
        "e1_fde_graph",
        StringFormat("tennis_wall_ms_threads%d", threads).c_str(), idx_ms[i]);
    ++i;
  }
  double idx_speedup = idx_ms[0] / idx_ms[1];
  std::printf("speedup at 4 threads: %.2fx\n", idx_speedup);
  bench::PrintJsonMetric("e1_fde_graph", "tennis_speedup_4t", idx_speedup);
  bench::PrintRule();
}

void PrintFigureOne() {
  bench::PrintHeader("E1", "tennis FDE detector dependencies (paper Fig. 1)");
  auto grammar =
      grammar::FeatureGrammar::Parse(core::TennisGrammarText()).TakeValue();

  std::printf("symbols (%zu):\n", grammar.Symbols().size());
  for (const auto& rule : grammar.rules()) {
    std::printf("  %-14s <- %s\n", rule.symbol.c_str(),
                JoinStrings(rule.dependencies, ", ").c_str());
  }
  std::printf("\ndetector execution order (topological):\n  ");
  std::printf("%s\n", JoinStrings(grammar.ExecutionOrder(), " -> ").c_str());

  std::printf("\ngraphviz dot:\n%s", grammar.ToDot().c_str());

  // One FDE population run over a synthetic broadcast.
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "bench").TakeValue();
  std::printf("\nFDE population run over %lld frames:\n%s",
              static_cast<long long>(broadcast.video->num_frames()),
              indexer->last_report()->ToString().c_str());
  std::printf("COBRA layers: raw=%zu feature=%zu object=%zu event=%zu\n",
              desc.Layer(core::CobraLayer::kRawData).size(),
              desc.Layer(core::CobraLayer::kFeature).size(),
              desc.Layer(core::CobraLayer::kObject).size(),
              desc.Layer(core::CobraLayer::kEvent).size());
  bench::PrintRule();
}

void BM_GrammarParse(benchmark::State& state) {
  for (auto _ : state) {
    auto grammar = grammar::FeatureGrammar::Parse(core::TennisGrammarText());
    benchmark::DoNotOptimize(grammar);
  }
}
BENCHMARK(BM_GrammarParse);

void BM_FdeFullRun(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 2;
  config.min_court_frames = 80;
  config.max_court_frames = 100;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  for (auto _ : state) {
    auto desc = indexer->Index(*broadcast.video, 1, "bench");
    if (!desc.ok()) state.SkipWithError(desc.status().ToString().c_str());
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdeFullRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigureOne();
  PrintParallelScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
