/// \file bench_e1_fde_graph.cc
/// E1 — paper Figure 1: the tennis FDE detector dependency graph.
///
/// Regenerates the figure as (a) the node/edge listing, (b) the topological
/// detector execution order the FDE derives from it, (c) Graphviz dot, and
/// (d) one FDE population run with per-detector annotation counts and
/// timings. The google-benchmark part times a full FDE run.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "grammar/feature_grammar.h"
#include "util/strings.h"

namespace {

using namespace cobra;  // NOLINT

void PrintFigureOne() {
  bench::PrintHeader("E1", "tennis FDE detector dependencies (paper Fig. 1)");
  auto grammar =
      grammar::FeatureGrammar::Parse(core::TennisGrammarText()).TakeValue();

  std::printf("symbols (%zu):\n", grammar.Symbols().size());
  for (const auto& rule : grammar.rules()) {
    std::printf("  %-14s <- %s\n", rule.symbol.c_str(),
                JoinStrings(rule.dependencies, ", ").c_str());
  }
  std::printf("\ndetector execution order (topological):\n  ");
  std::printf("%s\n", JoinStrings(grammar.ExecutionOrder(), " -> ").c_str());

  std::printf("\ngraphviz dot:\n%s", grammar.ToDot().c_str());

  // One FDE population run over a synthetic broadcast.
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "bench").TakeValue();
  std::printf("\nFDE population run over %lld frames:\n%s",
              static_cast<long long>(broadcast.video->num_frames()),
              indexer->last_report()->ToString().c_str());
  std::printf("COBRA layers: raw=%zu feature=%zu object=%zu event=%zu\n",
              desc.Layer(core::CobraLayer::kRawData).size(),
              desc.Layer(core::CobraLayer::kFeature).size(),
              desc.Layer(core::CobraLayer::kObject).size(),
              desc.Layer(core::CobraLayer::kEvent).size());
  bench::PrintRule();
}

void BM_GrammarParse(benchmark::State& state) {
  for (auto _ : state) {
    auto grammar = grammar::FeatureGrammar::Parse(core::TennisGrammarText());
    benchmark::DoNotOptimize(grammar);
  }
}
BENCHMARK(BM_GrammarParse);

void BM_FdeFullRun(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 2;
  config.min_court_frames = 80;
  config.max_court_frames = 100;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  for (auto _ : state) {
    auto desc = indexer->Index(*broadcast.video, 1, "bench");
    if (!desc.ok()) state.SkipWithError(desc.status().ToString().c_str());
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdeFullRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigureOne();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
