/// \file bench_e1_fde_graph.cc
/// E1 — paper Figure 1: the tennis FDE detector dependency graph.
///
/// Regenerates the figure as (a) the node/edge listing, (b) the topological
/// detector execution order the FDE derives from it, (c) Graphviz dot, and
/// (d) one FDE population run with per-detector annotation counts and
/// timings. The google-benchmark part times a full FDE run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "grammar/feature_grammar.h"
#include "media/block_codec.h"
#include "util/simd.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "vision/histogram.h"

namespace {

using namespace cobra;  // NOLINT

void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::abort();
  }
}

/// Wave-parallel FDE scaling on a DAG with 4 independent detectors in one
/// wave (acceptance target: >= 1.5x wall-time speedup at 4 threads). Each
/// branch computes per-frame color histograms at a distinct resolution, so
/// the branches share no cacheable work. `stall_us` emulates a per-frame
/// decode stall (frames served from disk or a remote store); independent
/// branches overlap their stalls under the wave scheduler. `decode_threads`
/// / `prefetch_frames` configure the GOP-parallel decode pipeline when
/// `video` is a CodedVideoSource (decode_threads < 0 disables it, which is
/// the pre-pipeline behaviour: every branch re-decodes the stream through
/// its own per-thread decoder state).
double TimeDagRun(const media::VideoSource& video, int num_threads,
                  int stall_us, int decode_threads = -1,
                  int64_t prefetch_frames = 96) {
  auto dag = grammar::FeatureGrammar::Parse(
                 "start v ;\n"
                 "h2 : v ;\nh4 : v ;\nh8 : v ;\nh16 : v ;\n"
                 "merge : h2 h4 h8 h16 ;")
                 .TakeValue();
  grammar::FdeConfig config;
  config.num_threads = num_threads;
  config.cache_bytes = 0;  // no shared feature work: measure scheduling/decode
  config.decode_threads = decode_threads;
  config.prefetch_frames = prefetch_frames;
  grammar::FeatureDetectorEngine fde(std::move(dag), config);
  for (int bins : {2, 4, 8, 16}) {
    CheckOk(fde.RegisterDetector(
                StringFormat("h%d", bins),
                [bins, stall_us](const grammar::DetectionContext& ctx)
                    -> Result<std::vector<grammar::Annotation>> {
                  double mass = 0.0;
                  for (int64_t f = 0; f < ctx.video().num_frames(); ++f) {
                    COBRA_ASSIGN_OR_RETURN(media::Frame frame,
                                           ctx.video().GetFrame(f));
                    if (stall_us > 0) {
                      std::this_thread::sleep_for(
                          std::chrono::microseconds(stall_us));
                    }
                    COBRA_ASSIGN_OR_RETURN(
                        auto hist,
                        vision::ColorHistogram::FromFrame(frame, bins));
                    mass += hist.values().front();
                  }
                  std::vector<grammar::Annotation> out;
                  grammar::Annotation a(
                      "", FrameInterval{0, ctx.video().num_frames() - 1});
                  a.Set("mass", mass);
                  out.push_back(std::move(a));
                  return out;
                }),
            "register");
  }
  CheckOk(fde.RegisterDetector(
              "merge",
              [](const grammar::DetectionContext& ctx) {
                std::vector<grammar::Annotation> out;
                grammar::Annotation a("", FrameInterval{0, 0});
                a.Set("branches", static_cast<int64_t>(
                                      ctx.Of("h2").size() + ctx.Of("h4").size() +
                                      ctx.Of("h8").size() + ctx.Of("h16").size()));
                out.push_back(std::move(a));
                return out;
              }),
          "merge");

  bench::WallTimer timer;
  auto report = fde.Run(video);
  double millis = timer.Millis();
  CheckOk(report.status(), "run");
  return millis;
}

void PrintParallelScaling() {
  bench::PrintHeader("E1", "wave-parallel FDE scaling");
  auto broadcast = media::TennisBroadcastSynthesizer(bench::DefaultBroadcast())
                       .Synthesize()
                       .TakeValue();

  // A fixed 300 us/frame sleep is the legacy synthetic decode-stall model.
  // It is kept as a labeled reference line only — the real-decode section
  // below (PrintRealDecodeScaling) is the primary measurement, driving the
  // actual CodedVideoSource decoder instead of a sleep. Stall 0 is the pure
  // CPU-bound variant, whose parallel speedup is bounded by the core count.
  for (int stall_us : {300, 0}) {
    std::printf(
        "4-branch DAG, %lld frames, %s:\n",
        static_cast<long long>(broadcast.video->num_frames()),
        stall_us > 0 ? "synthetic 300 us/frame sleep stall (reference line)"
                     : "no stall (cpu-bound)");
    std::printf("%-22s %12s\n", "configuration", "wall ms");
    const char* suffix = stall_us > 0 ? "_synthetic_stall" : "_cpubound";
    double dag_ms[2] = {0, 0};
    int i = 0;
    for (int threads : {1, 4}) {
      // Warm-up run, then the measured run.
      TimeDagRun(*broadcast.video, threads, stall_us);
      dag_ms[i] = TimeDagRun(*broadcast.video, threads, stall_us);
      std::printf("%-22s %12.1f\n",
                  StringFormat("num_threads=%d", threads).c_str(), dag_ms[i]);
      bench::PrintJsonMetric(
          "e1_fde_graph",
          StringFormat("dag_wall_ms_threads%d%s", threads, suffix).c_str(),
          dag_ms[i]);
      ++i;
    }
    double dag_speedup = dag_ms[0] / dag_ms[1];
    std::printf("speedup at 4 threads: %.2fx\n\n", dag_speedup);
    bench::PrintJsonMetric("e1_fde_graph",
                           StringFormat("dag_speedup_4t%s", suffix).c_str(),
                           dag_speedup);
  }

  std::printf("tennis pipeline end-to-end (wave + frame parallelism):\n");
  std::printf("%-22s %12s\n", "configuration", "wall ms");
  double idx_ms[2] = {0, 0};
  int i = 0;
  for (int threads : {1, 4}) {
    core::TennisIndexerConfig config;
    config.fde.num_threads = threads;
    auto indexer = core::TennisVideoIndexer::Create(config).TakeValue();
    indexer->Index(*broadcast.video, 1, "warmup").TakeValue();
    bench::WallTimer timer;
    indexer->Index(*broadcast.video, 1, "bench").TakeValue();
    idx_ms[i] = timer.Millis();
    std::printf("%-22s %12.1f\n",
                StringFormat("num_threads=%d", threads).c_str(), idx_ms[i]);
    bench::PrintJsonMetric(
        "e1_fde_graph",
        StringFormat("tennis_wall_ms_threads%d", threads).c_str(), idx_ms[i]);
    ++i;
  }
  double idx_speedup = idx_ms[0] / idx_ms[1];
  std::printf("speedup at 4 threads: %.2fx\n", idx_speedup);
  bench::PrintJsonMetric("e1_fde_graph", "tennis_speedup_4t", idx_speedup);
  bench::PrintRule();
}

/// 4-branch frame-drain DAG: every branch walks all frames through
/// ctx.video().GetFrame but does no feature work, so the wall time is the
/// frame-supply path alone (decode + scheduling + buffer). This isolates
/// the decode subsystem from the vision kernels, which is what lets the
/// seed-configuration run force the scalar DCT tier without also slowing
/// the histogram kernels the seed already had vectorized.
double TimeDrainRun(const media::VideoSource& video, int num_threads,
                    int decode_threads) {
  auto dag = grammar::FeatureGrammar::Parse(
                 "start v ;\n"
                 "d1 : v ;\nd2 : v ;\nd3 : v ;\nd4 : v ;\n"
                 "merge : d1 d2 d3 d4 ;")
                 .TakeValue();
  grammar::FdeConfig config;
  config.num_threads = num_threads;
  config.cache_bytes = 0;
  config.decode_threads = decode_threads;
  grammar::FeatureDetectorEngine fde(std::move(dag), config);
  for (int branch : {1, 2, 3, 4}) {
    CheckOk(fde.RegisterDetector(
                StringFormat("d%d", branch),
                [](const grammar::DetectionContext& ctx)
                    -> Result<std::vector<grammar::Annotation>> {
                  int64_t sum = 0;
                  for (int64_t f = 0; f < ctx.video().num_frames(); ++f) {
                    COBRA_ASSIGN_OR_RETURN(media::Frame frame,
                                           ctx.video().GetFrame(f));
                    sum += frame.pixels().front().r;
                  }
                  std::vector<grammar::Annotation> out;
                  grammar::Annotation a(
                      "", FrameInterval{0, ctx.video().num_frames() - 1});
                  a.Set("sum", static_cast<double>(sum));
                  out.push_back(std::move(a));
                  return out;
                }),
            "register drain");
  }
  CheckOk(fde.RegisterDetector(
              "merge",
              [](const grammar::DetectionContext&) {
                return std::vector<grammar::Annotation>{};
              }),
          "merge");
  bench::WallTimer timer;
  auto report = fde.Run(video);
  double millis = timer.Millis();
  CheckOk(report.status(), "drain run");
  return millis;
}

/// The primary E1 measurement: the same 4-branch DAG and the tennis
/// indexer, but over a real CodedVideoSource so every GetFrame pays the
/// actual block-codec decode cost (IDCT + dequant + motion compensation)
/// instead of a synthetic sleep.
///
/// "no pipeline" (decode_threads = -1) is the pre-pipeline decoder path:
/// with the frame cache off, each of the 4 DAG branches re-decodes the
/// whole stream through its own per-thread decoder state, so the decode
/// work is done 4x. The pipeline decodes each GOP once into a shared
/// prefetch buffer, which is why the speedup holds even on a single-core
/// host; on multi-core hosts GOP-parallel lookahead adds on top. The
/// headline before/after additionally forces the scalar DCT tier on the
/// "before" side, because the seed decoder was scalar — the shipped
/// decoder's SIMD tiers are part of the same change being measured.
void PrintRealDecodeScaling() {
  bench::PrintHeader("E1", "decode pipeline over a real coded source");
  auto broadcast = media::TennisBroadcastSynthesizer(bench::DefaultBroadcast())
                       .Synthesize()
                       .TakeValue();
  auto encoded =
      media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
  media::CodedVideoSource coded(std::move(encoded));

  struct Row {
    const char* label;
    const char* metric;
    int threads;
    int decode_threads;
  };
  const Row rows[] = {
      {"threads=1, no pipeline", "realdecode_dag_wall_ms_threads1_nopipe", 1,
       -1},
      {"threads=4, no pipeline", "realdecode_dag_wall_ms_threads4_nopipe", 4,
       -1},
      {"threads=4, pipeline", "realdecode_dag_wall_ms_threads4_pipeline", 4,
       4},
  };
  std::printf("4-branch DAG, %lld frames, real block-codec decode:\n",
              static_cast<long long>(coded.num_frames()));
  std::printf("%-24s %12s\n", "configuration", "wall ms");
  double wall_ms[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    TimeDagRun(coded, rows[i].threads, /*stall_us=*/0, rows[i].decode_threads);
    wall_ms[i] =
        TimeDagRun(coded, rows[i].threads, /*stall_us=*/0,
                   rows[i].decode_threads);
    std::printf("%-24s %12.1f\n", rows[i].label, wall_ms[i]);
    bench::PrintJsonMetric("e1_fde_graph", rows[i].metric, wall_ms[i]);
  }
  double dag_speedup = wall_ms[0] / wall_ms[2];
  std::printf("mixed-workload speedup at 4 threads + pipeline: %.2fx\n\n",
              dag_speedup);
  bench::PrintJsonMetric("e1_fde_graph", "realdecode_dag_speedup_4t_mixed",
                         dag_speedup);

  // Headline before/after at 4 threads: the seed frame-supply configuration
  // (scalar DCT, no pipeline) vs the shipped one (runtime DCT dispatch +
  // GOP pipeline), over the drain DAG so only the decode subsystem is
  // measured on both sides.
  std::printf("4-branch frame-drain DAG (decode subsystem only):\n");
  std::printf("%-40s %12s\n", "configuration", "wall ms");
  util::simd::SetForcedLevel(0);  // the seed decoder was scalar
  TimeDrainRun(coded, 4, -1);
  double seed_ms = TimeDrainRun(coded, 4, -1);
  util::simd::SetForcedLevel(-1);
  std::printf("%-40s %12.1f\n", "seed: threads=4, scalar DCT, no pipeline",
              seed_ms);
  bench::PrintJsonMetric("e1_fde_graph",
                         "realdecode_drain_wall_ms_4t_seed_scalar_nopipe",
                         seed_ms);
  TimeDrainRun(coded, 4, 4);
  double shipped_ms = TimeDrainRun(coded, 4, 4);
  std::printf("%-40s %12.1f\n",
              StringFormat("shipped: threads=4, %s DCT, pipeline",
                           util::simd::SimdLevelName(
                               util::simd::CpuBestLevel()))
                  .c_str(),
              shipped_ms);
  bench::PrintJsonMetric("e1_fde_graph", "realdecode_drain_wall_ms_4t_pipeline",
                         shipped_ms);
  double drain_speedup = seed_ms / shipped_ms;
  std::printf("end-to-end decode speedup at 4 threads: %.2fx\n\n",
              drain_speedup);
  bench::PrintJsonMetric("e1_fde_graph", "realdecode_dag_speedup_4t",
                         drain_speedup);

  std::printf("tennis indexer end-to-end over the coded source:\n");
  std::printf("%-24s %12s\n", "configuration", "wall ms");
  double idx_ms[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    core::TennisIndexerConfig config;
    config.fde.num_threads = i == 0 ? 1 : 4;
    config.fde.decode_threads = i == 0 ? -1 : 4;
    auto indexer = core::TennisVideoIndexer::Create(config).TakeValue();
    indexer->Index(coded, 1, "warmup").TakeValue();
    bench::WallTimer timer;
    indexer->Index(coded, 1, "bench").TakeValue();
    idx_ms[i] = timer.Millis();
    std::printf("%-24s %12.1f\n",
                i == 0 ? "threads=1, no pipeline" : "threads=4, pipeline",
                idx_ms[i]);
    bench::PrintJsonMetric(
        "e1_fde_graph",
        i == 0 ? "tennis_realdecode_wall_ms_before"
               : "tennis_realdecode_wall_ms_after",
        idx_ms[i]);
  }
  double idx_speedup = idx_ms[0] / idx_ms[1];
  std::printf("end-to-end speedup: %.2fx\n", idx_speedup);
  bench::PrintJsonMetric("e1_fde_graph", "tennis_realdecode_speedup",
                         idx_speedup);
  bench::PrintRule();
}

void PrintFigureOne() {
  bench::PrintHeader("E1", "tennis FDE detector dependencies (paper Fig. 1)");
  auto grammar =
      grammar::FeatureGrammar::Parse(core::TennisGrammarText()).TakeValue();

  std::printf("symbols (%zu):\n", grammar.Symbols().size());
  for (const auto& rule : grammar.rules()) {
    std::printf("  %-14s <- %s\n", rule.symbol.c_str(),
                JoinStrings(rule.dependencies, ", ").c_str());
  }
  std::printf("\ndetector execution order (topological):\n  ");
  std::printf("%s\n", JoinStrings(grammar.ExecutionOrder(), " -> ").c_str());

  std::printf("\ngraphviz dot:\n%s", grammar.ToDot().c_str());

  // One FDE population run over a synthetic broadcast.
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "bench").TakeValue();
  std::printf("\nFDE population run over %lld frames:\n%s",
              static_cast<long long>(broadcast.video->num_frames()),
              indexer->last_report()->ToString().c_str());
  std::printf("COBRA layers: raw=%zu feature=%zu object=%zu event=%zu\n",
              desc.Layer(core::CobraLayer::kRawData).size(),
              desc.Layer(core::CobraLayer::kFeature).size(),
              desc.Layer(core::CobraLayer::kObject).size(),
              desc.Layer(core::CobraLayer::kEvent).size());
  bench::PrintRule();
}

void BM_GrammarParse(benchmark::State& state) {
  for (auto _ : state) {
    auto grammar = grammar::FeatureGrammar::Parse(core::TennisGrammarText());
    benchmark::DoNotOptimize(grammar);
  }
}
BENCHMARK(BM_GrammarParse);

void BM_FdeFullRun(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 2;
  config.min_court_frames = 80;
  config.max_court_frames = 100;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  for (auto _ : state) {
    auto desc = indexer->Index(*broadcast.video, 1, "bench");
    if (!desc.ok()) state.SkipWithError(desc.status().ToString().c_str());
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdeFullRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::OpenJsonArtifact("BENCH_E1.json");
  PrintFigureOne();
  PrintParallelScaling();
  PrintRealDecodeScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
