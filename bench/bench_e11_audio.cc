/// \file bench_e11_audio.cc
/// E11 (extension) — audio fragment indexing: the tournament site also
/// carries "audio files of interviews" (paper §2). Tables: 3-class
/// classification of pure clips, and sample-level segmentation accuracy on
/// interview-style composites (speech/silence alternation + applause tail).

#include <benchmark/benchmark.h>

#include "audio/features.h"
#include "audio/synthesizer.h"
#include "bench_util.h"
#include "util/stats.h"

namespace {

using namespace cobra;  // NOLINT

void RunTables() {
  bench::PrintHeader("E11", "audio classification and segmentation");

  // --- pure-clip classification ---
  audio::AudioAnalyzer analyzer;
  const char* class_names[] = {audio::kClassSpeech, audio::kClassMusic,
                               audio::kClassApplause};
  ConfusionMatrix cm(3);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    audio::AudioSynthConfig config;
    config.seed = seed;
    audio::AudioSynthesizer synth(config);
    audio::AudioSignal clips[3] = {synth.Speech(4.0), synth.Music(4.0),
                                   synth.Applause(4.0)};
    for (int truth = 0; truth < 3; ++truth) {
      auto segments = analyzer.Segment(clips[truth]).TakeValue();
      // Majority non-silence label.
      double best_fraction = -1.0;
      int predicted = truth;
      for (int candidate = 0; candidate < 3; ++candidate) {
        double fraction =
            audio::LabeledFraction(segments, class_names[candidate],
                                   clips[truth].num_samples())
                .TakeValue();
        if (fraction > best_fraction) {
          best_fraction = fraction;
          predicted = candidate;
        }
      }
      cm.Add(static_cast<size_t>(truth), static_cast<size_t>(predicted));
    }
  }
  std::printf("pure 4s clips, 10 seeds per class:\n%s\n",
              cm.ToString({"speech", "music", "applause"}).c_str());
  std::printf("accuracy: %.3f\n", cm.Accuracy());

  // --- interview segmentation ---
  std::printf("\ninterview segmentation (sample-level agreement):\n");
  std::printf("%-8s %10s %12s\n", "seed", "agree", "speech_frac");
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    audio::AudioSynthConfig config;
    config.seed = seed * 100;
    audio::AudioSynthesizer synth(config);
    auto interview = synth.Interview(12.0, /*applause_tail=*/true);
    auto segments = analyzer.Segment(interview.signal).TakeValue();
    auto label_at = [](const std::vector<audio::AudioSegment>& segs,
                       int64_t sample) -> std::string {
      for (const auto& s : segs) {
        if (s.range.Contains(sample)) return s.label;
      }
      return std::string();
    };
    int64_t agree = 0, total = 0;
    for (int64_t s = 0; s < interview.signal.num_samples(); s += 800) {
      std::string truth = label_at(interview.segments, s);
      std::string detected = label_at(segments, s);
      if (truth.empty() || detected.empty()) continue;
      if (truth == audio::kClassSpeech && detected == audio::kClassSilence) {
        continue;  // intra-speech pauses legitimately read as silence
      }
      ++total;
      if (truth == detected) ++agree;
    }
    double speech_fraction =
        audio::LabeledFraction(segments, audio::kClassSpeech,
                               interview.signal.num_samples())
            .TakeValue();
    std::printf("%-8llu %9.1f%% %12.2f\n", static_cast<unsigned long long>(seed),
                100.0 * agree / std::max<int64_t>(total, 1), speech_fraction);
  }
  bench::PrintRule();
}

void BM_AnalyzeSecond(benchmark::State& state) {
  audio::AudioSynthesizer synth;
  audio::AudioSignal speech = synth.Speech(1.0);
  audio::AudioAnalyzer analyzer;
  for (auto _ : state) {
    auto features = analyzer.Analyze(speech);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_AnalyzeSecond)->Unit(benchmark::kMillisecond);

void BM_SegmentInterview(benchmark::State& state) {
  audio::AudioSynthesizer synth;
  auto interview = synth.Interview(10.0, true);
  audio::AudioAnalyzer analyzer;
  for (auto _ : state) {
    auto segments = analyzer.Segment(interview.signal);
    benchmark::DoNotOptimize(segments);
  }
}
BENCHMARK(BM_SegmentInterview)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
