/// \file bench_e9_compressed_domain.cc
/// E9 (extension) — compressed-domain vs pixel-domain shot detection.
/// The demo's raw layer is MPEG video; an encoder's macroblock statistics
/// (intra-coded ratio) give shot boundaries for free, without decoding
/// pixels or computing histograms. The table compares detection quality and
/// cost, plus the codec's rate/distortion behaviour.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "detectors/compressed_shot_boundary.h"
#include "detectors/shot_boundary.h"
#include "media/block_codec.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

using namespace cobra;  // NOLINT

void RunComparison() {
  bench::PrintHeader("E9", "compressed-domain vs pixel-domain shot detection");
  std::printf("%-8s %-22s %8s %8s %8s %12s\n", "noise", "method", "P", "R",
              "F1", "ms");
  for (double noise : {0.0, 4.0, 8.0}) {
    auto broadcast = media::TennisBroadcastSynthesizer(
                         bench::DefaultBroadcast(42, noise))
                         .Synthesize()
                         .TakeValue();
    auto cuts = broadcast.truth.CutPositions();
    auto encoded =
        media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();

    // Pixel domain: decode + histogram differencing.
    media::CodedVideoSource decoded(encoded);
    detectors::ShotBoundaryDetector pixel_detector;
    auto t0 = std::chrono::steady_clock::now();
    auto pixel = pixel_detector.Detect(decoded).TakeValue();
    auto t1 = std::chrono::steady_clock::now();
    double pixel_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    PrecisionRecall pixel_pr = MatchWithTolerance(cuts, pixel.boundaries, 2);

    // Compressed domain: threshold the encoder statistics.
    detectors::CompressedShotBoundaryDetector compressed_detector;
    t0 = std::chrono::steady_clock::now();
    auto compressed = compressed_detector.Detect(encoded);
    t1 = std::chrono::steady_clock::now();
    double compressed_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    PrecisionRecall compressed_pr = MatchWithTolerance(cuts, compressed, 2);

    std::printf("%-8.0f %-22s %8.3f %8.3f %8.3f %12.3f\n", noise,
                "pixel (decode+hist)", pixel_pr.Precision(), pixel_pr.Recall(),
                pixel_pr.F1(), pixel_ms);
    std::printf("%-8.0f %-22s %8.3f %8.3f %8.3f %12.3f\n", noise,
                "compressed (MB stats)", compressed_pr.Precision(),
                compressed_pr.Recall(), compressed_pr.F1(), compressed_ms);
  }

  // --- rate / distortion of the codec itself ---
  std::printf("\ncodec rate/distortion (%d frames):\n",
              static_cast<int>(bench::DefaultBroadcast().num_points));
  std::printf("%-10s %14s %12s %12s\n", "quality", "bytes/frame", "ratio",
              "mean PSNR");
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  for (int quality : {30, 50, 75, 90}) {
    media::CodecConfig config;
    config.quality = quality;
    auto encoded =
        media::BlockVideoEncoder::Encode(*broadcast.video, config).TakeValue();
    double ratio = encoded.CompressionRatio();
    double bytes_per_frame = static_cast<double>(encoded.TotalBytes()) /
                             static_cast<double>(encoded.num_frames());
    media::CodedVideoSource decoded(std::move(encoded));
    RunningStats psnr;
    for (int64_t f = 0; f < decoded.num_frames(); f += 25) {
      psnr.Add(media::ComputePsnr(broadcast.video->GetFrame(f).TakeValue(),
                                  decoded.GetFrame(f).TakeValue())
                   .TakeValue());
    }
    std::printf("%-10d %14.0f %11.1fx %12.2f\n", quality, bytes_per_frame,
                ratio, psnr.mean());
  }
  bench::PrintRule();
}

/// GOP-parallel full decode: every I-frame is a random-access point, so
/// independent GOPs decode concurrently on a thread pool. Frames are
/// bit-identical to the sequential scan (the tier-1 property tests assert
/// it); this table reports the wall-time side of that trade.
void RunGopParallelDecode() {
  bench::PrintHeader("E9", "GOP-parallel decode (DecodeAll)");
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  auto encoded = media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
  media::CodedVideoSource source(std::move(encoded));
  std::printf("%lld frames, %lld GOPs, active SIMD tier: %s\n",
              static_cast<long long>(source.num_frames()),
              static_cast<long long>(source.encoded().NumGops()),
              util::simd::SimdLevelName(util::simd::CpuBestLevel()));
  std::printf("%-24s %12s\n", "configuration", "wall ms");

  util::simd::SetForcedLevel(0);  // the seed decoder's (scalar) DCT tier
  source.DecodeAll().TakeValue();  // warm-up
  bench::WallTimer scalar_timer;
  source.DecodeAll().TakeValue();
  double scalar_ms = scalar_timer.Millis();
  util::simd::SetForcedLevel(-1);
  std::printf("%-24s %12.1f\n", "sequential, scalar DCT", scalar_ms);
  bench::PrintJsonMetric("e9_compressed_domain",
                         "decode_all_wall_ms_seq_scalar", scalar_ms);

  source.DecodeAll().TakeValue();  // warm-up
  bench::WallTimer timer;
  source.DecodeAll().TakeValue();
  double seq_ms = timer.Millis();
  std::printf("%-24s %12.1f\n", "sequential", seq_ms);
  bench::PrintJsonMetric("e9_compressed_domain", "decode_all_wall_ms_seq",
                         seq_ms);
  bench::PrintJsonMetric("e9_compressed_domain", "decode_simd_speedup",
                         scalar_ms / seq_ms);

  util::ThreadPool pool(4);
  source.DecodeAll(&pool).TakeValue();  // warm-up
  timer = bench::WallTimer();
  source.DecodeAll(&pool).TakeValue();
  double par_ms = timer.Millis();
  std::printf("%-24s %12.1f\n", "gop-parallel, 4 threads", par_ms);
  bench::PrintJsonMetric("e9_compressed_domain", "decode_all_wall_ms_4t",
                         par_ms);

  double speedup = seq_ms / par_ms;
  std::printf("speedup: %.2fx\n", speedup);
  bench::PrintJsonMetric("e9_compressed_domain", "decode_all_speedup_4t",
                         speedup);
  bench::PrintRule();
}

void BM_Encode(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  for (auto _ : state) {
    auto encoded = media::BlockVideoEncoder::Encode(*broadcast.video);
    benchmark::DoNotOptimize(encoded);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(broadcast.video->num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Encode)->Unit(benchmark::kMillisecond);

void BM_DecodeSequential(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto encoded = media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
  media::CodedVideoSource decoded(std::move(encoded));
  for (auto _ : state) {
    for (int64_t f = 0; f < decoded.num_frames(); ++f) {
      auto frame = decoded.GetFrame(f);
      benchmark::DoNotOptimize(frame);
    }
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(decoded.num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeSequential)->Unit(benchmark::kMillisecond);

void BM_DecodeGopParallel(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto encoded = media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
  media::CodedVideoSource decoded(std::move(encoded));
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto video = decoded.DecodeAll(&pool);
    if (!video.ok()) state.SkipWithError(video.status().ToString().c_str());
    benchmark::DoNotOptimize(video);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(decoded.num_frames()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeGopParallel)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CompressedDetect(benchmark::State& state) {
  auto broadcast =
      media::TennisBroadcastSynthesizer(bench::DefaultBroadcast()).Synthesize()
          .TakeValue();
  auto encoded = media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
  detectors::CompressedShotBoundaryDetector detector;
  for (auto _ : state) {
    auto cuts = detector.Detect(encoded);
    benchmark::DoNotOptimize(cuts);
  }
}
BENCHMARK(BM_CompressedDetect)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  bench::OpenJsonArtifact("BENCH_E9.json");
  RunComparison();
  RunGopParallelDecode();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
