/// \file bench_e10_postings.cc
/// E10 (extension) — postings compression in the main-memory IR index:
/// delta+varbyte postings size vs raw arrays, and the search-latency cost
/// of on-the-fly decompression. The relevant trade-off for ref [1]'s
/// "database approach": smaller postings mean larger collections fit in
/// memory at a modest CPU cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_util.h"
#include "text/compressed_index.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace {

using namespace cobra;  // NOLINT

std::unique_ptr<text::InvertedIndex> BuildIndex(size_t docs) {
  text::CorpusConfig config;
  config.num_docs = docs;
  config.vocabulary_size = 8000;
  config.seed = 21;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  auto index = std::make_unique<text::InvertedIndex>();
  for (size_t d = 0; d < corpus.size(); ++d) {
    (void)index->AddText(static_cast<int64_t>(d), corpus.document(d));
  }
  (void)index->Finalize();
  return index;
}

void RunTable() {
  bench::PrintHeader("E10", "postings compression: size and latency");
  std::printf("%-10s %12s %14s %14s %8s %12s %12s\n", "docs", "postings",
              "raw_bytes", "packed_bytes", "ratio", "raw_ms", "packed_ms");
  text::CorpusConfig query_config;
  query_config.vocabulary_size = 8000;
  auto query_corpus = text::SyntheticCorpus::Generate(query_config).TakeValue();

  for (size_t docs : {1000, 4000, 16000, 32000}) {
    auto index = BuildIndex(docs);
    auto compressed =
        text::CompressedInvertedIndex::FromIndex(*index).TakeValue();
    double raw_ms = 0, packed_ms = 0;
    const int kQueries = 10;
    for (int q = 0; q < kQueries; ++q) {
      std::string query =
          text::VocabularyWord(1) + " " +
          query_corpus.MakeQuery(3, static_cast<uint64_t>(q));
      auto t0 = std::chrono::steady_clock::now();
      auto a = index->SearchExhaustive(query, 10);
      auto t1 = std::chrono::steady_clock::now();
      auto b = compressed.Search(query, 10);
      auto t2 = std::chrono::steady_clock::now();
      raw_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      packed_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    }
    std::printf("%-10zu %12lld %14zu %14zu %7.2fx %12.3f %12.3f\n", docs,
                static_cast<long long>(index->TotalPostings()),
                compressed.UncompressedBytes(), compressed.PostingsBytes(),
                static_cast<double>(compressed.UncompressedBytes()) /
                    static_cast<double>(compressed.PostingsBytes()),
                raw_ms / kQueries, packed_ms / kQueries);
  }
  bench::PrintRule();
}

void BM_SearchBackend(benchmark::State& state) {
  static auto index = BuildIndex(16000);
  static auto compressed =
      text::CompressedInvertedIndex::FromIndex(*index).TakeValue();
  text::CorpusConfig config;
  config.vocabulary_size = 8000;
  static auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  std::string query = text::VocabularyWord(1) + " " + corpus.MakeQuery(3, 4);
  const bool packed = state.range(0) == 1;
  for (auto _ : state) {
    auto hits = packed ? compressed.Search(query, 10)
                       : index->SearchExhaustive(query, 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SearchBackend)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_CompressIndex(benchmark::State& state) {
  static auto index = BuildIndex(4000);
  for (auto _ : state) {
    auto compressed = text::CompressedInvertedIndex::FromIndex(*index);
    benchmark::DoNotOptimize(compressed);
  }
}
BENCHMARK(BM_CompressIndex)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
