/// \file bench_e10_postings.cc
/// E10 (extension) — postings compression in the main-memory IR index:
/// delta+varbyte postings size vs raw arrays, and the search-latency cost
/// of on-the-fly decompression. The relevant trade-off for ref [1]'s
/// "database approach": smaller postings mean larger collections fit in
/// memory at a modest CPU cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "bench_util.h"
#include "text/compressed_index.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace {

using namespace cobra;  // NOLINT

std::unique_ptr<text::InvertedIndex> BuildIndex(size_t docs) {
  text::CorpusConfig config;
  config.num_docs = docs;
  config.vocabulary_size = 8000;
  config.seed = 21;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  auto index = std::make_unique<text::InvertedIndex>();
  for (size_t d = 0; d < corpus.size(); ++d) {
    (void)index->AddText(static_cast<int64_t>(d), corpus.document(d));
  }
  (void)index->Finalize();
  return index;
}

void RunTable() {
  bench::PrintHeader("E10", "postings compression: size and latency");
  std::printf("%-8s %11s %13s %13s %7s %9s %9s %9s %11s %9s\n", "docs",
              "postings", "raw_bytes", "packed_bytes", "ratio", "raw_ms",
              "packed_ms", "topn_ms", "topn_post", "blk_skip");
  text::CorpusConfig query_config;
  query_config.vocabulary_size = 8000;
  auto query_corpus = text::SyntheticCorpus::Generate(query_config).TakeValue();

  for (size_t docs : {1000, 4000, 16000, 32000}) {
    auto index = BuildIndex(docs);
    auto compressed =
        text::CompressedInvertedIndex::FromIndex(*index).TakeValue();
    double raw_ms = 0, packed_ms = 0, topn_ms = 0;
    int64_t full_postings = 0, topn_postings = 0, blocks_skipped = 0;
    const int kQueries = 10;
    for (int q = 0; q < kQueries; ++q) {
      std::string query =
          text::VocabularyWord(1) + " " +
          query_corpus.MakeQuery(3, static_cast<uint64_t>(q));
      text::SearchStats full_stats, topn_stats;
      auto t0 = std::chrono::steady_clock::now();
      auto a = index->SearchExhaustive(query, 10);
      auto t1 = std::chrono::steady_clock::now();
      auto b = compressed.Search(query, 10, &full_stats);
      auto t2 = std::chrono::steady_clock::now();
      // Top-N over compressed cursors: skip blocks let it answer without
      // decoding the full lists.
      auto c = compressed.SearchTopN(query, 10, &topn_stats);
      auto t3 = std::chrono::steady_clock::now();
      raw_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      packed_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
      topn_ms += std::chrono::duration<double, std::milli>(t3 - t2).count();
      full_postings += full_stats.postings_scanned;
      topn_postings += topn_stats.postings_scanned;
      blocks_skipped += topn_stats.blocks_skipped;
    }
    std::printf(
        "%-8zu %11lld %13zu %13zu %6.2fx %9.3f %9.3f %9.3f %11lld %9lld\n",
        docs, static_cast<long long>(index->TotalPostings()),
        compressed.UncompressedBytes(), compressed.PostingsBytes(),
        static_cast<double>(compressed.UncompressedBytes()) /
            static_cast<double>(compressed.PostingsBytes()),
        raw_ms / kQueries, packed_ms / kQueries, topn_ms / kQueries,
        static_cast<long long>(topn_postings / kQueries),
        static_cast<long long>(blocks_skipped / kQueries));

    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "docs%zu", docs);
    auto metric = [&](const char* name, double value) {
      std::string full = std::string(name) + "_" + prefix;
      bench::PrintJsonMetric("e10_postings", full.c_str(), value);
    };
    metric("compression_ratio",
           static_cast<double>(compressed.UncompressedBytes()) /
               static_cast<double>(compressed.PostingsBytes()));
    metric("full_decode_ms", packed_ms / kQueries);
    metric("topn_skipto_ms", topn_ms / kQueries);
    metric("full_postings_decoded",
           static_cast<double>(full_postings / kQueries));
    metric("topn_postings_decoded",
           static_cast<double>(topn_postings / kQueries));
    metric("topn_blocks_skipped",
           static_cast<double>(blocks_skipped / kQueries));
  }
  bench::PrintRule();
}

void BM_SearchBackend(benchmark::State& state) {
  static auto index = BuildIndex(16000);
  static auto compressed =
      text::CompressedInvertedIndex::FromIndex(*index).TakeValue();
  text::CorpusConfig config;
  config.vocabulary_size = 8000;
  static auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  std::string query = text::VocabularyWord(1) + " " + corpus.MakeQuery(3, 4);
  const int mode = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto hits = mode == 2   ? compressed.SearchTopN(query, 10)
                : mode == 1 ? compressed.Search(query, 10)
                            : index->SearchExhaustive(query, 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SearchBackend)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

void BM_CompressIndex(benchmark::State& state) {
  static auto index = BuildIndex(4000);
  for (auto _ : state) {
    auto compressed = text::CompressedInvertedIndex::FromIndex(*index);
    benchmark::DoNotOptimize(compressed);
  }
}
BENCHMARK(BM_CompressIndex)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
