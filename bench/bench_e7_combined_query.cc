/// \file bench_e7_combined_query.cc
/// E7 — the motivating query of paper §2: "video scenes of left-handed
/// female players who have won the Australian Open in the past, in which
/// they approach the net". Compares the conceptual (webspace + COBRA)
/// engine against the keyword-only baseline on player precision/recall,
/// and reports the engine's latency breakdown. Expected shape: conceptual
/// query precision 1.0 (exact semantics); keyword search poisoned by the
/// hidden-semantics trap.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "engine/digital_library.h"
#include "engine/query_engine.h"
#include "engine/query_language.h"
#include "media/tennis_synthesizer.h"
#include "storage/ops.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stats.h"
#include "webspace/query.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT

struct Library {
  std::unique_ptr<engine::DigitalLibrary> library;
  std::vector<int64_t> answer;     ///< left-handed female champions
  std::vector<int64_t> champions;
  size_t num_players = 0;
};

const Library& SharedLibrary() {
  static const Library* lib = [] {
    webspace::SiteConfig site_config;
    site_config.num_players = 24;
    site_config.num_past_years = 6;
    site_config.videos_per_year = 1;
    site_config.seed = 2002;
    site_config.ensure_answer = true;
    auto site = webspace::SiteSynthesizer::Generate(site_config).TakeValue();
    auto* out = new Library();
    out->answer = site.left_handed_female_champions;
    out->champions = site.champions;
    out->num_players = site.player_oids.size();
    auto interview_texts = site.interview_texts;
    auto video_seeds = site.video_seeds;
    out->library =
        engine::DigitalLibrary::Create(std::move(site.store)).TakeValue();
    for (const auto& [oid, text] : interview_texts) {
      (void)out->library->AddInterview(oid, text);
    }
    (void)out->library->FinalizeText();
    auto indexer = core::TennisVideoIndexer::Create().TakeValue();
    for (const auto& [video_oid, seed] : video_seeds) {
      media::TennisSynthConfig config;
      config.width = 128;
      config.height = 96;
      config.num_points = 2;
      config.min_court_frames = 100;
      config.max_court_frames = 130;
      config.min_cutaway_frames = 12;
      config.max_cutaway_frames = 18;
      config.noise_sigma = 3.0;
      config.net_approach_prob = 1.0;
      config.seed = seed;
      auto broadcast =
          media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
      auto desc = indexer->Index(*broadcast.video, video_oid, "match");
      if (desc.ok()) (void)out->library->AddVideoDescription(*desc);
    }
    return out;
  }();
  return *lib;
}

PrecisionRecall ScorePlayers(const std::vector<int64_t>& truth,
                             const std::set<int64_t>& found) {
  PrecisionRecall pr;
  std::set<int64_t> truth_set(truth.begin(), truth.end());
  for (int64_t p : found) {
    if (truth_set.count(p)) {
      pr.true_positives++;
    } else {
      pr.false_positives++;
    }
  }
  for (int64_t p : truth) {
    if (!found.count(p)) pr.false_negatives++;
  }
  return pr;
}

void RunComparison() {
  bench::PrintHeader("E7", "combined concept+content query vs keyword search");
  const Library& lib = SharedLibrary();
  std::printf("site: %zu players, %zu champions, truth answer size %zu\n\n",
              lib.num_players, lib.champions.size(), lib.answer.size());

  // --- conceptual combined query (typed in the demo query language) ---
  auto query = engine::ParseQuery(
                   "player.hand = left AND player.gender = female AND "
                   "won = any AND event = net_play")
                   .TakeValue();
  constexpr int kLatencyReps = 30;
  std::vector<double> latency_ms;
  std::vector<engine::SceneHit> hits;
  for (int rep = 0; rep < kLatencyReps; ++rep) {
    bench::WallTimer timer;
    hits = lib.library->Search(query).TakeValue();
    latency_ms.push_back(timer.Millis());
  }
  std::set<int64_t> concept_players;
  for (const auto& hit : hits) concept_players.insert(hit.player_oid);
  PrecisionRecall concept_pr = ScorePlayers(lib.answer, concept_players);

  // --- keyword baselines at several cutoffs ---
  std::printf("%-34s %8s %8s %8s %8s\n", "method", "P", "R", "F1", "scenes");
  std::printf("%-34s %8.3f %8.3f %8.3f %8zu\n",
              "conceptual (webspace+COBRA)", concept_pr.Precision(),
              concept_pr.Recall(), concept_pr.F1(), hits.size());
  for (size_t k : {5, 10, 20}) {
    auto keyword = lib.library
                       ->SearchKeywordOnly(
                           "left handed female champion won title "
                           "approaching the net",
                           k)
                       .TakeValue();
    std::set<int64_t> keyword_players;
    for (const auto& hit : keyword) keyword_players.insert(hit.player_oid);
    PrecisionRecall pr = ScorePlayers(lib.answer, keyword_players);
    std::printf("keyword top-%-22zu %8.3f %8.3f %8.3f %8s\n", k, pr.Precision(),
                pr.Recall(), pr.F1(), "-");
  }

  const double p50 = bench::Percentile(latency_ms, 0.5);
  const double p99 = bench::Percentile(latency_ms, 0.99);
  std::printf(
      "\ncombined query latency: p50 %.3f ms, p99 %.3f ms "
      "(%d reps over pre-built indexes)\n",
      p50, p99, kLatencyReps);
  bench::PrintJsonMetric("e7_combined_query", "combined_p50_ms", p50);
  bench::PrintJsonMetric("e7_combined_query", "combined_p99_ms", p99);
  std::printf("answer scenes:\n");
  for (const auto& hit : hits) {
    std::printf("  %-24s video %lld frames %s\n", hit.player_name.c_str(),
                static_cast<long long>(hit.video_oid),
                hit.range.ToString().c_str());
  }
  bench::PrintRule();
}

/// The QueryEngine front end: cold vs warm cache and batch throughput at
/// 1 vs 8 worker threads over a repeating workload.
void RunQueryEngine() {
  bench::PrintHeader("E7b", "query engine: result cache + concurrent batches");
  const Library& lib = SharedLibrary();

  std::vector<engine::CombinedQuery> workload;
  const char* texts[] = {"champion title", "approaching the net",
                         "great serve",    "tournament win",
                         "champion title", "approaching the net"};
  for (const char* text : texts) {
    engine::CombinedQuery query;
    query.text = text;
    workload.push_back(query);
  }
  {
    auto query = engine::ParseQuery(
                     "player.hand = left AND player.gender = female AND "
                     "won = any AND event = net_play")
                     .TakeValue();
    workload.push_back(query);
    workload.push_back(query);  // repeat: cacheable
  }
  // 4 rounds of the workload: round 1 is cold, the rest warm.
  std::vector<engine::CombinedQuery> batch;
  for (int round = 0; round < 4; ++round) {
    batch.insert(batch.end(), workload.begin(), workload.end());
  }

  std::printf("%-28s %10s %10s %10s\n", "configuration", "total_ms",
              "hit_rate", "errors");
  double serial_ms = 0;
  for (int threads : {1, 8}) {
    engine::QueryEngineConfig config;
    config.num_threads = threads;
    engine::QueryEngine eng(lib.library.get(), config);
    auto t0 = std::chrono::steady_clock::now();
    auto results = eng.SearchBatch(batch);
    auto t1 = std::chrono::steady_clock::now();
    int64_t errors = 0;
    for (const auto& r : results) {
      if (!r.ok()) ++errors;
    }
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (threads == 1) serial_ms = ms;
    engine::QueryEngineStats stats = eng.stats();
    char label[64];
    std::snprintf(label, sizeof(label), "batch %zu, %d thread(s)",
                  batch.size(), threads);
    std::printf("%-28s %10.3f %10.3f %10lld\n", label, ms,
                stats.CacheHitRate(), static_cast<long long>(errors));
    char metric[64];
    std::snprintf(metric, sizeof(metric), "batch_ms_threads%d", threads);
    bench::PrintJsonMetric("e7_combined_query", metric, ms);
    std::snprintf(metric, sizeof(metric), "cache_hit_rate_threads%d", threads);
    bench::PrintJsonMetric("e7_combined_query", metric, stats.CacheHitRate());
  }
  (void)serial_ms;

  // Cold vs warm single-query latency through the cache.
  engine::QueryEngine eng(lib.library.get(), engine::QueryEngineConfig{});
  auto query = workload.front();
  auto t0 = std::chrono::steady_clock::now();
  (void)eng.Search(query);
  auto t1 = std::chrono::steady_clock::now();
  (void)eng.Search(query);
  auto t2 = std::chrono::steady_clock::now();
  double cold_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  double warm_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  std::printf("cold query %.3f ms, cached %.3f ms (%.0fx)\n", cold_ms, warm_ms,
              cold_ms / std::max(warm_ms, 1e-9));
  bench::PrintJsonMetric("e7_combined_query", "cold_query_ms", cold_ms);
  bench::PrintJsonMetric("e7_combined_query", "cached_query_ms", warm_ms);
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// E7c — columnar execution at 100k-row class tables: the vectorized
// Select/Refine/HashJoin/OrderBy operators and the indexed webspace path
// query against the pre-PR row-at-a-time path (storage::reference plus a
// faithful reproduction of the old full-scan traversal).

/// Pre-PR SelectObjects: reference scan + per-row GetInt + sort.
std::vector<int64_t> OldSelectObjects(const webspace::WebspaceStore& store,
                                      const webspace::ClassSelection& sel) {
  const storage::Table* table = store.ClassTable(sel.class_name).TakeValue();
  auto rows = storage::reference::SelectAll(*table, sel.predicates).TakeValue();
  std::vector<int64_t> oids;
  oids.reserve(rows.size());
  for (int64_t r : rows) oids.push_back(table->GetInt(r, 0).TakeValue());
  std::sort(oids.begin(), oids.end());
  return oids;
}

/// Pre-PR Traverse: full association-table scan against a key set.
std::vector<int64_t> OldTraverse(const webspace::WebspaceStore& store,
                                 const std::string& assoc,
                                 const std::vector<int64_t>& keys) {
  const storage::Table* table = store.AssociationTable(assoc).TakeValue();
  std::set<int64_t> key_set(keys.begin(), keys.end());
  std::set<int64_t> out;
  const auto& from = table->IntColumn(0);
  const auto& to = table->IntColumn(1);
  for (size_t r = 0; r < from.size(); ++r) {
    if (key_set.count(from[r])) out.insert(to[r]);
  }
  return std::vector<int64_t>(out.begin(), out.end());
}

/// Pre-PR ExecuteQuery: old SelectObjects per hop + set intersection.
std::vector<int64_t> OldExecuteQuery(const webspace::WebspaceStore& store,
                                     const webspace::WebspaceQuery& query) {
  std::vector<int64_t> current = OldSelectObjects(store, query.source);
  for (const webspace::PathStep& step : query.path) {
    if (current.empty()) return current;
    std::vector<int64_t> reached =
        OldTraverse(store, step.association, current);
    std::vector<int64_t> allowed = OldSelectObjects(store, step.target);
    std::set<int64_t> allowed_set(allowed.begin(), allowed.end());
    std::vector<int64_t> filtered;
    for (int64_t oid : reached) {
      if (allowed_set.count(oid)) filtered.push_back(oid);
    }
    current = std::move(filtered);
  }
  return current;
}

void RunColumnarScale() {
  bench::PrintHeader("E7c", "vectorized columnar execution at 100k rows");
  constexpr int64_t kPlayers = 100000;
  constexpr int64_t kVideos = 2000;
  constexpr int kReps = 5;

  auto schema = webspace::ConceptSchema::Create(
                    {webspace::ClassDef{
                         "Player",
                         {{"name", storage::DataType::kString},
                          {"hand", storage::DataType::kString},
                          {"gender", storage::DataType::kString},
                          {"rank", storage::DataType::kInt64},
                          {"rating", storage::DataType::kDouble}}},
                     webspace::ClassDef{"Video",
                                        {{"year", storage::DataType::kInt64}}}},
                    {webspace::AssociationDef{"plays_in", "Player", "Video"}})
                    .TakeValue();
  auto store = webspace::WebspaceStore::Create(std::move(schema)).TakeValue();
  Rng rng(424242);
  std::vector<int64_t> video_oids;
  for (int64_t v = 0; v < kVideos; ++v) {
    video_oids.push_back(
        store.Insert("Video", {rng.NextInt(1990, 2002)}).TakeValue());
  }
  std::vector<int64_t> player_oids;
  for (int64_t p = 0; p < kPlayers; ++p) {
    const char* hand = rng.NextBounded(10) < 2 ? "left" : "right";
    const char* gender = rng.NextBounded(2) ? "female" : "male";
    player_oids.push_back(
        store
            .Insert("Player", {"player_" + std::to_string(p),
                               std::string(hand), std::string(gender),
                               rng.NextInt(1, 100000), rng.NextDouble()})
            .TakeValue());
    for (int64_t links = rng.NextInt(1, 2); links > 0; --links) {
      (void)store.Link("plays_in", player_oids.back(),
                       video_oids[rng.NextBounded(video_oids.size())]);
    }
  }
  const storage::Table& players = *store.ClassTable("Player").TakeValue();

  std::printf("store: %lld players, %lld videos (simd tier: %s)\n\n",
              static_cast<long long>(kPlayers),
              static_cast<long long>(kVideos),
              storage::kernels::SimdLevelName(storage::kernels::ActiveLevel()));
  std::printf("%-26s %10s %10s %9s %8s\n", "operator (100k rows)", "ref_ms",
              "new_ms", "speedup", "rows");

  auto report = [](const char* name, const char* metric, double ref_ms,
                   double new_ms, size_t rows) {
    std::printf("%-26s %10.3f %10.3f %8.1fx %8zu\n", name, ref_ms, new_ms,
                ref_ms / std::max(new_ms, 1e-9), rows);
    std::string key(metric);
    bench::PrintJsonMetric("e7_combined_query", (key + "_ref_ms").c_str(),
                           ref_ms);
    bench::PrintJsonMetric("e7_combined_query", (key + "_new_ms").c_str(),
                           new_ms);
    bench::PrintJsonMetric("e7_combined_query", (key + "_speedup").c_str(),
                           ref_ms / std::max(new_ms, 1e-9));
  };

  // --- conjunctive selection over the class table ---
  const std::vector<storage::Predicate> preds = {
      {"hand", storage::CompareOp::kEq, std::string("left")},
      {"gender", storage::CompareOp::kEq, std::string("female")},
      {"rank", storage::CompareOp::kLt, int64_t{20000}}};
  std::vector<int64_t> sel_ref, sel_new;
  const double select_ref_ms = bench::MedianMs(kReps, [&] {
    sel_ref = storage::reference::SelectAll(players, preds).TakeValue();
  });
  const double select_new_ms = bench::MedianMs(kReps, [&] {
    sel_new = storage::SelectAll(players, preds).TakeValue();
  });
  report("select (3 predicates)", "select", select_ref_ms, select_new_ms,
         sel_new.size());

  // --- webspace path query: selection + association walk + hop filter ---
  webspace::WebspaceQuery path_query;
  path_query.source = {"Player",
                       {{"hand", storage::CompareOp::kEq, std::string("left")}}};
  path_query.path.push_back(webspace::PathStep{
      "plays_in", false, -1,
      {"Video", {{"year", storage::CompareOp::kGe, int64_t{1998}}}}});
  std::vector<int64_t> path_ref, path_new;
  const double path_ref_ms = bench::MedianMs(
      kReps, [&] { path_ref = OldExecuteQuery(store, path_query); });
  const double path_new_ms = bench::MedianMs(kReps, [&] {
    path_new = webspace::ExecuteQuery(store, path_query).TakeValue();
  });
  report("path query (1 hop)", "path_query", path_ref_ms, path_new_ms,
         path_new.size());
  if (path_ref != path_new) {
    std::printf("ERROR: path query results diverge from the scalar path\n");
  }

  // --- hash join: 100k probe rows into a 20k-row build side ---
  auto make_side = [&](int64_t rows, uint64_t seed) {
    storage::Table t =
        storage::Table::Create({{"key", storage::DataType::kInt64},
                                {"payload", storage::DataType::kDouble}})
            .TakeValue();
    Rng r2(seed);
    for (int64_t i = 0; i < rows; ++i) {
      (void)t.AppendRow({r2.NextInt(0, 20000), r2.NextDouble()});
    }
    return t;
  };
  storage::Table join_left = make_side(kPlayers, 7);
  storage::Table join_right = make_side(20000, 8);
  storage::Table join_out_ref =
      storage::reference::HashJoin(join_left, join_right, "key", "key")
          .TakeValue();
  const double join_ref_ms = bench::MedianMs(kReps, [&] {
    auto out = storage::reference::HashJoin(join_left, join_right, "key", "key");
    benchmark::DoNotOptimize(out);
  });
  storage::Table join_out_new =
      storage::HashJoin(join_left, join_right, "key", "key",
                        storage::JoinOptions{4})
          .TakeValue();
  const double join_new_ms = bench::MedianMs(kReps, [&] {
    auto out = storage::HashJoin(join_left, join_right, "key", "key",
                                 storage::JoinOptions{4});
    benchmark::DoNotOptimize(out);
  });
  report("hash join (4 threads)", "hash_join", join_ref_ms, join_new_ms,
         static_cast<size_t>(join_out_new.num_rows()));
  if (join_out_ref.num_rows() != join_out_new.num_rows()) {
    std::printf("ERROR: join cardinality diverges from the scalar path\n");
  }

  // --- order-by/limit top-10 ---
  std::vector<int64_t> top_ref, top_new;
  const double orderby_ref_ms = bench::MedianMs(kReps, [&] {
    top_ref =
        storage::reference::OrderBy(players, "rating", true, 10).TakeValue();
  });
  const double orderby_new_ms = bench::MedianMs(kReps, [&] {
    top_new = storage::OrderBy(players, "rating", true, 10).TakeValue();
  });
  report("order-by top-10", "orderby", orderby_ref_ms, orderby_new_ms,
         top_new.size());
  if (top_ref != top_new) {
    std::printf("ERROR: order-by results diverge from the scalar path\n");
  }

  // --- bit-identity across forced SIMD tiers ---
  bool identical = sel_ref == sel_new;
  for (int level : {0, 1, 2}) {
    util::simd::SetForcedLevel(level);
    identical = identical &&
                storage::SelectAll(players, preds).TakeValue() == sel_ref &&
                webspace::ExecuteQuery(store, path_query).TakeValue() == path_ref;
  }
  util::simd::SetForcedLevel(-1);
  std::printf("\nforced tiers scalar/sse4.1/avx2 bit-identical: %s\n",
              identical ? "yes" : "NO");
  bench::PrintJsonMetric("e7_combined_query", "tiers_identical",
                         identical ? 1.0 : 0.0);
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// E7d — the cost-based multi-modal planner against the fixed-order pipeline
// (same DigitalLibrary, `set_planner_enabled(false)` selects the reference
// path). The corpus is large enough that predicate order, the filtered
// DAAT, and short-circuits dominate; results must stay bit-identical.

/// A 50k-player tournament site with 20k interviews and no videos: big
/// class tables, skewed predicate selectivities, and text postings long
/// enough that cross-modal pruning pays.
std::unique_ptr<engine::DigitalLibrary> BuildPlannerCorpus() {
  constexpr int64_t kPlayers = 50000;
  constexpr int64_t kInterviews = 20000;
  auto schema = webspace::SiteSynthesizer::TournamentSchema().TakeValue();
  auto store = webspace::WebspaceStore::Create(std::move(schema)).TakeValue();
  Rng rng(77);
  const char* countries[] = {"usa",     "france", "spain",
                             "germany", "japan",  "brazil"};
  std::vector<int64_t> player_oids;
  player_oids.reserve(kPlayers);
  for (int64_t p = 0; p < kPlayers; ++p) {
    const char* gender = rng.NextBounded(2) ? "female" : "male";
    const char* hand = rng.NextBounded(10) < 2 ? "left" : "right";
    player_oids.push_back(
        store
            .Insert("Player",
                    {"player_" + std::to_string(p), std::string(gender),
                     std::string(hand),
                     std::string(countries[rng.NextBounded(6)]),
                     int64_t{p + 1}})
            .TakeValue());
  }
  for (int year = 1995; year <= 2002; ++year) {
    int64_t tournament =
        store
            .Insert("Tournament",
                    {"open_" + std::to_string(year), int64_t{year}})
            .TakeValue();
    for (int w = 0; w < 12; ++w) {
      (void)store.Link("won", player_oids[rng.NextBounded(512)], tournament);
    }
  }
  // Interviews for the first 20k players: filler vocabulary everywhere, the
  // query terms ("playoff", "decider") on a minority of documents so their
  // postings stay short relative to text_top_k (the filter-eligibility
  // bound) while still covering thousands of documents.
  static const char* kFiller[] = {"match", "game",     "set",      "court",
                                  "coach", "season",   "training", "crowd",
                                  "serve", "baseline", "volley",   "return"};
  std::vector<std::pair<int64_t, std::string>> interviews;
  interviews.reserve(kInterviews);
  for (int64_t i = 0; i < kInterviews; ++i) {
    std::string text;
    for (int w = 0; w < 20; ++w) {
      text += kFiller[rng.NextBounded(12)];
      text += ' ';
    }
    if (rng.NextBounded(100) < 8) text += " playoff";
    if (rng.NextBounded(100) < 3) text += " decider";
    int64_t interview_oid =
        store.Insert("Interview", {"interview_" + std::to_string(i), text})
            .TakeValue();
    (void)store.Link("interviewed_in", player_oids[static_cast<size_t>(i)],
                     interview_oid);
    interviews.emplace_back(interview_oid, std::move(text));
  }
  auto library = engine::DigitalLibrary::Create(std::move(store)).TakeValue();
  for (const auto& [oid, text] : interviews) {
    (void)library->AddInterview(oid, text);
  }
  (void)library->FinalizeText();
  return library;
}

void RunPlannerVariants() {
  bench::PrintHeader("E7d", "cost-based planner vs fixed-order pipeline");
  auto library = BuildPlannerCorpus();
  constexpr int kReps = 15;

  struct Variant {
    const char* key;
    const char* label;
    engine::CombinedQuery query;
  };
  std::vector<Variant> variants;
  {
    // Predicates deliberately listed least-selective first; the planner
    // reorders ranking<=10 to the front and refines 10 rows, the fixed
    // order drags ~25k rows through three string refines.
    engine::CombinedQuery q;
    q.player_predicates = {
        {"gender", storage::CompareOp::kEq, std::string("female")},
        {"hand", storage::CompareOp::kEq, std::string("right")},
        {"country", storage::CompareOp::kEq, std::string("france")},
        {"ranking", storage::CompareOp::kLe, int64_t{10}}};
    variants.push_back({"selective_preds", "V1 selective predicates", q});
  }
  {
    // Text-heavy: the concept side pins ~100 players, so the planner pushes
    // their interview set into the DAAT as an accept filter; the fixed
    // order ranks every matching document globally and walks each hit back.
    engine::CombinedQuery q;
    q.player_predicates = {
        {"country", storage::CompareOp::kEq, std::string("japan")},
        {"ranking", storage::CompareOp::kLe, int64_t{600}}};
    q.text = "playoff decider";
    q.text_top_k = 4000;  // >= sum of document frequencies: filter-eligible
    variants.push_back({"text_filtered", "V2 text with pushed filter", q});
  }
  {
    // Provably-empty modality: "ambidextrous" misses the hand dictionary,
    // so the planner answers from statistics alone while the fixed order
    // still runs the full text search before intersecting with nothing.
    engine::CombinedQuery q;
    q.player_predicates = {
        {"hand", storage::CompareOp::kEq, std::string("ambidextrous")}};
    q.text = "playoff decider";
    q.text_top_k = 4000;
    variants.push_back({"short_circuit", "V3 provably-empty short-circuit", q});
  }

  auto same_hits = [](const std::vector<engine::SceneHit>& a,
                      const std::vector<engine::SceneHit>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].player_oid != b[i].player_oid ||
          a[i].player_name != b[i].player_name ||
          a[i].video_oid != b[i].video_oid ||
          a[i].range.begin != b[i].range.begin ||
          a[i].range.end != b[i].range.end || a[i].event != b[i].event ||
          a[i].text_score != b[i].text_score) {
        return false;
      }
    }
    return true;
  };

  std::printf("corpus: 50000 players, 20000 interviews (planner on vs off)\n\n");
  std::printf("%-32s %10s %10s %10s %9s %6s %5s\n", "variant", "off_p50",
              "on_p50", "on_p99", "speedup", "hits", "same");
  for (const Variant& variant : variants) {
    auto run = [&](bool planner_on) {
      library->set_planner_enabled(planner_on);
      std::vector<double> ms;
      ms.reserve(kReps);
      std::vector<engine::SceneHit> hits;
      for (int rep = 0; rep < kReps; ++rep) {
        bench::WallTimer timer;
        hits = library->Search(variant.query).TakeValue();
        ms.push_back(timer.Millis());
      }
      return std::make_pair(std::move(hits), std::move(ms));
    };
    auto [off_hits, off_ms] = run(false);
    auto [on_hits, on_ms] = run(true);
    library->set_planner_enabled(true);
    const bool identical = same_hits(off_hits, on_hits);
    const double off_p50 = bench::Percentile(off_ms, 0.5);
    const double on_p50 = bench::Percentile(on_ms, 0.5);
    const double speedup = off_p50 / std::max(on_p50, 1e-9);
    std::printf("%-32s %10.3f %10.3f %10.3f %8.1fx %6zu %5s\n", variant.label,
                off_p50, on_p50, bench::Percentile(on_ms, 0.99), speedup,
                on_hits.size(), identical ? "yes" : "NO");
    std::string key(variant.key);
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_off_p50_ms").c_str(), off_p50);
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_off_p99_ms").c_str(),
                           bench::Percentile(off_ms, 0.99));
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_on_p50_ms").c_str(), on_p50);
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_on_p99_ms").c_str(),
                           bench::Percentile(on_ms, 0.99));
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_speedup_p50").c_str(),
                           speedup);
    bench::PrintJsonMetric("e7_combined_query",
                           ("planner_" + key + "_identical").c_str(),
                           identical ? 1.0 : 0.0);
  }

  auto explain = library->ExplainSearch(variants[0].query);
  if (explain.ok()) {
    std::printf("\nexplain (V1):\n%s\n", explain.value().ToString().c_str());
  }
  bench::PrintRule();
}

void BM_CombinedQuery(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  auto query = engine::ParseQuery(
                   "player.hand = left AND player.gender = female AND "
                   "won = any AND event = net_play")
                   .TakeValue();
  for (auto _ : state) {
    auto hits = lib.library->Search(query);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CombinedQuery)->Unit(benchmark::kMicrosecond);

void BM_ConceptOnlyQuery(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  auto query =
      engine::ParseQuery("player.hand = left AND won = any").TakeValue();
  for (auto _ : state) {
    auto hits = lib.library->Search(query);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ConceptOnlyQuery)->Unit(benchmark::kMicrosecond);

void BM_KeywordBaseline(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  for (auto _ : state) {
    auto hits = lib.library->SearchKeywordOnly("champion title net", 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_KeywordBaseline)->Unit(benchmark::kMicrosecond);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    auto query = engine::ParseQuery(
        "player.hand = left AND player.gender = female AND won = any AND "
        "event = net_play AND text ~ \"approaching the net\"");
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryParse)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  cobra::bench::OpenJsonArtifact("BENCH_E7.json");
  RunComparison();
  RunQueryEngine();
  RunColumnarScale();
  RunPlannerVariants();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
