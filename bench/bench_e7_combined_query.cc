/// \file bench_e7_combined_query.cc
/// E7 — the motivating query of paper §2: "video scenes of left-handed
/// female players who have won the Australian Open in the past, in which
/// they approach the net". Compares the conceptual (webspace + COBRA)
/// engine against the keyword-only baseline on player precision/recall,
/// and reports the engine's latency breakdown. Expected shape: conceptual
/// query precision 1.0 (exact semantics); keyword search poisoned by the
/// hidden-semantics trap.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "engine/digital_library.h"
#include "engine/query_engine.h"
#include "engine/query_language.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT

struct Library {
  std::unique_ptr<engine::DigitalLibrary> library;
  std::vector<int64_t> answer;     ///< left-handed female champions
  std::vector<int64_t> champions;
  size_t num_players = 0;
};

const Library& SharedLibrary() {
  static const Library* lib = [] {
    webspace::SiteConfig site_config;
    site_config.num_players = 24;
    site_config.num_past_years = 6;
    site_config.videos_per_year = 1;
    site_config.seed = 2002;
    site_config.ensure_answer = true;
    auto site = webspace::SiteSynthesizer::Generate(site_config).TakeValue();
    auto* out = new Library();
    out->answer = site.left_handed_female_champions;
    out->champions = site.champions;
    out->num_players = site.player_oids.size();
    auto interview_texts = site.interview_texts;
    auto video_seeds = site.video_seeds;
    out->library =
        engine::DigitalLibrary::Create(std::move(site.store)).TakeValue();
    for (const auto& [oid, text] : interview_texts) {
      (void)out->library->AddInterview(oid, text);
    }
    (void)out->library->FinalizeText();
    auto indexer = core::TennisVideoIndexer::Create().TakeValue();
    for (const auto& [video_oid, seed] : video_seeds) {
      media::TennisSynthConfig config;
      config.width = 128;
      config.height = 96;
      config.num_points = 2;
      config.min_court_frames = 100;
      config.max_court_frames = 130;
      config.min_cutaway_frames = 12;
      config.max_cutaway_frames = 18;
      config.noise_sigma = 3.0;
      config.net_approach_prob = 1.0;
      config.seed = seed;
      auto broadcast =
          media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
      auto desc = indexer->Index(*broadcast.video, video_oid, "match");
      if (desc.ok()) (void)out->library->AddVideoDescription(*desc);
    }
    return out;
  }();
  return *lib;
}

PrecisionRecall ScorePlayers(const std::vector<int64_t>& truth,
                             const std::set<int64_t>& found) {
  PrecisionRecall pr;
  std::set<int64_t> truth_set(truth.begin(), truth.end());
  for (int64_t p : found) {
    if (truth_set.count(p)) {
      pr.true_positives++;
    } else {
      pr.false_positives++;
    }
  }
  for (int64_t p : truth) {
    if (!found.count(p)) pr.false_negatives++;
  }
  return pr;
}

void RunComparison() {
  bench::PrintHeader("E7", "combined concept+content query vs keyword search");
  const Library& lib = SharedLibrary();
  std::printf("site: %zu players, %zu champions, truth answer size %zu\n\n",
              lib.num_players, lib.champions.size(), lib.answer.size());

  // --- conceptual combined query (typed in the demo query language) ---
  auto query = engine::ParseQuery(
                   "player.hand = left AND player.gender = female AND "
                   "won = any AND event = net_play")
                   .TakeValue();
  auto t0 = std::chrono::steady_clock::now();
  auto hits = lib.library->Search(query).TakeValue();
  auto t1 = std::chrono::steady_clock::now();
  std::set<int64_t> concept_players;
  for (const auto& hit : hits) concept_players.insert(hit.player_oid);
  PrecisionRecall concept_pr = ScorePlayers(lib.answer, concept_players);

  // --- keyword baselines at several cutoffs ---
  std::printf("%-34s %8s %8s %8s %8s\n", "method", "P", "R", "F1", "scenes");
  std::printf("%-34s %8.3f %8.3f %8.3f %8zu\n",
              "conceptual (webspace+COBRA)", concept_pr.Precision(),
              concept_pr.Recall(), concept_pr.F1(), hits.size());
  for (size_t k : {5, 10, 20}) {
    auto keyword = lib.library
                       ->SearchKeywordOnly(
                           "left handed female champion won title "
                           "approaching the net",
                           k)
                       .TakeValue();
    std::set<int64_t> keyword_players;
    for (const auto& hit : keyword) keyword_players.insert(hit.player_oid);
    PrecisionRecall pr = ScorePlayers(lib.answer, keyword_players);
    std::printf("keyword top-%-22zu %8.3f %8.3f %8.3f %8s\n", k, pr.Precision(),
                pr.Recall(), pr.F1(), "-");
  }

  double query_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("\ncombined query latency: %.3f ms (over pre-built indexes)\n",
              query_ms);
  std::printf("answer scenes:\n");
  for (const auto& hit : hits) {
    std::printf("  %-24s video %lld frames %s\n", hit.player_name.c_str(),
                static_cast<long long>(hit.video_oid),
                hit.range.ToString().c_str());
  }
  bench::PrintRule();
}

/// The QueryEngine front end: cold vs warm cache and batch throughput at
/// 1 vs 8 worker threads over a repeating workload.
void RunQueryEngine() {
  bench::PrintHeader("E7b", "query engine: result cache + concurrent batches");
  const Library& lib = SharedLibrary();

  std::vector<engine::CombinedQuery> workload;
  const char* texts[] = {"champion title", "approaching the net",
                         "great serve",    "tournament win",
                         "champion title", "approaching the net"};
  for (const char* text : texts) {
    engine::CombinedQuery query;
    query.text = text;
    workload.push_back(query);
  }
  {
    auto query = engine::ParseQuery(
                     "player.hand = left AND player.gender = female AND "
                     "won = any AND event = net_play")
                     .TakeValue();
    workload.push_back(query);
    workload.push_back(query);  // repeat: cacheable
  }
  // 4 rounds of the workload: round 1 is cold, the rest warm.
  std::vector<engine::CombinedQuery> batch;
  for (int round = 0; round < 4; ++round) {
    batch.insert(batch.end(), workload.begin(), workload.end());
  }

  std::printf("%-28s %10s %10s %10s\n", "configuration", "total_ms",
              "hit_rate", "errors");
  double serial_ms = 0;
  for (int threads : {1, 8}) {
    engine::QueryEngineConfig config;
    config.num_threads = threads;
    engine::QueryEngine eng(lib.library.get(), config);
    auto t0 = std::chrono::steady_clock::now();
    auto results = eng.SearchBatch(batch);
    auto t1 = std::chrono::steady_clock::now();
    int64_t errors = 0;
    for (const auto& r : results) {
      if (!r.ok()) ++errors;
    }
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (threads == 1) serial_ms = ms;
    engine::QueryEngineStats stats = eng.stats();
    char label[64];
    std::snprintf(label, sizeof(label), "batch %zu, %d thread(s)",
                  batch.size(), threads);
    std::printf("%-28s %10.3f %10.3f %10lld\n", label, ms,
                stats.CacheHitRate(), static_cast<long long>(errors));
    char metric[64];
    std::snprintf(metric, sizeof(metric), "batch_ms_threads%d", threads);
    bench::PrintJsonMetric("e7_combined_query", metric, ms);
    std::snprintf(metric, sizeof(metric), "cache_hit_rate_threads%d", threads);
    bench::PrintJsonMetric("e7_combined_query", metric, stats.CacheHitRate());
  }
  (void)serial_ms;

  // Cold vs warm single-query latency through the cache.
  engine::QueryEngine eng(lib.library.get(), engine::QueryEngineConfig{});
  auto query = workload.front();
  auto t0 = std::chrono::steady_clock::now();
  (void)eng.Search(query);
  auto t1 = std::chrono::steady_clock::now();
  (void)eng.Search(query);
  auto t2 = std::chrono::steady_clock::now();
  double cold_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  double warm_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  std::printf("cold query %.3f ms, cached %.3f ms (%.0fx)\n", cold_ms, warm_ms,
              cold_ms / std::max(warm_ms, 1e-9));
  bench::PrintJsonMetric("e7_combined_query", "cold_query_ms", cold_ms);
  bench::PrintJsonMetric("e7_combined_query", "cached_query_ms", warm_ms);
  bench::PrintRule();
}

void BM_CombinedQuery(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  auto query = engine::ParseQuery(
                   "player.hand = left AND player.gender = female AND "
                   "won = any AND event = net_play")
                   .TakeValue();
  for (auto _ : state) {
    auto hits = lib.library->Search(query);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_CombinedQuery)->Unit(benchmark::kMicrosecond);

void BM_ConceptOnlyQuery(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  auto query =
      engine::ParseQuery("player.hand = left AND won = any").TakeValue();
  for (auto _ : state) {
    auto hits = lib.library->Search(query);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_ConceptOnlyQuery)->Unit(benchmark::kMicrosecond);

void BM_KeywordBaseline(benchmark::State& state) {
  const Library& lib = SharedLibrary();
  for (auto _ : state) {
    auto hits = lib.library->SearchKeywordOnly("champion title net", 10);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_KeywordBaseline)->Unit(benchmark::kMicrosecond);

void BM_QueryParse(benchmark::State& state) {
  for (auto _ : state) {
    auto query = engine::ParseQuery(
        "player.hand = left AND player.gender = female AND won = any AND "
        "event = net_play AND text ~ \"approaching the net\"");
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryParse)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunComparison();
  RunQueryEngine();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
