/// \file bench_e3_shot_classify.cc
/// E3 — shot classification quality (paper §3): confusion matrix and
/// per-class precision/recall of the tennis / close-up / audience / other
/// classifier over 200+ ground-truth shots from several broadcasts.
/// Expected shape: court and close-up near-perfect (dominant color and skin
/// ratio are strong cues); residual confusion lands in "other".

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "detectors/shot_classifier.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "vision/frame_feature_cache.h"
#include "vision/kernels.h"

namespace {

using namespace cobra;  // NOLINT

/// The seed's skin predicate, reproduced inline: RGB pre-checks plus an HSV
/// hue/saturation/value band computed in double per pixel. The kernel layer
/// replaced it with the equivalent integer form (media::IsSkinColor).
bool LegacyIsSkinColor(const media::Rgb& rgb) {
  if (rgb.r <= 80 || rgb.r <= rgb.g || rgb.g <= rgb.b) return false;
  if (static_cast<int>(rgb.r) - static_cast<int>(rgb.b) < 15) return false;
  media::Hsv hsv = media::RgbToHsv(rgb);
  return (hsv.h < 50.0 || hsv.h > 340.0) && hsv.s > 0.1 && hsv.s < 0.75 &&
         hsv.v > 0.3;
}

/// Skin-mask pixel-kernel throughput (DESIGN.md §4d): legacy per-pixel
/// HSV predicate vs the kernel layer's scalar tier vs the dispatched SIMD
/// tier, all single-thread p50.
void PrintSkinKernelThroughput() {
  bench::PrintHeader("E3", "skin-mask pixel-kernel throughput (1 thread)");
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  // A close-up frame: skin-heavy, the worst case for the branchy legacy
  // predicate (the RGB pre-checks rarely short-circuit before the HSV math).
  media::Frame frame = broadcast.video->GetFrame(0).TakeValue();
  for (const auto& shot : broadcast.truth.shots) {
    if (shot.category == media::ShotCategory::kCloseUp) {
      frame = broadcast.video->GetFrame(shot.range.begin).TakeValue();
      break;
    }
  }
  const int64_t pixels = frame.PixelCount();
  constexpr int kPasses = 64;
  constexpr int kReps = 9;
  std::printf("%dx%d frame, p50 of %d reps x %d frames\n", frame.width(),
              frame.height(), kReps, kPasses);

  const double legacy = bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      int64_t skin = 0;
      for (const media::Rgb& p : frame.pixels()) {
        if (LegacyIsSkinColor(p)) ++skin;
      }
      benchmark::DoNotOptimize(skin);
    }
  });
  auto kernel_rate = [&](const vision::kernels::KernelOps& ops) {
    return bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
      for (int pass = 0; pass < kPasses; ++pass) {
        uint64_t skin =
            ops.count_skin(frame.Row(0), static_cast<size_t>(pixels));
        benchmark::DoNotOptimize(skin);
      }
    });
  };
  const double scalar = kernel_rate(vision::kernels::ScalarOps());
  const double simd = kernel_rate(vision::kernels::Ops());
  const char* simd_name =
      vision::kernels::SimdLevelName(vision::kernels::ActiveLevel());

  std::printf("%-22s %10.1f Mpix/s\n", "legacy HSV predicate", legacy);
  std::printf("%-22s %10.1f Mpix/s\n", "kernel (scalar)", scalar);
  std::printf("kernel (%s)%*s %10.1f Mpix/s\n", simd_name,
              static_cast<int>(13 - std::strlen(simd_name)), "", simd);
  std::printf("speedup vs legacy: %.2fx\n", simd / legacy);
  bench::PrintJsonMetric("e3_shot_classify", "skin_legacy_mpixps", legacy);
  bench::PrintJsonMetric("e3_shot_classify", "skin_scalar_mpixps", scalar);
  bench::PrintJsonMetric("e3_shot_classify", "skin_simd_mpixps", simd);
  bench::PrintJsonMetric("e3_shot_classify", "skin_simd_speedup",
                         simd / legacy);
  bench::PrintRule();
}

void RunClassification() {
  bench::PrintHeader("E3", "shot classification (4 classes)");
  detectors::ShotClassifier classifier;
  ConfusionMatrix cm(media::kNumShotCategories);
  int shots_total = 0;
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    auto config = bench::DefaultBroadcast(seed);
    config.num_points = 4;
    auto broadcast =
        media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
    for (const auto& shot : broadcast.truth.shots) {
      auto classified = classifier.Classify(*broadcast.video, shot.range);
      if (!classified.ok()) continue;
      cm.Add(static_cast<size_t>(shot.category),
             static_cast<size_t>(classified->category));
      ++shots_total;
    }
  }
  std::printf("shots classified: %d\n\n%s\n", shots_total,
              cm.ToString({"tennis", "close-up", "audience", "other"}).c_str());
  std::printf("%-10s %10s %10s\n", "class", "precision", "recall");
  const char* names[] = {"tennis", "close-up", "audience", "other"};
  for (size_t c = 0; c < 4; ++c) {
    std::printf("%-10s %10.3f %10.3f\n", names[c], cm.ClassPrecision(c),
                cm.ClassRecall(c));
  }
  std::printf("overall accuracy: %.3f\n", cm.Accuracy());
  bench::PrintJsonMetric("e3_shot_classify", "shots_total",
                         static_cast<double>(shots_total));
  bench::PrintJsonMetric("e3_shot_classify", "accuracy", cm.Accuracy());
  bench::PrintRule();
}

/// ClassifyAll with the shared cache + pool vs the per-shot serial loop.
void PrintParallelClassify() {
  bench::PrintHeader("E3", "parallel shot classification");
  auto broadcast = media::TennisBroadcastSynthesizer(bench::DefaultBroadcast())
                       .Synthesize()
                       .TakeValue();
  std::vector<FrameInterval> shots;
  for (const auto& shot : broadcast.truth.shots) shots.push_back(shot.range);
  std::printf("%zu shots, %lld frames:\n", shots.size(),
              static_cast<long long>(broadcast.video->num_frames()));

  detectors::ShotClassifier serial;
  bench::WallTimer serial_timer;
  for (const auto& shot : shots) {
    auto classified = serial.Classify(*broadcast.video, shot);
    benchmark::DoNotOptimize(classified);
  }
  double serial_ms = serial_timer.Millis();

  util::ThreadPool pool(4);
  vision::FrameFeatureCache cache(*broadcast.video);
  detectors::ShotClassifier parallel;
  parallel.SetExecution(&cache, &pool);
  bench::WallTimer parallel_timer;
  auto classified = parallel.ClassifyAll(*broadcast.video, shots).TakeValue();
  double parallel_ms = parallel_timer.Millis();
  benchmark::DoNotOptimize(classified);

  std::printf("%-26s %12.1f\n", "serial loop", serial_ms);
  std::printf("%-26s %12.1f\n", "ClassifyAll (4t + cache)", parallel_ms);
  std::printf("speedup: %.2fx\n", serial_ms / parallel_ms);
  bench::PrintJsonMetric("e3_shot_classify", "serial_ms", serial_ms);
  bench::PrintJsonMetric("e3_shot_classify", "parallel_ms", parallel_ms);
  bench::PrintJsonMetric("e3_shot_classify", "classify_speedup_4t",
                         serial_ms / parallel_ms);
  bench::PrintRule();
}

void BM_ClassifyShot(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::ShotClassifier classifier;
  const FrameInterval shot = broadcast.truth.shots.front().range;
  for (auto _ : state) {
    auto classified = classifier.Classify(*broadcast.video, shot);
    benchmark::DoNotOptimize(classified);
  }
}
BENCHMARK(BM_ClassifyShot)->Unit(benchmark::kMicrosecond);

void BM_ComputeShotFeatures(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::ShotClassifierConfig classifier_config;
  classifier_config.frames_per_shot = static_cast<int>(state.range(0));
  detectors::ShotClassifier classifier(classifier_config);
  const FrameInterval shot = broadcast.truth.shots.front().range;
  for (auto _ : state) {
    auto features = classifier.ComputeFeatures(*broadcast.video, shot);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_ComputeShotFeatures)->Arg(1)->Arg(5)->Arg(15)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  cobra::bench::OpenJsonArtifact("BENCH_E3.json");
  RunClassification();
  PrintParallelClassify();
  PrintSkinKernelThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
