/// \file bench_e4_tracking.cc
/// E4 — player segmentation & tracking quality (paper §3 "tennis
/// detector"): mean center error against scripted ground truth, track
/// continuity (fraction of frames backed by an observed region), and the
/// search-window ablation from DESIGN.md §5 (larger predictive windows cost
/// more per frame but survive faster rallies).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "detectors/player_tracker.h"
#include "util/stats.h"

namespace {

using namespace cobra;  // NOLINT

struct TrackQuality {
  RunningStats center_error;
  RunningStats observed_fraction;
  int shots = 0;
  int failures = 0;
};

void Evaluate(const detectors::PlayerTrackerConfig& config, uint64_t seed,
              TrackQuality* quality) {
  auto synth_config = bench::DefaultBroadcast(seed);
  auto broadcast =
      media::TennisBroadcastSynthesizer(synth_config).Synthesize().TakeValue();
  detectors::PlayerTracker tracker(config);
  for (const auto& shot : broadcast.truth.shots) {
    if (shot.category != media::ShotCategory::kTennis) continue;
    ++quality->shots;
    auto result = tracker.Track(*broadcast.video, shot.range);
    if (!result.ok()) {
      ++quality->failures;
      continue;
    }
    for (const auto& track : result->tracks) {
      quality->observed_fraction.Add(track.ObservedFraction());
      for (const auto& point : track.points) {
        if (point.predicted_only) continue;
        const auto& truth =
            broadcast.truth.players_by_frame[static_cast<size_t>(point.frame)];
        if (truth.size() != 2) continue;
        quality->center_error.Add(point.center.DistanceTo(
            truth[static_cast<size_t>(track.player_id)].center));
      }
    }
  }
}

void RunQualityTable() {
  bench::PrintHeader("E4", "player segmentation and tracking");
  std::printf("%-14s %12s %12s %10s %8s %8s\n", "search_margin", "mean_err_px",
              "max_err_px", "observed", "shots", "failures");
  for (int margin : {4, 8, 12, 20, 32}) {
    detectors::PlayerTrackerConfig config;
    config.search_margin = margin;
    TrackQuality total;
    for (uint64_t seed : {11, 22, 33}) Evaluate(config, seed, &total);
    std::printf("%-14d %12.2f %12.2f %10.3f %8d %8d\n", margin,
                total.center_error.mean(), total.center_error.max(),
                total.observed_fraction.mean(), total.shots, total.failures);
  }
  bench::PrintRule();
}

void BM_TrackShot(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::PlayerTrackerConfig tracker_config;
  tracker_config.search_margin = static_cast<int>(state.range(0));
  detectors::PlayerTracker tracker(tracker_config);
  const FrameInterval shot = broadcast.truth.shots.front().range;
  for (auto _ : state) {
    auto result = tracker.Track(*broadcast.video, shot);
    if (!result.ok()) state.SkipWithError("tracking failed");
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(shot.Length()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrackShot)->Arg(8)->Arg(12)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_CourtModelEstimate(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  media::Frame frame = broadcast.video->GetFrame(0).TakeValue();
  for (auto _ : state) {
    auto model = detectors::EstimateCourtModel(frame);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_CourtModelEstimate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
