/// \file bench_e4_tracking.cc
/// E4 — player segmentation & tracking quality (paper §3 "tennis
/// detector"): mean center error against scripted ground truth, track
/// continuity (fraction of frames backed by an observed region), and the
/// search-window ablation from DESIGN.md §5 (larger predictive windows cost
/// more per frame but survive faster rallies).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>

#include "bench_util.h"
#include "detectors/player_tracker.h"
#include "util/stats.h"
#include "vision/kernels.h"
#include "vision/mask.h"

namespace {

using namespace cobra;  // NOLINT

/// The seed's per-pixel k-sigma match, reproduced inline: means and
/// variances recomputed from the model sums for every pixel, plus a sqrt
/// per channel. The kernel layer hoists all of it into a ColorBox once.
bool LegacyMatches(const vision::GaussianColorModel& m, const media::Rgb& p,
                   double k) {
  const double means[3] = {m.mean_r(), m.mean_g(), m.mean_b()};
  const double vars[3] = {m.var_r(), m.var_g(), m.var_b()};
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  for (int i = 0; i < 3; ++i) {
    if (std::fabs(ch[i] - means[i]) > k * std::sqrt(vars[i])) return false;
  }
  return true;
}

/// Foreground-mask pixel-kernel throughput (DESIGN.md §4d): the seed's
/// FromPredicate + per-pixel double Matches vs FromOutsideColorBoxes with
/// the kernel scalar tier vs the dispatched SIMD tier, single-thread p50.
void PrintForegroundKernelThroughput() {
  bench::PrintHeader("E4", "foreground-mask pixel-kernel throughput (1 thread)");
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  media::Frame frame = broadcast.video->GetFrame(0).TakeValue();
  auto court = detectors::EstimateCourtModel(frame).TakeValue();
  const RectI roi{0, 0, frame.width(), frame.height()};
  const int64_t pixels = frame.PixelCount();
  constexpr double kK = 3.0;  // PlayerTrackerConfig::foreground_k default
  constexpr int kPasses = 16;
  constexpr int kReps = 9;
  std::printf("%dx%d frame, 3 background models, p50 of %d reps x %d frames\n",
              frame.width(), frame.height(), kReps, kPasses);

  const double legacy = bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      vision::BinaryMask mask = vision::BinaryMask::FromPredicate(
          frame, roi, [&](const media::Rgb& p) {
            return !LegacyMatches(court.court_color, p, kK) &&
                   !LegacyMatches(court.surround_color, p, kK) &&
                   !(p.r > 185 && p.g > 185 && p.b > 185);
          });
      benchmark::DoNotOptimize(mask);
    }
  });

  const vision::kernels::ColorBox boxes[3] = {
      court.court_color.MatchBox(kK), court.surround_color.MatchBox(kK),
      vision::kernels::ColorBox{{186, 186, 186}, {255, 255, 255}}};
  auto kernel_rate = [&](vision::kernels::SimdLevel level) {
    const auto previous = vision::kernels::SetActiveLevel(level);
    const double rate = bench::MedianMpixPerSec(pixels * kPasses, kReps, [&] {
      for (int pass = 0; pass < kPasses; ++pass) {
        vision::BinaryMask mask =
            vision::BinaryMask::FromOutsideColorBoxes(frame, roi, boxes, 3);
        benchmark::DoNotOptimize(mask);
      }
    });
    vision::kernels::SetActiveLevel(previous);
    return rate;
  };
  const double scalar = kernel_rate(vision::kernels::SimdLevel::kScalar);
  const double simd = kernel_rate(vision::kernels::BestSupportedLevel());
  const char* simd_name =
      vision::kernels::SimdLevelName(vision::kernels::BestSupportedLevel());

  std::printf("%-22s %10.1f Mpix/s\n", "legacy FromPredicate", legacy);
  std::printf("%-22s %10.1f Mpix/s\n", "kernel (scalar)", scalar);
  std::printf("kernel (%s)%*s %10.1f Mpix/s\n", simd_name,
              static_cast<int>(13 - std::strlen(simd_name)), "", simd);
  std::printf("speedup vs legacy: %.2fx\n", simd / legacy);
  bench::PrintJsonMetric("e4_tracking", "fgmask_legacy_mpixps", legacy);
  bench::PrintJsonMetric("e4_tracking", "fgmask_scalar_mpixps", scalar);
  bench::PrintJsonMetric("e4_tracking", "fgmask_simd_mpixps", simd);
  bench::PrintJsonMetric("e4_tracking", "fgmask_simd_speedup", simd / legacy);
  bench::PrintRule();
}

struct TrackQuality {
  RunningStats center_error;
  RunningStats observed_fraction;
  int shots = 0;
  int failures = 0;
};

void Evaluate(const detectors::PlayerTrackerConfig& config, uint64_t seed,
              TrackQuality* quality) {
  auto synth_config = bench::DefaultBroadcast(seed);
  auto broadcast =
      media::TennisBroadcastSynthesizer(synth_config).Synthesize().TakeValue();
  detectors::PlayerTracker tracker(config);
  for (const auto& shot : broadcast.truth.shots) {
    if (shot.category != media::ShotCategory::kTennis) continue;
    ++quality->shots;
    auto result = tracker.Track(*broadcast.video, shot.range);
    if (!result.ok()) {
      ++quality->failures;
      continue;
    }
    for (const auto& track : result->tracks) {
      quality->observed_fraction.Add(track.ObservedFraction());
      for (const auto& point : track.points) {
        if (point.predicted_only) continue;
        const auto& truth =
            broadcast.truth.players_by_frame[static_cast<size_t>(point.frame)];
        if (truth.size() != 2) continue;
        quality->center_error.Add(point.center.DistanceTo(
            truth[static_cast<size_t>(track.player_id)].center));
      }
    }
  }
}

void RunQualityTable() {
  bench::PrintHeader("E4", "player segmentation and tracking");
  std::printf("%-14s %12s %12s %10s %8s %8s\n", "search_margin", "mean_err_px",
              "max_err_px", "observed", "shots", "failures");
  for (int margin : {4, 8, 12, 20, 32}) {
    detectors::PlayerTrackerConfig config;
    config.search_margin = margin;
    TrackQuality total;
    for (uint64_t seed : {11, 22, 33}) Evaluate(config, seed, &total);
    std::printf("%-14d %12.2f %12.2f %10.3f %8d %8d\n", margin,
                total.center_error.mean(), total.center_error.max(),
                total.observed_fraction.mean(), total.shots, total.failures);
  }
  bench::PrintRule();
}

void BM_TrackShot(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  detectors::PlayerTrackerConfig tracker_config;
  tracker_config.search_margin = static_cast<int>(state.range(0));
  detectors::PlayerTracker tracker(tracker_config);
  const FrameInterval shot = broadcast.truth.shots.front().range;
  for (auto _ : state) {
    auto result = tracker.Track(*broadcast.video, shot);
    if (!result.ok()) state.SkipWithError("tracking failed");
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(shot.Length()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrackShot)->Arg(8)->Arg(12)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_CourtModelEstimate(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  media::Frame frame = broadcast.video->GetFrame(0).TakeValue();
  for (auto _ : state) {
    auto model = detectors::EstimateCourtModel(frame);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_CourtModelEstimate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cobra::bench::OpenJsonArtifact("BENCH_E4.json");
  RunQualityTable();
  PrintForegroundKernelThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
