/// \file bench_e8_indexing.cc
/// E8 — meta-index population throughput (paper §3): per-stage cost of one
/// FDE run (frames/s per detector), end-to-end indexing rate, and the
/// incremental-reindex experiment that motivates Acoi: after replacing one
/// event detector, only the dirty suffix of the dependency graph re-runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/meta_index.h"
#include "core/tennis_fde.h"
#include "engine/digital_library.h"
#include "grammar/fde.h"
#include "media/tennis_synthesizer.h"
#include "storage/ops.h"
#include "util/rng.h"
#include "util/simd.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT

void RunThroughputTable() {
  bench::PrintHeader("E8", "FDE meta-index population throughput");
  auto config = bench::DefaultBroadcast();
  config.num_points = 8;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  const double frames = static_cast<double>(broadcast.video->num_frames());

  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "e8").TakeValue();
  (void)desc;
  const auto& report = *indexer->last_report();

  std::printf("video: %.0f frames (%dx%d)\n\n", frames,
              broadcast.video->width(), broadcast.video->height());
  std::printf("%-16s %10s %12s %12s\n", "detector", "annotations", "ms",
              "frames/s");
  for (const auto& d : report.detectors) {
    std::printf("%-16s %10lld %12.2f %12.0f\n", d.symbol.c_str(),
                static_cast<long long>(d.annotations_out), d.millis,
                d.millis > 0 ? frames / (d.millis / 1000.0) : 0.0);
  }
  std::printf("%-16s %10lld %12.2f %12.0f\n", "TOTAL",
              static_cast<long long>(report.TotalAnnotations()),
              report.total_millis, frames / (report.total_millis / 1000.0));

  // --- incremental re-index after changing one event detector ---
  std::printf("\nincremental re-index (replace 'net_play' detector):\n");
  auto& fde = indexer->fde();
  (void)fde.ReplaceDetector(
      "net_play",
      [](const grammar::DetectionContext&) -> Result<std::vector<grammar::Annotation>> {
        return std::vector<grammar::Annotation>{};
      });
  auto incremental = fde.RunIncremental(*broadcast.video).TakeValue();
  int cached = 0, rerun = 0;
  for (const auto& d : incremental.detectors) {
    if (d.from_cache) {
      ++cached;
    } else {
      ++rerun;
    }
  }
  std::printf("  full run:        %10.2f ms (10 detectors)\n",
              report.total_millis);
  std::printf("  incremental run: %10.2f ms (%d cached, %d re-run)\n",
              incremental.total_millis, cached, rerun);
  std::printf("  speedup:         %10.1fx\n",
              report.total_millis / std::max(incremental.total_millis, 1e-9));
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// E8b — meta-index scene lookup at 100k event rows: the vectorized
// dictionary/zone-map scan behind FindScenes against the pre-PR
// row-at-a-time path (storage::reference + per-cell GetValue), which is
// reproduced here verbatim.

/// Pre-PR FindScenes over the events table.
std::vector<core::Scene> OldFindScenes(const storage::Table& events,
                                       const std::string& event_name,
                                       int64_t video_id, int64_t player) {
  std::vector<storage::Predicate> preds = {
      {"name", storage::CompareOp::kEq, event_name}};
  if (video_id >= 0) {
    preds.push_back({"video_id", storage::CompareOp::kEq, video_id});
  }
  if (player >= 0) {
    preds.push_back({"player", storage::CompareOp::kEq, player});
  }
  auto rows = storage::reference::SelectAll(events, preds).TakeValue();
  std::vector<core::Scene> out;
  for (int64_t r : rows) {
    core::Scene scene;
    scene.video_id = events.GetInt(r, 0).TakeValue();
    scene.event = events.GetString(r, 1).TakeValue();
    scene.player = events.GetInt(r, 2).TakeValue();
    scene.range.begin = events.GetInt(r, 3).TakeValue();
    scene.range.end = events.GetInt(r, 4).TakeValue();
    out.push_back(std::move(scene));
  }
  return out;
}

bool ScenesEqual(const std::vector<core::Scene>& a,
                 const std::vector<core::Scene>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].video_id != b[i].video_id || a[i].player != b[i].player ||
        a[i].event != b[i].event || a[i].range.begin != b[i].range.begin ||
        a[i].range.end != b[i].range.end) {
      return false;
    }
  }
  return true;
}

void RunMetaIndexScale() {
  bench::PrintHeader("E8b", "meta-index scene lookup at 100k event rows");
  constexpr int64_t kVideos = 100;
  constexpr int64_t kEventsPerVideo = 1000;
  constexpr int kReps = 5;
  const char* names[] = {"net_play", "rally", "service", "smash", "baseline"};

  auto meta = core::MetaIndex::Create().TakeValue();
  Rng rng(77);
  for (int64_t v = 0; v < kVideos; ++v) {
    core::VideoDescription desc(v, "synthetic", 25.0, 40000);
    for (int64_t e = 0; e < kEventsPerVideo; ++e) {
      const int64_t begin = rng.NextInt(0, 39000);
      desc.Add(core::CobraLayer::kEvent,
               grammar::Annotation(names[rng.NextBounded(5)],
                                   {begin, begin + rng.NextInt(10, 900)})
                   .Set("player", rng.NextInt(-1, 3)));
    }
    if (Status status = meta.AddVideo(desc); !status.ok()) {
      std::fprintf(stderr, "E8 AddVideo: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  std::printf("events table: %lld rows over %lld videos\n\n",
              static_cast<long long>(meta.events().num_rows()),
              static_cast<long long>(kVideos));

  // A query mix from broad to narrow, timed as one batch.
  struct Query {
    std::string name;
    int64_t video_id, player;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 20; ++i) {
    queries.push_back({names[rng.NextBounded(5)],
                       rng.NextInt(0, kVideos - 1), rng.NextInt(-1, 3)});
  }
  queries.push_back({"net_play", -1, -1});  // full-table
  queries.push_back({"no_such_event", 3, -1});  // dictionary miss

  std::vector<core::Scene> last_ref, last_new;
  const double ref_ms = bench::MedianMs(kReps, [&] {
    for (const Query& q : queries) {
      last_ref = OldFindScenes(meta.events(), q.name, q.video_id, q.player);
    }
  });
  const double new_ms = bench::MedianMs(kReps, [&] {
    for (const Query& q : queries) {
      last_new = meta.FindScenes(q.name, q.video_id, q.player).TakeValue();
    }
  });
  std::printf("%-26s %10s %10s %9s\n", "path (22-query batch)", "ref_ms",
              "new_ms", "speedup");
  std::printf("%-26s %10.3f %10.3f %8.1fx\n", "FindScenes", ref_ms, new_ms,
              ref_ms / std::max(new_ms, 1e-9));
  bench::PrintJsonMetric("e8_indexing", "findscenes_ref_ms", ref_ms);
  bench::PrintJsonMetric("e8_indexing", "findscenes_new_ms", new_ms);
  bench::PrintJsonMetric("e8_indexing", "findscenes_speedup",
                         ref_ms / std::max(new_ms, 1e-9));

  // Bit-identity: the vectorized lookup must agree with the reference path
  // on every forced SIMD tier for every query in the mix.
  bool identical = true;
  for (int level : {-1, 0, 1, 2}) {
    util::simd::SetForcedLevel(level);
    for (const Query& q : queries) {
      identical =
          identical &&
          ScenesEqual(meta.FindScenes(q.name, q.video_id, q.player).TakeValue(),
                      OldFindScenes(meta.events(), q.name, q.video_id,
                                    q.player));
    }
  }
  util::simd::SetForcedLevel(-1);
  std::printf("forced tiers bit-identical: %s\n", identical ? "yes" : "NO");
  bench::PrintJsonMetric("e8_indexing", "tiers_identical",
                         identical ? 1.0 : 0.0);
  bench::PrintRule();
}

// ---------------------------------------------------------------------------
// E8c — the planner's single-scan event stage against the fixed order's
// per-(player,video) FindScenes rescans, over a 400k-row events table. The
// fixed pipeline re-scans the whole table once per pair; the planner costs
// the fan-out, scans once, and groups scenes by video.

void RunEventPlannerScale() {
  bench::PrintHeader("E8c", "planner event stage at 400k event rows");
  constexpr int64_t kPlayers = 300;
  constexpr int64_t kVideos = 200;
  constexpr int64_t kEventsPerVideo = 2000;
  constexpr int kReps = 7;
  const char* names[] = {"net_play", "rally", "service", "smash", "baseline"};

  auto schema = webspace::SiteSynthesizer::TournamentSchema().TakeValue();
  auto store = webspace::WebspaceStore::Create(std::move(schema)).TakeValue();
  Rng rng(2002);
  std::vector<int64_t> player_oids;
  for (int64_t p = 0; p < kPlayers; ++p) {
    player_oids.push_back(
        store
            .Insert("Player", {"player_" + std::to_string(p),
                               std::string(rng.NextBounded(2) ? "female"
                                                              : "male"),
                               std::string(rng.NextBounded(5) ? "right"
                                                              : "left"),
                               std::string("usa"), int64_t{p + 1}})
            .TakeValue());
  }
  std::vector<int64_t> video_oids;
  for (int64_t v = 0; v < kVideos; ++v) {
    video_oids.push_back(
        store
            .Insert("Video",
                    {"match_" + std::to_string(v), rng.NextInt(1995, 2002)})
            .TakeValue());
  }
  // The 50 queried players appear in 4 videos each: 200 (player, video)
  // pairs for the fixed order to rescan the events table over.
  for (int64_t p = 0; p < 50; ++p) {
    for (int link = 0; link < 4; ++link) {
      (void)store.Link("plays_in", player_oids[static_cast<size_t>(p)],
                       video_oids[rng.NextBounded(video_oids.size())],
                       rng.NextInt(0, 1));
    }
  }
  auto library = engine::DigitalLibrary::Create(std::move(store)).TakeValue();
  for (int64_t video_oid : video_oids) {
    core::VideoDescription desc(video_oid, "synthetic", 25.0, 40000);
    for (int64_t e = 0; e < kEventsPerVideo; ++e) {
      const int64_t begin = rng.NextInt(0, 39000);
      desc.Add(core::CobraLayer::kEvent,
               grammar::Annotation(names[rng.NextBounded(5)],
                                   {begin, begin + rng.NextInt(10, 900)})
                   .Set("player", rng.NextInt(-1, 1)));
    }
    if (Status status = library->AddVideoDescription(desc); !status.ok()) {
      std::fprintf(stderr, "E8 AddVideoDescription: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  }

  engine::CombinedQuery query;
  query.player_predicates = {
      {"ranking", storage::CompareOp::kLe, int64_t{50}}};
  query.event = "net_play";

  auto run = [&](bool planner_on) {
    library->set_planner_enabled(planner_on);
    std::vector<double> ms;
    ms.reserve(kReps);
    std::vector<engine::SceneHit> hits;
    for (int rep = 0; rep < kReps; ++rep) {
      bench::WallTimer timer;
      hits = library->Search(query).TakeValue();
      ms.push_back(timer.Millis());
    }
    return std::make_pair(std::move(hits), std::move(ms));
  };
  auto [off_hits, off_ms] = run(false);
  auto [on_hits, on_ms] = run(true);
  library->set_planner_enabled(true);

  bool identical = off_hits.size() == on_hits.size();
  for (size_t i = 0; identical && i < on_hits.size(); ++i) {
    identical = off_hits[i].player_oid == on_hits[i].player_oid &&
                off_hits[i].player_name == on_hits[i].player_name &&
                off_hits[i].video_oid == on_hits[i].video_oid &&
                off_hits[i].range.begin == on_hits[i].range.begin &&
                off_hits[i].range.end == on_hits[i].range.end &&
                off_hits[i].event == on_hits[i].event &&
                off_hits[i].text_score == on_hits[i].text_score;
  }
  const double off_p50 = bench::Percentile(off_ms, 0.5);
  const double on_p50 = bench::Percentile(on_ms, 0.5);
  std::printf("events table: %lld rows, 200 player-video pairs\n\n",
              static_cast<long long>(kVideos * kEventsPerVideo));
  std::printf("%-26s %10s %10s %10s %9s %6s %5s\n", "variant", "off_p50",
              "on_p50", "on_p99", "speedup", "hits", "same");
  std::printf("%-26s %10.3f %10.3f %10.3f %8.1fx %6zu %5s\n",
              "event single-scan", off_p50, on_p50,
              bench::Percentile(on_ms, 0.99),
              off_p50 / std::max(on_p50, 1e-9), on_hits.size(),
              identical ? "yes" : "NO");
  bench::PrintJsonMetric("e8_indexing", "planner_event_off_p50_ms", off_p50);
  bench::PrintJsonMetric("e8_indexing", "planner_event_off_p99_ms",
                         bench::Percentile(off_ms, 0.99));
  bench::PrintJsonMetric("e8_indexing", "planner_event_on_p50_ms", on_p50);
  bench::PrintJsonMetric("e8_indexing", "planner_event_on_p99_ms",
                         bench::Percentile(on_ms, 0.99));
  bench::PrintJsonMetric("e8_indexing", "planner_event_speedup_p50",
                         off_p50 / std::max(on_p50, 1e-9));
  bench::PrintJsonMetric("e8_indexing", "planner_event_identical",
                         identical ? 1.0 : 0.0);
  bench::PrintRule();
}

void BM_SynthesizeBroadcast(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = static_cast<int>(state.range(0));
  int64_t frames = 0;
  for (auto _ : state) {
    auto broadcast = media::TennisBroadcastSynthesizer(config).Synthesize();
    frames = broadcast->video->num_frames();
    benchmark::DoNotOptimize(broadcast);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(frames) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthesizeBroadcast)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_IncrementalReindex(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 3;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  (void)indexer->Index(*broadcast.video, 1, "bm").TakeValue();
  for (auto _ : state) {
    state.PauseTiming();
    (void)indexer->fde().ReplaceDetector(
        "net_play",
        [](const grammar::DetectionContext&)
            -> Result<std::vector<grammar::Annotation>> {
          return std::vector<grammar::Annotation>{};
        });
    state.ResumeTiming();
    auto report = indexer->fde().RunIncremental(*broadcast.video);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
  }
}
BENCHMARK(BM_IncrementalReindex)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  cobra::bench::OpenJsonArtifact("BENCH_E8.json");
  RunThroughputTable();
  RunMetaIndexScale();
  RunEventPlannerScale();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
