/// \file bench_e8_indexing.cc
/// E8 — meta-index population throughput (paper §3): per-stage cost of one
/// FDE run (frames/s per detector), end-to-end indexing rate, and the
/// incremental-reindex experiment that motivates Acoi: after replacing one
/// event detector, only the dirty suffix of the dependency graph re-runs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "grammar/fde.h"
#include "media/tennis_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT

void RunThroughputTable() {
  bench::PrintHeader("E8", "FDE meta-index population throughput");
  auto config = bench::DefaultBroadcast();
  config.num_points = 8;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  const double frames = static_cast<double>(broadcast.video->num_frames());

  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "e8").TakeValue();
  (void)desc;
  const auto& report = *indexer->last_report();

  std::printf("video: %.0f frames (%dx%d)\n\n", frames,
              broadcast.video->width(), broadcast.video->height());
  std::printf("%-16s %10s %12s %12s\n", "detector", "annotations", "ms",
              "frames/s");
  for (const auto& d : report.detectors) {
    std::printf("%-16s %10lld %12.2f %12.0f\n", d.symbol.c_str(),
                static_cast<long long>(d.annotations_out), d.millis,
                d.millis > 0 ? frames / (d.millis / 1000.0) : 0.0);
  }
  std::printf("%-16s %10lld %12.2f %12.0f\n", "TOTAL",
              static_cast<long long>(report.TotalAnnotations()),
              report.total_millis, frames / (report.total_millis / 1000.0));

  // --- incremental re-index after changing one event detector ---
  std::printf("\nincremental re-index (replace 'net_play' detector):\n");
  auto& fde = indexer->fde();
  (void)fde.ReplaceDetector(
      "net_play",
      [](const grammar::DetectionContext&) -> Result<std::vector<grammar::Annotation>> {
        return std::vector<grammar::Annotation>{};
      });
  auto incremental = fde.RunIncremental(*broadcast.video).TakeValue();
  int cached = 0, rerun = 0;
  for (const auto& d : incremental.detectors) {
    if (d.from_cache) {
      ++cached;
    } else {
      ++rerun;
    }
  }
  std::printf("  full run:        %10.2f ms (10 detectors)\n",
              report.total_millis);
  std::printf("  incremental run: %10.2f ms (%d cached, %d re-run)\n",
              incremental.total_millis, cached, rerun);
  std::printf("  speedup:         %10.1fx\n",
              report.total_millis / std::max(incremental.total_millis, 1e-9));
  bench::PrintRule();
}

void BM_SynthesizeBroadcast(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = static_cast<int>(state.range(0));
  int64_t frames = 0;
  for (auto _ : state) {
    auto broadcast = media::TennisBroadcastSynthesizer(config).Synthesize();
    frames = broadcast->video->num_frames();
    benchmark::DoNotOptimize(broadcast);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(frames) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthesizeBroadcast)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_IncrementalReindex(benchmark::State& state) {
  auto config = bench::DefaultBroadcast();
  config.num_points = 3;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  (void)indexer->Index(*broadcast.video, 1, "bm").TakeValue();
  for (auto _ : state) {
    state.PauseTiming();
    (void)indexer->fde().ReplaceDetector(
        "net_play",
        [](const grammar::DetectionContext&)
            -> Result<std::vector<grammar::Annotation>> {
          return std::vector<grammar::Annotation>{};
        });
    state.ResumeTiming();
    auto report = indexer->fde().RunIncremental(*broadcast.video);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
  }
}
BENCHMARK(BM_IncrementalReindex)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunThroughputTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
