/// \file bench_e6_topn_text.cc
/// E6 — full-text top-N retrieval (ref [1], Blok et al.): exhaustive vs
/// top-N-optimized evaluation. Three evaluators are compared:
///   * exhaustive  — score every posting, sort, truncate;
///   * taat        — the previous term-at-a-time quality-cutoff optimizer
///                   (kept as SearchTopNTaat, the "before" reference);
///   * daat        — the document-at-a-time maxscore/block-max evaluator
///                   behind SearchTopN.
/// Reproduced shape: the optimized evaluators scan fewer postings and are
/// faster for small N, the advantage grows with collection size, and
/// results are identical to the baseline's top N (safe optimization).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace {

using namespace cobra;  // NOLINT

std::unique_ptr<text::InvertedIndex> BuildIndex(size_t num_docs, uint64_t seed) {
  text::CorpusConfig config;
  config.num_docs = num_docs;
  config.vocabulary_size = 8000;
  config.seed = seed;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  auto index = std::make_unique<text::InvertedIndex>();
  for (size_t d = 0; d < corpus.size(); ++d) {
    (void)index->AddText(static_cast<int64_t>(d), corpus.document(d));
  }
  (void)index->Finalize();
  return index;
}

std::string BenchQuery(uint64_t salt) {
  // One frequent head word plus three mid-frequency words: long postings to
  // prune, rare terms to rank by.
  text::CorpusConfig config;
  config.vocabulary_size = 8000;
  text::SyntheticCorpus corpus =
      text::SyntheticCorpus::Generate(config).TakeValue();
  return text::VocabularyWord(1 + salt % 3) + " " + corpus.MakeQuery(3, salt);
}

using bench::Percentile;  // hoisted into bench_util.h for E6/E7/E8

/// Latency samples and work counters for one evaluator at one (docs, N).
struct EvalResult {
  std::vector<double> ms;
  int64_t postings = 0;
  int64_t blocks_skipped = 0;
};

void RunTable() {
  bench::PrintHeader("E6",
                     "top-N text retrieval: exhaustive vs taat vs daat");
  std::printf("%-8s %-5s %10s %10s %10s %8s %12s %12s %12s %10s %5s\n",
              "docs", "N", "exh_p50", "taat_p50", "daat_p50", "daat_p99",
              "exh_post", "taat_post", "daat_post", "blk_skip", "same");
  const int kQueries = 16;
  for (size_t docs : {4000, 16000, 100000}) {
    auto index = BuildIndex(docs, 7);
    for (size_t n : {1, 10, 100}) {
      EvalResult exh, taat, daat;
      bool identical = true;
      for (int q = 0; q < kQueries; ++q) {
        std::string query = BenchQuery(static_cast<uint64_t>(q));
        text::SearchStats stats;
        auto t0 = std::chrono::steady_clock::now();
        auto exhaustive = index->SearchExhaustive(query, n, &stats).TakeValue();
        auto t1 = std::chrono::steady_clock::now();
        exh.ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        exh.postings += stats.postings_scanned;

        t0 = std::chrono::steady_clock::now();
        auto reference = index->SearchTopNTaat(query, n, &stats).TakeValue();
        t1 = std::chrono::steady_clock::now();
        taat.ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        taat.postings += stats.postings_scanned;

        t0 = std::chrono::steady_clock::now();
        auto topn = index->SearchTopN(query, n, &stats).TakeValue();
        t1 = std::chrono::steady_clock::now();
        daat.ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
        daat.postings += stats.postings_scanned;
        daat.blocks_skipped += stats.blocks_skipped;

        if (topn.size() != exhaustive.size()) identical = false;
        for (size_t i = 0; identical && i < topn.size(); ++i) {
          if (topn[i].doc_id != exhaustive[i].doc_id) identical = false;
        }
      }
      std::printf(
          "%-8zu %-5zu %10.3f %10.3f %10.3f %8.3f %12lld %12lld %12lld "
          "%10lld %5s\n",
          docs, n, Percentile(exh.ms, 0.5), Percentile(taat.ms, 0.5),
          Percentile(daat.ms, 0.5), Percentile(daat.ms, 0.99),
          static_cast<long long>(exh.postings / kQueries),
          static_cast<long long>(taat.postings / kQueries),
          static_cast<long long>(daat.postings / kQueries),
          static_cast<long long>(daat.blocks_skipped / kQueries),
          identical ? "yes" : "NO");

      char prefix[64];
      std::snprintf(prefix, sizeof(prefix), "docs%zu_n%zu", docs, n);
      auto metric = [&](const char* name, double value) {
        std::string full = std::string(name) + "_" + prefix;
        bench::PrintJsonMetric("e6_topn_text", full.c_str(), value);
      };
      metric("exh_p50_ms", Percentile(exh.ms, 0.5));
      metric("exh_p99_ms", Percentile(exh.ms, 0.99));
      metric("taat_p50_ms", Percentile(taat.ms, 0.5));
      metric("taat_p99_ms", Percentile(taat.ms, 0.99));
      metric("daat_p50_ms", Percentile(daat.ms, 0.5));
      metric("daat_p99_ms", Percentile(daat.ms, 0.99));
      metric("exh_postings", static_cast<double>(exh.postings / kQueries));
      metric("taat_postings", static_cast<double>(taat.postings / kQueries));
      metric("daat_postings", static_cast<double>(daat.postings / kQueries));
      metric("daat_blocks_skipped",
             static_cast<double>(daat.blocks_skipped / kQueries));
      metric("speedup_daat_vs_taat_p50",
             Percentile(taat.ms, 0.5) /
                 std::max(Percentile(daat.ms, 0.5), 1e-9));
      metric("identical", identical ? 1.0 : 0.0);
    }
  }
  bench::PrintRule();
}

void BM_Search(benchmark::State& state) {
  static auto index = BuildIndex(16000, 7);
  const int mode = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  std::string query = BenchQuery(3);
  for (auto _ : state) {
    auto hits = mode == 2   ? index->SearchTopN(query, n)
                : mode == 1 ? index->SearchTopNTaat(query, n)
                            : index->SearchExhaustive(query, n);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Search)
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({2, 10})
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_IndexBuild(benchmark::State& state) {
  text::CorpusConfig config;
  config.num_docs = static_cast<size_t>(state.range(0));
  config.vocabulary_size = 8000;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  for (auto _ : state) {
    text::InvertedIndex index;
    for (size_t d = 0; d < corpus.size(); ++d) {
      (void)index.AddText(static_cast<int64_t>(d), corpus.document(d));
    }
    (void)index.Finalize();
    benchmark::DoNotOptimize(index);
  }
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(config.num_docs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
