/// \file bench_e6_topn_text.cc
/// E6 — full-text top-N retrieval (ref [1], Blok et al.): exhaustive vs
/// top-N-optimized evaluation. Reproduced shape: the optimized evaluator
/// scans fewer postings and is faster for small N, and its advantage grows
/// with collection size; results are identical to the baseline's top N
/// (safe optimization).

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_util.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace {

using namespace cobra;  // NOLINT

std::unique_ptr<text::InvertedIndex> BuildIndex(size_t num_docs, uint64_t seed) {
  text::CorpusConfig config;
  config.num_docs = num_docs;
  config.vocabulary_size = 8000;
  config.seed = seed;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  auto index = std::make_unique<text::InvertedIndex>();
  for (size_t d = 0; d < corpus.size(); ++d) {
    (void)index->AddText(static_cast<int64_t>(d), corpus.document(d));
  }
  (void)index->Finalize();
  return index;
}

std::string BenchQuery(uint64_t salt) {
  // One frequent head word plus three mid-frequency words: long postings to
  // prune, rare terms to rank by.
  text::CorpusConfig config;
  config.vocabulary_size = 8000;
  text::SyntheticCorpus corpus =
      text::SyntheticCorpus::Generate(config).TakeValue();
  return text::VocabularyWord(1 + salt % 3) + " " + corpus.MakeQuery(3, salt);
}

void RunTable() {
  bench::PrintHeader("E6", "top-N text retrieval: exhaustive vs optimized");
  std::printf("%-10s %-6s %14s %14s %9s %14s %14s %9s\n", "docs", "N",
              "exh_ms", "topn_ms", "speedup", "exh_postings", "topn_postings",
              "identical");
  for (size_t docs : {1000, 4000, 16000, 32000}) {
    auto index = BuildIndex(docs, 7);
    for (size_t n : {10, 20, 50, 100}) {
      double exhaustive_ms = 0, topn_ms = 0;
      int64_t exhaustive_postings = 0, topn_postings = 0;
      bool identical = true;
      const int kQueries = 12;
      for (int q = 0; q < kQueries; ++q) {
        std::string query = BenchQuery(static_cast<uint64_t>(q));
        text::SearchStats stats;
        auto t0 = std::chrono::steady_clock::now();
        auto exhaustive = index->SearchExhaustive(query, n, &stats).TakeValue();
        auto t1 = std::chrono::steady_clock::now();
        exhaustive_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        exhaustive_postings += stats.postings_scanned;

        t0 = std::chrono::steady_clock::now();
        auto topn = index->SearchTopN(query, n, &stats).TakeValue();
        t1 = std::chrono::steady_clock::now();
        topn_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
        topn_postings += stats.postings_scanned;

        if (topn.size() != exhaustive.size()) identical = false;
        for (size_t i = 0; identical && i < topn.size(); ++i) {
          if (topn[i].doc_id != exhaustive[i].doc_id) identical = false;
        }
      }
      std::printf("%-10zu %-6zu %14.3f %14.3f %8.2fx %14lld %14lld %9s\n",
                  docs, n, exhaustive_ms / kQueries, topn_ms / kQueries,
                  exhaustive_ms / std::max(topn_ms, 1e-9),
                  static_cast<long long>(exhaustive_postings / kQueries),
                  static_cast<long long>(topn_postings / kQueries),
                  identical ? "yes" : "NO");
    }
  }
  bench::PrintRule();
}

void BM_Search(benchmark::State& state) {
  static auto index = BuildIndex(16000, 7);
  const bool optimized = state.range(0) == 1;
  const size_t n = static_cast<size_t>(state.range(1));
  std::string query = BenchQuery(3);
  for (auto _ : state) {
    auto hits = optimized ? index->SearchTopN(query, n)
                          : index->SearchExhaustive(query, n);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Search)
    ->Args({0, 10})
    ->Args({1, 10})
    ->Args({0, 100})
    ->Args({1, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_IndexBuild(benchmark::State& state) {
  text::CorpusConfig config;
  config.num_docs = static_cast<size_t>(state.range(0));
  config.vocabulary_size = 8000;
  auto corpus = text::SyntheticCorpus::Generate(config).TakeValue();
  for (auto _ : state) {
    text::InvertedIndex index;
    for (size_t d = 0; d < corpus.size(); ++d) {
      (void)index.AddText(static_cast<int64_t>(d), corpus.document(d));
    }
    (void)index.Finalize();
    benchmark::DoNotOptimize(index);
  }
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(config.num_docs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  RunTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
