/// \file bench_e15_ingest.cc
/// E15 — pipelined parallel corpus ingest (DESIGN.md §4k). Three sections:
///   a) end-to-end sync-durable ingest throughput over an interview-heavy
///      corpus (COBRA_E15_DOCS records, default 2000): the serial loop vs
///      the CorpusIngestPipeline, each under all three WAL modes. The
///      headline is pipelined+group-commit vs serial+fdatasync-per-record
///      — honest one-core numbers: the submit thread stages records while
///      the pool-side committer sits in fdatasync, so the speedup is
///      durability batching (watch records-per-sync), not analysis
///      parallelism — and the durability tax: group-commit (durable on
///      return) vs the buffered (process-crash-only) ceiling;
///   b) the bit-identity gate: the pipelined library must answer the
///      16-modality sweep identically to the serial oracle at every
///      thread count, WAL mode, and at 1/2/7 shards through the sharded
///      serving sink. Any mismatch exits nonzero — this is the CI tripwire;
///   c) sustained query throughput while a sharded deployment ingests
///      live (queries racing the double-buffered publish seam).
/// Results mirror to BENCH_E15.json. Artifacts live under the working
/// directory — CI runs this from build/.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/ingest/ingest.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "storage/segment/io.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT
namespace seg = storage::segment;
using engine::ingest::CorpusIngestPipeline;
using engine::ingest::DurableLibrarySink;
using engine::ingest::IngestDelta;
using engine::ingest::LibrarySink;
using engine::ingest::ShardedIngestSink;
using storage::CompareOp;

constexpr const char* kBench = "e15_ingest";

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const int64_t parsed = std::atoll(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

webspace::SynthesizedSite MakeSite(int videos_per_year = 2) {
  webspace::SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 3;
  config.videos_per_year = videos_per_year;
  config.seed = 2002;
  config.ensure_answer = true;
  return webspace::SiteSynthesizer::Generate(config).TakeValue();
}

core::VideoDescription MakeVideo(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 24; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

std::vector<vision::SignatureRecord> MakeSignatures(int64_t oid) {
  Rng rng(static_cast<uint64_t>(oid) * 131 + 9);
  std::vector<vision::SignatureRecord> records(4);
  for (size_t k = 0; k < records.size(); ++k) {
    vision::SignatureRecord& rec = records[k];
    for (uint64_t& word : rec.sig.hash) word = rng.NextU64();
    for (uint8_t& byte : rec.sig.sketch) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    rec.video_id = oid;
    rec.begin = static_cast<int64_t>(k) * 1000;
    rec.end = rec.begin + 999;
  }
  return records;
}

std::string FreshDir(const std::string& dir) {
  if (auto entries = seg::ListDir(dir); entries.ok()) {
    for (const std::string& entry : *entries) {
      (void)seg::RemoveFile(dir + "/" + entry);
    }
  }
  (void)seg::CreateDir(dir);
  return dir;
}

/// The durable-library test's seeded 16-modality sweep.
std::vector<engine::CombinedQuery> SweepQueries() {
  std::vector<engine::CombinedQuery> queries;
  Rng rng(21);
  for (int combo = 0; combo < 16; ++combo) {
    for (int variant = 0; variant < 3; ++variant) {
      engine::CombinedQuery query;
      if (combo & 1) {
        switch (rng.NextBounded(4)) {
          case 0:
            query.player_predicates.push_back(
                {"gender", CompareOp::kEq, std::string("female")});
            break;
          case 1:
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("left")});
            break;
          case 2:
            query.player_predicates.push_back(
                {"ranking", CompareOp::kLe, rng.NextInt(1, 40)});
            break;
          case 3:
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("ambidextrous")});
            break;
        }
      }
      if (combo & 2) {
        query.require_champion = true;
        if (rng.NextBounded(2) == 0) query.won_year = rng.NextInt(2018, 2022);
      }
      if (combo & 4) {
        const char* texts[] = {"champion title", "net volley",
                               "australian open"};
        query.text = texts[rng.NextBounded(3)];
        query.text_top_k = 1 + rng.NextBounded(12);
      }
      if (combo & 8) {
        const char* events[] = {"net_play", "rally", "service", "no_such"};
        query.event = events[rng.NextBounded(4)];
      }
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

bool BitIdenticalHits(const std::vector<engine::SceneHit>& a,
                      const std::vector<engine::SceneHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].player_oid != b[i].player_oid ||
        a[i].player_name != b[i].player_name ||
        a[i].video_oid != b[i].video_oid ||
        a[i].range.begin != b[i].range.begin ||
        a[i].range.end != b[i].range.end || a[i].event != b[i].event ||
        std::memcmp(&a[i].text_score, &b[i].text_score, 8) != 0) {
      return false;
    }
  }
  return true;
}

bool SameSweepAnswers(const engine::DigitalLibrary& expected,
                      const engine::DigitalLibrary& actual) {
  for (const engine::CombinedQuery& query : SweepQueries()) {
    auto ha = expected.Search(query);
    auto hb = actual.Search(query);
    if (ha.ok() != hb.ok()) return false;
    if (!ha.ok()) continue;
    if (!BitIdenticalHits(*ha, *hb)) return false;
  }
  return true;
}

/// The interview-heavy durable-ingest corpus: COBRA_E15_DOCS interview
/// records (E12's token generator) with a video + signature batch woven in
/// every 50 records, finalize at the end.
std::vector<IngestDelta> MakeThroughputOps(int64_t num_docs) {
  std::vector<std::string> vocabulary;
  for (int i = 0; i < 2000; ++i) vocabulary.push_back("w" + std::to_string(i));
  Rng rng(17);
  std::vector<IngestDelta> ops;
  ops.reserve(static_cast<size_t>(num_docs) + num_docs / 50 + 1);
  for (int64_t d = 0; d < num_docs; ++d) {
    std::string body;
    for (int t = 0; t < 40; ++t) {
      const uint64_t a = rng.NextBounded(vocabulary.size());
      const uint64_t b = rng.NextBounded(vocabulary.size());
      body += vocabulary[std::min(a, b)];
      body += ' ';
    }
    ops.push_back(IngestDelta::Interview(100000 + d, std::move(body)));
    if ((d + 1) % 50 == 0) {
      const int64_t oid = 900000 + d;
      ops.push_back(IngestDelta::Video(MakeVideo(oid), MakeSignatures(oid)));
    }
  }
  ops.push_back(IngestDelta::FinalizeText());
  return ops;
}

Status SubmitOps(CorpusIngestPipeline* pipeline,
                 const std::vector<IngestDelta>& ops) {
  for (const IngestDelta& op : ops) {
    Status status;
    switch (op.kind) {
      case IngestDelta::Kind::kInterview:
        status = pipeline->SubmitInterview(op.interview_oid,
                                           op.interview_text);
        break;
      case IngestDelta::Kind::kFinalizeText:
        status = pipeline->SubmitFinalizeText();
        break;
      case IngestDelta::Kind::kVideo: {
        auto delta = std::make_shared<IngestDelta>(op);
        status = pipeline->SubmitVideo(
            [delta]() -> Result<IngestDelta> { return *delta; });
        break;
      }
    }
    if (!status.ok()) return status;
  }
  return pipeline->Finish();
}

// ---------------------------------------------------------------------------
// E15a — sync-durable ingest throughput: serial loop vs pipeline.

struct IngestRun {
  double ops_per_s = 0.0;
  int64_t sync_calls = 0;
  int64_t records = 0;
};

const char* ModeName(seg::WalMode mode) {
  switch (mode) {
    case seg::WalMode::kSyncEachRecord: return "sync-each-record";
    case seg::WalMode::kGroupCommit: return "group-commit";
    case seg::WalMode::kBuffered: return "buffered";
  }
  return "?";
}

IngestRun RunSerial(const std::vector<IngestDelta>& ops, seg::WalMode mode) {
  engine::DurableLibrary::Options options;
  options.wal_mode = mode;
  const std::string dir =
      FreshDir(std::string("e15_serial_") + ModeName(mode));
  auto durable = engine::DurableLibrary::Create(
                     dir, std::move(MakeSite().store), options)
                     .TakeValue();
  bench::WallTimer timer;
  for (const IngestDelta& op : ops) {
    switch (op.kind) {
      case IngestDelta::Kind::kInterview:
        (void)durable->AddInterview(op.interview_oid, op.interview_text);
        break;
      case IngestDelta::Kind::kFinalizeText:
        (void)durable->FinalizeText();
        break;
      case IngestDelta::Kind::kVideo:
        (void)durable->AddVideoDescription(op.video);
        (void)durable->AddVideoSignatures(op.video.video_id(), op.signatures);
        break;
    }
  }
  IngestRun run;
  run.ops_per_s = static_cast<double>(ops.size()) / (timer.Millis() / 1e3);
  run.sync_calls = durable->wal_sync_calls();
  run.records = durable->wal_records_committed();
  return run;
}

IngestRun RunPipelined(const std::vector<IngestDelta>& ops, seg::WalMode mode,
                       int threads, size_t window) {
  engine::DurableLibrary::Options options;
  options.wal_mode = mode;
  const std::string dir =
      FreshDir(std::string("e15_pipelined_") + ModeName(mode));
  auto durable = engine::DurableLibrary::Create(
                     dir, std::move(MakeSite().store), options)
                     .TakeValue();
  DurableLibrarySink sink(durable.get());
  util::ThreadPool pool(threads);
  CorpusIngestPipeline::Options pipeline_options;
  pipeline_options.pool = &pool;
  pipeline_options.window = window;
  CorpusIngestPipeline pipeline(&sink, pipeline_options);
  bench::WallTimer timer;
  Status status = SubmitOps(&pipeline, ops);
  IngestRun run;
  run.ops_per_s = static_cast<double>(ops.size()) / (timer.Millis() / 1e3);
  run.sync_calls = durable->wal_sync_calls();
  run.records = durable->wal_records_committed();
  if (!status.ok()) {
    std::fprintf(stderr, "E15a pipelined ingest: %s\n",
                 status.ToString().c_str());
    std::exit(1);
  }
  return run;
}

bool RunThroughput(int64_t num_docs, size_t window) {
  bench::PrintHeader("E15a",
                     "sync-durable ingest: serial loop vs pipeline (ops/s)");
  const std::vector<IngestDelta> ops = MakeThroughputOps(num_docs);
  std::printf("corpus: %zu ops (%lld interviews), pipeline window %zu, "
              "submit thread + pool committer\n",
              ops.size(), static_cast<long long>(num_docs), window);

  const seg::WalMode modes[] = {seg::WalMode::kSyncEachRecord,
                                seg::WalMode::kGroupCommit,
                                seg::WalMode::kBuffered};
  IngestRun serial[3];
  IngestRun pipelined[3];
  for (int m = 0; m < 3; ++m) {
    serial[m] = RunSerial(ops, modes[m]);
    // ThreadPool(<=1) is inline mode — the serial degradation — so the
    // smallest pool with a real worker is 2. The committer role occupies
    // one worker at a time and spends its life inside fdatasync, so the
    // CPU work is still one core's worth: any speedup over the serial
    // loop is durability batching (group commit + per-sweep barriers),
    // not analysis parallelism.
    pipelined[m] = RunPipelined(ops, modes[m], /*threads=*/2, window);
    std::printf("%-18s serial %10.0f ops/s (%6lld syncs)   "
                "pipelined %10.0f ops/s (%6lld syncs)\n",
                ModeName(modes[m]), serial[m].ops_per_s,
                static_cast<long long>(serial[m].sync_calls),
                pipelined[m].ops_per_s,
                static_cast<long long>(pipelined[m].sync_calls));
    const std::string prefix = std::string(ModeName(modes[m]));
    bench::PrintJsonMetric(kBench,
                           ("serial_" + prefix + "_ops_per_s").c_str(),
                           serial[m].ops_per_s);
    bench::PrintJsonMetric(kBench,
                           ("pipelined_" + prefix + "_ops_per_s").c_str(),
                           pipelined[m].ops_per_s);
    bench::PrintJsonMetric(kBench,
                           ("pipelined_" + prefix + "_sync_calls").c_str(),
                           static_cast<double>(pipelined[m].sync_calls));
  }

  const double speedup = pipelined[1].ops_per_s / serial[0].ops_per_s;
  const double durability_tax =
      pipelined[2].ops_per_s / pipelined[1].ops_per_s;
  const double group_records_per_sync =
      pipelined[1].sync_calls > 0
          ? static_cast<double>(pipelined[1].records) /
                static_cast<double>(pipelined[1].sync_calls)
          : 0.0;
  std::printf("pipelined+group vs serial+sync:  %6.2f x  (target >= 3)\n",
              speedup);
  std::printf("buffered ceiling vs group:       %6.2f x  (target <= ~2)\n",
              durability_tax);
  std::printf("records per group fdatasync:     %6.1f\n",
              group_records_per_sync);
  bench::PrintJsonMetric(kBench, "pipelined_group_speedup_vs_serial_sync",
                         speedup);
  bench::PrintJsonMetric(kBench, "buffered_over_group_ratio", durability_tax);
  bench::PrintJsonMetric(kBench, "group_records_per_sync",
                         group_records_per_sync);
  return true;
}

// ---------------------------------------------------------------------------
// E15b — the bit-identity gate.

bool RunBitIdentity(int threads) {
  bench::PrintHeader("E15b",
                     "bit-identity: pipelined == serial oracle (the gate)");
  bool all_ok = true;
  auto report = [&all_ok](const char* arm, bool ok) {
    std::printf("%-44s %s\n", arm, ok ? "identical" : "MISMATCH");
    if (!ok) all_ok = false;
  };

  // The serial oracle: interviews, finalize, videos + signatures.
  auto oracle_site = MakeSite();
  std::vector<std::pair<int64_t, std::string>> interviews(
      oracle_site.interview_texts.begin(), oracle_site.interview_texts.end());
  const std::vector<int64_t> videos = oracle_site.video_oids;
  std::vector<IngestDelta> ops;
  for (const auto& [oid, body] : interviews) {
    ops.push_back(IngestDelta::Interview(oid, body));
  }
  ops.push_back(IngestDelta::FinalizeText());
  for (int64_t oid : videos) {
    ops.push_back(IngestDelta::Video(MakeVideo(oid), MakeSignatures(oid)));
  }
  auto oracle =
      engine::DigitalLibrary::Create(std::move(oracle_site.store)).TakeValue();
  for (const auto& [oid, body] : interviews) {
    (void)oracle->AddInterview(oid, body);
  }
  (void)oracle->FinalizeText();
  for (int64_t oid : videos) {
    (void)oracle->AddVideoDescription(MakeVideo(oid));
    (void)oracle->AddVideoSignatures(oid, MakeSignatures(oid));
  }

  // In-memory sink across thread counts.
  for (int t : {1, threads}) {
    auto site = MakeSite();
    auto library =
        engine::DigitalLibrary::Create(std::move(site.store)).TakeValue();
    LibrarySink sink(library.get());
    util::ThreadPool pool(t);
    CorpusIngestPipeline::Options options;
    options.pool = &pool;
    CorpusIngestPipeline pipeline(&sink, options);
    const bool ok = SubmitOps(&pipeline, ops).ok() &&
                    SameSweepAnswers(*oracle, *library);
    report(("in-memory, " + std::to_string(t) + " threads").c_str(), ok);
  }

  // Durable sink across WAL modes, live and reopened.
  const seg::WalMode modes[] = {seg::WalMode::kSyncEachRecord,
                                seg::WalMode::kGroupCommit,
                                seg::WalMode::kBuffered};
  for (const seg::WalMode mode : modes) {
    const std::string dir =
        FreshDir(std::string("e15_identity_") + ModeName(mode));
    bool ok = false;
    {
      auto site = MakeSite();
      engine::DurableLibrary::Options durable_options;
      durable_options.wal_mode = mode;
      auto durable = engine::DurableLibrary::Create(
                         dir, std::move(site.store), durable_options)
                         .TakeValue();
      DurableLibrarySink sink(durable.get());
      util::ThreadPool pool(threads);
      CorpusIngestPipeline::Options options;
      options.pool = &pool;
      CorpusIngestPipeline pipeline(&sink, options);
      ok = SubmitOps(&pipeline, ops).ok() &&
           SameSweepAnswers(*oracle, durable->library());
    }
    if (ok) {
      auto reopened = engine::DurableLibrary::Open(dir);
      ok = reopened.ok() && SameSweepAnswers(*oracle, (*reopened)->library());
    }
    report((std::string("durable, ") + ModeName(mode) + " + reopen").c_str(),
           ok);
  }

  // Sharded serving sink at 1/2/7 shards: seed half the corpus, ingest the
  // rest live (interviews replicated, videos routed), then compare the
  // frontend's merged answers with the unsharded oracle.
  const size_t interview_split = interviews.size() / 2;
  const size_t video_split = videos.size() / 2;
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{7}}) {
    auto site = MakeSite();
    engine::serving::CorpusParts seed;
    seed.store = site.store;
    for (size_t i = 0; i < interview_split; ++i) {
      seed.interviews.push_back(interviews[i]);
    }
    for (size_t v = 0; v < video_split; ++v) {
      seed.videos.push_back(MakeVideo(videos[v]));
      seed.signatures.emplace_back(videos[v], MakeSignatures(videos[v]));
    }
    std::vector<IngestDelta> live;
    for (size_t i = interview_split; i < interviews.size(); ++i) {
      live.push_back(
          IngestDelta::Interview(interviews[i].first, interviews[i].second));
    }
    live.push_back(IngestDelta::FinalizeText());
    for (size_t v = video_split; v < videos.size(); ++v) {
      live.push_back(
          IngestDelta::Video(MakeVideo(videos[v]), MakeSignatures(videos[v])));
    }

    ShardedIngestSink::Options sink_options;
    sink_options.num_shards = num_shards;
    sink_options.finalize_seed_text = false;
    auto sink = ShardedIngestSink::Create(seed, sink_options).TakeValue();
    util::ThreadPool pool(threads);
    CorpusIngestPipeline::Options options;
    options.pool = &pool;
    CorpusIngestPipeline pipeline(sink.get(), options);
    bool ok = SubmitOps(&pipeline, live).ok();
    if (ok) {
      for (const engine::CombinedQuery& query : SweepQueries()) {
        auto expected = oracle->Search(query);
        auto actual = sink->frontend().Search(query, 0);
        if (expected.ok() != actual.ok()) { ok = false; break; }
        if (expected.ok() && !BitIdenticalHits(*expected, *actual)) {
          ok = false;
          break;
        }
      }
    }
    report(("sharded serving, " + std::to_string(num_shards) + " shards")
               .c_str(),
           ok);
  }

  bench::PrintJsonMetric(kBench, "bit_identity_pass", all_ok ? 1.0 : 0.0);
  return all_ok;
}

// ---------------------------------------------------------------------------
// E15c — sustained queries while ingesting.

void RunServingUnderIngest(int threads, int64_t live_videos) {
  bench::PrintHeader("E15c", "query throughput while ingesting (2 shards)");
  auto site = MakeSite(/*videos_per_year=*/4);
  engine::serving::CorpusParts seed;
  seed.store = std::move(site.store);
  for (const auto& [oid, body] : site.interview_texts) {
    seed.interviews.emplace_back(oid, body);
  }
  const size_t video_split = site.video_oids.size() / 2;
  for (size_t v = 0; v < video_split; ++v) {
    const int64_t oid = site.video_oids[v];
    seed.videos.push_back(MakeVideo(oid));
    seed.signatures.emplace_back(oid, MakeSignatures(oid));
  }

  ShardedIngestSink::Options sink_options;
  sink_options.num_shards = 2;
  sink_options.serving.replicas = 2;
  auto sink = ShardedIngestSink::Create(seed, sink_options).TakeValue();

  auto run_queries = [&sink](std::atomic<bool>* stop, int64_t* answered,
                             int64_t* shed) {
    const char* events[] = {"net_play", "rally", "service", "smash"};
    int round = 0;
    while (!stop->load(std::memory_order_relaxed)) {
      engine::CombinedQuery query;
      query.event = events[round++ % 4];
      if (round % 3 == 0) query.require_champion = true;
      auto hits = sink->frontend().Search(query, 8);
      if (hits.ok()) {
        ++*answered;
      } else {
        ++*shed;
      }
    }
  };

  // Quiescent baseline.
  std::atomic<bool> stop{false};
  int64_t baseline_answered = 0, baseline_shed = 0;
  std::thread baseline_reader(run_queries, &stop, &baseline_answered,
                              &baseline_shed);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  baseline_reader.join();
  const double qps_quiescent = static_cast<double>(baseline_answered) / 0.2;

  // The same reader racing live ingest: the remaining site videos plus
  // `live_videos` fresh (monotonic-id) ones, analyzed on the pool.
  std::vector<IngestDelta> live;
  for (size_t v = video_split; v < site.video_oids.size(); ++v) {
    const int64_t oid = site.video_oids[v];
    live.push_back(IngestDelta::Video(MakeVideo(oid), MakeSignatures(oid)));
  }
  for (int64_t k = 0; k < live_videos; ++k) {
    const int64_t oid = 900000 + k;
    live.push_back(IngestDelta::Video(MakeVideo(oid), MakeSignatures(oid)));
  }

  stop.store(false);
  int64_t answered = 0, shed = 0;
  std::thread reader(run_queries, &stop, &answered, &shed);
  util::ThreadPool pool(threads);
  CorpusIngestPipeline::Options options;
  options.pool = &pool;
  CorpusIngestPipeline pipeline(sink.get(), options);
  bench::WallTimer timer;
  Status status = SubmitOps(&pipeline, live);
  const double ingest_ms = timer.Millis();
  stop.store(true);
  reader.join();
  if (!status.ok()) {
    std::fprintf(stderr, "E15c ingest: %s\n", status.ToString().c_str());
    std::exit(1);
  }

  const double qps_during =
      static_cast<double>(answered) / (ingest_ms / 1e3);
  const double ingest_rate =
      static_cast<double>(live.size()) / (ingest_ms / 1e3);
  std::printf("ingested %zu videos in %.1f ms (%.0f videos/s, %lld "
              "publishes)\n",
              live.size(), ingest_ms, ingest_rate,
              static_cast<long long>(sink->publishes()));
  std::printf("queries: %8.0f qps quiescent, %8.0f qps during ingest "
              "(%lld shed)\n",
              qps_quiescent, qps_during, static_cast<long long>(shed));
  bench::PrintJsonMetric(kBench, "qps_quiescent", qps_quiescent);
  bench::PrintJsonMetric(kBench, "qps_during_ingest", qps_during);
  bench::PrintJsonMetric(kBench, "live_ingest_videos_per_s", ingest_rate);
  bench::PrintJsonMetric(kBench, "queries_shed_during_ingest",
                         static_cast<double>(shed));
  bench::PrintJsonMetric(kBench, "publishes",
                         static_cast<double>(sink->publishes()));
}

}  // namespace

int main() {
  cobra::bench::OpenJsonArtifact("BENCH_E15.json");
  const int64_t num_docs = EnvInt("COBRA_E15_DOCS", 2000);
  const size_t window =
      static_cast<size_t>(EnvInt("COBRA_E15_WINDOW", 64));
  const int threads = static_cast<int>(EnvInt("COBRA_E15_THREADS", 4));
  const int64_t live_videos = EnvInt("COBRA_E15_LIVE_VIDEOS", 64);
  RunThroughput(num_docs, window);
  const bool identical = RunBitIdentity(threads);
  RunServingUnderIngest(threads, live_videos);
  if (!identical) {
    std::fprintf(stderr,
                 "E15b FAILED: pipelined ingest diverged from the serial "
                 "oracle\n");
    return 1;
  }
  return 0;
}
