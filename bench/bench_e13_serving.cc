/// \file bench_e13_serving.cc
/// E13 — sharded scatter-gather serving (DESIGN.md §4i). A closed-loop
/// mixed traffic stream (concept-only, text, and content queries) is
/// answered by
///   a) the single-node engine::QueryEngine over the unsharded library
///      (full result sets — the engine has no top-N API), and
///   b) the ServingFrontend at 1, 2 and 4 shards serving the global
///      top-10 via the block-max-bounded merge;
/// reporting max sustainable QPS plus p50/p99 latency for each, the 4-shard
/// speedup, a bit-identity check of the merged answers against the oracle,
/// and an overload arm at ~2x the single-client saturation load with tiny
/// admission queues, where p99 must stay bounded because excess queries are
/// shed (Unavailable), not queued.
///
/// Environment knobs (CI reduction): COBRA_E13_PLAYERS, COBRA_E13_VPY
/// (videos per year), COBRA_E13_QUERIES (stream length).

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/digital_library.h"
#include "engine/query_engine.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "util/rng.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT
using engine::CombinedQuery;
using engine::SceneHit;
using engine::serving::CorpusParts;
using engine::serving::ServingConfig;
using engine::serving::ServingFrontend;
using storage::CompareOp;

constexpr const char* kBench = "e13_serving";
constexpr size_t kTopN = 10;

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const int64_t parsed = std::atoll(env);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

core::VideoDescription MakeVideo(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 384; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

CorpusParts MakeCorpus() {
  webspace::SiteConfig config;
  config.num_players = static_cast<int>(EnvInt("COBRA_E13_PLAYERS", 48));
  config.num_past_years = 6;
  config.videos_per_year = static_cast<int>(EnvInt("COBRA_E13_VPY", 40));
  config.seed = 2002;
  config.ensure_answer = true;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  CorpusParts parts{std::move(site.store), {}, {}};
  for (const auto& [oid, body] : site.interview_texts) {
    parts.interviews.emplace_back(oid, body);
  }
  for (int64_t oid : site.video_oids) {
    parts.videos.push_back(MakeVideo(oid));
  }
  return parts;
}

/// Mixed production-shaped traffic: ~80% content (event) queries with
/// cache-busting predicate variants, ~20% no-event concept/text queries
/// drawn from a small popular pool (these repeat, as dashboards do).
std::vector<CombinedQuery> MakeStream(size_t count) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  const char* texts[] = {"champion title", "net volley", "australian open"};
  std::vector<CombinedQuery> stream;
  stream.reserve(count);
  Rng rng(1702);
  for (size_t i = 0; i < count; ++i) {
    CombinedQuery query;
    const uint32_t kind = rng.NextBounded(10);
    if (kind < 8) {
      query.event = events[rng.NextBounded(4)];
      switch (rng.NextBounded(4)) {
        case 0:
          query.player_predicates.push_back(
              {"ranking", CompareOp::kLe, rng.NextInt(3, 60)});
          break;
        case 1:
          query.require_champion = true;
          query.won_year = rng.NextInt(2016, 2023);
          break;
        case 2:
          query.text = texts[rng.NextBounded(3)];
          query.text_top_k = 1 + rng.NextBounded(16);
          break;
        default:  // plain event scan
          break;
      }
    } else if (kind == 8) {  // popular concept-only pool (repeats)
      query.require_champion = true;
      if (rng.NextBounded(2) == 0) {
        query.player_predicates.push_back(
            {"hand", CompareOp::kEq, std::string("left")});
      }
    } else {  // popular text-only pool (repeats)
      query.text = texts[rng.NextBounded(3)];
      query.text_top_k = 8;
    }
    stream.push_back(std::move(query));
  }
  return stream;
}

struct LoopResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

template <typename Fn>
LoopResult ClosedLoop(const std::vector<CombinedQuery>& stream, Fn&& answer) {
  std::vector<double> latencies;
  latencies.reserve(stream.size());
  bench::WallTimer total;
  for (const CombinedQuery& query : stream) {
    bench::WallTimer timer;
    answer(query);
    latencies.push_back(timer.Millis());
  }
  LoopResult result;
  result.qps = static_cast<double>(stream.size()) / (total.Millis() / 1e3);
  result.p50_ms = bench::Percentile(latencies, 0.50);
  result.p99_ms = bench::Percentile(latencies, 0.99);
  return result;
}

bool BitIdentical(const std::vector<SceneHit>& a,
                  const std::vector<SceneHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &a[i].text_score, 8);
    std::memcpy(&bits_b, &b[i].text_score, 8);
    if (a[i].player_oid != b[i].player_oid ||
        a[i].video_oid != b[i].video_oid ||
        a[i].range.begin != b[i].range.begin ||
        a[i].range.end != b[i].range.end || a[i].event != b[i].event ||
        bits_a != bits_b) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::OpenJsonArtifact("BENCH_E13.json");
  bench::PrintHeader("E13", "sharded scatter-gather serving");

  const CorpusParts parts = MakeCorpus();
  auto oracle = engine::serving::BuildLibrary(parts).TakeValue();
  const size_t stream_len =
      static_cast<size_t>(EnvInt("COBRA_E13_QUERIES", 400));
  const std::vector<CombinedQuery> stream = MakeStream(stream_len);
  std::printf("corpus: %zu videos, %zu interviews, stream of %zu queries\n",
              parts.videos.size(), parts.interviews.size(), stream.size());

  // ---- a) single-node baseline: full result sets from one engine. ----
  engine::QueryEngineConfig engine_config;
  engine_config.num_threads = 1;
  engine::QueryEngine baseline(oracle.get(), engine_config);
  for (size_t i = 0; i < stream.size(); i += 10) {
    (void)baseline.Search(stream[i]);  // warm the cache + page the index
  }
  const LoopResult base =
      ClosedLoop(stream, [&](const CombinedQuery& q) { (void)baseline.Search(q); });
  std::printf("baseline        %8.1f qps   p50 %7.3f ms   p99 %7.3f ms\n",
              base.qps, base.p50_ms, base.p99_ms);
  bench::PrintJsonMetric(kBench, "baseline_qps", base.qps);
  bench::PrintJsonMetric(kBench, "baseline_p50_ms", base.p50_ms);
  bench::PrintJsonMetric(kBench, "baseline_p99_ms", base.p99_ms);

  // ---- b) serving tier at 1, 2 and 4 shards, global top-10. ----
  double qps4 = 0.0;
  bool identical = true;
  for (size_t num_shards : {1u, 2u, 4u}) {
    auto shards =
        engine::serving::BuildShardLibraries(parts, num_shards).TakeValue();
    std::vector<const engine::DigitalLibrary*> views;
    for (const auto& shard : shards) views.push_back(shard.get());
    ServingConfig config;
    config.engine.num_threads = 1;
    auto frontend = ServingFrontend::Create(views, config).TakeValue();
    for (size_t i = 0; i < stream.size(); i += 10) {
      (void)frontend->Search(stream[i], kTopN);
    }
    const LoopResult run = ClosedLoop(stream, [&](const CombinedQuery& q) {
      (void)frontend->Search(q, kTopN);
    });
    std::printf("serving x%zu      %8.1f qps   p50 %7.3f ms   p99 %7.3f ms\n",
                num_shards, run.qps, run.p50_ms, run.p99_ms);
    const std::string tag = "serving_" + std::to_string(num_shards) + "shard";
    bench::PrintJsonMetric(kBench, (tag + "_qps").c_str(), run.qps);
    bench::PrintJsonMetric(kBench, (tag + "_p50_ms").c_str(), run.p50_ms);
    bench::PrintJsonMetric(kBench, (tag + "_p99_ms").c_str(), run.p99_ms);
    if (num_shards == 4) qps4 = run.qps;

    // Merged answers must be bit-identical to the oracle's top-10.
    for (size_t i = 0; i < stream.size(); i += 7) {
      auto expected = oracle->Search(stream[i]);
      auto actual = frontend->Search(stream[i], kTopN);
      if (expected.ok() != actual.ok()) {
        identical = false;
        continue;
      }
      if (!expected.ok()) continue;
      auto want = *std::move(expected);
      if (want.size() > kTopN) want.resize(kTopN);
      identical = identical && BitIdentical(want, *actual);
    }
  }
  bench::PrintRule();
  const double speedup = base.qps > 0.0 ? qps4 / base.qps : 0.0;
  std::printf("4-shard speedup %.2fx   bit-identical %s\n", speedup,
              identical ? "yes" : "NO");
  bench::PrintJsonMetric(kBench, "speedup_4shard", speedup);
  bench::PrintJsonMetric(kBench, "serving_bit_identical",
                         identical ? 1.0 : 0.0);

  // ---- c) overload: ~2x saturation with tiny admission queues. ----
  // Single-client closed loop saturates the one evaluation core, so two
  // extra concurrent clients offer ~2x the sustainable load. queue_depth=1
  // keeps admission bounded: the excess is shed, so the p99 of ACCEPTED
  // queries must stay near the unloaded p99 instead of growing with the
  // offered load.
  {
    auto shards = engine::serving::BuildShardLibraries(parts, 4).TakeValue();
    std::vector<const engine::DigitalLibrary*> views;
    for (const auto& shard : shards) views.push_back(shard.get());
    ServingConfig config;
    config.queue_depth = 1;
    auto frontend = ServingFrontend::Create(views, config).TakeValue();
    for (size_t i = 0; i < stream.size(); i += 10) {
      (void)frontend->Search(stream[i], kTopN);
    }
    std::atomic<int64_t> accepted{0};
    std::atomic<int64_t> shed{0};
    std::mutex lat_mu;
    std::vector<double> accepted_ms;
    auto client = [&](size_t offset) {
      for (size_t i = offset; i < stream.size(); i += 3) {
        bench::WallTimer timer;
        auto result = frontend->Search(stream[i], kTopN);
        const double ms = timer.Millis();
        if (result.ok()) {
          accepted.fetch_add(1);
          std::lock_guard<std::mutex> lock(lat_mu);
          accepted_ms.push_back(ms);
        } else {
          shed.fetch_add(1);
        }
      }
    };
    std::thread c1(client, 1), c2(client, 2);
    client(0);
    c1.join();
    c2.join();
    const double total = static_cast<double>(accepted.load() + shed.load());
    const double shed_fraction =
        total > 0.0 ? static_cast<double>(shed.load()) / total : 0.0;
    const double overload_p99 = bench::Percentile(accepted_ms, 0.99);
    std::printf(
        "overload 3 clients: accepted %lld, shed %lld (%.1f%%), "
        "accepted p99 %7.3f ms\n",
        static_cast<long long>(accepted.load()),
        static_cast<long long>(shed.load()), shed_fraction * 100.0,
        overload_p99);
    bench::PrintJsonMetric(kBench, "overload_shed_fraction", shed_fraction);
    bench::PrintJsonMetric(kBench, "overload_accepted_p99_ms", overload_p99);
  }
  return 0;
}
