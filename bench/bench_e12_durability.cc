/// \file bench_e12_durability.cc
/// E12 — durable segment storage (DESIGN.md §4h). Four sections:
///   a) cold start at COBRA_E12_DOCS interview documents (default 100k):
///      in-memory rebuild vs mmap segment open (full verify and no-verify)
///      vs heap-copy open — the headline is mmap_speedup_vs_rebuild;
///   b) ingest throughput: WAL fdatasync-per-record vs buffered WAL vs the
///      never-persisted in-memory library;
///   c) query latency p50/p99 on the mmap-backed vs heap-backed restored
///      index, plus a bit-identity sweep against the rebuilt library;
///   d) background compaction: merge cost and queries during the merge.
/// Results mirror to BENCH_E12.json (one JSON object per line). Artifacts
/// (segment directories) live under the working directory — CI runs this
/// from build/, so nothing lands in the source tree.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "storage/segment/io.h"
#include "text/inverted_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

namespace {

using namespace cobra;  // NOLINT
namespace seg = storage::segment;

constexpr const char* kBench = "e12_durability";

int64_t DocCount() {
  if (const char* env = std::getenv("COBRA_E12_DOCS")) {
    const int64_t parsed = std::atoll(env);
    if (parsed > 0) return parsed;
  }
  return 100000;
}

// Synthetic interview corpus: ~40 tokens per document over a 2000-word
// vocabulary with a mild skew (min of two uniforms) so postings lists have
// realistic length spread.
std::vector<std::string> MakeVocabulary() {
  std::vector<std::string> vocabulary;
  vocabulary.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    vocabulary.push_back("w" + std::to_string(i));
  }
  return vocabulary;
}

std::vector<std::string> MakeDoc(const std::vector<std::string>& vocabulary,
                                 Rng* rng) {
  std::vector<std::string> tokens;
  tokens.reserve(40);
  for (int t = 0; t < 40; ++t) {
    const uint64_t a = rng->NextBounded(vocabulary.size());
    const uint64_t b = rng->NextBounded(vocabulary.size());
    tokens.push_back(vocabulary[std::min(a, b)]);
  }
  return tokens;
}

std::vector<std::string> QuerySet(const std::vector<std::string>& vocabulary) {
  std::vector<std::string> queries;
  Rng rng(123);
  for (int q = 0; q < 200; ++q) {
    std::string query = vocabulary[rng.NextBounded(400)];
    query += " " + vocabulary[rng.NextBounded(1200)];
    if (q % 2 == 0) query += " " + vocabulary[rng.NextBounded(2000)];
    queries.push_back(std::move(query));
  }
  return queries;
}

webspace::SynthesizedSite MakeSite() {
  webspace::SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 3;
  config.videos_per_year = 1;
  config.seed = 2002;
  config.ensure_answer = true;
  return webspace::SiteSynthesizer::Generate(config).TakeValue();
}

std::string FreshDir(const std::string& dir) {
  if (auto entries = seg::ListDir(dir); entries.ok()) {
    for (const std::string& entry : *entries) {
      (void)seg::RemoveFile(dir + "/" + entry);
    }
  }
  (void)seg::CreateDir(dir);
  return dir;
}

bool BitIdenticalSearches(const text::InvertedIndex& a,
                          const text::InvertedIndex& b,
                          const std::vector<std::string>& queries) {
  for (const std::string& query : queries) {
    auto ha = a.SearchTopN(query, 10);
    auto hb = b.SearchTopN(query, 10);
    if (!ha.ok() || !hb.ok() || ha->size() != hb->size()) return false;
    for (size_t i = 0; i < ha->size(); ++i) {
      if ((*ha)[i].doc_id != (*hb)[i].doc_id) return false;
      if (std::memcmp(&(*ha)[i].score, &(*hb)[i].score, 8) != 0) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// E12a — cold start: rebuild vs mmap open vs heap open.

void RunColdStart(const int64_t num_docs,
                  const std::vector<std::string>& vocabulary,
                  const std::vector<std::string>& queries) {
  bench::PrintHeader("E12a", "cold start: rebuild vs mmap segment open");

  // Persist once: a durable library whose text index holds the corpus.
  const std::string dir = FreshDir("e12_coldstart");
  {
    auto durable =
        engine::DurableLibrary::Create(dir, std::move(MakeSite().store))
            .TakeValue();
    Rng rng(7);
    for (int64_t d = 0; d < num_docs; ++d) {
      std::string body;
      for (const std::string& token : MakeDoc(vocabulary, &rng)) {
        body += token;
        body += ' ';
      }
      (void)durable->AddInterview(100000 + d, body);
    }
    (void)durable->FinalizeText();
    bench::WallTimer flush_timer;
    (void)durable->Flush();
    bench::PrintJsonMetric(kBench, "flush_snapshot_ms", flush_timer.Millis());
  }
  int64_t bytes = 0;
  for (const std::string& entry : seg::ListDir(dir).TakeValue()) {
    bytes += seg::FileSize(dir + "/" + entry).TakeValue();
  }

  // The O(corpus) arm: rebuild the index in memory from the raw documents.
  double rebuild_ms = 0.0;
  std::unique_ptr<engine::DigitalLibrary> rebuilt;
  {
    bench::WallTimer timer;
    auto library =
        engine::DigitalLibrary::Create(std::move(MakeSite().store))
            .TakeValue();
    Rng rng(7);
    for (int64_t d = 0; d < num_docs; ++d) {
      std::string body;
      for (const std::string& token : MakeDoc(vocabulary, &rng)) {
        body += token;
        body += ' ';
      }
      (void)library->AddInterview(100000 + d, body);
    }
    (void)library->FinalizeText();
    rebuild_ms = timer.Millis();
    rebuilt = std::move(library);
  }

  // The O(1)-page-ins arms. Each open is a full DurableLibrary::Open:
  // manifest, segment mapping, restore, (empty) WAL replay.
  auto time_open = [&](const engine::DurableLibrary::Options& options) {
    std::vector<double> times;
    for (int rep = 0; rep < 5; ++rep) {
      bench::WallTimer timer;
      auto durable = engine::DurableLibrary::Open(dir, options).TakeValue();
      times.push_back(timer.Millis());
    }
    return bench::Percentile(times, 0.5);
  };
  engine::DurableLibrary::Options mmap_options;
  engine::DurableLibrary::Options noverify_options;
  noverify_options.verify = seg::SegmentReader::Verify::kNone;
  engine::DurableLibrary::Options heap_options;
  heap_options.copy_text = true;
  const double mmap_ms = time_open(mmap_options);
  const double noverify_ms = time_open(noverify_options);
  const double heap_ms = time_open(heap_options);

  // First-query cost after a cold mmap open (pages fault in lazily).
  auto durable = engine::DurableLibrary::Open(dir, mmap_options).TakeValue();
  bench::WallTimer first_query;
  (void)durable->library().interviews().SearchTopN(queries.front(), 10);
  const double first_query_ms = first_query.Millis();
  const bool identical = BitIdenticalSearches(
      rebuilt->interviews(), durable->library().interviews(), queries);

  std::printf("docs %lld, segment bytes %lld\n",
              static_cast<long long>(num_docs), static_cast<long long>(bytes));
  std::printf("%-28s %10.1f ms\n", "in-memory rebuild", rebuild_ms);
  std::printf("%-28s %10.1f ms\n", "mmap open (full verify)", mmap_ms);
  std::printf("%-28s %10.1f ms\n", "mmap open (no verify)", noverify_ms);
  std::printf("%-28s %10.1f ms\n", "heap-copy open", heap_ms);
  std::printf("%-28s %10.2f x\n", "mmap speedup vs rebuild",
              rebuild_ms / mmap_ms);
  std::printf("%-28s %10.2f ms (bit-identical: %s)\n", "first query",
              first_query_ms, identical ? "yes" : "NO");

  bench::PrintJsonMetric(kBench, "docs", static_cast<double>(num_docs));
  bench::PrintJsonMetric(kBench, "segment_bytes", static_cast<double>(bytes));
  bench::PrintJsonMetric(kBench, "rebuild_ms", rebuild_ms);
  bench::PrintJsonMetric(kBench, "mmap_open_ms", mmap_ms);
  bench::PrintJsonMetric(kBench, "mmap_open_noverify_ms", noverify_ms);
  bench::PrintJsonMetric(kBench, "heap_open_ms", heap_ms);
  bench::PrintJsonMetric(kBench, "mmap_speedup_vs_rebuild",
                         rebuild_ms / mmap_ms);
  bench::PrintJsonMetric(kBench, "first_query_ms", first_query_ms);
  bench::PrintJsonMetric(kBench, "coldstart_bit_identical",
                         identical ? 1.0 : 0.0);
}

// ---------------------------------------------------------------------------
// E12b — ingest throughput: WAL sync on / off vs in-memory.

void RunIngest(const std::vector<std::string>& vocabulary) {
  bench::PrintHeader("E12b", "ingest throughput (docs/s)");
  const int64_t num_docs = 2000;

  auto make_bodies = [&] {
    std::vector<std::string> bodies;
    Rng rng(17);
    for (int64_t d = 0; d < num_docs; ++d) {
      std::string body;
      for (const std::string& token : MakeDoc(vocabulary, &rng)) {
        body += token;
        body += ' ';
      }
      bodies.push_back(std::move(body));
    }
    return bodies;
  };
  const std::vector<std::string> bodies = make_bodies();

  auto run_durable = [&](bool wal_sync) {
    engine::DurableLibrary::Options options;
    options.wal_mode = wal_sync
                           ? storage::segment::WalMode::kSyncEachRecord
                           : storage::segment::WalMode::kBuffered;
    const std::string dir =
        FreshDir(wal_sync ? "e12_ingest_sync" : "e12_ingest_nosync");
    auto durable = engine::DurableLibrary::Create(
                       dir, std::move(MakeSite().store), options)
                       .TakeValue();
    bench::WallTimer timer;
    for (int64_t d = 0; d < num_docs; ++d) {
      (void)durable->AddInterview(100000 + d, bodies[d]);
    }
    return static_cast<double>(num_docs) / (timer.Millis() / 1e3);
  };
  const double sync_rate = run_durable(true);
  const double nosync_rate = run_durable(false);

  auto library =
      engine::DigitalLibrary::Create(std::move(MakeSite().store)).TakeValue();
  bench::WallTimer timer;
  for (int64_t d = 0; d < num_docs; ++d) {
    (void)library->AddInterview(100000 + d, bodies[d]);
  }
  const double memory_rate =
      static_cast<double>(num_docs) / (timer.Millis() / 1e3);

  std::printf("%-28s %12.0f docs/s\n", "WAL, fdatasync per record", sync_rate);
  std::printf("%-28s %12.0f docs/s\n", "WAL, buffered", nosync_rate);
  std::printf("%-28s %12.0f docs/s\n", "in-memory (no WAL)", memory_rate);
  bench::PrintJsonMetric(kBench, "ingest_wal_sync_docs_per_s", sync_rate);
  bench::PrintJsonMetric(kBench, "ingest_wal_nosync_docs_per_s", nosync_rate);
  bench::PrintJsonMetric(kBench, "ingest_memory_docs_per_s", memory_rate);
}

// ---------------------------------------------------------------------------
// E12c — query latency, mmap-backed vs heap-backed.

void RunQueryLatency(const std::vector<std::string>& queries) {
  bench::PrintHeader("E12c", "query p50/p99: mmap-backed vs heap-backed");
  const std::string dir = "e12_coldstart";  // persisted by E12a

  auto measure = [&](bool copy_text, double* p50, double* p99) {
    engine::DurableLibrary::Options options;
    options.copy_text = copy_text;
    auto durable = engine::DurableLibrary::Open(dir, options).TakeValue();
    const text::InvertedIndex& index = durable->library().interviews();
    // Warm pass so the mmap arm's page faults don't masquerade as query
    // cost (cold-start cost is E12a's metric).
    for (const std::string& query : queries) {
      (void)index.SearchTopN(query, 10);
    }
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      for (const std::string& query : queries) {
        bench::WallTimer timer;
        (void)index.SearchTopN(query, 10);
        times.push_back(timer.Millis());
      }
    }
    *p50 = bench::Percentile(times, 0.5);
    *p99 = bench::Percentile(times, 0.99);
  };
  double mmap_p50 = 0, mmap_p99 = 0, heap_p50 = 0, heap_p99 = 0;
  measure(false, &mmap_p50, &mmap_p99);
  measure(true, &heap_p50, &heap_p99);

  std::printf("%-18s p50 %8.3f ms   p99 %8.3f ms\n", "mmap-backed", mmap_p50,
              mmap_p99);
  std::printf("%-18s p50 %8.3f ms   p99 %8.3f ms\n", "heap-backed", heap_p50,
              heap_p99);
  bench::PrintJsonMetric(kBench, "query_mmap_p50_ms", mmap_p50);
  bench::PrintJsonMetric(kBench, "query_mmap_p99_ms", mmap_p99);
  bench::PrintJsonMetric(kBench, "query_heap_p50_ms", heap_p50);
  bench::PrintJsonMetric(kBench, "query_heap_p99_ms", heap_p99);
}

// ---------------------------------------------------------------------------
// E12d — background compaction.

void RunCompaction(const std::vector<std::string>& vocabulary,
                   const std::vector<std::string>& queries) {
  bench::PrintHeader("E12d", "background merge/compaction");
  const std::string dir = FreshDir("e12_compact");
  auto durable =
      engine::DurableLibrary::Create(dir, std::move(MakeSite().store))
          .TakeValue();
  Rng rng(29);
  const int64_t num_docs = 20000;
  for (int64_t d = 0; d < num_docs; ++d) {
    std::string body;
    for (const std::string& token : MakeDoc(vocabulary, &rng)) {
      body += token;
      body += ' ';
    }
    (void)durable->AddInterview(100000 + d, body);
    if ((d + 1) % 4000 == 0) (void)durable->Flush();  // many delta segments
  }
  (void)durable->FinalizeText();
  (void)durable->Flush();
  const size_t segments_before = durable->num_segments();

  util::ThreadPool pool(2);
  bench::WallTimer timer;
  (void)durable->CompactAsync(&pool);
  // Queries proceed against the live library while the merge runs.
  int64_t queries_during = 0;
  for (const std::string& query : queries) {
    (void)durable->library().interviews().SearchTopN(query, 10);
    ++queries_during;
  }
  (void)durable->WaitForCompaction();
  const double compact_ms = timer.Millis();
  const size_t segments_after = durable->num_segments();

  auto reopened = engine::DurableLibrary::Open(dir).TakeValue();
  const bool identical = BitIdenticalSearches(
      durable->library().interviews(), reopened->library().interviews(),
      queries);

  std::printf("segments %zu -> %zu, compact %0.1f ms, %lld concurrent "
              "queries, reopen bit-identical: %s\n",
              segments_before, segments_after, compact_ms,
              static_cast<long long>(queries_during),
              identical ? "yes" : "NO");
  bench::PrintJsonMetric(kBench, "segments_before_compaction",
                         static_cast<double>(segments_before));
  bench::PrintJsonMetric(kBench, "segments_after_compaction",
                         static_cast<double>(segments_after));
  bench::PrintJsonMetric(kBench, "compaction_ms", compact_ms);
  bench::PrintJsonMetric(kBench, "compaction_bit_identical",
                         identical ? 1.0 : 0.0);
}

}  // namespace

int main() {
  cobra::bench::OpenJsonArtifact("BENCH_E12.json");
  const int64_t num_docs = DocCount();
  const std::vector<std::string> vocabulary = MakeVocabulary();
  const std::vector<std::string> queries = QuerySet(vocabulary);
  RunColdStart(num_docs, vocabulary, queries);
  RunIngest(vocabulary);
  RunQueryLatency(queries);
  RunCompaction(vocabulary, queries);
  return 0;
}
