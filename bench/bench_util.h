#pragma once

/// \file bench_util.h
/// Shared helpers for the experiment harness (one binary per experiment,
/// see DESIGN.md §4). Each binary prints its paper-style table(s) first and
/// then runs its google-benchmark timings.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "media/tennis_synthesizer.h"

namespace cobra::bench {

/// The JSON artifact file, when a bench opened one (nullptr otherwise).
inline std::FILE*& JsonArtifact() {
  static std::FILE* file = nullptr;
  return file;
}

/// Opens (truncating) a JSON-lines artifact; every subsequent
/// PrintJsonMetric line is mirrored there so CI can upload the file
/// (e.g. BENCH_E2.json) without scraping stdout. Call once at the top of a
/// bench's main(). Failure to open only warns — metrics still go to stdout.
inline void OpenJsonArtifact(const char* path) {
  std::FILE*& file = JsonArtifact();
  if (file != nullptr) std::fclose(file);
  file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "warning: cannot open JSON artifact %s\n", path);
  }
}

/// Machine-readable result line, one JSON object per line so a harness can
/// grep/parse them out of the human-readable tables:
///   {"bench": "e2_shot_boundary", "metric": "cached_ms", "value": 123.4}
inline void PrintJsonMetric(const char* bench, const char* metric,
                            double value) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g}\n",
              bench, metric, value);
  if (std::FILE* file = JsonArtifact()) {
    std::fprintf(file, "{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g}\n",
                 bench, metric, value);
    std::fflush(file);
  }
}

/// Wall-clock timer for the paper-style experiment sections (the
/// google-benchmark parts keep their own timing).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Millis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median (p50) throughput of `fn` over `reps` timed repetitions, where one
/// repetition processes `pixels` pixels total; returned in Mpix/s. The
/// median discards scheduler noise without needing a long steady-state run.
template <typename Fn>
double MedianMpixPerSec(int64_t pixels, int reps, Fn&& fn) {
  std::vector<double> rates;
  rates.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    const double seconds = timer.Millis() / 1e3;
    rates.push_back(static_cast<double>(pixels) / 1e6 / seconds);
  }
  std::sort(rates.begin(), rates.end());
  return rates[static_cast<size_t>(reps) / 2];
}

/// p-th percentile (p in [0, 1]) of `samples` by linear interpolation over
/// the sorted values — the estimator behind every bench's p50/p99 lines.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double rank = p * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

/// Median wall-clock milliseconds of `fn` over `reps` repetitions; the
/// median discards scheduler noise without needing a long steady-state run.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    times.push_back(timer.Millis());
  }
  std::sort(times.begin(), times.end());
  return times[static_cast<size_t>(reps) / 2];
}

/// The default broadcast for detector experiments: ~1.3k frames, 5 points.
inline media::TennisSynthConfig DefaultBroadcast(uint64_t seed = 42,
                                                 double noise_sigma = 4.0) {
  media::TennisSynthConfig config;
  config.width = 160;
  config.height = 120;
  config.num_points = 5;
  config.min_court_frames = 100;
  config.max_court_frames = 160;
  config.min_cutaway_frames = 16;
  config.max_cutaway_frames = 32;
  config.noise_sigma = noise_sigma;
  config.net_approach_prob = 1.0;
  config.seed = seed;
  return config;
}

inline void PrintHeader(const char* experiment, const char* title) {
  std::printf("\n==== %s: %s ====\n", experiment, title);
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------\n");
}

}  // namespace cobra::bench
