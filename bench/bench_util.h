#pragma once

/// \file bench_util.h
/// Shared helpers for the experiment harness (one binary per experiment,
/// see DESIGN.md §4). Each binary prints its paper-style table(s) first and
/// then runs its google-benchmark timings.

#include <chrono>
#include <cstdio>
#include <string>

#include "media/tennis_synthesizer.h"

namespace cobra::bench {

/// Machine-readable result line, one JSON object per line so a harness can
/// grep/parse them out of the human-readable tables:
///   {"bench": "e2_shot_boundary", "metric": "cached_ms", "value": 123.4}
inline void PrintJsonMetric(const char* bench, const char* metric,
                            double value) {
  std::printf("{\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g}\n",
              bench, metric, value);
}

/// Wall-clock timer for the paper-style experiment sections (the
/// google-benchmark parts keep their own timing).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Millis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The default broadcast for detector experiments: ~1.3k frames, 5 points.
inline media::TennisSynthConfig DefaultBroadcast(uint64_t seed = 42,
                                                 double noise_sigma = 4.0) {
  media::TennisSynthConfig config;
  config.width = 160;
  config.height = 120;
  config.num_points = 5;
  config.min_court_frames = 100;
  config.max_court_frames = 160;
  config.min_cutaway_frames = 16;
  config.max_cutaway_frames = 32;
  config.noise_sigma = noise_sigma;
  config.net_approach_prob = 1.0;
  config.seed = seed;
  return config;
}

inline void PrintHeader(const char* experiment, const char* title) {
  std::printf("\n==== %s: %s ====\n", experiment, title);
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------\n");
}

}  // namespace cobra::bench
