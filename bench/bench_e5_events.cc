/// \file bench_e5_events.cc
/// E5 — event detection (paper §3 + companion paper [2]): precision and
/// recall of net_play / baseline_play / serve / rally, comparing the
/// rule-based (white-box) event grammar against the stochastic HMM
/// recognizer. The HMM is trained on broadcasts disjoint from the
/// evaluation set. A trajectory-jitter sweep probes the robustness claim of
/// ref [2] (the stochastic recognizer degrades more gracefully).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "core/tennis_fde.h"
#include "detectors/event_rules.h"
#include "detectors/hmm_events.h"
#include "media/tennis_synthesizer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace cobra;  // NOLINT

struct EvalData {
  media::Broadcast broadcast;
  std::vector<core::TennisVideoIndexer::TrackedShot> tracked;
};

EvalData Prepare(uint64_t seed) {
  EvalData data{media::TennisBroadcastSynthesizer(bench::DefaultBroadcast(seed))
                    .Synthesize()
                    .TakeValue(),
                {}};
  auto indexer = core::TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*data.broadcast.video, 1, "e5").TakeValue();
  (void)desc;
  data.tracked = indexer->tracked_shots();
  return data;
}

/// Adds Gaussian jitter to track centers (simulates noisier segmentation).
void JitterTracks(std::vector<core::TennisVideoIndexer::TrackedShot>* shots,
                  double sigma, Rng* rng) {
  for (auto& ts : *shots) {
    for (auto& track : ts.tracking.tracks) {
      for (auto& point : track.points) {
        point.center.x += rng->NextGaussian() * sigma;
        point.center.y += rng->NextGaussian() * sigma;
      }
    }
    // Rebuild trajectories from the jittered tracks.
    ts.trajectories.clear();
    for (const auto& track : ts.tracking.tracks) {
      ts.trajectories.push_back(
          core::BuildTrajectory(track, ts.tracking.court, ts.shot).TakeValue());
    }
  }
}

std::vector<detectors::NamedInterval> TruthEvents(
    const media::GroundTruth& truth) {
  std::vector<detectors::NamedInterval> out;
  for (const auto& e : truth.events) out.push_back({e.name, e.player_id, e.range});
  return out;
}

/// Merges per-player serve detections within one shot into a single
/// court-level serve (the indexer does the same: a serve is both players
/// holding still).
void MergeServes(std::vector<detectors::NamedInterval>* per_player,
                 std::vector<detectors::NamedInterval>* out) {
  FrameInterval merged;
  bool first = true;
  for (auto& e : *per_player) {
    if (e.name != media::kEventServe) {
      out->push_back(std::move(e));
      continue;
    }
    merged = first ? e.range : merged.Intersect(e.range);
    first = false;
  }
  if (!first && !merged.Empty()) {
    out->push_back({media::kEventServe, -1, merged});
  }
}

/// Runs the event grammar rules over tracked shots.
std::vector<detectors::NamedInterval> RuleEvents(
    const std::vector<core::TennisVideoIndexer::TrackedShot>& shots) {
  auto grammar = core::EventGrammar::Parse(core::TennisEventRulesText()).TakeValue();
  std::vector<detectors::NamedInterval> out;
  for (const auto& ts : shots) {
    std::vector<detectors::NamedInterval> shot_events;
    for (size_t i = 0; i < ts.trajectories.size(); ++i) {
      auto events =
          grammar.Infer(ts.trajectories[i], ts.tracking.tracks[i].player_id)
              .TakeValue();
      for (const auto& a : events) {
        shot_events.push_back({a.symbol, static_cast<int>(a.IntOr("player", -1)),
                               a.range});
      }
    }
    MergeServes(&shot_events, &out);
  }
  return out;
}

/// Trains the HMM on disjoint seeds, runs it over tracked shots.
std::vector<detectors::NamedInterval> HmmEvents(
    const std::vector<core::TennisVideoIndexer::TrackedShot>& shots) {
  static const detectors::HmmEventRecognizer* recognizer = [] {
    auto* rec = new detectors::HmmEventRecognizer();
    std::vector<std::vector<int>> states, symbols;
    for (uint64_t seed : {900, 901, 902, 903}) {
      EvalData train = Prepare(seed);
      for (const auto& ts : train.tracked) {
        for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
          states.push_back(detectors::BuildTruthStateSequence(
              train.broadcast.truth, ts.tracking.tracks[i].player_id, ts.shot));
          symbols.push_back(detectors::EncodeTrackSymbols(
              ts.tracking.tracks[i], ts.tracking.court, ts.shot));
        }
      }
    }
    auto status = rec->Train(states, symbols);
    if (!status.ok()) std::printf("HMM training failed: %s\n", status.ToString().c_str());
    return rec;
  }();

  std::vector<detectors::NamedInterval> out;
  for (const auto& ts : shots) {
    std::vector<detectors::NamedInterval> shot_events;
    for (const auto& track : ts.tracking.tracks) {
      auto events = recognizer->Recognize(track, ts.tracking.court, ts.shot);
      if (!events.ok()) continue;
      for (const auto& e : *events) {
        shot_events.push_back({e.name, e.player_id, e.range});
      }
    }
    MergeServes(&shot_events, &out);
  }
  return out;
}

void PrintPerEvent(const char* method,
                   const std::vector<detectors::NamedInterval>& truth,
                   const std::vector<detectors::NamedInterval>& detected) {
  for (const char* name :
       {media::kEventServe, media::kEventNetPlay, media::kEventBaselinePlay}) {
    std::vector<detectors::NamedInterval> t, d;
    for (const auto& e : truth) {
      if (e.name == name) t.push_back(e);
    }
    for (const auto& e : detected) {
      if (e.name == name) d.push_back(e);
    }
    PrecisionRecall pr = detectors::MatchEvents(t, d, 0.3);
    std::printf("%-8s %-14s %8.3f %8.3f %8.3f %6zu %6zu\n", method, name,
                pr.Precision(), pr.Recall(), pr.F1(), t.size(), d.size());
  }
}

void RunComparison() {
  bench::PrintHeader("E5", "event detection: rules (white-box) vs HMM");
  std::printf("%-8s %-14s %8s %8s %8s %6s %6s\n", "method", "event", "P", "R",
              "F1", "truth", "det");
  std::vector<detectors::NamedInterval> truth_all, rules_all, hmm_all;
  for (uint64_t seed : {42, 43, 44}) {
    EvalData data = Prepare(seed);
    auto truth = TruthEvents(data.broadcast.truth);
    auto rules = RuleEvents(data.tracked);
    auto hmm = HmmEvents(data.tracked);
    truth_all.insert(truth_all.end(), truth.begin(), truth.end());
    rules_all.insert(rules_all.end(), rules.begin(), rules.end());
    hmm_all.insert(hmm_all.end(), hmm.begin(), hmm.end());
  }
  PrintPerEvent("rules", truth_all, rules_all);
  PrintPerEvent("hmm", truth_all, hmm_all);

  std::printf("\nrobustness to trajectory jitter (net_play F1):\n");
  std::printf("%-12s %10s %10s\n", "jitter_px", "rules", "hmm");
  for (double sigma : {0.0, 1.0, 2.0, 4.0, 6.0}) {
    double f1_rules = 0.0, f1_hmm = 0.0;
    int n = 0;
    for (uint64_t seed : {42, 43}) {
      EvalData data = Prepare(seed);
      Rng rng(seed * 31 + static_cast<uint64_t>(sigma * 10));
      JitterTracks(&data.tracked, sigma, &rng);
      auto truth = TruthEvents(data.broadcast.truth);
      std::vector<detectors::NamedInterval> truth_net;
      for (const auto& e : truth) {
        if (e.name == media::kEventNetPlay) truth_net.push_back(e);
      }
      auto filter_net = [](const std::vector<detectors::NamedInterval>& all) {
        std::vector<detectors::NamedInterval> out;
        for (const auto& e : all) {
          if (e.name == media::kEventNetPlay) out.push_back(e);
        }
        return out;
      };
      f1_rules += detectors::MatchEvents(truth_net, filter_net(RuleEvents(data.tracked)), 0.3).F1();
      f1_hmm += detectors::MatchEvents(truth_net, filter_net(HmmEvents(data.tracked)), 0.3).F1();
      ++n;
    }
    std::printf("%-12.1f %10.3f %10.3f\n", sigma, f1_rules / n, f1_hmm / n);
  }
  bench::PrintRule();
}

void BM_RuleInference(benchmark::State& state) {
  EvalData data = Prepare(42);
  auto grammar = core::EventGrammar::Parse(core::TennisEventRulesText()).TakeValue();
  for (auto _ : state) {
    for (const auto& ts : data.tracked) {
      for (size_t i = 0; i < ts.trajectories.size(); ++i) {
        auto events =
            grammar.Infer(ts.trajectories[i], ts.tracking.tracks[i].player_id);
        benchmark::DoNotOptimize(events);
      }
    }
  }
}
BENCHMARK(BM_RuleInference)->Unit(benchmark::kMicrosecond);

void BM_HmmViterbiDecode(benchmark::State& state) {
  EvalData data = Prepare(42);
  detectors::HmmEventRecognizer recognizer;
  std::vector<std::vector<int>> states, symbols;
  for (const auto& ts : data.tracked) {
    for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
      states.push_back(detectors::BuildTruthStateSequence(
          data.broadcast.truth, ts.tracking.tracks[i].player_id, ts.shot));
      symbols.push_back(detectors::EncodeTrackSymbols(
          ts.tracking.tracks[i], ts.tracking.court, ts.shot));
    }
  }
  if (!recognizer.Train(states, symbols).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  for (auto _ : state) {
    for (const auto& ts : data.tracked) {
      for (const auto& track : ts.tracking.tracks) {
        auto decoded = recognizer.DecodeStates(track, ts.tracking.court, ts.shot);
        benchmark::DoNotOptimize(decoded);
      }
    }
  }
}
BENCHMARK(BM_HmmViterbiDecode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  RunComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
