/// \file audio_indexing.cpp
/// Indexing the site's audio fragments: synthesize an interview recording
/// (speech with pauses, applause at the end), segment it, and print the
/// detected timeline next to the truth.
///
///   ./build/examples/audio_indexing

#include <cstdio>

#include "audio/features.h"
#include "audio/synthesizer.h"

using namespace cobra;  // NOLINT

int main() {
  audio::AudioSynthConfig config;
  config.seed = 2002;
  audio::AudioSynthesizer synth(config);
  auto interview = synth.Interview(15.0, /*applause_tail=*/true);
  const double sr = interview.signal.sample_rate();
  std::printf("interview recording: %.1f s at %d Hz, %zu true segments\n\n",
              interview.signal.DurationSeconds(),
              interview.signal.sample_rate(), interview.segments.size());

  std::printf("truth timeline:\n");
  for (const auto& segment : interview.segments) {
    std::printf("  %6.2fs - %6.2fs  %s\n", segment.range.begin / sr,
                segment.range.end / sr, segment.label.c_str());
  }

  audio::AudioAnalyzer analyzer;
  auto segments = analyzer.Segment(interview.signal);
  if (!segments.ok()) {
    std::fprintf(stderr, "%s\n", segments.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndetected timeline:\n");
  for (const auto& segment : *segments) {
    std::printf("  %6.2fs - %6.2fs  %s\n", segment.range.begin / sr,
                segment.range.end / sr, segment.label.c_str());
  }

  for (const char* label : {audio::kClassSpeech, audio::kClassSilence,
                            audio::kClassApplause, audio::kClassMusic}) {
    double fraction =
        audio::LabeledFraction(*segments, label,
                               interview.signal.num_samples())
            .TakeValue();
    std::printf("%-10s %5.1f%%\n", label, 100.0 * fraction);
  }
  return 0;
}
