/// \file library_search.cpp
/// The full demo: generate an Australian Open-style tournament webspace,
/// index the interviews and the match videos, and answer combined queries —
/// including the paper's motivating one — typed in the query language.
///
///   ./build/examples/library_search
///
/// With COBRA_SEGMENT_DIR set, the library persists through the durable
/// segment store: the first run ingests and flushes segments, later runs
/// restore from the memory mapping (O(1) cold start) and skip ingest.
///
///   COBRA_SEGMENT_DIR=/tmp/cobra_lib ./build/examples/library_search

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/tennis_fde.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/ingest/ingest.h"
#include "engine/query_language.h"
#include "media/tennis_synthesizer.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

using namespace cobra;  // NOLINT

int main() {
  // --- 1. the web site (concept layer) ---
  webspace::SiteConfig site_config;
  site_config.num_players = 16;
  site_config.num_past_years = 4;
  site_config.videos_per_year = 1;
  site_config.seed = 2002;
  site_config.ensure_answer = true;
  auto site = webspace::SiteSynthesizer::Generate(site_config).TakeValue();
  std::printf("site: %zu players, %zu tournaments, %zu interviews, %zu videos\n",
              site.player_oids.size(), site.tournament_oids.size(),
              site.interview_oids.size(), site.video_oids.size());

  auto interview_texts = site.interview_texts;
  auto video_seeds = site.video_seeds;

  core::TennisIndexerConfig indexer_config;
  if (const char* dir = std::getenv("COBRA_SEGMENT_DIR")) {
    indexer_config.segment_dir = dir;
  }

  std::unique_ptr<engine::DigitalLibrary> memory_library;
  std::unique_ptr<engine::DurableLibrary> durable;
  bool restored = false;
  if (!indexer_config.segment_dir.empty()) {
    auto reopened = engine::DurableLibrary::Open(indexer_config.segment_dir);
    if (reopened.ok()) {
      durable = reopened.TakeValue();
      restored = true;
      std::printf("restored library from %zu segment(s) in %s\n",
                  durable->num_segments(), indexer_config.segment_dir.c_str());
    } else {
      durable = engine::DurableLibrary::Create(indexer_config.segment_dir,
                                               std::move(site.store))
                    .TakeValue();
      std::printf("created durable library in %s\n",
                  indexer_config.segment_dir.c_str());
    }
  } else {
    memory_library =
        engine::DigitalLibrary::Create(std::move(site.store)).TakeValue();
  }
  const engine::DigitalLibrary& library =
      durable ? durable->library() : *memory_library;

  if (!restored) {
  // --- 2 & 3. pipelined corpus ingest (engine/ingest): interviews, then
  // the match videos analyzed through the tennis FDE on a worker pool,
  // committed in submission order — bit-identical to the serial loop.
  util::ThreadPool ingest_pool(util::ThreadPool::DefaultThreads());
  std::unique_ptr<engine::ingest::IngestSink> sink;
  if (durable) {
    sink = std::make_unique<engine::ingest::DurableLibrarySink>(durable.get());
  } else {
    sink = std::make_unique<engine::ingest::LibrarySink>(memory_library.get());
  }
  engine::ingest::CorpusIngestPipeline::Options pipeline_options;
  pipeline_options.pool = &ingest_pool;
  engine::ingest::CorpusIngestPipeline pipeline(sink.get(), pipeline_options);

  auto fail = [](const Status& status) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  };
  for (const auto& [oid, text] : interview_texts) {
    if (auto status = pipeline.SubmitInterview(oid, text); !status.ok()) {
      return fail(status);
    }
  }
  if (auto status = pipeline.SubmitFinalizeText(); !status.ok()) {
    return fail(status);
  }
  std::printf("indexed %zu interviews\n", interview_texts.size());

  for (const auto& [video_oid, seed] : video_seeds) {
    const int64_t oid = video_oid;
    const uint64_t video_seed = seed;
    auto status = pipeline.SubmitVideo(
        [oid, video_seed, indexer_config]()
            -> Result<engine::ingest::IngestDelta> {
          media::TennisSynthConfig config;
          config.width = 128;
          config.height = 96;
          config.num_points = 2;
          config.min_court_frames = 100;
          config.max_court_frames = 130;
          config.min_cutaway_frames = 12;
          config.max_cutaway_frames = 18;
          config.net_approach_prob = 1.0;
          config.seed = video_seed;
          COBRA_ASSIGN_OR_RETURN(
              media::Broadcast broadcast,
              media::TennisBroadcastSynthesizer(config).Synthesize());
          COBRA_ASSIGN_OR_RETURN(
              std::unique_ptr<core::TennisVideoIndexer> indexer,
              core::TennisVideoIndexer::Create(indexer_config));
          COBRA_ASSIGN_OR_RETURN(
              core::VideoDescription desc,
              indexer->Index(*broadcast.video, oid, "match video"));
          return engine::ingest::IngestDelta::Video(std::move(desc), {});
        });
    if (!status.ok()) return fail(status);
  }
  if (auto status = pipeline.Finish(); !status.ok()) return fail(status);
  std::printf("indexed %zu match videos through the FDE\n", video_seeds.size());
  if (durable) {
    if (auto status = durable->Flush(); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("flushed durable library (%zu segments)\n",
                durable->num_segments());
  }
  std::printf("\n");
  }  // !restored

  // --- 4. queries ---
  const char* queries[] = {
      // The paper's §2 motivating query.
      "player.hand = left AND player.gender = female AND won = any AND "
      "event = net_play",
      // Concept-only.
      "player.ranking <= 3",
      // Concept + text.
      "won = any AND text ~ \"champion title\"",
      // Content-only across champions.
      "won = any AND event = serve",
  };
  for (const char* input : queries) {
    std::printf("query> %s\n", input);
    auto query = engine::ParseQuery(input);
    if (!query.ok()) {
      std::printf("  parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto hits = library.Search(*query);
    if (!hits.ok()) {
      std::printf("  error: %s\n", hits.status().ToString().c_str());
      continue;
    }
    if (hits->empty()) std::printf("  (no results)\n");
    for (const auto& hit : *hits) {
      if (hit.video_oid >= 0) {
        std::printf("  %-24s video %lld scene %s\n", hit.player_name.c_str(),
                    static_cast<long long>(hit.video_oid),
                    hit.range.ToString().c_str());
      } else {
        std::printf("  %-24s (text score %.3f)\n", hit.player_name.c_str(),
                    hit.text_score);
      }
    }
    std::printf("\n");
  }

  // --- 5. the keyword-search contrast (paper §2) ---
  std::printf("keyword baseline for 'left female champion':\n");
  auto keyword = library.SearchKeywordOnly("left female champion", 5).TakeValue();
  for (const auto& hit : keyword) {
    std::printf("  %-24s score %.3f\n", hit.player_name.c_str(), hit.text_score);
  }
  std::printf(
      "(keyword hits include non-champions whose interviews merely mention "
      "the words — the hidden-semantics problem the webspace method solves)\n");
  return 0;
}
