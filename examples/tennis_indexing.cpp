/// \file tennis_indexing.cpp
/// The detector pipeline, stage by stage (paper §3): shot boundary
/// detection -> shot classification -> court model estimation -> player
/// tracking -> event rules. Dumps a few frames as PPM images so the
/// synthetic footage can be inspected visually.
///
///   ./build/examples/tennis_indexing [output_dir]

#include <cstdio>
#include <string>

#include "detectors/court_model.h"
#include "detectors/event_rules.h"
#include "detectors/player_tracker.h"
#include "detectors/shot_boundary.h"
#include "detectors/shot_classifier.h"
#include "media/ppm.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"

using namespace cobra;  // NOLINT

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  media::TennisSynthConfig config;
  config.num_points = 4;
  config.seed = 7;
  config.net_approach_prob = 1.0;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  std::printf("broadcast: %lld frames, %zu true shots\n",
              static_cast<long long>(broadcast.video->num_frames()),
              broadcast.truth.shots.size());

  // --- stage 1: shot boundaries from histogram differences ---
  detectors::ShotBoundaryDetector boundary_detector;
  auto boundaries = boundary_detector.Detect(*broadcast.video).TakeValue();
  PrecisionRecall boundary_quality = MatchWithTolerance(
      broadcast.truth.CutPositions(), boundaries.boundaries, 2);
  std::printf("\n[segment] %zu cuts detected, %s\n",
              boundaries.boundaries.size(),
              boundary_quality.ToString().c_str());

  // --- stage 2: shot classification ---
  detectors::ShotClassifier classifier;
  auto shots = boundaries.ToShots(broadcast.video->num_frames());
  auto classified = classifier.ClassifyAll(*broadcast.video, shots).TakeValue();
  int counts[4] = {0, 0, 0, 0};
  for (const auto& shot : classified) {
    counts[static_cast<int>(shot.category)]++;
  }
  std::printf("[classify] tennis=%d close-up=%d audience=%d other=%d\n",
              counts[0], counts[1], counts[2], counts[3]);

  // Dump one exemplar frame per category.
  for (const auto& shot : classified) {
    std::string name = out_dir + "/cobra_shot_" +
                       media::ShotCategoryToString(shot.category) + ".ppm";
    media::Frame frame =
        broadcast.video
            ->GetFrame(shot.range.begin + shot.range.Length() / 2)
            .TakeValue();
    (void)media::WritePpm(frame, name);
  }
  std::printf("[classify] exemplar frames written to %s/cobra_shot_*.ppm\n",
              out_dir.c_str());

  // --- stage 3+4: court model, tracking, events per tennis shot ---
  detectors::PlayerTracker tracker;
  detectors::EventRuleEngine rules;
  for (const auto& shot : classified) {
    if (shot.category != media::ShotCategory::kTennis) continue;
    auto tracking = tracker.Track(*broadcast.video, shot.range);
    if (!tracking.ok()) {
      std::printf("[track] shot %s: %s\n", shot.range.ToString().c_str(),
                  tracking.status().ToString().c_str());
      continue;
    }
    std::printf("\n[track] shot %s court=%s net_y=%d\n",
                shot.range.ToString().c_str(),
                tracking->court.court_bbox.ToString().c_str(),
                tracking->court.net_y);
    for (const auto& track : tracking->tracks) {
      std::printf("        player %d: %zu points, %.0f%% observed\n",
                  track.player_id, track.points.size(),
                  100.0 * track.ObservedFraction());
    }
    for (const auto& event : rules.Detect(*tracking, shot.range)) {
      std::printf("[event] %-14s player %d  %s\n", event.name.c_str(),
                  event.player_id, event.range.ToString().c_str());
    }
  }
  return 0;
}
