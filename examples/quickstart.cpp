/// \file quickstart.cpp
/// COBRA in ~60 lines: synthesize a tennis broadcast, index it through the
/// tennis Feature Detector Engine, and look at the four COBRA layers.
///
///   ./build/examples/quickstart

#include <cstdio>

#include "core/tennis_fde.h"
#include "media/tennis_synthesizer.h"

using namespace cobra;  // NOLINT — examples favor brevity

int main() {
  // 1. A video. In the original demo this is Australian Open footage; here
  //    the synthesizer renders an equivalent broadcast with ground truth.
  media::TennisSynthConfig config;
  config.num_points = 3;         // three points (court shots) + cutaways
  config.seed = 2002;
  config.net_approach_prob = 1.0;
  auto broadcast = media::TennisBroadcastSynthesizer(config).Synthesize();
  if (!broadcast.ok()) {
    std::fprintf(stderr, "synthesis failed: %s\n",
                 broadcast.status().ToString().c_str());
    return 1;
  }
  std::printf("broadcast: %lld frames at %.0f fps (%d shots)\n",
              static_cast<long long>(broadcast->video->num_frames()),
              broadcast->video->fps(),
              static_cast<int>(broadcast->truth.shots.size()));

  // 2. The tennis FDE (paper Figure 1): shot segmentation, classification,
  //    player tracking, feature extraction, event inference.
  auto indexer = core::TennisVideoIndexer::Create();
  if (!indexer.ok()) {
    std::fprintf(stderr, "%s\n", indexer.status().ToString().c_str());
    return 1;
  }
  auto description = (*indexer)->Index(*broadcast->video, /*video_id=*/1,
                                       "quickstart broadcast");
  if (!description.ok()) {
    std::fprintf(stderr, "indexing failed: %s\n",
                 description.status().ToString().c_str());
    return 1;
  }

  // 3. The four COBRA layers.
  std::printf("\nCOBRA layers of '%s':\n", description->title().c_str());
  for (auto layer : {core::CobraLayer::kRawData, core::CobraLayer::kFeature,
                     core::CobraLayer::kObject, core::CobraLayer::kEvent}) {
    std::printf("  %-8s  %zu entities\n", core::CobraLayerToString(layer),
                description->Layer(layer).size());
  }

  // 4. Content-based access: every net-play scene, with timestamps.
  std::printf("\nnet-play scenes:\n");
  for (const auto& event :
       description->Named(core::CobraLayer::kEvent, "net_play")) {
    std::printf("  player %lld, frames %s (%.1fs - %.1fs)\n",
                static_cast<long long>(event.IntOr("player", -1)),
                event.range.ToString().c_str(),
                description->FrameToSeconds(event.range.begin),
                description->FrameToSeconds(event.range.end));
  }
  return 0;
}
