/// \file event_grammar_lab.cpp
/// COBRA's flexibility claim, live: retarget the event layer at run time —
/// first with a custom white-box event grammar (a "midcourt duel" rule that
/// does not exist in the default rules), then by switching the FDE to the
/// stochastic HMM recognizer and re-indexing incrementally (only the dirty
/// part of the dependency graph re-runs).
///
///   ./build/examples/event_grammar_lab

#include <cstdio>

#include "core/tennis_fde.h"
#include "detectors/hmm_events.h"
#include "media/tennis_synthesizer.h"

using namespace cobra;  // NOLINT

int main() {
  media::TennisSynthConfig config;
  config.num_points = 3;
  config.seed = 99;
  config.net_approach_prob = 1.0;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();

  // --- custom event grammar: add a rule the default set lacks ---
  core::TennisIndexerConfig indexer_config;
  indexer_config.event_rules =
      "event serve          : speed < 1.6 for 5 at_start ;\n"
      "event net_play       : net_distance < 0.17 for 8 ;\n"
      "event baseline_play  : net_distance > 0.30 for 25 ;\n";
  auto indexer = core::TennisVideoIndexer::Create(indexer_config).TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "lab").TakeValue();

  std::printf("white-box event grammar:\n%s\n", core::TennisEventRulesText());
  std::printf("events inferred by the rules:\n");
  for (const auto& event : desc.Layer(core::CobraLayer::kEvent)) {
    std::printf("  %-14s player %lld  %s\n", event.symbol.c_str(),
                static_cast<long long>(event.IntOr("player", -1)),
                event.range.ToString().c_str());
  }

  // --- standalone grammar evaluation over one trajectory ---
  const auto& tracked = indexer->tracked_shots();
  if (!tracked.empty() && !tracked.front().trajectories.empty()) {
    auto custom = core::EventGrammar::Parse(
                      "event midcourt : net_distance > 0.17 and "
                      "net_distance < 0.30 for 6 ;")
                      .TakeValue();
    auto midcourt =
        custom.Infer(tracked.front().trajectories.front(), 0).TakeValue();
    std::printf("\ncustom 'midcourt' rule on the first trajectory: %zu hits\n",
                midcourt.size());
    for (const auto& event : midcourt) {
      std::printf("  midcourt %s\n", event.range.ToString().c_str());
    }
  }

  // --- switch the event layer to the stochastic recognizer ---
  std::vector<std::vector<int>> states, symbols;
  for (const auto& ts : indexer->tracked_shots()) {
    for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
      states.push_back(detectors::BuildTruthStateSequence(
          broadcast.truth, ts.tracking.tracks[i].player_id, ts.shot));
      symbols.push_back(detectors::EncodeTrackSymbols(
          ts.tracking.tracks[i], ts.tracking.court, ts.shot));
    }
  }
  detectors::HmmEventRecognizer recognizer;
  if (auto status = recognizer.Train(states, symbols); !status.ok()) {
    std::fprintf(stderr, "HMM training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("\nswitching the FDE to the HMM recognizer (ref [2])...\n");
  (void)indexer->UseHmmRecognizer(std::move(recognizer));
  auto incremental = indexer->fde().RunIncremental(*broadcast.video).TakeValue();
  std::printf("incremental re-index report (segment/tracking cached):\n%s",
              incremental.ToString().c_str());
  std::printf("HMM net_play annotations: %zu\n",
              indexer->fde().AnnotationsOf("net_play").size());
  return 0;
}
