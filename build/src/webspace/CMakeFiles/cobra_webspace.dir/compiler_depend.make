# Empty compiler generated dependencies file for cobra_webspace.
# This may be replaced when dependencies are built.
