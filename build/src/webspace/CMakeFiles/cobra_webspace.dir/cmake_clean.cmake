file(REMOVE_RECURSE
  "CMakeFiles/cobra_webspace.dir/query.cc.o"
  "CMakeFiles/cobra_webspace.dir/query.cc.o.d"
  "CMakeFiles/cobra_webspace.dir/schema.cc.o"
  "CMakeFiles/cobra_webspace.dir/schema.cc.o.d"
  "CMakeFiles/cobra_webspace.dir/site_synthesizer.cc.o"
  "CMakeFiles/cobra_webspace.dir/site_synthesizer.cc.o.d"
  "CMakeFiles/cobra_webspace.dir/store.cc.o"
  "CMakeFiles/cobra_webspace.dir/store.cc.o.d"
  "libcobra_webspace.a"
  "libcobra_webspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_webspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
