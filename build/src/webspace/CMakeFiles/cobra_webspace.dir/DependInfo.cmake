
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webspace/query.cc" "src/webspace/CMakeFiles/cobra_webspace.dir/query.cc.o" "gcc" "src/webspace/CMakeFiles/cobra_webspace.dir/query.cc.o.d"
  "/root/repo/src/webspace/schema.cc" "src/webspace/CMakeFiles/cobra_webspace.dir/schema.cc.o" "gcc" "src/webspace/CMakeFiles/cobra_webspace.dir/schema.cc.o.d"
  "/root/repo/src/webspace/site_synthesizer.cc" "src/webspace/CMakeFiles/cobra_webspace.dir/site_synthesizer.cc.o" "gcc" "src/webspace/CMakeFiles/cobra_webspace.dir/site_synthesizer.cc.o.d"
  "/root/repo/src/webspace/store.cc" "src/webspace/CMakeFiles/cobra_webspace.dir/store.cc.o" "gcc" "src/webspace/CMakeFiles/cobra_webspace.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/cobra_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cobra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
