file(REMOVE_RECURSE
  "libcobra_webspace.a"
)
