# Empty dependencies file for cobra_util.
# This may be replaced when dependencies are built.
