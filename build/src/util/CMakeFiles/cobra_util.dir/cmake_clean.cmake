file(REMOVE_RECURSE
  "CMakeFiles/cobra_util.dir/geometry.cc.o"
  "CMakeFiles/cobra_util.dir/geometry.cc.o.d"
  "CMakeFiles/cobra_util.dir/logging.cc.o"
  "CMakeFiles/cobra_util.dir/logging.cc.o.d"
  "CMakeFiles/cobra_util.dir/rng.cc.o"
  "CMakeFiles/cobra_util.dir/rng.cc.o.d"
  "CMakeFiles/cobra_util.dir/stats.cc.o"
  "CMakeFiles/cobra_util.dir/stats.cc.o.d"
  "CMakeFiles/cobra_util.dir/status.cc.o"
  "CMakeFiles/cobra_util.dir/status.cc.o.d"
  "CMakeFiles/cobra_util.dir/strings.cc.o"
  "CMakeFiles/cobra_util.dir/strings.cc.o.d"
  "libcobra_util.a"
  "libcobra_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
