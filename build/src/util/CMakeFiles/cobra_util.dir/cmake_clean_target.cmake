file(REMOVE_RECURSE
  "libcobra_util.a"
)
