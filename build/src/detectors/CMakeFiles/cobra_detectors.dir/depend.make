# Empty dependencies file for cobra_detectors.
# This may be replaced when dependencies are built.
