
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/compressed_shot_boundary.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/compressed_shot_boundary.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/compressed_shot_boundary.cc.o.d"
  "/root/repo/src/detectors/court_model.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/court_model.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/court_model.cc.o.d"
  "/root/repo/src/detectors/event_rules.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/event_rules.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/event_rules.cc.o.d"
  "/root/repo/src/detectors/hmm.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/hmm.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/hmm.cc.o.d"
  "/root/repo/src/detectors/hmm_events.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/hmm_events.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/hmm_events.cc.o.d"
  "/root/repo/src/detectors/player_tracker.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/player_tracker.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/player_tracker.cc.o.d"
  "/root/repo/src/detectors/shot_boundary.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/shot_boundary.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/shot_boundary.cc.o.d"
  "/root/repo/src/detectors/shot_classifier.cc" "src/detectors/CMakeFiles/cobra_detectors.dir/shot_classifier.cc.o" "gcc" "src/detectors/CMakeFiles/cobra_detectors.dir/shot_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vision/CMakeFiles/cobra_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cobra_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
