file(REMOVE_RECURSE
  "libcobra_detectors.a"
)
