file(REMOVE_RECURSE
  "CMakeFiles/cobra_detectors.dir/compressed_shot_boundary.cc.o"
  "CMakeFiles/cobra_detectors.dir/compressed_shot_boundary.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/court_model.cc.o"
  "CMakeFiles/cobra_detectors.dir/court_model.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/event_rules.cc.o"
  "CMakeFiles/cobra_detectors.dir/event_rules.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/hmm.cc.o"
  "CMakeFiles/cobra_detectors.dir/hmm.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/hmm_events.cc.o"
  "CMakeFiles/cobra_detectors.dir/hmm_events.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/player_tracker.cc.o"
  "CMakeFiles/cobra_detectors.dir/player_tracker.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/shot_boundary.cc.o"
  "CMakeFiles/cobra_detectors.dir/shot_boundary.cc.o.d"
  "CMakeFiles/cobra_detectors.dir/shot_classifier.cc.o"
  "CMakeFiles/cobra_detectors.dir/shot_classifier.cc.o.d"
  "libcobra_detectors.a"
  "libcobra_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
