file(REMOVE_RECURSE
  "CMakeFiles/cobra_vision.dir/color_model.cc.o"
  "CMakeFiles/cobra_vision.dir/color_model.cc.o.d"
  "CMakeFiles/cobra_vision.dir/gray_stats.cc.o"
  "CMakeFiles/cobra_vision.dir/gray_stats.cc.o.d"
  "CMakeFiles/cobra_vision.dir/histogram.cc.o"
  "CMakeFiles/cobra_vision.dir/histogram.cc.o.d"
  "CMakeFiles/cobra_vision.dir/mask.cc.o"
  "CMakeFiles/cobra_vision.dir/mask.cc.o.d"
  "CMakeFiles/cobra_vision.dir/moments.cc.o"
  "CMakeFiles/cobra_vision.dir/moments.cc.o.d"
  "libcobra_vision.a"
  "libcobra_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
