# Empty compiler generated dependencies file for cobra_vision.
# This may be replaced when dependencies are built.
