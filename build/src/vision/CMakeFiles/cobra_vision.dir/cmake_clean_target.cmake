file(REMOVE_RECURSE
  "libcobra_vision.a"
)
