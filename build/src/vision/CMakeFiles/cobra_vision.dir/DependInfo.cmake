
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/color_model.cc" "src/vision/CMakeFiles/cobra_vision.dir/color_model.cc.o" "gcc" "src/vision/CMakeFiles/cobra_vision.dir/color_model.cc.o.d"
  "/root/repo/src/vision/gray_stats.cc" "src/vision/CMakeFiles/cobra_vision.dir/gray_stats.cc.o" "gcc" "src/vision/CMakeFiles/cobra_vision.dir/gray_stats.cc.o.d"
  "/root/repo/src/vision/histogram.cc" "src/vision/CMakeFiles/cobra_vision.dir/histogram.cc.o" "gcc" "src/vision/CMakeFiles/cobra_vision.dir/histogram.cc.o.d"
  "/root/repo/src/vision/mask.cc" "src/vision/CMakeFiles/cobra_vision.dir/mask.cc.o" "gcc" "src/vision/CMakeFiles/cobra_vision.dir/mask.cc.o.d"
  "/root/repo/src/vision/moments.cc" "src/vision/CMakeFiles/cobra_vision.dir/moments.cc.o" "gcc" "src/vision/CMakeFiles/cobra_vision.dir/moments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/cobra_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
