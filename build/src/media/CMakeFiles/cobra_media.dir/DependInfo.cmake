
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/block_codec.cc" "src/media/CMakeFiles/cobra_media.dir/block_codec.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/block_codec.cc.o.d"
  "/root/repo/src/media/color.cc" "src/media/CMakeFiles/cobra_media.dir/color.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/color.cc.o.d"
  "/root/repo/src/media/dct.cc" "src/media/CMakeFiles/cobra_media.dir/dct.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/dct.cc.o.d"
  "/root/repo/src/media/frame.cc" "src/media/CMakeFiles/cobra_media.dir/frame.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/frame.cc.o.d"
  "/root/repo/src/media/ppm.cc" "src/media/CMakeFiles/cobra_media.dir/ppm.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/ppm.cc.o.d"
  "/root/repo/src/media/tennis_synthesizer.cc" "src/media/CMakeFiles/cobra_media.dir/tennis_synthesizer.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/tennis_synthesizer.cc.o.d"
  "/root/repo/src/media/video.cc" "src/media/CMakeFiles/cobra_media.dir/video.cc.o" "gcc" "src/media/CMakeFiles/cobra_media.dir/video.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
