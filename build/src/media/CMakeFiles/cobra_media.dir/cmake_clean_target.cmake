file(REMOVE_RECURSE
  "libcobra_media.a"
)
