# Empty compiler generated dependencies file for cobra_media.
# This may be replaced when dependencies are built.
