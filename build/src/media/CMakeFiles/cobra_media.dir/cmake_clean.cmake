file(REMOVE_RECURSE
  "CMakeFiles/cobra_media.dir/block_codec.cc.o"
  "CMakeFiles/cobra_media.dir/block_codec.cc.o.d"
  "CMakeFiles/cobra_media.dir/color.cc.o"
  "CMakeFiles/cobra_media.dir/color.cc.o.d"
  "CMakeFiles/cobra_media.dir/dct.cc.o"
  "CMakeFiles/cobra_media.dir/dct.cc.o.d"
  "CMakeFiles/cobra_media.dir/frame.cc.o"
  "CMakeFiles/cobra_media.dir/frame.cc.o.d"
  "CMakeFiles/cobra_media.dir/ppm.cc.o"
  "CMakeFiles/cobra_media.dir/ppm.cc.o.d"
  "CMakeFiles/cobra_media.dir/tennis_synthesizer.cc.o"
  "CMakeFiles/cobra_media.dir/tennis_synthesizer.cc.o.d"
  "CMakeFiles/cobra_media.dir/video.cc.o"
  "CMakeFiles/cobra_media.dir/video.cc.o.d"
  "libcobra_media.a"
  "libcobra_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
