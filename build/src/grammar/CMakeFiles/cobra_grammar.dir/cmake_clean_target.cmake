file(REMOVE_RECURSE
  "libcobra_grammar.a"
)
