file(REMOVE_RECURSE
  "CMakeFiles/cobra_grammar.dir/annotation.cc.o"
  "CMakeFiles/cobra_grammar.dir/annotation.cc.o.d"
  "CMakeFiles/cobra_grammar.dir/fde.cc.o"
  "CMakeFiles/cobra_grammar.dir/fde.cc.o.d"
  "CMakeFiles/cobra_grammar.dir/feature_grammar.cc.o"
  "CMakeFiles/cobra_grammar.dir/feature_grammar.cc.o.d"
  "libcobra_grammar.a"
  "libcobra_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
