
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammar/annotation.cc" "src/grammar/CMakeFiles/cobra_grammar.dir/annotation.cc.o" "gcc" "src/grammar/CMakeFiles/cobra_grammar.dir/annotation.cc.o.d"
  "/root/repo/src/grammar/fde.cc" "src/grammar/CMakeFiles/cobra_grammar.dir/fde.cc.o" "gcc" "src/grammar/CMakeFiles/cobra_grammar.dir/fde.cc.o.d"
  "/root/repo/src/grammar/feature_grammar.cc" "src/grammar/CMakeFiles/cobra_grammar.dir/feature_grammar.cc.o" "gcc" "src/grammar/CMakeFiles/cobra_grammar.dir/feature_grammar.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/cobra_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
