# Empty compiler generated dependencies file for cobra_grammar.
# This may be replaced when dependencies are built.
