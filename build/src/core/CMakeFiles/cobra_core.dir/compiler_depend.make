# Empty compiler generated dependencies file for cobra_core.
# This may be replaced when dependencies are built.
