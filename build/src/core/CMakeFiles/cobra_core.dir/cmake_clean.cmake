file(REMOVE_RECURSE
  "CMakeFiles/cobra_core.dir/event_composition.cc.o"
  "CMakeFiles/cobra_core.dir/event_composition.cc.o.d"
  "CMakeFiles/cobra_core.dir/event_grammar.cc.o"
  "CMakeFiles/cobra_core.dir/event_grammar.cc.o.d"
  "CMakeFiles/cobra_core.dir/meta_index.cc.o"
  "CMakeFiles/cobra_core.dir/meta_index.cc.o.d"
  "CMakeFiles/cobra_core.dir/object_grammar.cc.o"
  "CMakeFiles/cobra_core.dir/object_grammar.cc.o.d"
  "CMakeFiles/cobra_core.dir/tennis_fde.cc.o"
  "CMakeFiles/cobra_core.dir/tennis_fde.cc.o.d"
  "CMakeFiles/cobra_core.dir/video_description.cc.o"
  "CMakeFiles/cobra_core.dir/video_description.cc.o.d"
  "libcobra_core.a"
  "libcobra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
