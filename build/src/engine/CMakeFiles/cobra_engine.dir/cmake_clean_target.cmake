file(REMOVE_RECURSE
  "libcobra_engine.a"
)
