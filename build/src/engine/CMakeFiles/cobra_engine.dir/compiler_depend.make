# Empty compiler generated dependencies file for cobra_engine.
# This may be replaced when dependencies are built.
