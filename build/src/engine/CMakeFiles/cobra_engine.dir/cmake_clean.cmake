file(REMOVE_RECURSE
  "CMakeFiles/cobra_engine.dir/digital_library.cc.o"
  "CMakeFiles/cobra_engine.dir/digital_library.cc.o.d"
  "CMakeFiles/cobra_engine.dir/query_language.cc.o"
  "CMakeFiles/cobra_engine.dir/query_language.cc.o.d"
  "libcobra_engine.a"
  "libcobra_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
