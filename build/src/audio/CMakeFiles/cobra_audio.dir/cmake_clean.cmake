file(REMOVE_RECURSE
  "CMakeFiles/cobra_audio.dir/features.cc.o"
  "CMakeFiles/cobra_audio.dir/features.cc.o.d"
  "CMakeFiles/cobra_audio.dir/fft.cc.o"
  "CMakeFiles/cobra_audio.dir/fft.cc.o.d"
  "CMakeFiles/cobra_audio.dir/signal.cc.o"
  "CMakeFiles/cobra_audio.dir/signal.cc.o.d"
  "CMakeFiles/cobra_audio.dir/synthesizer.cc.o"
  "CMakeFiles/cobra_audio.dir/synthesizer.cc.o.d"
  "libcobra_audio.a"
  "libcobra_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
