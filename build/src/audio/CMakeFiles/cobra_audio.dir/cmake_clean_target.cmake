file(REMOVE_RECURSE
  "libcobra_audio.a"
)
