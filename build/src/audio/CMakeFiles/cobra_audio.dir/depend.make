# Empty dependencies file for cobra_audio.
# This may be replaced when dependencies are built.
