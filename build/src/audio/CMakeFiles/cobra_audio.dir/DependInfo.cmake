
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/features.cc" "src/audio/CMakeFiles/cobra_audio.dir/features.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/features.cc.o.d"
  "/root/repo/src/audio/fft.cc" "src/audio/CMakeFiles/cobra_audio.dir/fft.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/fft.cc.o.d"
  "/root/repo/src/audio/signal.cc" "src/audio/CMakeFiles/cobra_audio.dir/signal.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/signal.cc.o.d"
  "/root/repo/src/audio/synthesizer.cc" "src/audio/CMakeFiles/cobra_audio.dir/synthesizer.cc.o" "gcc" "src/audio/CMakeFiles/cobra_audio.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
