file(REMOVE_RECURSE
  "CMakeFiles/cobra_text.dir/compressed_index.cc.o"
  "CMakeFiles/cobra_text.dir/compressed_index.cc.o.d"
  "CMakeFiles/cobra_text.dir/corpus.cc.o"
  "CMakeFiles/cobra_text.dir/corpus.cc.o.d"
  "CMakeFiles/cobra_text.dir/inverted_index.cc.o"
  "CMakeFiles/cobra_text.dir/inverted_index.cc.o.d"
  "CMakeFiles/cobra_text.dir/postings_codec.cc.o"
  "CMakeFiles/cobra_text.dir/postings_codec.cc.o.d"
  "CMakeFiles/cobra_text.dir/tokenizer.cc.o"
  "CMakeFiles/cobra_text.dir/tokenizer.cc.o.d"
  "libcobra_text.a"
  "libcobra_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
