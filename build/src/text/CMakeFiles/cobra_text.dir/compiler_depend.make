# Empty compiler generated dependencies file for cobra_text.
# This may be replaced when dependencies are built.
