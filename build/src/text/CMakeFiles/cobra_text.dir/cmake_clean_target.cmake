file(REMOVE_RECURSE
  "libcobra_text.a"
)
