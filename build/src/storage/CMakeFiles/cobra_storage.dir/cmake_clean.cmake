file(REMOVE_RECURSE
  "CMakeFiles/cobra_storage.dir/ops.cc.o"
  "CMakeFiles/cobra_storage.dir/ops.cc.o.d"
  "CMakeFiles/cobra_storage.dir/table.cc.o"
  "CMakeFiles/cobra_storage.dir/table.cc.o.d"
  "libcobra_storage.a"
  "libcobra_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
