# Empty dependencies file for cobra_storage.
# This may be replaced when dependencies are built.
