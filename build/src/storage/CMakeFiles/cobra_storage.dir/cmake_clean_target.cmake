file(REMOVE_RECURSE
  "libcobra_storage.a"
)
