# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/vision_test[1]_include.cmake")
include("/root/repo/build/tests/detectors_shot_test[1]_include.cmake")
include("/root/repo/build/tests/detectors_tracking_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/webspace_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/text_compressed_test[1]_include.cmake")
include("/root/repo/build/tests/core_grammar_ext_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/gradual_transition_test[1]_include.cmake")
