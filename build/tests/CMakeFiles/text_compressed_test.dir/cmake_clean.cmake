file(REMOVE_RECURSE
  "CMakeFiles/text_compressed_test.dir/text_compressed_test.cc.o"
  "CMakeFiles/text_compressed_test.dir/text_compressed_test.cc.o.d"
  "text_compressed_test"
  "text_compressed_test.pdb"
  "text_compressed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_compressed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
