# Empty dependencies file for text_compressed_test.
# This may be replaced when dependencies are built.
