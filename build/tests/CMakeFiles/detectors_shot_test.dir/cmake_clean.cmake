file(REMOVE_RECURSE
  "CMakeFiles/detectors_shot_test.dir/detectors_shot_test.cc.o"
  "CMakeFiles/detectors_shot_test.dir/detectors_shot_test.cc.o.d"
  "detectors_shot_test"
  "detectors_shot_test.pdb"
  "detectors_shot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detectors_shot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
