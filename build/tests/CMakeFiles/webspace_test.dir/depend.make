# Empty dependencies file for webspace_test.
# This may be replaced when dependencies are built.
