file(REMOVE_RECURSE
  "CMakeFiles/webspace_test.dir/webspace_test.cc.o"
  "CMakeFiles/webspace_test.dir/webspace_test.cc.o.d"
  "webspace_test"
  "webspace_test.pdb"
  "webspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
