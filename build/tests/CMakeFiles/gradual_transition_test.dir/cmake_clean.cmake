file(REMOVE_RECURSE
  "CMakeFiles/gradual_transition_test.dir/gradual_transition_test.cc.o"
  "CMakeFiles/gradual_transition_test.dir/gradual_transition_test.cc.o.d"
  "gradual_transition_test"
  "gradual_transition_test.pdb"
  "gradual_transition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradual_transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
