# Empty dependencies file for gradual_transition_test.
# This may be replaced when dependencies are built.
