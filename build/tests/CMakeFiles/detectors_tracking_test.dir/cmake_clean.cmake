file(REMOVE_RECURSE
  "CMakeFiles/detectors_tracking_test.dir/detectors_tracking_test.cc.o"
  "CMakeFiles/detectors_tracking_test.dir/detectors_tracking_test.cc.o.d"
  "detectors_tracking_test"
  "detectors_tracking_test.pdb"
  "detectors_tracking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detectors_tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
