# Empty compiler generated dependencies file for detectors_tracking_test.
# This may be replaced when dependencies are built.
