
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/engine_test.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/cobra_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cobra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/cobra_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/detectors/CMakeFiles/cobra_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/cobra_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cobra_media.dir/DependInfo.cmake"
  "/root/repo/build/src/webspace/CMakeFiles/cobra_webspace.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/cobra_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cobra_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
