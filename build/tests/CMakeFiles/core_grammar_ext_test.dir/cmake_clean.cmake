file(REMOVE_RECURSE
  "CMakeFiles/core_grammar_ext_test.dir/core_grammar_ext_test.cc.o"
  "CMakeFiles/core_grammar_ext_test.dir/core_grammar_ext_test.cc.o.d"
  "core_grammar_ext_test"
  "core_grammar_ext_test.pdb"
  "core_grammar_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_grammar_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
