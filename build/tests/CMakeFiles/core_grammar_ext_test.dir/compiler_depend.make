# Empty compiler generated dependencies file for core_grammar_ext_test.
# This may be replaced when dependencies are built.
