file(REMOVE_RECURSE
  "CMakeFiles/audio_indexing.dir/audio_indexing.cpp.o"
  "CMakeFiles/audio_indexing.dir/audio_indexing.cpp.o.d"
  "audio_indexing"
  "audio_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
