# Empty compiler generated dependencies file for audio_indexing.
# This may be replaced when dependencies are built.
