# Empty compiler generated dependencies file for event_grammar_lab.
# This may be replaced when dependencies are built.
