file(REMOVE_RECURSE
  "CMakeFiles/event_grammar_lab.dir/event_grammar_lab.cpp.o"
  "CMakeFiles/event_grammar_lab.dir/event_grammar_lab.cpp.o.d"
  "event_grammar_lab"
  "event_grammar_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_grammar_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
