file(REMOVE_RECURSE
  "CMakeFiles/tennis_indexing.dir/tennis_indexing.cpp.o"
  "CMakeFiles/tennis_indexing.dir/tennis_indexing.cpp.o.d"
  "tennis_indexing"
  "tennis_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tennis_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
