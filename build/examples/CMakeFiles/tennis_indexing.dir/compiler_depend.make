# Empty compiler generated dependencies file for tennis_indexing.
# This may be replaced when dependencies are built.
