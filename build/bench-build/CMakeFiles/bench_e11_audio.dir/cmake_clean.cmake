file(REMOVE_RECURSE
  "../bench/bench_e11_audio"
  "../bench/bench_e11_audio.pdb"
  "CMakeFiles/bench_e11_audio.dir/bench_e11_audio.cc.o"
  "CMakeFiles/bench_e11_audio.dir/bench_e11_audio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
