# Empty dependencies file for bench_e11_audio.
# This may be replaced when dependencies are built.
