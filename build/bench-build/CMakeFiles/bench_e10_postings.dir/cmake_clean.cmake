file(REMOVE_RECURSE
  "../bench/bench_e10_postings"
  "../bench/bench_e10_postings.pdb"
  "CMakeFiles/bench_e10_postings.dir/bench_e10_postings.cc.o"
  "CMakeFiles/bench_e10_postings.dir/bench_e10_postings.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_postings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
