# Empty dependencies file for bench_e10_postings.
# This may be replaced when dependencies are built.
