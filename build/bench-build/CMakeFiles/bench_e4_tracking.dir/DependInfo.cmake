
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_tracking.cc" "bench-build/CMakeFiles/bench_e4_tracking.dir/bench_e4_tracking.cc.o" "gcc" "bench-build/CMakeFiles/bench_e4_tracking.dir/bench_e4_tracking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detectors/CMakeFiles/cobra_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/cobra_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/cobra_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cobra_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
