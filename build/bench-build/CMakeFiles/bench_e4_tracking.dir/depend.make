# Empty dependencies file for bench_e4_tracking.
# This may be replaced when dependencies are built.
