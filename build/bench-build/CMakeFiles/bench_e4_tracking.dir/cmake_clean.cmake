file(REMOVE_RECURSE
  "../bench/bench_e4_tracking"
  "../bench/bench_e4_tracking.pdb"
  "CMakeFiles/bench_e4_tracking.dir/bench_e4_tracking.cc.o"
  "CMakeFiles/bench_e4_tracking.dir/bench_e4_tracking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
