# Empty compiler generated dependencies file for bench_e1_fde_graph.
# This may be replaced when dependencies are built.
