file(REMOVE_RECURSE
  "../bench/bench_e1_fde_graph"
  "../bench/bench_e1_fde_graph.pdb"
  "CMakeFiles/bench_e1_fde_graph.dir/bench_e1_fde_graph.cc.o"
  "CMakeFiles/bench_e1_fde_graph.dir/bench_e1_fde_graph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_fde_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
