# Empty dependencies file for bench_e6_topn_text.
# This may be replaced when dependencies are built.
