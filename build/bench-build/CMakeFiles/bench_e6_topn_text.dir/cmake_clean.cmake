file(REMOVE_RECURSE
  "../bench/bench_e6_topn_text"
  "../bench/bench_e6_topn_text.pdb"
  "CMakeFiles/bench_e6_topn_text.dir/bench_e6_topn_text.cc.o"
  "CMakeFiles/bench_e6_topn_text.dir/bench_e6_topn_text.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_topn_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
