# Empty compiler generated dependencies file for bench_e9_compressed_domain.
# This may be replaced when dependencies are built.
