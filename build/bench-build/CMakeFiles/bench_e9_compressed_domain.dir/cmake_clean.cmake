file(REMOVE_RECURSE
  "../bench/bench_e9_compressed_domain"
  "../bench/bench_e9_compressed_domain.pdb"
  "CMakeFiles/bench_e9_compressed_domain.dir/bench_e9_compressed_domain.cc.o"
  "CMakeFiles/bench_e9_compressed_domain.dir/bench_e9_compressed_domain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_compressed_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
