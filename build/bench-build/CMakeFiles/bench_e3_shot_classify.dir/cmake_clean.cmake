file(REMOVE_RECURSE
  "../bench/bench_e3_shot_classify"
  "../bench/bench_e3_shot_classify.pdb"
  "CMakeFiles/bench_e3_shot_classify.dir/bench_e3_shot_classify.cc.o"
  "CMakeFiles/bench_e3_shot_classify.dir/bench_e3_shot_classify.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_shot_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
