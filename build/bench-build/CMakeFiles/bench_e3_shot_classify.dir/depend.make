# Empty dependencies file for bench_e3_shot_classify.
# This may be replaced when dependencies are built.
