file(REMOVE_RECURSE
  "../bench/bench_e8_indexing"
  "../bench/bench_e8_indexing.pdb"
  "CMakeFiles/bench_e8_indexing.dir/bench_e8_indexing.cc.o"
  "CMakeFiles/bench_e8_indexing.dir/bench_e8_indexing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
