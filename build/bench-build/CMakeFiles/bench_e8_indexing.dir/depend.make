# Empty dependencies file for bench_e8_indexing.
# This may be replaced when dependencies are built.
