file(REMOVE_RECURSE
  "../bench/bench_e7_combined_query"
  "../bench/bench_e7_combined_query.pdb"
  "CMakeFiles/bench_e7_combined_query.dir/bench_e7_combined_query.cc.o"
  "CMakeFiles/bench_e7_combined_query.dir/bench_e7_combined_query.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_combined_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
