file(REMOVE_RECURSE
  "../bench/bench_e5_events"
  "../bench/bench_e5_events.pdb"
  "CMakeFiles/bench_e5_events.dir/bench_e5_events.cc.o"
  "CMakeFiles/bench_e5_events.dir/bench_e5_events.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
