file(REMOVE_RECURSE
  "../bench/bench_e2_shot_boundary"
  "../bench/bench_e2_shot_boundary.pdb"
  "CMakeFiles/bench_e2_shot_boundary.dir/bench_e2_shot_boundary.cc.o"
  "CMakeFiles/bench_e2_shot_boundary.dir/bench_e2_shot_boundary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_shot_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
