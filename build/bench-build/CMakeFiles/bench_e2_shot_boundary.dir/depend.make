# Empty dependencies file for bench_e2_shot_boundary.
# This may be replaced when dependencies are built.
