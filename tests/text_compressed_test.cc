#include <gtest/gtest.h>

#include <set>

#include "text/compressed_index.h"
#include "text/corpus.h"
#include "text/inverted_index.h"
#include "text/postings_codec.h"

namespace cobra::text {
namespace {

// ---------- CompressedPostings ----------

TEST(CompressedPostingsTest, RoundTrip) {
  std::vector<DecodedPosting> postings = {
      {0, 0.5}, {1, 1.25}, {7, 0.0}, {1000, 3.75}, {1000000, 0.125}};
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  EXPECT_EQ(compressed.count(), 5u);
  auto back = compressed.Decode();
  ASSERT_EQ(back.size(), postings.size());
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(back[i].doc_id, postings[i].doc_id) << i;
    EXPECT_NEAR(back[i].weight, postings[i].weight, 1.0 / 1024) << i;
  }
}

TEST(CompressedPostingsTest, EmptyList) {
  auto compressed = CompressedPostings::Encode({}).TakeValue();
  EXPECT_EQ(compressed.count(), 0u);
  EXPECT_EQ(compressed.SizeBytes(), 0u);
  EXPECT_TRUE(compressed.Decode().empty());
}

TEST(CompressedPostingsTest, RejectsUnsortedAndNegative) {
  EXPECT_FALSE(CompressedPostings::Encode({{5, 1.0}, {5, 1.0}}).ok());
  EXPECT_FALSE(CompressedPostings::Encode({{5, 1.0}, {3, 1.0}}).ok());
  EXPECT_FALSE(CompressedPostings::Encode({{0, -1.0}}).ok());
}

TEST(CompressedPostingsTest, DenseListsCompressWell) {
  // Consecutive doc ids with small weights: ~2 bytes per posting vs 16 raw.
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 1000; ++d) postings.push_back({d, 1.0});
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  EXPECT_LT(compressed.SizeBytes(), 3500u);
}

TEST(CompressedPostingsTest, CursorMatchesDecode) {
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 100; d += 3) postings.push_back({d, d * 0.25});
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  CompressedPostings::Cursor cursor(compressed);
  auto decoded = compressed.Decode();
  DecodedPosting p;
  size_t i = 0;
  while (cursor.Next(&p)) {
    ASSERT_LT(i, decoded.size());
    EXPECT_EQ(p.doc_id, decoded[i].doc_id);
    ++i;
  }
  EXPECT_EQ(i, decoded.size());
}

// ---------- CompressedInvertedIndex ----------

InvertedIndex BuildCorpusIndex(size_t docs, uint64_t seed) {
  CorpusConfig config;
  config.num_docs = docs;
  config.vocabulary_size = 2000;
  config.seed = seed;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    EXPECT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  EXPECT_TRUE(index.Finalize().ok());
  return index;
}

TEST(ExportTermsTest, RequiresFinalized) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddText(0, "alpha beta").ok());
  EXPECT_FALSE(index.ExportTerms().ok());
  ASSERT_TRUE(index.Finalize().ok());
  auto terms = index.ExportTerms().TakeValue();
  EXPECT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].postings.size(), 1u);
}

TEST(CompressedIndexTest, SavesSpace) {
  InvertedIndex index = BuildCorpusIndex(2000, 5);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  EXPECT_EQ(compressed.num_terms(), index.num_terms());
  EXPECT_LT(compressed.PostingsBytes(), compressed.UncompressedBytes() / 3)
      << "expected at least 3x postings compression";
}

TEST(CompressedIndexTest, SearchAgreesWithUncompressed) {
  InvertedIndex index = BuildCorpusIndex(1500, 9);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();

  for (uint64_t salt = 0; salt < 8; ++salt) {
    std::string query = corpus.MakeQuery(4, salt);
    auto expected = index.SearchExhaustive(query, 20).TakeValue();
    auto got = compressed.Search(query, 20).TakeValue();
    ASSERT_EQ(got.size(), expected.size()) << query;
    // Quantized weights can flip near-ties; compare as sets with score
    // tolerance.
    std::set<int64_t> expected_docs, got_docs;
    for (const auto& hit : expected) expected_docs.insert(hit.doc_id);
    for (const auto& hit : got) got_docs.insert(hit.doc_id);
    size_t overlap = 0;
    for (int64_t d : got_docs) overlap += expected_docs.count(d);
    EXPECT_GE(overlap + 2, got_docs.size()) << query;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].score, expected[i].score, 0.02) << query << " @" << i;
    }
  }
}

TEST(CompressedIndexTest, ScansSamePostings) {
  InvertedIndex index = BuildCorpusIndex(800, 3);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  std::string query = corpus.MakeQuery(3, 1);
  SearchStats a, b;
  ASSERT_TRUE(index.SearchExhaustive(query, 10, &a).ok());
  ASSERT_TRUE(compressed.Search(query, 10, &b).ok());
  EXPECT_EQ(a.postings_scanned, b.postings_scanned);
  EXPECT_EQ(a.terms_evaluated, b.terms_evaluated);
}

TEST(CompressedIndexTest, EmptyQueryRejected) {
  InvertedIndex index = BuildCorpusIndex(50, 1);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  EXPECT_FALSE(compressed.Search("the of", 5).ok());
}

TEST(CompressedIndexTest, FromUnfinalizedFails) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddText(0, "x y z").ok());
  EXPECT_FALSE(CompressedInvertedIndex::FromIndex(index).ok());
}

}  // namespace
}  // namespace cobra::text
