#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "text/compressed_index.h"
#include "text/corpus.h"
#include "text/inverted_index.h"
#include "text/postings_codec.h"

namespace cobra::text {
namespace {

// ---------- CompressedPostings ----------

TEST(CompressedPostingsTest, RoundTrip) {
  std::vector<DecodedPosting> postings = {
      {0, 0.5}, {1, 1.25}, {7, 0.0}, {1000, 3.75}, {1000000, 0.125}};
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  EXPECT_EQ(compressed.count(), 5u);
  auto back = compressed.Decode();
  ASSERT_EQ(back.size(), postings.size());
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(back[i].doc_id, postings[i].doc_id) << i;
    EXPECT_NEAR(back[i].weight, postings[i].weight, 1.0 / 1024) << i;
  }
}

TEST(CompressedPostingsTest, EmptyList) {
  auto compressed = CompressedPostings::Encode({}).TakeValue();
  EXPECT_EQ(compressed.count(), 0u);
  EXPECT_EQ(compressed.SizeBytes(), 0u);
  EXPECT_TRUE(compressed.Decode().empty());
}

TEST(CompressedPostingsTest, RejectsUnsortedAndNegative) {
  EXPECT_FALSE(CompressedPostings::Encode({{5, 1.0}, {5, 1.0}}).ok());
  EXPECT_FALSE(CompressedPostings::Encode({{5, 1.0}, {3, 1.0}}).ok());
  EXPECT_FALSE(CompressedPostings::Encode({{0, -1.0}}).ok());
}

TEST(CompressedPostingsTest, DenseListsCompressWell) {
  // Consecutive doc ids with small weights: ~2 bytes per posting vs 16 raw.
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 1000; ++d) postings.push_back({d, 1.0});
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  EXPECT_LT(compressed.SizeBytes(), 3500u);
}

TEST(CompressedPostingsTest, CursorMatchesDecode) {
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 100; d += 3) postings.push_back({d, d * 0.25});
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  CompressedPostings::Cursor cursor(compressed);
  auto decoded = compressed.Decode();
  DecodedPosting p;
  size_t i = 0;
  while (cursor.Next(&p)) {
    ASSERT_LT(i, decoded.size());
    EXPECT_EQ(p.doc_id, decoded[i].doc_id);
    ++i;
  }
  EXPECT_EQ(i, decoded.size());
}

TEST(CompressedPostingsTest, BlockMetadataCoversList) {
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 1000; d += 7) postings.push_back({d, (d % 13) * 0.5});
  auto compressed = CompressedPostings::Encode(postings).TakeValue();
  size_t expected_blocks =
      (postings.size() + CompressedPostings::kBlockSize - 1) /
      CompressedPostings::kBlockSize;
  ASSERT_EQ(compressed.num_blocks(), expected_blocks);
  double global_max = 0.0;
  for (size_t b = 0; b < compressed.num_blocks(); ++b) {
    const auto& block = compressed.blocks()[b];
    size_t first = b * CompressedPostings::kBlockSize;
    size_t last = std::min(first + CompressedPostings::kBlockSize,
                           postings.size()) - 1;
    EXPECT_EQ(block.last_doc, postings[last].doc_id) << b;
    EXPECT_EQ(block.prev_doc, first == 0 ? -1 : postings[first - 1].doc_id) << b;
    double block_max = 0.0;
    for (size_t i = first; i <= last; ++i) {
      block_max = std::max(block_max, postings[i].weight);
    }
    EXPECT_NEAR(block.max_weight, block_max, 1.0 / 1024) << b;
    global_max = std::max(global_max, block_max);
  }
  EXPECT_NEAR(compressed.max_weight(), global_max, 1.0 / 1024);
}

TEST(CompressedPostingsTest, SkipToMatchesFullDecode) {
  // Property: for random gapped lists and random targets, SkipTo lands on
  // exactly the posting a full linear decode would find (lower bound), and
  // jumping blocks never changes what is returned.
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 20; ++round) {
    std::vector<DecodedPosting> postings;
    int64_t doc = 0;
    size_t count = 50 + static_cast<size_t>(rng() % 900);
    for (size_t i = 0; i < count; ++i) {
      doc += 1 + static_cast<int64_t>(rng() % 50);
      postings.push_back({doc, static_cast<double>(rng() % 4096) / 1024.0});
    }
    auto compressed = CompressedPostings::Encode(postings).TakeValue();
    auto decoded = compressed.Decode();
    ASSERT_EQ(decoded.size(), postings.size());

    // Ascending random targets against one forward-only cursor.
    std::vector<int64_t> targets;
    for (int t = 0; t < 40; ++t) {
      targets.push_back(static_cast<int64_t>(rng() % (doc + 20)));
    }
    std::sort(targets.begin(), targets.end());

    // The raw cursor is a consuming stream: each returned posting is
    // consumed, so SkipTo answers from the postings *after* the last one
    // returned (the DAAT wrappers add current-posting semantics on top).
    CompressedPostings::Cursor cursor(compressed);
    DecodedPosting got;
    int64_t reached = -1;
    for (int64_t target : targets) {
      int64_t effective = std::max(target, reached + 1);
      auto it = std::lower_bound(
          decoded.begin(), decoded.end(), effective,
          [](const DecodedPosting& p, int64_t d) { return p.doc_id < d; });
      bool found = cursor.SkipTo(target, &got);
      ASSERT_TRUE(cursor.ok());
      if (it == decoded.end()) {
        EXPECT_FALSE(found) << "target " << target;
      } else {
        ASSERT_TRUE(found) << "target " << target;
        EXPECT_EQ(got.doc_id, it->doc_id) << "target " << target;
        EXPECT_EQ(got.weight, it->weight) << "target " << target;
        reached = got.doc_id;
      }
    }
    EXPECT_GT(cursor.blocks_skipped() + cursor.postings_decoded(), 0);
  }
}

TEST(CompressedPostingsTest, FromRawRoundTrips) {
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 300; d += 3) postings.push_back({d, (d % 5) * 0.5});
  auto pristine = CompressedPostings::Encode(postings).TakeValue();
  auto rebuilt = CompressedPostings::FromRaw(
      std::vector<uint8_t>(pristine.data(),
                           pristine.data() + pristine.SizeBytes()),
      std::vector<CompressedPostings::SkipBlock>(pristine.blocks()),
      pristine.count(), pristine.max_weight());
  auto a = pristine.Decode();
  auto b = rebuilt.Decode();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].doc_id, b[i].doc_id);
    EXPECT_EQ(a[i].weight, b[i].weight);
  }
}

TEST(CompressedPostingsTest, CursorSurvivesMutatedBytes) {
  // Fuzz-style hardening check: however the raw bytes are truncated or
  // bit-flipped (as corrupt storage would hand to FromRaw), the cursor
  // must terminate, never yield a non-increasing doc id, never yield more
  // than count() postings, and stay exhausted once it bailed.
  std::vector<DecodedPosting> postings;
  for (int64_t d = 0; d < 500; d += 2) postings.push_back({d, (d % 7) * 0.25});
  auto pristine = CompressedPostings::Encode(postings).TakeValue();

  auto run_cursor = [&](const CompressedPostings& list) {
    CompressedPostings::Cursor cursor(list);
    DecodedPosting p;
    int64_t last = -1;
    size_t yielded = 0;
    while (cursor.Next(&p)) {
      ASSERT_GT(p.doc_id, last) << "doc ids must stay strictly increasing";
      last = p.doc_id;
      ++yielded;
      ASSERT_LE(yielded, list.count());
    }
    // Exhausted cursors stay exhausted, corrupt or not.
    EXPECT_FALSE(cursor.Next(&p));
    if (!cursor.ok()) {
      DecodedPosting q;
      EXPECT_FALSE(cursor.SkipTo(last + 1, &q));
    }
  };

  std::mt19937_64 rng(77);
  for (int round = 0; round < 300; ++round) {
    std::vector<uint8_t> bytes(pristine.data(),
                               pristine.data() + pristine.SizeBytes());
    switch (round % 3) {
      case 0:  // truncate to a random prefix, keep the declared count
        bytes.resize(rng() % (bytes.size() + 1));
        break;
      case 1: {  // flip a random bit
        size_t at = rng() % bytes.size();
        bytes[at] ^= static_cast<uint8_t>(1u << (rng() % 8));
        break;
      }
      default: {  // overwrite a random byte (can forge varint terminators)
        size_t at = rng() % bytes.size();
        bytes[at] = static_cast<uint8_t>(rng());
        break;
      }
    }
    auto mutated = CompressedPostings::FromRaw(
        std::move(bytes),
        std::vector<CompressedPostings::SkipBlock>(pristine.blocks()),
        pristine.count(), pristine.max_weight());
    run_cursor(mutated);
  }

  // All-0x80 bytes: an unterminated varint must be flagged, not looped on.
  auto unterminated = CompressedPostings::FromRaw(
      std::vector<uint8_t>(64, 0x80), {}, 10, 1.0);
  CompressedPostings::Cursor cursor(unterminated);
  DecodedPosting p;
  EXPECT_FALSE(cursor.Next(&p));
  EXPECT_FALSE(cursor.ok());
}

InvertedIndex BuildCorpusIndex(size_t docs, uint64_t seed) {
  CorpusConfig config;
  config.num_docs = docs;
  config.vocabulary_size = 2000;
  config.seed = seed;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    EXPECT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  EXPECT_TRUE(index.Finalize().ok());
  return index;
}

TEST(ExportTermsTest, RequiresFinalized) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddText(0, "alpha beta").ok());
  EXPECT_FALSE(index.ExportTerms().ok());
  ASSERT_TRUE(index.Finalize().ok());
  auto terms = index.ExportTerms().TakeValue();
  EXPECT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].postings.size(), 1u);
}

TEST(CompressedIndexTest, SavesSpace) {
  InvertedIndex index = BuildCorpusIndex(2000, 5);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  EXPECT_EQ(compressed.num_terms(), index.num_terms());
  EXPECT_LT(compressed.PostingsBytes(), compressed.UncompressedBytes() / 3)
      << "expected at least 3x postings compression";
}

TEST(CompressedIndexTest, SearchAgreesWithUncompressed) {
  InvertedIndex index = BuildCorpusIndex(1500, 9);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();

  for (uint64_t salt = 0; salt < 8; ++salt) {
    std::string query = corpus.MakeQuery(4, salt);
    auto expected = index.SearchExhaustive(query, 20).TakeValue();
    auto got = compressed.Search(query, 20).TakeValue();
    ASSERT_EQ(got.size(), expected.size()) << query;
    // Quantized weights can flip near-ties; compare as sets with score
    // tolerance.
    std::set<int64_t> expected_docs, got_docs;
    for (const auto& hit : expected) expected_docs.insert(hit.doc_id);
    for (const auto& hit : got) got_docs.insert(hit.doc_id);
    size_t overlap = 0;
    for (int64_t d : got_docs) overlap += expected_docs.count(d);
    EXPECT_GE(overlap + 2, got_docs.size()) << query;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].score, expected[i].score, 0.02) << query << " @" << i;
    }
  }
}

TEST(CompressedIndexTest, ScansSamePostings) {
  InvertedIndex index = BuildCorpusIndex(800, 3);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  std::string query = corpus.MakeQuery(3, 1);
  SearchStats a, b;
  ASSERT_TRUE(index.SearchExhaustive(query, 10, &a).ok());
  ASSERT_TRUE(compressed.Search(query, 10, &b).ok());
  EXPECT_EQ(a.postings_scanned, b.postings_scanned);
  EXPECT_EQ(a.terms_evaluated, b.terms_evaluated);
}

TEST(CompressedIndexTest, TopNMatchesExhaustiveCompressed) {
  // The DAAT block-max path over streaming cursors must return exactly the
  // compressed exhaustive baseline truncated to n — same quantized scores,
  // same tie-breaks — while decoding fewer postings.
  InvertedIndex index = BuildCorpusIndex(2000, 21);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();

  int64_t total_scanned_topn = 0, total_scanned_full = 0;
  for (uint64_t salt = 0; salt < 10; ++salt) {
    std::string query =
        VocabularyWord(1 + salt % 3) + " " + corpus.MakeQuery(3, salt);
    for (size_t n : {1u, 10u, 100u}) {
      SearchStats full_stats, topn_stats;
      auto expected = compressed.Search(query, n, &full_stats).TakeValue();
      auto got = compressed.SearchTopN(query, n, &topn_stats).TakeValue();
      ASSERT_EQ(got.size(), expected.size()) << query << " n=" << n;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].doc_id, expected[i].doc_id)
            << query << " n=" << n << " rank " << i;
        EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
      }
      total_scanned_topn += topn_stats.postings_scanned;
      total_scanned_full += full_stats.postings_scanned;
    }
  }
  EXPECT_LT(total_scanned_topn, total_scanned_full)
      << "top-N should answer without decoding full lists";
}

TEST(CompressedIndexTest, TopNSkipsBlocks) {
  InvertedIndex index = BuildCorpusIndex(5000, 33);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  CorpusConfig config;
  config.vocabulary_size = 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  std::string query = VocabularyWord(1) + " " + corpus.MakeQuery(3, 4);
  SearchStats stats;
  ASSERT_TRUE(compressed.SearchTopN(query, 10, &stats).ok());
  EXPECT_GT(stats.blocks_skipped, 0) << "SkipTo never jumped a block";
}

TEST(CompressedIndexTest, EmptyQueryRejected) {
  InvertedIndex index = BuildCorpusIndex(50, 1);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();
  EXPECT_FALSE(compressed.Search("the of", 5).ok());
  EXPECT_FALSE(compressed.SearchTopN("the of", 5).ok());
}

TEST(CompressedIndexTest, FromUnfinalizedFails) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddText(0, "x y z").ok());
  EXPECT_FALSE(CompressedInvertedIndex::FromIndex(index).ok());
}

}  // namespace
}  // namespace cobra::text
