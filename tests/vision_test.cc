#include <gtest/gtest.h>

#include <cmath>

#include "media/frame.h"
#include "vision/color_model.h"
#include "vision/gray_stats.h"
#include "vision/histogram.h"
#include "vision/mask.h"
#include "vision/moments.h"

namespace cobra::vision {
namespace {

using media::Frame;
using media::Rgb;

// ---------- Histogram ----------

TEST(HistogramTest, UniformFrameIsOneBin) {
  Frame f(16, 16, Rgb{38, 82, 164});
  auto h = ColorHistogram::FromFrame(f, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->NumBins(), 512u);
  EXPECT_DOUBLE_EQ(h->DominantRatio(), 1.0);
  double sum = 0;
  for (size_t i = 0; i < h->NumBins(); ++i) sum += h->At(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HistogramTest, RejectsBadBins) {
  Frame f(4, 4);
  EXPECT_FALSE(ColorHistogram::FromFrame(f, 3).ok());
  EXPECT_FALSE(ColorHistogram::FromFrame(f, 0).ok());
  EXPECT_FALSE(ColorHistogram::FromFrame(f, 512).ok());
}

TEST(HistogramTest, RejectsEmptyRegion) {
  Frame f(4, 4);
  EXPECT_FALSE(ColorHistogram::FromRegion(f, RectI{10, 10, 2, 2}).ok());
}

TEST(HistogramTest, DistancesZeroForIdentical) {
  Frame f(16, 16, Rgb{100, 50, 25});
  auto h = ColorHistogram::FromFrame(f).TakeValue();
  EXPECT_DOUBLE_EQ(h.L1Distance(h), 0.0);
  EXPECT_DOUBLE_EQ(h.ChiSquareDistance(h), 0.0);
  EXPECT_NEAR(h.IntersectionDistance(h), 0.0, 1e-12);
}

TEST(HistogramTest, DistancesMaximalForDisjoint) {
  Frame a(16, 16, Rgb{0, 0, 0});
  Frame b(16, 16, Rgb{255, 255, 255});
  auto ha = ColorHistogram::FromFrame(a).TakeValue();
  auto hb = ColorHistogram::FromFrame(b).TakeValue();
  EXPECT_DOUBLE_EQ(ha.L1Distance(hb), 2.0);
  EXPECT_DOUBLE_EQ(ha.IntersectionDistance(hb), 1.0);
  EXPECT_GT(ha.ChiSquareDistance(hb), 1.0);
}

TEST(HistogramTest, DistanceSymmetry) {
  Frame a(8, 8, Rgb{10, 20, 30});
  Frame b(8, 8);
  b.FillRect(RectI{0, 0, 4, 8}, Rgb{200, 100, 20});
  auto ha = ColorHistogram::FromFrame(a).TakeValue();
  auto hb = ColorHistogram::FromFrame(b).TakeValue();
  for (auto metric : {HistogramDistance::kL1, HistogramDistance::kChiSquare,
                      HistogramDistance::kIntersection}) {
    EXPECT_DOUBLE_EQ(Distance(ha, hb, metric), Distance(hb, ha, metric))
        << HistogramDistanceToString(metric);
  }
}

TEST(HistogramTest, BinCenterInverts) {
  Frame f(4, 4, Rgb{38, 82, 164});
  auto h = ColorHistogram::FromFrame(f, 8).TakeValue();
  Rgb center = h.BinCenter(h.ModalBin());
  // Bin width is 32 at 8 bins: center within 16 of the true color.
  EXPECT_NEAR(center.r, 38, 16);
  EXPECT_NEAR(center.g, 82, 16);
  EXPECT_NEAR(center.b, 164, 16);
}

TEST(HistogramTest, RegionIsolatesContent) {
  Frame f(16, 16, Rgb{0, 0, 0});
  f.FillRect(RectI{8, 0, 8, 16}, Rgb{255, 0, 0});
  auto left = ColorHistogram::FromRegion(f, RectI{0, 0, 8, 16}).TakeValue();
  auto right = ColorHistogram::FromRegion(f, RectI{8, 0, 8, 16}).TakeValue();
  EXPECT_DOUBLE_EQ(left.L1Distance(right), 2.0);
}

// ---------- GrayStats ----------

TEST(GrayStatsTest, UniformFrame) {
  Frame f(16, 16, Rgb{100, 100, 100});
  GrayStats gs = ComputeGrayStats(f);
  EXPECT_NEAR(gs.mean, 100.0, 0.5);
  EXPECT_NEAR(gs.variance, 0.0, 1e-9);
  EXPECT_NEAR(gs.entropy, 0.0, 1e-9);
}

TEST(GrayStatsTest, TwoToneEntropyIsOneBit) {
  Frame f(16, 16, Rgb{0, 0, 0});
  f.FillRect(RectI{0, 0, 16, 8}, Rgb{255, 255, 255});
  GrayStats gs = ComputeGrayStats(f);
  EXPECT_NEAR(gs.entropy, 1.0, 1e-9);
  EXPECT_NEAR(gs.mean, 127.5, 0.5);
  EXPECT_GT(gs.variance, 10000.0);
}

TEST(GrayStatsTest, EmptyRegionIsZeros) {
  Frame f(8, 8);
  GrayStats gs = ComputeGrayStats(f, RectI{20, 20, 4, 4});
  EXPECT_EQ(gs.mean, 0.0);
  EXPECT_EQ(gs.entropy, 0.0);
}

TEST(GrayStatsTest, SkinRatio) {
  Frame f(10, 10, Rgb{38, 82, 164});
  f.FillRect(RectI{0, 0, 10, 3}, Rgb{222, 164, 124});
  EXPECT_NEAR(SkinPixelRatio(f), 0.3, 1e-9);
}

// ---------- Mask / components ----------

TEST(MaskTest, CountAndBoundingBox) {
  BinaryMask m(10, 10);
  m.Set(2, 3, true);
  m.Set(5, 7, true);
  EXPECT_EQ(m.Count(), 2);
  EXPECT_EQ(m.BoundingBox(), (RectI{2, 3, 4, 5}));
}

TEST(MaskTest, EmptyBoundingBox) {
  BinaryMask m(5, 5);
  EXPECT_TRUE(m.BoundingBox().Empty());
}

TEST(MaskTest, ErodeRemovesThinStructures) {
  BinaryMask m(10, 10);
  for (int x = 0; x < 10; ++x) m.Set(x, 5, true);  // 1-px horizontal line
  EXPECT_EQ(m.Erode().Count(), 0);
}

TEST(MaskTest, OpenPreservesBlobRemovesNoise) {
  BinaryMask m(20, 20);
  for (int y = 5; y < 12; ++y) {
    for (int x = 5; x < 12; ++x) m.Set(x, y, true);  // 7x7 blob
  }
  m.Set(17, 17, true);  // isolated noise pixel
  BinaryMask opened = m.Open();
  EXPECT_FALSE(opened.At(17, 17));
  EXPECT_TRUE(opened.At(8, 8));
  EXPECT_GE(opened.Count(), 25);
}

TEST(MaskTest, DilateGrows) {
  BinaryMask m(10, 10);
  m.Set(5, 5, true);
  EXPECT_EQ(m.Dilate().Count(), 9);
}

TEST(ComponentsTest, FindsSeparateBlobs) {
  BinaryMask m(20, 20);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) m.Set(x, y, true);  // 9 px
  }
  for (int y = 10; y < 16; ++y) {
    for (int x = 10; x < 16; ++x) m.Set(x, y, true);  // 36 px
  }
  auto cc = LabelComponents(m);
  ASSERT_EQ(cc.size(), 2u);
  EXPECT_EQ(cc[0].area, 36);  // sorted by area desc
  EXPECT_EQ(cc[1].area, 9);
  EXPECT_EQ(cc[0].bbox, (RectI{10, 10, 6, 6}));
  EXPECT_NEAR(cc[0].centroid.x, 12.5, 1e-9);
}

TEST(ComponentsTest, MinAreaFilters) {
  BinaryMask m(10, 10);
  m.Set(1, 1, true);
  m.Set(5, 5, true);
  m.Set(5, 6, true);
  auto cc = LabelComponents(m, 2);
  ASSERT_EQ(cc.size(), 1u);
  EXPECT_EQ(cc[0].area, 2);
}

TEST(ComponentsTest, DiagonalIsNotConnected) {
  BinaryMask m(4, 4);
  m.Set(0, 0, true);
  m.Set(1, 1, true);
  EXPECT_EQ(LabelComponents(m).size(), 2u);  // 4-connectivity
}

// ---------- Moments ----------

TEST(MomentsTest, CentroidOfSquare) {
  std::vector<std::pair<int, int>> pixels;
  for (int y = 2; y <= 6; ++y) {
    for (int x = 4; x <= 8; ++x) pixels.emplace_back(x, y);
  }
  RegionMoments m = ComputeMoments(pixels);
  EXPECT_DOUBLE_EQ(m.m00, 25.0);
  EXPECT_DOUBLE_EQ(m.Centroid().x, 6.0);
  EXPECT_DOUBLE_EQ(m.Centroid().y, 4.0);
  EXPECT_NEAR(m.Eccentricity(), 0.0, 1e-9);  // square ~ circle
}

TEST(MomentsTest, ElongatedRegionEccentricityAndOrientation) {
  std::vector<std::pair<int, int>> pixels;
  for (int x = 0; x < 30; ++x) {
    for (int y = 0; y < 3; ++y) pixels.emplace_back(x, y);  // wide strip
  }
  RegionMoments m = ComputeMoments(pixels);
  EXPECT_GT(m.Eccentricity(), 0.9);
  EXPECT_NEAR(m.Orientation(), 0.0, 0.05);  // aligned with x axis

  // Vertical strip: orientation ±pi/2.
  std::vector<std::pair<int, int>> vert;
  for (int y = 0; y < 30; ++y) {
    for (int x = 0; x < 3; ++x) vert.emplace_back(x, y);
  }
  RegionMoments mv = ComputeMoments(vert);
  EXPECT_NEAR(std::fabs(mv.Orientation()), M_PI / 2, 0.05);
}

TEST(MomentsTest, EmptyRegion) {
  RegionMoments m = ComputeMoments(std::vector<std::pair<int, int>>{});
  EXPECT_EQ(m.m00, 0.0);
  EXPECT_EQ(m.Eccentricity(), 0.0);
  EXPECT_EQ(m.Orientation(), 0.0);
}

TEST(MomentsTest, MaskOverloadMatchesPixelList) {
  BinaryMask mask(10, 10);
  std::vector<std::pair<int, int>> pixels;
  for (int y = 1; y < 5; ++y) {
    for (int x = 2; x < 9; ++x) {
      mask.Set(x, y, true);
      pixels.emplace_back(x, y);
    }
  }
  RegionMoments a = ComputeMoments(mask);
  RegionMoments b = ComputeMoments(pixels);
  EXPECT_DOUBLE_EQ(a.m00, b.m00);
  EXPECT_DOUBLE_EQ(a.mu20, b.mu20);
  EXPECT_DOUBLE_EQ(a.mu11, b.mu11);
}

TEST(ShapeFeaturesTest, DominantColorOfRegion) {
  Frame f(10, 10, Rgb{0, 0, 0});
  f.FillRect(RectI{2, 2, 4, 4}, Rgb{208, 44, 44});
  BinaryMask m(10, 10);
  for (int y = 2; y < 6; ++y) {
    for (int x = 2; x < 6; ++x) m.Set(x, y, true);
  }
  auto cc = LabelComponents(m);
  ASSERT_EQ(cc.size(), 1u);
  ShapeFeatures sf = ComputeShapeFeatures(f, cc[0]);
  EXPECT_EQ(sf.area, 16.0);
  EXPECT_EQ(sf.bounding_box, (RectI{2, 2, 4, 4}));
  // Dominant color quantized to 32-wide bins: within 16 of the truth.
  EXPECT_NEAR(sf.dominant_color.r, 208, 16);
  EXPECT_NEAR(sf.dominant_color.g, 44, 16);
}

// ---------- Color model ----------

TEST(ColorModelTest, MatchesOwnPopulation) {
  Frame f(16, 16, Rgb{38, 82, 164});
  GaussianColorModel m =
      GaussianColorModel::FromRegion(f, RectI{0, 0, 16, 16});
  EXPECT_NEAR(m.mean_b(), 164.0, 0.5);
  EXPECT_TRUE(m.Matches(Rgb{40, 84, 160}));
  EXPECT_FALSE(m.Matches(Rgb{208, 44, 44}));   // player shirt
  EXPECT_FALSE(m.Matches(Rgb{222, 164, 124})); // skin
}

TEST(ColorModelTest, VarianceFloorAdmitsNoise) {
  GaussianColorModel m;
  for (int i = 0; i < 100; ++i) m.Add(Rgb{100, 100, 100});
  // Exactly constant model still accepts small perturbations.
  EXPECT_TRUE(m.Matches(Rgb{104, 96, 100}, 3.0));
  EXPECT_FALSE(m.Matches(Rgb{140, 100, 100}, 3.0));
}

TEST(ColorModelTest, Distance2Monotone) {
  GaussianColorModel m;
  for (int i = 0; i < 50; ++i) m.Add(Rgb{100, 100, 100});
  EXPECT_LT(m.Distance2(Rgb{101, 100, 100}), m.Distance2(Rgb{120, 100, 100}));
  EXPECT_LT(m.Distance2(Rgb{120, 100, 100}), m.Distance2(Rgb{200, 100, 100}));
}

TEST(ColorModelTest, EmptyModelIsPermissiveEnough) {
  GaussianColorModel m;
  EXPECT_EQ(m.count(), 0);
  EXPECT_EQ(m.mean_r(), 0.0);
}

}  // namespace
}  // namespace cobra::vision
