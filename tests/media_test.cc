#include <gtest/gtest.h>

#include <cstdio>

#include "media/color.h"
#include "media/frame.h"
#include "media/ground_truth.h"
#include "media/ppm.h"
#include "media/tennis_synthesizer.h"
#include "media/video.h"

namespace cobra::media {
namespace {

// ---------- Color ----------

TEST(ColorTest, RgbHsvRoundTripPrimaries) {
  for (const Rgb& c : {Rgb{255, 0, 0}, Rgb{0, 255, 0}, Rgb{0, 0, 255},
                       Rgb{255, 255, 0}, Rgb{128, 128, 128}, Rgb{10, 200, 90}}) {
    Rgb back = HsvToRgb(RgbToHsv(c));
    EXPECT_NEAR(back.r, c.r, 2);
    EXPECT_NEAR(back.g, c.g, 2);
    EXPECT_NEAR(back.b, c.b, 2);
  }
}

TEST(ColorTest, KnownHues) {
  EXPECT_NEAR(RgbToHsv(Rgb{255, 0, 0}).h, 0.0, 1.0);
  EXPECT_NEAR(RgbToHsv(Rgb{0, 255, 0}).h, 120.0, 1.0);
  EXPECT_NEAR(RgbToHsv(Rgb{0, 0, 255}).h, 240.0, 1.0);
  EXPECT_NEAR(RgbToHsv(Rgb{128, 128, 128}).s, 0.0, 1e-9);
}

TEST(ColorTest, SkinDetector) {
  EXPECT_TRUE(IsSkinColor(Rgb{208, 144, 112}));  // synthesizer skin
  EXPECT_TRUE(IsSkinColor(Rgb{200, 140, 110}));
  EXPECT_TRUE(IsSkinColor(Rgb{222, 164, 124}));
  EXPECT_FALSE(IsSkinColor(Rgb{48, 80, 176}));   // court blue
  EXPECT_FALSE(IsSkinColor(Rgb{48, 112, 80}));   // surround green
  EXPECT_FALSE(IsSkinColor(Rgb{240, 240, 240})); // line white
  EXPECT_FALSE(IsSkinColor(Rgb{30, 30, 30}));    // dark
}

TEST(ColorTest, LumaWeights) {
  EXPECT_NEAR(Rgb(255, 255, 255).Luma(), 255.0, 1e-9);
  EXPECT_NEAR(Rgb(0, 0, 0).Luma(), 0.0, 1e-9);
  EXPECT_GT(Rgb(0, 255, 0).Luma(), Rgb(255, 0, 0).Luma());
}

// ---------- Frame ----------

TEST(FrameTest, ConstructAndFill) {
  Frame f(8, 6, Rgb{1, 2, 3});
  EXPECT_EQ(f.width(), 8);
  EXPECT_EQ(f.height(), 6);
  EXPECT_EQ(f.PixelCount(), 48);
  EXPECT_EQ(f.At(7, 5), (Rgb{1, 2, 3}));
}

TEST(FrameTest, FillRectClips) {
  Frame f(10, 10);
  f.FillRect(RectI{8, 8, 10, 10}, Rgb{255, 0, 0});
  EXPECT_EQ(f.At(9, 9), (Rgb{255, 0, 0}));
  EXPECT_EQ(f.At(7, 7), (Rgb{0, 0, 0}));
}

TEST(FrameTest, FillEllipseCoversCenter) {
  Frame f(20, 20);
  f.FillEllipse(10, 10, 5, 3, Rgb{9, 9, 9});
  EXPECT_EQ(f.At(10, 10), (Rgb{9, 9, 9}));
  EXPECT_EQ(f.At(14, 10), (Rgb{9, 9, 9}));
  EXPECT_EQ(f.At(10, 14), (Rgb{0, 0, 0}));  // outside ry=3
  EXPECT_EQ(f.At(16, 10), (Rgb{0, 0, 0}));  // outside rx=5
}

TEST(FrameTest, DrawLineEndpoints) {
  Frame f(10, 10);
  f.DrawLine(1, 1, 8, 5, Rgb{7, 7, 7});
  EXPECT_EQ(f.At(1, 1), (Rgb{7, 7, 7}));
  EXPECT_EQ(f.At(8, 5), (Rgb{7, 7, 7}));
}

TEST(FrameTest, CropContents) {
  Frame f(10, 10);
  f.Set(5, 5, Rgb{9, 8, 7});
  Frame c = f.Crop(RectI{4, 4, 3, 3});
  EXPECT_EQ(c.width(), 3);
  EXPECT_EQ(c.At(1, 1), (Rgb{9, 8, 7}));
}

TEST(FrameTest, DownsampleAverages) {
  Frame f(4, 4, Rgb{0, 0, 0});
  f.FillRect(RectI{0, 0, 2, 4}, Rgb{200, 100, 0});
  auto half = f.Downsample(2);
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->width(), 2);
  EXPECT_EQ(half->At(0, 0), (Rgb{200, 100, 0}));
  EXPECT_EQ(half->At(1, 0), (Rgb{0, 0, 0}));
}

TEST(FrameTest, DownsampleRejectsBadFactor) {
  Frame f(4, 4);
  EXPECT_FALSE(f.Downsample(0).ok());
}

// ---------- MemoryVideo ----------

TEST(MemoryVideoTest, AppendAndGet) {
  MemoryVideo v({}, 25.0);
  EXPECT_TRUE(v.Append(Frame(4, 4, Rgb{1, 1, 1})).ok());
  EXPECT_TRUE(v.Append(Frame(4, 4, Rgb{2, 2, 2})).ok());
  EXPECT_EQ(v.num_frames(), 2);
  auto f = v.GetFrame(1);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->At(0, 0), (Rgb{2, 2, 2}));
}

TEST(MemoryVideoTest, RejectsMismatchedFrames) {
  MemoryVideo v({}, 25.0);
  ASSERT_TRUE(v.Append(Frame(4, 4)).ok());
  EXPECT_FALSE(v.Append(Frame(5, 4)).ok());
}

TEST(MemoryVideoTest, OutOfRangeGet) {
  MemoryVideo v({}, 25.0);
  ASSERT_TRUE(v.Append(Frame(4, 4)).ok());
  EXPECT_FALSE(v.GetFrame(-1).ok());
  EXPECT_FALSE(v.GetFrame(1).ok());
}

TEST(MemoryVideoTest, MutableFrameBoundsChecked) {
  MemoryVideo v({}, 25.0);
  ASSERT_TRUE(v.Append(Frame(4, 4)).ok());
  auto bad_low = v.MutableFrame(-1);
  EXPECT_FALSE(bad_low.ok());
  EXPECT_EQ(bad_low.status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(v.MutableFrame(1).ok());
  auto frame = v.MutableFrame(0);
  ASSERT_TRUE(frame.ok());
  (*frame)->At(2, 2) = Rgb{9, 9, 9};
  EXPECT_EQ(v.GetFrame(0)->At(2, 2), (Rgb{9, 9, 9}));
}

// ---------- PPM ----------

TEST(PpmTest, RoundTrip) {
  Frame f(5, 3);
  f.Set(2, 1, Rgb{10, 20, 30});
  f.Set(4, 2, Rgb{200, 100, 50});
  std::string path = ::testing::TempDir() + "/cobra_ppm_test.ppm";
  ASSERT_TRUE(WritePpm(f, path).ok());
  auto back = ReadPpm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 5);
  EXPECT_EQ(back->height(), 3);
  EXPECT_EQ(back->At(2, 1), (Rgb{10, 20, 30}));
  EXPECT_EQ(back->At(4, 2), (Rgb{200, 100, 50}));
  std::remove(path.c_str());
}

TEST(PpmTest, MissingFileFails) {
  EXPECT_TRUE(ReadPpm("/nonexistent/xyz.ppm").status().IsNotFound());
}

// ---------- Synthesizer ----------

TennisSynthConfig SmallConfig() {
  TennisSynthConfig config;
  config.num_points = 3;
  config.width = 128;
  config.height = 96;
  config.min_court_frames = 60;
  config.max_court_frames = 90;
  config.min_cutaway_frames = 12;
  config.max_cutaway_frames = 24;
  config.noise_sigma = 3.0;
  return config;
}

TEST(SynthesizerTest, ValidatesConfig) {
  TennisSynthConfig bad = SmallConfig();
  bad.num_points = 0;
  EXPECT_FALSE(TennisBroadcastSynthesizer(bad).Synthesize().ok());
  bad = SmallConfig();
  bad.width = 2;
  EXPECT_FALSE(TennisBroadcastSynthesizer(bad).Synthesize().ok());
  bad = SmallConfig();
  bad.noise_sigma = -1;
  EXPECT_FALSE(TennisBroadcastSynthesizer(bad).Synthesize().ok());
  bad = SmallConfig();
  bad.min_court_frames = 80;
  bad.max_court_frames = 60;
  EXPECT_FALSE(TennisBroadcastSynthesizer(bad).Synthesize().ok());
}

TEST(SynthesizerTest, ShotsTileTheTimeline) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  const Broadcast& b = *result;
  ASSERT_FALSE(b.truth.shots.empty());
  EXPECT_EQ(b.truth.shots.front().range.begin, 0);
  for (size_t i = 1; i < b.truth.shots.size(); ++i) {
    EXPECT_EQ(b.truth.shots[i].range.begin,
              b.truth.shots[i - 1].range.end + 1)
        << "shots must be contiguous";
  }
  EXPECT_EQ(b.truth.shots.back().range.end, b.video->num_frames() - 1);
  EXPECT_EQ(static_cast<int64_t>(b.truth.players_by_frame.size()),
            b.video->num_frames());
}

TEST(SynthesizerTest, CourtShotCountMatchesPoints) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  int court_shots = 0;
  for (const auto& s : result->truth.shots) {
    if (s.category == ShotCategory::kTennis) ++court_shots;
  }
  EXPECT_EQ(court_shots, SmallConfig().num_points);
}

TEST(SynthesizerTest, DeterministicForSeed) {
  auto a = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  auto b = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->video->num_frames(), b->video->num_frames());
  for (int64_t i : {int64_t{0}, a->video->num_frames() / 2,
                    a->video->num_frames() - 1}) {
    Frame fa = a->video->GetFrame(i).TakeValue();
    Frame fb = b->video->GetFrame(i).TakeValue();
    ASSERT_EQ(fa.pixels().size(), fb.pixels().size());
    EXPECT_TRUE(std::equal(fa.pixels().begin(), fa.pixels().end(),
                           fb.pixels().begin(),
                           [](const Rgb& x, const Rgb& y) { return x == y; }))
        << "frame " << i << " differs between identical configs";
  }
}

TEST(SynthesizerTest, DifferentSeedsProduceDifferentTimelines) {
  TennisSynthConfig c2 = SmallConfig();
  c2.seed = 777;
  auto a = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  auto b = TennisBroadcastSynthesizer(c2).Synthesize();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->truth.shots.size() * 1000000 + a->video->num_frames(),
            b->truth.shots.size() * 1000000 + b->video->num_frames());
}

TEST(SynthesizerTest, PlayersPresentExactlyInCourtShots) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  const Broadcast& b = *result;
  for (const auto& shot : b.truth.shots) {
    for (int64_t f = shot.range.begin; f <= shot.range.end; ++f) {
      const auto& players = b.truth.players_by_frame[static_cast<size_t>(f)];
      if (shot.category == ShotCategory::kTennis) {
        ASSERT_EQ(players.size(), 2u) << "frame " << f;
        EXPECT_EQ(players[0].player_id, 0);
        EXPECT_EQ(players[1].player_id, 1);
      } else {
        EXPECT_TRUE(players.empty()) << "frame " << f;
      }
    }
  }
}

TEST(SynthesizerTest, NearPlayerBelowFarPlayer) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  CourtGeometry geom = CourtGeometry::ForFrame(SmallConfig().width,
                                               SmallConfig().height);
  for (const auto& players : result->truth.players_by_frame) {
    if (players.empty()) continue;
    EXPECT_GT(players[0].center.y, geom.net_y);
    EXPECT_LT(players[1].center.y, geom.net_y);
  }
}

TEST(SynthesizerTest, EventsLieInsideCourtShots) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  const Broadcast& b = *result;
  for (const auto& e : b.truth.events) {
    EXPECT_FALSE(e.range.Empty()) << e.name;
    EXPECT_EQ(b.truth.CategoryAt(e.range.begin), ShotCategory::kTennis)
        << e.name << " " << e.range.ToString();
    EXPECT_EQ(b.truth.CategoryAt(e.range.end), ShotCategory::kTennis);
  }
  // Every point has a serve and a rally.
  EXPECT_EQ(b.truth.EventsNamed(kEventServe).size(),
            static_cast<size_t>(SmallConfig().num_points));
  EXPECT_EQ(b.truth.EventsNamed(kEventRally).size(),
            static_cast<size_t>(SmallConfig().num_points));
}

TEST(SynthesizerTest, NetApproachProbabilityZeroMeansNoNetPlay) {
  TennisSynthConfig config = SmallConfig();
  config.net_approach_prob = 0.0;
  auto result = TennisBroadcastSynthesizer(config).Synthesize();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truth.EventsNamed(kEventNetPlay).empty());
}

TEST(SynthesizerTest, NetApproachProbabilityOneProducesNetPlay) {
  TennisSynthConfig config = SmallConfig();
  config.net_approach_prob = 1.0;
  config.num_points = 4;
  config.min_court_frames = 150;
  config.max_court_frames = 200;
  auto result = TennisBroadcastSynthesizer(config).Synthesize();
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->truth.EventsNamed(kEventNetPlay).size(), 3u);
}

TEST(SynthesizerTest, CutPositionsMatchShotStarts) {
  auto result = TennisBroadcastSynthesizer(SmallConfig()).Synthesize();
  ASSERT_TRUE(result.ok());
  auto cuts = result->truth.CutPositions();
  EXPECT_EQ(cuts.size(), result->truth.shots.size() - 1);
  for (size_t i = 0; i < cuts.size(); ++i) {
    EXPECT_EQ(cuts[i], result->truth.shots[i + 1].range.begin);
  }
}

TEST(SynthesizerTest, StandaloneFramesHaveCategoryCues) {
  TennisBroadcastSynthesizer synth(SmallConfig());
  Frame tennis = synth.RenderStandalone(ShotCategory::kTennis, 1);
  Frame closeup = synth.RenderStandalone(ShotCategory::kCloseUp, 2);

  // Court frame: plenty of court-blue pixels.
  int court_pixels = 0;
  for (const Rgb& p : tennis.pixels()) {
    if (p.b > p.r && p.b > p.g && p.b > 120) ++court_pixels;
  }
  EXPECT_GT(court_pixels, tennis.PixelCount() / 4);

  // Close-up frame: plenty of skin pixels.
  int skin_pixels = 0;
  for (const Rgb& p : closeup.pixels()) {
    if (IsSkinColor(p)) ++skin_pixels;
  }
  EXPECT_GT(skin_pixels, closeup.PixelCount() / 10);
}

TEST(GroundTruthTest, CategoryNames) {
  EXPECT_STREQ(ShotCategoryToString(ShotCategory::kTennis), "tennis");
  EXPECT_STREQ(ShotCategoryToString(ShotCategory::kCloseUp), "close-up");
  EXPECT_STREQ(ShotCategoryToString(ShotCategory::kAudience), "audience");
  EXPECT_STREQ(ShotCategoryToString(ShotCategory::kOther), "other");
}

}  // namespace
}  // namespace cobra::media
