#include <gtest/gtest.h>

#include <cmath>

#include "detectors/compressed_shot_boundary.h"
#include "media/block_codec.h"
#include "media/dct.h"
#include "media/tennis_synthesizer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cobra::media {
namespace {

// ---------- DCT ----------

TEST(DctTest, RoundTripIsLossless) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    PixelBlock block;
    for (auto& v : block) v = static_cast<int16_t>(rng.NextInt(-255, 255));
    DctBlock coeffs;
    ForwardDct(block, &coeffs);
    PixelBlock back;
    InverseDct(coeffs, &back);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(back[static_cast<size_t>(i)], block[static_cast<size_t>(i)], 1)
          << "trial " << trial << " index " << i;
    }
  }
}

TEST(DctTest, DcCoefficientIsScaledMean) {
  PixelBlock block;
  block.fill(100);
  DctBlock coeffs;
  ForwardDct(block, &coeffs);
  EXPECT_NEAR(coeffs[0], 100.0 * 8.0, 1e-6);  // orthonormal: DC = 8 * mean
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coeffs[i], 0.0, 1e-9);
}

TEST(DctTest, ParsevalEnergyPreserved) {
  Rng rng(9);
  PixelBlock block;
  for (auto& v : block) v = static_cast<int16_t>(rng.NextInt(-128, 127));
  DctBlock coeffs;
  ForwardDct(block, &coeffs);
  double energy_pixels = 0, energy_coeffs = 0;
  for (int i = 0; i < 64; ++i) {
    energy_pixels += static_cast<double>(block[static_cast<size_t>(i)]) *
                     block[static_cast<size_t>(i)];
    energy_coeffs += coeffs[static_cast<size_t>(i)] * coeffs[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(energy_pixels, energy_coeffs, energy_pixels * 1e-9);
}

TEST(DctTest, QuantizationHigherQualityLowerError) {
  Rng rng(11);
  PixelBlock block;
  for (auto& v : block) v = static_cast<int16_t>(rng.NextInt(-128, 127));
  DctBlock coeffs;
  ForwardDct(block, &coeffs);
  auto error_at = [&](int quality) {
    std::array<int16_t, 64> q;
    Quantize(coeffs, quality, false, &q);
    DctBlock back;
    Dequantize(q, quality, false, &back);
    double err = 0;
    for (int i = 0; i < 64; ++i) err += std::fabs(back[i] - coeffs[i]);
    return err;
  };
  EXPECT_LT(error_at(95), error_at(50));
  EXPECT_LT(error_at(50), error_at(10));
}

TEST(DctTest, ZigzagRoundTrip) {
  std::array<int16_t, 64> block;
  for (int i = 0; i < 64; ++i) block[static_cast<size_t>(i)] = static_cast<int16_t>(i * 3 - 90);
  std::array<int16_t, 64> zz, back;
  ZigzagScan(block, &zz);
  ZigzagUnscan(zz, &back);
  EXPECT_EQ(block, back);
  // Zigzag starts at DC and visits each position once.
  EXPECT_EQ(kZigzagOrder[0], 0);
  std::array<bool, 64> seen{};
  for (uint8_t p : kZigzagOrder) seen[p] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

// ---------- Codec ----------

TennisSynthConfig CodecVideoConfig() {
  TennisSynthConfig config;
  config.width = 96;
  config.height = 80;
  config.num_points = 2;
  config.min_court_frames = 50;
  config.max_court_frames = 70;
  config.min_cutaway_frames = 10;
  config.max_cutaway_frames = 16;
  config.noise_sigma = 2.0;
  config.seed = 3;
  return config;
}

const Broadcast& CodecBroadcast() {
  static const Broadcast* b = [] {
    auto r = TennisBroadcastSynthesizer(CodecVideoConfig()).Synthesize();
    EXPECT_TRUE(r.ok());
    return new Broadcast(std::move(r).TakeValue());
  }();
  return *b;
}

TEST(CodecTest, RejectsBadConfig) {
  const Broadcast& b = CodecBroadcast();
  CodecConfig config;
  config.quality = 0;
  EXPECT_FALSE(BlockVideoEncoder::Encode(*b.video, config).ok());
  config = CodecConfig{};
  config.gop_size = 0;
  EXPECT_FALSE(BlockVideoEncoder::Encode(*b.video, config).ok());
  MemoryVideo empty({}, 25.0);
  EXPECT_FALSE(BlockVideoEncoder::Encode(empty, CodecConfig{}).ok());
}

TEST(CodecTest, CompressesAndReconstructsFaithfully) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  EXPECT_EQ(encoded.num_frames(), b.video->num_frames());
  EXPECT_GT(encoded.CompressionRatio(), 4.0)
      << "expected at least 4x over raw RGB";

  CodedVideoSource decoded(std::move(encoded));
  RunningStats psnr;
  for (int64_t f = 0; f < decoded.num_frames(); f += 7) {
    Frame original = b.video->GetFrame(f).TakeValue();
    Frame reconstructed = decoded.GetFrame(f).TakeValue();
    psnr.Add(ComputePsnr(original, reconstructed).TakeValue());
  }
  // The crowd mosaics (3px random-hue blocks) are chroma content that 4:2:0
  // subsampling cannot represent; ~25 dB overall is the content's bound,
  // not a codec defect (verified against an I-frame-only q=100 encode).
  EXPECT_GT(psnr.min(), 22.0) << "mean PSNR " << psnr.mean();
  EXPECT_GT(psnr.mean(), 24.0);
}

TEST(CodecTest, QualityKnobTradesSizeForFidelity) {
  const Broadcast& b = CodecBroadcast();
  CodecConfig low, high;
  low.quality = 30;
  high.quality = 90;
  auto coarse = BlockVideoEncoder::Encode(*b.video, low).TakeValue();
  auto fine = BlockVideoEncoder::Encode(*b.video, high).TakeValue();
  EXPECT_LT(coarse.TotalBytes(), fine.TotalBytes());

  CodedVideoSource coarse_video(std::move(coarse));
  CodedVideoSource fine_video(std::move(fine));
  Frame original = b.video->GetFrame(20).TakeValue();
  double coarse_psnr =
      ComputePsnr(original, coarse_video.GetFrame(20).TakeValue()).TakeValue();
  double fine_psnr =
      ComputePsnr(original, fine_video.GetFrame(20).TakeValue()).TakeValue();
  EXPECT_GT(fine_psnr, coarse_psnr);
}

TEST(CodecTest, RandomAccessMatchesSequentialDecode) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  CodedVideoSource sequential(encoded);
  CodedVideoSource random(std::move(encoded));

  // Decode a few frames sequentially on one decoder.
  std::vector<Frame> expected;
  for (int64_t f = 0; f <= 40; ++f) {
    expected.push_back(sequential.GetFrame(f).TakeValue());
  }
  // Access the same frames out of order on the other.
  for (int64_t f : {40, 0, 25, 13, 39, 1, 40}) {
    Frame got = random.GetFrame(f).TakeValue();
    const Frame& want = expected[static_cast<size_t>(f)];
    ASSERT_TRUE(got.SameSizeAs(want));
    EXPECT_TRUE(std::equal(got.pixels().begin(), got.pixels().end(),
                           want.pixels().begin(),
                           [](const Rgb& x, const Rgb& y) { return x == y; }))
        << "frame " << f << " differs between access orders";
  }
}

TEST(CodecTest, GopStructure) {
  const Broadcast& b = CodecBroadcast();
  CodecConfig config;
  config.gop_size = 10;
  auto encoded = BlockVideoEncoder::Encode(*b.video, config).TakeValue();
  for (int64_t f = 0; f < encoded.num_frames(); ++f) {
    EXPECT_EQ(encoded.Stats(f).intra_frame, f % 10 == 0) << "frame " << f;
    EXPECT_GT(encoded.Stats(f).bytes, 0u);
  }
  // P frames should be smaller than I frames on average.
  double i_bytes = 0, p_bytes = 0;
  int i_count = 0, p_count = 0;
  for (int64_t f = 0; f < encoded.num_frames(); ++f) {
    if (encoded.Stats(f).intra_frame) {
      i_bytes += static_cast<double>(encoded.Stats(f).bytes);
      ++i_count;
    } else {
      p_bytes += static_cast<double>(encoded.Stats(f).bytes);
      ++p_count;
    }
  }
  EXPECT_LT(p_bytes / p_count, 0.6 * i_bytes / i_count);
}

TEST(CodecTest, OutOfRangeAccess) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  CodedVideoSource decoded(std::move(encoded));
  EXPECT_FALSE(decoded.GetFrame(-1).ok());
  EXPECT_FALSE(decoded.GetFrame(decoded.num_frames()).ok());
}

TEST(PsnrTest, Properties) {
  Frame a(8, 8, Rgb{100, 100, 100});
  EXPECT_DOUBLE_EQ(ComputePsnr(a, a).TakeValue(), 99.0);
  Frame b(8, 8, Rgb{110, 100, 100});
  double psnr = ComputePsnr(a, b).TakeValue();
  EXPECT_GT(psnr, 20.0);
  EXPECT_LT(psnr, 40.0);
  Frame c(4, 4);
  EXPECT_FALSE(ComputePsnr(a, c).ok());
}

// ---------- Compressed-domain shot detection ----------

TEST(CompressedShotTest, IntraRatioSpikesAtCuts) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  auto signal = detectors::CompressedShotBoundaryDetector::Signal(encoded);
  for (int64_t cut : b.truth.CutPositions()) {
    EXPECT_GT(signal[static_cast<size_t>(cut)], 0.4)
        << "no intra-ratio spike at cut " << cut;
  }
}

TEST(CompressedShotTest, DetectsCutsFromStatistics) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  detectors::CompressedShotBoundaryDetector detector;
  auto cuts = detector.Detect(encoded);
  PrecisionRecall pr = MatchWithTolerance(b.truth.CutPositions(), cuts, 2);
  EXPECT_GE(pr.F1(), 0.9) << pr.ToString();
}

TEST(CompressedShotTest, FrameZeroNeverFires) {
  const Broadcast& b = CodecBroadcast();
  auto encoded = BlockVideoEncoder::Encode(*b.video).TakeValue();
  detectors::CompressedShotBoundaryDetector detector;
  for (int64_t cut : detector.Detect(encoded)) EXPECT_GT(cut, 0);
}

}  // namespace
}  // namespace cobra::media
