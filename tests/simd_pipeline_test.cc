// Acceptance test for the kernel layer's exactness contract: running the
// full detector pipeline — shot boundaries, shot classification, player
// tracking — with kernels forced to the scalar tier must produce *identical*
// outputs to the best SIMD tier on the same binary (see DESIGN.md §4d for
// why this holds by construction). In a -DCOBRA_SIMD=OFF build (or on a CPU
// without SSE4.1) only the scalar tier exists and the test skips.

#include <gtest/gtest.h>

#include <vector>

#include "detectors/player_tracker.h"
#include "detectors/shot_boundary.h"
#include "detectors/shot_classifier.h"
#include "media/tennis_synthesizer.h"
#include "vision/kernels.h"

namespace cobra::detectors {
namespace {

using media::Broadcast;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;
using vision::kernels::ActiveLevel;
using vision::kernels::BestSupportedLevel;
using vision::kernels::SetActiveLevel;
using vision::kernels::SimdLevel;
using vision::kernels::SimdLevelName;

const Broadcast& SharedBroadcast() {
  static const Broadcast* broadcast = [] {
    TennisSynthConfig config;
    config.width = 128;
    config.height = 96;
    config.num_points = 3;
    config.min_court_frames = 50;
    config.max_court_frames = 80;
    config.min_cutaway_frames = 16;
    config.max_cutaway_frames = 24;
    config.noise_sigma = 4.0;
    config.seed = 9;
    auto result = TennisBroadcastSynthesizer(config).Synthesize();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return new Broadcast(std::move(result).TakeValue());
  }();
  return *broadcast;
}

struct PipelineOutput {
  std::vector<double> distances;
  std::vector<int64_t> boundaries;
  std::vector<FrameInterval> gradual;
  std::vector<ClassifiedShot> shots;
  std::vector<PlayerTrack> tracks;
};

PipelineOutput RunPipeline(const Broadcast& b, SimdLevel level) {
  const SimdLevel previous = SetActiveLevel(level);
  EXPECT_EQ(ActiveLevel(), level);
  PipelineOutput out;

  ShotBoundaryDetector boundary_detector;
  auto boundaries = boundary_detector.Detect(*b.video);
  EXPECT_TRUE(boundaries.ok()) << boundaries.status().ToString();
  out.distances = boundaries->distances;
  out.boundaries = boundaries->boundaries;
  out.gradual = boundaries->gradual;

  std::vector<FrameInterval> shot_ranges;
  for (const auto& s : b.truth.shots) shot_ranges.push_back(s.range);
  ShotClassifier classifier;
  auto classified = classifier.ClassifyAll(*b.video, shot_ranges);
  EXPECT_TRUE(classified.ok()) << classified.status().ToString();
  out.shots = std::move(classified).TakeValue();

  for (const auto& s : b.truth.shots) {
    if (s.category != media::ShotCategory::kTennis) continue;
    PlayerTracker tracker;
    auto tracked = tracker.Track(*b.video, s.range);
    EXPECT_TRUE(tracked.ok()) << tracked.status().ToString();
    for (auto& track : tracked->tracks) out.tracks.push_back(std::move(track));
    break;  // one tracked shot exercises every tracker kernel
  }

  SetActiveLevel(previous);
  return out;
}

void ExpectIdentical(const PipelineOutput& a, const PipelineOutput& b) {
  // Distances are doubles produced by the fixed-tree kernels: bit-identical.
  ASSERT_EQ(a.distances.size(), b.distances.size());
  for (size_t i = 0; i < a.distances.size(); ++i) {
    ASSERT_EQ(a.distances[i], b.distances[i]) << "distance " << i;
  }
  EXPECT_EQ(a.boundaries, b.boundaries);
  ASSERT_EQ(a.gradual.size(), b.gradual.size());
  for (size_t i = 0; i < a.gradual.size(); ++i) {
    EXPECT_EQ(a.gradual[i], b.gradual[i]);
  }

  ASSERT_EQ(a.shots.size(), b.shots.size());
  for (size_t i = 0; i < a.shots.size(); ++i) {
    SCOPED_TRACE("shot " + std::to_string(i));
    EXPECT_EQ(a.shots[i].category, b.shots[i].category);
    EXPECT_EQ(a.shots[i].range, b.shots[i].range);
    const ShotFeatures& fa = a.shots[i].features;
    const ShotFeatures& fb = b.shots[i].features;
    EXPECT_EQ(fa.dominant_ratio, fb.dominant_ratio);
    EXPECT_EQ(fa.dominant_hue, fb.dominant_hue);
    EXPECT_EQ(fa.dominant_saturation, fb.dominant_saturation);
    EXPECT_EQ(fa.dominant_value, fb.dominant_value);
    EXPECT_EQ(fa.skin_ratio, fb.skin_ratio);
    EXPECT_EQ(fa.entropy, fb.entropy);
    EXPECT_EQ(fa.luma_mean, fb.luma_mean);
    EXPECT_EQ(fa.luma_variance, fb.luma_variance);
  }

  ASSERT_EQ(a.tracks.size(), b.tracks.size());
  for (size_t t = 0; t < a.tracks.size(); ++t) {
    SCOPED_TRACE("track " + std::to_string(t));
    EXPECT_EQ(a.tracks[t].player_id, b.tracks[t].player_id);
    ASSERT_EQ(a.tracks[t].points.size(), b.tracks[t].points.size());
    for (size_t p = 0; p < a.tracks[t].points.size(); ++p) {
      const TrackPoint& pa = a.tracks[t].points[p];
      const TrackPoint& pb = b.tracks[t].points[p];
      ASSERT_EQ(pa.frame, pb.frame);
      ASSERT_EQ(pa.predicted_only, pb.predicted_only) << "point " << p;
      ASSERT_EQ(pa.bbox, pb.bbox) << "point " << p;
      ASSERT_EQ(pa.center.x, pb.center.x) << "point " << p;
      ASSERT_EQ(pa.center.y, pb.center.y) << "point " << p;
    }
  }
}

TEST(SimdPipelineTest, ScalarAndSimdTiersProduceIdenticalDetectorOutputs) {
  if (BestSupportedLevel() == SimdLevel::kScalar) {
    GTEST_SKIP() << "scalar-only build/CPU: nothing to cross-check";
  }
  const Broadcast& b = SharedBroadcast();
  const PipelineOutput scalar_out = RunPipeline(b, SimdLevel::kScalar);
  const PipelineOutput simd_out = RunPipeline(b, BestSupportedLevel());
  SCOPED_TRACE(std::string("simd tier: ") + SimdLevelName(BestSupportedLevel()));
  ExpectIdentical(scalar_out, simd_out);
}

// Every *pair* of available tiers must agree, not just scalar vs best —
// SSE4.1 stays honest even on AVX2 hosts.
TEST(SimdPipelineTest, IntermediateTierAgreesWithScalar) {
  if (vision::kernels::OpsFor(SimdLevel::kSse41) == nullptr ||
      BestSupportedLevel() == SimdLevel::kSse41) {
    GTEST_SKIP() << "no distinct intermediate tier";
  }
  const Broadcast& b = SharedBroadcast();
  const PipelineOutput scalar_out = RunPipeline(b, SimdLevel::kScalar);
  const PipelineOutput sse_out = RunPipeline(b, SimdLevel::kSse41);
  ExpectIdentical(scalar_out, sse_out);
}

}  // namespace
}  // namespace cobra::detectors
