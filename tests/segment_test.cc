/// \file segment_test.cc
/// Durable segment storage (DESIGN.md §4h):
///   * TableSerde delta roundtrips, including string dictionary deltas and
///     the out-of-order-application guard;
///   * whole-segment write/open/restore roundtrips, single segment and a
///     base+delta chain with pending interviews;
///   * mmap-backed (zero-copy) vs heap-backed restored text indexes answer
///     bit-identically;
///   * corruption hardening: mutated headers, section payloads, checksums
///     and truncations must fail cleanly with Status, never crash (run
///     under asan/ubsan in CI);
///   * WAL framing roundtrip and torn-tail truncation semantics.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/meta_index.h"
#include "core/video_description.h"
#include "storage/segment/format.h"
#include "storage/segment/io.h"
#include "storage/segment/segment.h"
#include "storage/segment/wal.h"
#include "storage/table.h"
#include "text/compressed_index.h"
#include "text/inverted_index.h"
#include "util/rng.h"
#include "vision/signature.h"
#include "webspace/site_synthesizer.h"
#include "webspace/store.h"

namespace cobra::storage::segment {
namespace {

using storage::ColumnDef;
using storage::DataType;
using storage::Table;
using storage::Value;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// TableSerde deltas.

Table MakeMixedTable() {
  return Table::Create({{"id", DataType::kInt64},
                        {"score", DataType::kDouble},
                        {"name", DataType::kString}})
      .TakeValue();
}

void AppendMixedRows(Table* table, int64_t begin, int64_t end) {
  const char* names[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int64_t i = begin; i < end; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value{i}, Value{i * 0.25},
                                 Value{std::string(names[i % 5]) +
                                       (i % 7 == 0 ? std::to_string(i) : "")}})
                    .ok());
  }
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.GetValue(r, c).TakeValue(), b.GetValue(r, c).TakeValue())
          << "row " << r << " col " << c;
    }
    // Derived stats must be rebuilt identically (zone maps fold into the
    // range; NDV counts dictionary entries / distinct values).
    const auto sa = a.Stats(c).TakeValue();
    const auto sb = b.Stats(c).TakeValue();
    EXPECT_EQ(sa.rows, sb.rows);
    EXPECT_EQ(sa.ndv, sb.ndv);
    EXPECT_EQ(sa.range.imin, sb.range.imin);
    EXPECT_EQ(sa.range.imax, sb.range.imax);
  }
}

TEST(TableSerdeTest, DeltaRoundtripWithStringDictionary) {
  Table original = MakeMixedTable();
  AppendMixedRows(&original, 0, 3000);  // crosses a zone-map block boundary

  ByteWriter base;
  ASSERT_TRUE(TableSerde::WriteDelta(original, 0, &base).ok());

  Table restored = MakeMixedTable();
  ByteReader base_in(base.buffer().data(), base.size());
  ASSERT_TRUE(TableSerde::ApplyDelta(&restored, &base_in).ok());
  ExpectTablesEqual(original, restored);

  // Second window: new rows reuse old dictionary entries and add new ones.
  AppendMixedRows(&original, 3000, 4500);
  ByteWriter delta;
  ASSERT_TRUE(TableSerde::WriteDelta(original, 3000, &delta).ok());
  ByteReader delta_in(delta.buffer().data(), delta.size());
  ASSERT_TRUE(TableSerde::ApplyDelta(&restored, &delta_in).ok());
  ExpectTablesEqual(original, restored);
}

TEST(TableSerdeTest, OutOfOrderDeltaIsRejected) {
  Table original = MakeMixedTable();
  AppendMixedRows(&original, 0, 100);
  ByteWriter delta;
  ASSERT_TRUE(TableSerde::WriteDelta(original, 50, &delta).ok());

  Table empty = MakeMixedTable();  // expects a delta starting at row 0
  ByteReader in(delta.buffer().data(), delta.size());
  EXPECT_FALSE(TableSerde::ApplyDelta(&empty, &in).ok());
}

TEST(TableSerdeTest, ArityMismatchIsRejected) {
  Table original = MakeMixedTable();
  AppendMixedRows(&original, 0, 10);
  ByteWriter delta;
  ASSERT_TRUE(TableSerde::WriteDelta(original, 0, &delta).ok());

  Table narrow = Table::Create({{"id", DataType::kInt64}}).TakeValue();
  ByteReader in(delta.buffer().data(), delta.size());
  EXPECT_FALSE(TableSerde::ApplyDelta(&narrow, &in).ok());
}

// ---------------------------------------------------------------------------
// Whole-segment roundtrips over a synthesized library.

struct Fixture {
  webspace::WebspaceStore store;
  core::MetaIndex meta;
  text::InvertedIndex text;
  std::vector<int64_t> video_oids;
  std::map<int64_t, std::string> interviews;
  std::vector<vision::SignatureRecord> signatures;
};

std::vector<vision::SignatureRecord> MakeSignatures(
    const std::vector<int64_t>& video_oids) {
  std::vector<vision::SignatureRecord> records;
  Rng rng(17);
  for (int64_t oid : video_oids) {
    for (int64_t shot = 0; shot < 4; ++shot) {
      vision::SignatureRecord rec;
      for (uint64_t& word : rec.sig.hash) word = rng.NextU64();
      for (uint8_t& byte : rec.sig.sketch) {
        byte = static_cast<uint8_t>(rng.NextBounded(256));
      }
      rec.video_id = oid;
      rec.begin = shot * 100;
      rec.end = shot * 100 + 99;
      records.push_back(rec);
    }
  }
  return records;
}

core::VideoDescription MakeVideo(int64_t oid, uint64_t seed) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(seed);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 20; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

std::vector<std::string> MakeTokens(Rng* rng, size_t count) {
  const char* vocabulary[] = {"net",   "play",  "serve", "champion", "title",
                              "rally", "smash", "volley", "ace",     "match"};
  std::vector<std::string> tokens;
  for (size_t i = 0; i < count; ++i) {
    tokens.push_back(vocabulary[rng->NextBounded(10)]);
  }
  return tokens;
}

Fixture MakeFixture() {
  webspace::SiteConfig config;
  config.num_players = 12;
  config.num_past_years = 3;
  config.videos_per_year = 1;
  config.seed = 7;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();

  Fixture out{std::move(site.store), core::MetaIndex::Create().TakeValue(),
              text::InvertedIndex(), std::move(site.video_oids),
              std::move(site.interview_texts), {}};
  Rng rng(11);
  for (const auto& [oid, body] : out.interviews) {
    (void)body;
    EXPECT_TRUE(out.text.AddDocument(oid, MakeTokens(&rng, 60)).ok());
  }
  EXPECT_TRUE(out.text.Finalize().ok());
  for (int64_t oid : out.video_oids) {
    EXPECT_TRUE(
        out.meta.AddVideo(MakeVideo(oid, static_cast<uint64_t>(oid))).ok());
  }
  out.signatures = MakeSignatures(out.video_oids);
  return out;
}

LibraryDelta FullDelta(const Fixture& fixture,
                       const text::CompressedInvertedIndex* compressed) {
  LibraryDelta delta;
  delta.index_epoch = 5;
  delta.store = &fixture.store;
  delta.class_from_rows.assign(fixture.store.schema().classes().size(), 0);
  delta.assoc_from_rows.assign(fixture.store.schema().associations().size(),
                               0);
  delta.meta = &fixture.meta;
  delta.new_video_oids = fixture.video_oids;
  delta.text = &fixture.text;
  delta.compressed_text = compressed;
  if (!fixture.signatures.empty()) {
    delta.signature_chunks = {
        {fixture.signatures.data(), fixture.signatures.size()}};
  }
  return delta;
}

void ExpectSameSearch(const text::InvertedIndex& a,
                      const text::InvertedIndex& b) {
  const char* queries[] = {"net play", "champion title", "serve ace match",
                           "volley", "smash rally net"};
  for (const char* query : queries) {
    auto ha = a.SearchTopN(query, 5).TakeValue();
    auto hb = b.SearchTopN(query, 5).TakeValue();
    ASSERT_EQ(ha.size(), hb.size()) << query;
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].doc_id, hb[i].doc_id) << query;
      // Bit-identical scores, not approximately equal.
      uint64_t bits_a = 0, bits_b = 0;
      std::memcpy(&bits_a, &ha[i].score, 8);
      std::memcpy(&bits_b, &hb[i].score, 8);
      EXPECT_EQ(bits_a, bits_b) << query;
    }
  }
}

TEST(SegmentTest, SingleSegmentRoundtrip) {
  Fixture fixture = MakeFixture();
  auto compressed =
      text::CompressedInvertedIndex::FromIndex(fixture.text).TakeValue();
  const std::string path = TempPath("seg_roundtrip.cseg");
  ASSERT_TRUE(WriteSegment(FullDelta(fixture, &compressed), path).ok());

  auto reader = SegmentReader::Open(path).TakeValue();
  EXPECT_EQ(reader->index_epoch(), 5);
  EXPECT_TRUE(reader->text_finalized());
  EXPECT_EQ(reader->new_video_oids(), fixture.video_oids);
  ASSERT_TRUE(reader->has_section(SectionId::kTextCompressed));

  // The signature section maps back zero-copy and bit-identical.
  ASSERT_TRUE(reader->has_section(SectionId::kSignatures));
  auto chunk = reader->SignatureChunk().TakeValue();
  ASSERT_EQ(chunk.second, fixture.signatures.size());
  EXPECT_EQ(std::memcmp(chunk.first, fixture.signatures.data(),
                        chunk.second * sizeof(vision::SignatureRecord)),
            0);
  // The raw records are 64-aligned in the map, ready for SIMD loads.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(chunk.first) % 64, 0u);

  auto parts = RestoreFromSegments({reader.get()}, false).TakeValue();
  EXPECT_EQ(parts.index_epoch, 5);
  ASSERT_EQ(parts.signature_chunks.size(), 1u);
  EXPECT_EQ(parts.signature_chunks[0].second, fixture.signatures.size());
  EXPECT_EQ(parts.indexed_videos, fixture.video_oids);
  ASSERT_TRUE(parts.text.has_value());
  EXPECT_TRUE(parts.pending_interviews.empty());
  ExpectSameSearch(fixture.text, *parts.text);

  // Webspace tables roundtrip exactly, then rebuild into a valid store.
  for (const auto& cls : fixture.store.schema().classes()) {
    const Table* original = fixture.store.ClassTable(cls.name).TakeValue();
    ASSERT_TRUE(parts.class_tables.count(cls.name));
    ExpectTablesEqual(*original, parts.class_tables.at(cls.name));
  }
  auto store = webspace::WebspaceStore::Restore(
                   parts.schema, std::move(parts.class_tables),
                   std::move(parts.assoc_tables))
                   .TakeValue();
  auto meta = core::MetaIndex::FromTables(
                  std::move(parts.shots), std::move(parts.objects),
                  std::move(parts.events),
                  static_cast<int64_t>(parts.indexed_videos.size()))
                  .TakeValue();
  ExpectTablesEqual(fixture.meta.events(), meta.events());
  EXPECT_EQ(meta.num_videos(), fixture.meta.num_videos());
  auto scenes = meta.FindScenes("net_play").TakeValue();
  EXPECT_EQ(scenes.size(), fixture.meta.FindScenes("net_play")->size());
  (void)store;
}

TEST(SegmentTest, DeltaChainWithPendingInterviews) {
  webspace::SiteConfig config;
  config.num_players = 8;
  config.num_past_years = 2;
  config.seed = 13;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  webspace::WebspaceStore& store = site.store;
  auto meta = core::MetaIndex::Create().TakeValue();

  // Segment 0: the base snapshot, text still open with two pending docs.
  LibraryDelta base;
  base.index_epoch = 1;
  base.store = &store;
  base.class_from_rows.assign(store.schema().classes().size(), 0);
  base.assoc_from_rows.assign(store.schema().associations().size(), 0);
  base.meta = &meta;
  base.pending_interviews = {{101, "net play champion"},
                             {102, "serve ace title"}};
  const std::string base_path = TempPath("seg_chain_0.cseg");
  ASSERT_TRUE(WriteSegment(base, base_path).ok());

  // Mutate: new player, one more pending doc, one indexed video.
  std::vector<int64_t> class_from, assoc_from;
  for (const auto& cls : store.schema().classes()) {
    class_from.push_back(store.ClassTable(cls.name).TakeValue()->num_rows());
  }
  for (const auto& assoc : store.schema().associations()) {
    assoc_from.push_back(
        store.AssociationTable(assoc.name).TakeValue()->num_rows());
  }
  auto player = store.Insert(
      "Player", {Value{std::string("Newcomer")}, Value{std::string("female")},
                 Value{std::string("left")}, Value{std::string("AUS")},
                 Value{int64_t{99}}});
  ASSERT_TRUE(player.ok());
  const int64_t video_oid = site.video_oids.front();
  ASSERT_TRUE(meta.AddVideo(MakeVideo(video_oid, 3)).ok());

  LibraryDelta delta;
  delta.index_epoch = 2;
  delta.store = &store;
  delta.class_from_rows = class_from;
  delta.assoc_from_rows = assoc_from;
  delta.meta = &meta;
  delta.new_video_oids = {video_oid};
  delta.pending_interviews = {{103, "rally smash volley"}};
  const std::string delta_path = TempPath("seg_chain_1.cseg");
  ASSERT_TRUE(WriteSegment(delta, delta_path).ok());

  auto base_reader = SegmentReader::Open(base_path).TakeValue();
  auto delta_reader = SegmentReader::Open(delta_path).TakeValue();
  auto parts =
      RestoreFromSegments({base_reader.get(), delta_reader.get()}, false)
          .TakeValue();
  EXPECT_EQ(parts.index_epoch, 2);
  EXPECT_FALSE(parts.text.has_value());
  ASSERT_EQ(parts.pending_interviews.size(), 3u);
  EXPECT_EQ(parts.pending_interviews[0].first, 101);
  EXPECT_EQ(parts.pending_interviews[2].first, 103);
  EXPECT_EQ(parts.indexed_videos, std::vector<int64_t>{video_oid});
  for (const auto& cls : store.schema().classes()) {
    ExpectTablesEqual(*store.ClassTable(cls.name).TakeValue(),
                      parts.class_tables.at(cls.name));
  }
  auto restored = webspace::WebspaceStore::Restore(
                      parts.schema, std::move(parts.class_tables),
                      std::move(parts.assoc_tables))
                      .TakeValue();
  EXPECT_EQ(restored.GetAttribute("Player", *player, "ranking").TakeValue(),
            Value{int64_t{99}});
}

TEST(SegmentTest, MmapAndHeapTextAreBitIdentical) {
  Fixture fixture = MakeFixture();
  auto compressed =
      text::CompressedInvertedIndex::FromIndex(fixture.text).TakeValue();
  const std::string path = TempPath("seg_bitident.cseg");
  ASSERT_TRUE(WriteSegment(FullDelta(fixture, &compressed), path).ok());
  auto reader = SegmentReader::Open(path).TakeValue();

  auto mapped = reader->LoadTextIndex(/*copy=*/false).TakeValue();
  auto heap = reader->LoadTextIndex(/*copy=*/true).TakeValue();
  ExpectSameSearch(fixture.text, mapped);
  ExpectSameSearch(mapped, heap);

  // Copies of a view-backed index keep working (span re-pointing rules).
  text::InvertedIndex mapped_copy = mapped;
  ExpectSameSearch(fixture.text, mapped_copy);

  // The compressed snapshot decodes identically in both modes.
  auto compressed_mapped =
      reader->LoadCompressedText(/*copy=*/false).TakeValue();
  auto compressed_heap = reader->LoadCompressedText(/*copy=*/true).TakeValue();
  EXPECT_EQ(compressed_mapped.num_terms(), compressed.num_terms());
  compressed_mapped.ForEachTerm([&](const std::string& term, double idf,
                                    const text::CompressedPostings& postings) {
    (void)idf;
    const text::CompressedPostings* other = nullptr;
    compressed_heap.ForEachTerm([&](const std::string& heap_term, double,
                                    const text::CompressedPostings& heap_p) {
      if (heap_term == term) other = &heap_p;
    });
    ASSERT_NE(other, nullptr) << term;
    ASSERT_EQ(postings.count(), other->count()) << term;
    text::CompressedPostings::Cursor a(postings), b(*other);
    text::DecodedPosting pa, pb;
    while (true) {
      const bool more_a = a.Next(&pa);
      const bool more_b = b.Next(&pb);
      ASSERT_EQ(more_a, more_b) << term;
      if (!more_a) break;
      EXPECT_EQ(pa.doc_id, pb.doc_id) << term;
      EXPECT_EQ(pa.weight, pb.weight) << term;
    }
    EXPECT_TRUE(a.ok() && b.ok()) << term;
  });
}

// ---------------------------------------------------------------------------
// Corruption hardening. Every mutated or truncated file must produce a
// clean Status failure or a successful open whose loads are themselves
// clean — never UB (this test runs under asan and ubsan in CI).

std::vector<uint8_t> ReadAll(const std::string& path) {
  auto map = MmapFile::Open(path).TakeValue();
  return std::vector<uint8_t>(map.data(), map.data() + map.size());
}

void ExpectCleanOpen(const std::string& path) {
  auto reader = SegmentReader::Open(path);
  if (!reader.ok()) return;  // clean failure
  // A "lucky" mutation (padding, ignored bytes) may open; every decode
  // path must then either succeed or fail cleanly.
  std::optional<webspace::ConceptSchema> schema;
  std::map<std::string, Table> class_tables, assoc_tables;
  (void)(*reader)->ApplyWebspace(&schema, &class_tables, &assoc_tables);
  Table shots, objects, events;
  if (CreateMetaTables(&shots, &objects, &events).ok()) {
    (void)(*reader)->ApplyMeta(&shots, &objects, &events);
  }
  (void)(*reader)->LoadTextIndex(true);
  (void)(*reader)->LoadCompressedText(true);
  (void)(*reader)->PendingInterviews();
  (void)(*reader)->SignatureChunk();
}

TEST(SegmentCorruptionTest, MutatedBytesFailCleanly) {
  Fixture fixture = MakeFixture();
  auto compressed =
      text::CompressedInvertedIndex::FromIndex(fixture.text).TakeValue();
  const std::string path = TempPath("seg_fuzz.cseg");
  ASSERT_TRUE(WriteSegment(FullDelta(fixture, &compressed), path).ok());
  const std::vector<uint8_t> pristine = ReadAll(path);
  const std::string mutated_path = TempPath("seg_fuzz_mut.cseg");

  Rng rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = pristine;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    ASSERT_TRUE(
        WriteFileAtomic(mutated_path, mutated.data(), mutated.size()).ok());
    ExpectCleanOpen(mutated_path);
  }
}

TEST(SegmentCorruptionTest, TargetedHeaderAndSectionCorruptionFails) {
  Fixture fixture = MakeFixture();
  const std::string path = TempPath("seg_target.cseg");
  ASSERT_TRUE(WriteSegment(FullDelta(fixture, nullptr), path).ok());
  const std::vector<uint8_t> pristine = ReadAll(path);
  const std::string mutated_path = TempPath("seg_target_mut.cseg");

  auto expect_open_fails = [&](std::vector<uint8_t> bytes) {
    ASSERT_TRUE(WriteFileAtomic(mutated_path, bytes.data(), bytes.size()).ok());
    EXPECT_FALSE(SegmentReader::Open(mutated_path).ok());
  };

  // Magic, version, header CRC.
  for (size_t pos : {size_t{0}, size_t{8}, size_t{12}}) {
    std::vector<uint8_t> bytes = pristine;
    bytes[pos] ^= 0xFF;
    expect_open_fails(std::move(bytes));
  }
  // First byte of every section payload (each is CRC-covered).
  {
    std::vector<uint8_t> bytes = pristine;
    bytes[kPageSize] ^= 0x01;  // first section starts at the first page
    expect_open_fails(std::move(bytes));
  }
  // Truncations: mid-header, mid-table, mid-payload.
  for (size_t keep : {size_t{10}, size_t{100}, pristine.size() / 2,
                      pristine.size() - 1}) {
    expect_open_fails(
        std::vector<uint8_t>(pristine.begin(), pristine.begin() + keep));
  }
}

TEST(SegmentCorruptionTest, SignatureRecordValidationRejectsBadFields) {
  // The signature section is handed out as a zero-copy view, so the loader
  // must reject field values a correct writer can never produce — a CRC
  // pass alone does not make the records meaningful.
  Fixture fixture = MakeFixture();
  const std::string path = TempPath("seg_sig_bad.cseg");
  const std::vector<vision::SignatureRecord> pristine = fixture.signatures;
  for (int which = 0; which < 3; ++which) {
    fixture.signatures = pristine;
    vision::SignatureRecord& rec = fixture.signatures[2];
    switch (which) {
      case 0:
        rec.video_id = -7;
        break;
      case 1:
        rec.begin = -1;
        break;
      case 2:
        rec.begin = 50;
        rec.end = 10;
        break;
    }
    ASSERT_TRUE(WriteSegment(FullDelta(fixture, nullptr), path).ok());
    auto reader = SegmentReader::Open(path).TakeValue();
    EXPECT_FALSE(reader->SignatureChunk().ok()) << "variant " << which;
    EXPECT_FALSE(RestoreFromSegments({reader.get()}, false).ok())
        << "variant " << which;
  }
}

TEST(SegmentCorruptionTest, VarintRegionCorruptionInCompressedText) {
  // Mutations inside the varbyte blob flip the section CRC, so a full-
  // verify open fails; a kNone open must still decode cleanly or error.
  Fixture fixture = MakeFixture();
  auto compressed =
      text::CompressedInvertedIndex::FromIndex(fixture.text).TakeValue();
  const std::string path = TempPath("seg_varint.cseg");
  ASSERT_TRUE(WriteSegment(FullDelta(fixture, &compressed), path).ok());
  const std::vector<uint8_t> pristine = ReadAll(path);
  const std::string mutated_path = TempPath("seg_varint_mut.cseg");

  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> mutated = pristine;
    // The compressed-text section lives in the back half of the file.
    const size_t pos =
        mutated.size() / 2 + rng.NextBounded(mutated.size() / 2);
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    ASSERT_TRUE(
        WriteFileAtomic(mutated_path, mutated.data(), mutated.size()).ok());
    auto reader = SegmentReader::Open(mutated_path, SegmentReader::Verify::kNone);
    if (!reader.ok()) continue;
    auto loaded = (*reader)->LoadCompressedText(true);
    if (!loaded.ok()) continue;
    loaded->ForEachTerm([](const std::string&, double,
                           const text::CompressedPostings& postings) {
      text::CompressedPostings::Cursor cursor(postings);
      text::DecodedPosting posting;
      while (cursor.Next(&posting)) {
      }
    });
  }
}

// ---------------------------------------------------------------------------
// WAL framing.

TEST(WalTest, RoundtripAndTornTail) {
  const std::string path = TempPath("wal_roundtrip.wal");
  {
    auto wal = WalWriter::Open(path, /*sync_each=*/false).TakeValue();
    ASSERT_TRUE(wal.AppendInterview(7, "net play champion").ok());
    ASSERT_TRUE(wal.AppendVideo(MakeVideo(42, 1)).ok());
    ASSERT_TRUE(wal.AppendFinalizeText().ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  auto records = ReplayWal(path).TakeValue();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].type, WalRecordType::kAddInterview);
  EXPECT_EQ(records[0].interview_oid, 7);
  EXPECT_EQ(records[0].interview_text, "net play champion");
  EXPECT_EQ(records[1].type, WalRecordType::kAddVideo);
  EXPECT_EQ(records[1].video.video_id(), 42);
  EXPECT_EQ(records[1].video.Layer(core::CobraLayer::kEvent).size(), 20u);
  EXPECT_EQ(records[2].type, WalRecordType::kFinalizeText);

  // Truncating at every offset yields a clean prefix, never an error.
  const std::vector<uint8_t> full = ReadAll(path);
  const std::string torn_path = TempPath("wal_torn.wal");
  size_t max_records = 0;
  for (size_t keep = 0; keep < full.size(); ++keep) {
    ASSERT_TRUE(WriteFileAtomic(torn_path, full.data(), keep).ok());
    auto torn = ReplayWal(torn_path);
    ASSERT_TRUE(torn.ok()) << "offset " << keep;
    ASSERT_LE(torn->size(), 3u);
    max_records = std::max(max_records, torn->size());
    for (size_t i = 0; i < torn->size(); ++i) {
      EXPECT_EQ((*torn)[i].type, records[i].type);
    }
  }
  EXPECT_EQ(max_records, 2u);  // one byte short of the last frame

  // Corrupting a middle byte drops that record and the tail.
  std::vector<uint8_t> corrupt = full;
  corrupt[9] ^= 0x40;  // inside record 0's payload
  ASSERT_TRUE(WriteFileAtomic(torn_path, corrupt.data(), corrupt.size()).ok());
  EXPECT_TRUE(ReplayWal(torn_path)->empty());

  EXPECT_TRUE(ReplayWal(TempPath("wal_missing.wal"))->empty());
}

TEST(WalTest, SignatureRecordsRoundtrip) {
  const std::string path = TempPath("wal_signatures.wal");
  const std::vector<vision::SignatureRecord> records = MakeSignatures({42, 43});
  {
    auto wal = WalWriter::Open(path, /*sync_each=*/false).TakeValue();
    ASSERT_TRUE(wal.AppendSignatures(42, records).ok());
    ASSERT_TRUE(wal.AppendSignatures(7, {}).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  auto replayed = ReplayWal(path).TakeValue();
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].type, WalRecordType::kAddSignatures);
  EXPECT_EQ(replayed[0].signature_video, 42);
  ASSERT_EQ(replayed[0].signatures.size(), records.size());
  EXPECT_EQ(std::memcmp(replayed[0].signatures.data(), records.data(),
                        records.size() * sizeof(vision::SignatureRecord)),
            0);
  EXPECT_EQ(replayed[1].type, WalRecordType::kAddSignatures);
  EXPECT_EQ(replayed[1].signature_video, 7);
  EXPECT_TRUE(replayed[1].signatures.empty());

  // A torn tail drops the last record cleanly, never errors.
  const std::vector<uint8_t> full = ReadAll(path);
  const std::string torn = TempPath("wal_signatures_torn.wal");
  ASSERT_TRUE(WriteFileAtomic(torn, full.data(), full.size() - 1).ok());
  EXPECT_EQ(ReplayWal(torn)->size(), 1u);
}

TEST(WalTest, VideoDescriptionCodecRoundtrip) {
  core::VideoDescription desc(9, "title with spaces", 29.97, 1234);
  desc.Add(core::CobraLayer::kFeature,
           grammar::Annotation("tennis", {0, 100}).Set("entropy", 0.75));
  desc.Add(core::CobraLayer::kEvent, grammar::Annotation("net_play", {5, 50})
                                         .Set("player", int64_t{1})
                                         .Set("note", std::string("close")));
  ByteWriter out;
  EncodeVideoDescription(desc, &out);
  ByteReader in(out.buffer().data(), out.size());
  auto decoded = DecodeVideoDescription(&in).TakeValue();
  EXPECT_EQ(decoded.video_id(), 9);
  EXPECT_EQ(decoded.title(), "title with spaces");
  EXPECT_EQ(decoded.fps(), 29.97);
  EXPECT_EQ(decoded.num_frames(), 1234);
  ASSERT_EQ(decoded.Layer(core::CobraLayer::kFeature).size(), 1u);
  const auto& shot = decoded.Layer(core::CobraLayer::kFeature)[0];
  EXPECT_EQ(shot.symbol, "tennis");
  EXPECT_EQ(std::get<double>(shot.attrs.at("entropy")), 0.75);
  const auto& event = decoded.Layer(core::CobraLayer::kEvent)[0];
  EXPECT_EQ(std::get<int64_t>(event.attrs.at("player")), 1);
  EXPECT_EQ(std::get<std::string>(event.attrs.at("note")), "close");
}

}  // namespace
}  // namespace cobra::storage::segment
