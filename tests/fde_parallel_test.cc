/// \file fde_parallel_test.cc
/// Wave-scheduled FDE execution: determinism (1 vs N threads produce
/// bit-identical blackboards, on a synthetic DAG and on the full tennis
/// pipeline over a synthesized broadcast), wave structure, and the shared
/// frame-feature cache.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/tennis_fde.h"
#include "grammar/fde.h"
#include "grammar/feature_grammar.h"
#include "media/tennis_synthesizer.h"
#include "media/video.h"
#include "util/thread_pool.h"
#include "vision/frame_feature_cache.h"

namespace cobra {
namespace {

using grammar::Annotation;
using grammar::DetectionContext;
using grammar::FdeConfig;
using grammar::FeatureDetectorEngine;
using grammar::FeatureGrammar;

// ---------- wave structure ----------

TEST(ExecutionWavesTest, TennisGrammarLevels) {
  auto g = FeatureGrammar::Parse(core::TennisGrammarText()).TakeValue();
  const auto& waves = g.ExecutionWaves();
  ASSERT_EQ(waves.size(), 5u);
  EXPECT_EQ(waves[0], (std::vector<std::string>{"segment"}));
  EXPECT_EQ(waves[1], (std::vector<std::string>{"tennis", "closeup", "audience"}));
  EXPECT_EQ(waves[2], (std::vector<std::string>{"player"}));
  EXPECT_EQ(waves[3], (std::vector<std::string>{"features"}));
  EXPECT_EQ(waves[4], (std::vector<std::string>{"serve", "rally", "net_play",
                                                "baseline_play"}));
}

TEST(ExecutionWavesTest, WavesConcatenateToValidTopologicalOrder) {
  auto g = FeatureGrammar::Parse(
               "start v ;\na : v ;\nb : v ;\nc : a b ;\nd : a ;\ne : c d ;")
               .TakeValue();
  const auto& waves = g.ExecutionWaves();
  ASSERT_EQ(waves.size(), 3u);
  EXPECT_EQ(waves[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(waves[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(waves[2], (std::vector<std::string>{"e"}));
  size_t total = 0;
  for (const auto& wave : waves) total += wave.size();
  EXPECT_EQ(total, g.ExecutionOrder().size());
}

// ---------- deterministic parallel runs ----------

media::MemoryVideo SmallVideo() {
  std::vector<media::Frame> frames;
  for (int i = 0; i < 6; ++i) frames.emplace_back(8, 8);
  return media::MemoryVideo(std::move(frames), 25.0);
}

/// Builds a diamond-DAG engine whose detectors run concurrently in wave 1
/// and record their wave timing.
void RegisterDiamond(FeatureDetectorEngine* fde, std::atomic<int>* concurrent,
                     std::atomic<int>* peak) {
  ASSERT_TRUE(fde->RegisterDetector("a", [](const DetectionContext&) {
                   std::vector<Annotation> out;
                   out.emplace_back("", FrameInterval{0, 5});
                   return out;
                 }).ok());
  for (const char* sym : {"b", "c", "d"}) {
    ASSERT_TRUE(fde->RegisterDetector(
                       sym,
                       [sym, concurrent, peak](const DetectionContext& ctx) {
                         int now = ++*concurrent;
                         int seen = peak->load();
                         while (now > seen &&
                                !peak->compare_exchange_weak(seen, now)) {
                         }
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds(20));
                         std::vector<Annotation> out;
                         Annotation a("", ctx.Of("a")[0].range);
                         a.Set("who", std::string(sym));
                         out.push_back(std::move(a));
                         --*concurrent;
                         return out;
                       })
                    .ok());
  }
  ASSERT_TRUE(fde->RegisterDetector("e", [](const DetectionContext& ctx) {
                   std::vector<Annotation> out;
                   Annotation a("", FrameInterval{0, 5});
                   a.Set("inputs",
                         static_cast<int64_t>(ctx.Of("b").size() +
                                              ctx.Of("c").size() +
                                              ctx.Of("d").size()));
                   out.push_back(std::move(a));
                   return out;
                 }).ok());
}

FeatureGrammar DiamondGrammar() {
  return FeatureGrammar::Parse(
             "start v ;\na : v ;\nb : a ;\nc : a ;\nd : a ;\ne : b c d ;")
      .TakeValue();
}

TEST(ParallelFdeTest, WaveDetectorsActuallyOverlap) {
  FdeConfig config;
  config.num_threads = 4;
  FeatureDetectorEngine fde(DiamondGrammar(), config);
  std::atomic<int> concurrent{0}, peak{0};
  RegisterDiamond(&fde, &concurrent, &peak);
  media::MemoryVideo video = SmallVideo();
  auto report = fde.Run(video);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(peak.load(), 2) << "wave 1 detectors never ran concurrently";
  ASSERT_EQ(report->waves.size(), 3u);
  EXPECT_EQ(report->waves[1].symbols.size(), 3u);
  EXPECT_EQ(fde.AnnotationsOf("e")[0].IntOr("inputs", 0), 3);
}

TEST(ParallelFdeTest, BlackboardIdenticalAcrossThreadCounts) {
  std::map<std::string, std::vector<Annotation>> reference;
  for (int threads : {1, 4}) {
    FdeConfig config;
    config.num_threads = threads;
    FeatureDetectorEngine fde(DiamondGrammar(), config);
    std::atomic<int> concurrent{0}, peak{0};
    RegisterDiamond(&fde, &concurrent, &peak);
    media::MemoryVideo video = SmallVideo();
    ASSERT_TRUE(fde.Run(video).ok());
    if (threads == 1) {
      reference = fde.blackboard();
      continue;
    }
    ASSERT_EQ(fde.blackboard().size(), reference.size());
    for (const auto& [symbol, annotations] : reference) {
      const auto& got = fde.AnnotationsOf(symbol);
      ASSERT_EQ(got.size(), annotations.size()) << symbol;
      for (size_t i = 0; i < annotations.size(); ++i) {
        EXPECT_EQ(got[i].symbol, annotations[i].symbol);
        EXPECT_EQ(got[i].range, annotations[i].range);
        EXPECT_EQ(got[i].attrs, annotations[i].attrs);
      }
    }
  }
}

TEST(ParallelFdeTest, FirstFailureInWaveOrderSurfaces) {
  FdeConfig config;
  config.num_threads = 4;
  FeatureDetectorEngine fde(DiamondGrammar(), config);
  ASSERT_TRUE(fde.RegisterDetector("a", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).ok());
  for (const char* sym : {"b", "c", "d"}) {
    ASSERT_TRUE(fde.RegisterDetector(
                       sym,
                       [sym](const DetectionContext&)
                           -> Result<std::vector<Annotation>> {
                         return Status::Internal(sym);
                       })
                    .ok());
  }
  bool ran_e = false;
  ASSERT_TRUE(fde.RegisterDetector("e", [&ran_e](const DetectionContext&) {
                   ran_e = true;
                   return std::vector<Annotation>{};
                 }).ok());
  media::MemoryVideo video = SmallVideo();
  auto report = fde.Run(video);
  ASSERT_FALSE(report.ok());
  // All of b, c, d failed; the error names the first in wave order.
  EXPECT_NE(report.status().message().find("'b'"), std::string::npos);
  EXPECT_FALSE(ran_e) << "waves after a failing wave must not run";
}

// ---------- end-to-end determinism on the tennis pipeline ----------

media::TennisSynthConfig BroadcastConfig() {
  media::TennisSynthConfig config;
  config.width = 120;
  config.height = 90;
  config.num_points = 3;
  config.min_court_frames = 60;
  config.max_court_frames = 90;
  config.min_cutaway_frames = 12;
  config.max_cutaway_frames = 20;
  config.noise_sigma = 3.0;
  config.net_approach_prob = 1.0;
  config.seed = 7;
  return config;
}

TEST(ParallelFdeTest, TennisIndexerBitIdenticalAcrossThreadCounts) {
  auto broadcast = media::TennisBroadcastSynthesizer(BroadcastConfig())
                       .Synthesize()
                       .TakeValue();

  std::map<std::string, std::vector<Annotation>> reference;
  for (int threads : {1, 4}) {
    core::TennisIndexerConfig config;
    config.fde.num_threads = threads;
    auto indexer = core::TennisVideoIndexer::Create(config).TakeValue();
    auto desc = indexer->Index(*broadcast.video, 1, "determinism");
    ASSERT_TRUE(desc.ok()) << desc.status().ToString();
    if (threads == 1) {
      reference = indexer->fde().blackboard();
      ASSERT_FALSE(reference.empty());
      continue;
    }
    const auto& got_board = indexer->fde().blackboard();
    ASSERT_EQ(got_board.size(), reference.size());
    for (const auto& [symbol, annotations] : reference) {
      const auto& got = indexer->fde().AnnotationsOf(symbol);
      ASSERT_EQ(got.size(), annotations.size()) << symbol;
      for (size_t i = 0; i < annotations.size(); ++i) {
        EXPECT_EQ(got[i].symbol, annotations[i].symbol) << symbol;
        EXPECT_EQ(got[i].range, annotations[i].range) << symbol;
        EXPECT_EQ(got[i].attrs, annotations[i].attrs) << symbol << " #" << i;
      }
    }
  }
}

TEST(ParallelFdeTest, CachingDoesNotChangeTennisOutput) {
  auto broadcast = media::TennisBroadcastSynthesizer(BroadcastConfig())
                       .Synthesize()
                       .TakeValue();

  core::TennisIndexerConfig uncached;
  uncached.fde.cache_bytes = 0;
  auto indexer_off = core::TennisVideoIndexer::Create(uncached).TakeValue();
  ASSERT_TRUE(indexer_off->Index(*broadcast.video, 1, "uncached").ok());

  core::TennisIndexerConfig cached;  // default cache on
  auto indexer_on = core::TennisVideoIndexer::Create(cached).TakeValue();
  ASSERT_TRUE(indexer_on->Index(*broadcast.video, 1, "cached").ok());

  ASSERT_NE(indexer_on->fde().frame_cache(), nullptr);
  EXPECT_EQ(indexer_off->fde().frame_cache(), nullptr);
  EXPECT_GT(indexer_on->fde().frame_cache()->stats().hits, 0);

  const auto& a = indexer_off->fde().blackboard();
  const auto& b = indexer_on->fde().blackboard();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [symbol, annotations] : a) {
    const auto& got = b.at(symbol);
    ASSERT_EQ(got.size(), annotations.size()) << symbol;
    for (size_t i = 0; i < annotations.size(); ++i) {
      EXPECT_EQ(got[i].range, annotations[i].range) << symbol;
      EXPECT_EQ(got[i].attrs, annotations[i].attrs) << symbol;
    }
  }
}

TEST(ParallelFdeTest, IncrementalRunKeepsWaveSemantics) {
  FdeConfig config;
  config.num_threads = 4;
  FeatureDetectorEngine fde(DiamondGrammar(), config);
  std::atomic<int> concurrent{0}, peak{0};
  RegisterDiamond(&fde, &concurrent, &peak);
  media::MemoryVideo video = SmallVideo();
  ASSERT_TRUE(fde.Run(video).ok());

  ASSERT_TRUE(fde.ReplaceDetector("c", [](const DetectionContext& ctx) {
                   std::vector<Annotation> out;
                   Annotation a("", ctx.Of("a")[0].range);
                   a.Set("who", std::string("c2"));
                   out.push_back(std::move(a));
                   return out;
                 }).ok());
  auto report = fde.RunIncremental(video);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  int cached = 0, executed = 0;
  for (const auto& d : report->detectors) {
    d.from_cache ? ++cached : ++executed;
  }
  EXPECT_EQ(cached, 3);    // a, b, d reused
  EXPECT_EQ(executed, 2);  // c and its downstream e re-ran
  EXPECT_EQ(fde.AnnotationsOf("c")[0].StringOr("who", ""), "c2");
}

// ---------- frame-feature cache ----------

media::MemoryVideo GradientVideo(int frames) {
  std::vector<media::Frame> out;
  for (int f = 0; f < frames; ++f) {
    media::Frame frame(16, 12);
    for (int y = 0; y < 12; ++y) {
      for (int x = 0; x < 16; ++x) {
        frame.At(x, y) = media::Rgb{static_cast<uint8_t>((x * 16 + f) & 0xff),
                                    static_cast<uint8_t>(y * 20),
                                    static_cast<uint8_t>(f * 3)};
      }
    }
    out.push_back(std::move(frame));
  }
  return media::MemoryVideo(std::move(out), 25.0);
}

TEST(FrameFeatureCacheTest, MemoizesAndMatchesDirectComputation) {
  media::MemoryVideo video = GradientVideo(4);
  vision::FrameFeatureCache cache(video);

  auto h1 = cache.GetHistogram(2, 1, 8);
  ASSERT_TRUE(h1.ok());
  auto h2 = cache.GetHistogram(2, 1, 8);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->get(), h2->get()) << "second lookup must hit";
  EXPECT_GT(cache.stats().hits, 0);

  auto direct_frame = video.GetFrame(2).TakeValue();
  auto direct =
      vision::ColorHistogram::FromFrame(direct_frame, 8).TakeValue();
  EXPECT_EQ((*h1)->values(), direct.values());

  auto skin = cache.GetSkinRatio(1);
  ASSERT_TRUE(skin.ok());
  EXPECT_DOUBLE_EQ(*skin,
                   vision::SkinPixelRatio(video.GetFrame(1).TakeValue()));

  auto gray = cache.GetGrayStats(1);
  ASSERT_TRUE(gray.ok());
  auto direct_gray = vision::ComputeGrayStats(video.GetFrame(1).TakeValue());
  EXPECT_DOUBLE_EQ(gray->entropy, direct_gray.entropy);
  EXPECT_DOUBLE_EQ(gray->mean, direct_gray.mean);
}

TEST(FrameFeatureCacheTest, EvictsUnderByteBudget) {
  media::MemoryVideo video = GradientVideo(64);
  vision::FrameFeatureCacheConfig config;
  // Room for only a handful of 16x12 frames (576 bytes + overhead each).
  config.cache_bytes = 4096;
  vision::FrameFeatureCache cache(video, config);
  for (int64_t f = 0; f < 64; ++f) {
    ASSERT_TRUE(cache.GetFrame(f, 1).ok());
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, config.cache_bytes);
  // Values stay correct after eviction.
  auto frame = cache.GetFrame(0, 1);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)->At(3, 2).g, video.GetFrame(0).TakeValue().At(3, 2).g);
}

TEST(FrameFeatureCacheTest, ZeroBudgetDisablesCaching) {
  media::MemoryVideo video = GradientVideo(4);
  vision::FrameFeatureCacheConfig config;
  config.cache_bytes = 0;
  vision::FrameFeatureCache cache(video, config);
  ASSERT_TRUE(cache.GetHistogram(0, 1, 8).ok());
  ASSERT_TRUE(cache.GetHistogram(0, 1, 8).ok());
  EXPECT_EQ(cache.stats().hits, 0);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(FrameFeatureCacheTest, ConcurrentLookupsAreSafeAndConsistent) {
  media::MemoryVideo video = GradientVideo(32);
  vision::FrameFeatureCache cache(video);
  util::ThreadPool pool(4);
  std::vector<double> ratios(32);
  // Every thread hammers overlapping frames; values must equal the direct
  // computation regardless of interleaving.
  pool.ParallelFor(0, 32 * 4, 1, [&](int64_t i) {
    int64_t f = i % 32;
    auto r = cache.GetSkinRatio(f);
    ASSERT_TRUE(r.ok());
    ratios[static_cast<size_t>(f)] = *r;
  });
  for (int64_t f = 0; f < 32; ++f) {
    EXPECT_DOUBLE_EQ(ratios[static_cast<size_t>(f)],
                     vision::SkinPixelRatio(video.GetFrame(f).TakeValue()));
  }
}

}  // namespace
}  // namespace cobra
