#include <gtest/gtest.h>

#include "detectors/shot_boundary.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"

namespace cobra::detectors {
namespace {

using media::Broadcast;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;

TennisSynthConfig DissolveConfig(double prob, uint64_t seed = 42) {
  TennisSynthConfig config;
  config.width = 112;
  config.height = 88;
  config.num_points = 4;
  config.min_court_frames = 70;
  config.max_court_frames = 100;
  config.min_cutaway_frames = 18;
  config.max_cutaway_frames = 28;
  config.noise_sigma = 3.0;
  config.dissolve_prob = prob;
  config.dissolve_frames = 12;
  config.seed = seed;
  return config;
}

TEST(DissolveSynthesisTest, TruthRecordsTransitions) {
  auto broadcast =
      TennisBroadcastSynthesizer(DissolveConfig(1.0)).Synthesize().TakeValue();
  const auto& truth = broadcast.truth;
  ASSERT_FALSE(truth.gradual_transitions.empty());
  // Every non-first shot begins with a dissolve at prob 1.0.
  EXPECT_EQ(truth.gradual_transitions.size(), truth.shots.size() - 1);
  for (const auto& transition : truth.gradual_transitions) {
    EXPECT_TRUE(truth.IsGradual(transition.begin));
    EXPECT_LE(transition.Length(), 12);
    EXPECT_GE(transition.Length(), 2);
  }
  EXPECT_TRUE(truth.HardCutPositions().empty());
}

TEST(DissolveSynthesisTest, ZeroProbMeansAllHardCuts) {
  auto broadcast =
      TennisBroadcastSynthesizer(DissolveConfig(0.0)).Synthesize().TakeValue();
  EXPECT_TRUE(broadcast.truth.gradual_transitions.empty());
  EXPECT_EQ(broadcast.truth.HardCutPositions().size(),
            broadcast.truth.shots.size() - 1);
}

TEST(DissolveSynthesisTest, BlendedFramesInterpolate) {
  auto broadcast =
      TennisBroadcastSynthesizer(DissolveConfig(1.0)).Synthesize().TakeValue();
  const auto& transition = broadcast.truth.gradual_transitions.front();
  // A blended frame sits between its neighbors in pixel space: the distance
  // signal across the dissolve is spread out, never a single spike.
  ShotBoundaryDetector detector;
  auto distances = detector.ComputeDistances(*broadcast.video).TakeValue();
  double max_step = 0.0;
  int elevated = 0;
  for (int64_t f = transition.begin - 1; f <= transition.end; ++f) {
    double d = distances[static_cast<size_t>(f)];
    max_step = std::max(max_step, d);
    if (d > 0.1) ++elevated;
  }
  // The scene change is spread over the blend (many elevated steps), not
  // concentrated in one cut-sized spike.
  EXPECT_LT(max_step, 1.2);
  EXPECT_GE(elevated, 5) << "dissolve difference should be spread out";
}

TEST(GradualDetectionTest, HardCutDetectorMissesDissolves) {
  auto broadcast =
      TennisBroadcastSynthesizer(DissolveConfig(1.0)).Synthesize().TakeValue();
  ShotBoundaryDetector detector;  // gradual detection off
  auto result = detector.Detect(*broadcast.video).TakeValue();
  // The hard-cut detector finds (almost) nothing — the motivation for the
  // twin-comparison extension.
  std::vector<int64_t> all_cuts = broadcast.truth.CutPositions();
  PrecisionRecall pr = MatchWithTolerance(all_cuts, result.boundaries, 2);
  EXPECT_LT(pr.Recall(), 0.4) << pr.ToString();
}

TEST(GradualDetectionTest, TwinComparisonFindsDissolves) {
  ShotBoundaryConfig config;
  config.detect_gradual = true;
  ShotBoundaryDetector detector(config);

  PrecisionRecall pr;
  for (uint64_t seed : {42, 43, 44}) {
    auto broadcast = TennisBroadcastSynthesizer(DissolveConfig(1.0, seed))
                         .Synthesize()
                         .TakeValue();
    auto result = detector.Detect(*broadcast.video).TakeValue();
    std::vector<int64_t> truth_starts, detected_starts;
    for (const auto& t : broadcast.truth.gradual_transitions) {
      truth_starts.push_back(t.begin);
    }
    for (const auto& t : result.gradual) detected_starts.push_back(t.begin);
    PrecisionRecall one =
        MatchWithTolerance(truth_starts, detected_starts, 4);
    pr.true_positives += one.true_positives;
    pr.false_positives += one.false_positives;
    pr.false_negatives += one.false_negatives;
  }
  EXPECT_GE(pr.Recall(), 0.7) << pr.ToString();
  EXPECT_GE(pr.Precision(), 0.7) << pr.ToString();
}

TEST(GradualDetectionTest, MixedTransitionsBothDetected) {
  auto broadcast = TennisBroadcastSynthesizer(DissolveConfig(0.5, 7))
                       .Synthesize()
                       .TakeValue();
  ShotBoundaryConfig config;
  config.detect_gradual = true;
  ShotBoundaryDetector detector(config);
  auto result = detector.Detect(*broadcast.video).TakeValue();

  // Hard cuts still found.
  PrecisionRecall hard = MatchWithTolerance(
      broadcast.truth.HardCutPositions(), result.boundaries, 2);
  EXPECT_GE(hard.Recall(), 0.8) << hard.ToString();

  // Combined (hard boundaries + gradual starts) covers all transitions.
  std::vector<int64_t> combined = result.boundaries;
  for (const auto& t : result.gradual) combined.push_back(t.begin);
  PrecisionRecall all =
      MatchWithTolerance(broadcast.truth.CutPositions(), combined, 4);
  EXPECT_GE(all.Recall(), 0.8) << all.ToString();
}

TEST(GradualDetectionTest, NoFalseDissolvesOnHardCutVideo) {
  auto broadcast =
      TennisBroadcastSynthesizer(DissolveConfig(0.0)).Synthesize().TakeValue();
  ShotBoundaryConfig config;
  config.detect_gradual = true;
  ShotBoundaryDetector detector(config);
  auto result = detector.Detect(*broadcast.video).TakeValue();
  EXPECT_LE(result.gradual.size(), 1u)
      << "hard-cut-only video should yield (almost) no dissolves";
}

}  // namespace
}  // namespace cobra::detectors
