#include <gtest/gtest.h>

#include <cmath>

#include "detectors/court_model.h"
#include "detectors/event_rules.h"
#include "detectors/hmm.h"
#include "detectors/hmm_events.h"
#include "detectors/player_tracker.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"

namespace cobra::detectors {
namespace {

using media::Broadcast;
using media::ShotCategory;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;

TennisSynthConfig TrackConfig(uint64_t seed = 42) {
  TennisSynthConfig config;
  config.width = 160;
  config.height = 120;
  config.num_points = 4;
  config.min_court_frames = 100;
  config.max_court_frames = 160;
  config.min_cutaway_frames = 12;
  config.max_cutaway_frames = 20;
  config.noise_sigma = 3.0;
  config.net_approach_prob = 1.0;
  config.seed = seed;
  return config;
}

const Broadcast& SharedBroadcast() {
  static const Broadcast* b = [] {
    auto r = TennisBroadcastSynthesizer(TrackConfig()).Synthesize();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return new Broadcast(std::move(r).TakeValue());
  }();
  return *b;
}

std::vector<FrameInterval> CourtShots(const Broadcast& b) {
  std::vector<FrameInterval> out;
  for (const auto& s : b.truth.shots) {
    if (s.category == ShotCategory::kTennis) out.push_back(s.range);
  }
  return out;
}

// ---------- Court model ----------

TEST(CourtModelTest, EstimatesGeometryFromCourtFrame) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  ASSERT_FALSE(shots.empty());
  media::Frame frame = b.video->GetFrame(shots[0].begin).TakeValue();
  auto model = EstimateCourtModel(frame);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  media::CourtGeometry geom =
      media::CourtGeometry::ForFrame(frame.width(), frame.height());
  // The estimated net row should sit near the real one.
  EXPECT_NEAR(model->net_y, geom.net_y, 6);
  // The estimated court bbox should overlap the real court strongly.
  EXPECT_GE(model->court_bbox.Iou(geom.court), 0.7)
      << "estimated " << model->court_bbox.ToString() << " true "
      << geom.court.ToString();
}

TEST(CourtModelTest, CourtColorMatchesCourtNotPlayers) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  media::Frame frame = b.video->GetFrame(shots[0].begin).TakeValue();
  auto model = EstimateCourtModel(frame).TakeValue();
  EXPECT_TRUE(model.court_color.Matches(media::Rgb{48, 80, 176}, 4.0));
  EXPECT_FALSE(model.court_color.Matches(media::Rgb{208, 48, 48}, 4.0));
  EXPECT_FALSE(model.court_color.Matches(media::Rgb{208, 144, 112}, 4.0));
}

TEST(CourtModelTest, RejectsNonCourtFrame) {
  TennisBroadcastSynthesizer synth(TrackConfig());
  media::Frame audience = synth.RenderStandalone(ShotCategory::kAudience, 5);
  EXPECT_FALSE(EstimateCourtModel(audience).ok());
}

TEST(CourtModelTest, RejectsEmptyFrame) {
  EXPECT_FALSE(EstimateCourtModel(media::Frame()).ok());
}

// ---------- Player tracking ----------

TEST(PlayerTrackerTest, TracksBothPlayersThroughShot) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  PlayerTracker tracker;
  auto result = tracker.Track(*b.video, shots[0]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->tracks.size(), 2u);
  for (const PlayerTrack& track : result->tracks) {
    EXPECT_EQ(static_cast<int64_t>(track.points.size()), shots[0].Length());
    EXPECT_GE(track.ObservedFraction(), 0.8) << "player " << track.player_id;
  }
}

TEST(PlayerTrackerTest, TrackFollowsGroundTruth) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  PlayerTracker tracker;
  for (const FrameInterval& shot : shots) {
    auto result = tracker.Track(*b.video, shot);
    ASSERT_TRUE(result.ok());
    for (const PlayerTrack& track : result->tracks) {
      RunningStats err;
      for (const TrackPoint& p : track.points) {
        if (p.predicted_only) continue;
        const auto& players =
            b.truth.players_by_frame[static_cast<size_t>(p.frame)];
        ASSERT_EQ(players.size(), 2u);
        err.Add(p.center.DistanceTo(players[static_cast<size_t>(track.player_id)].center));
      }
      EXPECT_LT(err.mean(), 5.0)
          << "player " << track.player_id << " mean center error";
    }
  }
}

TEST(PlayerTrackerTest, RejectsBadShot) {
  const Broadcast& b = SharedBroadcast();
  PlayerTracker tracker;
  EXPECT_FALSE(tracker.Track(*b.video, FrameInterval{-5, 10}).ok());
  EXPECT_FALSE(tracker
                   .Track(*b.video, FrameInterval{0, b.video->num_frames() + 1})
                   .ok());
}

TEST(PlayerTrackerTest, FailsGracefullyOnNonCourtShot) {
  const Broadcast& b = SharedBroadcast();
  // Find an audience/other shot.
  for (const auto& s : b.truth.shots) {
    if (s.category == ShotCategory::kAudience ||
        s.category == ShotCategory::kOther) {
      PlayerTracker tracker;
      auto result = tracker.Track(*b.video, s.range);
      EXPECT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kDetectorError);
      return;
    }
  }
  GTEST_SKIP() << "no non-court shot in this broadcast";
}

TEST(PlayerTrackTest, CenterAtFindsFrames) {
  PlayerTrack track;
  track.points.push_back(TrackPoint{.frame = 5, .center = {1, 2}, .bbox = {}, .features = {}, .predicted_only = false});
  track.points.push_back(TrackPoint{.frame = 6, .center = {3, 4}, .bbox = {}, .features = {}, .predicted_only = false});
  PointD out;
  EXPECT_TRUE(track.CenterAt(6, &out));
  EXPECT_EQ(out.x, 3);
  EXPECT_FALSE(track.CenterAt(7, &out));
}

// ---------- Rule-based events ----------

TEST(EventRulesTest, DetectsScriptedEvents) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  PlayerTracker tracker;
  EventRuleEngine rules;

  std::vector<NamedInterval> truth, detected;
  for (const auto& e : b.truth.events) {
    truth.push_back(NamedInterval{e.name, e.player_id, e.range});
  }
  for (const FrameInterval& shot : shots) {
    auto tracking = tracker.Track(*b.video, shot);
    ASSERT_TRUE(tracking.ok());
    for (const DetectedEvent& e : rules.Detect(*tracking, shot)) {
      detected.push_back(NamedInterval{e.name, e.player_id, e.range});
    }
  }
  PrecisionRecall pr = MatchEvents(truth, detected, 0.3);
  EXPECT_GE(pr.Recall(), 0.6) << pr.ToString();
  EXPECT_GE(pr.Precision(), 0.6) << pr.ToString();

  // Net play specifically (config forces one approach per point).
  std::vector<NamedInterval> truth_net, det_net;
  for (const auto& e : truth) {
    if (e.name == media::kEventNetPlay) truth_net.push_back(e);
  }
  for (const auto& e : detected) {
    if (e.name == media::kEventNetPlay) det_net.push_back(e);
  }
  ASSERT_FALSE(truth_net.empty());
  PrecisionRecall net_pr = MatchEvents(truth_net, det_net, 0.3);
  EXPECT_GE(net_pr.Recall(), 0.6) << net_pr.ToString();
}

TEST(EventRulesTest, EmptyTrackingYieldsNoEvents) {
  TrackingResult empty;
  EventRuleEngine rules;
  EXPECT_TRUE(rules.Detect(empty, FrameInterval{0, 100}).empty());
}

TEST(IntervalIouTest, Values) {
  EXPECT_DOUBLE_EQ(IntervalIou({0, 9}, {0, 9}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalIou({0, 9}, {10, 19}), 0.0);
  EXPECT_NEAR(IntervalIou({0, 9}, {5, 14}), 5.0 / 15.0, 1e-12);
}

TEST(MatchEventsTest, NameAndPlayerMustAgree) {
  std::vector<NamedInterval> truth = {{"net_play", 0, {10, 30}}};
  // Wrong name.
  PrecisionRecall pr = MatchEvents(truth, {{"rally", 0, {10, 30}}});
  EXPECT_EQ(pr.true_positives, 0);
  // Wrong player.
  pr = MatchEvents(truth, {{"net_play", 1, {10, 30}}});
  EXPECT_EQ(pr.true_positives, 0);
  // Player wildcard (-1) matches.
  pr = MatchEvents(truth, {{"net_play", -1, {10, 30}}});
  EXPECT_EQ(pr.true_positives, 1);
}

// ---------- Discrete HMM ----------

TEST(HmmTest, SupervisedEstimationRecoversTransitions) {
  // Two states that strongly self-loop, distinct emissions.
  std::vector<std::vector<int>> states, symbols;
  for (int seq = 0; seq < 20; ++seq) {
    std::vector<int> st, sy;
    for (int t = 0; t < 50; ++t) {
      int s = t < 25 ? 0 : 1;
      st.push_back(s);
      sy.push_back(s == 0 ? 0 : 1);
    }
    states.push_back(st);
    symbols.push_back(sy);
  }
  auto hmm = DiscreteHmm::FromLabeledSequences(states, symbols, 2, 2, 0.1);
  ASSERT_TRUE(hmm.ok());
  EXPECT_GT(hmm->transition(0, 0), 0.9);
  EXPECT_GT(hmm->transition(1, 1), 0.9);
  EXPECT_GT(hmm->emission(0, 0), 0.95);
  EXPECT_GT(hmm->emission(1, 1), 0.95);
  EXPECT_GT(hmm->initial(0), 0.9);
}

TEST(HmmTest, ViterbiDecodesPlantedSequence) {
  std::vector<std::vector<int>> states = {{0, 0, 0, 1, 1, 1, 0, 0}};
  std::vector<std::vector<int>> symbols = {{0, 0, 0, 1, 1, 1, 0, 0}};
  // Train on many copies for sharp parameters.
  std::vector<std::vector<int>> st(30, states[0]), sy(30, symbols[0]);
  auto hmm = DiscreteHmm::FromLabeledSequences(st, sy, 2, 2, 0.05);
  ASSERT_TRUE(hmm.ok());
  auto path = hmm->Viterbi({0, 0, 1, 1, 0});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (std::vector<int>{0, 0, 1, 1, 0}));
}

TEST(HmmTest, ViterbiEmptyAndInvalid) {
  DiscreteHmm hmm(2, 3);
  EXPECT_TRUE(hmm.Viterbi({}).ok());
  EXPECT_TRUE(hmm.Viterbi({}).value().empty());
  EXPECT_FALSE(hmm.Viterbi({5}).ok());
  EXPECT_FALSE(hmm.Viterbi({-1}).ok());
}

TEST(HmmTest, LogLikelihoodPrefersTrainedPattern) {
  std::vector<std::vector<int>> st(20), sy(20);
  for (auto& s : st) s = std::vector<int>(40, 0);
  for (auto& s : sy) s = std::vector<int>(40, 0);
  auto hmm = DiscreteHmm::FromLabeledSequences(st, sy, 2, 2, 0.2);
  ASSERT_TRUE(hmm.ok());
  double ll_match = hmm->LogLikelihood(std::vector<int>(20, 0)).TakeValue();
  double ll_mismatch = hmm->LogLikelihood(std::vector<int>(20, 1)).TakeValue();
  EXPECT_GT(ll_match, ll_mismatch);
}

TEST(HmmTest, BaumWelchImprovesLikelihood) {
  // Observations generated by a 2-state process; start from uniform model.
  std::vector<std::vector<int>> obs;
  for (int seq = 0; seq < 10; ++seq) {
    std::vector<int> o;
    for (int t = 0; t < 60; ++t) o.push_back((t / 15) % 2);
    obs.push_back(o);
  }
  Rng rng(55);
  DiscreteHmm hmm = DiscreteHmm::Random(2, 2, &rng);
  double before = 0;
  for (const auto& o : obs) before += hmm.LogLikelihood(o).TakeValue();
  auto after = hmm.BaumWelch(obs, 10);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, before);
}

TEST(HmmTest, FromLabeledSequencesValidation) {
  EXPECT_FALSE(
      DiscreteHmm::FromLabeledSequences({{0}}, {{0}, {1}}, 2, 2).ok());
  EXPECT_FALSE(DiscreteHmm::FromLabeledSequences({{5}}, {{0}}, 2, 2).ok());
  EXPECT_FALSE(DiscreteHmm::FromLabeledSequences({{0}}, {{9}}, 2, 2).ok());
  EXPECT_FALSE(DiscreteHmm::FromLabeledSequences({{0, 0}}, {{0}}, 2, 2).ok());
}

// ---------- HMM event recognition ----------

TEST(HmmEventsTest, TruthStateSequenceMarksEvents) {
  const Broadcast& b = SharedBroadcast();
  auto shots = CourtShots(b);
  auto states = BuildTruthStateSequence(b.truth, 0, shots[0]);
  EXPECT_EQ(static_cast<int64_t>(states.size()), shots[0].Length());
  // The shot starts with a serve.
  EXPECT_EQ(states[0], kStateServe);
}

TEST(HmmEventsTest, TrainedRecognizerFindsNetPlay) {
  // Train on broadcasts with different seeds, evaluate on the shared one.
  PlayerTracker tracker;
  HmmEventRecognizer recognizer;
  std::vector<std::vector<int>> state_seqs, symbol_seqs;
  for (uint64_t seed : {101, 202, 303}) {
    auto train = TennisBroadcastSynthesizer(TrackConfig(seed)).Synthesize();
    ASSERT_TRUE(train.ok());
    for (const auto& s : train->truth.shots) {
      if (s.category != ShotCategory::kTennis) continue;
      auto tracking = tracker.Track(*train->video, s.range);
      if (!tracking.ok()) continue;
      for (const PlayerTrack& track : tracking->tracks) {
        state_seqs.push_back(
            BuildTruthStateSequence(train->truth, track.player_id, s.range));
        symbol_seqs.push_back(
            EncodeTrackSymbols(track, tracking->court, s.range));
      }
    }
  }
  ASSERT_TRUE(recognizer.Train(state_seqs, symbol_seqs).ok());
  ASSERT_TRUE(recognizer.trained());

  const Broadcast& b = SharedBroadcast();
  std::vector<NamedInterval> truth_net, det_net;
  for (const auto& e : b.truth.events) {
    if (e.name == media::kEventNetPlay) {
      truth_net.push_back(NamedInterval{e.name, e.player_id, e.range});
    }
  }
  for (const FrameInterval& shot : CourtShots(b)) {
    auto tracking = tracker.Track(*b.video, shot);
    ASSERT_TRUE(tracking.ok());
    for (const PlayerTrack& track : tracking->tracks) {
      auto events = recognizer.Recognize(track, tracking->court, shot);
      ASSERT_TRUE(events.ok());
      for (const DetectedEvent& e : *events) {
        if (e.name == media::kEventNetPlay) {
          det_net.push_back(NamedInterval{e.name, e.player_id, e.range});
        }
      }
    }
  }
  ASSERT_FALSE(truth_net.empty());
  PrecisionRecall pr = MatchEvents(truth_net, det_net, 0.3);
  EXPECT_GE(pr.Recall(), 0.6) << pr.ToString();
  EXPECT_GE(pr.Precision(), 0.5) << pr.ToString();
}

TEST(HmmEventsTest, UntrainedRecognizerFails) {
  HmmEventRecognizer recognizer;
  PlayerTrack track;
  CourtModel court;
  EXPECT_TRUE(recognizer.Recognize(track, court, FrameInterval{0, 10})
                  .status()
                  .code() == StatusCode::kFailedPrecondition);
}

TEST(HmmEventsTest, EncoderFillsGaps) {
  CourtModel court;
  court.court_bbox = RectI{10, 10, 100, 100};
  court.net_y = 60;
  PlayerTrack track;
  track.player_id = 0;
  // Only two observations in a 5-frame shot.
  track.points.push_back(TrackPoint{.frame = 1, .center = {50, 100}, .bbox = {}, .features = {}, .predicted_only = false});
  track.points.push_back(TrackPoint{.frame = 3, .center = {50, 62}, .bbox = {}, .features = {}, .predicted_only = false});
  auto symbols = EncodeTrackSymbols(track, court, FrameInterval{0, 4});
  ASSERT_EQ(symbols.size(), 5u);
  for (int s : symbols) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, kNumHmmSymbols);
  }
  // Frame 0 copies frame 1's symbol backward; frame 4 copies frame 3's.
  EXPECT_EQ(symbols[0], symbols[1]);
  EXPECT_EQ(symbols[4], symbols[3]);
}

}  // namespace
}  // namespace cobra::detectors
