#include <gtest/gtest.h>

#include <algorithm>

#include "detectors/compressed_shot_boundary.h"
#include "detectors/shot_boundary.h"
#include "detectors/shot_classifier.h"
#include "media/block_codec.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"

namespace cobra {
namespace {

using media::Broadcast;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;

TennisSynthConfig SweepConfig(uint64_t seed) {
  TennisSynthConfig config;
  config.width = 112;
  config.height = 88;
  config.num_points = 3;
  config.min_court_frames = 60;
  config.max_court_frames = 90;
  config.min_cutaway_frames = 10;
  config.max_cutaway_frames = 18;
  config.noise_sigma = 3.0;
  config.seed = seed;
  return config;
}

// ---------- Synthesizer invariants hold for every seed ----------

class SynthesizerSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthesizerSeedSweep, StructuralInvariants) {
  auto broadcast =
      TennisBroadcastSynthesizer(SweepConfig(GetParam())).Synthesize();
  ASSERT_TRUE(broadcast.ok());
  const media::GroundTruth& truth = broadcast->truth;
  const int64_t frames = broadcast->video->num_frames();

  // Shots tile the timeline.
  ASSERT_FALSE(truth.shots.empty());
  EXPECT_EQ(truth.shots.front().range.begin, 0);
  EXPECT_EQ(truth.shots.back().range.end, frames - 1);
  for (size_t i = 1; i < truth.shots.size(); ++i) {
    EXPECT_EQ(truth.shots[i].range.begin, truth.shots[i - 1].range.end + 1);
  }
  // Player truth exactly on court shots; positions within frame bounds.
  for (const auto& shot : truth.shots) {
    for (int64_t f = shot.range.begin; f <= shot.range.end; ++f) {
      const auto& players = truth.players_by_frame[static_cast<size_t>(f)];
      if (shot.category == media::ShotCategory::kTennis) {
        ASSERT_EQ(players.size(), 2u);
        for (const auto& p : players) {
          EXPECT_GE(p.center.x, 0);
          EXPECT_LT(p.center.x, broadcast->video->width());
        }
      } else {
        EXPECT_TRUE(players.empty());
      }
    }
  }
  // Events lie inside court shots and have positive length.
  for (const auto& e : truth.events) {
    EXPECT_GT(e.range.Length(), 0);
    EXPECT_EQ(truth.CategoryAt(e.range.begin), media::ShotCategory::kTennis);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizerSeedSweep,
                         ::testing::Values(1, 17, 99, 1234, 77777, 31337));

// ---------- Shot boundary quality persists across seeds ----------

class BoundarySeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundarySeedSweep, AdaptiveF1AboveNinety) {
  auto broadcast = TennisBroadcastSynthesizer(SweepConfig(GetParam()))
                       .Synthesize()
                       .TakeValue();
  detectors::ShotBoundaryDetector detector;
  auto result = detector.Detect(*broadcast.video).TakeValue();
  PrecisionRecall pr =
      MatchWithTolerance(broadcast.truth.CutPositions(), result.boundaries, 2);
  EXPECT_GE(pr.F1(), 0.9) << "seed " << GetParam() << ": " << pr.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundarySeedSweep,
                         ::testing::Values(5, 50, 500, 5000));

// ---------- Classifier accuracy persists across seeds ----------

class ClassifierSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassifierSeedSweep, AccuracyAboveNinety) {
  auto broadcast = TennisBroadcastSynthesizer(SweepConfig(GetParam()))
                       .Synthesize()
                       .TakeValue();
  detectors::ShotClassifier classifier;
  int correct = 0, total = 0;
  for (const auto& shot : broadcast.truth.shots) {
    auto classified = classifier.Classify(*broadcast.video, shot.range);
    ASSERT_TRUE(classified.ok());
    ++total;
    if (classified->category == shot.category) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / total, 0.9)
      << "seed " << GetParam() << ": " << correct << "/" << total;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierSeedSweep,
                         ::testing::Values(6, 66, 666));

// ---------- Codec round trip across qualities ----------

class CodecQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecQualitySweep, DecodesAndCompresses) {
  auto config = SweepConfig(8);
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast =
      TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  media::CodecConfig codec_config;
  codec_config.quality = GetParam();
  auto encoded =
      media::BlockVideoEncoder::Encode(*broadcast.video, codec_config)
          .TakeValue();
  // Quality 100 is near-lossless (quantizer 1): on noisy content the RLE
  // barely wins, which is the expected rate/distortion endpoint.
  EXPECT_GT(encoded.CompressionRatio(), GetParam() >= 100 ? 1.0 : 1.5)
      << "quality " << GetParam();
  media::CodedVideoSource decoded(std::move(encoded));
  media::Frame original = broadcast.video->GetFrame(10).TakeValue();
  media::Frame reconstructed = decoded.GetFrame(10).TakeValue();
  double psnr = media::ComputePsnr(original, reconstructed).TakeValue();
  EXPECT_GT(psnr, 18.0) << "quality " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Qualities, CodecQualitySweep,
                         ::testing::Values(10, 30, 50, 75, 90, 100));

// ---------- Compressed-domain detection across GOP sizes ----------

class GopSweep : public ::testing::TestWithParam<int> {};

TEST_P(GopSweep, CompressedDetectionWorks) {
  auto broadcast =
      TennisBroadcastSynthesizer(SweepConfig(21)).Synthesize().TakeValue();
  media::CodecConfig config;
  config.gop_size = GetParam();
  auto encoded =
      media::BlockVideoEncoder::Encode(*broadcast.video, config).TakeValue();
  detectors::CompressedShotBoundaryDetector detector;
  auto cuts = detector.Detect(encoded);
  PrecisionRecall pr =
      MatchWithTolerance(broadcast.truth.CutPositions(), cuts, 2);
  EXPECT_GE(pr.F1(), 0.85) << "gop " << GetParam() << ": " << pr.ToString();
}

INSTANTIATE_TEST_SUITE_P(Gops, GopSweep, ::testing::Values(6, 12, 30));

// ---------- Serialization round trip + failure injection ----------

media::EncodedVideo EncodeSmall() {
  auto config = SweepConfig(31);
  config.num_points = 1;
  config.include_cutaways = false;
  auto broadcast = TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  return media::BlockVideoEncoder::Encode(*broadcast.video).TakeValue();
}

TEST(CodecSerializationTest, RoundTripPreservesStreamsAndStats) {
  media::EncodedVideo encoded = EncodeSmall();
  std::vector<uint8_t> bytes = encoded.Serialize();
  auto back = media::EncodedVideo::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_frames(), encoded.num_frames());
  EXPECT_EQ(back->width(), encoded.width());
  EXPECT_EQ(back->config().gop_size, encoded.config().gop_size);
  for (int64_t f = 0; f < encoded.num_frames(); ++f) {
    EXPECT_EQ(back->FrameBits(f), encoded.FrameBits(f)) << "frame " << f;
    EXPECT_EQ(back->Stats(f).intra_frame, encoded.Stats(f).intra_frame);
    EXPECT_NEAR(back->Stats(f).intra_block_ratio,
                encoded.Stats(f).intra_block_ratio, 1e-4);
  }
  // Decoded pixels identical through the round trip.
  media::CodedVideoSource a(encoded);
  media::CodedVideoSource b(std::move(back).TakeValue());
  media::Frame fa = a.GetFrame(5).TakeValue();
  media::Frame fb = b.GetFrame(5).TakeValue();
  EXPECT_TRUE(std::equal(fa.pixels().begin(), fa.pixels().end(),
                         fb.pixels().begin(),
                         [](const media::Rgb& x, const media::Rgb& y) {
                           return x == y;
                         }));
}

TEST(CodecSerializationTest, RejectsCorruptHeaders) {
  media::EncodedVideo encoded = EncodeSmall();
  std::vector<uint8_t> bytes = encoded.Serialize();
  // Bad magic.
  auto bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_TRUE(media::EncodedVideo::Deserialize(bad).status().IsParseError());
  // Truncations at every header boundary.
  for (size_t cut : std::vector<size_t>{3, 10, 24, bytes.size() - 5}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_TRUE(media::EncodedVideo::Deserialize(truncated).status().IsParseError())
        << "cut at " << cut;
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_TRUE(media::EncodedVideo::Deserialize(padded).status().IsParseError());
}

TEST(CodecSerializationTest, CorruptPayloadFailsDecodeNotCrash) {
  media::EncodedVideo encoded = EncodeSmall();
  std::vector<uint8_t> bytes = encoded.Serialize();
  // Flip bytes in the middle of the first frame's payload (after the
  // 28-byte header + 4-byte length + frame type byte).
  for (size_t offset = 40; offset < 60 && offset < bytes.size(); ++offset) {
    bytes[offset] ^= 0xA5;
  }
  auto corrupt = media::EncodedVideo::Deserialize(bytes);
  if (!corrupt.ok()) return;  // framing caught it: also acceptable
  media::CodedVideoSource decoder(std::move(corrupt).TakeValue());
  // Decoding must either fail cleanly or produce a frame; never crash.
  auto frame = decoder.GetFrame(0);
  if (!frame.ok()) {
    EXPECT_TRUE(frame.status().IsParseError()) << frame.status().ToString();
  }
}

}  // namespace
}  // namespace cobra
