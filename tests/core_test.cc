#include <gtest/gtest.h>

#include "core/event_grammar.h"
#include "core/meta_index.h"
#include "core/tennis_fde.h"
#include "core/video_description.h"
#include "detectors/event_rules.h"
#include "media/tennis_synthesizer.h"

namespace cobra::core {
namespace {

using media::Broadcast;
using media::ShotCategory;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;

TennisSynthConfig IndexConfig(uint64_t seed = 42) {
  TennisSynthConfig config;
  config.width = 160;
  config.height = 120;
  config.num_points = 4;
  config.min_court_frames = 100;
  config.max_court_frames = 150;
  config.min_cutaway_frames = 14;
  config.max_cutaway_frames = 22;
  config.noise_sigma = 3.0;
  config.net_approach_prob = 1.0;
  config.seed = seed;
  return config;
}

const Broadcast& SharedBroadcast() {
  static const Broadcast* b = [] {
    auto r = TennisBroadcastSynthesizer(IndexConfig()).Synthesize();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return new Broadcast(std::move(r).TakeValue());
  }();
  return *b;
}

/// Indexes the shared broadcast once (FDE run is the expensive step).
const VideoDescription& SharedDescription() {
  static const VideoDescription* desc = [] {
    auto indexer = TennisVideoIndexer::Create().TakeValue();
    auto d = indexer->Index(*SharedBroadcast().video, 7, "final 2001");
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return new VideoDescription(std::move(d).TakeValue());
  }();
  return *desc;
}

// ---------- VideoDescription ----------

TEST(VideoDescriptionTest, LayersAndLookup) {
  VideoDescription desc(1, "test", 25.0, 1000);
  grammar::Annotation shot("segment", FrameInterval{0, 99});
  shot.Set("category", std::string("tennis"));
  desc.Add(CobraLayer::kFeature, shot);
  grammar::Annotation event("net_play", FrameInterval{40, 60});
  desc.Add(CobraLayer::kEvent, event);

  EXPECT_EQ(desc.Layer(CobraLayer::kFeature).size(), 1u);
  EXPECT_EQ(desc.Named(CobraLayer::kEvent, "net_play").size(), 1u);
  EXPECT_TRUE(desc.Named(CobraLayer::kEvent, "rally").empty());
  EXPECT_EQ(desc.In(CobraLayer::kEvent, FrameInterval{50, 55}).size(), 1u);
  EXPECT_TRUE(desc.In(CobraLayer::kEvent, FrameInterval{70, 80}).empty());
  EXPECT_EQ(desc.TotalEntities(), 2);
  EXPECT_DOUBLE_EQ(desc.FrameToSeconds(50), 2.0);
}

TEST(VideoDescriptionTest, EventsRelatedAllen) {
  VideoDescription desc(1, "t", 25.0, 1000);
  grammar::Annotation serve("serve", FrameInterval{0, 10});
  grammar::Annotation rally("rally", FrameInterval{11, 99});
  grammar::Annotation net("net_play", FrameInterval{40, 60});
  desc.Add(CobraLayer::kEvent, serve);
  desc.Add(CobraLayer::kEvent, rally);
  desc.Add(CobraLayer::kEvent, net);

  auto during = desc.EventsRelated(AllenRelation::kDuring, FrameInterval{11, 99});
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0].symbol, "net_play");
  auto meets = desc.EventsRelated(AllenRelation::kMeets, FrameInterval{11, 99});
  ASSERT_EQ(meets.size(), 1u);
  EXPECT_EQ(meets[0].symbol, "serve");
}

TEST(VideoDescriptionTest, LayerNames) {
  EXPECT_STREQ(CobraLayerToString(CobraLayer::kRawData), "raw-data");
  EXPECT_STREQ(CobraLayerToString(CobraLayer::kEvent), "event");
}

// ---------- Event grammar ----------

TEST(EventGrammarTest, ParsesDefaultRules) {
  auto g = EventGrammar::Parse(TennisEventRulesText());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->rules().size(), 3u);
  EXPECT_EQ(g->rules()[0].name, "serve");
  EXPECT_TRUE(g->rules()[0].at_start);
  EXPECT_EQ(g->rules()[1].conditions[0].channel, "net_distance");
}

TEST(EventGrammarTest, SyntaxErrors) {
  EXPECT_FALSE(EventGrammar::Parse("event x : a < 1 for 5").ok());  // no ';'
  EXPECT_FALSE(EventGrammar::Parse("event x : a ? 1 for 5 ;").ok());
  EXPECT_FALSE(EventGrammar::Parse("event x : a < b for 5 ;").ok());
  EXPECT_FALSE(EventGrammar::Parse("event x : a < 1 ;").ok());  // no 'for'
  EXPECT_FALSE(EventGrammar::Parse("event x : a < 1 for 0 ;").ok());
  EXPECT_FALSE(EventGrammar::Parse("event x : for 5 ;").ok());
  EXPECT_FALSE(EventGrammar::Parse("event x : a < 1 for 5 junk ;").ok());
  EXPECT_TRUE(EventGrammar::Parse("# only comments\n").ok());
}

TEST(EventGrammarTest, ConjunctionAndRuns) {
  auto g = EventGrammar::Parse(
               "event mid_move : zone < 0.5 and speed > 1.0 for 3 ;")
               .TakeValue();
  Trajectory trajectory(FrameInterval{100, 109});
  ASSERT_TRUE(trajectory
                  .AddChannel("zone", {0.9, 0.4, 0.4, 0.4, 0.4, 0.9, 0.4, 0.4,
                                       0.4, 0.9})
                  .ok());
  ASSERT_TRUE(trajectory
                  .AddChannel("speed", {2, 2, 2, 2, 0.5, 2, 2, 2, 2, 2})
                  .ok());
  auto events = g.Infer(trajectory, 0).TakeValue();
  // zone holds on [1..4] and [6..8]; speed breaks frame 4 -> runs [1..3]
  // (len 3, emitted) and [6..8] (len 3, emitted).
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].range, (FrameInterval{101, 103}));
  EXPECT_EQ(events[1].range, (FrameInterval{106, 108}));
  EXPECT_EQ(events[0].IntOr("player", -1), 0);
}

TEST(EventGrammarTest, AtStartAnchoring) {
  auto g = EventGrammar::Parse("event s : speed < 1.0 for 3 at_start ;")
               .TakeValue();
  Trajectory trajectory(FrameInterval{0, 9});
  ASSERT_TRUE(trajectory
                  .AddChannel("speed", {0.1, 0.1, 0.1, 0.1, 5, 0.1, 0.1, 0.1,
                                        0.1, 0.1})
                  .ok());
  auto events = g.Infer(trajectory, 1).TakeValue();
  ASSERT_EQ(events.size(), 1u) << "only the run at frame 0 counts";
  EXPECT_EQ(events[0].range, (FrameInterval{0, 3}));
}

TEST(EventGrammarTest, MissingChannelFails) {
  auto g = EventGrammar::Parse("event x : ghost < 1 for 2 ;").TakeValue();
  Trajectory trajectory(FrameInterval{0, 4});
  ASSERT_TRUE(trajectory.AddChannel("speed", {1, 1, 1, 1, 1}).ok());
  EXPECT_FALSE(g.Infer(trajectory, 0).ok());
}

TEST(TrajectoryTest, ChannelValidation) {
  Trajectory trajectory(FrameInterval{0, 4});
  EXPECT_FALSE(trajectory.AddChannel("short", {1, 2}).ok());
  ASSERT_TRUE(trajectory.AddChannel("ok", {1, 2, 3, 4, 5}).ok());
  EXPECT_EQ(trajectory.AddChannel("ok", {1, 2, 3, 4, 5}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(trajectory.HasChannel("ok"));
  EXPECT_EQ(trajectory.ChannelNames().size(), 1u);
}

// ---------- Tennis FDE end-to-end ----------

TEST(TennisFdeTest, GrammarMatchesFigureOne) {
  auto g = grammar::FeatureGrammar::Parse(TennisGrammarText()).TakeValue();
  EXPECT_EQ(g.start_symbol(), "video");
  EXPECT_EQ(g.DependenciesOf("segment"), std::vector<std::string>{"video"});
  EXPECT_EQ(g.DependenciesOf("player"), std::vector<std::string>{"tennis"});
  EXPECT_EQ(g.DependenciesOf("net_play"), std::vector<std::string>{"features"});
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("\"tennis\" -> \"player\""), std::string::npos);
}

TEST(TennisFdeTest, IndexesBroadcastIntoLayers) {
  const VideoDescription& desc = SharedDescription();
  const Broadcast& b = SharedBroadcast();

  EXPECT_EQ(desc.video_id(), 7);
  EXPECT_EQ(desc.num_frames(), b.video->num_frames());
  EXPECT_EQ(desc.Layer(CobraLayer::kRawData).size(), 1u);

  // Feature layer: about as many shots as the truth (cuts are detectable).
  size_t truth_shots = b.truth.shots.size();
  size_t detected_shots = desc.Layer(CobraLayer::kFeature).size();
  EXPECT_NEAR(static_cast<double>(detected_shots),
              static_cast<double>(truth_shots), 2.0);

  // Object layer: two players per court shot (player + features entries).
  int court_shots = 0;
  for (const auto& s : b.truth.shots) {
    if (s.category == ShotCategory::kTennis) ++court_shots;
  }
  EXPECT_EQ(desc.Named(CobraLayer::kObject, "player").size(),
            static_cast<size_t>(2 * court_shots));
  EXPECT_EQ(desc.Named(CobraLayer::kObject, "features").size(),
            static_cast<size_t>(2 * court_shots));

  // Event layer: serves, rallies, net plays present.
  EXPECT_EQ(desc.Named(CobraLayer::kEvent, "serve").size(),
            static_cast<size_t>(court_shots));
  EXPECT_EQ(desc.Named(CobraLayer::kEvent, "rally").size(),
            static_cast<size_t>(court_shots));
  EXPECT_FALSE(desc.Named(CobraLayer::kEvent, "net_play").empty());
}

TEST(TennisFdeTest, DetectedEventsMatchTruth) {
  const VideoDescription& desc = SharedDescription();
  const Broadcast& b = SharedBroadcast();

  std::vector<detectors::NamedInterval> truth, detected;
  for (const auto& e : b.truth.events) {
    truth.push_back({e.name, e.player_id, e.range});
  }
  for (const auto& a : desc.Layer(CobraLayer::kEvent)) {
    detected.push_back(
        {a.symbol, static_cast<int>(a.IntOr("player", -1)), a.range});
  }
  PrecisionRecall pr = detectors::MatchEvents(truth, detected, 0.3);
  EXPECT_GE(pr.Recall(), 0.6) << pr.ToString();
  EXPECT_GE(pr.Precision(), 0.6) << pr.ToString();
}

TEST(TennisFdeTest, RunReportCoversAllDetectors) {
  auto indexer = TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*SharedBroadcast().video, 1, "t");
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(indexer->last_report().has_value());
  EXPECT_EQ(indexer->last_report()->detectors.size(), 10u);  // Figure 1 symbols
  EXPECT_GT(indexer->last_report()->total_millis, 0.0);
  EXPECT_FALSE(indexer->tracked_shots().empty());
}

TEST(TennisFdeTest, CustomEventRules) {
  // Retarget the event layer without recompiling: a 'midcourt' rule.
  TennisIndexerConfig config;
  config.event_rules =
      "event serve : speed < 1.6 for 5 at_start ;\n"
      "event net_play : net_distance < 0.17 for 8 ;\n"
      "event baseline_play : net_distance > 0.30 for 25 ;\n";
  auto indexer = TennisVideoIndexer::Create(config);
  ASSERT_TRUE(indexer.ok());
  auto bad = TennisIndexerConfig{};
  bad.event_rules = "event broken ;";
  EXPECT_FALSE(TennisVideoIndexer::Create(bad).ok());
}

TEST(TennisFdeTest, HmmPathProducesEvents) {
  // Train an HMM on a different broadcast, switch the indexer to it.
  auto train_bc = TennisBroadcastSynthesizer(IndexConfig(505)).Synthesize()
                      .TakeValue();
  auto indexer = TennisVideoIndexer::Create().TakeValue();
  ASSERT_TRUE(indexer->Index(*train_bc.video, 1, "train").ok());

  std::vector<std::vector<int>> states, symbols;
  for (const auto& ts : indexer->tracked_shots()) {
    for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
      states.push_back(detectors::BuildTruthStateSequence(
          train_bc.truth, ts.tracking.tracks[i].player_id, ts.shot));
      symbols.push_back(detectors::EncodeTrackSymbols(
          ts.tracking.tracks[i], ts.tracking.court, ts.shot));
    }
  }
  detectors::HmmEventRecognizer recognizer;
  ASSERT_TRUE(recognizer.Train(states, symbols).ok());
  ASSERT_TRUE(indexer->UseHmmRecognizer(std::move(recognizer)).ok());

  auto desc = indexer->Index(*SharedBroadcast().video, 2, "eval");
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_FALSE(desc->Named(CobraLayer::kEvent, "net_play").empty());
}

TEST(TennisFdeTest, UntrainedHmmRejected) {
  auto indexer = TennisVideoIndexer::Create().TakeValue();
  EXPECT_EQ(indexer->UseHmmRecognizer(detectors::HmmEventRecognizer()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(BuildTrajectoryTest, ChannelsAndGapFill) {
  detectors::CourtModel court;
  court.court_bbox = RectI{0, 20, 100, 100};
  court.net_y = 70;
  detectors::PlayerTrack track;
  track.player_id = 0;
  detectors::TrackPoint p1;
  p1.frame = 12;
  p1.center = PointD{50, 120};
  detectors::TrackPoint p2;
  p2.frame = 14;
  p2.center = PointD{53, 116};
  track.points = {p1, p2};

  auto trajectory = BuildTrajectory(track, court, FrameInterval{10, 15});
  ASSERT_TRUE(trajectory.ok());
  EXPECT_EQ(trajectory->Length(), 6);
  const auto& net = trajectory->Channel("net_distance");
  EXPECT_DOUBLE_EQ(net[2], 0.5);   // |120-70|/100
  EXPECT_DOUBLE_EQ(net[0], 0.5);   // leading gap copies first observation
  EXPECT_DOUBLE_EQ(net[5], 0.46);  // trailing gap copies last
  EXPECT_GT(trajectory->Channel("speed")[4], 0.0);
}

// ---------- Meta index ----------

TEST(MetaIndexTest, ProjectsDescription) {
  auto meta = MetaIndex::Create().TakeValue();
  ASSERT_TRUE(meta.AddVideo(SharedDescription()).ok());
  EXPECT_EQ(meta.num_videos(), 1);
  EXPECT_GT(meta.shots().num_rows(), 0);
  EXPECT_GT(meta.objects().num_rows(), 0);
  EXPECT_GT(meta.events().num_rows(), 0);

  auto scenes = meta.FindScenes("net_play", 7).TakeValue();
  EXPECT_FALSE(scenes.empty());
  for (const auto& scene : scenes) {
    EXPECT_EQ(scene.video_id, 7);
    EXPECT_EQ(scene.event, "net_play");
    EXPECT_FALSE(scene.range.Empty());
  }

  auto tennis_shots = meta.FindShots("tennis", 7).TakeValue();
  EXPECT_EQ(tennis_shots.size(), 4u);  // num_points
}

TEST(MetaIndexTest, PlayerFilter) {
  auto meta = MetaIndex::Create().TakeValue();
  ASSERT_TRUE(meta.AddVideo(SharedDescription()).ok());
  auto p0 = meta.FindScenes("net_play", 7, 0).TakeValue();
  auto p1 = meta.FindScenes("net_play", 7, 1).TakeValue();
  auto all = meta.FindScenes("net_play", 7).TakeValue();
  EXPECT_EQ(p0.size() + p1.size(), all.size());
}

TEST(MetaIndexTest, UnknownEventEmpty) {
  auto meta = MetaIndex::Create().TakeValue();
  ASSERT_TRUE(meta.AddVideo(SharedDescription()).ok());
  EXPECT_TRUE(meta.FindScenes("moonwalk").TakeValue().empty());
  EXPECT_TRUE(meta.FindScenes("net_play", 999).TakeValue().empty());
}

}  // namespace
}  // namespace cobra::core
