#include <gtest/gtest.h>

#include "storage/ops.h"
#include "storage/table.h"

namespace cobra::storage {
namespace {

Table PlayersTable() {
  auto t = Table::Create({{"id", DataType::kInt64},
                          {"name", DataType::kString},
                          {"hand", DataType::kString},
                          {"rank", DataType::kInt64},
                          {"win_pct", DataType::kDouble}})
               .TakeValue();
  EXPECT_TRUE(t.AppendRow({int64_t{1}, std::string("Serena"), std::string("right"),
                           int64_t{1}, 0.86})
                  .ok());
  EXPECT_TRUE(t.AppendRow({int64_t{2}, std::string("Monica"), std::string("left"),
                           int64_t{3}, 0.79})
                  .ok());
  EXPECT_TRUE(t.AppendRow({int64_t{3}, std::string("Martina"), std::string("left"),
                           int64_t{2}, 0.81})
                  .ok());
  EXPECT_TRUE(t.AppendRow({int64_t{4}, std::string("Justine"), std::string("right"),
                           int64_t{5}, 0.74})
                  .ok());
  return t;
}

// ---------- Table ----------

TEST(TableTest, SchemaValidation) {
  EXPECT_FALSE(Table::Create({{"", DataType::kInt64}}).ok());
  EXPECT_FALSE(
      Table::Create({{"a", DataType::kInt64}, {"a", DataType::kDouble}}).ok());
  EXPECT_TRUE(Table::Create({}).ok());
}

TEST(TableTest, AppendAndGet) {
  Table t = PlayersTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_columns(), 5u);
  EXPECT_EQ(t.GetString(0, 1).TakeValue(), "Serena");
  EXPECT_EQ(t.GetInt(2, 3).TakeValue(), 2);
  EXPECT_DOUBLE_EQ(t.GetDouble(3, 4).TakeValue(), 0.74);
  EXPECT_EQ(ValueToString(t.GetValue(1, 2).TakeValue()), "left");
}

TEST(TableTest, AppendErrors) {
  Table t = PlayersTable();
  EXPECT_TRUE(t.AppendRow({int64_t{9}}).IsInvalidArgument());  // arity
  EXPECT_TRUE(t.AppendRow({std::string("x"), std::string("y"), std::string("z"),
                           int64_t{0}, 0.0})
                  .IsInvalidArgument());  // type
}

TEST(TableTest, AccessErrors) {
  Table t = PlayersTable();
  EXPECT_FALSE(t.GetInt(99, 0).ok());
  EXPECT_FALSE(t.GetInt(0, 99).ok());
  EXPECT_FALSE(t.GetInt(0, 1).ok());  // wrong type
  EXPECT_TRUE(t.ColumnIndex("ghost").status().IsNotFound());
}

TEST(TableTest, ValueHelpers) {
  EXPECT_EQ(TypeOf(Value{int64_t{1}}), DataType::kInt64);
  EXPECT_EQ(TypeOf(Value{1.5}), DataType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), DataType::kString);
  EXPECT_EQ(CompareValues(Value{int64_t{1}}, Value{int64_t{2}}), -1);
  EXPECT_EQ(CompareValues(Value{2.0}, Value{2.0}), 0);
  EXPECT_EQ(CompareValues(Value{std::string("b")}, Value{std::string("a")}), 1);
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "double");
}

// ---------- Select / Refine ----------

TEST(SelectTest, EqualsOnString) {
  Table t = PlayersTable();
  auto rows = Select(t, {"hand", CompareOp::kEq, std::string("left")}).TakeValue();
  EXPECT_EQ(rows, (std::vector<int64_t>{1, 2}));
}

TEST(SelectTest, NumericComparisons) {
  Table t = PlayersTable();
  EXPECT_EQ(Select(t, {"rank", CompareOp::kLe, int64_t{2}}).TakeValue(),
            (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(Select(t, {"win_pct", CompareOp::kGt, 0.80}).TakeValue(),
            (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(Select(t, {"rank", CompareOp::kNe, int64_t{1}}).TakeValue().size(), 3u);
}

TEST(SelectTest, Contains) {
  Table t = PlayersTable();
  EXPECT_EQ(Select(t, {"name", CompareOp::kContains, std::string("ina")})
                .TakeValue(),
            (std::vector<int64_t>{2}));
  // Contains on a non-string column is an error.
  EXPECT_FALSE(Select(t, {"rank", CompareOp::kContains, std::string("1")}).ok());
}

TEST(SelectTest, TypeMismatchRejected) {
  Table t = PlayersTable();
  EXPECT_FALSE(Select(t, {"rank", CompareOp::kEq, std::string("1")}).ok());
  EXPECT_FALSE(Select(t, {"ghost", CompareOp::kEq, int64_t{1}}).ok());
}

TEST(RefineTest, ConjunctionPipeline) {
  Table t = PlayersTable();
  auto rows = SelectAll(t, {{"hand", CompareOp::kEq, std::string("left")},
                            {"win_pct", CompareOp::kGt, 0.80}})
                  .TakeValue();
  EXPECT_EQ(rows, (std::vector<int64_t>{2}));
}

TEST(RefineTest, EmptyPredicatesSelectAll) {
  Table t = PlayersTable();
  EXPECT_EQ(SelectAll(t, {}).TakeValue().size(), 4u);
}

TEST(RefineTest, BadCandidateRejected) {
  Table t = PlayersTable();
  EXPECT_FALSE(Refine(t, {"rank", CompareOp::kEq, int64_t{1}}, {99}).ok());
}

// ---------- Materialize ----------

TEST(MaterializeTest, ProjectsAndReorders) {
  Table t = PlayersTable();
  Table out = Materialize(t, {2, 0}, {"name", "rank"}).TakeValue();
  EXPECT_EQ(out.num_rows(), 2);
  EXPECT_EQ(out.num_columns(), 2u);
  EXPECT_EQ(out.GetString(0, 0).TakeValue(), "Martina");
  EXPECT_EQ(out.GetInt(1, 1).TakeValue(), 1);
}

TEST(MaterializeTest, AllColumnsByDefault) {
  Table t = PlayersTable();
  Table out = Materialize(t, {1}).TakeValue();
  EXPECT_EQ(out.num_columns(), 5u);
  EXPECT_EQ(out.GetString(0, 1).TakeValue(), "Monica");
}

// ---------- HashJoin ----------

TEST(HashJoinTest, JoinsMatchesToPlayers) {
  Table players = PlayersTable();
  auto matches = Table::Create({{"match_id", DataType::kInt64},
                                {"winner_id", DataType::kInt64},
                                {"year", DataType::kInt64}})
                     .TakeValue();
  ASSERT_TRUE(matches.AppendRow({int64_t{100}, int64_t{2}, int64_t{1998}}).ok());
  ASSERT_TRUE(matches.AppendRow({int64_t{101}, int64_t{3}, int64_t{1999}}).ok());
  ASSERT_TRUE(matches.AppendRow({int64_t{102}, int64_t{2}, int64_t{2000}}).ok());
  ASSERT_TRUE(matches.AppendRow({int64_t{103}, int64_t{9}, int64_t{2001}}).ok());

  Table joined = HashJoin(matches, players, "winner_id", "id").TakeValue();
  EXPECT_EQ(joined.num_rows(), 3);  // winner 9 has no player row
  size_t name_col = joined.ColumnIndex("name").TakeValue();
  EXPECT_EQ(joined.GetString(0, name_col).TakeValue(), "Monica");
  EXPECT_EQ(joined.GetString(1, name_col).TakeValue(), "Martina");
}

TEST(HashJoinTest, CollidingColumnNamesPrefixed) {
  auto a = Table::Create({{"id", DataType::kInt64}, {"x", DataType::kInt64}})
               .TakeValue();
  auto b = Table::Create({{"id", DataType::kInt64}, {"x", DataType::kInt64}})
               .TakeValue();
  ASSERT_TRUE(a.AppendRow({int64_t{1}, int64_t{10}}).ok());
  ASSERT_TRUE(b.AppendRow({int64_t{1}, int64_t{20}}).ok());
  Table joined = HashJoin(a, b, "id", "id").TakeValue();
  EXPECT_TRUE(joined.ColumnIndex("right_x").ok());
  EXPECT_EQ(joined.GetInt(0, joined.ColumnIndex("x").TakeValue()).TakeValue(), 10);
  EXPECT_EQ(
      joined.GetInt(0, joined.ColumnIndex("right_x").TakeValue()).TakeValue(),
      20);
}

TEST(HashJoinTest, KeyTypeMismatchRejected) {
  Table players = PlayersTable();
  EXPECT_FALSE(HashJoin(players, players, "name", "id").ok());
}

// ---------- OrderBy ----------

TEST(OrderByTest, AscendingDescendingLimit) {
  Table t = PlayersTable();
  EXPECT_EQ(OrderBy(t, "rank", false).TakeValue(),
            (std::vector<int64_t>{0, 2, 1, 3}));
  EXPECT_EQ(OrderBy(t, "win_pct", true, 2).TakeValue(),
            (std::vector<int64_t>{0, 2}));
  EXPECT_EQ(OrderBy(t, "name", false, 1).TakeValue(),
            (std::vector<int64_t>{3}));  // Justine first alphabetically
}

// ---------- GroupBy ----------

TEST(GroupByTest, CountByStringKey) {
  Table t = PlayersTable();
  auto groups = GroupBy(t, "hand", AggregateOp::kCount).TakeValue();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(std::get<std::string>(groups[0].key), "left");
  EXPECT_EQ(groups[0].count, 2);
  EXPECT_DOUBLE_EQ(groups[0].aggregate, 2.0);
  EXPECT_EQ(std::get<std::string>(groups[1].key), "right");
  EXPECT_EQ(groups[1].count, 2);
}

TEST(GroupByTest, NumericAggregates) {
  Table t = PlayersTable();
  auto sums = GroupBy(t, "hand", AggregateOp::kSum, "win_pct").TakeValue();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_NEAR(sums[0].aggregate, 0.79 + 0.81, 1e-9);  // left
  auto avgs = GroupBy(t, "hand", AggregateOp::kAvg, "win_pct").TakeValue();
  EXPECT_NEAR(avgs[0].aggregate, (0.79 + 0.81) / 2, 1e-9);
  auto mins = GroupBy(t, "hand", AggregateOp::kMin, "rank").TakeValue();
  EXPECT_DOUBLE_EQ(mins[0].aggregate, 2.0);  // left: ranks 3, 2
  auto maxs = GroupBy(t, "hand", AggregateOp::kMax, "rank").TakeValue();
  EXPECT_DOUBLE_EQ(maxs[1].aggregate, 5.0);  // right: ranks 1, 5
}

TEST(GroupByTest, Validation) {
  Table t = PlayersTable();
  EXPECT_FALSE(GroupBy(t, "ghost", AggregateOp::kCount).ok());
  EXPECT_FALSE(GroupBy(t, "hand", AggregateOp::kSum, "name").ok());
  EXPECT_FALSE(GroupBy(t, "hand", AggregateOp::kSum, "ghost").ok());
}

TEST(GroupByTest, EmptyTable) {
  auto t = Table::Create({{"k", DataType::kInt64}}).TakeValue();
  EXPECT_TRUE(GroupBy(t, "k", AggregateOp::kCount).TakeValue().empty());
}

TEST(OrderByTest, TiesBreakByRowId) {
  auto t = Table::Create({{"v", DataType::kInt64}}).TakeValue();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t.AppendRow({int64_t{7}}).ok());
  EXPECT_EQ(OrderBy(t, "v", true).TakeValue(), (std::vector<int64_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace cobra::storage
