#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "text/compressed_index.h"
#include "text/corpus.h"
#include "text/inverted_index.h"

namespace cobra::text {
namespace {

/// Property sweep for the DAAT maxscore/block-max evaluator: across corpus
/// sizes, result depths and query seeds, `SearchTopN` must return exactly
/// what `SearchExhaustive` returns (documents AND order, including
/// tie-breaks) while never scanning more postings. The evaluator is exact
/// by construction — this sweep is the empirical side of that argument.

struct SweepCase {
  size_t num_docs;
  uint64_t corpus_seed;
};

class BlockMaxSweepTest : public ::testing::TestWithParam<SweepCase> {};

InvertedIndex BuildIndex(const SyntheticCorpus& corpus) {
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    EXPECT_TRUE(
        index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  EXPECT_TRUE(index.Finalize().ok());
  return index;
}

TEST_P(BlockMaxSweepTest, DaatEqualsExhaustive) {
  const SweepCase& param = GetParam();
  CorpusConfig config;
  config.num_docs = param.num_docs;
  config.vocabulary_size = 2000;
  config.seed = param.corpus_seed;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index = BuildIndex(corpus);

  for (uint64_t salt = 0; salt < 10; ++salt) {
    // Alternate between rare-ish query terms and queries anchored on the
    // most frequent vocabulary words (long postings, prunable tails).
    std::string query = corpus.MakeQuery(1 + salt % 4, salt);
    if (salt % 2 == 0) query = VocabularyWord(1 + salt / 2) + " " + query;

    for (size_t n : {1u, 3u, 10u, 100u}) {
      SearchStats exhaustive_stats, daat_stats;
      auto exhaustive =
          index.SearchExhaustive(query, n, &exhaustive_stats).TakeValue();
      auto daat = index.SearchTopN(query, n, &daat_stats).TakeValue();
      ASSERT_EQ(daat.size(), exhaustive.size())
          << "docs=" << param.num_docs << " query='" << query << "' n=" << n;
      for (size_t i = 0; i < daat.size(); ++i) {
        EXPECT_EQ(daat[i].doc_id, exhaustive[i].doc_id)
            << "docs=" << param.num_docs << " query='" << query << "' n=" << n
            << " rank " << i;
        EXPECT_NEAR(daat[i].score, exhaustive[i].score, 1e-9);
      }
      EXPECT_LE(daat_stats.postings_scanned, exhaustive_stats.postings_scanned)
          << "DAAT must never scan more than the exhaustive pass";
    }
  }
}

TEST_P(BlockMaxSweepTest, DaatEqualsTaatReference) {
  const SweepCase& param = GetParam();
  CorpusConfig config;
  config.num_docs = param.num_docs;
  config.vocabulary_size = 2000;
  config.seed = param.corpus_seed + 1000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index = BuildIndex(corpus);

  for (uint64_t salt = 0; salt < 6; ++salt) {
    std::string query = corpus.MakeQuery(3, salt);
    for (size_t n : {1u, 10u, 50u}) {
      auto taat = index.SearchTopNTaat(query, n).TakeValue();
      auto daat = index.SearchTopN(query, n).TakeValue();
      ASSERT_EQ(daat.size(), taat.size()) << query << " n=" << n;
      for (size_t i = 0; i < daat.size(); ++i) {
        EXPECT_EQ(daat[i].doc_id, taat[i].doc_id) << query << " n=" << n;
        EXPECT_NEAR(daat[i].score, taat[i].score, 1e-9);
      }
    }
  }
}

TEST_P(BlockMaxSweepTest, CompressedDaatEqualsCompressedExhaustive) {
  const SweepCase& param = GetParam();
  CorpusConfig config;
  config.num_docs = param.num_docs;
  config.vocabulary_size = 2000;
  config.seed = param.corpus_seed + 2000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index = BuildIndex(corpus);
  auto compressed = CompressedInvertedIndex::FromIndex(index).TakeValue();

  for (uint64_t salt = 0; salt < 6; ++salt) {
    std::string query = corpus.MakeQuery(2 + salt % 3, salt);
    for (size_t n : {1u, 10u, 100u}) {
      auto expected = compressed.Search(query, n).TakeValue();
      auto got = compressed.SearchTopN(query, n).TakeValue();
      ASSERT_EQ(got.size(), expected.size()) << query << " n=" << n;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].doc_id, expected[i].doc_id)
            << query << " n=" << n << " rank " << i;
        EXPECT_NEAR(got[i].score, expected[i].score, 1e-9);
      }
    }
  }
}

TEST_P(BlockMaxSweepTest, DuplicateQueryTermsFoldIntoQtf) {
  const SweepCase& param = GetParam();
  CorpusConfig config;
  config.num_docs = param.num_docs;
  config.vocabulary_size = 2000;
  config.seed = param.corpus_seed + 3000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index = BuildIndex(corpus);

  std::string base = corpus.MakeQuery(2, 1);
  std::string doubled = base + " " + base;  // qtf of every term doubles
  auto exhaustive = index.SearchExhaustive(doubled, 20).TakeValue();
  auto daat = index.SearchTopN(doubled, 20).TakeValue();
  ASSERT_EQ(daat.size(), exhaustive.size());
  for (size_t i = 0; i < daat.size(); ++i) {
    EXPECT_EQ(daat[i].doc_id, exhaustive[i].doc_id) << i;
    EXPECT_NEAR(daat[i].score, exhaustive[i].score, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpora, BlockMaxSweepTest,
    ::testing::Values(SweepCase{60, 1}, SweepCase{500, 2}, SweepCase{2000, 3},
                      SweepCase{2000, 4}, SweepCase{5000, 5}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "docs" + std::to_string(info.param.num_docs) + "seed" +
             std::to_string(info.param.corpus_seed);
    });

}  // namespace
}  // namespace cobra::text
