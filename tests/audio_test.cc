#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "audio/features.h"
#include "audio/fft.h"
#include "audio/signal.h"
#include "audio/synthesizer.h"
#include "util/stats.h"

namespace cobra::audio {
namespace {

constexpr double kPi = 3.14159265358979323846;

// ---------- FFT ----------

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_FALSE(Fft(&data).ok());
}

TEST(FftTest, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 64; ++i) {
    data.emplace_back(std::sin(0.3 * i) + 0.2 * i, std::cos(0.1 * i));
  }
  auto original = data;
  ASSERT_TRUE(Fft(&data).ok());
  ASSERT_TRUE(Fft(&data, /*inverse=*/true).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(FftTest, PureToneConcentratesInOneBin) {
  const int n = 256;
  std::vector<std::complex<double>> data;
  for (int i = 0; i < n; ++i) {
    data.emplace_back(std::sin(2.0 * kPi * 16.0 * i / n), 0.0);
  }
  ASSERT_TRUE(Fft(&data).ok());
  // Bin 16 dominates.
  double mag16 = std::abs(data[16]);
  for (int k = 1; k < n / 2; ++k) {
    if (k == 16) continue;
    EXPECT_LT(std::abs(data[static_cast<size_t>(k)]), mag16 / 10.0) << "bin " << k;
  }
}

TEST(SpectrumTest, CentroidTracksFrequency) {
  const int sr = 16000;
  auto tone = [&](double hz) {
    std::vector<float> frame(1024);
    for (size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<float>(std::sin(2.0 * kPi * hz * i / sr));
    }
    auto spectrum = MagnitudeSpectrum(frame).TakeValue();
    return SpectralCentroidHz(spectrum, sr);
  };
  EXPECT_NEAR(tone(500.0), 500.0, 120.0);
  EXPECT_NEAR(tone(3000.0), 3000.0, 300.0);
  EXPECT_LT(tone(500.0), tone(3000.0));
}

TEST(SpectrumTest, FlatnessSeparatesToneFromNoise) {
  Rng rng(3);
  std::vector<float> tone(1024), noise(1024);
  for (size_t i = 0; i < tone.size(); ++i) {
    tone[i] = static_cast<float>(std::sin(2.0 * kPi * 440.0 * i / 16000.0));
    noise[i] = static_cast<float>(rng.NextGaussian() * 0.3);
  }
  double tone_flatness =
      SpectralFlatness(MagnitudeSpectrum(tone).TakeValue());
  double noise_flatness =
      SpectralFlatness(MagnitudeSpectrum(noise).TakeValue());
  EXPECT_LT(tone_flatness, 0.1);
  EXPECT_GT(noise_flatness, 0.3);
}

TEST(SpectrumTest, EmptyFrameRejected) {
  EXPECT_FALSE(MagnitudeSpectrum({}).ok());
}

// ---------- Signal ----------

TEST(AudioSignalTest, RmsAndAppend) {
  std::vector<float> samples(100, 0.5f);
  AudioSignal a(samples, 16000);
  EXPECT_NEAR(a.Rms(0, 100), 0.5, 1e-6);
  EXPECT_NEAR(a.Rms(90, 50), 0.5, 1e-6);  // clipped window
  EXPECT_EQ(a.Rms(200, 10), 0.0);

  AudioSignal b(samples, 16000);
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.num_samples(), 200);
  AudioSignal c(samples, 8000);
  EXPECT_FALSE(a.Append(c).ok());
}

TEST(AudioSignalTest, Duration) {
  AudioSignal a(std::vector<float>(32000, 0.0f), 16000);
  EXPECT_DOUBLE_EQ(a.DurationSeconds(), 2.0);
}

// ---------- Synthesizer ----------

TEST(AudioSynthesizerTest, ClipsHaveExpectedCharacter) {
  AudioSynthesizer synth;
  AudioSignal speech = synth.Speech(3.0);
  AudioSignal music = synth.Music(3.0);
  AudioSignal applause = synth.Applause(3.0);
  AudioSignal silence = synth.Silence(3.0);

  EXPECT_GT(speech.Rms(0, speech.num_samples()), 0.01);
  EXPECT_GT(music.Rms(0, music.num_samples()), 0.05);
  EXPECT_GT(applause.Rms(0, applause.num_samples()), 0.02);
  EXPECT_LT(silence.Rms(0, silence.num_samples()), 0.001);
}

TEST(AudioSynthesizerTest, DeterministicBySeed) {
  AudioSynthConfig config;
  config.seed = 11;
  AudioSynthesizer a(config), b(config);
  AudioSignal sa = a.Speech(1.0), sb = b.Speech(1.0);
  ASSERT_EQ(sa.num_samples(), sb.num_samples());
  EXPECT_EQ(sa.samples(), sb.samples());
}

TEST(AudioSynthesizerTest, InterviewSegmentsTileSignal) {
  AudioSynthesizer synth;
  auto interview = synth.Interview(10.0, /*applause_tail=*/true);
  ASSERT_FALSE(interview.segments.empty());
  EXPECT_EQ(interview.segments.front().range.begin, 0);
  for (size_t i = 1; i < interview.segments.size(); ++i) {
    EXPECT_EQ(interview.segments[i].range.begin,
              interview.segments[i - 1].range.end + 1);
  }
  EXPECT_EQ(interview.segments.back().range.end,
            interview.signal.num_samples() - 1);
  EXPECT_EQ(interview.segments.back().label, kClassApplause);
}

// ---------- Analyzer / classifier ----------

TEST(AudioAnalyzerTest, FrameCount) {
  AudioSynthesizer synth;
  AudioSignal music = synth.Music(1.0);
  AudioAnalyzer analyzer;
  auto features = analyzer.Analyze(music).TakeValue();
  int64_t expected = (music.num_samples() - 512) / 256 + 1;
  EXPECT_EQ(static_cast<int64_t>(features.size()), expected);
}

TEST(AudioAnalyzerTest, FeatureSeparation) {
  AudioSynthesizer synth;
  AudioAnalyzer analyzer;
  auto mean_of = [&](const AudioSignal& signal) {
    auto features = analyzer.Analyze(signal).TakeValue();
    AudioFrameFeatures mean;
    for (const auto& f : features) {
      mean.spectral_flatness += f.spectral_flatness;
      mean.harmonicity += f.harmonicity;
      mean.rms += f.rms;
    }
    mean.spectral_flatness /= features.size();
    mean.harmonicity /= features.size();
    mean.rms /= features.size();
    return mean;
  };
  auto music = mean_of(synth.Music(2.0));
  auto applause = mean_of(synth.Applause(2.0));
  EXPECT_GT(applause.spectral_flatness, music.spectral_flatness * 3);
  // A triad's notes share no common pitch period, so chord harmonicity is
  // moderate — but still well above broadband noise.
  EXPECT_GT(music.harmonicity, 0.3);
  EXPECT_LT(applause.harmonicity, 0.2);
  EXPECT_GT(music.harmonicity, applause.harmonicity * 2);
}

TEST(AudioAnalyzerTest, ClassifiesPureClips) {
  AudioSynthesizer synth;
  AudioAnalyzer analyzer;
  struct Case {
    AudioSignal signal;
    const char* label;
  };
  std::vector<Case> cases;
  cases.push_back({synth.Speech(4.0), kClassSpeech});
  cases.push_back({synth.Music(4.0), kClassMusic});
  cases.push_back({synth.Applause(4.0), kClassApplause});
  for (const Case& c : cases) {
    auto segments = analyzer.Segment(c.signal).TakeValue();
    double fraction =
        LabeledFraction(segments, c.label, c.signal.num_samples()).TakeValue();
    EXPECT_GT(fraction, 0.5) << "clip " << c.label;
  }
}

TEST(AudioAnalyzerTest, SegmentsInterviewAgainstTruth) {
  AudioSynthesizer synth;
  auto interview = synth.Interview(12.0, /*applause_tail=*/true);
  AudioAnalyzer analyzer;
  auto segments = analyzer.Segment(interview.signal).TakeValue();

  // Sample-level agreement between detected labels and truth.
  auto label_at = [](const std::vector<AudioSegment>& segs, int64_t sample) {
    for (const auto& s : segs) {
      if (s.range.Contains(sample)) return s.label;
    }
    return std::string();
  };
  int64_t agree = 0, total = 0;
  for (int64_t s = 0; s < interview.signal.num_samples(); s += 1600) {
    std::string truth = label_at(interview.segments, s);
    std::string detected = label_at(segments, s);
    if (truth.empty() || detected.empty()) continue;
    // Speech pauses between syllables legitimately read as silence.
    if (truth == kClassSpeech && detected == kClassSilence) continue;
    ++total;
    if (truth == detected) ++agree;
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(agree) / total, 0.7)
      << agree << "/" << total;
}

TEST(AudioAnalyzerTest, SilenceDetection) {
  AudioSynthesizer synth;
  AudioSignal silence = synth.Silence(2.0);
  AudioAnalyzer analyzer;
  auto segments = analyzer.Segment(silence).TakeValue();
  double fraction =
      LabeledFraction(segments, kClassSilence, silence.num_samples()).TakeValue();
  EXPECT_GT(fraction, 0.95);
}

TEST(AudioAnalyzerTest, InvalidConfigRejected) {
  AudioAnalyzerConfig config;
  config.frame_samples = 8;
  AudioAnalyzer analyzer(config);
  AudioSynthesizer synth;
  EXPECT_FALSE(analyzer.Analyze(synth.Music(0.5)).ok());
}

TEST(LabeledFractionTest, Validation) {
  EXPECT_FALSE(LabeledFraction({}, "speech", 0).ok());
  auto fraction =
      LabeledFraction({{FrameInterval{0, 49}, "speech"}}, "speech", 100);
  EXPECT_DOUBLE_EQ(fraction.TakeValue(), 0.5);
}

}  // namespace
}  // namespace cobra::audio
