// Property tests for the vectorized columnar execution layer (DESIGN.md
// §4f): the block-at-a-time Select/Refine/SelectAll, the dictionary-encoded
// string predicates, the partitioned HashJoin and the top-k OrderBy must be
// bit-identical to the row-at-a-time `storage::reference` oracle — across
// every forced SIMD tier, every comparison op, selectivities from empty to
// all-match, NaN doubles, dictionary misses and empty tables.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "storage/ops.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/simd.h"

namespace cobra::storage {
namespace {

using util::simd::SetForcedLevel;

// Forced dispatch caps exercised by every property: auto, scalar, SSE4.1,
// AVX2. Unavailable tiers clamp to the best compiled+supported one, so each
// run is a valid (possibly duplicate) equivalence check on any machine.
const int kForcedLevels[] = {-1, 0, 1, 2};

class ForcedTierGuard {
 public:
  explicit ForcedTierGuard(int level) { SetForcedLevel(level); }
  ~ForcedTierGuard() { SetForcedLevel(-1); }
};

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A table wide enough to exercise every typed path, and (at `rows` >
// Table::kBlockRows) several zone-map blocks: `id` ascending (zones
// actually skip range predicates), `val` low-cardinality, `score` doubles
// with optional NaN stripes, `name`/`tag` dictionary-encoded strings.
Table MakeTable(int64_t rows, uint64_t seed, bool with_nan) {
  Table t = Table::Create({{"id", DataType::kInt64},
                           {"val", DataType::kInt64},
                           {"score", DataType::kDouble},
                           {"name", DataType::kString},
                           {"tag", DataType::kString}})
                .TakeValue();
  Rng rng(seed);
  const char* tags[] = {"net_play", "rally", "service", "smash_net", "lob"};
  for (int64_t r = 0; r < rows; ++r) {
    double score = rng.NextDouble(-1.0, 1.0);
    if (with_nan && rng.NextBounded(7) == 0) score = kNaN;
    std::string name = "player_" + std::to_string(rng.NextBounded(17));
    std::string tag = tags[rng.NextBounded(5)];
    EXPECT_TRUE(t.AppendRow({r, rng.NextInt(-50, 50), score, std::move(name),
                             std::move(tag)})
                    .ok());
  }
  return t;
}

std::vector<Predicate> AllPredicates(const Table& t, Rng& rng) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  std::vector<Predicate> preds;
  const int64_t n = t.num_rows();
  for (CompareOp op : ops) {
    // id: literals inside, below and above the domain (empty / all-match
    // selectivities included).
    for (int64_t lit : {int64_t{0}, n / 2, n - 1, int64_t{-5}, n + 5}) {
      preds.push_back({"id", op, lit});
    }
    for (int64_t lit : {int64_t{-50}, int64_t{0}, int64_t{7}, int64_t{999}}) {
      preds.push_back({"val", op, lit});
    }
    for (double lit : {-2.0, -0.25, 0.0, 0.5, 2.0, kNaN}) {
      preds.push_back({"score", op, lit});
    }
    // Strings: present values, a dictionary miss, and ordering literals
    // that split the vocabulary.
    for (const char* lit : {"player_3", "player_999", "player_", "zzz"}) {
      preds.push_back({"name", op, std::string(lit)});
    }
    preds.push_back({"tag", op, std::string("rally")});
  }
  for (const char* needle : {"net", "rally", "xyz", ""}) {
    preds.push_back({"tag", CompareOp::kContains, std::string(needle)});
    preds.push_back({"name", CompareOp::kContains, std::string(needle)});
  }
  // A few random literals for coverage beyond the hand-picked ones.
  for (int i = 0; i < 10; ++i) {
    preds.push_back({"val", ops[rng.NextBounded(6)], rng.NextInt(-60, 60)});
    preds.push_back({"score", ops[rng.NextBounded(6)],
                     rng.NextDouble(-1.2, 1.2)});
  }
  return preds;
}

std::string PredName(const Predicate& p) {
  return p.column + "/op" + std::to_string(static_cast<int>(p.op)) + "/" +
         ValueToString(p.literal);
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema()[c].name, b.schema()[c].name);
    ASSERT_EQ(a.schema()[c].type, b.schema()[c].type);
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      Value va = a.GetValue(r, c).TakeValue();
      Value vb = b.GetValue(r, c).TakeValue();
      if (a.schema()[c].type == DataType::kDouble) {
        double da = std::get<double>(va), db = std::get<double>(vb);
        if (std::isnan(da) && std::isnan(db)) continue;
        EXPECT_EQ(da, db) << "row " << r << " col " << c;
      } else {
        EXPECT_EQ(CompareValues(va, vb), 0) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(ColumnarSelectTest, MatchesReferenceOnEveryTierAndPredicate) {
  for (int64_t rows : {int64_t{0}, int64_t{1}, int64_t{100}, int64_t{5000}}) {
    Table t = MakeTable(rows, 7 + static_cast<uint64_t>(rows), true);
    Rng rng(11);
    const std::vector<Predicate> preds = AllPredicates(t, rng);
    for (const Predicate& pred : preds) {
      const auto expected = reference::Select(t, pred);
      ASSERT_TRUE(expected.ok()) << PredName(pred);
      for (int level : kForcedLevels) {
        ForcedTierGuard guard(level);
        const auto got = Select(t, pred);
        ASSERT_TRUE(got.ok()) << PredName(pred);
        EXPECT_EQ(got.value(), expected.value())
            << PredName(pred) << " rows=" << rows << " tier=" << level;
      }
    }
  }
}

TEST(ColumnarSelectTest, AllMatchConstantColumn) {
  Table t = Table::Create({{"k", DataType::kInt64}, {"s", DataType::kString}})
                .TakeValue();
  for (int64_t r = 0; r < 4000; ++r) {
    ASSERT_TRUE(t.AppendRow({int64_t{42}, std::string("same")}).ok());
  }
  for (int level : kForcedLevels) {
    ForcedTierGuard guard(level);
    for (const Predicate& pred :
         {Predicate{"k", CompareOp::kEq, int64_t{42}},
          Predicate{"k", CompareOp::kLe, int64_t{42}},
          Predicate{"s", CompareOp::kEq, std::string("same")},
          Predicate{"s", CompareOp::kContains, std::string("am")}}) {
      const auto got = Select(t, pred);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value().size(), 4000u) << PredName(pred);
    }
    // Dictionary miss: kEq empty, kNe everything.
    EXPECT_TRUE(
        Select(t, {"s", CompareOp::kEq, std::string("absent")})->empty());
    EXPECT_EQ(
        Select(t, {"s", CompareOp::kNe, std::string("absent")})->size(), 4000u);
  }
}

TEST(ColumnarRefineTest, MatchesReferenceOnRandomCandidateSets) {
  Table t = MakeTable(5000, 23, true);
  Rng rng(31);
  const std::vector<Predicate> preds = AllPredicates(t, rng);
  // Candidate sets of varied density, always ascending (the Select output
  // contract), including empty and all-rows.
  std::vector<std::vector<int64_t>> candidate_sets;
  candidate_sets.emplace_back();
  for (int density : {1, 7, 64}) {
    std::vector<int64_t> cands;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      if (rng.NextBounded(static_cast<uint64_t>(density)) == 0) {
        cands.push_back(r);
      }
    }
    candidate_sets.push_back(std::move(cands));
  }
  for (const Predicate& pred : preds) {
    for (const auto& cands : candidate_sets) {
      const auto expected = reference::Refine(t, pred, cands);
      ASSERT_TRUE(expected.ok());
      for (int level : kForcedLevels) {
        ForcedTierGuard guard(level);
        const auto got = Refine(t, pred, cands);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), expected.value())
            << PredName(pred) << " cands=" << cands.size();
      }
    }
  }
}

TEST(ColumnarSelectAllTest, ConjunctionsMatchReference) {
  Table t = MakeTable(5000, 41, true);
  const std::vector<std::vector<Predicate>> conjunctions = {
      {},
      {{"val", CompareOp::kGe, int64_t{0}}},
      {{"val", CompareOp::kGe, int64_t{0}},
       {"name", CompareOp::kEq, std::string("player_3")}},
      {{"tag", CompareOp::kContains, std::string("net")},
       {"score", CompareOp::kGt, 0.0},
       {"id", CompareOp::kLt, int64_t{2500}}},
      {{"name", CompareOp::kEq, std::string("nobody")},
       {"val", CompareOp::kEq, int64_t{1}}},
  };
  for (const auto& preds : conjunctions) {
    const auto expected = reference::SelectAll(t, preds);
    ASSERT_TRUE(expected.ok());
    for (int level : kForcedLevels) {
      ForcedTierGuard guard(level);
      const auto got = SelectAll(t, preds);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), expected.value());
    }
  }
}

Table MakeJoinSide(int64_t rows, uint64_t seed, int64_t key_range,
                   bool string_key) {
  Table t = Table::Create({{"key_i", DataType::kInt64},
                           {"key_s", DataType::kString},
                           {"payload", DataType::kDouble}})
                .TakeValue();
  Rng rng(seed);
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t k = rng.NextInt(0, key_range);
    EXPECT_TRUE(t.AppendRow({k, "k" + std::to_string(string_key
                                                         ? rng.NextInt(0, key_range)
                                                         : k),
                             rng.NextDouble()})
                    .ok());
  }
  return t;
}

TEST(ColumnarHashJoinTest, IntAndStringKeysMatchReferenceAtAnyThreadCount) {
  for (int64_t rows : {int64_t{0}, int64_t{37}, int64_t{9000}}) {
    Table left = MakeJoinSide(rows, 5, 200, true);
    Table right = MakeJoinSide(rows / 2 + 3, 6, 200, true);
    for (const char* key : {"key_i", "key_s"}) {
      const auto expected = reference::HashJoin(left, right, key, key);
      ASSERT_TRUE(expected.ok());
      for (int threads : {1, 4}) {
        for (int level : kForcedLevels) {
          ForcedTierGuard guard(level);
          auto got = HashJoin(left, right, key, key, JoinOptions{threads});
          ASSERT_TRUE(got.ok());
          ExpectTablesEqual(got.value(), expected.value());
        }
      }
    }
  }
}

TEST(ColumnarHashJoinTest, DoubleKeysKeepReferenceSemantics) {
  Table left = MakeJoinSide(50, 7, 10, false);
  Table right = MakeJoinSide(60, 7, 10, false);  // same seed: shared payloads
  const auto expected = reference::HashJoin(left, right, "payload", "payload");
  ASSERT_TRUE(expected.ok());
  auto got = HashJoin(left, right, "payload", "payload", JoinOptions{4});
  ASSERT_TRUE(got.ok());
  ExpectTablesEqual(got.value(), expected.value());
}

TEST(ColumnarOrderByTest, TopKMatchesReferenceFullSort) {
  // NaN-free scores: the OrderBy comparator (like the reference's) is only
  // a strict weak ordering over non-NaN keys.
  Table t = MakeTable(5000, 57, false);
  for (const char* column : {"id", "val", "score", "name"}) {
    for (bool desc : {false, true}) {
      for (size_t limit : {size_t{0}, size_t{1}, size_t{10}, size_t{4999},
                           size_t{5000}, size_t{8000}}) {
        const auto expected = reference::OrderBy(t, column, desc, limit);
        ASSERT_TRUE(expected.ok());
        const auto got = OrderBy(t, column, desc, limit);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), expected.value())
            << column << " desc=" << desc << " limit=" << limit;
      }
    }
  }
}

TEST(ColumnarMaterializeTest, GatheredTablesKeepZoneMapsConsistent) {
  Table t = MakeTable(5000, 71, true);
  Rng rng(73);
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (rng.NextBounded(3) != 0) rows.push_back(r);
  }
  auto sub = Materialize(t, rows, {"id", "score", "name"});
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->num_rows(), static_cast<int64_t>(rows.size()));
  // The gathered table must behave exactly like one built row-at-a-time:
  // every predicate over it agrees with the reference scan (this exercises
  // the rebuilt dictionaries and the zone maps extended by FinishGather).
  Rng rng2(79);
  for (const Predicate& pred : AllPredicates(sub.value(), rng2)) {
    if (sub->ColumnIndex(pred.column).ok()) {
      const auto expected = reference::Select(sub.value(), pred);
      ASSERT_TRUE(expected.ok());
      for (int level : kForcedLevels) {
        ForcedTierGuard guard(level);
        const auto got = Select(sub.value(), pred);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), expected.value()) << PredName(pred);
      }
    }
  }
  // Round-trip: materializing every row reproduces the table.
  std::vector<int64_t> all;
  for (int64_t r = 0; r < t.num_rows(); ++r) all.push_back(r);
  auto copy = Materialize(t, all);
  ASSERT_TRUE(copy.ok());
  ExpectTablesEqual(copy.value(), t);
}

TEST(ColumnarKernelsTest, DictionaryTracksAppendOrder) {
  Table t = Table::Create({{"s", DataType::kString}}).TakeValue();
  for (const char* v : {"b", "a", "b", "c", "a"}) {
    ASSERT_TRUE(t.AppendRow({std::string(v)}).ok());
  }
  EXPECT_EQ(t.Dictionary(0), (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(t.StringCodes(0), (std::vector<int32_t>{0, 1, 0, 2, 1}));
  EXPECT_EQ(t.DictCode(0, "c"), 2);
  EXPECT_EQ(t.DictCode(0, "missing"), -1);
}

TEST(ColumnarKernelsTest, ZoneMapsCoverEveryBlock) {
  Table t = MakeTable(Table::kBlockRows * 2 + 100, 91, true);
  const size_t id_col = t.ColumnIndex("id").TakeValue();
  const auto& zones = t.Zones(id_col);
  ASSERT_EQ(zones.size(), 3u);
  EXPECT_EQ(zones[0].imin, 0);
  EXPECT_EQ(zones[0].imax, Table::kBlockRows - 1);
  EXPECT_EQ(zones[2].imin, Table::kBlockRows * 2);
  EXPECT_EQ(zones[2].imax, Table::kBlockRows * 2 + 99);
}

}  // namespace
}  // namespace cobra::storage
