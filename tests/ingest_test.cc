/// \file ingest_test.cc
/// The pipelined corpus-ingest tier (DESIGN.md §4k):
///   * GroupCommitWal: all three durability modes round-trip through
///     ReplayWal; concurrent writers interleave without corruption; and
///     the crash property — a WAL truncated at ANY offset replays a clean
///     record prefix containing every record whose acknowledgment
///     happened at or below the truncation watermark (no acknowledged
///     record lost);
///   * CorpusIngestPipeline: for every thread count and window the
///     produced library answers the 16-modality sweep bit-identically to
///     the serial loop; errors are sticky and the committed set is
///     exactly a prefix of the submission order;
///   * DurableLibrarySink: pipelined sync-durable ingest matches the
///     oracle under every WalMode and survives reopen;
///   * ShardedIngestSink (tsan-labeled): live ingest into a 1/2/7-shard
///     serving deployment — videos routed, interviews + FinalizeText
///     replicated — answers the sweep through the frontend bit-identically
///     to the unsharded oracle, while queries racing the publishes stay
///     well-formed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/video_description.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/ingest/ingest.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "storage/segment/io.h"
#include "storage/segment/wal.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine::ingest {
namespace {

namespace seg = storage::segment;
using storage::CompareOp;

core::VideoDescription MakeVideo(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 24; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

std::vector<vision::SignatureRecord> MakeSignatures(int64_t oid) {
  Rng rng(static_cast<uint64_t>(oid) * 131 + 9);
  std::vector<vision::SignatureRecord> records(4);
  for (size_t k = 0; k < records.size(); ++k) {
    vision::SignatureRecord& rec = records[k];
    for (uint64_t& word : rec.sig.hash) word = rng.NextU64();
    for (uint8_t& byte : rec.sig.sketch) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    rec.video_id = oid;
    rec.begin = static_cast<int64_t>(k) * 1000;
    rec.end = rec.begin + 999;
  }
  return records;
}

webspace::SynthesizedSite MakeSite() {
  webspace::SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 3;
  config.videos_per_year = 2;
  config.seed = 2002;
  config.ensure_answer = true;
  return webspace::SiteSynthesizer::Generate(config).TakeValue();
}

/// The durable-library test's 16-modality sweep (seeded, so every arm
/// sees identical queries).
std::vector<CombinedQuery> SweepQueries() {
  std::vector<CombinedQuery> queries;
  Rng rng(21);
  for (int combo = 0; combo < 16; ++combo) {
    for (int variant = 0; variant < 3; ++variant) {
      CombinedQuery query;
      if (combo & 1) {
        switch (rng.NextBounded(4)) {
          case 0:
            query.player_predicates.push_back(
                {"gender", CompareOp::kEq, std::string("female")});
            break;
          case 1:
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("left")});
            break;
          case 2:
            query.player_predicates.push_back(
                {"ranking", CompareOp::kLe, rng.NextInt(1, 40)});
            break;
          case 3:  // provably empty
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("ambidextrous")});
            break;
        }
      }
      if (combo & 2) {
        query.require_champion = true;
        if (rng.NextBounded(2) == 0) {
          query.won_year = rng.NextInt(2018, 2022);
        }
      }
      if (combo & 4) {
        const char* texts[] = {"champion title", "net volley",
                               "australian open"};
        query.text = texts[rng.NextBounded(3)];
        query.text_top_k = 1 + rng.NextBounded(12);
      }
      if (combo & 8) {
        const char* events[] = {"net_play", "rally", "service", "no_such"};
        query.event = events[rng.NextBounded(4)];
      }
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<SceneHit>& expected,
                        const std::vector<SceneHit>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const SceneHit& a = expected[i];
    const SceneHit& b = actual[i];
    EXPECT_EQ(a.player_oid, b.player_oid) << label << " hit " << i;
    EXPECT_EQ(a.player_name, b.player_name) << label << " hit " << i;
    EXPECT_EQ(a.video_oid, b.video_oid) << label << " hit " << i;
    EXPECT_EQ(a.range.begin, b.range.begin) << label << " hit " << i;
    EXPECT_EQ(a.range.end, b.range.end) << label << " hit " << i;
    EXPECT_EQ(a.event, b.event) << label << " hit " << i;
    uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &a.text_score, 8);
    std::memcpy(&bits_b, &b.text_score, 8);
    EXPECT_EQ(bits_a, bits_b) << label << " hit " << i;
  }
}

void ExpectSameAnswers(const DigitalLibrary& expected,
                       const DigitalLibrary& actual, const std::string& label) {
  for (const CombinedQuery& query : SweepQueries()) {
    auto hits_expected = expected.Search(query);
    auto hits_actual = actual.Search(query);
    ASSERT_EQ(hits_expected.ok(), hits_actual.ok()) << label;
    if (!hits_expected.ok()) {
      EXPECT_EQ(hits_expected.status().ToString(),
                hits_actual.status().ToString())
          << label;
      continue;
    }
    ExpectBitIdentical(*hits_expected, *hits_actual, label);
  }
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  auto entries = seg::ListDir(dir);
  if (entries.ok()) {
    for (const std::string& entry : *entries) {
      (void)seg::RemoveFile(dir + "/" + entry);
    }
  }
  EXPECT_TRUE(seg::CreateDir(dir).ok());
  return dir;
}

/// The whole corpus as one deterministic delta sequence: interviews,
/// finalize, then every video with signatures.
std::vector<IngestDelta> MakeOps(const webspace::SynthesizedSite& site) {
  std::vector<IngestDelta> ops;
  for (const auto& [oid, body] : site.interview_texts) {
    ops.push_back(IngestDelta::Interview(oid, body));
  }
  ops.push_back(IngestDelta::FinalizeText());
  for (int64_t oid : site.video_oids) {
    ops.push_back(IngestDelta::Video(MakeVideo(oid), MakeSignatures(oid)));
  }
  return ops;
}

/// Applies `ops` the serial way — the oracle arm.
void ApplySerial(DigitalLibrary* library, const std::vector<IngestDelta>& ops) {
  for (const IngestDelta& op : ops) {
    switch (op.kind) {
      case IngestDelta::Kind::kInterview:
        ASSERT_TRUE(library->AddInterview(op.interview_oid,
                                          op.interview_text).ok());
        break;
      case IngestDelta::Kind::kFinalizeText:
        ASSERT_TRUE(library->FinalizeText().ok());
        break;
      case IngestDelta::Kind::kVideo:
        ASSERT_TRUE(library->AddVideoDescription(op.video).ok());
        if (!op.signatures.empty()) {
          ASSERT_TRUE(
              library->AddVideoSignatures(op.video.video_id(), op.signatures)
                  .ok());
        }
        break;
    }
  }
}

/// Feeds `ops` through the pipeline. Video analyses sleep a deterministic
/// stagger so completions land out of submission order and the reorder
/// buffer actually reorders.
Status RunOps(CorpusIngestPipeline* pipeline,
              const std::vector<IngestDelta>& ops) {
  for (size_t i = 0; i < ops.size(); ++i) {
    const IngestDelta& op = ops[i];
    Status status;
    switch (op.kind) {
      case IngestDelta::Kind::kInterview:
        status = pipeline->SubmitInterview(op.interview_oid,
                                           op.interview_text);
        break;
      case IngestDelta::Kind::kFinalizeText:
        status = pipeline->SubmitFinalizeText();
        break;
      case IngestDelta::Kind::kVideo: {
        auto delta = std::make_shared<IngestDelta>(op);
        const int stagger_us = static_cast<int>((i * 37) % 5) * 150;
        status = pipeline->SubmitVideo(
            [delta, stagger_us]() -> Result<IngestDelta> {
              if (stagger_us > 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(stagger_us));
              }
              return *delta;
            });
        break;
      }
    }
    if (!status.ok()) return status;
  }
  return pipeline->Finish();
}

// ---------------------------------------------------------------------------
// GroupCommitWal

TEST(GroupCommitWalTest, AllModesRoundTripThroughReplay) {
  const seg::WalMode modes[] = {seg::WalMode::kSyncEachRecord,
                                seg::WalMode::kGroupCommit,
                                seg::WalMode::kBuffered};
  for (size_t m = 0; m < 3; ++m) {
    const std::string dir = FreshDir("wal_mode_" + std::to_string(m));
    const std::string path = dir + "/test.wal";
    auto wal = seg::GroupCommitWal::Open(path, modes[m]).TakeValue();
    ASSERT_TRUE(wal->AppendInterview(11, "first interview").ok());
    ASSERT_TRUE(wal->AppendInterview(12, "second interview").ok());
    ASSERT_TRUE(wal->AppendFinalizeText().ok());
    ASSERT_TRUE(wal->AppendVideo(MakeVideo(7)).ok());
    const auto sigs = MakeSignatures(7);
    ASSERT_TRUE(wal->AppendSignatures(7, sigs).ok());
    EXPECT_EQ(wal->records_committed(), 5);
    switch (modes[m]) {
      case seg::WalMode::kSyncEachRecord:
        EXPECT_EQ(wal->sync_calls(), 5);
        break;
      case seg::WalMode::kGroupCommit:
        EXPECT_GE(wal->sync_calls(), 1);
        EXPECT_LE(wal->sync_calls(), 5);
        break;
      case seg::WalMode::kBuffered:
        EXPECT_EQ(wal->sync_calls(), 0);
        break;
    }
    ASSERT_TRUE(wal->FlushAll().ok());

    auto replay = seg::ReplayWal(path).TakeValue();
    ASSERT_EQ(replay.size(), 5u);
    EXPECT_EQ(replay[0].type, seg::WalRecordType::kAddInterview);
    EXPECT_EQ(replay[0].interview_oid, 11);
    EXPECT_EQ(replay[0].interview_text, "first interview");
    EXPECT_EQ(replay[1].interview_oid, 12);
    EXPECT_EQ(replay[2].type, seg::WalRecordType::kFinalizeText);
    EXPECT_EQ(replay[3].type, seg::WalRecordType::kAddVideo);
    EXPECT_EQ(replay[3].video.video_id(), 7);
    EXPECT_EQ(replay[4].type, seg::WalRecordType::kAddSignatures);
    EXPECT_EQ(replay[4].signature_video, 7);
    ASSERT_EQ(replay[4].signatures.size(), sigs.size());
    EXPECT_EQ(std::memcmp(replay[4].signatures.data(), sigs.data(),
                          sigs.size() * sizeof(vision::SignatureRecord)),
              0);
  }
}

std::string InterviewBody(int64_t oid) {
  std::string body = "interview body ";
  body += std::to_string(oid);
  body += " with enough words to span a few frames of payload";
  return body;
}

TEST(GroupCommitWalTest, ConcurrentWritersInterleaveWithoutCorruption) {
  const std::string dir = FreshDir("wal_concurrent");
  const std::string path = dir + "/test.wal";
  auto wal =
      seg::GroupCommitWal::Open(path, seg::WalMode::kGroupCommit).TakeValue();
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 40;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&wal, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t oid = t * 1000 + i;
        ASSERT_TRUE(wal->AppendInterview(oid, InterviewBody(oid)).ok());
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(wal->records_committed(), kWriters * kPerWriter);
  EXPECT_GE(wal->sync_calls(), 1);
  EXPECT_LE(wal->sync_calls(), kWriters * kPerWriter);

  auto replay = seg::ReplayWal(path).TakeValue();
  ASSERT_EQ(replay.size(), static_cast<size_t>(kWriters * kPerWriter));
  std::set<int64_t> oids;
  for (const seg::WalRecord& record : replay) {
    ASSERT_EQ(record.type, seg::WalRecordType::kAddInterview);
    EXPECT_EQ(record.interview_text, InterviewBody(record.interview_oid));
    oids.insert(record.interview_oid);
  }
  EXPECT_EQ(oids.size(), static_cast<size_t>(kWriters * kPerWriter));
}

TEST(GroupCommitWalTest, NoAcknowledgedRecordLostAtAnyTruncation) {
  const std::string dir = FreshDir("wal_crash");
  const std::string path = dir + "/test.wal";
  auto wal =
      seg::GroupCommitWal::Open(path, seg::WalMode::kGroupCommit).TakeValue();

  // Concurrent committers; after each acknowledgment the writer snapshots
  // durable_bytes() — by then its record is inside the synced prefix, so
  // the watermark is a truncation point that must preserve it.
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 24;
  struct Ack {
    int64_t oid = 0;
    int64_t watermark = 0;
  };
  std::vector<std::vector<Ack>> acks(kWriters);
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&wal, &acks, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int64_t oid = t * 1000 + i;
        auto staged = wal->StageInterview(oid, InterviewBody(oid));
        ASSERT_TRUE(staged.ok());
        ASSERT_TRUE(wal->WaitDurable(*staged).ok());
        acks[t].push_back({oid, wal->durable_bytes()});
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_TRUE(wal->FlushAll().ok());

  auto wal_map = seg::MmapFile::Open(path).TakeValue();
  const std::vector<uint8_t> full(wal_map.data(),
                                  wal_map.data() + wal_map.size());
  std::vector<Ack> all_acks;
  for (const auto& per_writer : acks) {
    all_acks.insert(all_acks.end(), per_writer.begin(), per_writer.end());
  }
  ASSERT_EQ(all_acks.size(), static_cast<size_t>(kWriters * kPerWriter));

  const std::string trunc = dir + "/truncated.wal";
  auto check_cut = [&](size_t keep, const std::string& label) {
    ASSERT_TRUE(seg::WriteFileAtomic(trunc, full.data(), keep).ok());
    auto replay = seg::ReplayWal(trunc);
    ASSERT_TRUE(replay.ok()) << label;  // torn tails never error
    std::set<int64_t> survived;
    for (const seg::WalRecord& record : *replay) {
      ASSERT_EQ(record.type, seg::WalRecordType::kAddInterview) << label;
      // Clean prefix: whatever replays is uncorrupted.
      EXPECT_EQ(record.interview_text, InterviewBody(record.interview_oid))
          << label;
      survived.insert(record.interview_oid);
    }
    // No acknowledged record lost: every ack whose watermark fits under
    // the cut was durable inside those bytes.
    for (const Ack& ack : all_acks) {
      if (ack.watermark <= static_cast<int64_t>(keep)) {
        EXPECT_TRUE(survived.count(ack.oid))
            << label << ": acked oid " << ack.oid << " (watermark "
            << ack.watermark << ") lost at cut " << keep;
      }
    }
  };

  Rng rng(4711);
  // Truncate exactly at sampled acknowledgment watermarks...
  for (int trial = 0; trial < 12; ++trial) {
    const Ack& ack = all_acks[rng.NextBounded(all_acks.size())];
    check_cut(static_cast<size_t>(ack.watermark),
              "watermark trial " + std::to_string(trial));
  }
  // ... at the full file ...
  check_cut(full.size(), "full file");
  // ... and at arbitrary (mid-record) offsets.
  for (int trial = 0; trial < 8; ++trial) {
    check_cut(rng.NextBounded(full.size() + 1),
              "random trial " + std::to_string(trial));
  }
}

// ---------------------------------------------------------------------------
// CorpusIngestPipeline

TEST(IngestPipelineTest, MatchesSerialOracleAcrossThreadCountsAndWindows) {
  auto oracle_site = MakeSite();
  const std::vector<IngestDelta> ops = MakeOps(oracle_site);
  auto oracle =
      DigitalLibrary::Create(std::move(oracle_site.store)).TakeValue();
  ApplySerial(oracle.get(), ops);

  struct Config {
    int threads;
    size_t window;
  };
  const Config configs[] = {{0, 0}, {1, 1}, {3, 0}, {3, 1}, {8, 3}};
  for (const Config& config : configs) {
    auto site = MakeSite();
    auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
    LibrarySink sink(library.get());
    std::unique_ptr<util::ThreadPool> pool;
    if (config.threads > 0) {
      pool = std::make_unique<util::ThreadPool>(config.threads);
    }
    CorpusIngestPipeline::Options options;
    options.pool = pool.get();
    options.window = config.window;
    CorpusIngestPipeline pipeline(&sink, options);
    ASSERT_TRUE(RunOps(&pipeline, ops).ok());

    const auto stats = pipeline.stats();
    EXPECT_EQ(stats.submitted, static_cast<int64_t>(ops.size()));
    EXPECT_EQ(stats.committed, static_cast<int64_t>(ops.size()));
    EXPECT_GE(stats.sweeps, 1);
    EXPECT_LE(stats.sweeps, stats.committed);

    const std::string label = "threads=" + std::to_string(config.threads) +
                              " window=" + std::to_string(config.window);
    EXPECT_EQ(library->signatures().num_records(),
              oracle->signatures().num_records())
        << label;
    ExpectSameAnswers(*oracle, *library, label);
  }
}

TEST(IngestPipelineTest, ErrorsAreStickyAndCommitsStayAPrefix) {
  auto site = MakeSite();
  auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  LibrarySink sink(library.get());
  util::ThreadPool pool(4);
  CorpusIngestPipeline::Options options;
  options.pool = &pool;
  CorpusIngestPipeline pipeline(&sink, options);

  constexpr int kBeforeFailure = 5;
  for (int i = 0; i < kBeforeFailure; ++i) {
    ASSERT_TRUE(pipeline
                    .SubmitVideo([i]() -> Result<IngestDelta> {
                      return IngestDelta::Video(MakeVideo(9000 + i), {});
                    })
                    .ok());
  }
  ASSERT_TRUE(pipeline
                  .SubmitVideo([]() -> Result<IngestDelta> {
                    return Status::InvalidArgument("synthetic analysis fault");
                  })
                  .ok());
  // Later submissions may be accepted (the fault might not have landed
  // yet) but must never commit.
  for (int i = 0; i < 4; ++i) {
    Status status = pipeline.SubmitVideo([i]() -> Result<IngestDelta> {
      return IngestDelta::Video(MakeVideo(9500 + i), {});
    });
    if (!status.ok()) {
      EXPECT_TRUE(status.ToString().find("synthetic analysis fault") !=
                  std::string::npos);
    }
  }
  Status finish = pipeline.Finish();
  ASSERT_FALSE(finish.ok());
  EXPECT_TRUE(finish.ToString().find("synthetic analysis fault") !=
              std::string::npos);
  // The committed set is exactly the slots before the failed one.
  EXPECT_EQ(pipeline.stats().committed, kBeforeFailure);
  // Sticky: the pipeline refuses further work.
  EXPECT_FALSE(pipeline.SubmitFinalizeText().ok());
  EXPECT_FALSE(pipeline.Finish().ok());
}

TEST(IngestPipelineTest, DurableIngestMatchesOracleUnderEveryWalMode) {
  auto oracle_site = MakeSite();
  const std::vector<IngestDelta> ops = MakeOps(oracle_site);
  auto oracle =
      DigitalLibrary::Create(std::move(oracle_site.store)).TakeValue();
  ApplySerial(oracle.get(), ops);

  const seg::WalMode modes[] = {seg::WalMode::kSyncEachRecord,
                                seg::WalMode::kGroupCommit,
                                seg::WalMode::kBuffered};
  for (size_t m = 0; m < 3; ++m) {
    const std::string dir = FreshDir("ingest_durable_" + std::to_string(m));
    const std::string label = "wal_mode=" + std::to_string(m);
    util::ThreadPool pool(4);
    {
      auto site = MakeSite();
      DurableLibrary::Options durable_options;
      durable_options.wal_mode = modes[m];
      auto durable = DurableLibrary::Create(dir, std::move(site.store),
                                            durable_options)
                         .TakeValue();
      DurableLibrarySink sink(durable.get());
      CorpusIngestPipeline::Options options;
      options.pool = &pool;
      CorpusIngestPipeline pipeline(&sink, options);
      ASSERT_TRUE(RunOps(&pipeline, ops).ok());

      // A video delta with signatures stages two WAL records
      // (description + signature batch).
      int64_t expected_records = 0;
      for (const IngestDelta& op : ops) {
        expected_records +=
            op.kind == IngestDelta::Kind::kVideo && !op.signatures.empty() ? 2
                                                                           : 1;
      }
      EXPECT_EQ(durable->wal_records_committed(), expected_records);
      if (modes[m] == seg::WalMode::kGroupCommit) {
        // Sweeps batch durability waits: syncs can't exceed records, and
        // with the whole pipeline feeding one WAL they should not reach
        // one-per-record either.
        EXPECT_LE(durable->wal_sync_calls(), durable->wal_records_committed());
      }
      ExpectSameAnswers(*oracle, durable->library(), label + " live");
    }
    // Everything acknowledged is in the WAL: reopen replays it.
    auto reopened = DurableLibrary::Open(dir).TakeValue();
    ExpectSameAnswers(*oracle, reopened->library(), label + " reopened");
  }
}

// ---------------------------------------------------------------------------
// ShardedIngestSink

/// Seed corpus (unfinalized text, first-half interviews, first-half
/// videos) + the live tail as deltas, and the full-corpus oracle.
struct ShardedFixture {
  serving::CorpusParts seed;
  std::vector<IngestDelta> live;
  std::unique_ptr<DigitalLibrary> oracle;
};

ShardedFixture MakeShardedFixture() {
  ShardedFixture fx;
  auto site = MakeSite();
  std::vector<std::pair<int64_t, std::string>> interviews(
      site.interview_texts.begin(), site.interview_texts.end());
  const std::vector<int64_t> videos = site.video_oids;
  const size_t interview_split = interviews.size() / 2;
  const size_t video_split = videos.size() / 2;

  fx.seed.store = site.store;
  for (size_t i = 0; i < interview_split; ++i) {
    fx.seed.interviews.push_back(interviews[i]);
  }
  for (size_t v = 0; v < video_split; ++v) {
    fx.seed.videos.push_back(MakeVideo(videos[v]));
    fx.seed.signatures.emplace_back(videos[v], MakeSignatures(videos[v]));
  }
  for (size_t i = interview_split; i < interviews.size(); ++i) {
    fx.live.push_back(
        IngestDelta::Interview(interviews[i].first, interviews[i].second));
  }
  fx.live.push_back(IngestDelta::FinalizeText());
  for (size_t v = video_split; v < videos.size(); ++v) {
    fx.live.push_back(IngestDelta::Video(MakeVideo(videos[v]),
                                         MakeSignatures(videos[v])));
  }

  // The oracle replays the same per-modality sequences unsharded: all
  // interviews then one finalize; videos seed-first then live.
  fx.oracle = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  for (const auto& [oid, body] : interviews) {
    EXPECT_TRUE(fx.oracle->AddInterview(oid, body).ok());
  }
  EXPECT_TRUE(fx.oracle->FinalizeText().ok());
  for (int64_t oid : videos) {
    EXPECT_TRUE(fx.oracle->AddVideoDescription(MakeVideo(oid)).ok());
    EXPECT_TRUE(fx.oracle->AddVideoSignatures(oid, MakeSignatures(oid)).ok());
  }
  return fx;
}

TEST(ShardedIngestTest, LiveIngestAnswersSweepLikeTheUnshardedOracle) {
  const ShardedFixture fx = MakeShardedFixture();
  const auto queries = SweepQueries();
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{7}}) {
    ShardedIngestSink::Options options;
    options.num_shards = num_shards;
    options.finalize_seed_text = false;
    auto sink = ShardedIngestSink::Create(fx.seed, options).TakeValue();

    util::ThreadPool pool(3);
    CorpusIngestPipeline::Options pipeline_options;
    pipeline_options.pool = &pool;
    CorpusIngestPipeline pipeline(sink.get(), pipeline_options);
    ASSERT_TRUE(RunOps(&pipeline, fx.live).ok());
    EXPECT_GE(sink->publishes(), static_cast<int64_t>(num_shards));

    const std::string base = "shards=" + std::to_string(num_shards);
    size_t signature_records = 0;
    for (size_t s = 0; s < sink->num_shards(); ++s) {
      signature_records += sink->shard_library(s).signatures().num_records();
    }
    EXPECT_EQ(signature_records, fx.oracle->signatures().num_records())
        << base;

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t top_n : {size_t{3}, size_t{0}}) {
        auto expected = fx.oracle->Search(queries[qi]);
        auto actual = sink->frontend().Search(queries[qi], top_n);
        const std::string label =
            base + " query=" + std::to_string(qi) +
            " n=" + std::to_string(top_n);
        ASSERT_EQ(expected.ok(), actual.ok())
            << label << " " << expected.status().ToString() << " vs "
            << actual.status().ToString();
        if (!expected.ok()) continue;
        if (top_n > 0 && expected->size() > top_n) expected->resize(top_n);
        ExpectBitIdentical(*expected, *actual, label);
      }
    }
  }
}

TEST(ShardedIngestTest, QueriesRacingPublishesStayWellFormed) {
  const ShardedFixture fx = MakeShardedFixture();
  ShardedIngestSink::Options options;
  options.num_shards = 2;
  options.finalize_seed_text = false;
  options.serving.replicas = 2;
  auto sink = ShardedIngestSink::Create(fx.seed, options).TakeValue();

  // Hammer the frontend with content-only queries (the text index is not
  // finalized until the ingest stream says so) while ingest publishes.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> answered{0};
  std::thread reader([&] {
    const char* events[] = {"net_play", "rally", "service", "smash"};
    int round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      CombinedQuery query;
      query.event = events[round++ % 4];
      if (round % 3 == 0) query.require_champion = true;
      auto hits = sink->frontend().Search(query, 8);
      // Shedding under load is allowed; everything else must be a clean
      // answer from some published snapshot.
      if (hits.ok()) {
        answered.fetch_add(1, std::memory_order_relaxed);
      } else {
        EXPECT_TRUE(hits.status().IsUnavailable())
            << hits.status().ToString();
      }
    }
  });

  util::ThreadPool pool(2);
  CorpusIngestPipeline::Options pipeline_options;
  pipeline_options.pool = &pool;
  CorpusIngestPipeline pipeline(sink.get(), pipeline_options);
  Status ingest = RunOps(&pipeline, fx.live);
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  ASSERT_TRUE(ingest.ok()) << ingest.ToString();
  EXPECT_GT(answered.load(), 0);

  // Quiescent again: the final published state is the oracle.
  auto expected = fx.oracle->Search(SweepQueries()[24]);
  auto actual = sink->frontend().Search(SweepQueries()[24], 0);
  ASSERT_EQ(expected.ok(), actual.ok());
  if (expected.ok()) {
    ExpectBitIdentical(*expected, *actual, "post-race");
  }
}

}  // namespace
}  // namespace cobra::engine::ingest
