#include <gtest/gtest.h>

#include <set>

#include "text/corpus.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace cobra::text {
namespace {

// ---------- Tokenizer ----------

TEST(TokenizerTest, SplitsAndLowercases) {
  EXPECT_EQ(Tokenize("Hello, World! 42"),
            (std::vector<std::string>{"hello", "world", "42"}));
  EXPECT_EQ(Tokenize("a b I x"), (std::vector<std::string>{}));  // len < 2
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ...").empty());
}

TEST(TokenizerTest, StopWords) {
  EXPECT_TRUE(IsStopWord("the"));
  EXPECT_TRUE(IsStopWord("and"));
  EXPECT_FALSE(IsStopWord("tennis"));
  EXPECT_FALSE(IsStopWord("net"));
}

TEST(StemTest, CommonSuffixes) {
  EXPECT_EQ(Stem("playing"), "play");
  EXPECT_EQ(Stem("played"), "play");
  EXPECT_EQ(Stem("players"), "player");
  EXPECT_EQ(Stem("matches"), "match");
  EXPECT_EQ(Stem("ladies"), "lady");
  EXPECT_EQ(Stem("quickly"), "quick");
  EXPECT_EQ(Stem("passes"), "pass");
  // Short words and non-suffix words pass through.
  EXPECT_EQ(Stem("net"), "net");
  EXPECT_EQ(Stem("is"), "is");
  EXPECT_EQ(Stem("glass"), "glass");
}

TEST(AnalyzeTest, FullChain) {
  auto tokens = Analyze("The players were playing at the net");
  EXPECT_EQ(tokens, (std::vector<std::string>{"player", "play", "net"}));
}

// ---------- Inverted index ----------

InvertedIndex SmallIndex() {
  InvertedIndex index;
  EXPECT_TRUE(index.AddText(0, "tennis match on the blue court").ok());
  EXPECT_TRUE(index.AddText(1, "tennis net play volley net").ok());
  EXPECT_TRUE(index.AddText(2, "interview about the final match").ok());
  EXPECT_TRUE(index.AddText(3, "court maintenance report").ok());
  EXPECT_TRUE(index.Finalize().ok());
  return index;
}

TEST(InvertedIndexTest, BasicCounts) {
  InvertedIndex index = SmallIndex();
  EXPECT_EQ(index.num_documents(), 4);
  EXPECT_EQ(index.DocumentFrequency("tenni"), 2);  // stem of "tennis"
  EXPECT_EQ(index.DocumentFrequency("match"), 2);
  EXPECT_EQ(index.DocumentFrequency("court"), 2);
  EXPECT_EQ(index.DocumentFrequency("absent"), 0);
  EXPECT_GT(index.TotalPostings(), 0);
}

TEST(InvertedIndexTest, LifecycleErrors) {
  InvertedIndex index;
  ASSERT_TRUE(index.AddText(0, "x y").ok());
  EXPECT_EQ(index.AddText(0, "dup").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(index.AddText(-1, "neg").IsInvalidArgument());
  EXPECT_FALSE(index.SearchExhaustive("x", 5).ok()) << "search before finalize";
  ASSERT_TRUE(index.Finalize().ok());
  EXPECT_EQ(index.Finalize().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(index.AddText(1, "late").code(), StatusCode::kFailedPrecondition);
}

TEST(InvertedIndexTest, EmptyQueryRejected) {
  InvertedIndex index = SmallIndex();
  EXPECT_TRUE(index.SearchExhaustive("", 5).status().IsInvalidArgument());
  EXPECT_TRUE(index.SearchExhaustive("the of and", 5).status().IsInvalidArgument());
}

TEST(InvertedIndexTest, ExhaustiveRanksRelevantFirst) {
  InvertedIndex index = SmallIndex();
  auto hits = index.SearchExhaustive("tennis net", 4).TakeValue();
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc_id, 1);  // contains both terms, "net" twice
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST(InvertedIndexTest, UnknownTermsScoreNothing) {
  InvertedIndex index = SmallIndex();
  auto hits = index.SearchExhaustive("zebra", 4).TakeValue();
  EXPECT_TRUE(hits.empty());
}

TEST(InvertedIndexTest, TopNMatchesExhaustive) {
  // Property check on a sizable corpus: top-N set and order equal the
  // exhaustive baseline.
  CorpusConfig config;
  config.num_docs = 800;
  config.vocabulary_size = 2000;
  config.seed = 99;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    ASSERT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  ASSERT_TRUE(index.Finalize().ok());

  for (uint64_t salt = 0; salt < 12; ++salt) {
    std::string query = corpus.MakeQuery(4, salt);
    for (size_t n : {1u, 10u, 50u}) {
      auto exhaustive = index.SearchExhaustive(query, n).TakeValue();
      auto topn = index.SearchTopN(query, n).TakeValue();
      ASSERT_EQ(topn.size(), exhaustive.size()) << query << " n=" << n;
      for (size_t i = 0; i < topn.size(); ++i) {
        EXPECT_EQ(topn[i].doc_id, exhaustive[i].doc_id)
            << query << " n=" << n << " rank " << i;
        EXPECT_NEAR(topn[i].score, exhaustive[i].score, 1e-9);
      }
    }
  }
}

TEST(InvertedIndexTest, TopNScansFewerPostings) {
  CorpusConfig config;
  config.num_docs = 2000;
  config.vocabulary_size = 3000;
  config.seed = 7;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    ASSERT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  ASSERT_TRUE(index.Finalize().ok());

  // Mix one common word (rank 1: long postings) with rarer ones so the
  // optimizer has something to prune.
  std::string query = VocabularyWord(1) + " " + corpus.MakeQuery(3, 5);
  SearchStats exhaustive_stats, topn_stats;
  auto a = index.SearchExhaustive(query, 10, &exhaustive_stats);
  auto b = index.SearchTopN(query, 10, &topn_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(topn_stats.early_terminated);
  EXPECT_LT(topn_stats.postings_scanned, exhaustive_stats.postings_scanned);
}

TEST(InvertedIndexTest, TopNZeroReturnsEmpty) {
  InvertedIndex index = SmallIndex();
  EXPECT_TRUE(index.SearchTopN("tennis", 0).TakeValue().empty());
  EXPECT_TRUE(index.SearchTopNTaat("tennis", 0).TakeValue().empty());
}

TEST(InvertedIndexTest, TaatReferenceMatchesExhaustive) {
  CorpusConfig config;
  config.num_docs = 800;
  config.vocabulary_size = 2000;
  config.seed = 42;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    ASSERT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  ASSERT_TRUE(index.Finalize().ok());

  for (uint64_t salt = 0; salt < 8; ++salt) {
    std::string query = corpus.MakeQuery(4, salt);
    for (size_t n : {1u, 10u, 50u}) {
      auto exhaustive = index.SearchExhaustive(query, n).TakeValue();
      auto taat = index.SearchTopNTaat(query, n).TakeValue();
      ASSERT_EQ(taat.size(), exhaustive.size()) << query << " n=" << n;
      for (size_t i = 0; i < taat.size(); ++i) {
        EXPECT_EQ(taat[i].doc_id, exhaustive[i].doc_id)
            << query << " n=" << n << " rank " << i;
        EXPECT_NEAR(taat[i].score, exhaustive[i].score, 1e-9);
      }
    }
  }
}

TEST(InvertedIndexTest, DaatSkipsBlocksAndScansFewerThanTaat) {
  CorpusConfig config;
  config.num_docs = 5000;
  config.vocabulary_size = 3000;
  config.seed = 11;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  InvertedIndex index;
  for (size_t d = 0; d < corpus.size(); ++d) {
    ASSERT_TRUE(index.AddText(static_cast<int64_t>(d), corpus.document(d)).ok());
  }
  ASSERT_TRUE(index.Finalize().ok());

  // A long-postings common word plus rarer discriminative ones: the DAAT
  // evaluator should skip whole blocks of the common list.
  std::string query = VocabularyWord(1) + " " + VocabularyWord(2) + " " +
                      corpus.MakeQuery(3, 9);
  SearchStats daat, taat;
  auto a = index.SearchTopN(query, 10, &daat);
  auto b = index.SearchTopNTaat(query, 10, &taat);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(daat.blocks_skipped, 0) << "block-max pruning never fired";
  EXPECT_LT(daat.postings_scanned, taat.postings_scanned);
  // Same answers regardless of evaluation strategy.
  const auto& da = a.value();
  const auto& ta = b.value();
  ASSERT_EQ(da.size(), ta.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].doc_id, ta[i].doc_id) << i;
    EXPECT_NEAR(da[i].score, ta[i].score, 1e-9);
  }
}

// ---------- Corpus ----------

TEST(VocabularyWordTest, DistinctAndStable) {
  std::set<std::string> words;
  for (size_t rank = 1; rank <= 5000; ++rank) {
    EXPECT_TRUE(words.insert(VocabularyWord(rank)).second) << rank;
  }
  EXPECT_EQ(VocabularyWord(1), VocabularyWord(1));
}

TEST(VocabularyWordTest, SurvivesAnalysisChainDistinctly) {
  // The index analyzes all text; two distinct vocabulary words must not
  // collapse to one term after stemming.
  std::set<std::string> stems;
  for (size_t rank = 1; rank <= 3000; ++rank) {
    auto tokens = Analyze(VocabularyWord(rank));
    ASSERT_EQ(tokens.size(), 1u) << VocabularyWord(rank);
    EXPECT_TRUE(stems.insert(tokens[0]).second)
        << VocabularyWord(rank) << " stemmed to colliding " << tokens[0];
  }
}

TEST(SyntheticCorpusTest, GeneratesRequestedShape) {
  CorpusConfig config;
  config.num_docs = 50;
  config.min_words = 10;
  config.max_words = 20;
  config.vocabulary_size = 100;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  EXPECT_EQ(corpus.size(), 50u);
  for (size_t d = 0; d < corpus.size(); ++d) {
    size_t words = Tokenize(corpus.document(d)).size();
    EXPECT_GE(words, 10u);
    EXPECT_LE(words, 20u);
  }
}

TEST(SyntheticCorpusTest, DeterministicBySeed) {
  CorpusConfig config;
  config.num_docs = 20;
  auto a = SyntheticCorpus::Generate(config).TakeValue();
  auto b = SyntheticCorpus::Generate(config).TakeValue();
  for (size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a.document(d), b.document(d));
  }
}

TEST(SyntheticCorpusTest, ZipfSkew) {
  CorpusConfig config;
  config.num_docs = 300;
  config.vocabulary_size = 1000;
  auto corpus = SyntheticCorpus::Generate(config).TakeValue();
  // Rank-1 word should appear far more often than a mid-rank word.
  int64_t rank1 = 0, rank200 = 0;
  std::string w1 = VocabularyWord(1), w200 = VocabularyWord(200);
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (const std::string& tok : Tokenize(corpus.document(d))) {
      if (tok == w1) ++rank1;
      if (tok == w200) ++rank200;
    }
  }
  EXPECT_GT(rank1, 10 * std::max<int64_t>(rank200, 1));
}

TEST(SyntheticCorpusTest, RejectsBadConfig) {
  CorpusConfig config;
  config.num_docs = 0;
  EXPECT_FALSE(SyntheticCorpus::Generate(config).ok());
  config = CorpusConfig{};
  config.min_words = 50;
  config.max_words = 10;
  EXPECT_FALSE(SyntheticCorpus::Generate(config).ok());
}

}  // namespace
}  // namespace cobra::text
