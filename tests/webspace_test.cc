#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "webspace/query.h"
#include "webspace/schema.h"
#include "webspace/site_synthesizer.h"
#include "webspace/store.h"

namespace cobra::webspace {
namespace {

using storage::CompareOp;
using storage::DataType;
using storage::Predicate;

Result<ConceptSchema> TinySchema() {
  return ConceptSchema::Create(
      {ClassDef{"A", {{"x", DataType::kInt64}}},
       ClassDef{"B", {{"label", DataType::kString}}}},
      {AssociationDef{"ab", "A", "B"}});
}

// ---------- Schema ----------

TEST(SchemaTest, Validation) {
  EXPECT_TRUE(TinySchema().ok());
  // Duplicate class.
  EXPECT_FALSE(ConceptSchema::Create({ClassDef{"A", {}}, ClassDef{"A", {}}}, {})
                   .ok());
  // Duplicate attribute.
  EXPECT_FALSE(ConceptSchema::Create(
                   {ClassDef{"A",
                             {{"x", DataType::kInt64}, {"x", DataType::kInt64}}}},
                   {})
                   .ok());
  // Attribute shadowing the implicit oid.
  EXPECT_FALSE(
      ConceptSchema::Create({ClassDef{"A", {{"oid", DataType::kInt64}}}}, {})
          .ok());
  // Association to unknown class.
  EXPECT_FALSE(ConceptSchema::Create({ClassDef{"A", {}}},
                                     {AssociationDef{"ax", "A", "X"}})
                   .ok());
  // Duplicate association.
  EXPECT_FALSE(ConceptSchema::Create(
                   {ClassDef{"A", {}}, ClassDef{"B", {}}},
                   {AssociationDef{"ab", "A", "B"}, AssociationDef{"ab", "B", "A"}})
                   .ok());
}

TEST(SchemaTest, Lookup) {
  auto schema = TinySchema().TakeValue();
  EXPECT_TRUE(schema.HasClass("A"));
  EXPECT_FALSE(schema.HasClass("Z"));
  EXPECT_TRUE(schema.FindClass("B").ok());
  EXPECT_TRUE(schema.FindClass("Z").status().IsNotFound());
  EXPECT_TRUE(schema.FindAssociation("ab").ok());
  EXPECT_TRUE(schema.FindAssociation("zz").status().IsNotFound());
}

// ---------- Store ----------

TEST(StoreTest, InsertLinkTraverse) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  int64_t a1 = store.Insert("A", {int64_t{10}}).TakeValue();
  int64_t a2 = store.Insert("A", {int64_t{20}}).TakeValue();
  int64_t b1 = store.Insert("B", {std::string("one")}).TakeValue();
  int64_t b2 = store.Insert("B", {std::string("two")}).TakeValue();
  EXPECT_NE(a1, a2);

  ASSERT_TRUE(store.Link("ab", a1, b1, 0).ok());
  ASSERT_TRUE(store.Link("ab", a1, b2, 1).ok());
  ASSERT_TRUE(store.Link("ab", a2, b2, 0).ok());

  EXPECT_EQ(store.Traverse("ab", {a1}).TakeValue(),
            (std::vector<int64_t>{b1, b2}));
  EXPECT_EQ(store.Traverse("ab", {a1}, /*role=*/1).TakeValue(),
            (std::vector<int64_t>{b2}));
  EXPECT_EQ(store.TraverseReverse("ab", {b2}).TakeValue(),
            (std::vector<int64_t>{a1, a2}));
  EXPECT_EQ(store.Roles("ab", a1, b2).TakeValue(), (std::vector<int64_t>{1}));
  EXPECT_TRUE(store.Roles("ab", a2, b1).TakeValue().empty());
}

TEST(StoreTest, LinkTypeChecking) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  int64_t a = store.Insert("A", {int64_t{1}}).TakeValue();
  int64_t b = store.Insert("B", {std::string("x")}).TakeValue();
  // Reversed direction violates the association.
  EXPECT_TRUE(store.Link("ab", b, a).IsInvalidArgument());
  // Unknown association / oids.
  EXPECT_TRUE(store.Link("zz", a, b).IsNotFound());
  EXPECT_TRUE(store.Link("ab", 999, b).IsInvalidArgument());
}

TEST(StoreTest, InsertErrors) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  EXPECT_TRUE(store.Insert("Z", {}).status().IsNotFound());
  EXPECT_FALSE(store.Insert("A", {std::string("wrong type")}).ok());
}

TEST(StoreTest, GetAttribute) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  int64_t a = store.Insert("A", {int64_t{42}}).TakeValue();
  EXPECT_EQ(std::get<int64_t>(store.GetAttribute("A", a, "x").TakeValue()), 42);
  EXPECT_TRUE(store.GetAttribute("A", 999, "x").status().IsNotFound());
  EXPECT_TRUE(store.GetAttribute("A", a, "ghost").status().IsNotFound());
}

TEST(StoreTest, RowOfResolvesWithoutScan) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  std::vector<int64_t> oids;
  for (int64_t i = 0; i < 100; ++i) {
    oids.push_back(store.Insert("A", {i * 3}).TakeValue());
  }
  const storage::Table* table = store.ClassTable("A").TakeValue();
  for (size_t i = 0; i < oids.size(); ++i) {
    const int64_t row = store.RowOf("A", oids[i]);
    ASSERT_EQ(row, static_cast<int64_t>(i));
    EXPECT_EQ(table->GetInt(row, 0).TakeValue(), oids[i]);
  }
  EXPECT_EQ(store.RowOf("A", 99999), -1);
  EXPECT_EQ(store.RowOf("NoSuchClass", oids[0]), -1);
}

TEST(StoreTest, IndexedTraversalMatchesAssociationTableScan) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  Rng rng(137);
  std::vector<int64_t> as, bs;
  for (int64_t i = 0; i < 40; ++i) {
    as.push_back(store.Insert("A", {i}).TakeValue());
    bs.push_back(store.Insert("B", {std::string("b")}).TakeValue());
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store
                    .Link("ab", as[rng.NextBounded(as.size())],
                          bs[rng.NextBounded(bs.size())],
                          static_cast<int64_t>(rng.NextBounded(3)))
                    .ok());
  }
  // Oracle: scan the association table directly (the adjacency index must
  // agree with it edge for edge).
  const storage::Table* edges = store.AssociationTable("ab").TakeValue();
  const auto& from = edges->IntColumn(0);
  const auto& to = edges->IntColumn(1);
  const auto& role = edges->IntColumn(2);
  auto scan = [&](const std::vector<int64_t>& keys, bool reverse,
                  int64_t want_role) {
    std::set<int64_t> key_set(keys.begin(), keys.end());
    std::set<int64_t> out;
    for (size_t r = 0; r < from.size(); ++r) {
      const int64_t key = reverse ? to[r] : from[r];
      if (!key_set.count(key)) continue;
      if (want_role >= 0 && role[r] != want_role) continue;
      out.insert(reverse ? from[r] : to[r]);
    }
    return std::vector<int64_t>(out.begin(), out.end());
  };
  for (int64_t want_role : {int64_t{-1}, int64_t{0}, int64_t{2}}) {
    for (const std::vector<int64_t>& keys :
         {std::vector<int64_t>{}, std::vector<int64_t>{as[0]},
          std::vector<int64_t>{as[3], as[17], as[39], 424242}}) {
      EXPECT_EQ(store.Traverse("ab", keys, want_role).TakeValue(),
                scan(keys, false, want_role));
    }
    for (const std::vector<int64_t>& keys :
         {std::vector<int64_t>{bs[1]},
          std::vector<int64_t>{bs[5], bs[11], bs[38]}}) {
      EXPECT_EQ(store.TraverseReverse("ab", keys, want_role).TakeValue(),
                scan(keys, true, want_role));
    }
  }
  // Roles come back in Link (insertion) order.
  auto store2 = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  int64_t a = store2.Insert("A", {int64_t{1}}).TakeValue();
  int64_t b = store2.Insert("B", {std::string("x")}).TakeValue();
  ASSERT_TRUE(store2.Link("ab", a, b, 2).ok());
  ASSERT_TRUE(store2.Link("ab", a, b, 0).ok());
  ASSERT_TRUE(store2.Link("ab", a, b, 1).ok());
  EXPECT_EQ(store2.Roles("ab", a, b).TakeValue(),
            (std::vector<int64_t>{2, 0, 1}));
}

// ---------- Query ----------

TEST(QueryTest, SelectAndPath) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  int64_t a1 = store.Insert("A", {int64_t{10}}).TakeValue();
  int64_t a2 = store.Insert("A", {int64_t{20}}).TakeValue();
  int64_t b1 = store.Insert("B", {std::string("keep")}).TakeValue();
  int64_t b2 = store.Insert("B", {std::string("drop")}).TakeValue();
  ASSERT_TRUE(store.Link("ab", a1, b1).ok());
  ASSERT_TRUE(store.Link("ab", a1, b2).ok());
  ASSERT_TRUE(store.Link("ab", a2, b2).ok());

  WebspaceQuery query;
  query.source = {"A", {Predicate{"x", CompareOp::kLe, int64_t{15}}}};
  query.path.push_back(
      PathStep{"ab", false, -1,
               {"B", {Predicate{"label", CompareOp::kEq, std::string("keep")}}}});
  EXPECT_EQ(ExecuteQuery(store, query).TakeValue(), (std::vector<int64_t>{b1}));

  // Reverse step: from B objects back to A.
  WebspaceQuery reverse;
  reverse.source = {"B", {Predicate{"label", CompareOp::kEq, std::string("drop")}}};
  reverse.path.push_back(PathStep{"ab", true, -1, {"A", {}}});
  EXPECT_EQ(ExecuteQuery(store, reverse).TakeValue(),
            (std::vector<int64_t>{a1, a2}));
}

TEST(QueryTest, EmptySourceShortCircuits) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  WebspaceQuery query;
  query.source = {"A", {Predicate{"x", CompareOp::kEq, int64_t{999}}}};
  query.path.push_back(PathStep{"ab", false, -1, {"B", {}}});
  EXPECT_TRUE(ExecuteQuery(store, query).TakeValue().empty());
}

TEST(QueryTest, UnknownClassFails) {
  auto store = WebspaceStore::Create(TinySchema().TakeValue()).TakeValue();
  WebspaceQuery query;
  query.source = {"Z", {}};
  EXPECT_FALSE(ExecuteQuery(store, query).ok());
}

// ---------- Site synthesizer ----------

SiteConfig SmallSite() {
  SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 4;
  config.videos_per_year = 2;
  return config;
}

TEST(SiteSynthesizerTest, GeneratesConsistentSite) {
  auto site = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  EXPECT_EQ(site.player_oids.size(), 16u);
  EXPECT_EQ(site.tournament_oids.size(), 4u);
  EXPECT_EQ(site.video_oids.size(), 8u);
  EXPECT_EQ(site.interview_oids.size(), 16u);
  EXPECT_EQ(site.interview_texts.size(), 16u);
  EXPECT_EQ(site.video_seeds.size(), 8u);
  EXPECT_FALSE(site.champions.empty());
  EXPECT_LE(site.champions.size(), 4u);

  // Every video has exactly two players, roles 0 and 1.
  for (int64_t video : site.video_oids) {
    auto players = site.store.TraverseReverse("plays_in", {video}).TakeValue();
    ASSERT_EQ(players.size(), 2u);
    std::set<int64_t> roles;
    for (int64_t p : players) {
      for (int64_t role : site.store.Roles("plays_in", p, video).TakeValue()) {
        roles.insert(role);
      }
    }
    EXPECT_EQ(roles, (std::set<int64_t>{0, 1}));
  }
}

TEST(SiteSynthesizerTest, DeterministicBySeed) {
  auto a = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  auto b = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  EXPECT_EQ(a.champions, b.champions);
  EXPECT_EQ(a.left_handed_female_champions, b.left_handed_female_champions);
  EXPECT_EQ(a.interview_texts.begin()->second, b.interview_texts.begin()->second);
}

TEST(SiteSynthesizerTest, GroundTruthMatchesConceptQuery) {
  auto site = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  // The motivating query's concept part, expressed as a webspace query.
  WebspaceQuery query;
  query.source = {"Player",
                  {Predicate{"hand", CompareOp::kEq, std::string("left")},
                   Predicate{"gender", CompareOp::kEq, std::string("female")}}};
  auto lefties = ExecuteQuery(site.store, query).TakeValue();
  // Champions among them.
  auto champs = site.store.Traverse("won", lefties).TakeValue();  // tournaments
  auto winners = site.store.TraverseReverse("won", champs).TakeValue();
  std::vector<int64_t> answer;
  std::set<int64_t> lefty_set(lefties.begin(), lefties.end());
  for (int64_t w : winners) {
    if (lefty_set.count(w)) answer.push_back(w);
  }
  std::sort(answer.begin(), answer.end());
  EXPECT_EQ(answer, site.left_handed_female_champions);
}

TEST(SiteSynthesizerTest, ChampionInterviewsMentionTitle) {
  auto site = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  for (int64_t champ : site.champions) {
    auto interviews = site.store.Traverse("interviewed_in", {champ}).TakeValue();
    ASSERT_FALSE(interviews.empty());
    bool mentions = false;
    for (int64_t i : interviews) {
      if (site.interview_texts.at(i).find("title") != std::string::npos) {
        mentions = true;
      }
    }
    EXPECT_TRUE(mentions);
  }
}

TEST(SiteSynthesizerTest, RejectsDegenerateConfig) {
  SiteConfig bad;
  bad.num_players = 2;
  EXPECT_FALSE(SiteSynthesizer::Generate(bad).ok());
}

TEST(SiteSynthesizerTest, PlayerNamesResolvable) {
  auto site = SiteSynthesizer::Generate(SmallSite()).TakeValue();
  std::set<std::string> names;
  for (int64_t oid : site.player_oids) {
    auto name = site.PlayerName(oid);
    ASSERT_TRUE(name.ok());
    EXPECT_TRUE(names.insert(*name).second) << "duplicate name " << *name;
  }
}

}  // namespace
}  // namespace cobra::webspace
