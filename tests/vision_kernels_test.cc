// Property tests for the batch pixel kernels (vision/kernels.h): every SIMD
// tier available on this build + CPU must agree with the portable scalar
// reference — bit-for-bit for the integer kernels and for the fixed-tree
// double distance kernels — across ragged widths 1..67, regions clipped to
// frame edges, and empty regions. The suite is ASan/UBSan-friendly (no
// over-reads: the vector main loops stop early and the tails are scalar).

#include "vision/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "media/frame.h"
#include "util/rng.h"
#include "vision/color_model.h"
#include "vision/gray_stats.h"
#include "vision/histogram.h"
#include "vision/mask.h"

namespace cobra::vision::kernels {
namespace {

std::vector<SimdLevel> AvailableVectorLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kSse41, SimdLevel::kAvx2}) {
    if (OpsFor(level) != nullptr) levels.push_back(level);
  }
  return levels;
}

// Mixes uniform colors with near-skin and near-gray ones so the predicate
// kernels see both branches often.
std::vector<media::Rgb> RandomPixels(size_t n, Rng& rng) {
  std::vector<media::Rgb> px(n);
  for (auto& p : px) {
    switch (rng.NextBounded(3)) {
      case 0:
        p = media::Rgb{static_cast<uint8_t>(rng.NextBounded(256)),
                       static_cast<uint8_t>(rng.NextBounded(256)),
                       static_cast<uint8_t>(rng.NextBounded(256))};
        break;
      case 1:  // around the synthesizer's skin palette
        p = media::Rgb{static_cast<uint8_t>(150 + rng.NextBounded(100)),
                       static_cast<uint8_t>(100 + rng.NextBounded(90)),
                       static_cast<uint8_t>(80 + rng.NextBounded(80))};
        break;
      default: {  // near-gray (exercises the box/skin boundaries)
        uint8_t v = static_cast<uint8_t>(rng.NextBounded(256));
        p = media::Rgb{v, static_cast<uint8_t>(v + rng.NextBounded(8)),
                       static_cast<uint8_t>(v / 2 + rng.NextBounded(8))};
        break;
      }
    }
  }
  return px;
}

ColorBox RandomBox(Rng& rng) {
  ColorBox box;
  for (int c = 0; c < 3; ++c) {
    int a = static_cast<int>(rng.NextBounded(256));
    int b = static_cast<int>(rng.NextBounded(256));
    box.lo[c] = static_cast<uint8_t>(std::min(a, b));
    box.hi[c] = static_cast<uint8_t>(std::max(a, b));
  }
  return box;
}

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_NE(OpsFor(SimdLevel::kScalar), nullptr);
  EXPECT_EQ(&ScalarOps(), OpsFor(SimdLevel::kScalar));
}

TEST(KernelDispatchTest, SetActiveLevelClampsToSupported) {
  const SimdLevel original = ActiveLevel();
  SetActiveLevel(SimdLevel::kAvx2);
  // Whatever the CPU, the active level must resolve to a real ops table.
  EXPECT_NE(OpsFor(ActiveLevel()), nullptr);
  SetActiveLevel(SimdLevel::kScalar);
  EXPECT_EQ(ActiveLevel(), SimdLevel::kScalar);
  SetActiveLevel(original);
  EXPECT_EQ(ActiveLevel(), original);
}

TEST(KernelDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse41), "sse4.1");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

// The SIMD gray kernel divides luma-milli by 1000 as ((v >> 3) * 67109)
// >> 23 (1000 = 8 * 125; 67109 = ceil(2^23 / 125)); verify the magic
// constant against exact integer division over the entire input domain
// [0, 255000], and that the intermediate product never overflows uint32.
TEST(LumaMilliTest, MagicDivisionMatchesExactDivision) {
  for (uint32_t v = 0; v <= 255000; ++v) {
    ASSERT_LE(static_cast<uint64_t>(v >> 3) * 67109u, 0x7FFFFFFFull) << v;
    ASSERT_EQ(((v >> 3) * 67109u) >> 23, v / 1000u) << "v=" << v;
  }
}

TEST(LumaMilliTest, MatchesDoubleLumaWithinOneStep) {
  for (int r = 0; r < 256; r += 5) {
    for (int g = 0; g < 256; g += 7) {
      for (int b = 0; b < 256; b += 11) {
        media::Rgb p{static_cast<uint8_t>(r), static_cast<uint8_t>(g),
                     static_cast<uint8_t>(b)};
        EXPECT_NEAR(LumaMilli(p) / 1000.0, p.Luma(), 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD tier == scalar reference, across ragged span lengths 1..67.
// ---------------------------------------------------------------------------

TEST(KernelEquivalenceTest, PixelKernelsMatchScalarAcrossWidths) {
  const auto levels = AvailableVectorLevels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD tier available on this build";
  Rng rng(20260805);
  for (SimdLevel level : levels) {
    const KernelOps& simd = *OpsFor(level);
    const KernelOps& ref = ScalarOps();
    for (size_t n = 1; n <= 67; ++n) {
      SCOPED_TRACE(std::string(SimdLevelName(level)) + " n=" +
                   std::to_string(n));
      const auto px = RandomPixels(n, rng);
      const auto other = RandomPixels(n, rng);

      // (a) histogram counts, several bin granularities.
      for (int bins : {2, 8, 32}) {
        const size_t total = static_cast<size_t>(bins) * bins * bins;
        std::vector<uint32_t> got(total, 0), want(total, 0);
        simd.histogram(px.data(), n, bins, got.data());
        ref.histogram(px.data(), n, bins, want.data());
        ASSERT_EQ(got, want) << "bins=" << bins;
      }

      // (c) classification and counting.
      const ColorBox box = RandomBox(rng);
      const ColorBox boxes[3] = {RandomBox(rng), RandomBox(rng), box};
      std::vector<uint8_t> got_mask(n, 0xCD), want_mask(n, 0xAB);
      simd.classify_inside(px.data(), n, box, got_mask.data());
      ref.classify_inside(px.data(), n, box, want_mask.data());
      ASSERT_EQ(got_mask, want_mask);
      simd.classify_outside(px.data(), n, boxes, 3, got_mask.data());
      ref.classify_outside(px.data(), n, boxes, 3, want_mask.data());
      ASSERT_EQ(got_mask, want_mask);
      ASSERT_EQ(simd.count_inside(px.data(), n, box),
                ref.count_inside(px.data(), n, box));
      ASSERT_EQ(simd.count_skin(px.data(), n), ref.count_skin(px.data(), n));

      // (d) gray and color sums.
      GraySums got_gray, want_gray;
      simd.gray_sums(px.data(), n, &got_gray);
      ref.gray_sums(px.data(), n, &want_gray);
      ASSERT_EQ(got_gray.count, want_gray.count);
      ASSERT_EQ(got_gray.sum_milli, want_gray.sum_milli);
      ASSERT_EQ(got_gray.sum2_milli, want_gray.sum2_milli);
      for (int bin = 0; bin < 256; ++bin) {
        ASSERT_EQ(got_gray.hist[bin], want_gray.hist[bin]) << "bin " << bin;
      }
      ColorSums got_color, want_color;
      simd.color_sums(px.data(), n, &got_color);
      ref.color_sums(px.data(), n, &want_color);
      ASSERT_EQ(got_color.count, want_color.count);
      for (int c = 0; c < 3; ++c) {
        ASSERT_EQ(got_color.sum[c], want_color.sum[c]);
        ASSERT_EQ(got_color.sum2[c], want_color.sum2[c]);
      }

      // (e) differencing and byte sums.
      ASSERT_EQ(simd.abs_diff_sum(px.data(), other.data(), n),
                ref.abs_diff_sum(px.data(), other.data(), n));
      ASSERT_EQ(simd.byte_sum(got_mask.data(), n),
                ref.byte_sum(got_mask.data(), n));
    }
  }
}

TEST(KernelEquivalenceTest, DistanceKernelsAreBitIdenticalAcrossLevels) {
  const auto levels = AvailableVectorLevels();
  if (levels.empty()) GTEST_SKIP() << "no SIMD tier available on this build";
  Rng rng(77);
  for (SimdLevel level : levels) {
    const KernelOps& simd = *OpsFor(level);
    const KernelOps& ref = ScalarOps();
    for (size_t n = 1; n <= 67; ++n) {
      SCOPED_TRACE(std::string(SimdLevelName(level)) + " n=" +
                   std::to_string(n));
      std::vector<double> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        // Sparse histograms: many zero bins, including bins where both
        // sides are zero (the chi-square guard lane).
        a[i] = rng.NextBounded(4) == 0 ? 0.0 : rng.NextDouble();
        b[i] = rng.NextBounded(4) == 0 ? 0.0 : rng.NextDouble();
        if (rng.NextBounded(8) == 0) a[i] = b[i] = 0.0;
      }
      EXPECT_EQ(simd.l1(a.data(), b.data(), n), ref.l1(a.data(), b.data(), n));
      EXPECT_EQ(simd.chi_square(a.data(), b.data(), n),
                ref.chi_square(a.data(), b.data(), n));
      EXPECT_EQ(simd.intersection_sum(a.data(), b.data(), n),
                ref.intersection_sum(a.data(), b.data(), n));
    }
  }
}

TEST(KernelEquivalenceTest, AllKernelsAcceptEmptySpans) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse41, SimdLevel::kAvx2}) {
    const KernelOps* ops = OpsFor(level);
    if (ops == nullptr) continue;
    const media::Rgb* px = nullptr;
    uint32_t bins[8] = {};
    EXPECT_NO_FATAL_FAILURE(ops->histogram(px, 0, 2, bins));
    EXPECT_EQ(ops->l1(nullptr, nullptr, 0), 0.0);
    EXPECT_EQ(ops->count_skin(px, 0), 0u);
    EXPECT_EQ(ops->count_inside(px, 0, ColorBox{}), 0u);
    GraySums gray;
    ops->gray_sums(px, 0, &gray);
    EXPECT_EQ(gray.count, 0u);
    EXPECT_EQ(ops->byte_sum(nullptr, 0), 0u);
  }
}

// ---------------------------------------------------------------------------
// High-level wrappers: edge-clipped and empty regions, and hoisted boxes.
// ---------------------------------------------------------------------------

media::Frame RandomFrame(int w, int h, Rng& rng) {
  media::Frame frame(w, h);
  const auto px = RandomPixels(static_cast<size_t>(w) * h, rng);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      frame.At(x, y) = px[static_cast<size_t>(y) * w + x];
    }
  }
  return frame;
}

TEST(KernelRegionTest, RowAccessorIsContiguous) {
  Rng rng(5);
  media::Frame frame = RandomFrame(13, 7, rng);
  ASSERT_EQ(frame.Row(0), frame.pixels().data());
  for (int y = 0; y < frame.height(); ++y) {
    EXPECT_EQ(frame.Row(y), frame.pixels().data() + y * frame.width());
    for (int x = 0; x < frame.width(); ++x) {
      EXPECT_EQ(frame.Row(y)[x], frame.At(x, y));
    }
  }
}

TEST(KernelRegionTest, HistogramFromClippedRegionMatchesManualCount) {
  Rng rng(11);
  for (int w : {1, 2, 5, 16, 33, 67}) {
    media::Frame frame = RandomFrame(w, 9, rng);
    // Deliberately overhangs every frame edge.
    const RectI rect{-3, -2, w + 5, 20};
    auto hist = ColorHistogram::FromRegion(frame, rect, 8);
    ASSERT_TRUE(hist.ok());
    const RectI r = rect.ClipTo(frame.width(), frame.height());
    std::vector<uint32_t> manual(512, 0);
    for (int y = r.y; y < r.Bottom(); ++y) {
      for (int x = r.x; x < r.Right(); ++x) {
        const media::Rgb& p = frame.At(x, y);
        manual[(static_cast<size_t>(p.r / 32) * 8 + p.g / 32) * 8 + p.b / 32]++;
      }
    }
    for (size_t bin = 0; bin < manual.size(); ++bin) {
      ASSERT_EQ(hist->At(bin),
                manual[bin] / static_cast<double>(r.Area()))
          << "w=" << w << " bin=" << bin;
    }
  }
}

TEST(KernelRegionTest, EmptyRegionsAreHandled) {
  Rng rng(13);
  media::Frame frame = RandomFrame(8, 8, rng);
  EXPECT_FALSE(ColorHistogram::FromRegion(frame, RectI{20, 20, 4, 4}).ok());
  GrayStats empty = ComputeGrayStats(frame, RectI{-5, -5, 2, 2});
  EXPECT_EQ(empty.mean, 0.0);
  EXPECT_EQ(empty.entropy, 0.0);
  GaussianColorModel model =
      GaussianColorModel::FromRegion(frame, RectI{9, 0, 5, 5});
  EXPECT_EQ(model.count(), 0);
}

TEST(KernelRegionTest, AddRegionMatchesPerPixelAdd) {
  Rng rng(17);
  for (int w : {1, 3, 17, 41}) {
    media::Frame frame = RandomFrame(w, 11, rng);
    const RectI rect{-1, 2, w + 3, 6};
    GaussianColorModel batch;
    batch.AddRegion(frame, rect);
    GaussianColorModel manual;
    const RectI r = rect.ClipTo(frame.width(), frame.height());
    for (int y = r.y; y < r.Bottom(); ++y) {
      for (int x = r.x; x < r.Right(); ++x) manual.Add(frame.At(x, y));
    }
    ASSERT_EQ(batch.count(), manual.count());
    // Integer channel sums are exact in double, so these are bitwise equal.
    EXPECT_EQ(batch.mean_r(), manual.mean_r());
    EXPECT_EQ(batch.mean_g(), manual.mean_g());
    EXPECT_EQ(batch.mean_b(), manual.mean_b());
    EXPECT_EQ(batch.var_r(), manual.var_r());
    EXPECT_EQ(batch.var_g(), manual.var_g());
    EXPECT_EQ(batch.var_b(), manual.var_b());
  }
}

TEST(KernelRegionTest, MatchesAgreesWithMatchBox) {
  Rng rng(19);
  media::Frame frame = RandomFrame(23, 9, rng);
  GaussianColorModel model =
      GaussianColorModel::FromRegion(frame, RectI{0, 0, 23, 9});
  const auto samples = RandomPixels(512, rng);
  for (double k : {0.5, 1.0, 3.0}) {
    const ColorBox box = model.MatchBox(k);
    for (const media::Rgb& p : samples) {
      ASSERT_EQ(model.Matches(p, k), box.Contains(p));
    }
  }
}

TEST(KernelRegionTest, MaskBuildersMatchPredicateForms) {
  Rng rng(23);
  for (int w : {1, 7, 31, 67}) {
    media::Frame frame = RandomFrame(w, 8, rng);
    const RectI roi{-2, 1, w, 9};  // clipped on three sides
    const ColorBox a = RandomBox(rng), b = RandomBox(rng);

    BinaryMask inside = BinaryMask::FromColorBox(frame, roi, a);
    BinaryMask inside_ref = BinaryMask::FromPredicate(
        frame, roi, [&](const media::Rgb& p) { return a.Contains(p); });
    const ColorBox boxes[2] = {a, b};
    BinaryMask outside = BinaryMask::FromOutsideColorBoxes(frame, roi, boxes, 2);
    BinaryMask outside_ref = BinaryMask::FromPredicate(
        frame, roi, [&](const media::Rgb& p) {
          return !a.Contains(p) && !b.Contains(p);
        });
    ASSERT_EQ(inside.Count(), inside_ref.Count());
    ASSERT_EQ(outside.Count(), outside_ref.Count());
    for (int y = 0; y < frame.height(); ++y) {
      for (int x = 0; x < frame.width(); ++x) {
        ASSERT_EQ(inside.At(x, y), inside_ref.At(x, y)) << x << "," << y;
        ASSERT_EQ(outside.At(x, y), outside_ref.At(x, y)) << x << "," << y;
      }
    }
  }
}

TEST(KernelRegionTest, MeanAbsFrameDifference) {
  media::Frame a(4, 3, media::Rgb{10, 20, 30});
  media::Frame b(4, 3, media::Rgb{13, 18, 30});
  // |10-13| + |20-18| + |30-30| = 5 over 3 channel bytes per pixel.
  EXPECT_NEAR(MeanAbsFrameDifference(a, b), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(MeanAbsFrameDifference(a, media::Frame(2, 2)), 0.0);
  EXPECT_EQ(MeanAbsFrameDifference(media::Frame(), media::Frame()), 0.0);
}

TEST(KernelRegionTest, SkinCountMatchesIsSkinColor) {
  Rng rng(29);
  const auto px = RandomPixels(4096, rng);
  uint64_t manual = 0;
  for (const auto& p : px) manual += media::IsSkinColor(p) ? 1 : 0;
  EXPECT_EQ(Ops().count_skin(px.data(), px.size()), manual);
  EXPECT_EQ(ScalarOps().count_skin(px.data(), px.size()), manual);
}

}  // namespace
}  // namespace cobra::vision::kernels
