#include <gtest/gtest.h>

#include <memory>

#include "detectors/shot_boundary.h"
#include "detectors/shot_classifier.h"
#include "media/tennis_synthesizer.h"
#include "util/stats.h"

namespace cobra::detectors {
namespace {

using media::Broadcast;
using media::ShotCategory;
using media::TennisBroadcastSynthesizer;
using media::TennisSynthConfig;

TennisSynthConfig TestConfig(uint64_t seed = 42, double noise = 4.0) {
  TennisSynthConfig config;
  config.width = 128;
  config.height = 96;
  config.num_points = 5;
  config.min_court_frames = 60;
  config.max_court_frames = 110;
  config.min_cutaway_frames = 16;
  config.max_cutaway_frames = 30;
  config.noise_sigma = noise;
  config.seed = seed;
  return config;
}

/// Synthesizes once and shares across tests in this binary.
const Broadcast& SharedBroadcast() {
  static const Broadcast* broadcast = [] {
    auto result = TennisBroadcastSynthesizer(TestConfig()).Synthesize();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return new Broadcast(std::move(result).TakeValue());
  }();
  return *broadcast;
}

// ---------- Shot boundary ----------

TEST(ShotBoundaryTest, DistanceSignalLength) {
  const Broadcast& b = SharedBroadcast();
  ShotBoundaryDetector detector;
  auto distances = detector.ComputeDistances(*b.video);
  ASSERT_TRUE(distances.ok());
  EXPECT_EQ(static_cast<int64_t>(distances->size()), b.video->num_frames() - 1);
}

TEST(ShotBoundaryTest, AdaptiveFindsCutsAccurately) {
  const Broadcast& b = SharedBroadcast();
  ShotBoundaryDetector detector;
  auto result = detector.Detect(*b.video);
  ASSERT_TRUE(result.ok());
  PrecisionRecall pr =
      MatchWithTolerance(b.truth.CutPositions(), result->boundaries, 2);
  EXPECT_GE(pr.F1(), 0.9) << pr.ToString();
  EXPECT_GE(pr.Recall(), 0.9) << pr.ToString();
}

TEST(ShotBoundaryTest, FixedThresholdAlsoWorksOnCleanVideo) {
  auto clean = TennisBroadcastSynthesizer(TestConfig(7, 0.0)).Synthesize();
  ASSERT_TRUE(clean.ok());
  ShotBoundaryConfig config;
  config.mode = ThresholdMode::kFixed;
  config.fixed_threshold = 0.5;
  ShotBoundaryDetector detector(config);
  auto result = detector.Detect(*clean->video);
  ASSERT_TRUE(result.ok());
  PrecisionRecall pr =
      MatchWithTolerance(clean->truth.CutPositions(), result->boundaries, 2);
  EXPECT_GE(pr.F1(), 0.95) << pr.ToString();
}

TEST(ShotBoundaryTest, ToShotsPartitionsTimeline) {
  ShotBoundaryResult r;
  r.boundaries = {10, 25};
  auto shots = r.ToShots(40);
  ASSERT_EQ(shots.size(), 3u);
  EXPECT_EQ(shots[0], (FrameInterval{0, 9}));
  EXPECT_EQ(shots[1], (FrameInterval{10, 24}));
  EXPECT_EQ(shots[2], (FrameInterval{25, 39}));
}

TEST(ShotBoundaryTest, ToShotsNoBoundaries) {
  ShotBoundaryResult r;
  auto shots = r.ToShots(12);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0], (FrameInterval{0, 11}));
}

TEST(ShotBoundaryTest, MinShotFramesMergesNearbyCuts) {
  ShotBoundaryConfig config;
  config.mode = ThresholdMode::kFixed;
  config.fixed_threshold = 0.5;
  config.min_shot_frames = 8;
  ShotBoundaryDetector detector(config);
  // Two spikes 3 frames apart; the stronger (0.9) must win.
  std::vector<double> signal(30, 0.01);
  signal[10] = 0.7;
  signal[13] = 0.9;
  auto cuts = detector.ThresholdSignal(signal);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0], 14);
}

TEST(ShotBoundaryTest, EmptyAndTinyVideos) {
  media::MemoryVideo empty({}, 25.0);
  ShotBoundaryDetector detector;
  auto r = detector.Detect(empty);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->boundaries.empty());
  EXPECT_TRUE(r->distances.empty());
}

struct MetricCase {
  vision::HistogramDistance metric;
};

class ShotBoundaryMetricTest : public ::testing::TestWithParam<MetricCase> {};

TEST_P(ShotBoundaryMetricTest, AllMetricsDetectCuts) {
  const Broadcast& b = SharedBroadcast();
  ShotBoundaryConfig config;
  config.metric = GetParam().metric;
  ShotBoundaryDetector detector(config);
  auto result = detector.Detect(*b.video);
  ASSERT_TRUE(result.ok());
  PrecisionRecall pr =
      MatchWithTolerance(b.truth.CutPositions(), result->boundaries, 2);
  EXPECT_GE(pr.F1(), 0.85) << vision::HistogramDistanceToString(GetParam().metric)
                           << ": " << pr.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, ShotBoundaryMetricTest,
    ::testing::Values(MetricCase{vision::HistogramDistance::kL1},
                      MetricCase{vision::HistogramDistance::kChiSquare},
                      MetricCase{vision::HistogramDistance::kIntersection}));

// ---------- Shot classification ----------

TEST(ShotClassifierTest, ClassifiesGroundTruthShots) {
  const Broadcast& b = SharedBroadcast();
  ShotClassifier classifier;
  ConfusionMatrix cm(media::kNumShotCategories);
  for (const auto& shot : b.truth.shots) {
    auto classified = classifier.Classify(*b.video, shot.range);
    ASSERT_TRUE(classified.ok());
    cm.Add(static_cast<size_t>(shot.category),
           static_cast<size_t>(classified->category));
  }
  EXPECT_GE(cm.Accuracy(), 0.9) << cm.ToString(
      {"tennis", "close-up", "audience", "other"});
  // The paper's strong cues: court and close-up shots should be near-perfect.
  EXPECT_GE(cm.ClassRecall(static_cast<size_t>(ShotCategory::kTennis)), 0.99);
}

TEST(ShotClassifierTest, FeaturesSeparateCategories) {
  TennisBroadcastSynthesizer synth(TestConfig());
  media::MemoryVideo video({}, 25.0);
  // 4 standalone frames, one per category, as 1-frame "shots".
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(
        video.Append(synth.RenderStandalone(static_cast<ShotCategory>(c), 100 + c))
            .ok());
  }
  ShotClassifier classifier;
  auto tennis = classifier.ComputeFeatures(video, FrameInterval{0, 0}).TakeValue();
  auto closeup = classifier.ComputeFeatures(video, FrameInterval{1, 1}).TakeValue();
  auto audience = classifier.ComputeFeatures(video, FrameInterval{2, 2}).TakeValue();
  auto other = classifier.ComputeFeatures(video, FrameInterval{3, 3}).TakeValue();

  EXPECT_GT(tennis.dominant_ratio, closeup.dominant_ratio);
  EXPECT_GT(closeup.skin_ratio, 0.1);
  EXPECT_LT(tennis.skin_ratio, 0.05);
  EXPECT_GT(audience.entropy, other.entropy);
  EXPECT_GT(audience.entropy, 6.0);
}

TEST(ShotClassifierTest, ClassifyAllMatchesIndividual) {
  const Broadcast& b = SharedBroadcast();
  ShotClassifier classifier;
  std::vector<FrameInterval> ranges;
  for (const auto& s : b.truth.shots) ranges.push_back(s.range);
  auto all = classifier.ClassifyAll(*b.video, ranges);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto one = classifier.Classify(*b.video, ranges[i]);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*all)[i].category, one->category) << "shot " << i;
  }
}

TEST(ShotClassifierTest, RejectsBadRange) {
  const Broadcast& b = SharedBroadcast();
  ShotClassifier classifier;
  EXPECT_FALSE(classifier.Classify(*b.video, FrameInterval{-1, 5}).ok());
  EXPECT_FALSE(
      classifier
          .Classify(*b.video, FrameInterval{0, b.video->num_frames() + 5})
          .ok());
}

TEST(ShotClassifierTest, RuleOrderCourtBeatsSkin) {
  // A feature vector that satisfies both court and skin cues must be court:
  // the paper applies the dominant-color rule first.
  ShotClassifier classifier;
  ShotFeatures f;
  f.dominant_ratio = 0.5;
  f.dominant_hue = 220.0;
  f.dominant_saturation = 0.7;
  f.dominant_value = 0.7;
  f.skin_ratio = 0.5;
  EXPECT_EQ(classifier.ClassifyFeatures(f), ShotCategory::kTennis);
}

TEST(ShotClassifierTest, DefaultsToOther) {
  ShotClassifier classifier;
  ShotFeatures f;  // all zeros
  EXPECT_EQ(classifier.ClassifyFeatures(f), ShotCategory::kOther);
}

// ---------- End-to-end segment detector (boundary + classification) ----------

TEST(SegmentDetectorTest, EndToEndPipeline) {
  const Broadcast& b = SharedBroadcast();
  ShotBoundaryDetector boundary_detector;
  auto boundaries = boundary_detector.Detect(*b.video);
  ASSERT_TRUE(boundaries.ok());
  auto shots = boundaries->ToShots(b.video->num_frames());

  ShotClassifier classifier;
  auto classified = classifier.ClassifyAll(*b.video, shots);
  ASSERT_TRUE(classified.ok());

  // Frame-level classification accuracy: each frame inherits its detected
  // shot's category; compare against truth per frame.
  int64_t correct = 0;
  for (const auto& shot : *classified) {
    for (int64_t f = shot.range.begin; f <= shot.range.end; ++f) {
      if (b.truth.CategoryAt(f) == shot.category) ++correct;
    }
  }
  double frame_accuracy =
      static_cast<double>(correct) / static_cast<double>(b.video->num_frames());
  EXPECT_GE(frame_accuracy, 0.9);
}

}  // namespace
}  // namespace cobra::detectors
