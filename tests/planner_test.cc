/// \file planner_test.cc
/// The cost-based planner test suite (DESIGN.md §4g):
///   * Table statistics (Stats/Ndv/CodeCount) against brute-force counts,
///     including post-append staleness and the bulk-gather path;
///   * selectivity estimation invariants (provably_empty is certain);
///   * traversal-strategy and hash-join build-side equivalence;
///   * the accept-filtered DAAT evaluator against brute force;
///   * the planner-vs-SearchFixedOrder equivalence property sweep over all
///     2^4 modality combinations, randomized selectivities, and degenerate
///     corpora — results and errors must be identical;
///   * a concurrent QueryEngine variant (tsan-labeled in CMake).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/digital_library.h"
#include "engine/query_engine.h"
#include "storage/ops.h"
#include "storage/stats.h"
#include "storage/table.h"
#include "util/rng.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine {
namespace {

using storage::ColumnDef;
using storage::CompareOp;
using storage::DataType;
using storage::Predicate;
using storage::Table;
using storage::Value;
using webspace::TraversalStrategy;

// ---------------------------------------------------------------------------
// Fixture: synthesized tournament site + interviews + synthetic video
// descriptions (no video rendering — the meta-index is populated directly).

struct PlannerFixture {
  std::unique_ptr<DigitalLibrary> library;
  webspace::SynthesizedSite truth;  // store moved out
};

std::unique_ptr<DigitalLibrary> BuildLibrary(webspace::SynthesizedSite* site,
                                             bool finalize_text,
                                             bool add_videos) {
  auto library = DigitalLibrary::Create(std::move(site->store)).TakeValue();
  for (const auto& [oid, text] : site->interview_texts) {
    EXPECT_TRUE(library->AddInterview(oid, text).ok());
  }
  if (finalize_text) EXPECT_TRUE(library->FinalizeText().ok());
  if (add_videos) {
    const char* names[] = {"net_play", "rally", "service", "smash"};
    Rng rng(4242);
    for (int64_t video_oid : site->video_oids) {
      core::VideoDescription desc(video_oid, "synthetic", 25.0, 40000);
      for (int e = 0; e < 30; ++e) {
        const int64_t begin = rng.NextInt(0, 39000);
        desc.Add(core::CobraLayer::kEvent,
                 grammar::Annotation(names[rng.NextBounded(4)],
                                     {begin, begin + rng.NextInt(10, 900)})
                     .Set("player", rng.NextInt(-1, 1)));
      }
      EXPECT_TRUE(library->AddVideoDescription(desc).ok());
    }
  }
  return library;
}

const PlannerFixture& SharedFixture() {
  static const PlannerFixture* fixture = [] {
    webspace::SiteConfig config;
    config.num_players = 40;
    config.num_past_years = 4;
    config.videos_per_year = 2;
    config.seed = 99;
    config.ensure_answer = true;
    auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
    auto* out = new PlannerFixture();
    out->truth.player_oids = site.player_oids;
    out->truth.tournament_oids = site.tournament_oids;
    out->truth.video_oids = site.video_oids;
    out->truth.interview_texts = site.interview_texts;
    out->truth.champions = site.champions;
    out->library = BuildLibrary(&site, /*finalize_text=*/true,
                                /*add_videos=*/true);
    return out;
  }();
  return *fixture;
}

// ---------------------------------------------------------------------------
// Table statistics vs brute force.

void CheckStatsAgainstBruteForce(const Table& table) {
  for (size_t c = 0; c < table.num_columns(); ++c) {
    auto stats = table.Stats(c).TakeValue();
    EXPECT_EQ(stats.rows, table.num_rows());
    EXPECT_EQ(stats.ndv, table.Ndv(c).TakeValue());
    switch (table.schema()[c].type) {
      case DataType::kInt64: {
        std::set<int64_t> distinct;
        int64_t lo = std::numeric_limits<int64_t>::max();
        int64_t hi = std::numeric_limits<int64_t>::min();
        for (int64_t v : table.IntColumn(c)) {
          distinct.insert(v);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        EXPECT_EQ(stats.ndv, static_cast<int64_t>(distinct.size()));
        if (!distinct.empty()) {
          EXPECT_EQ(stats.range.imin, lo);
          EXPECT_EQ(stats.range.imax, hi);
        }
        break;
      }
      case DataType::kDouble: {
        // NDV counts distinct bit patterns (0.0 vs -0.0, NaN payloads).
        std::set<uint64_t> distinct;
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        bool has_nan = false;
        for (double v : table.DoubleColumn(c)) {
          uint64_t bits;
          static_assert(sizeof(bits) == sizeof(v), "layout");
          std::memcpy(&bits, &v, sizeof(bits));
          distinct.insert(bits);
          if (std::isnan(v)) {
            has_nan = true;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
        EXPECT_EQ(stats.ndv, static_cast<int64_t>(distinct.size()));
        EXPECT_EQ(stats.range.has_nan, has_nan);
        if (lo <= hi) {
          EXPECT_EQ(stats.range.dmin, lo);
          EXPECT_EQ(stats.range.dmax, hi);
        }
        break;
      }
      case DataType::kString: {
        std::map<std::string, int64_t> counts;
        for (const std::string& s : table.StringColumn(c)) ++counts[s];
        EXPECT_EQ(stats.ndv, static_cast<int64_t>(counts.size()));
        for (const auto& [s, n] : counts) {
          const int32_t code = table.DictCode(c, s);
          ASSERT_GE(code, 0);
          EXPECT_EQ(table.CodeCount(c, code).TakeValue(), n);
        }
        EXPECT_EQ(table.CodeCount(c, -1).TakeValue(), 0);
        EXPECT_EQ(table.CodeCount(c, 1 << 20).TakeValue(), 0);
        break;
      }
    }
  }
}

Table RandomTable(Rng* rng, int64_t rows) {
  auto table = Table::Create({ColumnDef{"i", DataType::kInt64},
                              ColumnDef{"d", DataType::kDouble},
                              ColumnDef{"s", DataType::kString}})
                   .TakeValue();
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int64_t r = 0; r < rows; ++r) {
    double d = rng->NextDouble(-5.0, 5.0);
    const uint64_t roll = rng->NextBounded(20);
    if (roll == 0) d = std::numeric_limits<double>::quiet_NaN();
    if (roll == 1) d = -0.0;
    if (roll == 2) d = 0.0;
    table
        .AppendRow({Value{rng->NextInt(-50, 50)}, Value{d},
                    Value{std::string(words[rng->NextBounded(5)])}})
        .ok();
  }
  return table;
}

TEST(TableStatsTest, MatchesBruteForceAndStaysFreshAcrossAppends) {
  Rng rng(1);
  Table table = RandomTable(&rng, 0);
  CheckStatsAgainstBruteForce(table);  // empty table
  for (int round = 0; round < 3; ++round) {
    for (int64_t r = 0; r < 700; ++r) {
      double d = rng.NextDouble(-5.0, 5.0);
      table
          .AppendRow({Value{rng.NextInt(-50, 50)}, Value{d},
                      Value{std::string(round == 2 ? "late" : "early")}})
          .ok();
    }
    // Stats must reflect every append immediately (no lazy invalidation).
    CheckStatsAgainstBruteForce(table);
  }
}

TEST(TableStatsTest, BulkGatherPathMaintainsStats) {
  Rng rng(2);
  Table table = RandomTable(&rng, 1500);
  std::vector<int64_t> rows;
  for (int64_t r = 0; r < table.num_rows(); r += 3) rows.push_back(r);
  auto gathered = storage::Materialize(table, rows, {}).TakeValue();
  CheckStatsAgainstBruteForce(gathered);
}

TEST(TableStatsTest, ErrorsOnBadColumn) {
  Rng rng(3);
  Table table = RandomTable(&rng, 5);
  EXPECT_FALSE(table.Stats(99).ok());
  EXPECT_FALSE(table.Ndv(99).ok());
  EXPECT_FALSE(table.CodeCount(0, 0).ok()) << "int column has no codes";
}

// ---------------------------------------------------------------------------
// Selectivity estimation: provably_empty must be certain; fractions sane.

TEST(SelectivityTest, ProvablyEmptyIsCertain) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    Table table = RandomTable(&rng, static_cast<int64_t>(rng.NextBounded(3000)));
    const char* cols[] = {"i", "d", "s"};
    const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    for (int q = 0; q < 30; ++q) {
      Predicate pred;
      pred.column = cols[rng.NextBounded(3)];
      pred.op = ops[rng.NextBounded(6)];
      if (pred.column == "i") {
        pred.literal = rng.NextInt(-80, 80);
      } else if (pred.column == "d") {
        pred.literal = rng.NextDouble(-8.0, 8.0);
      } else {
        const char* words[] = {"alpha", "beta", "zeta", "omega"};
        pred.literal = std::string(words[rng.NextBounded(4)]);
      }
      auto est = storage::EstimateSelectivity(table, pred).TakeValue();
      EXPECT_GE(est.fraction, 0.0);
      EXPECT_LE(est.fraction, 1.0);
      auto rows = storage::Select(table, pred).TakeValue();
      if (est.provably_empty) {
        EXPECT_TRUE(rows.empty())
            << "provably_empty lied for " << pred.column << " op "
            << static_cast<int>(pred.op);
      }
      if (est.exact) {
        EXPECT_DOUBLE_EQ(est.fraction,
                         table.num_rows() == 0
                             ? 0.0
                             : static_cast<double>(rows.size()) /
                                   static_cast<double>(table.num_rows()));
      }
    }
  }
}

TEST(SelectivityTest, DictionaryMissAndOutOfRangeAreEmpty) {
  Rng rng(8);
  Table table = RandomTable(&rng, 500);
  auto miss = storage::EstimateSelectivity(
                  table, {"s", CompareOp::kEq, std::string("no_such_word")})
                  .TakeValue();
  EXPECT_TRUE(miss.provably_empty);
  auto out_of_range =
      storage::EstimateSelectivity(table, {"i", CompareOp::kGt, int64_t{999}})
          .TakeValue();
  EXPECT_TRUE(out_of_range.provably_empty);
  EXPECT_FALSE(
      storage::EstimateSelectivity(table, {"nope", CompareOp::kEq, int64_t{1}})
          .ok());
}

// ---------------------------------------------------------------------------
// Costed traversal and join build sides: every strategy bit-identical.

TEST(TraversalTest, AllStrategiesAgree) {
  const PlannerFixture& fixture = SharedFixture();
  const webspace::WebspaceStore& store = fixture.library->store();
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> keys;
    for (int64_t oid : fixture.truth.player_oids) {
      if (rng.NextBernoulli(trial / 20.0)) keys.push_back(oid);
    }
    for (const char* assoc : {"plays_in", "won", "interviewed_in"}) {
      const int64_t role = rng.NextBounded(3) == 0 ? 0 : -1;
      TraversalStrategy walk_chosen, scan_chosen, auto_chosen;
      auto walk = store.Traverse(assoc, keys, role, TraversalStrategy::kWalk,
                                 &walk_chosen);
      auto scan = store.Traverse(assoc, keys, role, TraversalStrategy::kScan,
                                 &scan_chosen);
      auto autod = store.Traverse(assoc, keys, role, TraversalStrategy::kAuto,
                                  &auto_chosen);
      ASSERT_TRUE(walk.ok() && scan.ok() && autod.ok());
      EXPECT_EQ(walk.value(), scan.value());
      EXPECT_EQ(walk.value(), autod.value());
      EXPECT_EQ(walk_chosen, TraversalStrategy::kWalk);
    }
  }
  // Reverse direction too.
  TraversalStrategy chosen;
  auto walk = store.TraverseReverse("won", fixture.truth.tournament_oids, -1,
                                    TraversalStrategy::kWalk, &chosen);
  auto scan = store.TraverseReverse("won", fixture.truth.tournament_oids, -1,
                                    TraversalStrategy::kScan, &chosen);
  ASSERT_TRUE(walk.ok() && scan.ok());
  EXPECT_EQ(walk.value(), scan.value());
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema()[c].name, b.schema()[c].name);
    ASSERT_EQ(a.schema()[c].type, b.schema()[c].type);
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.GetValue(r, c).TakeValue(), b.GetValue(r, c).TakeValue())
          << "cell (" << r << ", " << c << ")";
    }
  }
}

TEST(JoinBuildSideTest, AllBuildSidesMatchReference) {
  Rng rng(13);
  for (int trial = 0; trial < 12; ++trial) {
    const int64_t lrows = static_cast<int64_t>(rng.NextBounded(400));
    const int64_t rrows = static_cast<int64_t>(rng.NextBounded(400));
    auto left = Table::Create({ColumnDef{"k", DataType::kInt64},
                               ColumnDef{"lv", DataType::kString}})
                    .TakeValue();
    auto right = Table::Create({ColumnDef{"k", DataType::kInt64},
                                ColumnDef{"rv", DataType::kInt64}})
                     .TakeValue();
    const int64_t key_space = 1 + static_cast<int64_t>(rng.NextBounded(40));
    const char* words[] = {"x", "y", "z"};
    for (int64_t r = 0; r < lrows; ++r) {
      left.AppendRow({Value{rng.NextInt(0, key_space)},
                      Value{std::string(words[rng.NextBounded(3)])}})
          .ok();
    }
    for (int64_t r = 0; r < rrows; ++r) {
      right
          .AppendRow({Value{rng.NextInt(0, key_space)},
                      Value{rng.NextInt(0, 1000)}})
          .ok();
    }
    auto ref = storage::reference::HashJoin(left, right, "k", "k").TakeValue();
    for (auto side : {storage::JoinBuildSide::kAuto,
                      storage::JoinBuildSide::kLeft,
                      storage::JoinBuildSide::kRight}) {
      storage::JoinOptions options;
      options.build_side = side;
      auto joined =
          storage::HashJoin(left, right, "k", "k", options).TakeValue();
      ExpectTablesEqual(ref, joined);
    }
  }
}

TEST(JoinBuildSideTest, StringKeysMatchReference) {
  Rng rng(14);
  auto left = Table::Create({ColumnDef{"k", DataType::kString},
                             ColumnDef{"lv", DataType::kInt64}})
                  .TakeValue();
  auto right = Table::Create({ColumnDef{"k", DataType::kString},
                              ColumnDef{"rv", DataType::kInt64}})
                   .TakeValue();
  const char* keys[] = {"ace", "fault", "let", "rally", "smash"};
  for (int64_t r = 0; r < 300; ++r) {
    left.AppendRow({Value{std::string(keys[rng.NextBounded(5)])},
                    Value{r}})
        .ok();
  }
  for (int64_t r = 0; r < 37; ++r) {
    right
        .AppendRow({Value{std::string(keys[rng.NextBounded(3)])}, Value{-r}})
        .ok();
  }
  auto ref = storage::reference::HashJoin(left, right, "k", "k").TakeValue();
  for (auto side : {storage::JoinBuildSide::kAuto,
                    storage::JoinBuildSide::kLeft,
                    storage::JoinBuildSide::kRight}) {
    storage::JoinOptions options;
    options.build_side = side;
    auto joined = storage::HashJoin(left, right, "k", "k", options).TakeValue();
    ExpectTablesEqual(ref, joined);
  }
}

// ---------------------------------------------------------------------------
// Accept-filtered DAAT vs brute force.

TEST(FilteredTopNTest, ExactTopNOfAcceptedSubset) {
  text::InvertedIndex index;
  Rng rng(17);
  const char* vocab[] = {"net",   "serve",  "volley", "champion", "rally",
                         "match", "winner", "court",  "tennis",   "title"};
  constexpr int64_t kDocs = 200;
  for (int64_t d = 0; d < kDocs; ++d) {
    std::string doc;
    const int len = 5 + static_cast<int>(rng.NextBounded(30));
    for (int w = 0; w < len; ++w) {
      doc += vocab[rng.NextBounded(10)];
      doc += ' ';
    }
    ASSERT_TRUE(index.AddText(d * 3, doc).ok());  // sparse non-contiguous ids
  }
  ASSERT_TRUE(index.Finalize().ok());

  const std::string queries[] = {"champion title", "net volley serve",
                                 "tennis", "winner rally champion match"};
  for (const std::string& query : queries) {
    // Global exhaustive ranking as ground truth.
    auto global = index.SearchExhaustive(query, kDocs + 1).TakeValue();
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<int64_t> accept;
      for (int64_t d = 0; d < kDocs; ++d) {
        if (rng.NextBernoulli(0.3)) accept.push_back(d * 3);
      }
      for (size_t n : {size_t{3}, size_t{10}, size_t{500}}) {
        std::vector<text::SearchHit> expected;
        const std::set<int64_t> accept_set(accept.begin(), accept.end());
        for (const text::SearchHit& hit : global) {
          if (accept_set.count(hit.doc_id)) expected.push_back(hit);
          if (expected.size() == n) break;
        }
        auto filtered = index.SearchTopNFiltered(query, n, accept).TakeValue();
        ASSERT_EQ(filtered.size(), expected.size()) << query << " n=" << n;
        for (size_t i = 0; i < filtered.size(); ++i) {
          EXPECT_EQ(filtered[i].doc_id, expected[i].doc_id);
          EXPECT_DOUBLE_EQ(filtered[i].score, expected[i].score);
        }
      }
    }
    // Empty accept set: no hits, no error.
    EXPECT_TRUE(index.SearchTopNFiltered(query, 10, {}).TakeValue().empty());
  }
}

// ---------------------------------------------------------------------------
// Planner vs fixed-order equivalence.

void ExpectSameAnswer(const DigitalLibrary& library, const CombinedQuery& query,
                      const char* label) {
  auto fixed = library.SearchFixedOrder(query);
  planner::PlanExplain explain;
  auto planned = library.Search(query, nullptr, &explain);
  ASSERT_EQ(fixed.ok(), planned.ok())
      << label << ": fixed "
      << (fixed.ok() ? "ok" : fixed.status().ToString()) << " vs planned "
      << (planned.ok() ? "ok" : planned.status().ToString());
  if (!fixed.ok()) {
    EXPECT_EQ(fixed.status().ToString(), planned.status().ToString()) << label;
    return;
  }
  const auto& a = fixed.value();
  const auto& b = planned.value();
  ASSERT_EQ(a.size(), b.size()) << label << "\n" << explain.ToString();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].player_oid, b[i].player_oid) << label << " hit " << i;
    EXPECT_EQ(a[i].player_name, b[i].player_name) << label << " hit " << i;
    EXPECT_EQ(a[i].video_oid, b[i].video_oid) << label << " hit " << i;
    EXPECT_EQ(a[i].range.begin, b[i].range.begin) << label << " hit " << i;
    EXPECT_EQ(a[i].range.end, b[i].range.end) << label << " hit " << i;
    EXPECT_EQ(a[i].event, b[i].event) << label << " hit " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].text_score, b[i].text_score) << label << " hit " << i;
  }
}

CombinedQuery RandomQuery(Rng* rng, int combo) {
  const bool with_preds = combo & 1;
  const bool with_champ = combo & 2;
  const bool with_text = combo & 4;
  const bool with_event = combo & 8;
  CombinedQuery query;
  if (with_preds) {
    const int n = 1 + static_cast<int>(rng->NextBounded(3));
    for (int i = 0; i < n; ++i) {
      switch (rng->NextBounded(6)) {
        case 0:
          query.player_predicates.push_back(
              {"gender", CompareOp::kEq, std::string("female")});
          break;
        case 1:
          query.player_predicates.push_back(
              {"hand", CompareOp::kEq, std::string("left")});
          break;
        case 2:
          query.player_predicates.push_back(
              {"ranking", CompareOp::kLe, rng->NextInt(1, 40)});
          break;
        case 3:
          query.player_predicates.push_back(
              {"ranking", CompareOp::kGe, rng->NextInt(1, 45)});
          break;
        case 4:  // provably empty: no such dictionary entry
          query.player_predicates.push_back(
              {"hand", CompareOp::kEq, std::string("ambidextrous")});
          break;
        case 5:  // provably empty: outside the zone range
          query.player_predicates.push_back(
              {"ranking", CompareOp::kGt, int64_t{100000}});
          break;
      }
    }
  }
  if (with_champ) {
    query.require_champion = true;
    switch (rng->NextBounded(3)) {
      case 0:
        break;  // any year
      case 1:
        query.won_year = 1996 + rng->NextInt(0, 3);
        break;
      case 2:
        query.won_year = 1800;  // provably empty year
        break;
    }
  }
  if (with_text) {
    const char* texts[] = {"champion", "tournament", "champion winner title",
                           "net approach volley"};
    query.text = texts[rng->NextBounded(4)];
    const size_t topks[] = {0, 3, 10, 100000};
    query.text_top_k = topks[rng->NextBounded(4)];
  }
  if (with_event) {
    const char* events[] = {"net_play", "rally", "no_such_event"};
    query.event = events[rng->NextBounded(3)];
  }
  return query;
}

TEST(PlannerEquivalenceTest, AllModalityCombosMatchFixedOrder) {
  const PlannerFixture& fixture = SharedFixture();
  Rng rng(21);
  for (int combo = 0; combo < 16; ++combo) {
    for (int variant = 0; variant < 12; ++variant) {
      CombinedQuery query = RandomQuery(&rng, combo);
      const std::string label =
          "combo=" + std::to_string(combo) + " variant=" +
          std::to_string(variant);
      ExpectSameAnswer(*fixture.library, query, label.c_str());
    }
  }
}

TEST(PlannerEquivalenceTest, InvalidPredicatesErrorIdentically) {
  const PlannerFixture& fixture = SharedFixture();
  CombinedQuery bad_column;
  bad_column.player_predicates = {{"no_such_column", CompareOp::kEq,
                                   int64_t{1}}};
  ExpectSameAnswer(*fixture.library, bad_column, "bad column");

  CombinedQuery bad_type;
  bad_type.player_predicates = {{"ranking", CompareOp::kEq,
                                 std::string("left")}};
  bad_type.text = "champion";
  ExpectSameAnswer(*fixture.library, bad_type, "type mismatch");

  CombinedQuery empty_then_bad;
  empty_then_bad.player_predicates = {
      {"hand", CompareOp::kEq, std::string("ambidextrous")},
      {"gender", CompareOp::kEq, int64_t{3}}};  // type error after empty pred
  ExpectSameAnswer(*fixture.library, empty_then_bad, "empty then bad");

  CombinedQuery stop_words_only;
  stop_words_only.text = "the of and";
  stop_words_only.player_predicates = {
      {"hand", CompareOp::kEq, std::string("ambidextrous")}};
  ExpectSameAnswer(*fixture.library, stop_words_only,
                   "stop-word text must error despite empty concept stage");
}

TEST(PlannerEquivalenceTest, DegenerateCorpora) {
  // Empty store: every combo must agree (empty results or identical errors).
  {
    auto schema = webspace::SiteSynthesizer::TournamentSchema().TakeValue();
    auto store = webspace::WebspaceStore::Create(std::move(schema)).TakeValue();
    auto library = DigitalLibrary::Create(std::move(store)).TakeValue();
    Rng rng(31);
    for (int combo = 0; combo < 16; ++combo) {
      CombinedQuery query = RandomQuery(&rng, combo);
      ExpectSameAnswer(*library, query,
                       ("empty store combo=" + std::to_string(combo)).c_str());
    }
  }
  // Text never finalized: text queries must error identically.
  {
    webspace::SiteConfig config;
    config.num_players = 8;
    config.num_past_years = 2;
    config.seed = 5;
    auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
    auto library =
        BuildLibrary(&site, /*finalize_text=*/false, /*add_videos=*/false);
    Rng rng(32);
    for (int combo = 0; combo < 16; ++combo) {
      CombinedQuery query = RandomQuery(&rng, combo);
      ExpectSameAnswer(
          *library, query,
          ("unfinalized combo=" + std::to_string(combo)).c_str());
    }
  }
  // No indexed videos: event queries short-circuit to the same empties.
  {
    webspace::SiteConfig config;
    config.num_players = 8;
    config.num_past_years = 2;
    config.seed = 6;
    auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
    auto library =
        BuildLibrary(&site, /*finalize_text=*/true, /*add_videos=*/false);
    Rng rng(33);
    for (int combo = 0; combo < 16; ++combo) {
      CombinedQuery query = RandomQuery(&rng, combo);
      ExpectSameAnswer(
          *library, query,
          ("no videos combo=" + std::to_string(combo)).c_str());
    }
  }
}

TEST(PlannerTest, PlannerKnobRoutesToFixedOrder) {
  webspace::SiteConfig config;
  config.num_players = 8;
  config.num_past_years = 2;
  config.seed = 9;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  auto library = BuildLibrary(&site, true, false);
  EXPECT_TRUE(library->planner_enabled());
  library->set_planner_enabled(false);
  CombinedQuery query;
  query.require_champion = true;
  planner::PlanExplain explain;
  explain.used_planner = true;
  ASSERT_TRUE(library->Search(query, nullptr, &explain).ok());
  EXPECT_FALSE(explain.used_planner) << "knob off must use the fixed order";
  library->set_planner_enabled(true);
  ASSERT_TRUE(library->Search(query, nullptr, &explain).ok());
  EXPECT_TRUE(explain.used_planner);
}

TEST(PlannerTest, ExplainReportsShortCircuitAndSteps) {
  const PlannerFixture& fixture = SharedFixture();
  CombinedQuery query;
  query.player_predicates = {
      {"hand", CompareOp::kEq, std::string("ambidextrous")}};
  auto explain = fixture.library->ExplainSearch(query).TakeValue();
  EXPECT_TRUE(explain.used_planner);
  EXPECT_TRUE(explain.short_circuited);
  EXPECT_FALSE(explain.steps.empty());
  EXPECT_NE(explain.ToString().find("short_circuit"), std::string::npos);

  CombinedQuery full;
  full.player_predicates = {
      {"gender", CompareOp::kEq, std::string("female")},
      {"hand", CompareOp::kEq, std::string("left")}};
  full.require_champion = true;
  full.event = "net_play";
  auto full_explain = fixture.library->ExplainSearch(full).TakeValue();
  EXPECT_FALSE(full_explain.steps.empty());
  // Estimated and actual cardinalities are both recorded per step.
  bool executed_step = false;
  for (const auto& step : full_explain.steps) {
    executed_step = executed_step || step.actual_rows >= 0;
  }
  EXPECT_TRUE(executed_step) << full_explain.ToString();
}

// ---------------------------------------------------------------------------
// Concurrent QueryEngine variant (tsan-labeled via CMake).

TEST(PlannerConcurrencyTest, BatchMatchesFixedOrderUnderThreads) {
  const PlannerFixture& fixture = SharedFixture();
  Rng rng(41);
  std::vector<CombinedQuery> queries;
  for (int combo = 0; combo < 16; ++combo) {
    queries.push_back(RandomQuery(&rng, combo));
    queries.push_back(RandomQuery(&rng, combo));
  }
  std::vector<Result<std::vector<SceneHit>>> expected;
  for (const CombinedQuery& q : queries) {
    expected.push_back(fixture.library->SearchFixedOrder(q));
  }

  QueryEngineConfig config;
  config.num_threads = 4;
  config.enable_cache = false;  // force every query through the planner
  QueryEngine engine(fixture.library.get(), config);
  auto results = engine.SearchBatch(queries);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].ok(), expected[i].ok()) << "query " << i;
    if (!expected[i].ok()) {
      EXPECT_EQ(results[i].status().ToString(), expected[i].status().ToString());
      continue;
    }
    const auto& a = expected[i].value();
    const auto& b = results[i].value();
    ASSERT_EQ(a.size(), b.size()) << "query " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].player_oid, b[j].player_oid);
      EXPECT_EQ(a[j].video_oid, b[j].video_oid);
      EXPECT_EQ(a[j].range.begin, b[j].range.begin);
      EXPECT_EQ(a[j].range.end, b[j].range.end);
      EXPECT_EQ(a[j].event, b[j].event);
      EXPECT_EQ(a[j].text_score, b[j].text_score);
    }
  }
  auto stats = engine.stats();
  EXPECT_GT(stats.planner_plans, 0);
  EXPECT_GT(stats.planner_short_circuits, 0);

  auto explain = engine.Explain(queries[0]);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain.value().find("plan:"), std::string::npos);
}

}  // namespace
}  // namespace cobra::engine
