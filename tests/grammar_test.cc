#include <gtest/gtest.h>

#include "grammar/annotation.h"
#include "grammar/fde.h"
#include "grammar/feature_grammar.h"
#include "media/video.h"

namespace cobra::grammar {
namespace {

constexpr const char* kTennisGrammarText = R"(
# Tennis feature grammar (paper Figure 1).
start video ;
segment   : video ;
tennis    : segment ;
closeup   : segment ;
audience  : segment ;
player    : tennis ;
features  : player ;
net_play  : features ;
rally     : features ;
)";

// ---------- Annotation ----------

TEST(AnnotationTest, TypedAccessors) {
  Annotation a("shot", FrameInterval{0, 10});
  a.Set("category", std::string("tennis"));
  a.Set("player", int64_t{1});
  a.Set("speed", 3.5);

  std::string s;
  EXPECT_TRUE(a.GetString("category", &s));
  EXPECT_EQ(s, "tennis");
  int64_t i;
  EXPECT_TRUE(a.GetInt("player", &i));
  EXPECT_EQ(i, 1);
  double d;
  EXPECT_TRUE(a.GetDouble("speed", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  // Int promotes to double.
  EXPECT_TRUE(a.GetDouble("player", &d));
  EXPECT_DOUBLE_EQ(d, 1.0);
  // Wrong type / missing key.
  EXPECT_FALSE(a.GetInt("category", &i));
  EXPECT_FALSE(a.GetString("missing", &s));
  EXPECT_EQ(a.IntOr("missing", 7), 7);
  EXPECT_EQ(a.StringOr("category", "x"), "tennis");
  EXPECT_DOUBLE_EQ(a.DoubleOr("speed", 0.0), 3.5);
}

TEST(AnnotationTest, MetaValueToString) {
  EXPECT_EQ(MetaValueToString(MetaValue{int64_t{42}}), "42");
  EXPECT_EQ(MetaValueToString(MetaValue{std::string("x")}), "x");
  EXPECT_EQ(MetaValueToString(MetaValue{2.5}), "2.5");
}

// ---------- Grammar parsing ----------

TEST(FeatureGrammarTest, ParsesTennisGrammar) {
  auto g = FeatureGrammar::Parse(kTennisGrammarText);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->start_symbol(), "video");
  EXPECT_EQ(g->rules().size(), 8u);
  EXPECT_TRUE(g->HasSymbol("net_play"));
  EXPECT_FALSE(g->HasSymbol("nonexistent"));
  EXPECT_EQ(g->DependenciesOf("player"), std::vector<std::string>{"tennis"});
  EXPECT_TRUE(g->DependenciesOf("video").empty());
}

TEST(FeatureGrammarTest, ExecutionOrderRespectsDependencies) {
  auto g = FeatureGrammar::Parse(kTennisGrammarText).TakeValue();
  const auto& order = g.ExecutionOrder();
  ASSERT_EQ(order.size(), 8u);
  auto pos = [&](const std::string& s) {
    return std::find(order.begin(), order.end(), s) - order.begin();
  };
  EXPECT_LT(pos("segment"), pos("tennis"));
  EXPECT_LT(pos("tennis"), pos("player"));
  EXPECT_LT(pos("player"), pos("features"));
  EXPECT_LT(pos("features"), pos("net_play"));
  EXPECT_LT(pos("features"), pos("rally"));
  EXPECT_LT(pos("segment"), pos("closeup"));
}

TEST(FeatureGrammarTest, SyntaxErrors) {
  EXPECT_TRUE(FeatureGrammar::Parse("segment : video ;").status().IsParseError())
      << "missing start";
  EXPECT_TRUE(
      FeatureGrammar::Parse("start video ;\nsegment : video").status().IsParseError())
      << "missing semicolon";
  EXPECT_TRUE(
      FeatureGrammar::Parse("start video ;\nstart video ;").status().IsParseError())
      << "duplicate start";
  EXPECT_TRUE(FeatureGrammar::Parse("start video ;\n: video ;").status().IsParseError());
  EXPECT_TRUE(
      FeatureGrammar::Parse("start video ;\n2bad : video ;").status().IsParseError())
      << "bad identifier";
}

TEST(FeatureGrammarTest, SemanticErrors) {
  // Unknown dependency.
  EXPECT_FALSE(FeatureGrammar::Parse("start video ;\nx : ghost ;").ok());
  // Duplicate rule.
  EXPECT_FALSE(
      FeatureGrammar::Parse("start video ;\nx : video ;\nx : video ;").ok());
  // Cycle.
  EXPECT_FALSE(
      FeatureGrammar::Parse("start video ;\na : b ;\nb : a ;").ok());
  // Start symbol with a rule.
  EXPECT_FALSE(FeatureGrammar::Parse("start video ;\nvideo : video ;").ok());
  // Duplicate dependency.
  EXPECT_FALSE(
      FeatureGrammar::Parse("start video ;\nx : video video ;").ok());
}

TEST(FeatureGrammarTest, CommentsAndBlankLines) {
  auto g = FeatureGrammar::Parse(
      "# header\n\nstart video ;  # trailing\n seg : video ; # rule\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->rules().size(), 1u);
}

TEST(FeatureGrammarTest, DownstreamClosure) {
  auto g = FeatureGrammar::Parse(kTennisGrammarText).TakeValue();
  // tennis -> player -> features -> {net_play, rally}.
  auto down = g.Downstream("tennis");
  std::sort(down.begin(), down.end());
  EXPECT_EQ(down, (std::vector<std::string>{"features", "net_play", "player",
                                            "rally"}));
}

TEST(FeatureGrammarTest, DownstreamOfSegmentIsEverything) {
  auto g = FeatureGrammar::Parse(kTennisGrammarText).TakeValue();
  EXPECT_EQ(g.Downstream("segment").size(), 7u);
  EXPECT_TRUE(g.Downstream("net_play").empty());
}

TEST(FeatureGrammarTest, ToDotContainsAllEdges) {
  auto g = FeatureGrammar::Parse(kTennisGrammarText).TakeValue();
  std::string dot = g.ToDot();
  EXPECT_NE(dot.find("\"video\" -> \"segment\""), std::string::npos);
  EXPECT_NE(dot.find("\"features\" -> \"net_play\""), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// ---------- FDE ----------

media::MemoryVideo TinyVideo() {
  std::vector<media::Frame> frames;
  for (int i = 0; i < 4; ++i) frames.emplace_back(8, 8);
  return media::MemoryVideo(std::move(frames), 25.0);
}

FeatureGrammar ChainGrammar() {
  return FeatureGrammar::Parse(
             "start video ;\na : video ;\nb : a ;\nc : b ;")
      .TakeValue();
}

TEST(FdeTest, RegistersAndValidates) {
  FeatureDetectorEngine fde(ChainGrammar());
  EXPECT_TRUE(fde.CheckComplete().IsInvalidArgument() ||
              fde.CheckComplete().code() == StatusCode::kFailedPrecondition);
  EXPECT_TRUE(fde.RegisterDetector("a", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).ok());
  // Duplicate registration fails.
  EXPECT_EQ(fde.RegisterDetector("a", [](const DetectionContext&) {
                 return std::vector<Annotation>{};
               }).code(),
            StatusCode::kAlreadyExists);
  // Unknown symbol fails.
  EXPECT_TRUE(fde.RegisterDetector("ghost", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).IsNotFound());
  // Start symbol fails.
  EXPECT_TRUE(fde.RegisterDetector("video", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).IsInvalidArgument());
}

TEST(FdeTest, RunsDetectorsInOrderAndFillsBlackboard) {
  FeatureDetectorEngine fde(ChainGrammar());
  std::vector<std::string> call_order;
  ASSERT_TRUE(fde.RegisterDetector("a", [&](const DetectionContext& ctx) {
                   call_order.push_back("a");
                   EXPECT_EQ(ctx.video().num_frames(), 4);
                   std::vector<Annotation> out;
                   out.emplace_back("", FrameInterval{0, 1});
                   out.emplace_back("", FrameInterval{2, 3});
                   return out;
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("b", [&](const DetectionContext& ctx) {
                   call_order.push_back("b");
                   EXPECT_EQ(ctx.Of("a").size(), 2u);
                   std::vector<Annotation> out;
                   Annotation ann("", ctx.Of("a")[0].range);
                   ann.Set("derived", int64_t{1});
                   out.push_back(ann);
                   return out;
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("c", [&](const DetectionContext& ctx) {
                   call_order.push_back("c");
                   EXPECT_EQ(ctx.Of("b").size(), 1u);
                   return std::vector<Annotation>{};
                 }).ok());

  media::MemoryVideo video = TinyVideo();
  auto report = fde.Run(video);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(call_order, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(report->detectors.size(), 3u);
  EXPECT_EQ(report->TotalAnnotations(), 3);
  // Annotations got stamped with their symbol.
  ASSERT_EQ(fde.AnnotationsOf("a").size(), 2u);
  EXPECT_EQ(fde.AnnotationsOf("a")[0].symbol, "a");
  EXPECT_EQ(fde.AnnotationsOf("b")[0].IntOr("derived", 0), 1);
  EXPECT_TRUE(fde.AnnotationsOf("ghost").empty());
  EXPECT_NE(report->ToString().find("total"), std::string::npos);
}

TEST(FdeTest, DetectorFailureSurfaces) {
  FeatureDetectorEngine fde(ChainGrammar());
  ASSERT_TRUE(fde.RegisterDetector("a", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("b", [](const DetectionContext&)
                                            -> Result<std::vector<Annotation>> {
                   return Status::Internal("boom");
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("c", [](const DetectionContext&) {
                   return std::vector<Annotation>{};
                 }).ok());
  media::MemoryVideo video = TinyVideo();
  auto report = fde.Run(video);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDetectorError);
  EXPECT_NE(report.status().message().find("'b'"), std::string::npos);
}

TEST(FdeTest, WhiteboxRuleFiltersAnnotations) {
  auto grammar = FeatureGrammar::Parse(
                     "start video ;\nfeatures : video ;\nnet : features ;")
                     .TakeValue();
  FeatureDetectorEngine fde(std::move(grammar));
  ASSERT_TRUE(fde.RegisterDetector("features", [](const DetectionContext&) {
                   std::vector<Annotation> out;
                   Annotation near_net("", FrameInterval{0, 20});
                   near_net.Set("net_distance", 5.0);
                   Annotation far_from_net("", FrameInterval{30, 60});
                   far_from_net.Set("net_distance", 40.0);
                   Annotation brief("", FrameInterval{70, 72});
                   brief.Set("net_distance", 2.0);
                   out = {near_net, far_from_net, brief};
                   return out;
                 }).ok());
  WhiteboxRule rule;
  rule.source = "features";
  rule.attribute = "net_distance";
  rule.op = WhiteboxRule::Op::kLess;
  rule.threshold = 10.0;
  rule.min_length = 10;
  ASSERT_TRUE(fde.RegisterWhitebox("net", rule).ok());

  media::MemoryVideo video = TinyVideo();
  ASSERT_TRUE(fde.Run(video).ok());
  // Only the first annotation passes both distance and length constraints.
  ASSERT_EQ(fde.AnnotationsOf("net").size(), 1u);
  EXPECT_EQ(fde.AnnotationsOf("net")[0].range, (FrameInterval{0, 20}));
  EXPECT_EQ(fde.AnnotationsOf("net")[0].symbol, "net");
}

TEST(FdeTest, WhiteboxSourceMustBeDependency) {
  auto grammar = FeatureGrammar::Parse(
                     "start video ;\nx : video ;\ny : video ;")
                     .TakeValue();
  FeatureDetectorEngine fde(std::move(grammar));
  WhiteboxRule rule;
  rule.source = "x";  // but y depends only on video
  rule.attribute = "a";
  EXPECT_TRUE(fde.RegisterWhitebox("y", rule).IsInvalidArgument());
}

TEST(FdeTest, IncrementalRerunsOnlyDownstream) {
  FeatureDetectorEngine fde(ChainGrammar());
  int runs_a = 0, runs_b = 0, runs_c = 0;
  ASSERT_TRUE(fde.RegisterDetector("a", [&](const DetectionContext&) {
                   ++runs_a;
                   std::vector<Annotation> out;
                   out.emplace_back("", FrameInterval{0, 3});
                   return out;
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("b", [&](const DetectionContext& ctx) {
                   ++runs_b;
                   return std::vector<Annotation>(ctx.Of("a"));
                 }).ok());
  ASSERT_TRUE(fde.RegisterDetector("c", [&](const DetectionContext& ctx) {
                   ++runs_c;
                   return std::vector<Annotation>(ctx.Of("b"));
                 }).ok());
  media::MemoryVideo video = TinyVideo();
  ASSERT_TRUE(fde.Run(video).ok());
  EXPECT_EQ(runs_a, 1);

  // Replace b: incremental run must re-run b and c but reuse a.
  ASSERT_TRUE(fde.ReplaceDetector("b", [&](const DetectionContext& ctx) {
                   ++runs_b;
                   std::vector<Annotation> out(ctx.Of("a"));
                   for (auto& ann : out) ann.Set("v2", int64_t{1});
                   return out;
                 }).ok());
  auto report = fde.RunIncremental(video);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(runs_a, 1);
  EXPECT_EQ(runs_b, 2);
  EXPECT_EQ(runs_c, 2);
  EXPECT_TRUE(report->detectors[0].from_cache);
  EXPECT_FALSE(report->detectors[1].from_cache);
  EXPECT_EQ(fde.AnnotationsOf("c")[0].IntOr("v2", 0), 1);

  // A second incremental run with nothing dirty reuses everything.
  auto report2 = fde.RunIncremental(video);
  ASSERT_TRUE(report2.ok());
  EXPECT_EQ(runs_b, 2);
  for (const auto& d : report2->detectors) EXPECT_TRUE(d.from_cache);
}

TEST(FdeTest, IncrementalRequiresPriorRun) {
  FeatureDetectorEngine fde(ChainGrammar());
  media::MemoryVideo video = TinyVideo();
  EXPECT_EQ(fde.RunIncremental(video).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cobra::grammar
