/// \file durable_library_test.cc
/// The engine-layer durable library (DESIGN.md §4h):
///   * create → ingest → flush → reopen answers the full 16-modality
///     planner sweep identically to the never-persisted library, in both
///     mmap (zero-copy) and heap restore modes;
///   * crash recovery: the WAL truncated mid-record at randomized offsets
///     reopens cleanly and answers exactly like a clean build over the
///     surviving record prefix;
///   * background compaction (tsan-labeled): queries run concurrently
///     with CompactAsync and stay bit-identical before, during, and after
///     the merged segment is published.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/video_description.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "storage/segment/io.h"
#include "storage/segment/wal.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine {
namespace {

namespace seg = storage::segment;
using storage::CompareOp;
using storage::Value;

constexpr uint64_t kSiteSeed = 2002;

webspace::SynthesizedSite MakeSite() {
  webspace::SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 3;
  config.videos_per_year = 1;
  config.seed = kSiteSeed;
  config.ensure_answer = true;
  return webspace::SiteSynthesizer::Generate(config).TakeValue();
}

core::VideoDescription MakeVideo(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 24; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

/// The 16-modality sweep: every subset of {predicates, champion, text,
/// event} with a few deterministic variants each (the planner_test
/// RandomQuery pattern, seeded so both libraries see identical queries).
std::vector<CombinedQuery> SweepQueries() {
  std::vector<CombinedQuery> queries;
  Rng rng(21);
  for (int combo = 0; combo < 16; ++combo) {
    for (int variant = 0; variant < 3; ++variant) {
      CombinedQuery query;
      if (combo & 1) {
        switch (rng.NextBounded(4)) {
          case 0:
            query.player_predicates.push_back(
                {"gender", CompareOp::kEq, std::string("female")});
            break;
          case 1:
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("left")});
            break;
          case 2:
            query.player_predicates.push_back(
                {"ranking", CompareOp::kLe, rng.NextInt(1, 40)});
            break;
          case 3:  // provably empty
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("ambidextrous")});
            break;
        }
      }
      if (combo & 2) {
        query.require_champion = true;
        if (rng.NextBounded(2) == 0) {
          query.won_year = rng.NextInt(2018, 2022);
        }
      }
      if (combo & 4) {
        const char* texts[] = {"champion title", "net volley",
                               "australian open"};
        query.text = texts[rng.NextBounded(3)];
        query.text_top_k = 1 + rng.NextBounded(12);
      }
      if (combo & 8) {
        const char* events[] = {"net_play", "rally", "service", "no_such"};
        query.event = events[rng.NextBounded(4)];
      }
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

void ExpectSameAnswers(const DigitalLibrary& expected,
                       const DigitalLibrary& actual, const char* label) {
  for (const CombinedQuery& query : SweepQueries()) {
    auto hits_expected = expected.Search(query);
    auto hits_actual = actual.Search(query);
    ASSERT_EQ(hits_expected.ok(), hits_actual.ok()) << label;
    if (!hits_expected.ok()) {
      EXPECT_EQ(hits_expected.status().ToString(),
                hits_actual.status().ToString())
          << label;
      continue;
    }
    ASSERT_EQ(hits_expected->size(), hits_actual->size()) << label;
    for (size_t i = 0; i < hits_expected->size(); ++i) {
      const SceneHit& a = (*hits_expected)[i];
      const SceneHit& b = (*hits_actual)[i];
      EXPECT_EQ(a.player_oid, b.player_oid) << label;
      EXPECT_EQ(a.player_name, b.player_name) << label;
      EXPECT_EQ(a.video_oid, b.video_oid) << label;
      EXPECT_EQ(a.range.begin, b.range.begin) << label;
      EXPECT_EQ(a.range.end, b.range.end) << label;
      EXPECT_EQ(a.event, b.event) << label;
      uint64_t bits_a = 0, bits_b = 0;
      std::memcpy(&bits_a, &a.text_score, 8);
      std::memcpy(&bits_b, &b.text_score, 8);
      EXPECT_EQ(bits_a, bits_b) << label << " hit " << i;
    }
  }
}

/// A never-persisted reference library over the same synthesized site.
std::unique_ptr<DigitalLibrary> CleanLibrary(
    const std::vector<seg::WalRecord>* op_prefix = nullptr) {
  auto site = MakeSite();
  auto interviews = site.interview_texts;
  auto videos = site.video_oids;
  auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  if (op_prefix == nullptr) {
    for (const auto& [oid, body] : interviews) {
      EXPECT_TRUE(library->AddInterview(oid, body).ok());
    }
    EXPECT_TRUE(library->FinalizeText().ok());
    for (int64_t oid : videos) {
      EXPECT_TRUE(library->AddVideoDescription(MakeVideo(oid)).ok());
    }
  } else {
    for (const seg::WalRecord& record : *op_prefix) {
      switch (record.type) {
        case seg::WalRecordType::kAddInterview:
          EXPECT_TRUE(library
                          ->AddInterview(record.interview_oid,
                                         record.interview_text)
                          .ok());
          break;
        case seg::WalRecordType::kFinalizeText:
          EXPECT_TRUE(library->FinalizeText().ok());
          break;
        case seg::WalRecordType::kAddVideo:
          EXPECT_TRUE(library->AddVideoDescription(record.video).ok());
          break;
      }
    }
  }
  return library;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  if (seg::FileExists(dir + "/MANIFEST") || true) {
    auto entries = seg::ListDir(dir);
    if (entries.ok()) {
      for (const std::string& entry : *entries) {
        (void)seg::RemoveFile(dir + "/" + entry);
      }
    }
  }
  EXPECT_TRUE(seg::CreateDir(dir).ok());
  return dir;
}

std::unique_ptr<DurableLibrary> IngestEverything(const std::string& dir,
                                                 bool flush_mid_ingest) {
  auto site = MakeSite();
  auto interviews = site.interview_texts;
  auto videos = site.video_oids;
  auto durable =
      DurableLibrary::Create(dir, std::move(site.store)).TakeValue();
  size_t count = 0;
  for (const auto& [oid, body] : interviews) {
    EXPECT_TRUE(durable->AddInterview(oid, body).ok());
    if (flush_mid_ingest && ++count == interviews.size() / 2) {
      EXPECT_TRUE(durable->Flush().ok());
    }
  }
  EXPECT_TRUE(durable->FinalizeText().ok());
  if (flush_mid_ingest) EXPECT_TRUE(durable->Flush().ok());
  for (int64_t oid : videos) {
    EXPECT_TRUE(durable->AddVideoDescription(MakeVideo(oid)).ok());
  }
  EXPECT_TRUE(durable->Flush().ok());
  return durable;
}

TEST(DurableLibraryTest, ReopenAnswersSweepIdentically) {
  const std::string dir = FreshDir("durable_reopen");
  auto clean = CleanLibrary();
  {
    auto durable = IngestEverything(dir, /*flush_mid_ingest=*/true);
    ExpectSameAnswers(*clean, durable->library(), "pre-close");
    EXPECT_GE(durable->num_segments(), 3u);
  }
  // Zero-copy (mmap) restore.
  {
    auto durable = DurableLibrary::Open(dir).TakeValue();
    ExpectSameAnswers(*clean, durable->library(), "mmap reopen");
    EXPECT_TRUE(durable->LoadCompressedText().ok());
  }
  // Heap restore: same answers, no borrowed spans.
  {
    DurableLibrary::Options options;
    options.copy_text = true;
    auto durable = DurableLibrary::Open(dir, options).TakeValue();
    ExpectSameAnswers(*clean, durable->library(), "heap reopen");
  }
  // Verification off (the benchmark's fast-open arm): still identical.
  {
    DurableLibrary::Options options;
    options.verify = seg::SegmentReader::Verify::kNone;
    auto durable = DurableLibrary::Open(dir, options).TakeValue();
    ExpectSameAnswers(*clean, durable->library(), "no-verify reopen");
  }
}

TEST(DurableLibraryTest, WalReplayRecoversUnflushedMutations) {
  const std::string dir = FreshDir("durable_wal");
  auto site = MakeSite();
  auto interviews = site.interview_texts;
  auto videos = site.video_oids;
  {
    auto durable =
        DurableLibrary::Create(dir, std::move(site.store)).TakeValue();
    for (const auto& [oid, body] : interviews) {
      ASSERT_TRUE(durable->AddInterview(oid, body).ok());
    }
    ASSERT_TRUE(durable->FinalizeText().ok());
    for (int64_t oid : videos) {
      ASSERT_TRUE(durable->AddVideoDescription(MakeVideo(oid)).ok());
    }
    // No Flush: everything after Create lives only in the WAL.
    EXPECT_EQ(durable->num_segments(), 1u);
  }
  auto clean = CleanLibrary();
  auto durable = DurableLibrary::Open(dir).TakeValue();
  ExpectSameAnswers(*clean, durable->library(), "wal replay");
  // The replayed window was folded into a segment on open.
  EXPECT_EQ(durable->num_segments(), 2u);
}

TEST(DurableLibraryTest, TruncatedWalRecoversPrefixIdentically) {
  const std::string dir = FreshDir("durable_torn_src");
  {
    auto site = MakeSite();
    auto interviews = site.interview_texts;
    auto videos = site.video_oids;
    auto durable =
        DurableLibrary::Create(dir, std::move(site.store)).TakeValue();
    for (const auto& [oid, body] : interviews) {
      ASSERT_TRUE(durable->AddInterview(oid, body).ok());
    }
    ASSERT_TRUE(durable->FinalizeText().ok());
    for (int64_t oid : videos) {
      ASSERT_TRUE(durable->AddVideoDescription(MakeVideo(oid)).ok());
    }
  }
  // Locate the WAL and the rest of the durable directory.
  auto entries = seg::ListDir(dir).TakeValue();
  std::string wal_name;
  for (const std::string& entry : entries) {
    if (entry.size() > 4 &&
        entry.compare(entry.size() - 4, 4, ".wal") == 0) {
      wal_name = entry;
    }
  }
  ASSERT_FALSE(wal_name.empty());
  auto wal_map = seg::MmapFile::Open(dir + "/" + wal_name).TakeValue();
  const std::vector<uint8_t> full_wal(wal_map.data(),
                                      wal_map.data() + wal_map.size());
  ASSERT_GT(full_wal.size(), 16u);

  Rng rng(4711);
  for (int trial = 0; trial < 6; ++trial) {
    // Kill ingest mid-record: keep a random prefix of the WAL bytes.
    const size_t keep = trial == 0 ? full_wal.size()
                                   : rng.NextBounded(full_wal.size());
    const std::string crash_dir =
        FreshDir("durable_torn_" + std::to_string(trial));
    for (const std::string& entry : entries) {
      if (entry == wal_name) continue;
      auto bytes = seg::MmapFile::Open(dir + "/" + entry).TakeValue();
      ASSERT_TRUE(seg::WriteFileAtomic(crash_dir + "/" + entry, bytes.data(),
                                       bytes.size())
                      .ok());
    }
    ASSERT_TRUE(seg::WriteFileAtomic(crash_dir + "/" + wal_name,
                                     full_wal.data(), keep)
                    .ok());

    // What a clean build over the surviving record prefix would hold.
    auto prefix =
        seg::ReplayWal(crash_dir + "/" + wal_name).TakeValue();
    auto expected = CleanLibrary(&prefix);

    auto recovered = DurableLibrary::Open(crash_dir);
    ASSERT_TRUE(recovered.ok()) << "keep=" << keep << ": "
                                << recovered.status().ToString();
    ExpectSameAnswers(*expected, (*recovered)->library(),
                      ("keep=" + std::to_string(keep)).c_str());
  }
}

TEST(DurableLibraryTest, ConcurrentCompactionKeepsAnswersIdentical) {
  const std::string dir = FreshDir("durable_compact");
  auto clean = CleanLibrary();
  auto durable = IngestEverything(dir, /*flush_mid_ingest=*/true);
  const size_t before = durable->num_segments();
  ASSERT_GE(before, 3u);

  util::ThreadPool pool(2);
  ASSERT_TRUE(durable->CompactAsync(&pool).ok());
  // Queries race the background merge; results must stay bit-identical
  // the whole time (the merged chain publishes atomically).
  for (int round = 0; round < 4; ++round) {
    ExpectSameAnswers(*clean, durable->library(), "during compaction");
  }
  ASSERT_TRUE(durable->WaitForCompaction().ok());
  EXPECT_LT(durable->num_segments(), before);
  ExpectSameAnswers(*clean, durable->library(), "after compaction");

  // A second compaction over the already-merged chain is a no-op or a
  // further merge; either way answers hold and reopen still works.
  ASSERT_TRUE(durable->Compact().ok());
  ExpectSameAnswers(*clean, durable->library(), "after second compaction");
  auto reopened = DurableLibrary::Open(dir).TakeValue();
  ExpectSameAnswers(*clean, reopened->library(), "reopen after compaction");
}

TEST(DurableLibraryTest, OpenFailsCleanlyOnMissingOrCorruptManifest) {
  const std::string missing = ::testing::TempDir() + "no_such_library";
  EXPECT_FALSE(DurableLibrary::Open(missing).ok());

  const std::string dir = FreshDir("durable_badmanifest");
  const char garbage[] = "not a manifest";
  ASSERT_TRUE(
      seg::WriteFileAtomic(dir + "/MANIFEST", garbage, sizeof(garbage)).ok());
  EXPECT_FALSE(DurableLibrary::Open(dir).ok());
}

}  // namespace
}  // namespace cobra::engine
