#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cobra::util {
namespace {

TEST(ThreadPoolTest, InlineModeHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0);
  EXPECT_TRUE(pool.inline_mode());
  ThreadPool pool0(0);
  EXPECT_TRUE(pool0.inline_mode());
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10'000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(0, kN, /*grain=*/7,
                   [&](int64_t i) { visits[static_cast<size_t>(i)]++; });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolOfSizeOneMatchesSerialExecution) {
  constexpr int64_t kN = 257;
  std::vector<int64_t> serial(kN), pooled(kN);
  for (int64_t i = 0; i < kN; ++i) serial[static_cast<size_t>(i)] = i * i;

  ThreadPool pool(1);
  pool.ParallelFor(0, kN, /*grain=*/16,
                   [&](int64_t i) { pooled[static_cast<size_t>(i)] = i * i; });
  EXPECT_EQ(serial, pooled);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  pool.ParallelFor(0, 1, 100, [&](int64_t) { atomic_calls++; });
  EXPECT_EQ(atomic_calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 8,
                       [&](int64_t i) {
                         if (i == 500) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 8, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptions) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10, 1,
                                [](int64_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(TaskGroupTest, WaitsForAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  {
    TaskGroup group(&pool);
    for (int i = 0; i < 64; ++i) {
      group.Run([&done] { done++; });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 64);
  }
}

TEST(TaskGroupTest, WaitRethrowsFirstError) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([] { throw std::logic_error("task failed"); });
  group.Run([] {});
  EXPECT_THROW(group.Wait(), std::logic_error);
  // A second Wait is a no-op (the error was consumed).
  group.Wait();
}

TEST(TaskGroupTest, NestedParallelForDoesNotDeadlock) {
  // Tasks running on the pool issue their own ParallelFor on the same pool;
  // the waiting task helps drain the queue instead of blocking it.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(32 * 32);
  pool.ParallelFor(0, 32, 1, [&](int64_t outer) {
    pool.ParallelFor(0, 32, 4, [&](int64_t inner) {
      visits[static_cast<size_t>(outer * 32 + inner)]++;
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int calls = 0;
  group.Run([&] { ++calls; });
  EXPECT_EQ(calls, 1);  // executed immediately
  group.Wait();
}

}  // namespace
}  // namespace cobra::util
