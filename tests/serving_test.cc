/// \file serving_test.cc
/// The sharded scatter-gather serving tier (DESIGN.md §4i):
///   * shard-count invariance: 1, 2 and 7 shards answer the 16-modality
///     sweep bit-identically to the unsharded oracle at every top-N;
///   * the frontend text seed never changes results (seeded vs unseeded
///     evaluation on one library, planner on and off);
///   * bound-based shard pruning happens and never changes results;
///   * a paused backend degrades at the deadline instead of stalling, and
///     full queues shed with Unavailable instead of queueing unboundedly;
///   * per-shard epoch invalidation: mutating one shard is picked up
///     lazily while the other shards' caches stay live;
///   * (tsan) queries race CompactAsync and ReloadShard through the
///     index-epoch seam and stay bit-identical throughout.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/video_description.h"
#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine::serving {
namespace {

using storage::CompareOp;

core::VideoDescription MakeVideo(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 24; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

CorpusParts MakeParts(int num_players = 24, int videos_per_year = 2) {
  webspace::SiteConfig config;
  config.num_players = num_players;
  config.num_past_years = 4;
  config.videos_per_year = videos_per_year;
  config.seed = 2013;
  config.ensure_answer = true;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  CorpusParts parts{std::move(site.store), {}, {}};
  for (const auto& [oid, body] : site.interview_texts) {
    parts.interviews.emplace_back(oid, body);
  }
  for (int64_t oid : site.video_oids) {
    parts.videos.push_back(MakeVideo(oid));
  }
  return parts;
}

/// The durable-library test's 16-modality sweep, event-heavy variants
/// included so the scatter path dominates.
std::vector<CombinedQuery> SweepQueries() {
  std::vector<CombinedQuery> queries;
  Rng rng(21);
  for (int combo = 0; combo < 16; ++combo) {
    for (int variant = 0; variant < 3; ++variant) {
      CombinedQuery query;
      if (combo & 1) {
        switch (rng.NextBounded(4)) {
          case 0:
            query.player_predicates.push_back(
                {"gender", CompareOp::kEq, std::string("female")});
            break;
          case 1:
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("left")});
            break;
          case 2:
            query.player_predicates.push_back(
                {"ranking", CompareOp::kLe, rng.NextInt(1, 40)});
            break;
          case 3:  // provably empty
            query.player_predicates.push_back(
                {"hand", CompareOp::kEq, std::string("ambidextrous")});
            break;
        }
      }
      if (combo & 2) {
        query.require_champion = true;
        if (rng.NextBounded(2) == 0) {
          query.won_year = rng.NextInt(2018, 2022);
        }
      }
      if (combo & 4) {
        const char* texts[] = {"champion title", "net volley",
                               "australian open"};
        query.text = texts[rng.NextBounded(3)];
        query.text_top_k = 1 + rng.NextBounded(12);
      }
      if (combo & 8) {
        const char* events[] = {"net_play", "rally", "service", "no_such"};
        query.event = events[rng.NextBounded(4)];
      }
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

void ExpectBitIdentical(const std::vector<SceneHit>& expected,
                        const std::vector<SceneHit>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const SceneHit& a = expected[i];
    const SceneHit& b = actual[i];
    EXPECT_EQ(a.player_oid, b.player_oid) << label << " hit " << i;
    EXPECT_EQ(a.player_name, b.player_name) << label << " hit " << i;
    EXPECT_EQ(a.video_oid, b.video_oid) << label << " hit " << i;
    EXPECT_EQ(a.range.begin, b.range.begin) << label << " hit " << i;
    EXPECT_EQ(a.range.end, b.range.end) << label << " hit " << i;
    EXPECT_EQ(a.event, b.event) << label << " hit " << i;
    uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &a.text_score, 8);
    std::memcpy(&bits_b, &b.text_score, 8);
    EXPECT_EQ(bits_a, bits_b) << label << " hit " << i;
  }
}

std::vector<SceneHit> Truncate(std::vector<SceneHit> hits, size_t top_n) {
  if (top_n > 0 && hits.size() > top_n) hits.resize(top_n);
  return hits;
}

std::vector<const DigitalLibrary*> Views(
    const std::vector<std::unique_ptr<DigitalLibrary>>& shards) {
  std::vector<const DigitalLibrary*> views;
  for (const auto& shard : shards) views.push_back(shard.get());
  return views;
}

TEST(ServingPartitionTest, RangeShardsCoverTheCorpusOnce) {
  const CorpusParts parts = MakeParts();
  auto shards = BuildShardLibraries(parts, 3).TakeValue();
  ASSERT_EQ(shards.size(), 3u);
  size_t total = 0;
  int64_t prev_max = INT64_MIN;
  for (const auto& shard : shards) {
    const auto& videos = shard->indexed_videos();
    total += videos.size();
    if (videos.empty()) continue;
    const int64_t lo = *std::min_element(videos.begin(), videos.end());
    const int64_t hi = *std::max_element(videos.begin(), videos.end());
    EXPECT_GT(lo, prev_max);  // contiguous, disjoint ranges in shard order
    prev_max = hi;
    // Replicated modalities: full interview index in every shard.
    EXPECT_EQ(shard->interviews().num_documents(),
              static_cast<int64_t>(parts.interviews.size()));
  }
  EXPECT_EQ(total, parts.videos.size());
}

TEST(ServingFrontendTest, ShardCountInvarianceProperty) {
  const CorpusParts parts = MakeParts();
  auto oracle = BuildLibrary(parts).TakeValue();
  const auto queries = SweepQueries();
  for (size_t num_shards : {1u, 2u, 7u}) {
    auto shards = BuildShardLibraries(parts, num_shards).TakeValue();
    ServingConfig config;
    config.replicas = 2;
    auto frontend = ServingFrontend::Create(Views(shards), config).TakeValue();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t top_n : {size_t{3}, size_t{10}, size_t{0}}) {
        auto expected = oracle->Search(queries[qi]);
        QueryStats qs;
        auto actual = frontend->Search(queries[qi], top_n, &qs);
        const std::string label = "shards=" + std::to_string(num_shards) +
                                  " query=" + std::to_string(qi) +
                                  " n=" + std::to_string(top_n);
        ASSERT_EQ(expected.ok(), actual.ok())
            << label << " " << expected.status().ToString() << " vs "
            << actual.status().ToString();
        if (!expected.ok()) {
          EXPECT_EQ(expected.status().ToString(), actual.status().ToString())
              << label;
          continue;
        }
        ExpectBitIdentical(Truncate(*expected, top_n), *actual, label);
        EXPECT_FALSE(qs.degraded) << label;
        if (queries[qi].event.empty()) {
          EXPECT_TRUE(qs.single_shard_routed) << label;
          EXPECT_LE(qs.shards_searched, 1u) << label;
        }
      }
    }
    const ServingStats stats = frontend->stats();
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.degraded, 0);
    if (num_shards > 1) {
      // Single-shard routing and upfront pruning must actually engage.
      EXPECT_GT(stats.single_shard_routed, 0);
      EXPECT_GT(stats.shards_pruned_upfront, 0);
    }
  }
}

TEST(ServingFrontendTest, BoundPruningEngagesAndNeverChangesResults) {
  const CorpusParts parts = MakeParts(/*num_players=*/24, /*videos_per_year=*/4);
  auto oracle = BuildLibrary(parts).TakeValue();
  auto shards = BuildShardLibraries(parts, 7).TakeValue();
  auto frontend =
      ServingFrontend::Create(Views(shards), ServingConfig{}).TakeValue();
  // Small top-N content queries: the first shard's hits fill the merged
  // top-N with the lowest video ids, so later shards' min-video bounds
  // rank after the Nth hit and the shards prune at dequeue.
  const char* events[] = {"net_play", "rally", "service", "smash"};
  for (int round = 0; round < 50; ++round) {
    CombinedQuery query;
    query.event = events[round % 4];
    if (round % 3 == 1) query.require_champion = true;
    if (round % 3 == 2) {
      query.player_predicates.push_back(
          {"ranking", CompareOp::kLe, static_cast<int64_t>(5 + round % 30)});
    }
    auto expected = Truncate(oracle->Search(query).TakeValue(), 2);
    auto actual = frontend->Search(query, 2).TakeValue();
    ExpectBitIdentical(expected, actual, "round " + std::to_string(round));
  }
  // Scheduling decides exactly which shards prune, but across 50 small
  // top-N scatters some later shard must have seen a filled merge.
  EXPECT_GT(frontend->stats().shards_pruned_by_bound, 0);
}

TEST(ServingFrontendTest, TextSeedIsCachedAndBitIdentical) {
  const CorpusParts parts = MakeParts();
  auto oracle = BuildLibrary(parts).TakeValue();
  auto shards = BuildShardLibraries(parts, 4).TakeValue();
  auto frontend =
      ServingFrontend::Create(Views(shards), ServingConfig{}).TakeValue();
  CombinedQuery query;
  query.text = "australian open";
  query.text_top_k = 8;
  query.event = "net_play";
  QueryStats qs;
  auto first = frontend->Search(query, 0, &qs).TakeValue();
  EXPECT_TRUE(qs.text_seeded);
  EXPECT_FALSE(qs.text_seed_cached);
  auto second = frontend->Search(query, 0, &qs).TakeValue();
  EXPECT_TRUE(qs.text_seeded);
  EXPECT_TRUE(qs.text_seed_cached);
  ExpectBitIdentical(*oracle->Search(query), first, "first");
  ExpectBitIdentical(first, second, "repeat");
}

TEST(ServingFrontendTest, DeadlineDegradesInsteadOfStalling) {
  const CorpusParts parts = MakeParts();
  auto shards = BuildShardLibraries(parts, 3).TakeValue();
  auto frontend =
      ServingFrontend::Create(Views(shards), ServingConfig{}).TakeValue();
  frontend->PauseWorkersForTest();
  CombinedQuery query;
  query.event = "rally";
  QueryStats qs;
  auto result = frontend->Search(query, 5, &qs, /*deadline_ms=*/50.0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());  // nothing merged before the deadline
  EXPECT_TRUE(qs.degraded);
  EXPECT_GT(qs.shards_timed_out, 0u);
  EXPECT_EQ(frontend->stats().degraded, 1);
  frontend->ResumeWorkers();
  // The backend drains the cancelled jobs and fresh queries work again.
  auto after = frontend->Search(query, 5, &qs);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(qs.degraded);
  EXPECT_FALSE(after->empty());
}

TEST(ServingFrontendTest, OverloadShedsWithUnavailable) {
  const CorpusParts parts = MakeParts();
  auto shards = BuildShardLibraries(parts, 2).TakeValue();
  ServingConfig config;
  config.replicas = 1;
  config.queue_depth = 1;
  auto frontend = ServingFrontend::Create(Views(shards), config).TakeValue();
  frontend->PauseWorkersForTest();
  CombinedQuery query;
  query.event = "net_play";
  // Client A enqueues onto the best-bound shard's only replica (paused
  // workers never drain it; the other shard is deferred in the cascade)...
  std::thread client_a([&] {
    auto held = frontend->Search(query, 5);
    EXPECT_TRUE(held.ok()) << held.status().ToString();
  });
  while (frontend->QueuedJobsForTest() < 1) {
    std::this_thread::yield();
  }
  // ... so client B targets the same shard first, finds its replica full,
  // and is shed, not queued.
  auto shed = frontend->Search(query, 5);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_EQ(frontend->stats().shed, 1);
  frontend->ResumeWorkers();
  client_a.join();
}

TEST(ServingFrontendTest, EpochBumpOnOneShardInvalidatesOnlyThatShard) {
  CorpusParts parts = MakeParts();
  auto shards = BuildShardLibraries(parts, 3).TakeValue();
  auto frontend =
      ServingFrontend::Create(Views(shards), ServingConfig{}).TakeValue();
  CombinedQuery query;
  query.event = "net_play";
  auto oracle = BuildLibrary(parts).TakeValue();
  ExpectBitIdentical(*oracle->Search(query),
                     frontend->Search(query, 0).TakeValue(), "before");

  // Mutate the LAST shard in place: a new video above every existing id
  // keeps the contiguous range invariant. The frontend must rebuild that
  // shard's pruning snapshot lazily (epoch seam) while the other shards'
  // snapshots and caches stay as they are.
  int64_t max_id = 0;
  for (const auto& v : parts.videos) max_id = std::max(max_id, v.video_id());
  const core::VideoDescription extra = MakeVideo(max_id + 7);
  ASSERT_TRUE(shards.back()->AddVideoDescription(extra).ok());
  parts.videos.push_back(extra);
  auto oracle2 = BuildLibrary(parts).TakeValue();

  QueryStats qs;
  ExpectBitIdentical(*oracle2->Search(query),
                     frontend->Search(query, 0, &qs).TakeValue(),
                     "after mutation");
  // And the no-event path (cached per shard) still answers correctly.
  CombinedQuery concept_only;
  concept_only.require_champion = true;
  ExpectBitIdentical(*oracle2->Search(concept_only),
                     frontend->Search(concept_only, 0).TakeValue(),
                     "concept after mutation");
}

TEST(ServingFrontendTest, SeededLibrarySearchMatchesUnseeded) {
  const CorpusParts parts = MakeParts();
  auto library = BuildLibrary(parts).TakeValue();
  bool planner_seeded = false;
  for (const CombinedQuery& query : SweepQueries()) {
    if (query.text.empty()) continue;
    auto seed = library->TextStage(query.text, query.text_top_k);
    ASSERT_TRUE(seed.ok());
    for (bool planner : {true, false}) {
      library->set_planner_enabled(planner);
      auto unseeded = library->Search(query);
      planner::PlanExplain explain;
      auto seeded = library->Search(query, nullptr, &explain, &seed.value());
      ASSERT_EQ(unseeded.ok(), seeded.ok());
      if (!unseeded.ok()) {
        EXPECT_EQ(unseeded.status().ToString(), seeded.status().ToString());
        continue;
      }
      ExpectBitIdentical(*unseeded, *seeded,
                         planner ? "planner" : "fixed order");
      planner_seeded = planner_seeded || explain.text_seeded;
    }
  }
  library->set_planner_enabled(true);
  EXPECT_TRUE(planner_seeded);  // the seed path actually executed
}

/// tsan: queries racing the durable shards' background compaction and
/// frontend shard reloads through the index-epoch seam.
TEST(ServingFrontendTest, QueriesRaceCompactionAndReload) {
  const std::string base = ::testing::TempDir() + "serving_race";
  std::error_code ec;
  std::filesystem::remove_all(base, ec);  // leftovers from a prior run
  const CorpusParts parts = MakeParts(/*num_players=*/12);
  auto oracle = BuildLibrary(parts).TakeValue();
  auto durables = BuildDurableShards(parts, 3, base).TakeValue();
  // A couple of extra flush windows so compaction has segments to merge.
  for (auto& durable : durables) {
    ASSERT_TRUE(durable->Flush().ok());
  }
  std::vector<const DigitalLibrary*> views;
  for (const auto& durable : durables) views.push_back(&durable->library());
  ServingConfig config;
  config.replicas = 2;
  auto frontend = ServingFrontend::Create(views, config).TakeValue();

  const auto queries = SweepQueries();
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        for (size_t qi = static_cast<size_t>(c); qi < queries.size();
             qi += 2) {
          auto expected = oracle->Search(queries[qi]);
          auto actual = frontend->Search(queries[qi], 10);
          ASSERT_EQ(expected.ok(), actual.ok());
          if (expected.ok()) {
            ExpectBitIdentical(Truncate(*expected, 10), *actual,
                               "racing query " + std::to_string(qi));
          }
        }
      }
    });
  }
  util::ThreadPool pool(2);
  for (auto& durable : durables) {
    ASSERT_TRUE(durable->CompactAsync(&pool).ok());
  }
  for (size_t s = 0; s < durables.size(); ++s) {
    ASSERT_TRUE(frontend->ReloadShard(s, &durables[s]->library()).ok());
  }
  for (auto& durable : durables) {
    ASSERT_TRUE(durable->WaitForCompaction().ok());
  }
  for (auto& client : clients) client.join();
  // Post-race: reload from a fresh reopen of each compacted shard.
  std::vector<std::unique_ptr<DurableLibrary>> reopened;
  for (size_t s = 0; s < durables.size(); ++s) {
    reopened.push_back(
        DurableLibrary::Open(base + "/shard-000" + std::to_string(s))
            .TakeValue());
    ASSERT_TRUE(frontend->ReloadShard(s, &reopened.back()->library()).ok());
  }
  for (size_t qi = 0; qi < queries.size(); qi += 5) {
    auto expected = oracle->Search(queries[qi]);
    auto actual = frontend->Search(queries[qi], 0);
    ASSERT_EQ(expected.ok(), actual.ok());
    if (expected.ok()) {
      ExpectBitIdentical(*expected, *actual,
                         "after reload " + std::to_string(qi));
    }
  }
}

}  // namespace
}  // namespace cobra::engine::serving
