/// \file decode_pipeline_test.cc
/// The GOP-parallel decode subsystem: GOP index correctness, bit-identity
/// of sequential / GOP-parallel / prefetched decode across gop sizes
/// (including all-intra and a final partial GOP), thread-safety of
/// CodedVideoSource::GetFrame under a hammering pool (the TSan regression
/// for the old shared-DecoderState race), DCT dispatch-tier bit-identity,
/// and FDE-over-coded-source equivalence with FDE-over-decoded-frames.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/tennis_fde.h"
#include "media/block_codec.h"
#include "media/dct.h"
#include "media/prefetch.h"
#include "media/tennis_synthesizer.h"
#include "media/video.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "vision/kernels.h"

namespace cobra::media {
namespace {

TennisSynthConfig PipelineVideoConfig() {
  TennisSynthConfig config;
  config.width = 96;
  config.height = 80;
  config.num_points = 2;
  config.min_court_frames = 50;
  config.max_court_frames = 70;
  config.min_cutaway_frames = 10;
  config.max_cutaway_frames = 16;
  config.noise_sigma = 2.0;
  config.dissolve_prob = 1.0;  // every boundary dissolves: worst case for
  config.seed = 3;             // P-frame chains across shot changes
  return config;
}

const MemoryVideo& PipelineVideo() {
  static const MemoryVideo* video = [] {
    auto r = TennisBroadcastSynthesizer(PipelineVideoConfig()).Synthesize();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    Broadcast broadcast = r.TakeValue();
    return new MemoryVideo(std::move(*broadcast.video));
  }();
  return *video;
}

const EncodedVideo& EncodedWithGop(int gop_size) {
  static std::map<int, const EncodedVideo*>* cache =
      new std::map<int, const EncodedVideo*>();
  auto it = cache->find(gop_size);
  if (it == cache->end()) {
    CodecConfig config;
    config.gop_size = gop_size;
    auto encoded = BlockVideoEncoder::Encode(PipelineVideo(), config);
    EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
    it = cache->emplace(gop_size, new EncodedVideo(encoded.TakeValue())).first;
  }
  return *it->second;
}

bool FramesIdentical(const Frame& a, const Frame& b) {
  return a.SameSizeAs(b) &&
         std::memcmp(a.pixels().data(), b.pixels().data(),
                     a.pixels().size() * sizeof(Rgb)) == 0;
}

/// Sequential ground truth: one fresh source, frames decoded in order on
/// one thread (the seed decoder's behavior).
std::vector<Frame> SequentialDecode(const EncodedVideo& encoded) {
  CodedVideoSource source(encoded);
  std::vector<Frame> out;
  for (int64_t f = 0; f < source.num_frames(); ++f) {
    auto frame = source.GetFrame(f);
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    out.push_back(frame.TakeValue());
  }
  return out;
}

// ---------- GOP index ----------

TEST(GopIndexTest, PartitionsFramesAtIntraMarkers) {
  for (int gop_size : {1, 12, 50}) {
    const EncodedVideo& encoded = EncodedWithGop(gop_size);
    const auto& gops = encoded.Gops();
    ASSERT_FALSE(gops.empty());
    const int64_t expected_gops =
        (encoded.num_frames() + gop_size - 1) / gop_size;
    EXPECT_EQ(encoded.NumGops(), expected_gops) << "gop_size " << gop_size;

    int64_t next_frame = 0, byte_offset = 0;
    for (const GopIndexEntry& g : gops) {
      EXPECT_EQ(g.first_frame, next_frame);
      EXPECT_EQ(g.byte_offset, byte_offset);
      EXPECT_GT(g.num_frames, 0);
      EXPECT_LE(g.num_frames, gop_size);
      EXPECT_EQ(encoded.FrameBits(g.first_frame)[0], 'I');
      for (int64_t f = g.first_frame + 1; f < g.first_frame + g.num_frames;
           ++f) {
        EXPECT_EQ(encoded.FrameBits(f)[0], 'P');
        EXPECT_EQ(encoded.GopOfFrame(f), encoded.GopOfFrame(g.first_frame));
      }
      for (int64_t f = g.first_frame; f < g.first_frame + g.num_frames; ++f) {
        byte_offset += static_cast<int64_t>(encoded.FrameBits(f).size());
      }
      next_frame = g.first_frame + g.num_frames;
    }
    EXPECT_EQ(next_frame, encoded.num_frames());
  }
}

TEST(GopIndexTest, SurvivesSerializationRoundTrip) {
  const EncodedVideo& encoded = EncodedWithGop(12);
  auto restored = EncodedVideo::Deserialize(encoded.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumGops(), encoded.NumGops());
  for (int64_t g = 0; g < encoded.NumGops(); ++g) {
    EXPECT_EQ(restored->Gops()[g].first_frame, encoded.Gops()[g].first_frame);
    EXPECT_EQ(restored->Gops()[g].num_frames, encoded.Gops()[g].num_frames);
    EXPECT_EQ(restored->Gops()[g].byte_offset, encoded.Gops()[g].byte_offset);
  }
}

// ---------- bit-identity of the parallel paths ----------

TEST(DecodePipelineTest, GopDecodeMatchesSequential) {
  for (int gop_size : {1, 12, 50}) {
    const EncodedVideo& encoded = EncodedWithGop(gop_size);
    // The synthesized broadcast length is not a multiple of 12 or 50, so
    // the last GOP is partial; assert that so the fixture can't rot.
    if (gop_size > 1) {
      EXPECT_NE(encoded.num_frames() % gop_size, 0)
          << "fixture no longer covers the partial-GOP case";
    }
    const std::vector<Frame> reference = SequentialDecode(encoded);
    CodedVideoSource source(encoded);
    for (int64_t g = 0; g < encoded.NumGops(); ++g) {
      auto frames = source.DecodeGop(g);
      ASSERT_TRUE(frames.ok()) << frames.status().ToString();
      const GopIndexEntry& entry = encoded.Gops()[static_cast<size_t>(g)];
      ASSERT_EQ(static_cast<int64_t>(frames->size()), entry.num_frames);
      for (int64_t i = 0; i < entry.num_frames; ++i) {
        EXPECT_TRUE(FramesIdentical(
            (*frames)[static_cast<size_t>(i)],
            reference[static_cast<size_t>(entry.first_frame + i)]))
            << "gop_size " << gop_size << " gop " << g << " frame " << i;
      }
    }
  }
}

TEST(DecodePipelineTest, DecodeAllParallelMatchesSequential) {
  util::ThreadPool pool(4);
  for (int gop_size : {1, 12, 50}) {
    const EncodedVideo& encoded = EncodedWithGop(gop_size);
    const std::vector<Frame> reference = SequentialDecode(encoded);
    CodedVideoSource source(encoded);
    for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                &pool}) {
      auto decoded = source.DecodeAll(p);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      ASSERT_EQ(decoded->num_frames(), encoded.num_frames());
      for (int64_t f = 0; f < decoded->num_frames(); ++f) {
        EXPECT_TRUE(FramesIdentical(decoded->GetFrame(f).TakeValue(),
                                    reference[static_cast<size_t>(f)]))
            << "gop_size " << gop_size << " frame " << f
            << (p ? " (parallel)" : " (sequential)");
      }
    }
  }
}

TEST(DecodePipelineTest, PrefetchedSequentialScanMatchesSequential) {
  util::ThreadPool pool(3);
  for (int gop_size : {1, 12, 50}) {
    const EncodedVideo& encoded = EncodedWithGop(gop_size);
    const std::vector<Frame> reference = SequentialDecode(encoded);
    CodedVideoSource source(encoded);
    PrefetchConfig config;
    config.prefetch_frames = 48;
    PrefetchingVideoSource prefetched(source, config, &pool);
    for (int64_t f = 0; f < prefetched.num_frames(); ++f) {
      auto frame = prefetched.GetFrame(f);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      EXPECT_TRUE(FramesIdentical(*frame, reference[static_cast<size_t>(f)]))
          << "gop_size " << gop_size << " frame " << f;
    }
    const PrefetchStats stats = prefetched.stats();
    EXPECT_GT(stats.scheduled_gops, 0) << "gop_size " << gop_size;
    EXPECT_GT(stats.buffer_hits, 0) << "gop_size " << gop_size;
  }
}

TEST(DecodePipelineTest, PrefetchedStridedAndBackwardAccessMatches) {
  util::ThreadPool pool(3);
  const EncodedVideo& encoded = EncodedWithGop(12);
  const std::vector<Frame> reference = SequentialDecode(encoded);
  CodedVideoSource source(encoded);
  PrefetchingVideoSource prefetched(source, PrefetchConfig{}, &pool);
  const int64_t n = prefetched.num_frames();
  // Detector-style sampling (every 7th), then backward seeks.
  for (int64_t f = 0; f < n; f += 7) {
    auto frame = prefetched.GetFrame(f);
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(FramesIdentical(*frame, reference[static_cast<size_t>(f)]));
  }
  for (int64_t f = n - 1; f >= 0; f -= 31) {
    auto frame = prefetched.GetFrame(f);
    ASSERT_TRUE(frame.ok());
    EXPECT_TRUE(FramesIdentical(*frame, reference[static_cast<size_t>(f)]));
  }
  auto oob = prefetched.GetFrame(n);
  EXPECT_FALSE(oob.ok());
}

/// gop_size = 1: every frame is an I-frame, the GOP index degenerates to
/// one entry per frame, and the pipeline must still hold. CI runs this as
/// the all-intra smoke (`ctest -R AllIntra`).
TEST(DecodePipelineTest, AllIntraGopSizeOneSmoke) {
  util::ThreadPool pool(4);
  const EncodedVideo& encoded = EncodedWithGop(1);
  ASSERT_EQ(encoded.NumGops(), encoded.num_frames());
  const std::vector<Frame> reference = SequentialDecode(encoded);
  CodedVideoSource source(encoded);
  auto decoded = source.DecodeAll(&pool);
  ASSERT_TRUE(decoded.ok());
  PrefetchingVideoSource prefetched(source, PrefetchConfig{}, &pool);
  for (int64_t f = 0; f < encoded.num_frames(); ++f) {
    EXPECT_TRUE(FramesIdentical(decoded->GetFrame(f).TakeValue(),
                                reference[static_cast<size_t>(f)]));
    EXPECT_TRUE(FramesIdentical(prefetched.GetFrame(f).TakeValue(),
                                reference[static_cast<size_t>(f)]));
  }
}

// ---------- thread-safety (the TSan regression suite) ----------

/// The seed's CodedVideoSource kept one mutable DecoderState behind a const
/// GetFrame — two threads decoding through it raced on the reference
/// planes. This hammers GetFrame from a pool with deliberately clashing
/// access patterns; under COBRA_SANITIZE=thread, TSan fails the test on
/// any regression, and in any build the decoded bytes must stay correct.
TEST(DecodePipelineTest, ConcurrentGetFrameIsRaceFreeAndCorrect) {
  const EncodedVideo& encoded = EncodedWithGop(12);
  const std::vector<Frame> reference = SequentialDecode(encoded);
  CodedVideoSource source(encoded);
  const int64_t n = source.num_frames();
  util::ThreadPool pool(4);
  // 4 interleaved walks: two forward scans offset by half the video, one
  // strided scan, one backward scan — all through one shared source.
  pool.ParallelFor(0, 4 * n, 1, [&](int64_t i) {
    const int64_t walk = i % 4, step = i / 4;
    int64_t f = 0;
    switch (walk) {
      case 0: f = step; break;
      case 1: f = (step + n / 2) % n; break;
      case 2: f = (step * 13) % n; break;
      default: f = n - 1 - step; break;
    }
    auto frame = source.GetFrame(f);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_TRUE(FramesIdentical(*frame, reference[static_cast<size_t>(f)]))
        << "frame " << f;
  });
}

TEST(DecodePipelineTest, ConcurrentPrefetchedReadersAreConsistent) {
  const EncodedVideo& encoded = EncodedWithGop(12);
  const std::vector<Frame> reference = SequentialDecode(encoded);
  CodedVideoSource source(encoded);
  util::ThreadPool decode_pool(2);
  PrefetchConfig config;
  config.prefetch_frames = 36;
  PrefetchingVideoSource prefetched(source, config, &decode_pool);
  const int64_t n = prefetched.num_frames();
  util::ThreadPool reader_pool(4);
  reader_pool.ParallelFor(0, 2 * n, 1, [&](int64_t i) {
    const int64_t f = i % n;
    auto frame = prefetched.GetFrame(f);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_TRUE(FramesIdentical(*frame, reference[static_cast<size_t>(f)]))
        << "frame " << f;
  });
}

// ---------- DCT dispatch tiers ----------

TEST(DecodePipelineTest, DctTiersAreBitIdentical) {
  const EncodedVideo& encoded = EncodedWithGop(12);
  const util::simd::SimdLevel original = vision::kernels::ActiveLevel();
  vision::kernels::SetActiveLevel(util::simd::SimdLevel::kScalar);
  ASSERT_EQ(ActiveDctLevel(), util::simd::SimdLevel::kScalar);
  const std::vector<Frame> scalar_frames = SequentialDecode(encoded);
  for (auto level :
       {util::simd::SimdLevel::kSse41, util::simd::SimdLevel::kAvx2}) {
    if (DctOpsFor(level) == nullptr) continue;  // compiled out or no CPU
    vision::kernels::SetActiveLevel(level);
    ASSERT_EQ(ActiveDctLevel(), level);
    const std::vector<Frame> tier_frames = SequentialDecode(encoded);
    for (size_t f = 0; f < scalar_frames.size(); ++f) {
      ASSERT_TRUE(FramesIdentical(tier_frames[f], scalar_frames[f]))
          << util::simd::SimdLevelName(level) << " frame " << f;
    }
  }
  vision::kernels::SetActiveLevel(original);
}

// ---------- FDE over the decode pipeline ----------

TEST(DecodePipelineTest, FdeOverCodedSourceMatchesDecodedFrames) {
  auto encoded = BlockVideoEncoder::Encode(PipelineVideo(), CodecConfig{});
  ASSERT_TRUE(encoded.ok());
  CodedVideoSource coded(encoded.TakeValue());
  // Reference: the pipeline disabled (negative decode_threads), detectors
  // hit the raw decoder exactly as before this subsystem existed.
  std::map<std::string, std::vector<grammar::Annotation>> reference;
  for (int variant = 0; variant < 2; ++variant) {
    core::TennisIndexerConfig config;
    config.fde.num_threads = variant == 0 ? 1 : 4;
    config.fde.decode_threads = variant == 0 ? -1 : 2;
    config.fde.prefetch_frames = variant == 0 ? 0 : 48;
    auto indexer = core::TennisVideoIndexer::Create(config).TakeValue();
    auto desc = indexer->Index(coded, 1, "decode-pipeline");
    ASSERT_TRUE(desc.ok()) << desc.status().ToString();
    if (variant == 0) {
      reference = indexer->fde().blackboard();
      ASSERT_FALSE(reference.empty());
      continue;
    }
    const auto& got_board = indexer->fde().blackboard();
    ASSERT_EQ(got_board.size(), reference.size());
    for (const auto& [symbol, annotations] : reference) {
      const auto& got = got_board.at(symbol);
      ASSERT_EQ(got.size(), annotations.size()) << symbol;
      for (size_t i = 0; i < annotations.size(); ++i) {
        EXPECT_EQ(got[i].range, annotations[i].range) << symbol;
        EXPECT_EQ(got[i].attrs, annotations[i].attrs) << symbol << " #" << i;
      }
    }
  }
}

}  // namespace
}  // namespace cobra::media
