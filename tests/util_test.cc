#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/geometry.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace cobra {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad knob");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad knob");
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= 11; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ServingCodes) {
  Status shed = Status::Unavailable("queues full");
  EXPECT_TRUE(shed.IsUnavailable());
  EXPECT_FALSE(shed.IsDeadlineExceeded());
  EXPECT_EQ(shed.ToString(), "Unavailable: queues full");
  Status late = Status::DeadlineExceeded("past due");
  EXPECT_TRUE(late.IsDeadlineExceeded());
  EXPECT_FALSE(late.IsUnavailable());
  EXPECT_EQ(late.ToString(), "Deadline exceeded: past due");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  COBRA_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all 7 values should appear in 1000 draws";
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) counts[rng.NextCategorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfSamplerTest, RankOneIsMostFrequent) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  EXPECT_GT(counts[1], 4 * counts[10]);
}

TEST(MixHashTest, PureFunctionAndSpreads) {
  EXPECT_EQ(MixHash(42), MixHash(42));
  EXPECT_NE(MixHash(42), MixHash(43));
}

// ---------- Stats ----------

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(PrecisionRecallTest, Formulas) {
  PrecisionRecall pr{8, 2, 2};
  EXPECT_DOUBLE_EQ(pr.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.8);
  EXPECT_DOUBLE_EQ(pr.F1(), 0.8);
}

TEST(PrecisionRecallTest, ZeroDenominators) {
  PrecisionRecall pr;
  EXPECT_EQ(pr.Precision(), 0.0);
  EXPECT_EQ(pr.Recall(), 0.0);
  EXPECT_EQ(pr.F1(), 0.0);
}

TEST(ConfusionMatrixTest, AccuracyAndPerClass) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(1, 1);
  cm.Add(1, 2);
  cm.Add(2, 2);
  EXPECT_EQ(cm.Total(), 5);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(cm.ClassRecall(1), 0.5);
  EXPECT_DOUBLE_EQ(cm.ClassPrecision(2), 0.5);
  EXPECT_DOUBLE_EQ(cm.ClassPrecision(0), 1.0);
}

TEST(MatchWithToleranceTest, ExactAndTolerant) {
  PrecisionRecall pr = MatchWithTolerance({100, 200, 300}, {101, 205, 400}, 2);
  EXPECT_EQ(pr.true_positives, 1);  // only 101 within +-2 of 100
  EXPECT_EQ(pr.false_positives, 2);
  EXPECT_EQ(pr.false_negatives, 2);

  pr = MatchWithTolerance({100, 200, 300}, {101, 205, 400}, 5);
  EXPECT_EQ(pr.true_positives, 2);
}

TEST(MatchWithToleranceTest, EachTruthMatchedOnce) {
  // Two detections near one truth: one TP, one FP.
  PrecisionRecall pr = MatchWithTolerance({100}, {99, 101}, 3);
  EXPECT_EQ(pr.true_positives, 1);
  EXPECT_EQ(pr.false_positives, 1);
  EXPECT_EQ(pr.false_negatives, 0);
}

// ---------- Geometry ----------

TEST(RectTest, IntersectUnionArea) {
  RectI a{0, 0, 10, 10}, b{5, 5, 10, 10};
  RectI i = a.Intersect(b);
  EXPECT_EQ(i, (RectI{5, 5, 5, 5}));
  EXPECT_EQ(a.Union(b), (RectI{0, 0, 15, 15}));
  EXPECT_EQ(a.Area(), 100);
  EXPECT_NEAR(a.Iou(b), 25.0 / 175.0, 1e-12);
}

TEST(RectTest, DisjointIntersectionEmpty) {
  RectI a{0, 0, 4, 4}, b{10, 10, 4, 4};
  EXPECT_TRUE(a.Intersect(b).Empty());
  EXPECT_EQ(a.Iou(b), 0.0);
}

TEST(RectTest, ContainsAndClip) {
  RectI r{2, 3, 4, 5};
  EXPECT_TRUE(r.Contains(2, 3));
  EXPECT_TRUE(r.Contains(5, 7));
  EXPECT_FALSE(r.Contains(6, 7));
  EXPECT_EQ(r.ClipTo(4, 4), (RectI{2, 3, 2, 1}));
}

TEST(FrameIntervalTest, BasicOps) {
  FrameInterval a{10, 20};
  EXPECT_EQ(a.Length(), 11);
  EXPECT_TRUE(a.Contains(10));
  EXPECT_TRUE(a.Contains(20));
  EXPECT_FALSE(a.Contains(21));
  EXPECT_TRUE(a.Overlaps(FrameInterval{20, 30}));
  EXPECT_FALSE(a.Overlaps(FrameInterval{21, 30}));
  EXPECT_TRUE(FrameInterval{}.Empty());
}

struct AllenCase {
  FrameInterval a, b;
  AllenRelation expected;
};

class AllenTest : public ::testing::TestWithParam<AllenCase> {};

TEST_P(AllenTest, Classifies) {
  const AllenCase& c = GetParam();
  EXPECT_EQ(ClassifyAllen(c.a, c.b), c.expected)
      << c.a.ToString() << " vs " << c.b.ToString() << " expected "
      << AllenRelationToString(c.expected) << " got "
      << AllenRelationToString(ClassifyAllen(c.a, c.b));
}

INSTANTIATE_TEST_SUITE_P(
    AllRelations, AllenTest,
    ::testing::Values(
        AllenCase{{0, 5}, {10, 20}, AllenRelation::kBefore},
        AllenCase{{10, 20}, {0, 5}, AllenRelation::kAfter},
        AllenCase{{0, 9}, {10, 20}, AllenRelation::kMeets},
        AllenCase{{10, 20}, {0, 9}, AllenRelation::kMetBy},
        AllenCase{{0, 12}, {10, 20}, AllenRelation::kOverlaps},
        AllenCase{{10, 20}, {0, 12}, AllenRelation::kOverlappedBy},
        AllenCase{{10, 15}, {10, 20}, AllenRelation::kStarts},
        AllenCase{{10, 20}, {10, 15}, AllenRelation::kStartedBy},
        AllenCase{{12, 18}, {10, 20}, AllenRelation::kDuring},
        AllenCase{{10, 20}, {12, 18}, AllenRelation::kContains},
        AllenCase{{15, 20}, {10, 20}, AllenRelation::kFinishes},
        AllenCase{{10, 20}, {15, 20}, AllenRelation::kFinishedBy},
        AllenCase{{10, 20}, {10, 20}, AllenRelation::kEquals}));

TEST(AllenTest, RelationNamesAreDistinct) {
  std::set<std::string> names;
  for (int r = 0; r <= static_cast<int>(AllenRelation::kEquals); ++r) {
    names.insert(AllenRelationToString(static_cast<AllenRelation>(r)));
  }
  EXPECT_EQ(names.size(), 13u);
}

// ---------- Strings ----------

TEST(StringsTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  foo\t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, StripAndCase) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(ToLowerAscii("MiXeD"), "mixed");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringsTest, JoinAndFormat) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace cobra
