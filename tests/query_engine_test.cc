#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/video_description.h"
#include "engine/query_engine.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine {
namespace {

using storage::CompareOp;
using storage::Predicate;

/// A text+concept library (no rendered videos — fast to build). Event
/// queries are irrelevant here; the query-engine tests exercise caching,
/// epochs and concurrency, not scene retrieval.
std::unique_ptr<DigitalLibrary> MakeLibrary() {
  webspace::SiteConfig config;
  config.num_players = 10;
  config.num_past_years = 3;
  config.videos_per_year = 1;
  config.seed = 5;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  for (const auto& [oid, text] : site.interview_texts) {
    EXPECT_TRUE(library->AddInterview(oid, text).ok());
  }
  EXPECT_TRUE(library->FinalizeText().ok());
  return library;
}

CombinedQuery TextQuery(const std::string& text) {
  CombinedQuery query;
  query.text = text;
  query.text_top_k = 20;
  return query;
}

TEST(NormalizedKeyTest, PredicateOrderDoesNotMatter) {
  CombinedQuery a, b;
  a.player_predicates = {Predicate{"hand", CompareOp::kEq, std::string("left")},
                         Predicate{"ranking", CompareOp::kLe, int64_t{5}}};
  b.player_predicates = {Predicate{"ranking", CompareOp::kLe, int64_t{5}},
                         Predicate{"hand", CompareOp::kEq, std::string("left")}};
  EXPECT_EQ(QueryEngine::NormalizedKey(a), QueryEngine::NormalizedKey(b));
}

TEST(NormalizedKeyTest, DistinguishesEveryField) {
  CombinedQuery base = TextQuery("net play");
  std::string key = QueryEngine::NormalizedKey(base);

  CombinedQuery changed = base;
  changed.text_top_k = 21;
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
  changed = base;
  changed.event = "serve";
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
  changed = base;
  changed.text = "net  play";  // different string, even if same tokens
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
  changed = base;
  changed.require_champion = true;
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
  changed = base;
  changed.won_year = 1999;
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
  changed = base;
  changed.player_predicates = {
      Predicate{"hand", CompareOp::kEq, std::string("left")}};
  EXPECT_NE(QueryEngine::NormalizedKey(changed), key);
}

TEST(NormalizedKeyTest, LengthDelimitingPreventsCollisions) {
  // "ab" + "c" must not collide with "a" + "bc" however fields adjoin.
  CombinedQuery a = TextQuery("ab");
  a.event = "c";
  CombinedQuery b = TextQuery("a");
  b.event = "bc";
  EXPECT_NE(QueryEngine::NormalizedKey(a), QueryEngine::NormalizedKey(b));
}

TEST(QueryEngineTest, CacheHitReturnsIdenticalResults) {
  auto library = MakeLibrary();
  QueryEngine engine(library.get(), QueryEngineConfig{});
  CombinedQuery query = TextQuery("champion title");

  auto first = engine.Search(query).TakeValue();
  auto second = engine.Search(query).TakeValue();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].player_oid, second[i].player_oid);
    EXPECT_EQ(first[i].text_score, second[i].text_score);
  }
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.5);
  EXPECT_GT(stats.postings_scanned, 0) << "miss should record index work";
}

TEST(QueryEngineTest, EpochBumpInvalidatesCache) {
  auto library = MakeLibrary();
  QueryEngine engine(library.get(), QueryEngineConfig{});
  CombinedQuery query = TextQuery("champion title");

  auto before = engine.Search(query).TakeValue();
  EXPECT_EQ(engine.stats().cache_misses, 1);
  // A mutation that can change results bumps the epoch; the cached entry
  // must be treated as stale on the next lookup.
  int64_t epoch = library->index_epoch();
  ASSERT_TRUE(
      library->AddVideoDescription(core::VideoDescription(999, "t", 25.0, 10))
          .ok());
  EXPECT_GT(library->index_epoch(), epoch);

  auto after = engine.Search(query).TakeValue();
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 2) << "stale entry must not be served";
  EXPECT_EQ(stats.cache_hits, 0);
  // This particular mutation does not change text-only results.
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].player_oid, before[i].player_oid);
  }
  // And the re-computed entry serves hits again at the new epoch.
  engine.Search(query).TakeValue();
  EXPECT_EQ(engine.stats().cache_hits, 1);
}

TEST(QueryEngineTest, DisabledCacheAlwaysEvaluates) {
  auto library = MakeLibrary();
  QueryEngineConfig config;
  config.enable_cache = false;
  QueryEngine engine(library.get(), config);
  CombinedQuery query = TextQuery("champion title");
  engine.Search(query).TakeValue();
  engine.Search(query).TakeValue();
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 0) << "disabled cache records no lookups";
}

TEST(QueryEngineTest, ErrorsAreNeverCached) {
  // Text search against a library whose text index was never finalized
  // fails; the failure must be recomputed (and counted), not cached.
  webspace::SiteConfig config;
  config.num_players = 4;
  config.num_past_years = 1;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  QueryEngine engine(library.get(), QueryEngineConfig{});
  CombinedQuery query = TextQuery("anything");
  EXPECT_FALSE(engine.Search(query).ok());
  EXPECT_FALSE(engine.Search(query).ok());
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.errors, 2);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.cache_misses, 2);
}

TEST(QueryEngineTest, LruEvictsAtCapacity) {
  auto library = MakeLibrary();
  QueryEngineConfig config;
  config.cache_shards = 1;
  config.cache_capacity_per_shard = 1;
  QueryEngine engine(library.get(), config);
  CombinedQuery a = TextQuery("champion title");
  CombinedQuery b = TextQuery("net volley");

  engine.Search(a).TakeValue();  // miss, cached
  engine.Search(b).TakeValue();  // miss, evicts a
  engine.Search(a).TakeValue();  // miss again (evicted), evicts b
  engine.Search(a).TakeValue();  // hit
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_hits, 1);
}

TEST(QueryEngineTest, KeywordOnlyGoesThroughCache) {
  auto library = MakeLibrary();
  QueryEngine engine(library.get(), QueryEngineConfig{});
  auto first = engine.SearchKeywordOnly("champion title", 10).TakeValue();
  auto second = engine.SearchKeywordOnly("champion title", 10).TakeValue();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(engine.stats().cache_hits, 1);
  // Different top_k is a different key.
  engine.SearchKeywordOnly("champion title", 5).TakeValue();
  EXPECT_EQ(engine.stats().cache_misses, 2);
}

// ---------- Concurrency (tsan-labeled binary) ----------

std::vector<CombinedQuery> MixedQueries() {
  std::vector<CombinedQuery> queries;
  const char* texts[] = {"champion title", "net volley",   "final match",
                         "tournament win", "great serve",  "champion title",
                         "net volley",     "champion title"};
  for (const char* text : texts) queries.push_back(TextQuery(text));
  CombinedQuery concept_only;
  concept_only.require_champion = true;
  queries.push_back(concept_only);
  concept_only.player_predicates = {
      Predicate{"hand", CompareOp::kEq, std::string("left")}};
  queries.push_back(concept_only);
  return queries;
}

TEST(QueryEngineConcurrencyTest, BatchResultsIndependentOfThreadCount) {
  auto library = MakeLibrary();
  std::vector<CombinedQuery> queries = MixedQueries();

  QueryEngineConfig serial_config;
  serial_config.num_threads = 1;
  QueryEngine serial(library.get(), serial_config);
  auto expected = serial.SearchBatch(queries);

  QueryEngineConfig parallel_config;
  parallel_config.num_threads = 8;
  QueryEngine parallel(library.get(), parallel_config);
  auto got = parallel.SearchBatch(queries);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_TRUE(got[q].ok());
    ASSERT_TRUE(expected[q].ok());
    const auto& a = expected[q].value();
    const auto& b = got[q].value();
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].player_oid, b[i].player_oid) << "query " << q;
      EXPECT_EQ(a[i].video_oid, b[i].video_oid) << "query " << q;
      EXPECT_EQ(a[i].text_score, b[i].text_score) << "query " << q;
    }
  }
  // The batch contains repeats: with a shared cache some must hit.
  EXPECT_GT(parallel.stats().cache_hits, 0);
}

TEST(QueryEngineDeadlineTest, ExpiredDeadlineShedsEveryBatchTask) {
  auto library = MakeLibrary();
  QueryEngineConfig config;
  config.num_threads = 2;
  config.deadline_ms = 1e-6;  // expires before any task can start
  QueryEngine engine(library.get(), config);
  std::vector<CombinedQuery> queries = MixedQueries();
  auto results = engine.SearchBatch(queries);
  ASSERT_EQ(results.size(), queries.size());
  for (const auto& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  }
  EXPECT_EQ(engine.stats().deadline_exceeded,
            static_cast<int64_t>(queries.size()));
}

TEST(QueryEngineDeadlineTest, GenerousDeadlineChangesNothing) {
  auto library = MakeLibrary();
  QueryEngineConfig config;
  config.num_threads = 2;
  QueryEngine engine(library.get(), config);
  std::vector<CombinedQuery> queries = MixedQueries();
  auto expected = engine.SearchBatch(queries);
  auto got = engine.SearchBatch(queries, /*deadline_ms=*/1e9);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_TRUE(got[q].ok()) << got[q].status().ToString();
    EXPECT_EQ(got[q].value().size(), expected[q].value().size());
  }
  EXPECT_EQ(engine.stats().deadline_exceeded, 0);
}

TEST(QueryEngineConcurrencyTest, ManyClientThreadsShareOneEngine) {
  auto library = MakeLibrary();
  QueryEngineConfig config;
  config.num_threads = 4;
  config.cache_shards = 2;
  QueryEngine engine(library.get(), config);
  std::vector<CombinedQuery> queries = MixedQueries();

  auto baseline = engine.Search(queries[0]).TakeValue();
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&engine, &queries, &baseline, c] {
      for (int round = 0; round < 10; ++round) {
        const CombinedQuery& query = queries[(c + round) % queries.size()];
        auto result = engine.Search(query);
        ASSERT_TRUE(result.ok());
        if (QueryEngine::NormalizedKey(query) ==
            QueryEngine::NormalizedKey(queries[0])) {
          const auto& hits = result.value();
          ASSERT_EQ(hits.size(), baseline.size());
          for (size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].player_oid, baseline[i].player_oid);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, 1 + 8 * 10);
  EXPECT_GT(stats.cache_hits, 0);
  EXPECT_EQ(stats.errors, 0);
}

}  // namespace
}  // namespace cobra::engine
