#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "core/tennis_fde.h"
#include "engine/digital_library.h"
#include "engine/query_language.h"
#include "media/tennis_synthesizer.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine {
namespace {

using storage::CompareOp;
using storage::Predicate;

/// A fully-populated library: synthesized site, interviews indexed, and
/// every match video rendered + indexed through the tennis FDE.
struct LibraryFixture {
  std::unique_ptr<DigitalLibrary> library;
  webspace::SynthesizedSite site_truth;  // ground truth (store moved out)
};

const LibraryFixture& SharedLibrary() {
  static const LibraryFixture* fixture = [] {
    webspace::SiteConfig site_config;
    site_config.num_players = 12;
    site_config.num_past_years = 3;
    site_config.videos_per_year = 1;
    site_config.seed = 77;
    site_config.ensure_answer = true;
    auto site = webspace::SiteSynthesizer::Generate(site_config).TakeValue();

    auto* out = new LibraryFixture();
    // Keep a copy of truth fields before moving the store.
    out->site_truth.player_oids = site.player_oids;
    out->site_truth.video_oids = site.video_oids;
    out->site_truth.interview_texts = site.interview_texts;
    out->site_truth.video_seeds = site.video_seeds;
    out->site_truth.champions = site.champions;
    out->site_truth.left_handed_female_champions =
        site.left_handed_female_champions;

    auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
    for (const auto& [oid, text] : out->site_truth.interview_texts) {
      EXPECT_TRUE(library->AddInterview(oid, text).ok());
    }
    EXPECT_TRUE(library->FinalizeText().ok());

    // Render + index each match video (small, fast broadcasts).
    auto indexer = core::TennisVideoIndexer::Create().TakeValue();
    for (const auto& [video_oid, seed] : out->site_truth.video_seeds) {
      media::TennisSynthConfig config;
      config.width = 128;
      config.height = 96;
      config.num_points = 2;
      config.min_court_frames = 80;
      config.max_court_frames = 110;
      config.min_cutaway_frames = 12;
      config.max_cutaway_frames = 18;
      config.noise_sigma = 3.0;
      config.net_approach_prob = 1.0;
      config.seed = seed;
      auto broadcast =
          media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
      auto desc = indexer->Index(*broadcast.video, video_oid, "match video");
      EXPECT_TRUE(desc.ok()) << desc.status().ToString();
      EXPECT_TRUE(library->AddVideoDescription(*desc).ok());
    }
    out->library = std::move(library);
    return out;
  }();
  return *fixture;
}

// ---------- DigitalLibrary ----------

TEST(DigitalLibraryTest, RejectsWrongSchema) {
  auto schema =
      webspace::ConceptSchema::Create({webspace::ClassDef{"X", {}}}, {})
          .TakeValue();
  auto store = webspace::WebspaceStore::Create(std::move(schema)).TakeValue();
  EXPECT_FALSE(DigitalLibrary::Create(std::move(store)).ok());
}

TEST(DigitalLibraryTest, ConceptOnlyQuery) {
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.player_predicates = {
      Predicate{"hand", CompareOp::kEq, std::string("left")},
      Predicate{"gender", CompareOp::kEq, std::string("female")}};
  query.require_champion = true;
  auto hits = fixture.library->Search(query).TakeValue();

  std::vector<int64_t> found;
  for (const SceneHit& hit : hits) found.push_back(hit.player_oid);
  std::sort(found.begin(), found.end());
  found.erase(std::unique(found.begin(), found.end()), found.end());
  EXPECT_EQ(found, fixture.site_truth.left_handed_female_champions);
  for (const SceneHit& hit : hits) {
    EXPECT_EQ(hit.video_oid, -1) << "no content part requested";
    EXPECT_FALSE(hit.player_name.empty());
  }
}

TEST(DigitalLibraryTest, MotivatingQueryReturnsScenes) {
  // "Video scenes of left-handed female players who have won the Australian
  //  Open in the past, in which they approach the net."
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.player_predicates = {
      Predicate{"hand", CompareOp::kEq, std::string("left")},
      Predicate{"gender", CompareOp::kEq, std::string("female")}};
  query.require_champion = true;
  query.event = "net_play";
  auto hits = fixture.library->Search(query).TakeValue();

  std::set<int64_t> answer(fixture.site_truth.left_handed_female_champions.begin(),
                           fixture.site_truth.left_handed_female_champions.end());
  for (const SceneHit& hit : hits) {
    EXPECT_TRUE(answer.count(hit.player_oid))
        << "scene of a player outside the concept answer";
    EXPECT_GE(hit.video_oid, 0);
    EXPECT_FALSE(hit.range.Empty());
    EXPECT_EQ(hit.event, "net_play");
  }
  // Contract check: the engine must return exactly the scenes the
  // meta-index holds for the answer players' videos and court sides.
  size_t expected = 0;
  for (int64_t player : answer) {
    auto videos =
        fixture.library->store().Traverse("plays_in", {player}).TakeValue();
    for (int64_t video : videos) {
      for (int64_t role :
           fixture.library->store().Roles("plays_in", player, video).TakeValue()) {
        expected += fixture.library->meta_index()
                        .FindScenes("net_play", video, role)
                        .TakeValue()
                        .size();
      }
    }
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(DigitalLibraryTest, SearchOrderIsDeterministicAndTotal) {
  // The hit order is part of the API contract: text score descending, then
  // video id, scene start, scene end, player oid, event. Equal-score hits
  // must therefore never depend on internal traversal order.
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.require_champion = true;
  query.event = "net_play";
  auto hits = fixture.library->Search(query).TakeValue();
  ASSERT_FALSE(hits.empty());
  for (size_t i = 1; i < hits.size(); ++i) {
    const SceneHit& a = hits[i - 1];
    const SceneHit& b = hits[i];
    auto key = [](const SceneHit& h) {
      return std::make_tuple(-h.text_score, h.video_oid, h.range.begin,
                             h.range.end, h.player_oid, h.event);
    };
    EXPECT_LT(key(a), key(b)) << "hits " << i - 1 << "/" << i
                              << " out of order or duplicated";
  }
  // Re-running the identical query reproduces the identical order.
  auto again = fixture.library->Search(query).TakeValue();
  ASSERT_EQ(again.size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(again[i].player_oid, hits[i].player_oid) << i;
    EXPECT_EQ(again[i].video_oid, hits[i].video_oid) << i;
    EXPECT_EQ(again[i].range.begin, hits[i].range.begin) << i;
  }
}

TEST(DigitalLibraryTest, SearchReportsTextStats) {
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.text = "champion title";
  text::SearchStats stats;
  ASSERT_TRUE(fixture.library->Search(query, &stats).ok());
  EXPECT_GT(stats.postings_scanned, 0);
  EXPECT_GT(stats.terms_evaluated, 0);

  // No text condition -> the stats out-param is zeroed, not stale.
  CombinedQuery concept_only;
  concept_only.require_champion = true;
  ASSERT_TRUE(fixture.library->Search(concept_only, &stats).ok());
  EXPECT_EQ(stats.postings_scanned, 0);
  EXPECT_EQ(stats.terms_evaluated, 0);
}

TEST(DigitalLibraryTest, TextConditionFilters) {
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.text = "champion title";
  query.text_top_k = 50;
  auto hits = fixture.library->Search(query).TakeValue();
  EXPECT_FALSE(hits.empty());
  for (const SceneHit& hit : hits) EXPECT_GT(hit.text_score, 0.0);
}

TEST(DigitalLibraryTest, KeywordBaselineHasFalsePositives) {
  // The paper's §2 point: keyword search sees championship vocabulary in
  // non-champions' interviews. The conceptual query does not.
  const LibraryFixture& fixture = SharedLibrary();
  auto keyword_hits =
      fixture.library->SearchKeywordOnly("champion title", 50).TakeValue();
  std::set<int64_t> champions(fixture.site_truth.champions.begin(),
                              fixture.site_truth.champions.end());
  size_t false_positives = 0;
  for (const SceneHit& hit : keyword_hits) {
    if (!champions.count(hit.player_oid)) ++false_positives;
  }
  EXPECT_GT(false_positives, 0u)
      << "the synthesized site should contain the keyword trap";

  CombinedQuery query;
  query.require_champion = true;
  auto concept_hits = fixture.library->Search(query).TakeValue();
  for (const SceneHit& hit : concept_hits) {
    EXPECT_TRUE(champions.count(hit.player_oid));
  }
}

TEST(DigitalLibraryTest, WonYearFilter) {
  const LibraryFixture& fixture = SharedLibrary();
  CombinedQuery query;
  query.require_champion = true;
  query.won_year = 1996;
  auto hits = fixture.library->Search(query).TakeValue();
  // At most one champion per year.
  std::set<int64_t> players;
  for (const SceneHit& hit : hits) players.insert(hit.player_oid);
  EXPECT_LE(players.size(), 1u);
}

TEST(DigitalLibraryTest, TextBeforeFinalizeFails) {
  webspace::SiteConfig config;
  config.num_players = 4;
  config.num_past_years = 1;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
  auto library = DigitalLibrary::Create(std::move(site.store)).TakeValue();
  CombinedQuery query;
  query.text = "anything";
  EXPECT_FALSE(library->Search(query).ok());
}

TEST(DigitalLibraryTest, EventStatistics) {
  const LibraryFixture& fixture = SharedLibrary();
  auto stats = fixture.library->EventStatistics().TakeValue();
  ASSERT_FALSE(stats.empty());
  int64_t serves = 0, rallies = 0;
  for (const auto& row : stats) {
    if (std::get<std::string>(row.key) == "serve") serves = row.count;
    if (std::get<std::string>(row.key) == "rally") rallies = row.count;
  }
  // 2 points per video, 3 videos.
  EXPECT_EQ(serves, 6);
  EXPECT_EQ(rallies, 6);
}

TEST(DigitalLibraryTest, ScenesPerPlayer) {
  const LibraryFixture& fixture = SharedLibrary();
  auto per_player = fixture.library->ScenesPerPlayer("net_play").TakeValue();
  // Each video's players are the only candidates; counts must be sorted
  // descending and positive.
  for (size_t i = 0; i < per_player.size(); ++i) {
    EXPECT_GT(per_player[i].second, 0);
    if (i > 0) {
      EXPECT_LE(per_player[i].second, per_player[i - 1].second);
    }
  }
  // Court-level serves: every video participant gets its serves counted.
  auto serves = fixture.library->ScenesPerPlayer("serve").TakeValue();
  EXPECT_FALSE(serves.empty());
}

// ---------- Query language ----------

TEST(QueryLanguageTest, ParsesMotivatingQuery) {
  auto query = ParseQuery(
      "player.hand = left AND player.gender = female AND won = any AND "
      "event = net_play AND text ~ \"approaching the net\"");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->player_predicates.size(), 2u);
  EXPECT_EQ(query->player_predicates[0].column, "hand");
  EXPECT_EQ(std::get<std::string>(query->player_predicates[0].literal), "left");
  EXPECT_TRUE(query->require_champion);
  EXPECT_EQ(query->won_year, -1);
  EXPECT_EQ(query->event, "net_play");
  EXPECT_EQ(query->text, "approaching the net");
}

TEST(QueryLanguageTest, NumericPredicatesAndYear) {
  auto query =
      ParseQuery("player.ranking <= 5 AND won.year = 1999").TakeValue();
  ASSERT_EQ(query.player_predicates.size(), 1u);
  EXPECT_EQ(query.player_predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(std::get<int64_t>(query.player_predicates[0].literal), 5);
  EXPECT_TRUE(query.require_champion);
  EXPECT_EQ(query.won_year, 1999);
}

TEST(QueryLanguageTest, CaseInsensitiveAnd) {
  auto query = ParseQuery("player.hand = left and event = rally").TakeValue();
  EXPECT_EQ(query.player_predicates.size(), 1u);
  EXPECT_EQ(query.event, "rally");
}

TEST(QueryLanguageTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("player.hand left").ok());     // no operator
  EXPECT_FALSE(ParseQuery("text = volley").ok());        // text needs ~
  EXPECT_FALSE(ParseQuery("event ~ net_play").ok());     // event needs =
  EXPECT_FALSE(ParseQuery("won = 1999").ok());           // use won.year
  EXPECT_FALSE(ParseQuery("won.year = soon").ok());
  EXPECT_FALSE(ParseQuery("galaxy.size = big").ok());    // unknown subject
  EXPECT_FALSE(ParseQuery("player.hand = left AND").ok());
  EXPECT_FALSE(ParseQuery("player.hand ~ left").ok());
}

TEST(QueryLanguageTest, RoundTripFormat) {
  auto query = ParseQuery(
                   "player.hand = left AND won.year = 1999 AND "
                   "event = net_play AND text ~ \"volley\"")
                   .TakeValue();
  std::string formatted = FormatQuery(query);
  auto reparsed = ParseQuery(formatted);
  ASSERT_TRUE(reparsed.ok()) << formatted;
  EXPECT_EQ(reparsed->event, query.event);
  EXPECT_EQ(reparsed->won_year, query.won_year);
  EXPECT_EQ(reparsed->text, query.text);
  EXPECT_EQ(reparsed->player_predicates.size(), query.player_predicates.size());
}

TEST(QueryLanguageTest, ParsedQueryRunsEndToEnd) {
  const LibraryFixture& fixture = SharedLibrary();
  auto query = ParseQuery("won = any AND event = serve").TakeValue();
  auto hits = fixture.library->Search(query).TakeValue();
  for (const SceneHit& hit : hits) {
    EXPECT_EQ(hit.event, "serve");
  }
}

}  // namespace
}  // namespace cobra::engine
