#include <gtest/gtest.h>

#include "core/event_composition.h"
#include "core/object_grammar.h"
#include "core/tennis_fde.h"
#include "media/tennis_synthesizer.h"

namespace cobra::core {
namespace {

// ---------- Object grammar ----------

constexpr const char* kTennisObjectRules = R"(
# Region classification by shape (paper: object layer entities).
object player : area > 25 and eccentricity > 0.3 ;
object ball   : area < 6 ;
)";

TEST(ObjectGrammarTest, ParsesRules) {
  auto g = ObjectGrammar::Parse(kTennisObjectRules);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->rules().size(), 2u);
  EXPECT_EQ(g->rules()[0].name, "player");
  EXPECT_EQ(g->rules()[0].conditions.size(), 2u);
  EXPECT_EQ(g->rules()[1].conditions.size(), 1u);
}

TEST(ObjectGrammarTest, SyntaxErrors) {
  EXPECT_FALSE(ObjectGrammar::Parse("object x : a < 1").ok());       // no ';'
  EXPECT_FALSE(ObjectGrammar::Parse("object x : a ? 1 ;").ok());
  EXPECT_FALSE(ObjectGrammar::Parse("object x : a < one ;").ok());
  EXPECT_FALSE(ObjectGrammar::Parse("object x : ;").ok());
  EXPECT_FALSE(ObjectGrammar::Parse("thing x : a < 1 ;").ok());
  EXPECT_FALSE(ObjectGrammar::Parse("object x : a < 1 b < 2 ;").ok());
  EXPECT_TRUE(ObjectGrammar::Parse("# empty\n").ok());
}

TEST(ObjectGrammarTest, ClassifiesByPriority) {
  auto g = ObjectGrammar::Parse(kTennisObjectRules).TakeValue();
  FeatureRecord player{{"area", 80.0}, {"eccentricity", 0.7}};
  FeatureRecord ball{{"area", 3.0}, {"eccentricity", 0.1}};
  FeatureRecord neither{{"area", 15.0}, {"eccentricity", 0.1}};
  EXPECT_EQ(g.Classify(player).TakeValue().value_or(""), "player");
  EXPECT_EQ(g.Classify(ball).TakeValue().value_or(""), "ball");
  EXPECT_FALSE(g.Classify(neither).TakeValue().has_value());
}

TEST(ObjectGrammarTest, FirstMatchWins) {
  auto g = ObjectGrammar::Parse(
               "object big : area > 10 ;\nobject huge : area > 100 ;")
               .TakeValue();
  FeatureRecord r{{"area", 500.0}};
  EXPECT_EQ(g.Classify(r).TakeValue().value_or(""), "big");
}

TEST(ObjectGrammarTest, MissingFeatureFails) {
  auto g = ObjectGrammar::Parse("object x : ghost > 1 ;").TakeValue();
  EXPECT_FALSE(g.Classify(FeatureRecord{{"area", 1.0}}).ok());
}

TEST(ObjectGrammarTest, ClassifiesTrackedPlayers) {
  // End-to-end: the regions the tracker finds should classify as players.
  media::TennisSynthConfig config;
  config.num_points = 1;
  config.include_cutaways = false;
  config.seed = 4;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  auto indexer = TennisVideoIndexer::Create().TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "t").TakeValue();
  (void)desc;
  auto g = ObjectGrammar::Parse(kTennisObjectRules).TakeValue();
  int classified = 0, total = 0;
  for (const auto& ts : indexer->tracked_shots()) {
    for (const auto& track : ts.tracking.tracks) {
      for (const auto& point : track.points) {
        if (point.predicted_only) continue;
        FeatureRecord record{{"area", point.features.area},
                             {"eccentricity", point.features.eccentricity}};
        ++total;
        auto cls = g.Classify(record).TakeValue();
        if (cls.has_value() && *cls == "player") ++classified;
      }
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(classified) / total, 0.9);
}

// ---------- Event composition ----------

grammar::Annotation Event(const char* symbol, int64_t begin, int64_t end,
                          int64_t player) {
  grammar::Annotation a(symbol, FrameInterval{begin, end});
  a.Set("player", player);
  return a;
}

TEST(EventComposerTest, RuleValidation) {
  EventComposer composer;
  CompositeEventRule bad;
  EXPECT_TRUE(composer.AddRule(bad).IsInvalidArgument());
  ASSERT_TRUE(composer.AddRule(NetDuelRule()).ok());
  EXPECT_EQ(composer.AddRule(NetDuelRule()).code(), StatusCode::kAlreadyExists);
}

TEST(EventComposerTest, NetDuelFromOverlappingNetPlays) {
  EventComposer composer;
  ASSERT_TRUE(composer.AddRule(NetDuelRule()).ok());
  std::vector<grammar::Annotation> events = {
      Event("net_play", 100, 140, 0),
      Event("net_play", 120, 160, 1),
      Event("net_play", 300, 320, 0),  // no partner -> no duel
      Event("rally", 90, 200, -1),
  };
  auto composites = composer.Compose(events);
  ASSERT_EQ(composites.size(), 1u);
  EXPECT_EQ(composites[0].symbol, "net_duel");
  EXPECT_EQ(composites[0].range, (FrameInterval{120, 140}));
  EXPECT_EQ(composites[0].IntOr("player", 0), -1);
}

TEST(EventComposerTest, DistinctPlayersRequired) {
  EventComposer composer;
  ASSERT_TRUE(composer.AddRule(NetDuelRule()).ok());
  // Same player twice at the net with overlap: not a duel.
  std::vector<grammar::Annotation> events = {
      Event("net_play", 100, 140, 0),
      Event("net_play", 120, 160, 0),
  };
  EXPECT_TRUE(composer.Compose(events).empty());
}

TEST(EventComposerTest, SymmetricPairEmittedOnce) {
  EventComposer composer;
  ASSERT_TRUE(composer.AddRule(NetDuelRule()).ok());
  std::vector<grammar::Annotation> events = {
      Event("net_play", 100, 140, 0),
      Event("net_play", 120, 160, 1),
  };
  EXPECT_EQ(composer.Compose(events).size(), 1u);
}

TEST(EventComposerTest, UnionSpanAndCustomRelation) {
  EventComposer composer;
  CompositeEventRule rule;
  rule.name = "serve_then_net";
  rule.a_symbol = "serve";
  rule.b_symbol = "net_play";
  rule.relations = {AllenRelation::kBefore, AllenRelation::kMeets};
  rule.emit_intersection = false;
  ASSERT_TRUE(composer.AddRule(rule).ok());
  std::vector<grammar::Annotation> events = {
      Event("serve", 0, 10, -1),
      Event("net_play", 50, 80, 0),
  };
  auto composites = composer.Compose(events);
  ASSERT_EQ(composites.size(), 1u);
  EXPECT_EQ(composites[0].range, (FrameInterval{0, 80}));
}

TEST(EventComposerTest, IndexerEmitsNetDuels) {
  // A broadcast engineered for duels: force both players' net approaches by
  // running several points; duels are rare, so just assert the plumbing
  // works (composite symbol appears when overlapping net plays exist).
  media::TennisSynthConfig config;
  config.num_points = 6;
  config.seed = 12;
  config.net_approach_prob = 1.0;
  config.min_court_frames = 130;
  config.max_court_frames = 170;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();

  TennisIndexerConfig indexer_config;
  indexer_config.composite_rules.push_back(NetDuelRule());
  auto indexer = TennisVideoIndexer::Create(indexer_config).TakeValue();
  auto desc = indexer->Index(*broadcast.video, 1, "duel").TakeValue();

  // Cross-check against a composer applied to the same event layer minus
  // composites.
  EventComposer composer;
  ASSERT_TRUE(composer.AddRule(NetDuelRule()).ok());
  std::vector<grammar::Annotation> base_events;
  for (const auto& e : desc.Layer(CobraLayer::kEvent)) {
    if (e.symbol != "net_duel") base_events.push_back(e);
  }
  EXPECT_EQ(desc.Named(CobraLayer::kEvent, "net_duel").size(),
            composer.Compose(base_events).size());
}

}  // namespace
}  // namespace cobra::core
