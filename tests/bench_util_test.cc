/// \file bench_util_test.cc
/// The benchmark helpers' statistics: Percentile interpolation and its
/// empty-sample guard (an empty benchmark run must report 0.0, not index
/// out of range).

#include <gtest/gtest.h>

#include <vector>

#include "../bench/bench_util.h"

namespace cobra::bench {
namespace {

TEST(PercentileTest, EmptySamplesReturnZero) {
  EXPECT_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({}, 0.99), 0.0);
  EXPECT_EQ(Percentile({}, 1.0), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  EXPECT_EQ(Percentile({7.5}, 0.0), 7.5);
  EXPECT_EQ(Percentile({7.5}, 0.5), 7.5);
  EXPECT_EQ(Percentile({7.5}, 1.0), 7.5);
}

TEST(PercentileTest, InterpolatesBetweenSortedValues) {
  const std::vector<double> samples = {4.0, 1.0, 3.0, 2.0};  // sorts to 1..4
  EXPECT_EQ(Percentile(samples, 0.0), 1.0);
  EXPECT_EQ(Percentile(samples, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(samples, 1.0 / 3.0), 2.0);
}

TEST(PercentileTest, P99NearMaxOfLargeSample) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(static_cast<double>(i));
  const double p99 = Percentile(samples, 0.99);
  EXPECT_GE(p99, 990.0);
  EXPECT_LE(p99, 991.0);
}

}  // namespace
}  // namespace cobra::bench
