/// \file similarity_test.cc
/// SIMD perceptual signatures + sublinear ANN index (DESIGN.md §4j):
///   * the signature distance kernels are bit-identical across SIMD tiers,
///     single-pair and strided-batch forms alike;
///   * SearchSimilar answers bit-identically to the exhaustive oracle
///     across band counts, signature prefixes, k values and SIMD tiers
///     (property sweep), and FindNearDuplicates equals a brute-force pair
///     scan;
///   * the similar_to stage end to end: query-language parsing, planner vs
///     fixed-order bit-identity, probe-not-found error parity;
///   * serving shard invariance: 1, 2 and 7 shards answer similar_to
///     queries bit-identically to the unsharded oracle through the
///     frontend's global similar seed;
///   * durable roundtrip: signatures survive flush + reopen (zero-copy
///     base chunks) and WAL replay of an unflushed window;
///   * extraction over synthesized broadcasts: transformed near-duplicate
///     clips rank their ground-truth source shot first, and the shared
///     frame cache reports hits on re-extraction;
///   * (tsan) concurrent extraction over one shared FrameFeatureCache is
///     race-free and agrees with the sequential pass.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/digital_library.h"
#include "engine/durable_library.h"
#include "engine/query_language.h"
#include "engine/serving/partition.h"
#include "engine/serving/serving.h"
#include "engine/similarity/similarity.h"
#include "media/near_duplicate.h"
#include "media/tennis_synthesizer.h"
#include "util/rng.h"
#include "vision/signature.h"
#include "vision/signature_kernels.h"
#include "webspace/site_synthesizer.h"

namespace cobra::engine {
namespace {

using similarity::Neighbor;
using similarity::SignatureIndex;
using similarity::SignatureIndexConfig;
using storage::CompareOp;

vision::SignatureRecord MakeRecord(Rng* rng, int64_t video, int64_t begin,
                                   int64_t end) {
  vision::SignatureRecord rec;
  for (uint64_t& word : rec.sig.hash) word = rng->NextU64();
  for (uint8_t& byte : rec.sig.sketch) {
    byte = static_cast<uint8_t>(rng->NextBounded(256));
  }
  rec.video_id = video;
  rec.begin = begin;
  rec.end = end;
  return rec;
}

/// Flips `flips` random hash bits and nudges a few sketch bins — a planted
/// near-duplicate at a known Hamming distance scale.
vision::ShotSignature Perturb(const vision::ShotSignature& sig, int flips,
                              Rng* rng) {
  vision::ShotSignature out = sig;
  for (int f = 0; f < flips; ++f) {
    const uint32_t bit = static_cast<uint32_t>(rng->NextBounded(256));
    out.hash[bit / 64] ^= uint64_t{1} << (bit % 64);
  }
  for (uint8_t& byte : out.sketch) {
    if (rng->NextBounded(4) == 0) {
      byte = static_cast<uint8_t>(
          std::min<int64_t>(255, byte + rng->NextBounded(5)));
    }
  }
  return out;
}

/// Random per-shot records for `num_videos` videos plus planted
/// near-duplicates of every 5th shot under later video ids. Random 256-bit
/// signatures sit ~128 bits apart, so only the planted pairs fall inside
/// the default max_hamming threshold — the interesting regime.
std::vector<vision::SignatureRecord> MakeRecordCorpus(int64_t num_videos,
                                                      int64_t shots_per_video,
                                                      Rng* rng) {
  std::vector<vision::SignatureRecord> records;
  for (int64_t v = 0; v < num_videos; ++v) {
    for (int64_t s = 0; s < shots_per_video; ++s) {
      records.push_back(MakeRecord(rng, v + 1, s * 120, s * 120 + 119));
    }
  }
  const size_t base = records.size();
  for (size_t i = 0; i < base; i += 5) {
    vision::SignatureRecord dup = records[i];
    dup.sig = Perturb(dup.sig, 1 + static_cast<int>(rng->NextBounded(14)), rng);
    dup.video_id = num_videos + 1 + static_cast<int64_t>(i % 3);
    dup.begin = static_cast<int64_t>(i) * 120;
    dup.end = dup.begin + 119;
    records.push_back(dup);
  }
  return records;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& expected,
                         const std::vector<Neighbor>& actual,
                         const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].hamming, actual[i].hamming) << label << " hit " << i;
    EXPECT_EQ(expected[i].l2sq, actual[i].l2sq) << label << " hit " << i;
    // Pointer identity: the exact same record, not an equal-looking one.
    EXPECT_EQ(expected[i].record, actual[i].record) << label << " hit " << i;
  }
}

// ---------------------------------------------------------------------------
// Kernel tiers.

TEST(SignatureKernelsTest, TiersAreBitIdentical) {
  namespace sk = vision::signature_kernels;
  Rng rng(404);
  std::vector<vision::SignatureRecord> records;
  for (int i = 0; i < 257; ++i) {
    records.push_back(MakeRecord(&rng, i, 0, 10));
  }
  const auto& scalar = sk::ScalarOps();
  const auto* hash_base = reinterpret_cast<const uint8_t*>(records[0].sig.hash);
  const auto* sketch_base = records[0].sig.sketch;
  constexpr size_t kStride = sizeof(vision::SignatureRecord);
  for (sk::SimdLevel level : {sk::SimdLevel::kSse41, sk::SimdLevel::kAvx2}) {
    const sk::SignatureKernelOps* ops = sk::OpsFor(level);
    if (ops == nullptr) continue;  // tier not compiled or not supported here
    for (int q = 0; q < 8; ++q) {
      vision::ShotSignature query =
          records[rng.NextBounded(records.size())].sig;
      if (q % 2 == 1) {
        query = Perturb(query, static_cast<int>(rng.NextBounded(40)), &rng);
      }
      for (const vision::SignatureRecord& rec : records) {
        EXPECT_EQ(scalar.Hamming256(query.hash, rec.sig.hash),
                  ops->Hamming256(query.hash, rec.sig.hash));
        EXPECT_EQ(scalar.L2Sq32(query.sketch, rec.sig.sketch),
                  ops->L2Sq32(query.sketch, rec.sig.sketch));
      }
      // Batch kernels stride whole records; odd lengths exercise the tails.
      for (size_t n : {size_t{1}, size_t{7}, records.size()}) {
        std::vector<uint32_t> want(n), got(n);
        scalar.Hamming256Batch(query.hash, hash_base, kStride, n, want.data());
        ops->Hamming256Batch(query.hash, hash_base, kStride, n, got.data());
        EXPECT_EQ(want, got) << "hamming n=" << n;
        scalar.L2Sq32Batch(query.sketch, sketch_base, kStride, n, want.data());
        ops->L2Sq32Batch(query.sketch, sketch_base, kStride, n, got.data());
        EXPECT_EQ(want, got) << "l2 n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The ANN index vs the exhaustive oracle.

TEST(SignatureIndexTest, RejectsMalformedConfigs) {
  SignatureIndex index;
  SignatureIndexConfig config;
  config.ann_bands = 0;
  EXPECT_FALSE(index.SetConfig(config).ok());
  config.ann_bands = 3;  // does not divide 256
  EXPECT_FALSE(index.SetConfig(config).ok());
  config = {};
  config.signature_bits = 100;  // not a whole number of words
  EXPECT_FALSE(index.SetConfig(config).ok());
  config = {};
  config.rerank_k = 0;
  EXPECT_FALSE(index.SetConfig(config).ok());
  config = {};
  EXPECT_TRUE(index.SetConfig(config).ok());
}

TEST(SignatureIndexTest, AnnEqualsExhaustiveAcrossConfigsAndTiers) {
  namespace sk = vision::signature_kernels;
  Rng rng(1205);
  const std::vector<vision::SignatureRecord> records =
      MakeRecordCorpus(/*num_videos=*/8, /*shots_per_video=*/40, &rng);

  // Queries: planted duplicates' sources, fresh perturbations at several
  // strengths (inside and outside the threshold), and pure noise.
  std::vector<vision::ShotSignature> queries;
  for (size_t i = 0; i < records.size(); i += 17) {
    queries.push_back(records[i].sig);
    queries.push_back(
        Perturb(records[i].sig, 1 + static_cast<int>(rng.NextBounded(40)),
                &rng));
  }
  for (int i = 0; i < 4; ++i) queries.push_back(MakeRecord(&rng, 0, 0, 1).sig);

  const sk::SimdLevel original = sk::ActiveLevel();
  for (sk::SimdLevel level :
       {sk::SimdLevel::kScalar, sk::SimdLevel::kSse41, sk::SimdLevel::kAvx2}) {
    if (sk::OpsFor(level) == nullptr) continue;
    sk::SetActiveLevel(level);
    for (int bands : {4, 8, 16}) {
      for (int bits : {64, 256}) {
        SignatureIndexConfig config;
        config.ann_bands = bands;
        config.signature_bits = bits;
        SignatureIndex index(config);
        ASSERT_EQ(index.config().ann_bands, bands);
        index.AddRecords(records.data(), records.size());
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          for (size_t k : {size_t{1}, size_t{5}, size_t{64}}) {
            similarity::SimilaritySearchStats stats;
            const auto fast = index.SearchSimilar(queries[qi], k, &stats);
            const auto oracle = index.SearchSimilarExhaustive(queries[qi], k);
            ExpectSameNeighbors(
                oracle, fast,
                "tier=" + std::to_string(static_cast<int>(level)) +
                    " bands=" + std::to_string(bands) +
                    " bits=" + std::to_string(bits) +
                    " q=" + std::to_string(qi) + " k=" + std::to_string(k));
            // Every result honors the threshold and the HLB never exceeds
            // the best result's distance.
            for (const Neighbor& nb : fast) {
              EXPECT_LE(nb.hamming, config.max_hamming);
            }
            if (!fast.empty()) {
              EXPECT_LE(index.HammingLowerBound(queries[qi]),
                        fast.front().hamming);
            }
          }
        }
      }
    }
  }
  sk::SetActiveLevel(original);
}

TEST(SignatureIndexTest, ExhaustiveFallbackOnTinyIndexes) {
  // With a handful of records every enumeration beats nothing: the index
  // must fall back to the scan and still answer exactly.
  Rng rng(77);
  SignatureIndex index;
  std::vector<vision::SignatureRecord> records;
  for (int i = 0; i < 3; ++i) records.push_back(MakeRecord(&rng, 1, i, i));
  index.AddRecords(records.data(), records.size());
  similarity::SimilaritySearchStats stats;
  const auto fast = index.SearchSimilar(records[1].sig, 2, &stats);
  EXPECT_TRUE(stats.exhaustive_fallback);
  ExpectSameNeighbors(index.SearchSimilarExhaustive(records[1].sig, 2), fast,
                      "tiny");
}

TEST(SignatureIndexTest, FindNearDuplicatesEqualsBruteForce) {
  Rng rng(88);
  const std::vector<vision::SignatureRecord> records =
      MakeRecordCorpus(/*num_videos=*/4, /*shots_per_video=*/25, &rng);
  SignatureIndex index;
  index.AddRecords(records.data(), records.size());

  for (uint32_t threshold : {uint32_t{8}, uint32_t{31}}) {
    const auto& ops = vision::signature_kernels::Ops();
    std::vector<SignatureIndex::DuplicatePair> expected;
    for (size_t i = 0; i < records.size(); ++i) {
      for (size_t j = i + 1; j < records.size(); ++j) {
        const uint32_t hamming =
            ops.Hamming256(records[i].sig.hash, records[j].sig.hash);
        if (hamming > threshold) continue;
        SignatureIndex::DuplicatePair pair;
        pair.a = &index.record(i);
        pair.b = &index.record(j);
        pair.hamming = hamming;
        pair.l2sq = ops.L2Sq32(records[i].sig.sketch, records[j].sig.sketch);
        expected.push_back(pair);
      }
    }
    auto key = [](const SignatureIndex::DuplicatePair& p) {
      return std::make_tuple(p.a->video_id, p.a->begin, p.b->video_id,
                             p.b->begin);
    };
    std::sort(expected.begin(), expected.end(),
              [&](const auto& x, const auto& y) { return key(x) < key(y); });

    const auto actual = index.FindNearDuplicates(threshold);
    ASSERT_EQ(expected.size(), actual.size()) << "threshold " << threshold;
    EXPECT_GT(actual.size(), 0u);  // the planted pairs must surface
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].a, actual[i].a) << i;
      EXPECT_EQ(expected[i].b, actual[i].b) << i;
      EXPECT_EQ(expected[i].hamming, actual[i].hamming) << i;
      EXPECT_EQ(expected[i].l2sq, actual[i].l2sq) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Query language.

TEST(QueryLanguageTest, ParsesSimilarToClause) {
  auto query = ParseQuery("similar_to = 12:3400").TakeValue();
  EXPECT_EQ(query.similar_video, 12);
  EXPECT_EQ(query.similar_frame, 3400);
  EXPECT_EQ(query.similar_k, 0u);

  query = ParseQuery("event = net_play AND similar_to = 7:0 AND similar_to.k = 5")
              .TakeValue();
  EXPECT_EQ(query.event, "net_play");
  EXPECT_EQ(query.similar_video, 7);
  EXPECT_EQ(query.similar_frame, 0);
  EXPECT_EQ(query.similar_k, 5u);
  EXPECT_NE(FormatQuery(query).find("similar_to"), std::string::npos);

  EXPECT_FALSE(ParseQuery("similar_to = 12").ok());        // missing frame
  EXPECT_FALSE(ParseQuery("similar_to = a:b").ok());       // not numeric
  EXPECT_FALSE(ParseQuery("similar_to.k = 3").ok());       // k without probe
  EXPECT_FALSE(ParseQuery("similar_to = 1:2 AND similar_to.k = 0").ok());
}

// ---------------------------------------------------------------------------
// Library-level similar_to: planner vs fixed order, error parity.

struct LibraryFixture {
  serving::CorpusParts parts;
  std::unique_ptr<DigitalLibrary> library;
  int64_t probe_video = -1;  ///< a video with indexed signatures
};

core::VideoDescription MakeVideoDesc(int64_t oid) {
  const char* events[] = {"net_play", "rally", "service", "smash"};
  Rng rng(static_cast<uint64_t>(oid) * 977 + 5);
  core::VideoDescription desc(oid, "synthetic", 25.0, 40000);
  for (int e = 0; e < 24; ++e) {
    const int64_t begin = rng.NextInt(0, 39000);
    desc.Add(core::CobraLayer::kEvent,
             grammar::Annotation(events[rng.NextBounded(4)],
                                 {begin, begin + rng.NextInt(10, 900)})
                 .Set("player", rng.NextInt(-1, 1)));
  }
  return desc;
}

LibraryFixture MakeLibraryFixture() {
  webspace::SiteConfig config;
  config.num_players = 16;
  config.num_past_years = 3;
  config.videos_per_year = 2;
  config.seed = 2013;
  config.ensure_answer = true;
  auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();

  LibraryFixture out;
  out.parts.store = std::move(site.store);
  for (const auto& [oid, body] : site.interview_texts) {
    out.parts.interviews.emplace_back(oid, body);
  }
  for (int64_t oid : site.video_oids) {
    out.parts.videos.push_back(MakeVideoDesc(oid));
  }
  // Per-video signatures with cross-video planted near-duplicates: shot s
  // of every video perturbs a common per-s base signature, so every shot
  // has neighbors in most other videos.
  Rng rng(515);
  std::vector<vision::ShotSignature> bases;
  for (int s = 0; s < 12; ++s) bases.push_back(MakeRecord(&rng, 0, 0, 1).sig);
  for (int64_t oid : site.video_oids) {
    std::vector<vision::SignatureRecord> records;
    for (int s = 0; s < 12; ++s) {
      vision::SignatureRecord rec;
      rec.sig = Perturb(bases[s], 1 + static_cast<int>(rng.NextBounded(20)),
                        &rng);
      rec.video_id = oid;
      rec.begin = s * 3000;
      rec.end = s * 3000 + 2999;
      records.push_back(rec);
    }
    out.parts.signatures.emplace_back(oid, std::move(records));
  }
  out.probe_video = site.video_oids.front();
  out.library = serving::BuildLibrary(out.parts).TakeValue();
  return out;
}

std::vector<CombinedQuery> SimilarQueries(const LibraryFixture& fixture) {
  std::vector<CombinedQuery> queries;
  Rng rng(99);
  for (int i = 0; i < 24; ++i) {
    CombinedQuery query;
    query.similar_video = fixture.probe_video;
    query.similar_frame = rng.NextInt(0, 35999);
    if (i % 4 == 1) query.event = "net_play";
    if (i % 4 == 2) {
      query.player_predicates.push_back(
          {"gender", CompareOp::kEq, std::string("female")});
      query.event = "rally";
    }
    if (i % 4 == 3) {
      query.text = "champion title";
      query.event = "service";
      query.similar_k = 1 + rng.NextBounded(8);
    }
    if (i % 6 == 5) query.similar_k = 40;  // more than the neighbor count
    queries.push_back(std::move(query));
  }
  // Probe resolution failures: unknown video, frame past every shot.
  CombinedQuery missing;
  missing.similar_video = 999999;
  missing.similar_frame = 10;
  queries.push_back(missing);
  missing.similar_video = fixture.probe_video;
  missing.similar_frame = 39999;  // past the last signed shot (12 * 3000)
  queries.push_back(missing);
  return queries;
}

void ExpectSameHits(const std::vector<SceneHit>& expected,
                    const std::vector<SceneHit>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    const SceneHit& a = expected[i];
    const SceneHit& b = actual[i];
    EXPECT_EQ(a.player_oid, b.player_oid) << label << " hit " << i;
    EXPECT_EQ(a.video_oid, b.video_oid) << label << " hit " << i;
    EXPECT_EQ(a.range.begin, b.range.begin) << label << " hit " << i;
    EXPECT_EQ(a.range.end, b.range.end) << label << " hit " << i;
    EXPECT_EQ(a.event, b.event) << label << " hit " << i;
    uint64_t bits_a = 0, bits_b = 0;
    std::memcpy(&bits_a, &a.similarity, 8);
    std::memcpy(&bits_b, &b.similarity, 8);
    EXPECT_EQ(bits_a, bits_b) << label << " hit " << i;
    std::memcpy(&bits_a, &a.text_score, 8);
    std::memcpy(&bits_b, &b.text_score, 8);
    EXPECT_EQ(bits_a, bits_b) << label << " hit " << i;
  }
}

TEST(SimilarSearchTest, PlannerMatchesFixedOrderOnSimilarQueries) {
  LibraryFixture fixture = MakeLibraryFixture();
  const auto queries = SimilarQueries(fixture);
  size_t non_empty = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto fixed = fixture.library->SearchFixedOrder(queries[qi]);
    auto planned = fixture.library->Search(queries[qi]);
    const std::string label = "query " + std::to_string(qi);
    ASSERT_EQ(fixed.ok(), planned.ok()) << label;
    if (!fixed.ok()) {
      // Error parity: the planner reproduces the oracle's failure exactly.
      EXPECT_EQ(fixed.status().ToString(), planned.status().ToString())
          << label;
      continue;
    }
    ExpectSameHits(*fixed, *planned, label);
    if (!fixed->empty()) ++non_empty;
    for (const SceneHit& hit : *fixed) {
      EXPECT_GE(hit.similarity, 0.0) << label;  // similar queries carry keys
      EXPECT_NE(hit.video_oid, -1) << label;
    }
  }
  EXPECT_GT(non_empty, 5u);  // the sweep must actually exercise results
}

TEST(SimilarSearchTest, ProbeWithoutSignatureIsNotFound) {
  LibraryFixture fixture = MakeLibraryFixture();
  CombinedQuery query;
  query.similar_video = 123456789;
  query.similar_frame = 0;
  auto result = fixture.library->Search(query);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound()) << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Serving: shard-count invariance with the frontend similar seed.

std::vector<const DigitalLibrary*> Views(
    const std::vector<std::unique_ptr<DigitalLibrary>>& shards) {
  std::vector<const DigitalLibrary*> views;
  for (const auto& shard : shards) views.push_back(shard.get());
  return views;
}

TEST(SimilarServingTest, ShardCountInvarianceOnSimilarQueries) {
  LibraryFixture fixture = MakeLibraryFixture();
  const auto queries = SimilarQueries(fixture);
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{7}}) {
    auto shards =
        serving::BuildShardLibraries(fixture.parts, num_shards).TakeValue();
    auto frontend =
        serving::ServingFrontend::Create(Views(shards), serving::ServingConfig{})
            .TakeValue();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (size_t top_n : {size_t{3}, size_t{0}}) {
        auto expected = fixture.library->Search(queries[qi]);
        serving::QueryStats qs;
        auto actual = frontend->Search(queries[qi], top_n, &qs);
        const std::string label = "shards=" + std::to_string(num_shards) +
                                  " query=" + std::to_string(qi) +
                                  " n=" + std::to_string(top_n);
        ASSERT_EQ(expected.ok(), actual.ok())
            << label << " " << expected.status().ToString() << " vs "
            << actual.status().ToString();
        if (!expected.ok()) {
          EXPECT_EQ(expected.status().ToString(), actual.status().ToString())
              << label;
          continue;
        }
        if (top_n > 0 && expected->size() > top_n) expected->resize(top_n);
        ExpectSameHits(*expected, *actual, label);
        EXPECT_TRUE(qs.similar_seeded) << label;
        EXPECT_FALSE(qs.single_shard_routed) << label;
      }
    }
    const serving::ServingStats stats = frontend->stats();
    EXPECT_GT(stats.similar_seeded, 0);
  }
}

// ---------------------------------------------------------------------------
// Durable roundtrip: flushed base chunks and WAL replay.

std::string TempDirPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

TEST(SimilarDurableTest, SignaturesSurviveFlushAndWalReplay) {
  LibraryFixture fixture = MakeLibraryFixture();
  const std::string dir = TempDirPath("similarity_durable");

  // Probe set reused across the lifecycle stages below.
  std::vector<vision::ShotSignature> probes;
  for (const auto& [oid, records] : fixture.parts.signatures) {
    (void)oid;
    probes.push_back(records[3].sig);
  }
  // Deep copies: the records a Neighbor points at die with their library,
  // and the snapshots must outlive reopen cycles.
  struct NeighborCopy {
    uint32_t hamming = 0;
    uint32_t l2sq = 0;
    vision::SignatureRecord rec;
  };
  auto snapshot = [&](const DigitalLibrary& library) {
    std::vector<std::vector<NeighborCopy>> out;
    for (const auto& probe : probes) {
      std::vector<NeighborCopy> copies;
      for (const Neighbor& nb : library.signatures().SearchSimilar(probe, 8)) {
        copies.push_back({nb.hamming, nb.l2sq, *nb.record});
      }
      out.push_back(std::move(copies));
    }
    return out;
  };
  auto expect_same = [&](const std::vector<std::vector<NeighborCopy>>& want,
                         const std::vector<std::vector<NeighborCopy>>& got,
                         const std::string& label) {
    ASSERT_EQ(want.size(), got.size()) << label;
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i].size(), got[i].size()) << label << " probe " << i;
      for (size_t j = 0; j < want[i].size(); ++j) {
        EXPECT_EQ(want[i][j].hamming, got[i][j].hamming) << label;
        EXPECT_EQ(want[i][j].l2sq, got[i][j].l2sq) << label;
        EXPECT_EQ(want[i][j].rec.video_id, got[i][j].rec.video_id) << label;
        EXPECT_EQ(want[i][j].rec.begin, got[i][j].rec.begin) << label;
        EXPECT_EQ(want[i][j].rec.end, got[i][j].rec.end) << label;
      }
    }
  };

  std::vector<std::vector<NeighborCopy>> flushed_answers;
  const auto& last_batch = fixture.parts.signatures.back();
  {
    webspace::SiteConfig config;
    config.num_players = 16;
    config.num_past_years = 3;
    config.videos_per_year = 2;
    config.seed = 2013;
    config.ensure_answer = true;
    auto site = webspace::SiteSynthesizer::Generate(config).TakeValue();
    auto durable =
        DurableLibrary::Create(dir, std::move(site.store)).TakeValue();
    for (const auto& desc : fixture.parts.videos) {
      ASSERT_TRUE(durable->AddVideoDescription(desc).ok());
    }
    // All but the last batch land before the flush (the segment path)...
    for (size_t i = 0; i + 1 < fixture.parts.signatures.size(); ++i) {
      const auto& [oid, records] = fixture.parts.signatures[i];
      ASSERT_TRUE(durable->AddVideoSignatures(oid, records).ok());
    }
    ASSERT_TRUE(durable->Flush().ok());
    // ... and the last one stays WAL-only.
    ASSERT_TRUE(
        durable->AddVideoSignatures(last_batch.first, last_batch.second).ok());
    flushed_answers = snapshot(durable->library());
  }
  {
    auto durable = DurableLibrary::Open(dir).TakeValue();
    EXPECT_EQ(durable->library().signatures().num_records(),
              fixture.parts.signatures.size() * 12);
    expect_same(flushed_answers, snapshot(durable->library()), "wal replay");
    // Flush the replayed window and compact: the mmap'd base-chunk path.
    ASSERT_TRUE(durable->Flush().ok());
    ASSERT_TRUE(durable->Compact().ok());
    expect_same(flushed_answers, snapshot(durable->library()), "compacted");
  }
  {
    auto durable = DurableLibrary::Open(dir).TakeValue();
    expect_same(flushed_answers, snapshot(durable->library()),
                "compacted reopen");
    // The restored index answers similar_to queries like the in-memory one.
    CombinedQuery query;
    query.similar_video = fixture.probe_video;
    query.similar_frame = 100;
    auto expected = fixture.library->Search(query);
    auto actual = durable->library().Search(query);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ExpectSameHits(*expected, *actual, "durable search");
  }
}

// ---------------------------------------------------------------------------
// Extraction over synthesized broadcasts + near-duplicate ranking.

TEST(SignatureExtractionTest, NearDuplicateClipsRankTheirSourceFirst) {
  media::TennisSynthConfig config;
  config.seed = 97;
  config.num_points = 6;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();

  vision::FrameFeatureCache cache(*broadcast.video);
  std::vector<FrameInterval> shots;
  for (const auto& shot : broadcast.truth.shots) shots.push_back(shot.range);
  vision::SignatureExtractionStats stats;
  auto sources =
      vision::ExtractShotSignatures(cache, /*video_id=*/1, shots, &stats)
          .TakeValue();
  ASSERT_EQ(sources.size(), shots.size());
  EXPECT_EQ(stats.shots, static_cast<int64_t>(shots.size()));
  EXPECT_GT(stats.cache_misses, 0);

  // A second pass rides entirely on the shared cache.
  vision::SignatureExtractionStats again;
  auto repeat =
      vision::ExtractShotSignatures(cache, /*video_id=*/1, shots, &again)
          .TakeValue();
  EXPECT_EQ(again.cache_misses, 0);
  EXPECT_GT(again.cache_hits, 0);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_TRUE(repeat[i].sig == sources[i].sig) << i;  // deterministic
  }

  SignatureIndexConfig index_config;
  index_config.max_hamming = 96;  // transforms move more bits than noise
  SignatureIndex index(index_config);
  index.AddRecords(sources.data(), sources.size());

  auto clips = media::MakeNearDuplicateClips(*broadcast.video, broadcast.truth,
                                             /*every_nth=*/1,
                                             /*min_frames=*/10, {})
                   .TakeValue();
  ASSERT_GT(clips.size(), 3u);
  // Everything below is deterministic: seeded synthesis, seeded transforms,
  // integer-exact extraction — the counts cannot drift between runs or
  // platforms. The broadcast itself contains perceptual near-duplicates
  // (different points on the same court), so the properties are ranking
  // ones, not strict top-1: the noise grade barely moves the hash, and
  // clips whose transform stayed inside the threshold recall their paired
  // source in the top 3.
  const auto& ops = vision::signature_kernels::Ops();
  size_t eligible = 0, recalled_at3 = 0, noise_total = 0, noise_mild = 0;
  for (const auto& clip : clips) {
    vision::FrameFeatureCache clip_cache(*clip.video);
    const std::vector<FrameInterval> clip_shots = {
        {0, clip.video->num_frames() - 1}};
    auto clip_records =
        vision::ExtractShotSignatures(clip_cache, /*video_id=*/2, clip_shots)
            .TakeValue();
    uint32_t true_hamming = 256;
    for (const auto& src : sources) {
      if (src.begin == clip.source_range.begin) {
        true_hamming = ops.Hamming256(clip_records[0].sig.hash, src.sig.hash);
      }
    }
    if (clip.transform == media::NearDuplicateTransform::kNoise) {
      ++noise_total;
      if (true_hamming <= SignatureIndexConfig{}.max_hamming) ++noise_mild;
    }
    if (true_hamming > index_config.max_hamming) continue;
    ++eligible;
    for (const Neighbor& nb : index.SearchSimilar(clip_records[0].sig, 3)) {
      if (nb.record->begin == clip.source_range.begin) {
        ++recalled_at3;
        break;
      }
    }
  }
  EXPECT_GE(noise_total, 4u);
  EXPECT_EQ(noise_mild, noise_total);  // noise stays inside the default 31
  EXPECT_GE(eligible, 10u);
  EXPECT_GE(recalled_at3 * 4, eligible * 3)
      << recalled_at3 << " of " << eligible
      << " recoverable clips recalled their source in the top 3";
}

// Label: tsan — extraction threads share one FrameFeatureCache.
TEST(SignatureExtractionTest, ConcurrentExtractionIsRaceFreeAndDeterministic) {
  media::TennisSynthConfig config;
  config.seed = 41;
  config.num_points = 4;
  auto broadcast =
      media::TennisBroadcastSynthesizer(config).Synthesize().TakeValue();
  vision::FrameFeatureCache cache(*broadcast.video);
  std::vector<FrameInterval> shots;
  for (const auto& shot : broadcast.truth.shots) shots.push_back(shot.range);

  auto sequential =
      vision::ExtractShotSignatures(cache, /*video_id=*/1, shots).TakeValue();

  std::vector<std::vector<vision::SignatureRecord>> results(4);
  std::vector<std::thread> threads;
  for (auto& slot : results) {
    threads.emplace_back([&cache, &shots, &slot] {
      slot = vision::ExtractShotSignatures(cache, /*video_id=*/1, shots)
                 .TakeValue();
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& result : results) {
    ASSERT_EQ(result.size(), sequential.size());
    for (size_t i = 0; i < result.size(); ++i) {
      EXPECT_TRUE(result[i].sig == sequential[i].sig) << i;
    }
  }
}

}  // namespace
}  // namespace cobra::engine
