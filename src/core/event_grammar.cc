#include "core/event_grammar.h"

#include <cstdlib>

#include "util/strings.h"

namespace cobra::core {

Status Trajectory::AddChannel(const std::string& name,
                              std::vector<double> values) {
  if (static_cast<int64_t>(values.size()) != Length()) {
    return Status::InvalidArgument(
        StringFormat("channel '%s' has %zu values for %lld frames", name.c_str(),
                     values.size(), static_cast<long long>(Length())));
  }
  if (!channels_.emplace(name, std::move(values)).second) {
    return Status::AlreadyExists(
        StringFormat("channel '%s' already present", name.c_str()));
  }
  return Status::OK();
}

const std::vector<double>& Trajectory::Channel(const std::string& name) const {
  static const std::vector<double> kEmpty;
  auto it = channels_.find(name);
  return it == channels_.end() ? kEmpty : it->second;
}

std::vector<std::string> Trajectory::ChannelNames() const {
  std::vector<std::string> out;
  for (const auto& [name, values] : channels_) out.push_back(name);
  return out;
}

Result<EventGrammar> EventGrammar::Parse(const std::string& text) {
  std::vector<EventRule> rules;
  int line_no = 0;
  for (const std::string& raw : SplitString(text, '\n')) {
    ++line_no;
    std::string line{StripWhitespace(raw)};
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = std::string(StripWhitespace(line.substr(0, hash)));
    }
    if (line.empty()) continue;
    if (line.back() != ';') {
      return Status::ParseError(
          StringFormat("line %d: rule must end with ';'", line_no));
    }
    line.pop_back();
    std::vector<std::string> tokens = SplitWhitespace(line);
    // event <name> : <cond> (and <cond>)* for <N> [at_start]
    if (tokens.size() < 7 || tokens[0] != "event" || tokens[2] != ":") {
      return Status::ParseError(StringFormat(
          "line %d: expected 'event <name> : <conds> for <N> [at_start] ;'",
          line_no));
    }
    EventRule rule;
    rule.name = tokens[1];
    size_t i = 3;
    while (i < tokens.size() && tokens[i] != "for") {
      if (!rule.conditions.empty()) {
        if (tokens[i] != "and") {
          return Status::ParseError(
              StringFormat("line %d: expected 'and' between conditions", line_no));
        }
        ++i;
      }
      if (i + 2 >= tokens.size()) {
        return Status::ParseError(
            StringFormat("line %d: truncated condition", line_no));
      }
      EventCondition cond;
      cond.channel = tokens[i];
      if (tokens[i + 1] == "<") {
        cond.less_than = true;
      } else if (tokens[i + 1] == ">") {
        cond.less_than = false;
      } else {
        return Status::ParseError(StringFormat(
            "line %d: expected '<' or '>', got '%s'", line_no,
            tokens[i + 1].c_str()));
      }
      char* end = nullptr;
      cond.threshold = std::strtod(tokens[i + 2].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(StringFormat("line %d: bad threshold '%s'",
                                               line_no, tokens[i + 2].c_str()));
      }
      rule.conditions.push_back(cond);
      i += 3;
    }
    if (i >= tokens.size() || tokens[i] != "for" || i + 1 >= tokens.size()) {
      return Status::ParseError(
          StringFormat("line %d: missing 'for <N>'", line_no));
    }
    rule.min_frames = std::atoll(tokens[i + 1].c_str());
    if (rule.min_frames < 1) {
      return Status::ParseError(
          StringFormat("line %d: 'for' count must be >= 1", line_no));
    }
    i += 2;
    if (i < tokens.size()) {
      if (tokens[i] != "at_start" || i + 1 != tokens.size()) {
        return Status::ParseError(
            StringFormat("line %d: unexpected trailing tokens", line_no));
      }
      rule.at_start = true;
    }
    if (rule.conditions.empty()) {
      return Status::ParseError(
          StringFormat("line %d: rule has no conditions", line_no));
    }
    rules.push_back(std::move(rule));
  }
  return FromRules(std::move(rules));
}

Result<EventGrammar> EventGrammar::FromRules(std::vector<EventRule> rules) {
  for (const EventRule& rule : rules) {
    if (rule.name.empty() || rule.conditions.empty() || rule.min_frames < 1) {
      return Status::InvalidArgument("malformed event rule");
    }
  }
  EventGrammar g;
  g.rules_ = std::move(rules);
  return g;
}

Result<std::vector<grammar::Annotation>> EventGrammar::Infer(
    const Trajectory& trajectory, int64_t object_id) const {
  std::vector<grammar::Annotation> out;
  const int64_t len = trajectory.Length();
  for (const EventRule& rule : rules_) {
    for (const EventCondition& cond : rule.conditions) {
      if (!trajectory.HasChannel(cond.channel)) {
        return Status::InvalidArgument(
            StringFormat("rule '%s' needs channel '%s'", rule.name.c_str(),
                         cond.channel.c_str()));
      }
    }
    int64_t run_start = -1;
    for (int64_t t = 0; t <= len; ++t) {
      bool holds = t < len;
      if (holds) {
        for (const EventCondition& cond : rule.conditions) {
          double v = trajectory.Channel(cond.channel)[static_cast<size_t>(t)];
          if (cond.less_than ? !(v < cond.threshold) : !(v > cond.threshold)) {
            holds = false;
            break;
          }
        }
      }
      if (holds && run_start < 0) run_start = t;
      if (!holds && run_start >= 0) {
        bool anchored_ok = !rule.at_start || run_start == 0;
        if (t - run_start >= rule.min_frames && anchored_ok) {
          grammar::Annotation a(
              rule.name, FrameInterval{trajectory.range().begin + run_start,
                                       trajectory.range().begin + t - 1});
          a.Set("player", object_id);
          out.push_back(std::move(a));
        }
        run_start = -1;
      }
    }
  }
  return out;
}

}  // namespace cobra::core
