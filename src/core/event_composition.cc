#include "core/event_composition.h"

#include <algorithm>

#include "util/strings.h"

namespace cobra::core {

Status EventComposer::AddRule(CompositeEventRule rule) {
  if (rule.name.empty() || rule.a_symbol.empty() || rule.b_symbol.empty() ||
      rule.relations.empty()) {
    return Status::InvalidArgument("malformed composite rule");
  }
  for (const CompositeEventRule& existing : rules_) {
    if (existing.name == rule.name) {
      return Status::AlreadyExists(
          StringFormat("composite rule '%s' already added", rule.name.c_str()));
    }
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

std::vector<grammar::Annotation> EventComposer::Compose(
    const std::vector<grammar::Annotation>& events) const {
  std::vector<grammar::Annotation> out;
  for (const CompositeEventRule& rule : rules_) {
    std::vector<const grammar::Annotation*> as, bs;
    for (const grammar::Annotation& e : events) {
      if (e.symbol == rule.a_symbol) as.push_back(&e);
      if (e.symbol == rule.b_symbol) bs.push_back(&e);
    }
    std::vector<FrameInterval> emitted;
    for (const grammar::Annotation* a : as) {
      for (const grammar::Annotation* b : bs) {
        if (a == b) continue;
        if (rule.distinct_players &&
            a->IntOr("player", -1) == b->IntOr("player", -1)) {
          continue;
        }
        if (a->range.Empty() || b->range.Empty()) continue;
        AllenRelation rel = ClassifyAllen(a->range, b->range);
        if (!rule.relations.count(rel)) continue;
        FrameInterval span =
            rule.emit_intersection
                ? a->range.Intersect(b->range)
                : FrameInterval{std::min(a->range.begin, b->range.begin),
                                std::max(a->range.end, b->range.end)};
        if (span.Empty()) continue;
        // Suppress symmetric duplicates (a,b) / (b,a).
        bool duplicate = false;
        for (const FrameInterval& prev : emitted) {
          if (prev == span) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        emitted.push_back(span);
        grammar::Annotation composite(rule.name, span);
        composite.Set("player", int64_t{-1});
        composite.Set("a_player", a->IntOr("player", -1));
        composite.Set("b_player", b->IntOr("player", -1));
        out.push_back(std::move(composite));
      }
    }
  }
  return out;
}

CompositeEventRule NetDuelRule() {
  CompositeEventRule rule;
  rule.name = "net_duel";
  rule.a_symbol = "net_play";
  rule.b_symbol = "net_play";
  rule.relations = {AllenRelation::kOverlaps, AllenRelation::kOverlappedBy,
                    AllenRelation::kDuring, AllenRelation::kContains,
                    AllenRelation::kStarts, AllenRelation::kStartedBy,
                    AllenRelation::kFinishes, AllenRelation::kFinishedBy,
                    AllenRelation::kEquals};
  rule.distinct_players = true;
  rule.emit_intersection = true;
  return rule;
}

}  // namespace cobra::core
