#include "core/tennis_fde.h"

#include <algorithm>
#include <cmath>

#include "media/ground_truth.h"
#include "util/strings.h"

namespace cobra::core {

const char* TennisGrammarText() {
  return R"(
# Tennis feature grammar (paper Figure 1).
start video ;
segment       : video ;
tennis        : segment ;
closeup       : segment ;
audience      : segment ;
player        : tennis ;
features      : player ;
serve         : features ;
rally         : features ;
net_play      : features ;
baseline_play : features ;
)";
}

const char* TennisEventRulesText() {
  return R"(
# COBRA tennis event rules: spatio-temporal predicates over trajectories.
event serve         : speed < 1.6 for 5 at_start ;
event net_play      : net_distance < 0.17 for 8 ;
event baseline_play : net_distance > 0.30 for 25 ;
)";
}

Result<Trajectory> BuildTrajectory(const detectors::PlayerTrack& track,
                                   const detectors::CourtModel& court,
                                   const FrameInterval& shot) {
  if (shot.Empty()) return Status::InvalidArgument("empty shot");
  if (!court.Valid()) return Status::InvalidArgument("invalid court model");
  const int64_t len = shot.Length();
  const double height = static_cast<double>(court.court_bbox.height);

  std::vector<double> net_distance(static_cast<size_t>(len), -1.0);
  std::vector<double> speed(static_cast<size_t>(len), 0.0);
  std::vector<double> xs(static_cast<size_t>(len), -1.0);
  std::vector<double> ys(static_cast<size_t>(len), -1.0);

  PointD prev;
  bool have_prev = false;
  for (const detectors::TrackPoint& p : track.points) {
    int64_t t = p.frame - shot.begin;
    if (t < 0 || t >= len) continue;
    net_distance[static_cast<size_t>(t)] =
        std::fabs(p.center.y - court.net_y) / height;
    xs[static_cast<size_t>(t)] = p.center.x;
    ys[static_cast<size_t>(t)] = p.center.y;
    speed[static_cast<size_t>(t)] = have_prev ? p.center.DistanceTo(prev) : 0.0;
    prev = p.center;
    have_prev = true;
  }
  // Fill gaps by repeating neighbors (forward, then backward for a leading
  // gap).
  auto fill = [len](std::vector<double>* v, double fallback) {
    double last = -1.0;
    for (int64_t t = 0; t < len; ++t) {
      if ((*v)[static_cast<size_t>(t)] >= 0) {
        last = (*v)[static_cast<size_t>(t)];
      } else if (last >= 0) {
        (*v)[static_cast<size_t>(t)] = last;
      }
    }
    for (int64_t t = len - 1; t >= 0; --t) {
      if ((*v)[static_cast<size_t>(t)] >= 0) {
        last = (*v)[static_cast<size_t>(t)];
      } else {
        (*v)[static_cast<size_t>(t)] = last >= 0 ? last : fallback;
      }
    }
  };
  fill(&net_distance, 1.0);
  fill(&xs, 0.0);
  fill(&ys, 0.0);

  Trajectory trajectory(shot);
  COBRA_RETURN_NOT_OK(trajectory.AddChannel("net_distance", std::move(net_distance)));
  COBRA_RETURN_NOT_OK(trajectory.AddChannel("speed", std::move(speed)));
  COBRA_RETURN_NOT_OK(trajectory.AddChannel("x", std::move(xs)));
  COBRA_RETURN_NOT_OK(trajectory.AddChannel("y", std::move(ys)));
  return trajectory;
}

Result<std::unique_ptr<TennisVideoIndexer>> TennisVideoIndexer::Create(
    TennisIndexerConfig config) {
  std::unique_ptr<TennisVideoIndexer> indexer(new TennisVideoIndexer());
  indexer->config_ = std::move(config);
  const std::string rules_text = indexer->config_.event_rules.empty()
                                     ? TennisEventRulesText()
                                     : indexer->config_.event_rules;
  COBRA_ASSIGN_OR_RETURN(indexer->event_grammar_, EventGrammar::Parse(rules_text));
  COBRA_RETURN_NOT_OK(indexer->BuildEngine());
  return indexer;
}

Status TennisVideoIndexer::BuildEngine() {
  auto grammar_result = grammar::FeatureGrammar::Parse(TennisGrammarText());
  COBRA_RETURN_NOT_OK(grammar_result.status());
  fde_ = std::make_unique<grammar::FeatureDetectorEngine>(
      std::move(grammar_result).TakeValue(), config_.fde);

  // --- segment: shot boundaries + classification (black-box) ---
  COBRA_RETURN_NOT_OK(fde_->RegisterDetector(
      "segment",
      [this](const grammar::DetectionContext& ctx)
          -> Result<std::vector<grammar::Annotation>> {
        detectors::ShotBoundaryDetector boundary(config_.boundary);
        boundary.SetExecution(ctx.cache(), ctx.pool());
        COBRA_ASSIGN_OR_RETURN(detectors::ShotBoundaryResult cuts,
                               boundary.Detect(ctx.video()));
        detectors::ShotClassifier classifier(config_.classifier);
        classifier.SetExecution(ctx.cache(), ctx.pool());
        COBRA_ASSIGN_OR_RETURN(
            std::vector<detectors::ClassifiedShot> classified_shots,
            classifier.ClassifyAll(ctx.video(),
                                   cuts.ToShots(ctx.video().num_frames())));
        std::vector<grammar::Annotation> out;
        for (const detectors::ClassifiedShot& classified : classified_shots) {
          const FrameInterval& shot = classified.range;
          grammar::Annotation a("", shot);
          a.Set("category",
                std::string(media::ShotCategoryToString(classified.category)));
          a.Set("dominant_ratio", classified.features.dominant_ratio);
          a.Set("dominant_hue", classified.features.dominant_hue);
          a.Set("skin_ratio", classified.features.skin_ratio);
          a.Set("entropy", classified.features.entropy);
          a.Set("luma_mean", classified.features.luma_mean);
          a.Set("luma_variance", classified.features.luma_variance);
          out.push_back(std::move(a));
        }
        return out;
      }));

  // --- tennis / closeup / audience: category filters over segment ---
  for (const char* category : {"tennis", "closeup", "audience"}) {
    const std::string want =
        category == std::string("closeup") ? "close-up" : category;
    COBRA_RETURN_NOT_OK(fde_->RegisterDetector(
        category,
        [want](const grammar::DetectionContext& ctx)
            -> Result<std::vector<grammar::Annotation>> {
          std::vector<grammar::Annotation> out;
          for (const grammar::Annotation& shot : ctx.Of("segment")) {
            if (shot.StringOr("category", "") == want) {
              grammar::Annotation a = shot;
              a.symbol.clear();
              out.push_back(std::move(a));
            }
          }
          return out;
        }));
  }

  // --- player: segmentation + tracking per tennis shot (black-box) ---
  COBRA_RETURN_NOT_OK(fde_->RegisterDetector(
      "player",
      [this](const grammar::DetectionContext& ctx)
          -> Result<std::vector<grammar::Annotation>> {
        tracked_shots_.clear();
        detectors::PlayerTracker tracker(config_.tracker);
        tracker.SetExecution(ctx.cache());
        std::vector<grammar::Annotation> out;
        for (const grammar::Annotation& shot : ctx.Of("tennis")) {
          auto tracking = tracker.Track(ctx.video(), shot.range);
          if (!tracking.ok()) {
            // A tennis-classified shot with no recognizable court is a
            // classifier false positive; skip it rather than fail the run.
            continue;
          }
          TrackedShot ts;
          ts.shot = shot.range;
          ts.tracking = std::move(tracking).TakeValue();
          for (const detectors::PlayerTrack& track : ts.tracking.tracks) {
            grammar::Annotation a("", shot.range);
            a.Set("player", static_cast<int64_t>(track.player_id));
            a.Set("observed_fraction", track.ObservedFraction());
            if (!track.points.empty()) {
              a.Set("start_x", track.points.front().center.x);
              a.Set("start_y", track.points.front().center.y);
            }
            out.push_back(std::move(a));
          }
          tracked_shots_.push_back(std::move(ts));
        }
        return out;
      }));

  // --- features: trajectories + aggregate shape features ---
  COBRA_RETURN_NOT_OK(fde_->RegisterDetector(
      "features",
      [this](const grammar::DetectionContext&)
          -> Result<std::vector<grammar::Annotation>> {
        std::vector<grammar::Annotation> out;
        for (TrackedShot& ts : tracked_shots_) {
          ts.trajectories.clear();
          for (const detectors::PlayerTrack& track : ts.tracking.tracks) {
            COBRA_ASSIGN_OR_RETURN(
                Trajectory trajectory,
                BuildTrajectory(track, ts.tracking.court, ts.shot));
            ts.trajectories.push_back(std::move(trajectory));

            // Aggregate shape features over observed points.
            double area = 0, ecc = 0, orientation = 0;
            int64_t n = 0;
            for (const detectors::TrackPoint& p : track.points) {
              if (p.predicted_only) continue;
              area += p.features.area;
              ecc += p.features.eccentricity;
              orientation += p.features.orientation;
              ++n;
            }
            grammar::Annotation a("", ts.shot);
            a.Set("player", static_cast<int64_t>(track.player_id));
            if (n > 0) {
              a.Set("mean_area", area / static_cast<double>(n));
              a.Set("mean_eccentricity", ecc / static_cast<double>(n));
              a.Set("mean_orientation", orientation / static_cast<double>(n));
            }
            out.push_back(std::move(a));
          }
        }
        return out;
      }));

  // --- event symbols: white-box event grammar (or the HMM once enabled) ---
  for (const char* symbol : {"serve", "net_play", "baseline_play", "rally"}) {
    std::string sym = symbol;
    COBRA_RETURN_NOT_OK(fde_->RegisterDetector(
        sym, [this, sym](const grammar::DetectionContext& ctx) {
          return RunEventSymbol(sym, ctx);
        }));
  }
  return Status::OK();
}

Result<std::vector<grammar::Annotation>> TennisVideoIndexer::RunEventSymbol(
    const std::string& symbol, const grammar::DetectionContext& ctx) {
  (void)ctx;
  std::vector<grammar::Annotation> out;

  for (const TrackedShot& ts : tracked_shots_) {
    // --- rally: black-box rule (paper: "white- and blackbox detectors").
    if (symbol == media::kEventRally) {
      // Rally = post-serve play while the players keep moving.
      int64_t serve_end_local = 0;
      double mean_speed = 0.0;
      int64_t n = 0;
      for (size_t i = 0; i < ts.trajectories.size(); ++i) {
        const std::vector<double>& speed = ts.trajectories[i].Channel("speed");
        int64_t still = 0;
        while (still < static_cast<int64_t>(speed.size()) &&
               speed[static_cast<size_t>(still)] < 1.6) {
          ++still;
        }
        serve_end_local = std::max(serve_end_local, still == static_cast<int64_t>(speed.size()) ? 0 : still);
        for (double s : speed) {
          mean_speed += s;
          ++n;
        }
      }
      if (n > 0) mean_speed /= static_cast<double>(n);
      if (mean_speed >= config_.rally_min_mean_speed &&
          serve_end_local < ts.shot.Length()) {
        grammar::Annotation a("", FrameInterval{ts.shot.begin + serve_end_local,
                                                ts.shot.end});
        a.Set("player", int64_t{-1});
        out.push_back(std::move(a));
      }
      continue;
    }

    if (hmm_) {
      // Stochastic path: decode every player track with the HMM.
      for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
        const detectors::PlayerTrack& track = ts.tracking.tracks[i];
        COBRA_ASSIGN_OR_RETURN(
            std::vector<detectors::DetectedEvent> events,
            hmm_->Recognize(track, ts.tracking.court, ts.shot));
        for (const detectors::DetectedEvent& e : events) {
          if (e.name != symbol) continue;
          grammar::Annotation a("", e.range);
          a.Set("player", static_cast<int64_t>(e.player_id));
          out.push_back(std::move(a));
        }
      }
      continue;
    }

    // White-box path: the event grammar over trajectories.
    std::vector<grammar::Annotation> per_player;
    for (size_t i = 0; i < ts.tracking.tracks.size(); ++i) {
      COBRA_ASSIGN_OR_RETURN(
          std::vector<grammar::Annotation> inferred,
          event_grammar_.Infer(ts.trajectories[i],
                               ts.tracking.tracks[i].player_id));
      for (grammar::Annotation& a : inferred) {
        if (a.symbol == symbol) per_player.push_back(std::move(a));
      }
    }
    if (symbol == media::kEventServe) {
      // A serve is court-level: both players hold still; merge the
      // per-player serve runs into one annotation.
      FrameInterval merged;
      bool first = true;
      for (const grammar::Annotation& a : per_player) {
        merged = first ? a.range : merged.Intersect(a.range);
        first = false;
      }
      if (!first && !merged.Empty()) {
        grammar::Annotation a("", merged);
        a.Set("player", int64_t{-1});
        out.push_back(std::move(a));
      }
    } else {
      for (grammar::Annotation& a : per_player) {
        a.symbol.clear();
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

Status TennisVideoIndexer::UseHmmRecognizer(
    detectors::HmmEventRecognizer recognizer) {
  if (!recognizer.trained()) {
    return Status::FailedPrecondition("HMM recognizer is not trained");
  }
  hmm_ = std::move(recognizer);
  // Mark the event symbols dirty so an incremental FDE run re-derives only
  // the event layer.
  for (const char* symbol : {"serve", "net_play", "baseline_play"}) {
    std::string sym = symbol;
    COBRA_RETURN_NOT_OK(fde_->ReplaceDetector(
        sym, [this, sym](const grammar::DetectionContext& ctx) {
          return RunEventSymbol(sym, ctx);
        }));
  }
  return Status::OK();
}

Result<VideoDescription> TennisVideoIndexer::Index(
    const media::VideoSource& video, int64_t video_id,
    const std::string& title) {
  COBRA_ASSIGN_OR_RETURN(grammar::FdeRunReport report, fde_->Run(video));
  last_report_ = std::move(report);

  VideoDescription desc(video_id, title, video.fps(), video.num_frames());
  grammar::Annotation raw("video", FrameInterval{0, video.num_frames() - 1});
  raw.Set("width", static_cast<int64_t>(video.width()));
  raw.Set("height", static_cast<int64_t>(video.height()));
  desc.Add(CobraLayer::kRawData, std::move(raw));

  for (const grammar::Annotation& a : fde_->AnnotationsOf("segment")) {
    desc.Add(CobraLayer::kFeature, a);
  }
  for (const char* sym : {"player", "features"}) {
    for (const grammar::Annotation& a : fde_->AnnotationsOf(sym)) {
      desc.Add(CobraLayer::kObject, a);
    }
  }
  for (const char* sym : {"serve", "rally", "net_play", "baseline_play"}) {
    for (const grammar::Annotation& a : fde_->AnnotationsOf(sym)) {
      desc.Add(CobraLayer::kEvent, a);
    }
  }

  // Composite events derived from Allen relations between detected events.
  if (!config_.composite_rules.empty()) {
    EventComposer composer;
    for (const CompositeEventRule& rule : config_.composite_rules) {
      COBRA_RETURN_NOT_OK(composer.AddRule(rule));
    }
    for (grammar::Annotation& composite :
         composer.Compose(desc.Layer(CobraLayer::kEvent))) {
      desc.Add(CobraLayer::kEvent, std::move(composite));
    }
  }
  return desc;
}

}  // namespace cobra::core
