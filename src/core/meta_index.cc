#include "core/meta_index.h"

namespace cobra::core {

using storage::CompareOp;
using storage::DataType;
using storage::Predicate;
using storage::Table;
using storage::Value;

Result<MetaIndex> MetaIndex::Create() {
  COBRA_ASSIGN_OR_RETURN(
      Table shots, Table::Create({{"video_id", DataType::kInt64},
                                  {"begin", DataType::kInt64},
                                  {"end", DataType::kInt64},
                                  {"category", DataType::kString},
                                  {"dominant_ratio", DataType::kDouble},
                                  {"skin_ratio", DataType::kDouble},
                                  {"entropy", DataType::kDouble}}));
  COBRA_ASSIGN_OR_RETURN(
      Table objects, Table::Create({{"video_id", DataType::kInt64},
                                    {"begin", DataType::kInt64},
                                    {"end", DataType::kInt64},
                                    {"player", DataType::kInt64},
                                    {"observed_fraction", DataType::kDouble},
                                    {"mean_area", DataType::kDouble},
                                    {"mean_eccentricity", DataType::kDouble}}));
  COBRA_ASSIGN_OR_RETURN(Table events,
                         Table::Create({{"video_id", DataType::kInt64},
                                        {"name", DataType::kString},
                                        {"player", DataType::kInt64},
                                        {"begin", DataType::kInt64},
                                        {"end", DataType::kInt64}}));
  return MetaIndex(std::move(shots), std::move(objects), std::move(events));
}

Result<MetaIndex> MetaIndex::FromTables(Table shots, Table objects,
                                        Table events, int64_t num_videos) {
  COBRA_ASSIGN_OR_RETURN(MetaIndex empty, Create());
  auto same_schema = [](const Table& got, const Table& want) {
    if (got.schema().size() != want.schema().size()) return false;
    for (size_t i = 0; i < got.schema().size(); ++i) {
      if (got.schema()[i].name != want.schema()[i].name ||
          got.schema()[i].type != want.schema()[i].type) {
        return false;
      }
    }
    return true;
  };
  if (!same_schema(shots, empty.shots_) ||
      !same_schema(objects, empty.objects_) ||
      !same_schema(events, empty.events_)) {
    return Status::InvalidArgument("restored meta-index table schema mismatch");
  }
  if (num_videos < 0) {
    return Status::InvalidArgument("negative video count");
  }
  MetaIndex index(std::move(shots), std::move(objects), std::move(events));
  index.num_videos_ = num_videos;
  return index;
}

Status MetaIndex::AddVideo(const VideoDescription& desc) {
  const int64_t vid = desc.video_id();
  for (const grammar::Annotation& a : desc.Layer(CobraLayer::kFeature)) {
    if (a.symbol != "segment") continue;
    COBRA_RETURN_NOT_OK(shots_.AppendRow(
        {vid, a.range.begin, a.range.end, a.StringOr("category", "other"),
         a.DoubleOr("dominant_ratio", 0.0), a.DoubleOr("skin_ratio", 0.0),
         a.DoubleOr("entropy", 0.0)}));
  }
  for (const grammar::Annotation& a : desc.Layer(CobraLayer::kObject)) {
    if (a.symbol != "features") continue;
    COBRA_RETURN_NOT_OK(objects_.AppendRow(
        {vid, a.range.begin, a.range.end, a.IntOr("player", -1),
         a.DoubleOr("observed_fraction", 0.0), a.DoubleOr("mean_area", 0.0),
         a.DoubleOr("mean_eccentricity", 0.0)}));
  }
  for (const grammar::Annotation& a : desc.Layer(CobraLayer::kEvent)) {
    COBRA_RETURN_NOT_OK(events_.AppendRow(
        {vid, a.symbol, a.IntOr("player", -1), a.range.begin, a.range.end}));
  }
  ++num_videos_;
  return Status::OK();
}

Result<std::vector<Scene>> MetaIndex::FindScenes(const std::string& event_name,
                                                 int64_t video_id,
                                                 int64_t player) const {
  std::vector<Predicate> preds = {
      Predicate{"name", CompareOp::kEq, event_name}};
  if (video_id >= 0) {
    preds.push_back(Predicate{"video_id", CompareOp::kEq, video_id});
  }
  if (player >= 0) {
    preds.push_back(Predicate{"player", CompareOp::kEq, player});
  }
  COBRA_ASSIGN_OR_RETURN(std::vector<int64_t> rows,
                         storage::SelectAll(events_, preds));
  // Hoisted typed columns: materializing a scene is four array reads plus
  // one string copy, not five checked GetValue round trips.
  const auto& vids = events_.IntColumn(0);
  const auto& names = events_.StringColumn(1);
  const auto& players = events_.IntColumn(2);
  const auto& begins = events_.IntColumn(3);
  const auto& ends = events_.IntColumn(4);
  std::vector<Scene> out;
  out.reserve(rows.size());
  for (int64_t r : rows) {
    const size_t i = static_cast<size_t>(r);
    Scene scene;
    scene.video_id = vids[i];
    scene.event = names[i];
    scene.player = players[i];
    scene.range.begin = begins[i];
    scene.range.end = ends[i];
    out.push_back(std::move(scene));
  }
  return out;
}

Result<std::vector<FrameInterval>> MetaIndex::FindShots(
    const std::string& category, int64_t video_id) const {
  COBRA_ASSIGN_OR_RETURN(
      std::vector<int64_t> rows,
      storage::SelectAll(
          shots_, {Predicate{"category", CompareOp::kEq, category},
                   Predicate{"video_id", CompareOp::kEq, video_id}}));
  const auto& begins = shots_.IntColumn(1);
  const auto& ends = shots_.IntColumn(2);
  std::vector<FrameInterval> out;
  out.reserve(rows.size());
  for (int64_t r : rows) {
    out.push_back(FrameInterval{begins[static_cast<size_t>(r)],
                                ends[static_cast<size_t>(r)]});
  }
  return out;
}

}  // namespace cobra::core
