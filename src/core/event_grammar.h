#pragma once

/// \file event_grammar.h
/// COBRA object/event grammars (paper §3): formal rule descriptions of
/// high-level concepts, evaluated by spatio-temporal reasoning over object
/// trajectories. These are the "white-box" event detectors; the rules are
/// data, not code, so a domain expert can retarget the system without
/// recompiling (the flexibility claim of the COBRA model).
///
/// Rule syntax (one per line, `#` comments):
///
///     event serve         : speed < 1.6 for 5 at_start ;
///     event net_play      : net_distance < 0.17 for 8 ;
///     event baseline_play : net_distance > 0.60 for 25 ;
///
/// Each condition tests one trajectory channel against a threshold; `and`
/// conjoins conditions; `for N` is the minimum run length in frames;
/// `at_start` anchors the rule to the beginning of the trajectory.

#include <map>
#include <string>
#include <vector>

#include "grammar/annotation.h"
#include "util/status.h"

namespace cobra::core {

/// Per-object time series of named scalar channels over a frame interval.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(FrameInterval range) : range_(range) {}

  const FrameInterval& range() const { return range_; }
  int64_t Length() const { return range_.Length(); }

  /// Declares a channel; values.size() must equal Length().
  Status AddChannel(const std::string& name, std::vector<double> values);

  bool HasChannel(const std::string& name) const {
    return channels_.count(name) > 0;
  }
  /// Channel values (local timeline). Requires HasChannel.
  const std::vector<double>& Channel(const std::string& name) const;

  std::vector<std::string> ChannelNames() const;

 private:
  FrameInterval range_;
  std::map<std::string, std::vector<double>> channels_;
};

/// One `attr < threshold` / `attr > threshold` test.
struct EventCondition {
  std::string channel;
  bool less_than = true;
  double threshold = 0.0;
};

/// One event rule.
struct EventRule {
  std::string name;
  std::vector<EventCondition> conditions;  ///< conjunction, per frame
  int64_t min_frames = 1;
  bool at_start = false;  ///< only a run beginning at the first frame counts
};

/// A parsed set of event rules plus the inference engine over trajectories.
class EventGrammar {
 public:
  /// Parses the rule DSL.
  static Result<EventGrammar> Parse(const std::string& text);

  static Result<EventGrammar> FromRules(std::vector<EventRule> rules);

  const std::vector<EventRule>& rules() const { return rules_; }

  /// Applies every rule to `trajectory`: each maximal run of frames where a
  /// rule's conditions all hold, of at least min_frames, yields one event
  /// annotation (symbol = rule name, attrs: "player" = object_id).
  ///
  /// Fails if a rule references a channel the trajectory lacks.
  Result<std::vector<grammar::Annotation>> Infer(const Trajectory& trajectory,
                                                 int64_t object_id) const;

 private:
  std::vector<EventRule> rules_;
};

}  // namespace cobra::core
