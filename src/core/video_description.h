#pragma once

/// \file video_description.h
/// The COBRA video data model (paper §3, ref [2]): a four-layer description
/// of one video — raw data, feature, object, event — aligned with MPEG-7's
/// layering. Objects carry prominent spatial extent, events prominent
/// temporal extent.

#include <cstdint>
#include <string>
#include <vector>

#include "grammar/annotation.h"
#include "util/geometry.h"

namespace cobra::core {

/// The four COBRA content layers.
enum class CobraLayer : int {
  kRawData = 0,  ///< the pixel stream itself
  kFeature = 1,  ///< visual features: shots, histograms, shapes
  kObject = 2,   ///< spatial entities: players, the court
  kEvent = 3,    ///< temporal entities: serve, rally, net play
};

const char* CobraLayerToString(CobraLayer layer);

/// The complete layered description of one indexed video. Entities are
/// grammar annotations (symbol + temporal extent + attributes); the layer
/// is the COBRA classification of the entity's symbol.
class VideoDescription {
 public:
  VideoDescription() = default;
  VideoDescription(int64_t video_id, std::string title, double fps,
                   int64_t num_frames)
      : video_id_(video_id),
        title_(std::move(title)),
        fps_(fps),
        num_frames_(num_frames) {}

  int64_t video_id() const { return video_id_; }
  const std::string& title() const { return title_; }
  double fps() const { return fps_; }
  int64_t num_frames() const { return num_frames_; }

  void Add(CobraLayer layer, grammar::Annotation annotation);

  const std::vector<grammar::Annotation>& Layer(CobraLayer layer) const;

  /// Entities of a layer whose symbol matches `symbol`.
  std::vector<grammar::Annotation> Named(CobraLayer layer,
                                         const std::string& symbol) const;

  /// Entities of a layer overlapping `range`.
  std::vector<grammar::Annotation> In(CobraLayer layer,
                                      const FrameInterval& range) const;

  /// Events whose interval stands in `relation` to `reference` — the
  /// spatio-temporal reasoning hook of the COBRA event grammar.
  std::vector<grammar::Annotation> EventsRelated(
      AllenRelation relation, const FrameInterval& reference) const;

  /// Seconds corresponding to a frame index on this video's timeline.
  double FrameToSeconds(int64_t frame) const {
    return fps_ > 0 ? static_cast<double>(frame) / fps_ : 0.0;
  }

  int64_t TotalEntities() const;

 private:
  int64_t video_id_ = 0;
  std::string title_;
  double fps_ = 25.0;
  int64_t num_frames_ = 0;
  std::vector<grammar::Annotation> layers_[4];
};

}  // namespace cobra::core
