#pragma once

/// \file object_grammar.h
/// COBRA object grammars: rules that classify segmented regions into object
/// classes from their aggregate (spatial) features — the object-layer
/// counterpart of the event grammar. "The object and event layers consist
/// of entities characterized by prominent spatial and temporal dimensions
/// respectively" (paper §3).
///
/// Rule syntax (one per line, `#` comments):
///
///     object player : area > 25 and eccentricity > 0.3 ;
///     object ball   : area < 6 and eccentricity < 0.4 ;
///
/// A region is classified as the FIRST rule whose conditions all hold
/// (declaration order is priority), or left unclassified.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace cobra::core {

/// Scalar feature record of one candidate region.
using FeatureRecord = std::map<std::string, double>;

struct ObjectCondition {
  std::string feature;
  bool less_than = true;
  double threshold = 0.0;
};

struct ObjectRule {
  std::string name;
  std::vector<ObjectCondition> conditions;  ///< conjunction
};

class ObjectGrammar {
 public:
  /// Parses the rule DSL (same condition syntax as the event grammar, but
  /// `object` heads and no temporal clause).
  static Result<ObjectGrammar> Parse(const std::string& text);

  static Result<ObjectGrammar> FromRules(std::vector<ObjectRule> rules);

  const std::vector<ObjectRule>& rules() const { return rules_; }

  /// First matching rule's name, or nullopt. Fails if a rule references a
  /// feature the record lacks.
  Result<std::optional<std::string>> Classify(const FeatureRecord& record) const;

 private:
  std::vector<ObjectRule> rules_;
};

}  // namespace cobra::core
