#pragma once

/// \file meta_index.h
/// The meta-index: video meta-data projected into column-store tables so
/// the digital library engine can query it relationally ("managing the
/// meta-index now boils down to exploiting the dependencies in the feature
/// grammar", paper §3).

#include <cstdint>
#include <string>
#include <vector>

#include "core/video_description.h"
#include "storage/ops.h"
#include "storage/table.h"

namespace cobra::core {

/// A video scene answering a content-based query.
struct Scene {
  int64_t video_id = 0;
  FrameInterval range;
  int64_t player = -1;       ///< acting player, -1 = court-level
  std::string event;         ///< event symbol ("net_play", ...)
};

/// Columnar projection of VideoDescriptions.
///
/// Tables:
///   shots  (video_id, begin, end, category, dominant_ratio, skin_ratio,
///           entropy)
///   objects(video_id, begin, end, player, observed_fraction, mean_area,
///           mean_eccentricity)
///   events (video_id, name, player, begin, end)
class MetaIndex {
 public:
  /// Creates the empty tables.
  static Result<MetaIndex> Create();

  /// Reassembles an index from persisted tables. Schemas must match the
  /// layouts documented above (validated against Create()'s); the video
  /// count is persisted separately since empty videos add no rows.
  static Result<MetaIndex> FromTables(storage::Table shots,
                                      storage::Table objects,
                                      storage::Table events,
                                      int64_t num_videos);

  /// Loads every layer of `desc` into the tables.
  Status AddVideo(const VideoDescription& desc);

  const storage::Table& shots() const { return shots_; }
  const storage::Table& objects() const { return objects_; }
  const storage::Table& events() const { return events_; }

  int64_t num_videos() const { return num_videos_; }

  /// Scenes showing `event_name`, optionally restricted to one video
  /// (video_id >= 0) and/or one player (player >= 0).
  Result<std::vector<Scene>> FindScenes(const std::string& event_name,
                                        int64_t video_id = -1,
                                        int64_t player = -1) const;

  /// Shot intervals of a category ("tennis", "close-up", ...) in a video.
  Result<std::vector<FrameInterval>> FindShots(const std::string& category,
                                               int64_t video_id) const;

 private:
  MetaIndex(storage::Table shots, storage::Table objects, storage::Table events)
      : shots_(std::move(shots)),
        objects_(std::move(objects)),
        events_(std::move(events)) {}

  storage::Table shots_;
  storage::Table objects_;
  storage::Table events_;
  int64_t num_videos_ = 0;
};

}  // namespace cobra::core
