#include "core/video_description.h"

namespace cobra::core {

const char* CobraLayerToString(CobraLayer layer) {
  switch (layer) {
    case CobraLayer::kRawData:
      return "raw-data";
    case CobraLayer::kFeature:
      return "feature";
    case CobraLayer::kObject:
      return "object";
    case CobraLayer::kEvent:
      return "event";
  }
  return "unknown";
}

void VideoDescription::Add(CobraLayer layer, grammar::Annotation annotation) {
  layers_[static_cast<int>(layer)].push_back(std::move(annotation));
}

const std::vector<grammar::Annotation>& VideoDescription::Layer(
    CobraLayer layer) const {
  return layers_[static_cast<int>(layer)];
}

std::vector<grammar::Annotation> VideoDescription::Named(
    CobraLayer layer, const std::string& symbol) const {
  std::vector<grammar::Annotation> out;
  for (const grammar::Annotation& a : Layer(layer)) {
    if (a.symbol == symbol) out.push_back(a);
  }
  return out;
}

std::vector<grammar::Annotation> VideoDescription::In(
    CobraLayer layer, const FrameInterval& range) const {
  std::vector<grammar::Annotation> out;
  for (const grammar::Annotation& a : Layer(layer)) {
    if (a.range.Overlaps(range)) out.push_back(a);
  }
  return out;
}

std::vector<grammar::Annotation> VideoDescription::EventsRelated(
    AllenRelation relation, const FrameInterval& reference) const {
  std::vector<grammar::Annotation> out;
  for (const grammar::Annotation& a : Layer(CobraLayer::kEvent)) {
    if (!a.range.Empty() && !reference.Empty() &&
        ClassifyAllen(a.range, reference) == relation) {
      out.push_back(a);
    }
  }
  return out;
}

int64_t VideoDescription::TotalEntities() const {
  int64_t n = 0;
  for (const auto& layer : layers_) n += static_cast<int64_t>(layer.size());
  return n;
}

}  // namespace cobra::core
