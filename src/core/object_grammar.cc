#include "core/object_grammar.h"

#include <cstdlib>

#include "util/strings.h"

namespace cobra::core {

Result<ObjectGrammar> ObjectGrammar::Parse(const std::string& text) {
  std::vector<ObjectRule> rules;
  int line_no = 0;
  for (const std::string& raw : SplitString(text, '\n')) {
    ++line_no;
    std::string line{StripWhitespace(raw)};
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = std::string(StripWhitespace(line.substr(0, hash)));
    }
    if (line.empty()) continue;
    if (line.back() != ';') {
      return Status::ParseError(
          StringFormat("line %d: rule must end with ';'", line_no));
    }
    line.pop_back();
    std::vector<std::string> tokens = SplitWhitespace(line);
    // object <name> : <cond> (and <cond>)*
    if (tokens.size() < 6 || tokens[0] != "object" || tokens[2] != ":") {
      return Status::ParseError(StringFormat(
          "line %d: expected 'object <name> : <conds> ;'", line_no));
    }
    ObjectRule rule;
    rule.name = tokens[1];
    size_t i = 3;
    while (i < tokens.size()) {
      if (!rule.conditions.empty()) {
        if (tokens[i] != "and") {
          return Status::ParseError(
              StringFormat("line %d: expected 'and'", line_no));
        }
        ++i;
      }
      if (i + 3 > tokens.size()) {
        return Status::ParseError(
            StringFormat("line %d: truncated condition", line_no));
      }
      ObjectCondition cond;
      cond.feature = tokens[i];
      if (tokens[i + 1] == "<") {
        cond.less_than = true;
      } else if (tokens[i + 1] == ">") {
        cond.less_than = false;
      } else {
        return Status::ParseError(StringFormat("line %d: expected '<' or '>'",
                                               line_no));
      }
      char* end = nullptr;
      cond.threshold = std::strtod(tokens[i + 2].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::ParseError(StringFormat("line %d: bad threshold '%s'",
                                               line_no, tokens[i + 2].c_str()));
      }
      rule.conditions.push_back(cond);
      i += 3;
    }
    rules.push_back(std::move(rule));
  }
  return FromRules(std::move(rules));
}

Result<ObjectGrammar> ObjectGrammar::FromRules(std::vector<ObjectRule> rules) {
  for (const ObjectRule& rule : rules) {
    if (rule.name.empty() || rule.conditions.empty()) {
      return Status::InvalidArgument("malformed object rule");
    }
  }
  ObjectGrammar g;
  g.rules_ = std::move(rules);
  return g;
}

Result<std::optional<std::string>> ObjectGrammar::Classify(
    const FeatureRecord& record) const {
  for (const ObjectRule& rule : rules_) {
    bool all = true;
    for (const ObjectCondition& cond : rule.conditions) {
      auto it = record.find(cond.feature);
      if (it == record.end()) {
        return Status::InvalidArgument(
            StringFormat("rule '%s' needs feature '%s'", rule.name.c_str(),
                         cond.feature.c_str()));
      }
      double v = it->second;
      if (cond.less_than ? !(v < cond.threshold) : !(v > cond.threshold)) {
        all = false;
        break;
      }
    }
    if (all) return std::optional<std::string>(rule.name);
  }
  return std::optional<std::string>();
}

}  // namespace cobra::core
