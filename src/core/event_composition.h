#pragma once

/// \file event_composition.h
/// Composite events: new event-layer entities derived from temporal
/// (Allen) relations between already-detected events — the
/// "spatio-temporal reasoning" half of the COBRA event grammar that relates
/// events to each other rather than to raw trajectories. Example: a
/// "net_duel" is a net_play of one player that OVERLAPS a net_play of the
/// other.

#include <set>
#include <string>
#include <vector>

#include "grammar/annotation.h"
#include "util/geometry.h"
#include "util/status.h"

namespace cobra::core {

/// `name := a <relations> b`, emitting one event per (a, b) pair whose
/// Allen relation is in the set.
struct CompositeEventRule {
  std::string name;
  std::string a_symbol;
  std::string b_symbol;
  std::set<AllenRelation> relations;
  /// Require distinct actors (attrs "player" differ) — e.g. a duel needs
  /// both players, not one player's two net trips.
  bool distinct_players = false;
  /// Emitted interval: intersection (true) or union span (false).
  bool emit_intersection = true;
};

/// Applies composite rules over an event list.
class EventComposer {
 public:
  Status AddRule(CompositeEventRule rule);

  const std::vector<CompositeEventRule>& rules() const { return rules_; }

  /// Derives composite events. Each unordered (a, b) pair is considered
  /// once (a from rule.a_symbol, b from rule.b_symbol); duplicates with
  /// identical spans are suppressed.
  std::vector<grammar::Annotation> Compose(
      const std::vector<grammar::Annotation>& events) const;

 private:
  std::vector<CompositeEventRule> rules_;
};

/// The default tennis composite: net_duel = overlapping net plays of the
/// two players.
CompositeEventRule NetDuelRule();

}  // namespace cobra::core
