#pragma once

/// \file tennis_fde.h
/// The tennis instantiation of the COBRA framework (paper §3, Figure 1):
/// a feature grammar whose detectors are the concrete algorithms of
/// src/detectors, assembled into a Feature Detector Engine that indexes a
/// broadcast into a four-layer VideoDescription.
///
/// Detector dependency graph (paper Figure 1):
///
///     video -> segment -> {tennis, closeup, audience}
///     tennis -> player -> features -> {serve, rally, net_play, baseline_play}

#include <memory>
#include <optional>
#include <string>

#include "core/event_composition.h"
#include "core/event_grammar.h"
#include "core/video_description.h"
#include "detectors/hmm_events.h"
#include "detectors/player_tracker.h"
#include "detectors/shot_boundary.h"
#include "detectors/shot_classifier.h"
#include "grammar/fde.h"
#include "util/status.h"

namespace cobra::core {

/// The Figure-1 grammar in the feature-grammar DSL.
const char* TennisGrammarText();

/// The default COBRA event rules for tennis, in the event-grammar DSL.
/// net_distance is |y - net| normalized by court height; speed is px/frame.
const char* TennisEventRulesText();

struct TennisIndexerConfig {
  detectors::ShotBoundaryConfig boundary;
  detectors::ShotClassifierConfig classifier;
  detectors::PlayerTrackerConfig tracker;
  /// Execution knobs: FDE wave parallelism (num_threads) and the shared
  /// frame-feature cache budget (cache_bytes). The defaults reproduce the
  /// sequential engine with caching on; output is bit-identical for any
  /// num_threads.
  grammar::FdeConfig fde;
  /// Event grammar DSL; replace to retarget the event layer.
  std::string event_rules;  // empty -> TennisEventRulesText()
  /// Rally detection: minimum mean player speed after the serve.
  double rally_min_mean_speed = 0.4;
  /// Composite (Allen-relation) event rules applied over the detected
  /// events; their products join the event layer and the meta-index.
  std::vector<CompositeEventRule> composite_rules;
  /// Durable segment directory for the library this indexing run feeds
  /// (engine::DurableLibrary, DESIGN.md §4h). Empty keeps the library
  /// purely in memory; the examples default it from the COBRA_SEGMENT_DIR
  /// environment variable. The indexer itself never touches it — it is
  /// plumbed here so one config names a whole indexing run.
  std::string segment_dir;
};

/// Indexes tennis broadcasts through the FDE.
///
/// Not thread-safe: one indexer indexes one video at a time (the FDE
/// blackboard and the trajectory side-store are per-run state).
class TennisVideoIndexer {
 public:
  /// Builds the grammar, the event rules and the detector bindings.
  static Result<std::unique_ptr<TennisVideoIndexer>> Create(
      TennisIndexerConfig config = {});

  /// Runs the full FDE over `video` and assembles the layered description.
  Result<VideoDescription> Index(const media::VideoSource& video,
                                 int64_t video_id, const std::string& title);

  /// Switches the event layer to the trained stochastic recognizer
  /// (ref [2]); subsequent Index calls decode events with the HMM instead
  /// of the event grammar rules. Fails if the recognizer is untrained.
  Status UseHmmRecognizer(detectors::HmmEventRecognizer recognizer);

  /// FDE access (dependency graph, run reports, incremental re-runs).
  grammar::FeatureDetectorEngine& fde() { return *fde_; }
  const grammar::FeatureDetectorEngine& fde() const { return *fde_; }

  /// The report of the most recent Index run.
  const std::optional<grammar::FdeRunReport>& last_report() const {
    return last_report_;
  }

  /// Trajectories of the most recent Index run, keyed by
  /// (shot begin frame, player id) — exposed for the HMM training loop and
  /// the benches.
  struct TrackedShot {
    FrameInterval shot;
    detectors::TrackingResult tracking;
    std::vector<Trajectory> trajectories;  ///< parallel to tracking.tracks
  };
  const std::vector<TrackedShot>& tracked_shots() const { return tracked_shots_; }

 private:
  TennisVideoIndexer() = default;

  Status BuildEngine();
  Result<std::vector<grammar::Annotation>> RunEventSymbol(
      const std::string& symbol, const grammar::DetectionContext& ctx);

  TennisIndexerConfig config_;
  EventGrammar event_grammar_;
  std::unique_ptr<grammar::FeatureDetectorEngine> fde_;
  std::optional<detectors::HmmEventRecognizer> hmm_;
  std::optional<grammar::FdeRunReport> last_report_;
  std::vector<TrackedShot> tracked_shots_;
};

/// Builds the per-player trajectory channels ("net_distance", "speed", "x",
/// "y") from a track and the estimated court model, over the shot's local
/// timeline. Gaps are filled by repeating the nearest observation.
Result<Trajectory> BuildTrajectory(const detectors::PlayerTrack& track,
                                   const detectors::CourtModel& court,
                                   const FrameInterval& shot);

}  // namespace cobra::core
