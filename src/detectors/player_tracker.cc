#include "detectors/player_tracker.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/strings.h"
#include "vision/mask.h"

namespace cobra::detectors {

namespace {

/// Court lines are near-white: every channel above 185, i.e. the color box
/// [186, 255]^3 (the old IsLineWhite predicate in batch-kernel form).
constexpr vision::kernels::ColorBox kLineWhiteBox{{186, 186, 186},
                                                  {255, 255, 255}};

/// The background color boxes a foreground (player) pixel must avoid:
/// court surface, out-of-court surround, and court lines. Hoisted once per
/// tracked shot so segmentation is pure byte compares.
struct BackgroundBoxes {
  vision::kernels::ColorBox boxes[3];

  BackgroundBoxes(const CourtModel& court, double k)
      : boxes{court.court_color.MatchBox(k), court.surround_color.MatchBox(k),
              kLineWhiteBox} {}
};

/// Segments foreground regions within `roi` and returns components sorted
/// by decreasing area. Foreground = neither court surface, nor out-of-court
/// background, nor a court line.
std::vector<vision::ConnectedComponent> SegmentForeground(
    const media::Frame& frame, const RectI& roi, const BackgroundBoxes& bg,
    int64_t min_area) {
  vision::BinaryMask mask =
      vision::BinaryMask::FromOutsideColorBoxes(frame, roi, bg.boxes, 3);
  // Opening removes single-pixel noise and the thin net band.
  return vision::LabelComponents(mask.Open(), min_area);
}

/// Picks the component whose centroid is closest to `target`, or nullopt.
std::optional<vision::ConnectedComponent> ClosestComponent(
    std::vector<vision::ConnectedComponent> components, const PointD& target) {
  if (components.empty()) return std::nullopt;
  auto best = std::min_element(
      components.begin(), components.end(),
      [&](const vision::ConnectedComponent& a, const vision::ConnectedComponent& b) {
        return a.centroid.DistanceTo(target) < b.centroid.DistanceTo(target);
      });
  return std::move(*best);
}

}  // namespace

double PlayerTrack::ObservedFraction() const {
  if (points.empty()) return 0.0;
  int64_t observed = 0;
  for (const TrackPoint& p : points) {
    if (!p.predicted_only) ++observed;
  }
  return static_cast<double>(observed) / static_cast<double>(points.size());
}

bool PlayerTrack::CenterAt(int64_t frame, PointD* out) const {
  for (const TrackPoint& p : points) {
    if (p.frame == frame) {
      *out = p.center;
      return true;
    }
  }
  return false;
}

PlayerTracker::PlayerTracker(PlayerTrackerConfig config) : config_(config) {}

Result<TrackingResult> PlayerTracker::Track(const media::VideoSource& video,
                                            const FrameInterval& shot) const {
  if (shot.Empty() || shot.begin < 0 || shot.end >= video.num_frames()) {
    return Status::InvalidArgument(
        StringFormat("shot %s out of video bounds", shot.ToString().c_str()));
  }

  // Decoded frames come from the shared cache when attached (the
  // classifier usually decoded them already); otherwise decode locally.
  auto frame_at =
      [&](int64_t f) -> Result<std::shared_ptr<const media::Frame>> {
    if (cache_ != nullptr) return cache_->GetFrame(f, 1);
    COBRA_ASSIGN_OR_RETURN(media::Frame frame, video.GetFrame(f));
    return std::make_shared<const media::Frame>(std::move(frame));
  };

  TrackingResult result;
  COBRA_ASSIGN_OR_RETURN(std::shared_ptr<const media::Frame> first_ptr,
                         frame_at(shot.begin));
  const media::Frame& first = *first_ptr;
  COBRA_ASSIGN_OR_RETURN(result.court, EstimateCourtModel(first, config_.court));
  const CourtModel& court = result.court;

  RectI roi =
      RectI{court.court_bbox.x - config_.court_margin,
            court.court_bbox.y - config_.court_margin_top,
            court.court_bbox.width + 2 * config_.court_margin,
            court.court_bbox.height + config_.court_margin_top +
                config_.court_margin}
          .ClipTo(first.width(), first.height());

  const BackgroundBoxes bg(court, config_.foreground_k);

  // Initial segmentation of the first frame: the paper's "quadratic"
  // split — the largest region in the near (lower) half and the largest in
  // the far (upper) half become the two players.
  auto components = SegmentForeground(first, roi, bg, config_.min_player_area);
  struct PlayerState {
    PlayerTrack track;
    PointD velocity;
    RectI last_bbox;
    int lost = 0;
    bool alive = false;
  };
  PlayerState players[2];
  players[0].track.player_id = 0;
  players[1].track.player_id = 1;

  for (int id = 0; id < 2; ++id) {
    const bool near_half = (id == 0);
    for (const auto& c : components) {
      bool in_half = near_half ? c.centroid.y > court.net_y
                               : c.centroid.y <= court.net_y;
      if (!in_half) continue;
      TrackPoint tp;
      tp.frame = shot.begin;
      tp.center = c.centroid;
      tp.bbox = c.bbox;
      tp.features = vision::ComputeShapeFeatures(first, c);
      players[id].track.points.push_back(tp);
      players[id].last_bbox = c.bbox;
      players[id].alive = true;
      break;  // components are sorted by area: first hit is the largest
    }
  }

  // Predictive tracking through the rest of the shot.
  for (int64_t f = shot.begin + 1; f <= shot.end; ++f) {
    COBRA_ASSIGN_OR_RETURN(std::shared_ptr<const media::Frame> frame_ptr,
                           frame_at(f));
    const media::Frame& frame = *frame_ptr;
    for (PlayerState& ps : players) {
      if (!ps.alive) continue;
      const TrackPoint& last = ps.track.points.back();
      PointD predicted = last.center + ps.velocity;

      RectI window{
          static_cast<int>(predicted.x) - ps.last_bbox.width / 2 -
              config_.search_margin,
          static_cast<int>(predicted.y) - ps.last_bbox.height / 2 -
              config_.search_margin,
          ps.last_bbox.width + 2 * config_.search_margin,
          ps.last_bbox.height + 2 * config_.search_margin};
      window = window.Intersect(roi);

      auto candidates =
          SegmentForeground(frame, window, bg, config_.min_player_area);
      std::optional<vision::ConnectedComponent> hit =
          ClosestComponent(std::move(candidates), predicted);

      if (!hit && ++ps.lost > config_.max_lost_frames) {
        // Re-acquire anywhere in this player's half of the ROI.
        RectI half = roi;
        if (ps.track.player_id == 0) {
          half.height = roi.Bottom() - court.net_y;
          half.y = court.net_y;
        } else {
          half.height = court.net_y - roi.y;
        }
        hit = ClosestComponent(
            SegmentForeground(frame, half, bg, config_.min_player_area),
            predicted);
      }

      TrackPoint tp;
      tp.frame = f;
      if (hit) {
        tp.center = hit->centroid;
        tp.bbox = hit->bbox;
        tp.features = vision::ComputeShapeFeatures(frame, *hit);
        if (last.predicted_only) {
          // Re-acquired after coasting: the previous point is a stale
          // prediction, so a finite difference against it is meaningless.
          ps.velocity = PointD{0, 0};
        } else {
          // Damped finite difference, clamped so one noisy association
          // cannot fling the search window off the player.
          ps.velocity = (tp.center - last.center) * 0.5;
          double norm = ps.velocity.Norm();
          constexpr double kMaxVelocity = 12.0;
          if (norm > kMaxVelocity) {
            ps.velocity = ps.velocity * (kMaxVelocity / norm);
          }
        }
        ps.last_bbox = hit->bbox;
        ps.lost = 0;
      } else {
        tp.center = predicted;
        tp.bbox = window;
        tp.predicted_only = true;
      }
      ps.track.points.push_back(tp);
    }
    ++result.frames_processed;
  }

  for (PlayerState& ps : players) {
    if (ps.alive) result.tracks.push_back(std::move(ps.track));
  }
  result.frames_processed = shot.Length();
  return result;
}

}  // namespace cobra::detectors
