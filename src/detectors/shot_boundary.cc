#include "detectors/shot_boundary.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/strings.h"

namespace cobra::detectors {

ShotBoundaryDetector::ShotBoundaryDetector(ShotBoundaryConfig config)
    : config_(config) {}

std::vector<FrameInterval> ShotBoundaryResult::ToShots(
    int64_t num_frames) const {
  std::vector<FrameInterval> shots;
  if (num_frames <= 0) return shots;
  int64_t start = 0;
  for (int64_t b : boundaries) {
    if (b > start) shots.push_back(FrameInterval{start, b - 1});
    start = b;
  }
  shots.push_back(FrameInterval{start, num_frames - 1});
  return shots;
}

Result<std::shared_ptr<const vision::ColorHistogram>>
ShotBoundaryDetector::HistogramOf(const media::VideoSource& video,
                                  int64_t index) const {
  if (cache_ != nullptr) {
    return cache_->GetHistogram(index, config_.downsample,
                                config_.bins_per_channel);
  }
  COBRA_ASSIGN_OR_RETURN(media::Frame frame, video.GetFrame(index));
  if (config_.downsample > 1) {
    COBRA_ASSIGN_OR_RETURN(frame, frame.Downsample(config_.downsample));
  }
  COBRA_ASSIGN_OR_RETURN(
      vision::ColorHistogram histogram,
      vision::ColorHistogram::FromFrame(frame, config_.bins_per_channel));
  return std::make_shared<const vision::ColorHistogram>(std::move(histogram));
}

Result<std::vector<double>> ShotBoundaryDetector::ComputeDistances(
    const media::VideoSource& video) const {
  const int64_t n = video.num_frames();
  std::vector<double> distances;
  if (n < 2) return distances;

  // The histogram pass dominates the cost and every frame is independent,
  // so it fans out over the pool; slots are indexed by frame, keeping the
  // signal bit-identical to the sequential loop.
  std::vector<std::shared_ptr<const vision::ColorHistogram>> histograms(
      static_cast<size_t>(n));
  std::vector<Status> errors(static_cast<size_t>(n), Status::OK());
  auto compute = [&](int64_t i) {
    auto histogram = HistogramOf(video, i);
    if (histogram.ok()) {
      histograms[static_cast<size_t>(i)] = std::move(histogram).TakeValue();
    } else {
      errors[static_cast<size_t>(i)] = histogram.status();
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(0, n, /*grain=*/16, compute);
  } else {
    for (int64_t i = 0; i < n; ++i) compute(i);
  }
  for (const Status& status : errors) COBRA_RETURN_NOT_OK(status);

  distances.reserve(static_cast<size_t>(n - 1));
  for (int64_t i = 1; i < n; ++i) {
    distances.push_back(vision::Distance(*histograms[static_cast<size_t>(i - 1)],
                                         *histograms[static_cast<size_t>(i)],
                                         config_.metric));
  }
  return distances;
}

std::vector<int64_t> ShotBoundaryDetector::ThresholdSignal(
    const std::vector<double>& distances) const {
  std::vector<int64_t> raw;
  if (config_.mode == ThresholdMode::kFixed) {
    for (size_t i = 0; i < distances.size(); ++i) {
      if (distances[i] > config_.fixed_threshold) {
        raw.push_back(static_cast<int64_t>(i) + 1);
      }
    }
  } else {
    // Trailing-window statistics; the window excludes the sample under test
    // so a cut does not inflate its own threshold.
    std::deque<double> window;
    double sum = 0.0, sum2 = 0.0;
    for (size_t i = 0; i < distances.size(); ++i) {
      double d = distances[i];
      bool fire = false;
      if (window.size() >= 4) {
        double mean = sum / static_cast<double>(window.size());
        double var = std::max(
            0.0, sum2 / static_cast<double>(window.size()) - mean * mean);
        double threshold =
            std::max(config_.adaptive_floor, mean + config_.adaptive_k * std::sqrt(var));
        fire = d > threshold;
      } else {
        fire = d > std::max(config_.adaptive_floor, config_.fixed_threshold);
      }
      if (fire) {
        raw.push_back(static_cast<int64_t>(i) + 1);
      } else {
        // Only non-cut samples feed the background statistics.
        window.push_back(d);
        sum += d;
        sum2 += d * d;
        if (static_cast<int>(window.size()) > config_.adaptive_window) {
          double old = window.front();
          window.pop_front();
          sum -= old;
          sum2 -= old * old;
        }
      }
    }
  }

  // Merge boundaries closer than min_shot_frames, keeping the stronger cut.
  std::vector<int64_t> merged;
  for (int64_t b : raw) {
    if (!merged.empty() && b - merged.back() < config_.min_shot_frames) {
      double prev_strength = distances[static_cast<size_t>(merged.back() - 1)];
      double cur_strength = distances[static_cast<size_t>(b - 1)];
      if (cur_strength > prev_strength) merged.back() = b;
    } else {
      merged.push_back(b);
    }
  }
  return merged;
}

std::vector<FrameInterval> ShotBoundaryDetector::DetectGradual(
    const std::vector<double>& distances,
    const std::vector<int64_t>& hard_cuts) const {
  std::vector<FrameInterval> out;
  std::vector<bool> is_cut_frame(distances.size() + 2, false);
  for (int64_t cut : hard_cuts) {
    if (cut >= 1 && cut <= static_cast<int64_t>(distances.size())) {
      is_cut_frame[static_cast<size_t>(cut)] = true;
    }
  }
  // A run tolerates one below-threshold sample (dissolves between shots of
  // similar palettes dip mid-way).
  const int64_t n = static_cast<int64_t>(distances.size());
  int64_t run_start = -1;
  int64_t last_above = -1;
  double accumulated = 0.0;
  double run_max = 0.0;
  bool contains_cut = false;
  int gap = 0;
  auto flush = [&]() {
    if (run_start >= 0) {
      int64_t run_len = last_above - run_start + 1;
      bool spread = accumulated > 0 &&
                    run_max / accumulated <= config_.gradual_max_spike_share;
      if (!contains_cut && spread && run_len >= config_.gradual_min_frames &&
          accumulated >= config_.gradual_accumulated) {
        // distances[t] compares frames t and t+1; the blend covers frames
        // run_start+1 .. last_above+1.
        out.push_back(FrameInterval{run_start + 1, last_above + 1});
      }
    }
    run_start = -1;
    gap = 0;
  };
  for (int64_t i = 0; i <= n; ++i) {
    bool above = i < n && distances[static_cast<size_t>(i)] >= config_.gradual_low;
    if (above) {
      if (run_start < 0) {
        run_start = i;
        accumulated = 0.0;
        run_max = 0.0;
        contains_cut = false;
      }
      gap = 0;
      last_above = i;
      accumulated += distances[static_cast<size_t>(i)];
      run_max = std::max(run_max, distances[static_cast<size_t>(i)]);
      if (is_cut_frame[static_cast<size_t>(i + 1)]) contains_cut = true;
    } else if (run_start >= 0 && i < n && gap == 0) {
      gap = 1;  // bridge a single dip, without counting its mass
    } else {
      flush();
    }
  }
  return out;
}

Result<ShotBoundaryResult> ShotBoundaryDetector::Detect(
    const media::VideoSource& video) const {
  ShotBoundaryResult result;
  COBRA_ASSIGN_OR_RETURN(result.distances, ComputeDistances(video));
  result.boundaries = ThresholdSignal(result.distances);
  if (!config_.detect_gradual) return result;

  // Twin comparison finds candidate runs; each is then verified by the
  // endpoint test — the frames straddling a real dissolve belong to
  // different scenes, so their direct histogram distance is cut-sized,
  // while in-shot motion runs have near-identical endpoints.
  // Both passes use HistogramOf: with a cache attached, the verification
  // histograms below were already built by ComputeDistances and hit.
  std::vector<FrameInterval> candidates = DetectGradual(result.distances, {});
  for (const FrameInterval& candidate : candidates) {
    int64_t before = std::max<int64_t>(0, candidate.begin - 1);
    int64_t after = std::min<int64_t>(video.num_frames() - 1, candidate.end + 1);
    double endpoint_distance;
    if (after == before + 1) {
      // Adjacent endpoints were already measured by ComputeDistances
      // (distances[t] compares frames t and t+1); reuse instead of
      // rebuilding both histograms and re-running the distance kernel.
      endpoint_distance = result.distances[static_cast<size_t>(before)];
    } else {
      COBRA_ASSIGN_OR_RETURN(auto ha, HistogramOf(video, before));
      COBRA_ASSIGN_OR_RETURN(auto hb, HistogramOf(video, after));
      endpoint_distance = vision::Distance(*ha, *hb, config_.metric);
    }
    if (endpoint_distance <
        std::max(config_.adaptive_floor, config_.fixed_threshold)) {
      continue;  // endpoints look alike: in-shot motion, not a transition
    }
    result.gradual.push_back(candidate);
  }

  // A dissolve steep enough to trip the hard-cut threshold was classified
  // twice; the gradual interpretation wins.
  std::vector<int64_t> hard;
  for (int64_t boundary : result.boundaries) {
    bool inside_gradual = false;
    for (const FrameInterval& t : result.gradual) {
      if (boundary >= t.begin - 1 && boundary <= t.end + 1) {
        inside_gradual = true;
        break;
      }
    }
    if (!inside_gradual) hard.push_back(boundary);
  }
  result.boundaries = std::move(hard);
  return result;
}

}  // namespace cobra::detectors
