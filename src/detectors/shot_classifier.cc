#include "detectors/shot_classifier.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"
#include "vision/gray_stats.h"
#include "vision/histogram.h"

namespace cobra::detectors {

ShotClassifier::ShotClassifier(ShotClassifierConfig config) : config_(config) {}

Result<ShotFeatures> ShotClassifier::ComputeFeatures(
    const media::VideoSource& video, const FrameInterval& range) const {
  if (range.Empty() || range.begin < 0 || range.end >= video.num_frames()) {
    return Status::InvalidArgument(
        StringFormat("shot range %s out of video bounds", range.ToString().c_str()));
  }
  const int samples =
      static_cast<int>(std::min<int64_t>(config_.frames_per_shot, range.Length()));
  ShotFeatures acc;
  double dom_hue_x = 0.0, dom_hue_y = 0.0;  // circular mean of hue
  for (int s = 0; s < samples; ++s) {
    int64_t frame_idx =
        range.begin + (range.Length() - 1) * s / std::max(1, samples - 1);
    if (samples == 1) frame_idx = range.begin + range.Length() / 2;

    // With a cache attached every per-frame artifact is memoized (and the
    // decoded frame is shared with the other detectors); the fallback path
    // computes exactly the same values from a local decode.
    double dominant_ratio, skin_ratio;
    media::Hsv modal;
    vision::GrayStats gs;
    if (cache_ != nullptr) {
      COBRA_ASSIGN_OR_RETURN(
          auto hist, cache_->GetHistogram(frame_idx, 1, config_.bins_per_channel));
      dominant_ratio = hist->DominantRatio();
      modal = media::RgbToHsv(hist->BinCenter(hist->ModalBin()));
      COBRA_ASSIGN_OR_RETURN(skin_ratio, cache_->GetSkinRatio(frame_idx));
      COBRA_ASSIGN_OR_RETURN(gs, cache_->GetGrayStats(frame_idx));
    } else {
      COBRA_ASSIGN_OR_RETURN(media::Frame frame, video.GetFrame(frame_idx));
      COBRA_ASSIGN_OR_RETURN(
          vision::ColorHistogram hist,
          vision::ColorHistogram::FromFrame(frame, config_.bins_per_channel));
      dominant_ratio = hist.DominantRatio();
      modal = media::RgbToHsv(hist.BinCenter(hist.ModalBin()));
      skin_ratio = vision::SkinPixelRatio(frame);
      gs = vision::ComputeGrayStats(frame);
    }

    acc.dominant_ratio += dominant_ratio;
    double rad = modal.h * 3.14159265358979 / 180.0;
    dom_hue_x += std::cos(rad);
    dom_hue_y += std::sin(rad);
    acc.dominant_saturation += modal.s;
    acc.dominant_value += modal.v;
    acc.skin_ratio += skin_ratio;
    acc.entropy += gs.entropy;
    acc.luma_mean += gs.mean;
    acc.luma_variance += gs.variance;
  }
  const double n = static_cast<double>(samples);
  acc.dominant_ratio /= n;
  acc.dominant_saturation /= n;
  acc.dominant_value /= n;
  acc.skin_ratio /= n;
  acc.entropy /= n;
  acc.luma_mean /= n;
  acc.luma_variance /= n;
  double hue = std::atan2(dom_hue_y, dom_hue_x) * 180.0 / 3.14159265358979;
  acc.dominant_hue = hue < 0 ? hue + 360.0 : hue;
  return acc;
}

media::ShotCategory ShotClassifier::ClassifyFeatures(
    const ShotFeatures& f) const {
  // Rule order: court first (the dominant-color cue, as in the paper), then
  // the entropy cue (a crowd mosaic contains plenty of incidental skin
  // tones, so entropy must fire before the skin rule), then skin for
  // close-ups, and a catch-all.
  const bool court_hue = f.dominant_hue >= config_.court_hue_min &&
                         f.dominant_hue <= config_.court_hue_max;
  if (f.dominant_ratio >= config_.court_dominant_ratio && court_hue &&
      f.dominant_saturation >= config_.court_min_saturation &&
      f.dominant_value >= config_.court_min_value) {
    return media::ShotCategory::kTennis;
  }
  if (f.entropy >= config_.audience_entropy) {
    return media::ShotCategory::kAudience;
  }
  if (f.skin_ratio >= config_.closeup_skin_ratio) {
    return media::ShotCategory::kCloseUp;
  }
  return media::ShotCategory::kOther;
}

Result<ClassifiedShot> ShotClassifier::Classify(const media::VideoSource& video,
                                                const FrameInterval& range) const {
  COBRA_ASSIGN_OR_RETURN(ShotFeatures features, ComputeFeatures(video, range));
  ClassifiedShot shot;
  shot.range = range;
  shot.features = features;
  shot.category = ClassifyFeatures(features);
  return shot;
}

Result<std::vector<ClassifiedShot>> ShotClassifier::ClassifyAll(
    const media::VideoSource& video,
    const std::vector<FrameInterval>& shots) const {
  // Shots are independent; fan out over the pool with results slotted by
  // shot index, so the output order (and content) matches the serial loop.
  std::vector<ClassifiedShot> out(shots.size());
  std::vector<Status> errors(shots.size(), Status::OK());
  auto classify = [&](int64_t i) {
    auto shot = Classify(video, shots[static_cast<size_t>(i)]);
    if (shot.ok()) {
      out[static_cast<size_t>(i)] = std::move(shot).TakeValue();
    } else {
      errors[static_cast<size_t>(i)] = shot.status();
    }
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(0, static_cast<int64_t>(shots.size()), /*grain=*/1,
                       classify);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(shots.size()); ++i) {
      classify(i);
    }
  }
  for (const Status& status : errors) COBRA_RETURN_NOT_OK(status);
  return out;
}

}  // namespace cobra::detectors
