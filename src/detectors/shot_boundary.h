#pragma once

/// \file shot_boundary.h
/// Shot boundary detection from color-histogram differences of neighboring
/// frames — the paper's externally-implemented "segment detector", first
/// stage of the tennis FDE (§3).

#include <cstdint>
#include <memory>
#include <vector>

#include "media/video.h"
#include "util/geometry.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vision/frame_feature_cache.h"
#include "vision/histogram.h"

namespace cobra::detectors {

/// Thresholding strategy for the frame-difference signal.
enum class ThresholdMode {
  kFixed,     ///< boundary where distance > fixed_threshold
  kAdaptive,  ///< boundary where distance > mean + k*stddev of a sliding window
};

struct ShotBoundaryConfig {
  int bins_per_channel = 8;
  vision::HistogramDistance metric = vision::HistogramDistance::kL1;
  ThresholdMode mode = ThresholdMode::kAdaptive;

  /// Used in kFixed mode; reasonable L1 cuts are > 0.4 at default bins.
  double fixed_threshold = 0.5;

  /// kAdaptive: fire where d > max(adaptive_floor, mean + k * stddev) over a
  /// trailing window. The floor suppresses firing in near-static stretches
  /// where stddev is tiny.
  int adaptive_window = 24;
  double adaptive_k = 6.0;
  double adaptive_floor = 0.25;

  /// Two boundaries closer than this are merged (keeps the stronger one).
  int64_t min_shot_frames = 8;

  /// Analysis downsampling: histogram every pixel (1) or every k-th (speed).
  int downsample = 1;

  /// Gradual-transition (dissolve) detection by twin comparison: a run of
  /// consecutive inter-frame distances each above `gradual_low` whose sum
  /// exceeds `gradual_accumulated` is a dissolve. Off by default (the
  /// paper's segment detector handles hard cuts).
  bool detect_gradual = false;
  double gradual_low = 0.07;
  double gradual_accumulated = 1.2;
  int64_t gradual_min_frames = 5;
  /// A run where one sample carries more than this share of the
  /// accumulated mass is a hard cut with shoulders, not a dissolve
  /// (dissolves spread their mass evenly).
  double gradual_max_spike_share = 0.5;
};

/// Detection output: cut positions plus the raw signal for diagnostics.
struct ShotBoundaryResult {
  /// Frame indices where a new shot begins (first frame of the new shot).
  std::vector<int64_t> boundaries;
  /// distances[i] = histogram distance between frame i and frame i+1.
  std::vector<double> distances;
  /// Detected gradual transitions (when config.detect_gradual): the blended
  /// frame ranges, starting at the new shot's first frame.
  std::vector<FrameInterval> gradual;

  /// Shot intervals implied by the boundaries over `num_frames` frames.
  std::vector<FrameInterval> ToShots(int64_t num_frames) const;
};

/// Detects hard cuts in a video.
class ShotBoundaryDetector {
 public:
  explicit ShotBoundaryDetector(ShotBoundaryConfig config = {});

  /// Attaches the shared execution substrate (both optional): per-frame
  /// histograms are memoized in `cache` — so the cut pass and the
  /// gradual-verification pass build each histogram once, and later
  /// detectors reuse them — and the histogram loop runs on `pool`. The
  /// cache must be bound to the video passed to Detect. Results are
  /// bit-identical with or without either.
  void SetExecution(vision::FrameFeatureCache* cache, util::ThreadPool* pool) {
    cache_ = cache;
    pool_ = pool;
  }

  /// Runs detection over the whole video.
  Result<ShotBoundaryResult> Detect(const media::VideoSource& video) const;

  /// Computes only the distance signal (for threshold sweeps: one signal,
  /// many thresholds).
  Result<std::vector<double>> ComputeDistances(
      const media::VideoSource& video) const;

  /// Applies this detector's thresholding to a precomputed signal.
  std::vector<int64_t> ThresholdSignal(const std::vector<double>& distances) const;

  /// Twin-comparison pass over the signal: returns dissolve ranges,
  /// excluding runs that contain a detected hard cut.
  std::vector<FrameInterval> DetectGradual(
      const std::vector<double>& distances,
      const std::vector<int64_t>& hard_cuts) const;

  const ShotBoundaryConfig& config() const { return config_; }

 private:
  /// Histogram of one analysis frame, through the cache when attached.
  Result<std::shared_ptr<const vision::ColorHistogram>> HistogramOf(
      const media::VideoSource& video, int64_t index) const;

  ShotBoundaryConfig config_;
  vision::FrameFeatureCache* cache_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace cobra::detectors
