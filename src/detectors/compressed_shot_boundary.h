#pragma once

/// \file compressed_shot_boundary.h
/// Compressed-domain shot boundary detection: instead of decoding pixels
/// and differencing histograms, threshold the encoder's macroblock
/// statistics — a hard cut destroys temporal prediction, so the fraction of
/// intra-coded (poorly predicted) macroblocks spikes at the first frame of
/// a new shot. Orders of magnitude cheaper than the pixel-domain detector
/// (extension experiment E9).

#include <cstdint>
#include <vector>

#include "media/block_codec.h"
#include "util/status.h"

namespace cobra::detectors {

struct CompressedShotBoundaryConfig {
  /// Fire when the analysis intra-macroblock ratio exceeds this.
  double intra_ratio_threshold = 0.4;
  /// Merge boundaries closer than this (keep the stronger).
  int64_t min_shot_frames = 8;
};

/// Detects cuts from `EncodedVideo` statistics. Frame 0 never fires (it has
/// no reference, its ratio is 1.0 by construction).
class CompressedShotBoundaryDetector {
 public:
  explicit CompressedShotBoundaryDetector(
      CompressedShotBoundaryConfig config = {});

  /// Cut positions (first frame of each new shot).
  std::vector<int64_t> Detect(const media::EncodedVideo& encoded) const;

  /// The per-frame signal (analysis intra ratio), for diagnostics.
  static std::vector<double> Signal(const media::EncodedVideo& encoded);

  const CompressedShotBoundaryConfig& config() const { return config_; }

 private:
  CompressedShotBoundaryConfig config_;
};

}  // namespace cobra::detectors
