#pragma once

/// \file court_model.h
/// Estimation of the court geometry and court-color statistics from pixels
/// — the "estimated statistics of the tennis field color" that seed the
/// player segmentation (paper §3). Detectors never see the synthesizer's
/// geometry; they recover it from the frame.

#include "media/frame.h"
#include "util/status.h"
#include "vision/color_model.h"

namespace cobra::detectors {

/// Court geometry and color statistics estimated from one court frame.
struct CourtModel {
  vision::GaussianColorModel court_color;  ///< playing-surface color stats
  vision::GaussianColorModel surround_color;  ///< out-of-court background stats
  RectI court_bbox;                        ///< bounding box of court pixels
  int net_y = 0;                           ///< estimated net row
  int baseline_near_y = 0;
  int baseline_far_y = 0;

  bool Valid() const { return !court_bbox.Empty(); }
};

struct CourtModelConfig {
  /// Seed sampling: court color is estimated from small patches around the
  /// two service-box centers (±quarter height from frame center), which lie
  /// on the surface for any broadcast court framing.
  int seed_patch = 6;  ///< half-size of each seed patch, pixels
  /// Pixels within k sigma of the seed model count as court surface.
  double match_k = 3.5;
  /// Minimum fraction of frame pixels that must match for a valid court.
  double min_court_fraction = 0.2;
  /// Homogeneity gate: mean per-channel stddev of the seed patches must be
  /// below this (a surface is flat up to texture + sensor noise).
  double max_seed_stddev = 18.0;
  /// The surface must be colored and lit (rejects graphics backgrounds).
  double min_seed_saturation = 0.2;
  double min_seed_value = 0.3;
};

/// Estimates the court model from a single (court) frame.
///
/// Fails with DetectorError if the frame does not contain a plausible court
/// (too few pixels matching the seed color model).
Result<CourtModel> EstimateCourtModel(const media::Frame& frame,
                                      const CourtModelConfig& config = {});

}  // namespace cobra::detectors
