#include "detectors/court_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/strings.h"
#include "vision/mask.h"

namespace cobra::detectors {

Result<CourtModel> EstimateCourtModel(const media::Frame& frame,
                                      const CourtModelConfig& config) {
  if (frame.Empty()) return Status::InvalidArgument("empty frame");
  const int w = frame.width();
  const int h = frame.height();

  // Estimate the field color statistics (paper §3) robustly: scatter small
  // candidate patches over the central frame region, keep the homogeneous
  // ones (this drops patches on court lines, the net, players), and model
  // the court from the largest cluster of color-consistent patches.
  CourtModel model;
  const int p = config.seed_patch;
  struct Patch {
    vision::GaussianColorModel stats;
    bool homogeneous = false;
  };
  std::vector<Patch> patches;
  for (int gy = 0; gy < 6; ++gy) {
    for (int gx = 0; gx < 6; ++gx) {
      int cx = static_cast<int>(w * (0.25 + 0.5 * gx / 5.0));
      int cy = static_cast<int>(h * (0.25 + 0.55 * gy / 5.0));
      Patch patch;
      patch.stats.AddRegion(frame,
                            RectI{cx - p, cy - p, 2 * p + 1, 2 * p + 1});
      double stddev = (std::sqrt(patch.stats.var_r()) +
                       std::sqrt(patch.stats.var_g()) +
                       std::sqrt(patch.stats.var_b())) /
                      3.0;
      patch.homogeneous = stddev <= config.max_seed_stddev;
      patches.push_back(patch);
    }
  }

  // Largest cluster of homogeneous patches with similar means.
  auto mean_dist = [](const vision::GaussianColorModel& a,
                      const vision::GaussianColorModel& b) {
    double dr = a.mean_r() - b.mean_r();
    double dg = a.mean_g() - b.mean_g();
    double db = a.mean_b() - b.mean_b();
    return std::sqrt(dr * dr + dg * dg + db * db);
  };
  size_t best_center = patches.size();
  int best_count = 0;
  for (size_t i = 0; i < patches.size(); ++i) {
    if (!patches[i].homogeneous) continue;
    int count = 0;
    for (const Patch& other : patches) {
      if (other.homogeneous && mean_dist(patches[i].stats, other.stats) < 30.0) {
        ++count;
      }
    }
    if (count > best_count) {
      best_count = count;
      best_center = i;
    }
  }
  if (best_center >= patches.size() || best_count < 4) {
    return Status::DetectorError(
        StringFormat("no homogeneous surface cluster (best %d patches)",
                     best_count));
  }
  // Pixels of the cluster's patches feed the court color model.
  for (int gy = 0; gy < 6; ++gy) {
    for (int gx = 0; gx < 6; ++gx) {
      const Patch& patch = patches[static_cast<size_t>(gy) * 6 + gx];
      if (!patch.homogeneous ||
          mean_dist(patches[best_center].stats, patch.stats) >= 30.0) {
        continue;
      }
      int cx = static_cast<int>(w * (0.25 + 0.5 * gx / 5.0));
      int cy = static_cast<int>(h * (0.25 + 0.55 * gy / 5.0));
      model.court_color.AddRegion(frame,
                                  RectI{cx - p, cy - p, 2 * p + 1, 2 * p + 1});
    }
  }

  // The surface must be colored and lit (rejects graphics backgrounds).
  media::Hsv seed_hsv = media::RgbToHsv(media::Rgb{
      static_cast<uint8_t>(model.court_color.mean_r()),
      static_cast<uint8_t>(model.court_color.mean_g()),
      static_cast<uint8_t>(model.court_color.mean_b())});
  if (seed_hsv.s < config.min_seed_saturation ||
      seed_hsv.v < config.min_seed_value) {
    return Status::DetectorError(
        StringFormat("seed color not a lit surface (s=%.2f v=%.2f)", seed_hsv.s,
                     seed_hsv.v));
  }

  // Surround (out-of-court) statistics from the four frame corners.
  for (int corner = 0; corner < 4; ++corner) {
    int sx = (corner % 2 == 0) ? p : w - 1 - 2 * p;
    int sy = (corner / 2 == 0) ? p : h - 1 - 2 * p;
    model.surround_color.AddRegion(frame, RectI{sx, sy, p + 1, p + 1});
  }

  // Classify court pixels and take the bounding box of the biggest region.
  // The k-sigma match is hoisted into integer channel bounds once; the mask
  // builder then classifies rows with the batch kernel.
  vision::BinaryMask court_mask = vision::BinaryMask::FromColorBox(
      frame, RectI{0, 0, w, h}, model.court_color.MatchBox(config.match_k));
  int64_t matched = court_mask.Count();
  if (static_cast<double>(matched) <
      config.min_court_fraction * static_cast<double>(frame.PixelCount())) {
    return Status::DetectorError(
        StringFormat("court color covers only %lld of %lld pixels",
                     static_cast<long long>(matched),
                     static_cast<long long>(frame.PixelCount())));
  }
  // Dilate once to bridge the white lines that slice the surface into bands,
  // then keep the dominant component.
  auto components = vision::LabelComponents(court_mask.Dilate(), matched / 4);
  if (components.empty()) {
    return Status::DetectorError("no coherent court region");
  }
  model.court_bbox = components.front().bbox;
  model.net_y = model.court_bbox.y + model.court_bbox.height / 2;
  model.baseline_near_y = model.court_bbox.Bottom() - 1;
  model.baseline_far_y = model.court_bbox.y;
  return model;
}

}  // namespace cobra::detectors
