#pragma once

/// \file shot_classifier.h
/// Shot classification into tennis / close-up / audience / other using the
/// cues the paper names (§3): dominant (court) color for court shots, skin
/// pixel ratio for close-ups, and entropy / mean / variance characteristics
/// for the rest.

#include <vector>

#include "media/ground_truth.h"
#include "media/video.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "vision/frame_feature_cache.h"

namespace cobra::detectors {

/// Per-shot features computed from sampled frames — also the record that
/// ends up in the COBRA feature layer / the meta-index.
struct ShotFeatures {
  double dominant_ratio = 0.0;    ///< modal histogram bin mass, averaged
  double dominant_hue = 0.0;      ///< hue of the modal color, degrees
  double dominant_saturation = 0.0;
  double dominant_value = 0.0;    ///< brightness of the modal color
  double skin_ratio = 0.0;        ///< fraction of skin-colored pixels
  double entropy = 0.0;           ///< luma entropy, bits
  double luma_mean = 0.0;
  double luma_variance = 0.0;
};

struct ShotClassifierConfig {
  /// Frames sampled per shot (evenly spaced).
  int frames_per_shot = 5;
  int bins_per_channel = 8;

  /// Court cue: dominant-color mass above this AND hue inside the court hue
  /// band. The Australian Open court is blue; clay/grass tournaments
  /// retarget via the band.
  double court_dominant_ratio = 0.30;
  double court_hue_min = 180.0;
  double court_hue_max = 260.0;
  double court_min_saturation = 0.25;
  /// Courts are brightly lit; dark dominant colors (studio graphics) fail.
  double court_min_value = 0.40;

  /// Close-up cue: skin-pixel fraction above this.
  double closeup_skin_ratio = 0.10;

  /// Audience cue: luma entropy above this (crowd mosaics are near-maximal).
  double audience_entropy = 6.6;
};

/// A classified shot.
struct ClassifiedShot {
  FrameInterval range;
  media::ShotCategory category = media::ShotCategory::kOther;
  ShotFeatures features;
};

/// Rule-based 4-way shot classifier.
class ShotClassifier {
 public:
  explicit ShotClassifier(ShotClassifierConfig config = {});

  /// Attaches the shared execution substrate (both optional): per-frame
  /// histograms, skin ratios and gray stats come from `cache` (shared with
  /// the shot-boundary detector and the tracker), and ClassifyAll fans out
  /// over `pool`. Results are bit-identical with or without either.
  void SetExecution(vision::FrameFeatureCache* cache, util::ThreadPool* pool) {
    cache_ = cache;
    pool_ = pool;
  }

  /// Computes the per-shot features by sampling frames of `range`.
  Result<ShotFeatures> ComputeFeatures(const media::VideoSource& video,
                                       const FrameInterval& range) const;

  /// Applies the classification rules to precomputed features.
  media::ShotCategory ClassifyFeatures(const ShotFeatures& features) const;

  /// Convenience: features + rules for one shot.
  Result<ClassifiedShot> Classify(const media::VideoSource& video,
                                  const FrameInterval& range) const;

  /// Classifies every shot in `shots`.
  Result<std::vector<ClassifiedShot>> ClassifyAll(
      const media::VideoSource& video,
      const std::vector<FrameInterval>& shots) const;

  const ShotClassifierConfig& config() const { return config_; }

 private:
  ShotClassifierConfig config_;
  vision::FrameFeatureCache* cache_ = nullptr;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace cobra::detectors
