#pragma once

/// \file player_tracker.h
/// Player segmentation and predictive tracking — the paper's "tennis
/// detector" (§3): initial segmentation of the first frame of a court shot
/// using court-color statistics, then prediction of the player position and
/// a search for a similar region in the neighborhood of the prediction.

#include <cstdint>
#include <vector>

#include "detectors/court_model.h"
#include "media/video.h"
#include "util/status.h"
#include "vision/frame_feature_cache.h"
#include "vision/moments.h"

namespace cobra::detectors {

/// One observation of a tracked player.
struct TrackPoint {
  int64_t frame = 0;
  PointD center;
  RectI bbox;
  vision::ShapeFeatures features;
  /// True when no region was found and the point is the motion prediction.
  bool predicted_only = false;
};

/// The trajectory of one player across a shot.
struct PlayerTrack {
  int player_id = 0;  ///< 0 = near (bottom half), 1 = far (top half)
  std::vector<TrackPoint> points;

  /// Fraction of points backed by an observed region (not predicted).
  double ObservedFraction() const;

  /// Center at a given frame (linear scan; tracks are short).
  /// Returns false if the frame is not covered.
  bool CenterAt(int64_t frame, PointD* out) const;
};

struct PlayerTrackerConfig {
  CourtModelConfig court;

  /// Foreground predicate: pixel matches neither court nor surround within
  /// this many sigmas, and is not line-white.
  double foreground_k = 3.0;
  /// Minimum area (pixels) of a player region.
  int64_t min_player_area = 10;
  /// Extra pixels around the predicted bbox searched in the next frame.
  int search_margin = 12;
  /// ROI expansion around the court bbox (players overrun baselines).
  int court_margin = 10;
  /// Smaller expansion above the far baseline: the crowd sits right behind
  /// it and must stay out of the segmentation ROI.
  int court_margin_top = 4;
  /// After this many consecutive missed frames, re-segment the full ROI.
  int max_lost_frames = 8;
};

/// Tracking output for one court shot.
struct TrackingResult {
  CourtModel court;
  std::vector<PlayerTrack> tracks;  ///< up to 2 entries (near, far)
  int64_t frames_processed = 0;
};

/// Segments and tracks the two players through a court shot.
class PlayerTracker {
 public:
  explicit PlayerTracker(PlayerTrackerConfig config = {});

  /// Attaches the shared frame-feature cache (optional): decoded frames
  /// come from the cache — shared with the classifier, which already
  /// decoded most of them — instead of a fresh per-frame decode. The cache
  /// must be bound to the video passed to Track.
  void SetExecution(vision::FrameFeatureCache* cache) { cache_ = cache; }

  /// Runs segmentation + tracking over `shot` frames of `video`.
  /// Fails if the first frame has no recognizable court.
  Result<TrackingResult> Track(const media::VideoSource& video,
                               const FrameInterval& shot) const;

  const PlayerTrackerConfig& config() const { return config_; }

 private:
  PlayerTrackerConfig config_;
  vision::FrameFeatureCache* cache_ = nullptr;
};

}  // namespace cobra::detectors
