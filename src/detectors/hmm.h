#pragma once

/// \file hmm.h
/// Discrete hidden Markov model — the stochastic event recognizer of the
/// COBRA companion paper (ref [2]), offered as the alternative to the
/// rule-based detectors and compared against them in experiment E5.

#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace cobra::detectors {

/// A discrete-observation HMM with dense parameter matrices.
///
/// Probabilities are stored linearly; decoding runs in log space, the
/// forward likelihood uses per-step scaling, so long sequences do not
/// underflow.
class DiscreteHmm {
 public:
  /// Uniformly-initialized model.
  DiscreteHmm(int num_states, int num_symbols);

  /// Randomly-perturbed model. Exactly uniform parameters are a fixed point
  /// of Baum-Welch (every state is identical), so unsupervised training
  /// must start from a perturbed initialization.
  static DiscreteHmm Random(int num_states, int num_symbols, Rng* rng);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  double initial(int s) const { return initial_[s]; }
  double transition(int from, int to) const {
    return trans_[static_cast<size_t>(from) * num_states_ + to];
  }
  double emission(int state, int symbol) const {
    return emit_[static_cast<size_t>(state) * num_symbols_ + symbol];
  }

  /// Supervised maximum-likelihood estimation from aligned state/symbol
  /// sequences, with add-`smoothing` Laplace smoothing.
  ///
  /// Each states[i] and symbols[i] pair must have equal length.
  static Result<DiscreteHmm> FromLabeledSequences(
      const std::vector<std::vector<int>>& states,
      const std::vector<std::vector<int>>& symbols, int num_states,
      int num_symbols, double smoothing = 1.0);

  /// Most likely state sequence for `observations` (Viterbi).
  Result<std::vector<int>> Viterbi(const std::vector<int>& observations) const;

  /// Log-likelihood of `observations` (scaled forward algorithm).
  Result<double> LogLikelihood(const std::vector<int>& observations) const;

  /// Unsupervised refinement with `iterations` of Baum-Welch over the given
  /// observation sequences. Returns the final total log-likelihood.
  Result<double> BaumWelch(const std::vector<std::vector<int>>& observations,
                           int iterations);

 private:
  Status CheckSymbols(const std::vector<int>& observations) const;

  int num_states_;
  int num_symbols_;
  std::vector<double> initial_;
  std::vector<double> trans_;
  std::vector<double> emit_;
};

}  // namespace cobra::detectors
