#include "detectors/hmm_events.h"

#include <cmath>
#include <optional>

namespace cobra::detectors {

std::vector<int> EncodeTrackSymbols(const PlayerTrack& track,
                                    const CourtModel& court,
                                    const FrameInterval& shot,
                                    const HmmEncoderConfig& config) {
  const int64_t len = shot.Length();
  std::vector<int> symbols(static_cast<size_t>(len), -1);
  const double net_zone = config.net_zone_fraction * court.court_bbox.height;
  const double baseline_zone =
      config.baseline_zone_fraction * (court.court_bbox.height / 2.0);

  PointD prev;
  bool have_prev = false;
  for (const TrackPoint& p : track.points) {
    int64_t t = p.frame - shot.begin;
    if (t < 0 || t >= len) continue;
    double dist_net = std::fabs(p.center.y - court.net_y);
    int zone = dist_net < net_zone ? 2 : (dist_net > baseline_zone ? 0 : 1);
    double speed = have_prev ? p.center.DistanceTo(prev) : 0.0;
    prev = p.center;
    have_prev = true;
    int moving = speed > config.moving_speed ? 1 : 0;
    symbols[static_cast<size_t>(t)] = zone * 2 + moving;
  }
  // Fill gaps by repeating the neighbors.
  int last = -1;
  for (int64_t t = 0; t < len; ++t) {
    if (symbols[static_cast<size_t>(t)] >= 0) {
      last = symbols[static_cast<size_t>(t)];
    } else if (last >= 0) {
      symbols[static_cast<size_t>(t)] = last;
    }
  }
  for (int64_t t = len - 1; t >= 0; --t) {
    if (symbols[static_cast<size_t>(t)] >= 0) {
      last = symbols[static_cast<size_t>(t)];
    } else if (last >= 0) {
      symbols[static_cast<size_t>(t)] = last;
    } else {
      symbols[static_cast<size_t>(t)] = 0;
    }
  }
  return symbols;
}

std::vector<int> BuildTruthStateSequence(const media::GroundTruth& truth,
                                         int player_id,
                                         const FrameInterval& shot) {
  const int64_t len = shot.Length();
  std::vector<int> states(static_cast<size_t>(len), kStateApproach);
  auto mark = [&](const FrameInterval& range, int state) {
    FrameInterval local = range.Intersect(shot);
    for (int64_t f = local.begin; f <= local.end; ++f) {
      states[static_cast<size_t>(f - shot.begin)] = state;
    }
  };
  // Baseline first, then net (stronger), then serve (initial, strongest).
  for (const media::EventTruth& e : truth.events) {
    if (e.name == media::kEventBaselinePlay && e.player_id == player_id) {
      mark(e.range, kStateBaseline);
    }
  }
  for (const media::EventTruth& e : truth.events) {
    if (e.name == media::kEventNetPlay && e.player_id == player_id) {
      mark(e.range, kStateNet);
    }
  }
  for (const media::EventTruth& e : truth.events) {
    if (e.name == media::kEventServe) mark(e.range, kStateServe);
  }
  return states;
}

HmmEventRecognizer::HmmEventRecognizer(HmmEncoderConfig config)
    : config_(config) {}

Status HmmEventRecognizer::Train(
    const std::vector<std::vector<int>>& state_sequences,
    const std::vector<std::vector<int>>& symbol_sequences, double smoothing) {
  auto result = DiscreteHmm::FromLabeledSequences(
      state_sequences, symbol_sequences, kNumHmmStates, kNumHmmSymbols,
      smoothing);
  COBRA_RETURN_NOT_OK(result.status());
  hmm_ = std::move(result).TakeValue();
  return Status::OK();
}

Status HmmEventRecognizer::Refine(
    const std::vector<std::vector<int>>& symbol_sequences, int iterations) {
  if (!hmm_) return Status::FailedPrecondition("recognizer is not trained");
  return hmm_->BaumWelch(symbol_sequences, iterations).status();
}

Result<std::vector<int>> HmmEventRecognizer::DecodeStates(
    const PlayerTrack& track, const CourtModel& court,
    const FrameInterval& shot) const {
  if (!hmm_) return Status::FailedPrecondition("recognizer is not trained");
  std::vector<int> symbols = EncodeTrackSymbols(track, court, shot, config_);
  return hmm_->Viterbi(symbols);
}

Result<std::vector<DetectedEvent>> HmmEventRecognizer::Recognize(
    const PlayerTrack& track, const CourtModel& court,
    const FrameInterval& shot) const {
  COBRA_ASSIGN_OR_RETURN(std::vector<int> states,
                         DecodeStates(track, court, shot));
  std::vector<DetectedEvent> events;
  const int64_t len = static_cast<int64_t>(states.size());
  auto emit_state_runs = [&](int state, const char* name, int player_id,
                             int64_t min_len) {
    int64_t run_start = -1;
    for (int64_t t = 0; t <= len; ++t) {
      bool on = t < len && states[static_cast<size_t>(t)] == state;
      if (on && run_start < 0) run_start = t;
      if (!on && run_start >= 0) {
        if (t - run_start >= min_len) {
          events.push_back(DetectedEvent{
              name, player_id,
              FrameInterval{shot.begin + run_start, shot.begin + t - 1}});
        }
        run_start = -1;
      }
    }
  };
  emit_state_runs(kStateNet, media::kEventNetPlay, track.player_id, 6);
  emit_state_runs(kStateBaseline, media::kEventBaselinePlay, track.player_id, 15);
  // Serve: only an initial serve-state run counts.
  if (!states.empty() && states[0] == kStateServe) {
    int64_t t = 0;
    while (t < len && states[static_cast<size_t>(t)] == kStateServe) ++t;
    if (t >= 4) {
      events.push_back(DetectedEvent{media::kEventServe, -1,
                                     FrameInterval{shot.begin, shot.begin + t - 1}});
    }
  }
  return events;
}

}  // namespace cobra::detectors
