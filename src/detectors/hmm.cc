#include "detectors/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/strings.h"

namespace cobra::detectors {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double p) { return p > 0 ? std::log(p) : kNegInf; }
}  // namespace

DiscreteHmm::DiscreteHmm(int num_states, int num_symbols)
    : num_states_(num_states),
      num_symbols_(num_symbols),
      initial_(num_states, 1.0 / num_states),
      trans_(static_cast<size_t>(num_states) * num_states, 1.0 / num_states),
      emit_(static_cast<size_t>(num_states) * num_symbols, 1.0 / num_symbols) {}

DiscreteHmm DiscreteHmm::Random(int num_states, int num_symbols, Rng* rng) {
  DiscreteHmm hmm(num_states, num_symbols);
  auto perturb = [rng](std::vector<double>* row, size_t begin, size_t len) {
    double sum = 0.0;
    for (size_t i = begin; i < begin + len; ++i) {
      (*row)[i] *= rng->NextDouble(0.5, 1.5);
      sum += (*row)[i];
    }
    for (size_t i = begin; i < begin + len; ++i) (*row)[i] /= sum;
  };
  perturb(&hmm.initial_, 0, static_cast<size_t>(num_states));
  for (int s = 0; s < num_states; ++s) {
    perturb(&hmm.trans_, static_cast<size_t>(s) * num_states,
            static_cast<size_t>(num_states));
    perturb(&hmm.emit_, static_cast<size_t>(s) * num_symbols,
            static_cast<size_t>(num_symbols));
  }
  return hmm;
}

Status DiscreteHmm::CheckSymbols(const std::vector<int>& observations) const {
  for (int o : observations) {
    if (o < 0 || o >= num_symbols_) {
      return Status::InvalidArgument(
          StringFormat("observation symbol %d out of [0, %d)", o, num_symbols_));
    }
  }
  return Status::OK();
}

Result<DiscreteHmm> DiscreteHmm::FromLabeledSequences(
    const std::vector<std::vector<int>>& states,
    const std::vector<std::vector<int>>& symbols, int num_states,
    int num_symbols, double smoothing) {
  if (states.size() != symbols.size()) {
    return Status::InvalidArgument("states/symbols sequence counts differ");
  }
  if (num_states < 1 || num_symbols < 1) {
    return Status::InvalidArgument("model dimensions must be positive");
  }
  DiscreteHmm hmm(num_states, num_symbols);
  std::vector<double> init_counts(num_states, smoothing);
  std::vector<double> trans_counts(
      static_cast<size_t>(num_states) * num_states, smoothing);
  std::vector<double> emit_counts(
      static_cast<size_t>(num_states) * num_symbols, smoothing);

  for (size_t seq = 0; seq < states.size(); ++seq) {
    const auto& st = states[seq];
    const auto& sy = symbols[seq];
    if (st.size() != sy.size()) {
      return Status::InvalidArgument(
          StringFormat("sequence %zu: state/symbol lengths differ", seq));
    }
    for (size_t t = 0; t < st.size(); ++t) {
      if (st[t] < 0 || st[t] >= num_states) {
        return Status::InvalidArgument("state label out of range");
      }
      if (sy[t] < 0 || sy[t] >= num_symbols) {
        return Status::InvalidArgument("symbol out of range");
      }
      emit_counts[static_cast<size_t>(st[t]) * num_symbols + sy[t]] += 1.0;
      if (t == 0) {
        init_counts[st[0]] += 1.0;
      } else {
        trans_counts[static_cast<size_t>(st[t - 1]) * num_states + st[t]] += 1.0;
      }
    }
  }

  auto normalize_rows = [](std::vector<double>* m, int rows, int cols) {
    for (int r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (int c = 0; c < cols; ++c) sum += (*m)[static_cast<size_t>(r) * cols + c];
      if (sum > 0) {
        for (int c = 0; c < cols; ++c) (*m)[static_cast<size_t>(r) * cols + c] /= sum;
      }
    }
  };
  double init_sum = 0.0;
  for (double c : init_counts) init_sum += c;
  for (int s = 0; s < num_states; ++s) hmm.initial_[s] = init_counts[s] / init_sum;
  normalize_rows(&trans_counts, num_states, num_states);
  normalize_rows(&emit_counts, num_states, num_symbols);
  hmm.trans_ = std::move(trans_counts);
  hmm.emit_ = std::move(emit_counts);
  return hmm;
}

Result<std::vector<int>> DiscreteHmm::Viterbi(
    const std::vector<int>& observations) const {
  COBRA_RETURN_NOT_OK(CheckSymbols(observations));
  const size_t T = observations.size();
  if (T == 0) return std::vector<int>{};
  const int S = num_states_;

  std::vector<double> delta(static_cast<size_t>(S), 0.0);
  std::vector<double> delta_next(static_cast<size_t>(S), 0.0);
  std::vector<int> backptr(T * static_cast<size_t>(S), 0);

  for (int s = 0; s < S; ++s) {
    delta[s] = SafeLog(initial_[s]) + SafeLog(emission(s, observations[0]));
  }
  for (size_t t = 1; t < T; ++t) {
    for (int to = 0; to < S; ++to) {
      double best = kNegInf;
      int best_from = 0;
      for (int from = 0; from < S; ++from) {
        double cand = delta[from] + SafeLog(transition(from, to));
        if (cand > best) {
          best = cand;
          best_from = from;
        }
      }
      delta_next[to] = best + SafeLog(emission(to, observations[t]));
      backptr[t * S + to] = best_from;
    }
    std::swap(delta, delta_next);
  }

  std::vector<int> path(T);
  int last = static_cast<int>(
      std::max_element(delta.begin(), delta.end()) - delta.begin());
  path[T - 1] = last;
  for (size_t t = T - 1; t > 0; --t) {
    last = backptr[t * S + last];
    path[t - 1] = last;
  }
  return path;
}

Result<double> DiscreteHmm::LogLikelihood(
    const std::vector<int>& observations) const {
  COBRA_RETURN_NOT_OK(CheckSymbols(observations));
  const size_t T = observations.size();
  if (T == 0) return 0.0;
  const int S = num_states_;
  std::vector<double> alpha(static_cast<size_t>(S));
  double log_like = 0.0;
  for (int s = 0; s < S; ++s) alpha[s] = initial_[s] * emission(s, observations[0]);
  for (size_t t = 0;; ++t) {
    double scale = 0.0;
    for (double a : alpha) scale += a;
    if (scale <= 0) return Status::Internal("forward pass underflow (zero mass)");
    for (double& a : alpha) a /= scale;
    log_like += std::log(scale);
    if (t + 1 >= T) break;
    std::vector<double> next(static_cast<size_t>(S), 0.0);
    for (int to = 0; to < S; ++to) {
      double acc = 0.0;
      for (int from = 0; from < S; ++from) {
        acc += alpha[from] * transition(from, to);
      }
      next[to] = acc * emission(to, observations[t + 1]);
    }
    alpha = std::move(next);
  }
  return log_like;
}

Result<double> DiscreteHmm::BaumWelch(
    const std::vector<std::vector<int>>& observations, int iterations) {
  for (const auto& seq : observations) COBRA_RETURN_NOT_OK(CheckSymbols(seq));
  const int S = num_states_;
  const int V = num_symbols_;
  double total_ll = 0.0;

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> init_acc(S, 1e-6);
    std::vector<double> trans_acc(static_cast<size_t>(S) * S, 1e-6);
    std::vector<double> emit_acc(static_cast<size_t>(S) * V, 1e-6);
    total_ll = 0.0;

    for (const auto& seq : observations) {
      const size_t T = seq.size();
      if (T == 0) continue;
      // Scaled forward.
      std::vector<double> alpha(T * static_cast<size_t>(S));
      std::vector<double> scale(T);
      for (int s = 0; s < S; ++s) alpha[s] = initial_[s] * emission(s, seq[0]);
      for (size_t t = 0; t < T; ++t) {
        if (t > 0) {
          for (int to = 0; to < S; ++to) {
            double acc = 0.0;
            for (int from = 0; from < S; ++from) {
              acc += alpha[(t - 1) * S + from] * transition(from, to);
            }
            alpha[t * S + to] = acc * emission(to, seq[t]);
          }
        }
        double sc = 0.0;
        for (int s = 0; s < S; ++s) sc += alpha[t * S + s];
        if (sc <= 0) return Status::Internal("Baum-Welch underflow");
        scale[t] = sc;
        for (int s = 0; s < S; ++s) alpha[t * S + s] /= sc;
        total_ll += std::log(sc);
      }
      // Scaled backward.
      std::vector<double> beta(T * static_cast<size_t>(S), 1.0);
      for (size_t t = T - 1; t > 0; --t) {
        for (int from = 0; from < S; ++from) {
          double acc = 0.0;
          for (int to = 0; to < S; ++to) {
            acc += transition(from, to) * emission(to, seq[t]) * beta[t * S + to];
          }
          beta[(t - 1) * S + from] = acc / scale[t];
        }
      }
      // Accumulate expected counts.
      for (int s = 0; s < S; ++s) {
        init_acc[s] += alpha[s] * beta[s];
      }
      for (size_t t = 0; t < T; ++t) {
        for (int s = 0; s < S; ++s) {
          double gamma = alpha[t * S + s] * beta[t * S + s];
          emit_acc[static_cast<size_t>(s) * V + seq[t]] += gamma;
        }
        if (t + 1 < T) {
          for (int from = 0; from < S; ++from) {
            for (int to = 0; to < S; ++to) {
              double xi = alpha[t * S + from] * transition(from, to) *
                          emission(to, seq[t + 1]) * beta[(t + 1) * S + to] /
                          scale[t + 1];
              trans_acc[static_cast<size_t>(from) * S + to] += xi;
            }
          }
        }
      }
    }

    // Re-normalize.
    double init_sum = 0.0;
    for (double v : init_acc) init_sum += v;
    for (int s = 0; s < S; ++s) initial_[s] = init_acc[s] / init_sum;
    for (int from = 0; from < S; ++from) {
      double row = 0.0;
      for (int to = 0; to < S; ++to) row += trans_acc[static_cast<size_t>(from) * S + to];
      for (int to = 0; to < S; ++to) {
        trans_[static_cast<size_t>(from) * S + to] =
            trans_acc[static_cast<size_t>(from) * S + to] / row;
      }
    }
    for (int s = 0; s < S; ++s) {
      double row = 0.0;
      for (int v = 0; v < V; ++v) row += emit_acc[static_cast<size_t>(s) * V + v];
      for (int v = 0; v < V; ++v) {
        emit_[static_cast<size_t>(s) * V + v] =
            emit_acc[static_cast<size_t>(s) * V + v] / row;
      }
    }
  }
  return total_ll;
}

}  // namespace cobra::detectors
