#include "detectors/event_rules.h"

#include <algorithm>
#include <cmath>

#include "media/ground_truth.h"

namespace cobra::detectors {

EventRuleEngine::EventRuleEngine(EventRuleConfig config) : config_(config) {}

namespace {

/// Emits one event per maximal run of `true` in `flags`, offset to video time.
void EmitRuns(const std::vector<bool>& flags, const char* name, int player_id,
              int64_t min_len, int64_t frame0,
              std::vector<DetectedEvent>* out) {
  int64_t run_start = -1;
  const int64_t n = static_cast<int64_t>(flags.size());
  for (int64_t t = 0; t <= n; ++t) {
    bool on = t < n && flags[static_cast<size_t>(t)];
    if (on && run_start < 0) run_start = t;
    if (!on && run_start >= 0) {
      if (t - run_start >= min_len) {
        out->push_back(DetectedEvent{
            name, player_id, FrameInterval{frame0 + run_start, frame0 + t - 1}});
      }
      run_start = -1;
    }
  }
}

}  // namespace

std::vector<DetectedEvent> EventRuleEngine::Detect(
    const TrackingResult& tracking, const FrameInterval& shot) const {
  std::vector<DetectedEvent> events;
  if (!tracking.court.Valid() || shot.Empty()) return events;

  const CourtModel& court = tracking.court;
  const double half_height = court.court_bbox.height / 2.0;
  const double net_zone = config_.net_zone_fraction * court.court_bbox.height;
  const double baseline_zone = config_.baseline_zone_fraction * half_height;
  const int64_t len = shot.Length();

  // Per-player zone/speed flags on the shot's local timeline.
  std::vector<std::vector<double>> speeds;
  std::vector<bool> both_still(static_cast<size_t>(len), true);
  std::vector<double> mean_speed_accum(static_cast<size_t>(len), 0.0);
  std::vector<int> speed_counts(static_cast<size_t>(len), 0);

  for (const PlayerTrack& track : tracking.tracks) {
    std::vector<bool> at_net(static_cast<size_t>(len), false);
    std::vector<bool> at_baseline(static_cast<size_t>(len), false);
    PointD prev;
    bool have_prev = false;
    for (const TrackPoint& p : track.points) {
      int64_t t = p.frame - shot.begin;
      if (t < 0 || t >= len) continue;
      double dist_net = std::fabs(p.center.y - court.net_y);
      at_net[static_cast<size_t>(t)] = dist_net < net_zone;
      at_baseline[static_cast<size_t>(t)] = dist_net > baseline_zone;
      double speed = 0.0;
      if (have_prev) speed = p.center.DistanceTo(prev);
      prev = p.center;
      have_prev = true;
      if (speed > config_.serve_speed_eps) both_still[static_cast<size_t>(t)] = false;
      mean_speed_accum[static_cast<size_t>(t)] += speed;
      speed_counts[static_cast<size_t>(t)]++;
    }
    EmitRuns(at_net, media::kEventNetPlay, track.player_id,
             config_.min_net_play_frames, shot.begin, &events);
    EmitRuns(at_baseline, media::kEventBaselinePlay, track.player_id,
             config_.min_baseline_frames, shot.begin, &events);
  }

  // Serve: the initial run where every tracked player is (nearly) still.
  int64_t serve_end = 0;  // exclusive, local time
  while (serve_end < len && both_still[static_cast<size_t>(serve_end)]) {
    ++serve_end;
  }
  if (serve_end >= config_.min_serve_frames) {
    events.push_back(DetectedEvent{
        media::kEventServe, -1, FrameInterval{shot.begin, shot.begin + serve_end - 1}});
  }

  // Rally: the rest of the shot, if the players actually move.
  if (serve_end < len) {
    double total_speed = 0.0;
    int64_t n = 0;
    for (int64_t t = serve_end; t < len; ++t) {
      if (speed_counts[static_cast<size_t>(t)] > 0) {
        total_speed += mean_speed_accum[static_cast<size_t>(t)] /
                       speed_counts[static_cast<size_t>(t)];
        ++n;
      }
    }
    if (n > 0 && total_speed / static_cast<double>(n) >= config_.rally_min_mean_speed) {
      events.push_back(DetectedEvent{
          media::kEventRally, -1, FrameInterval{shot.begin + serve_end, shot.end}});
    }
  }
  return events;
}

double IntervalIou(const FrameInterval& a, const FrameInterval& b) {
  FrameInterval inter = a.Intersect(b);
  int64_t inter_len = inter.Length();
  int64_t union_len = a.Length() + b.Length() - inter_len;
  return union_len > 0
             ? static_cast<double>(inter_len) / static_cast<double>(union_len)
             : 0.0;
}

PrecisionRecall MatchEvents(const std::vector<NamedInterval>& truth,
                            const std::vector<NamedInterval>& detected,
                            double min_iou) {
  std::vector<bool> used(truth.size(), false);
  PrecisionRecall pr;
  for (const NamedInterval& det : detected) {
    double best_iou = min_iou;
    size_t best = truth.size();
    for (size_t i = 0; i < truth.size(); ++i) {
      if (used[i] || truth[i].name != det.name) continue;
      if (truth[i].player_id >= 0 && det.player_id >= 0 &&
          truth[i].player_id != det.player_id) {
        continue;
      }
      double iou = IntervalIou(truth[i].range, det.range);
      if (iou >= best_iou) {
        best_iou = iou;
        best = i;
      }
    }
    if (best < truth.size()) {
      used[best] = true;
      pr.true_positives++;
    } else {
      pr.false_positives++;
    }
  }
  for (bool u : used) {
    if (!u) pr.false_negatives++;
  }
  return pr;
}

}  // namespace cobra::detectors
