#pragma once

/// \file event_rules.h
/// Rule-based event detection: "players' positions and their transitions
/// over time are related to particular events (net-playing, rally, etc.)
/// using rules ... implemented as white- and black-box detectors within the
/// FDE" (paper §3). The rules are spatio-temporal predicates over the
/// tracked trajectories and the estimated court geometry.

#include <string>
#include <vector>

#include "detectors/player_tracker.h"
#include "util/stats.h"

namespace cobra::detectors {

/// An event instance inferred from the meta-data.
struct DetectedEvent {
  std::string name;    ///< media::kEvent* constant
  int player_id = -1;  ///< acting player, -1 = court-level
  FrameInterval range;
};

struct EventRuleConfig {
  /// Net zone: |y - net_y| below this fraction of the court height.
  double net_zone_fraction = 0.17;
  /// Baseline zone: distance from the net above this fraction of the
  /// half-court height.
  double baseline_zone_fraction = 0.60;
  int64_t min_net_play_frames = 8;
  int64_t min_baseline_frames = 20;
  /// Serve: both players slower than this (px/frame) from the shot start.
  double serve_speed_eps = 1.6;
  int64_t min_serve_frames = 5;
  /// Rally: mean lateral speed of the tracked players above this.
  double rally_min_mean_speed = 0.4;
};

/// Evaluates the spatio-temporal event rules over one shot's tracks.
class EventRuleEngine {
 public:
  explicit EventRuleEngine(EventRuleConfig config = {});

  /// Detects serve / rally / net_play / baseline_play in a tracked court
  /// shot. `shot` is the shot's frame interval in video time.
  std::vector<DetectedEvent> Detect(const TrackingResult& tracking,
                                    const FrameInterval& shot) const;

  const EventRuleConfig& config() const { return config_; }

 private:
  EventRuleConfig config_;
};

/// Interval-based event scoring: a detected event matches an unmatched truth
/// event with the same name (and player, unless either side is -1) whose
/// interval IoU is at least `min_iou`.
struct NamedInterval {
  std::string name;
  int player_id = -1;
  FrameInterval range;
};

PrecisionRecall MatchEvents(const std::vector<NamedInterval>& truth,
                            const std::vector<NamedInterval>& detected,
                            double min_iou = 0.3);

/// Temporal IoU of two frame intervals.
double IntervalIou(const FrameInterval& a, const FrameInterval& b);

}  // namespace cobra::detectors
