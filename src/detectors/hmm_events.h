#pragma once

/// \file hmm_events.h
/// Stochastic event recognition: quantizes tracked player state into
/// discrete observation symbols and decodes event states with an HMM —
/// COBRA's "stochastic recognition of events" (ref [2]), the black-box
/// counterpart of the white-box rules in event_rules.h.

#include <optional>
#include <vector>

#include "detectors/event_rules.h"
#include "detectors/hmm.h"
#include "detectors/player_tracker.h"
#include "media/ground_truth.h"
#include "util/status.h"

namespace cobra::detectors {

/// Hidden states of the tennis-point HMM.
enum HmmEventState : int {
  kStateServe = 0,
  kStateBaseline = 1,
  kStateApproach = 2,
  kStateNet = 3,
};
constexpr int kNumHmmStates = 4;

/// Observation symbols: court zone (baseline / mid / net) x motion
/// (still / moving) = 6 symbols.
constexpr int kNumHmmSymbols = 6;

struct HmmEncoderConfig {
  /// Net zone: distance to net below this fraction of court height.
  double net_zone_fraction = 0.17;
  /// Baseline zone: distance to net above this fraction of half height.
  double baseline_zone_fraction = 0.60;
  /// Moving if per-frame displacement exceeds this (px).
  double moving_speed = 1.2;
};

/// Encodes one player's track into per-frame observation symbols over the
/// local timeline of `shot`. Frames without an observation repeat the last
/// symbol (or the first available one at the start).
std::vector<int> EncodeTrackSymbols(const PlayerTrack& track,
                                    const CourtModel& court,
                                    const FrameInterval& shot,
                                    const HmmEncoderConfig& config = {});

/// Builds the ground-truth state labels for `player_id` on the local
/// timeline of `shot` from synthesizer truth (training data for the
/// supervised HMM estimate).
std::vector<int> BuildTruthStateSequence(const media::GroundTruth& truth,
                                         int player_id,
                                         const FrameInterval& shot);

/// HMM-based per-player event recognizer.
class HmmEventRecognizer {
 public:
  explicit HmmEventRecognizer(HmmEncoderConfig config = {});

  /// Supervised training from aligned (states, symbols) sequences.
  Status Train(const std::vector<std::vector<int>>& state_sequences,
               const std::vector<std::vector<int>>& symbol_sequences,
               double smoothing = 1.0);

  /// Optional unsupervised refinement (Baum-Welch) on unlabeled symbols.
  Status Refine(const std::vector<std::vector<int>>& symbol_sequences,
                int iterations);

  bool trained() const { return hmm_.has_value(); }
  const DiscreteHmm& hmm() const { return *hmm_; }

  /// Decodes the most likely state path for one track.
  Result<std::vector<int>> DecodeStates(const PlayerTrack& track,
                                        const CourtModel& court,
                                        const FrameInterval& shot) const;

  /// Full recognition: decode states, convert state runs to events
  /// (net_play / baseline_play per player; serve from the initial serve
  /// run).
  Result<std::vector<DetectedEvent>> Recognize(const PlayerTrack& track,
                                               const CourtModel& court,
                                               const FrameInterval& shot) const;

  const HmmEncoderConfig& config() const { return config_; }

 private:
  HmmEncoderConfig config_;
  std::optional<DiscreteHmm> hmm_;
};

}  // namespace cobra::detectors
