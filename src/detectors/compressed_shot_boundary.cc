#include "detectors/compressed_shot_boundary.h"

namespace cobra::detectors {

CompressedShotBoundaryDetector::CompressedShotBoundaryDetector(
    CompressedShotBoundaryConfig config)
    : config_(config) {}

std::vector<double> CompressedShotBoundaryDetector::Signal(
    const media::EncodedVideo& encoded) {
  std::vector<double> signal;
  signal.reserve(static_cast<size_t>(encoded.num_frames()));
  for (int64_t f = 0; f < encoded.num_frames(); ++f) {
    signal.push_back(encoded.Stats(f).intra_block_ratio);
  }
  return signal;
}

std::vector<int64_t> CompressedShotBoundaryDetector::Detect(
    const media::EncodedVideo& encoded) const {
  std::vector<double> signal = Signal(encoded);
  std::vector<int64_t> cuts;
  for (int64_t f = 1; f < static_cast<int64_t>(signal.size()); ++f) {
    if (signal[static_cast<size_t>(f)] < config_.intra_ratio_threshold) continue;
    if (!cuts.empty() && f - cuts.back() < config_.min_shot_frames) {
      if (signal[static_cast<size_t>(f)] >
          signal[static_cast<size_t>(cuts.back())]) {
        cuts.back() = f;
      }
      continue;
    }
    cuts.push_back(f);
  }
  return cuts;
}

}  // namespace cobra::detectors
