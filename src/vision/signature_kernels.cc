#include "vision/signature_kernels.h"

#include <bit>

// SIMD tiers exist only on x86-64 GCC/Clang builds with the COBRA_SIMD CMake
// option ON; everywhere else only the scalar tier is compiled and dispatch
// degenerates to it.
#if defined(COBRA_SIMD) && COBRA_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define COBRA_SIMD_X86 1
#include <immintrin.h>
#else
#define COBRA_SIMD_X86 0
#endif

namespace cobra::vision::signature_kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier. All-integer, so every tier is exact.
// ---------------------------------------------------------------------------

namespace scalar {

uint32_t Hamming256(const uint64_t* a, const uint64_t* b) {
  uint32_t d = 0;
  for (int w = 0; w < 4; ++w) {
    d += static_cast<uint32_t>(std::popcount(a[w] ^ b[w]));
  }
  return d;
}

void Hamming256Batch(const uint64_t* q, const uint8_t* base,
                     size_t stride_bytes, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t words[4];
    __builtin_memcpy(words, base + i * stride_bytes, sizeof(words));
    out[i] = Hamming256(q, words);
  }
}

uint32_t L2Sq32(const uint8_t* a, const uint8_t* b) {
  uint32_t s = 0;
  for (int i = 0; i < 32; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    s += static_cast<uint32_t>(d * d);
  }
  return s;
}

void L2Sq32Batch(const uint8_t* q, const uint8_t* base, size_t stride_bytes,
                 size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = L2Sq32(q, base + i * stride_bytes);
}

}  // namespace scalar

constexpr SignatureKernelOps kScalarOps = {
    scalar::Hamming256,
    scalar::Hamming256Batch,
    scalar::L2Sq32,
    scalar::L2Sq32Batch,
};

#if COBRA_SIMD_X86

// ---------------------------------------------------------------------------
// SSE4.1 (+POPCNT) tier: two 128-bit XOR lanes per hash, hardware popcount
// on the four 64-bit words; sketch distance via unpack-to-16-bit + pmaddwd.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("sse4.1,popcnt")

namespace sse41 {

uint32_t Hamming256(const uint64_t* a, const uint64_t* b) {
  const __m128i x0 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a)),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  const __m128i x1 = _mm_xor_si128(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2)),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 2)));
  const uint64_t c = static_cast<uint64_t>(_mm_popcnt_u64(
                         static_cast<uint64_t>(_mm_extract_epi64(x0, 0)))) +
                     static_cast<uint64_t>(_mm_popcnt_u64(
                         static_cast<uint64_t>(_mm_extract_epi64(x0, 1)))) +
                     static_cast<uint64_t>(_mm_popcnt_u64(
                         static_cast<uint64_t>(_mm_extract_epi64(x1, 0)))) +
                     static_cast<uint64_t>(_mm_popcnt_u64(
                         static_cast<uint64_t>(_mm_extract_epi64(x1, 1))));
  return static_cast<uint32_t>(c);
}

void Hamming256Batch(const uint64_t* q, const uint8_t* base,
                     size_t stride_bytes, size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Hamming256(q, reinterpret_cast<const uint64_t*>(
                               base + i * stride_bytes));
  }
}

// Sum of squared byte differences over one 16-byte lane, as a vector of
// four 32-bit partials: |a-b| via max-min (exact for unsigned bytes), widen
// to 16 bit, square-and-pair-sum with pmaddwd.
inline __m128i SqDiffLane(__m128i a, __m128i b) {
  const __m128i d = _mm_sub_epi8(_mm_max_epu8(a, b), _mm_min_epu8(a, b));
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo = _mm_unpacklo_epi8(d, zero);
  const __m128i hi = _mm_unpackhi_epi8(d, zero);
  return _mm_add_epi32(_mm_madd_epi16(lo, lo), _mm_madd_epi16(hi, hi));
}

uint32_t L2Sq32(const uint8_t* a, const uint8_t* b) {
  const __m128i s = _mm_add_epi32(
      SqDiffLane(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(b))),
      SqDiffLane(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 16)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16))));
  const __m128i t = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  return static_cast<uint32_t>(
      _mm_cvtsi128_si32(_mm_add_epi32(t, _mm_srli_si128(t, 4))));
}

void L2Sq32Batch(const uint8_t* q, const uint8_t* base, size_t stride_bytes,
                 size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = L2Sq32(q, base + i * stride_bytes);
}

}  // namespace sse41

#pragma GCC pop_options

// ---------------------------------------------------------------------------
// AVX2 tier: a whole 256-bit hash is one ymm register. Popcount is the
// pshufb nibble-LUT + psadbw reduction (AVX2 has no vector popcount), so
// this tier does not touch the POPCNT flag at all.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

namespace avx2 {

// Per-byte popcount of v via two nibble table lookups.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

uint32_t Hamming256(const uint64_t* a, const uint64_t* b) {
  const __m256i x = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)));
  // psadbw against zero sums each 8-byte group of byte counts into a u64.
  const __m256i sums =
      _mm256_sad_epu8(PopcountBytes(x), _mm256_setzero_si256());
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sums);
  return static_cast<uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

void Hamming256Batch(const uint64_t* q, const uint8_t* base,
                     size_t stride_bytes, size_t n, uint32_t* out) {
  const __m256i qv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q));
  const __m256i zero = _mm256_setzero_si256();
  for (size_t i = 0; i < n; ++i) {
    const __m256i x = _mm256_xor_si256(
        qv, _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(base + i * stride_bytes)));
    const __m256i sums = _mm256_sad_epu8(PopcountBytes(x), zero);
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), sums);
    out[i] = static_cast<uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  }
}

uint32_t L2Sq32(const uint8_t* a, const uint8_t* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i d =
      _mm256_sub_epi8(_mm256_max_epu8(va, vb), _mm256_min_epu8(va, vb));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i lo = _mm256_unpacklo_epi8(d, zero);
  const __m256i hi = _mm256_unpackhi_epi8(d, zero);
  const __m256i s =
      _mm256_add_epi32(_mm256_madd_epi16(lo, lo), _mm256_madd_epi16(hi, hi));
  const __m128i q =
      _mm_add_epi32(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
  const __m128i t = _mm_add_epi32(q, _mm_srli_si128(q, 8));
  return static_cast<uint32_t>(
      _mm_cvtsi128_si32(_mm_add_epi32(t, _mm_srli_si128(t, 4))));
}

void L2Sq32Batch(const uint8_t* q, const uint8_t* base, size_t stride_bytes,
                 size_t n, uint32_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = L2Sq32(q, base + i * stride_bytes);
}

}  // namespace avx2

#pragma GCC pop_options

constexpr SignatureKernelOps kSse41Ops = {
    sse41::Hamming256,
    sse41::Hamming256Batch,
    sse41::L2Sq32,
    sse41::L2Sq32Batch,
};

constexpr SignatureKernelOps kAvx2Ops = {
    avx2::Hamming256,
    avx2::Hamming256Batch,
    avx2::L2Sq32,
    avx2::L2Sq32Batch,
};

// True once the POPCNT CPUID flag has been probed (the SSE4.1 tier emits the
// popcnt instruction; the flag is not implied by SSE4.1 itself).
bool CpuHasPopcnt() {
  static const bool has = __builtin_cpu_supports("popcnt");
  return has;
}

#endif  // COBRA_SIMD_X86

}  // namespace

const SignatureKernelOps& ScalarOps() { return kScalarOps; }

SimdLevel BestSupportedLevel() {
#if COBRA_SIMD_X86
  const SimdLevel cpu = util::simd::CpuBestLevel();
  // AVX2 counts bits without POPCNT; the SSE4.1 tier needs the flag.
  if (cpu == SimdLevel::kSse41 && !CpuHasPopcnt()) return SimdLevel::kScalar;
  return cpu;
#else
  return SimdLevel::kScalar;
#endif
}

const SignatureKernelOps* OpsFor(SimdLevel level) {
  if (level == SimdLevel::kScalar) return &kScalarOps;
#if COBRA_SIMD_X86
  if (static_cast<int>(level) > static_cast<int>(util::simd::CpuBestLevel())) {
    return nullptr;
  }
  if (level == SimdLevel::kSse41) {
    return CpuHasPopcnt() ? &kSse41Ops : nullptr;
  }
  if (level == SimdLevel::kAvx2) return &kAvx2Ops;
#endif
  return nullptr;
}

SimdLevel ActiveLevel() {
  const int forced = util::simd::ForcedLevel();
  if (forced < 0) return BestSupportedLevel();
  // The shared cap may name a tier this library did not compile (or that
  // this CPU cannot popcount); clamp down.
  int clamped = forced;
  while (clamped > 0 && OpsFor(static_cast<SimdLevel>(clamped)) == nullptr) {
    --clamped;
  }
  return static_cast<SimdLevel>(clamped);
}

SimdLevel SetActiveLevel(SimdLevel level) {
  int clamped = static_cast<int>(level);
  while (clamped > 0 && OpsFor(static_cast<SimdLevel>(clamped)) == nullptr) {
    --clamped;
  }
  const SimdLevel previous = ActiveLevel();
  util::simd::SetForcedLevel(clamped);
  return previous;
}

const SignatureKernelOps& Ops() { return *OpsFor(ActiveLevel()); }

}  // namespace cobra::vision::signature_kernels
