#pragma once

/// \file signature.h
/// Compact perceptual shot signatures for query-by-example and
/// near-duplicate search (DESIGN.md §4j).
///
/// Each shot is summarized by its keyframe (the middle frame of the shot
/// interval) as:
///   * a 256-bit binary block hash — a 16×16 grid of luma cells, bit set
///     iff the cell's mean luma exceeds the frame's global mean. All
///     comparisons are integer cross-multiplications on the same LumaMilli
///     sums the gray-stats kernels accumulate, so extraction is exact and
///     platform-independent;
///   * a 32-dim quantized color sketch — 8 coarse RGB histogram bins
///     (2 per channel) plus a 24-bin luma histogram, each count quantized
///     to a byte as round(255·count/total).
///
/// The hash is robust to noise grades and mild photometric drift (cell
/// means move little); the sketch breaks ties among hash-close shots and
/// separates crops/letterboxes of *different* sources that happen to agree
/// on coarse structure. Distances (Hamming on the hash, squared L2 on the
/// sketch) live in vision/signature_kernels.h; the sublinear index over
/// them lives in engine/similarity.
///
/// SignatureRecord is the persistence unit: a trivially-copyable POD that
/// the segment format serializes verbatim and the ANN index reads in place
/// from mmap'd sections (zero-copy), so its layout is part of the on-disk
/// format — append new fields to the reserved tail only.

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/geometry.h"
#include "util/status.h"
#include "vision/frame_feature_cache.h"

namespace cobra::vision {

/// A shot's compact perceptual signature: 256-bit block hash (4×64-bit
/// words, bit (row·16+col) of the grid = word (i/64), bit (i%64)) plus the
/// 32-byte quantized color sketch.
struct ShotSignature {
  uint64_t hash[4] = {0, 0, 0, 0};
  uint8_t sketch[32] = {};
};

inline bool operator==(const ShotSignature& a, const ShotSignature& b) {
  return std::memcmp(&a, &b, sizeof(ShotSignature)) == 0;
}

/// One indexed shot: signature + identity. 96 bytes, trivially copyable;
/// serialized verbatim into the segment kSignatures section.
struct SignatureRecord {
  ShotSignature sig;
  int64_t video_id = -1;
  int64_t begin = 0;  ///< shot interval, inclusive (FrameInterval semantics)
  int64_t end = 0;
  int64_t reserved = 0;  ///< format headroom; must round-trip as written
};

static_assert(sizeof(ShotSignature) == 64, "signature layout is on-disk");
static_assert(sizeof(SignatureRecord) == 96, "record layout is on-disk");
static_assert(std::is_trivially_copyable_v<SignatureRecord>,
              "records are serialized/mmap'd verbatim");

/// Computes the signature of one frame. Pure and integer-exact: the same
/// pixels always produce the same signature on every platform and tier.
ShotSignature SignatureFromFrame(const media::Frame& frame);

/// Counters from one extraction pass. The cache hit/miss fields are the
/// *delta* observed on the shared FrameFeatureCache during this pass, so
/// benches can report how often signature extraction rode on frames other
/// detectors already decoded.
struct SignatureExtractionStats {
  int64_t shots = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double millis = 0.0;
};

/// Extracts one SignatureRecord per shot interval of `video_id`, reading
/// keyframes through `cache` (shared with the FDE detectors, so repeated
/// extraction and detection share decodes). Shots with an empty interval
/// or an out-of-range keyframe fail with OutOfRange.
Result<std::vector<SignatureRecord>> ExtractShotSignatures(
    FrameFeatureCache& cache, int64_t video_id,
    const std::vector<FrameInterval>& shots,
    SignatureExtractionStats* stats = nullptr);

}  // namespace cobra::vision
