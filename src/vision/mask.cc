#include "vision/mask.h"

#include <algorithm>
#include <deque>

namespace cobra::vision {

int64_t BinaryMask::Count() const {
  return static_cast<int64_t>(
      kernels::Ops().byte_sum(bits_.data(), bits_.size()));
}

RectI BinaryMask::BoundingBox() const {
  int min_x = width_, min_y = height_, max_x = -1, max_y = -1;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (At(x, y)) {
        min_x = std::min(min_x, x);
        min_y = std::min(min_y, y);
        max_x = std::max(max_x, x);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (max_x < 0) return RectI{};
  return RectI{min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
}

BinaryMask BinaryMask::Erode() const {
  BinaryMask out(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      bool all = true;
      for (int dy = -1; dy <= 1 && all; ++dy) {
        for (int dx = -1; dx <= 1 && all; ++dx) {
          int nx = x + dx, ny = y + dy;
          if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_ || !At(nx, ny)) {
            all = false;
          }
        }
      }
      out.Set(x, y, all);
    }
  }
  return out;
}

BinaryMask BinaryMask::Dilate() const {
  BinaryMask out(width_, height_);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      bool any = false;
      for (int dy = -1; dy <= 1 && !any; ++dy) {
        for (int dx = -1; dx <= 1 && !any; ++dx) {
          int nx = x + dx, ny = y + dy;
          if (nx >= 0 && nx < width_ && ny >= 0 && ny < height_ && At(nx, ny)) {
            any = true;
          }
        }
      }
      out.Set(x, y, any);
    }
  }
  return out;
}

BinaryMask BinaryMask::FromPredicate(
    const media::Frame& frame,
    const std::function<bool(const media::Rgb&)>& predicate) {
  return FromPredicate(frame, RectI{0, 0, frame.width(), frame.height()},
                       predicate);
}

BinaryMask BinaryMask::FromPredicate(
    const media::Frame& frame, const RectI& roi,
    const std::function<bool(const media::Rgb&)>& predicate) {
  BinaryMask out(frame.width(), frame.height());
  RectI r = roi.ClipTo(frame.width(), frame.height());
  for (int y = r.y; y < r.Bottom(); ++y) {
    for (int x = r.x; x < r.Right(); ++x) {
      if (predicate(frame.At(x, y))) out.Set(x, y, true);
    }
  }
  return out;
}

BinaryMask BinaryMask::FromColorBox(const media::Frame& frame,
                                    const RectI& roi,
                                    const kernels::ColorBox& box) {
  BinaryMask out(frame.width(), frame.height());
  RectI r = roi.ClipTo(frame.width(), frame.height());
  const kernels::KernelOps& ops = kernels::Ops();
  for (int y = r.y; y < r.Bottom(); ++y) {
    ops.classify_inside(frame.Row(y) + r.x, static_cast<size_t>(r.width), box,
                        out.bits_.data() + out.Index(r.x, y));
  }
  return out;
}

BinaryMask BinaryMask::FromOutsideColorBoxes(const media::Frame& frame,
                                             const RectI& roi,
                                             const kernels::ColorBox* boxes,
                                             size_t num_boxes) {
  BinaryMask out(frame.width(), frame.height());
  RectI r = roi.ClipTo(frame.width(), frame.height());
  const kernels::KernelOps& ops = kernels::Ops();
  for (int y = r.y; y < r.Bottom(); ++y) {
    ops.classify_outside(frame.Row(y) + r.x, static_cast<size_t>(r.width),
                         boxes, num_boxes, out.bits_.data() + out.Index(r.x, y));
  }
  return out;
}

std::vector<ConnectedComponent> LabelComponents(const BinaryMask& mask,
                                                int64_t min_area) {
  std::vector<ConnectedComponent> out;
  if (mask.Empty()) return out;
  std::vector<int> labels(
      static_cast<size_t>(mask.width()) * static_cast<size_t>(mask.height()), 0);
  auto idx = [&](int x, int y) {
    return static_cast<size_t>(y) * mask.width() + x;
  };
  int next_label = 0;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (!mask.At(x, y) || labels[idx(x, y)] != 0) continue;
      ++next_label;
      ConnectedComponent cc;
      cc.label = next_label;
      double sum_x = 0, sum_y = 0;
      std::deque<std::pair<int, int>> queue{{x, y}};
      labels[idx(x, y)] = next_label;
      RectI box{x, y, 1, 1};
      while (!queue.empty()) {
        auto [cx, cy] = queue.front();
        queue.pop_front();
        cc.pixels.emplace_back(cx, cy);
        cc.area++;
        sum_x += cx;
        sum_y += cy;
        box = box.Union(RectI{cx, cy, 1, 1});
        constexpr int kDx[] = {1, -1, 0, 0};
        constexpr int kDy[] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          int nx = cx + kDx[d], ny = cy + kDy[d];
          if (nx >= 0 && nx < mask.width() && ny >= 0 && ny < mask.height() &&
              mask.At(nx, ny) && labels[idx(nx, ny)] == 0) {
            labels[idx(nx, ny)] = next_label;
            queue.emplace_back(nx, ny);
          }
        }
      }
      cc.bbox = box;
      cc.centroid = PointD{sum_x / static_cast<double>(cc.area),
                           sum_y / static_cast<double>(cc.area)};
      if (cc.area >= min_area) out.push_back(std::move(cc));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ConnectedComponent& a, const ConnectedComponent& b) {
              return a.area > b.area;
            });
  return out;
}

}  // namespace cobra::vision
