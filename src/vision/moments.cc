#include "vision/moments.h"

#include <cmath>
#include <map>

namespace cobra::vision {

double RegionMoments::Orientation() const {
  if (m00 <= 0) return 0.0;
  return 0.5 * std::atan2(2.0 * mu11, mu20 - mu02);
}

double RegionMoments::Eccentricity() const {
  if (m00 <= 0) return 0.0;
  // Eigenvalues of the covariance matrix [[mu20, mu11], [mu11, mu02]] / m00.
  double a = mu20 / m00, b = mu11 / m00, c = mu02 / m00;
  double tr = a + c;
  double det_part = std::sqrt(std::max(0.0, (a - c) * (a - c) / 4.0 + b * b));
  double l1 = tr / 2.0 + det_part;  // major
  double l2 = tr / 2.0 - det_part;  // minor
  if (l1 <= 0) return 0.0;
  double ratio = std::max(0.0, l2) / l1;
  return std::sqrt(1.0 - ratio);
}

RegionMoments ComputeMoments(const std::vector<std::pair<int, int>>& pixels) {
  RegionMoments m;
  for (const auto& [x, y] : pixels) {
    m.m00 += 1.0;
    m.m10 += x;
    m.m01 += y;
  }
  if (m.m00 <= 0) return m;
  const double cx = m.m10 / m.m00;
  const double cy = m.m01 / m.m00;
  for (const auto& [x, y] : pixels) {
    const double dx = x - cx;
    const double dy = y - cy;
    m.mu20 += dx * dx;
    m.mu02 += dy * dy;
    m.mu11 += dx * dy;
  }
  return m;
}

RegionMoments ComputeMoments(const BinaryMask& mask) {
  std::vector<std::pair<int, int>> pixels;
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      if (mask.At(x, y)) pixels.emplace_back(x, y);
    }
  }
  return ComputeMoments(pixels);
}

ShapeFeatures ComputeShapeFeatures(const media::Frame& frame,
                                   const ConnectedComponent& component) {
  ShapeFeatures out;
  RegionMoments m = ComputeMoments(component.pixels);
  out.area = m.m00;
  out.mass_center = m.Centroid();
  out.bounding_box = component.bbox;
  out.orientation = m.Orientation();
  out.eccentricity = m.Eccentricity();

  // Dominant color: modal 32-level-quantized color among member pixels.
  std::map<uint32_t, int> counts;
  for (const auto& [x, y] : component.pixels) {
    const media::Rgb& p = frame.At(x, y);
    uint32_t key = (static_cast<uint32_t>(p.r / 32) << 16) |
                   (static_cast<uint32_t>(p.g / 32) << 8) |
                   static_cast<uint32_t>(p.b / 32);
    counts[key]++;
  }
  uint32_t best_key = 0;
  int best = -1;
  for (const auto& [key, count] : counts) {
    if (count > best) {
      best = count;
      best_key = key;
    }
  }
  if (best >= 0) {
    out.dominant_color =
        media::Rgb{static_cast<uint8_t>(((best_key >> 16) & 0xFF) * 32 + 16),
                   static_cast<uint8_t>(((best_key >> 8) & 0xFF) * 32 + 16),
                   static_cast<uint8_t>((best_key & 0xFF) * 32 + 16)};
  }
  return out;
}

}  // namespace cobra::vision
