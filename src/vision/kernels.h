#pragma once

/// \file kernels.h
/// Batch pixel kernels for the vision hot path, with runtime SIMD dispatch.
///
/// Every detector in the tennis pipeline — histogram differencing for shot
/// boundaries, dominant-color / skin-ratio shot classification, and
/// color-segmentation player tracking — bottoms out in per-pixel loops. This
/// layer replaces those loops with row-pointer batch kernels: each operates
/// on a contiguous `const media::Rgb*` span (see `Frame::Row`) and ships a
/// portable scalar reference plus SSE4.1 and AVX2 implementations selected
/// once at runtime via CPUID (`__builtin_cpu_supports`).
///
/// Exactness guarantees (see DESIGN.md §4d):
///  - Integer-accumulator kernels (histogram counts, box/skin classification
///    and counting, gray/luma sums, color-model sums, absolute differences,
///    byte sums) produce bit-identical results at every SIMD level: integer
///    addition is associative, so vector lane order does not matter, and the
///    ragged tails fall back to the same per-element operations.
///  - The double-precision distance kernels use a fixed 4-lane accumulation
///    tree at every level (element i is added into partial i mod 4; partials
///    combine as (s0+s1)+(s2+s3)), so scalar, SSE4.1, and AVX2 results are
///    bit-identical to each other as well.
///
/// Compile-time gating: the SIMD paths exist only when the `COBRA_SIMD`
/// CMake option is ON and the target is x86-64 GCC/Clang; otherwise only the
/// scalar tier is compiled and dispatch degenerates to it.

#include <cstddef>
#include <cstdint>

#include "media/color.h"
#include "util/simd.h"

namespace cobra::vision::kernels {

/// Instruction-set tiers, ordered. SSE4.1 is the baseline vector tier (the
/// RGB24 deinterleave needs SSSE3 pshufb and the bin math SSE4.1 pmulld, so
/// a pure-SSE2 tier would be byte-swizzle-bound and is not provided).
///
/// The enum and the forced-level override are process-wide state shared
/// with the other kernel layers (media DCT/dequant) through util/simd.h, so
/// `SetActiveLevel` caps every layer at once; this header re-exports them
/// under their historical names.
using util::simd::SimdLevel;
using util::simd::SimdLevelName;

/// BT.601 luma scaled by 1000 ("luma-milli"): 299 r + 587 g + 114 b.
/// Integer-exact; `LumaMilli(p) / 1000` is the 256-bin gray histogram bin
/// and `LumaMilli(p) / 1000.0` equals `Rgb::Luma()` up to one rounding.
inline uint32_t LumaMilli(media::Rgb p) {
  return 299u * p.r + 587u * p.g + 114u * p.b;
}

/// Inclusive per-channel byte bounds; the integer-exact form of a k-sigma
/// Gaussian color-model match (see GaussianColorModel::MatchBox) or any
/// axis-aligned RGB box test. Default-constructed boxes match nothing.
struct ColorBox {
  uint8_t lo[3] = {255, 255, 255};
  uint8_t hi[3] = {0, 0, 0};

  bool Contains(media::Rgb p) const {
    return p.r >= lo[0] && p.r <= hi[0] && p.g >= lo[1] && p.g <= hi[1] &&
           p.b >= lo[2] && p.b <= hi[2];
  }
};

/// Accumulated gray/luma statistics in the exact luma-milli domain.
/// `sum2_milli` holds squares of luma-milli values (<= 65 025 000 000 each),
/// so the uint64 accumulator is exact up to ~2.8e8 pixels — five orders of
/// magnitude beyond a full analysis-resolution video frame.
struct GraySums {
  uint64_t count = 0;
  uint64_t sum_milli = 0;   ///< sum of LumaMilli(p)
  uint64_t sum2_milli = 0;  ///< sum of LumaMilli(p)^2
  uint32_t hist[256] = {};  ///< 256-bin luma histogram (bin = LumaMilli/1000)
};

/// Accumulated per-channel sums for Gaussian color-model fitting.
struct ColorSums {
  uint64_t count = 0;
  uint64_t sum[3] = {};   ///< sum of r, g, b
  uint64_t sum2[3] = {};  ///< sum of r^2, g^2, b^2
};

/// One tier of batch kernels. All pixel spans are contiguous `Rgb` triples
/// (`Frame::Row` layout); all kernels accept n == 0.
struct KernelOps {
  /// (a) 3-D histogram binning: increments `bins` (size B^3, caller-zeroed
  /// or accumulated across calls) at ((r/w)*B + g/w)*B + b/w, w = 256/B.
  /// Requires B a divisor of 256 (hence a power of two).
  void (*histogram)(const media::Rgb* px, size_t n, int bins_per_channel,
                    uint32_t* bins);

  /// (b) Histogram distances over already-normalized double bins.
  double (*l1)(const double* a, const double* b, size_t n);
  double (*chi_square)(const double* a, const double* b, size_t n);
  /// Returns sum(min(a_i, b_i)); intersection distance is 1 - this.
  double (*intersection_sum)(const double* a, const double* b, size_t n);

  /// (c) Color classification against hoisted per-channel bounds.
  /// `out[i]` = 1 if px[i] is inside the box (respectively outside every one
  /// of the `num_boxes` boxes), else 0 — BinaryMask byte convention.
  void (*classify_inside)(const media::Rgb* px, size_t n, const ColorBox& box,
                          uint8_t* out);
  void (*classify_outside)(const media::Rgb* px, size_t n,
                           const ColorBox* boxes, size_t num_boxes,
                           uint8_t* out);
  uint64_t (*count_inside)(const media::Rgb* px, size_t n,
                           const ColorBox& box);
  /// Pixels satisfying media::IsSkinColor (integer-exact predicate).
  uint64_t (*count_skin)(const media::Rgb* px, size_t n);

  /// (d) Gray/luma statistics and color-model sums; accumulate into *sums.
  void (*gray_sums)(const media::Rgb* px, size_t n, GraySums* sums);
  void (*color_sums)(const media::Rgb* px, size_t n, ColorSums* sums);

  /// (e) Absolute frame differencing: sum over all channel bytes of
  /// |a - b|. Divide by 3n for mean absolute pixel difference.
  uint64_t (*abs_diff_sum)(const media::Rgb* a, const media::Rgb* b,
                           size_t n);
  /// Plain byte sum; counts set pixels of a BinaryMask's 0/1 bytes.
  uint64_t (*byte_sum)(const uint8_t* bytes, size_t n);
};

/// The portable scalar reference tier (always available).
const KernelOps& ScalarOps();

/// Ops table for `level`, or nullptr if that tier is compiled out or the
/// CPU lacks the instructions. `kScalar` never returns nullptr.
const KernelOps* OpsFor(SimdLevel level);

/// Highest tier available on this build + CPU (computed once).
SimdLevel BestSupportedLevel();

/// The tier `Ops()` currently dispatches to: `BestSupportedLevel()` unless
/// overridden by `SetActiveLevel`.
SimdLevel ActiveLevel();

/// Forces dispatch to (at most) `level`, clamping down to the nearest
/// available tier. Returns the previously active level. Intended for tests
/// and benches that compare tiers within one binary; not synchronized with
/// concurrent kernel users.
SimdLevel SetActiveLevel(SimdLevel level);

/// The active ops table. Hoist `const KernelOps& ops = Ops();` out of row
/// loops; the lookup is an atomic load but free is still better than cheap.
const KernelOps& Ops();

}  // namespace cobra::vision::kernels
