#pragma once

/// \file gray_stats.h
/// Gray-level (luma) statistics: mean, variance, Shannon entropy — the
/// "entropy characteristics, mean and variance" the paper's shot classifier
/// uses (§3).

#include "media/frame.h"
#include "util/geometry.h"

namespace cobra::vision {

struct GrayStats {
  double mean = 0.0;      ///< mean luma in [0, 255]
  double variance = 0.0;  ///< luma variance
  double entropy = 0.0;   ///< Shannon entropy of the 256-bin luma histogram, bits
};

/// Computes luma statistics over the whole frame.
GrayStats ComputeGrayStats(const media::Frame& frame);

/// Computes luma statistics over `rect` (clipped; empty region yields zeros).
GrayStats ComputeGrayStats(const media::Frame& frame, const RectI& rect);

/// Fraction of pixels in `frame` classified as skin-colored — the
/// close-up cue of the paper's classifier.
double SkinPixelRatio(const media::Frame& frame);

}  // namespace cobra::vision
