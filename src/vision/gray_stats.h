#pragma once

/// \file gray_stats.h
/// Gray-level (luma) statistics: mean, variance, Shannon entropy — the
/// "entropy characteristics, mean and variance" the paper's shot classifier
/// uses (§3).

#include "media/frame.h"
#include "util/geometry.h"

namespace cobra::vision {

struct GrayStats {
  double mean = 0.0;      ///< mean luma in [0, 255]
  double variance = 0.0;  ///< luma variance
  double entropy = 0.0;   ///< Shannon entropy of the 256-bin luma histogram, bits
};

/// Computes luma statistics over the whole frame.
GrayStats ComputeGrayStats(const media::Frame& frame);

/// Computes luma statistics over `rect` (clipped; empty region yields zeros).
GrayStats ComputeGrayStats(const media::Frame& frame, const RectI& rect);

/// Fraction of pixels in `frame` classified as skin-colored — the
/// close-up cue of the paper's classifier.
double SkinPixelRatio(const media::Frame& frame);

/// Mean absolute per-channel-byte difference between two same-sized frames
/// in [0, 255] (0 for empty or mismatched frames) — a cheap whole-frame
/// change measure built on the batch differencing kernel.
double MeanAbsFrameDifference(const media::Frame& a, const media::Frame& b);

}  // namespace cobra::vision
