#pragma once

/// \file histogram.h
/// Quantized color histograms and the distance measures the segment
/// detector uses to find shot boundaries ("differences in color histograms
/// of neighboring frames", paper §3).

#include <cstdint>
#include <vector>

#include "media/frame.h"
#include "util/status.h"

namespace cobra::vision {

/// Normalized RGB color histogram with `bins_per_channel`^3 bins.
class ColorHistogram {
 public:
  /// Builds the histogram of a whole frame. `bins_per_channel` must divide
  /// 256 evenly (2, 4, 8, 16, 32...); 8 (=512 bins) is the detector default.
  static Result<ColorHistogram> FromFrame(const media::Frame& frame,
                                          int bins_per_channel = 8);

  /// Builds the histogram of the pixels inside `rect` (clipped).
  static Result<ColorHistogram> FromRegion(const media::Frame& frame,
                                           const RectI& rect,
                                           int bins_per_channel = 8);

  int bins_per_channel() const { return bins_per_channel_; }
  size_t NumBins() const { return values_.size(); }

  /// Normalized mass in one bin.
  double At(size_t bin) const { return values_[bin]; }

  /// Index of the fullest bin.
  size_t ModalBin() const;

  /// Fraction of pixels in the modal bin — the "dominant color" ratio used
  /// by the court-shot classifier.
  double DominantRatio() const;

  /// Center color of a bin (for reporting the dominant color).
  media::Rgb BinCenter(size_t bin) const;

  /// L1 distance in [0, 2].
  double L1Distance(const ColorHistogram& other) const;
  /// Chi-square distance.
  double ChiSquareDistance(const ColorHistogram& other) const;
  /// 1 - histogram intersection, in [0, 1].
  double IntersectionDistance(const ColorHistogram& other) const;

  const std::vector<double>& values() const { return values_; }

 private:
  ColorHistogram(int bins_per_channel, std::vector<double> values)
      : bins_per_channel_(bins_per_channel), values_(std::move(values)) {}

  int bins_per_channel_ = 8;
  std::vector<double> values_;
};

/// The histogram distance to use for frame differencing.
enum class HistogramDistance { kL1, kChiSquare, kIntersection };

const char* HistogramDistanceToString(HistogramDistance d);

/// Dispatches to the chosen distance.
double Distance(const ColorHistogram& a, const ColorHistogram& b,
                HistogramDistance metric);

}  // namespace cobra::vision
