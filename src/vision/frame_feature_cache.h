#pragma once

/// \file frame_feature_cache.h
/// `FrameFeatureCache`: memoizes per-frame artifacts that several detectors
/// recompute from the same video — decoded (and downsampled) frames, color
/// histograms, skin-pixel ratios and gray-level statistics. Shared across
/// the whole FDE run through `DetectionContext`, so the shot-boundary
/// detector's two histogram passes, the shot classifier and the player
/// tracker all hit the same entries.
///
/// Thread-safe: lookups may race, in which case both threads compute the
/// same (pure) value and one insert wins — results never depend on the
/// interleaving. Entries are evicted LRU under a byte budget; values are
/// handed out as shared_ptr so eviction never invalidates a value in use.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "media/frame.h"
#include "media/video.h"
#include "util/status.h"
#include "vision/gray_stats.h"
#include "vision/histogram.h"

namespace cobra::vision {

struct FrameFeatureCacheConfig {
  /// Total budget for cached pixel + histogram bytes. 0 disables caching
  /// entirely (every call recomputes).
  size_t cache_bytes = size_t{64} << 20;
};

class FrameFeatureCache {
 public:
  /// The cache is bound to one video: keys are frame indices into it.
  explicit FrameFeatureCache(const media::VideoSource& video,
                             FrameFeatureCacheConfig config = {});

  const media::VideoSource& video() const { return video_; }

  /// Frame `index`, box-downsampled by `downsample` (1 = full resolution).
  Result<std::shared_ptr<const media::Frame>> GetFrame(int64_t index,
                                                       int downsample);

  /// Color histogram of frame `index` downsampled by `downsample`, with
  /// `bins_per_channel` bins.
  Result<std::shared_ptr<const ColorHistogram>> GetHistogram(
      int64_t index, int downsample, int bins_per_channel);

  /// Fraction of skin-colored pixels of the full-resolution frame.
  Result<double> GetSkinRatio(int64_t index);

  /// Gray-level mean / variance / entropy of the full-resolution frame.
  Result<GrayStats> GetGrayStats(int64_t index);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t bytes = 0;  ///< currently cached
  };
  Stats stats() const;

  /// Drops every entry (stat counters are kept).
  void Clear();

 private:
  /// One key per (artifact kind, frame, parameters).
  struct Key {
    enum class Kind { kFrame, kHistogram, kSkinRatio, kGrayStats };
    Kind kind;
    int64_t frame = 0;
    int downsample = 1;
    int bins = 0;
    bool operator<(const Key& other) const;
  };

  struct Entry {
    std::shared_ptr<const media::Frame> frame;
    std::shared_ptr<const ColorHistogram> histogram;
    double scalar = 0.0;
    GrayStats gray;
    size_t bytes = 0;
    std::list<Key>::iterator lru_pos;
  };

  /// Returns the cached entry for `key` (bumping LRU) or nullptr.
  Entry* Lookup(const Key& key);
  /// Inserts `entry` under `key`, evicting LRU entries over budget.
  void Insert(const Key& key, Entry entry);

  const media::VideoSource& video_;
  FrameFeatureCacheConfig config_;

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< front = most recent
  Stats stats_;
};

}  // namespace cobra::vision
