#include "vision/gray_stats.h"

#include <cmath>

#include "vision/kernels.h"

namespace cobra::vision {

GrayStats ComputeGrayStats(const media::Frame& frame) {
  return ComputeGrayStats(frame, RectI{0, 0, frame.width(), frame.height()});
}

GrayStats ComputeGrayStats(const media::Frame& frame, const RectI& rect) {
  GrayStats out;
  RectI r = rect.ClipTo(frame.width(), frame.height());
  if (r.Empty()) return out;

  // Accumulate in the exact luma-milli integer domain (batch kernel,
  // SIMD-dispatched; identical at every SIMD level) and convert to floating
  // point once at the end.
  kernels::GraySums sums;
  const kernels::KernelOps& ops = kernels::Ops();
  if (r.width == frame.width()) {
    ops.gray_sums(frame.Row(r.y), static_cast<size_t>(r.Area()), &sums);
  } else {
    for (int y = r.y; y < r.Bottom(); ++y) {
      ops.gray_sums(frame.Row(y) + r.x, static_cast<size_t>(r.width), &sums);
    }
  }

  const double n = static_cast<double>(r.Area());
  out.mean = static_cast<double>(sums.sum_milli) / (1000.0 * n);
  out.variance = static_cast<double>(sums.sum2_milli) / (1.0e6 * n) -
                 out.mean * out.mean;
  for (uint32_t count : sums.hist) {
    if (count > 0) {
      double p = static_cast<double>(count) / n;
      out.entropy -= p * std::log2(p);
    }
  }
  return out;
}

double SkinPixelRatio(const media::Frame& frame) {
  if (frame.Empty()) return 0.0;
  const uint64_t skin = kernels::Ops().count_skin(
      frame.Row(0), static_cast<size_t>(frame.PixelCount()));
  return static_cast<double>(skin) / static_cast<double>(frame.PixelCount());
}

double MeanAbsFrameDifference(const media::Frame& a, const media::Frame& b) {
  if (a.Empty() || !a.SameSizeAs(b)) return 0.0;
  const uint64_t sum = kernels::Ops().abs_diff_sum(
      a.Row(0), b.Row(0), static_cast<size_t>(a.PixelCount()));
  return static_cast<double>(sum) /
         static_cast<double>(3 * a.PixelCount());
}

}  // namespace cobra::vision
