#include "vision/gray_stats.h"

#include <array>
#include <cmath>

namespace cobra::vision {

GrayStats ComputeGrayStats(const media::Frame& frame) {
  return ComputeGrayStats(frame, RectI{0, 0, frame.width(), frame.height()});
}

GrayStats ComputeGrayStats(const media::Frame& frame, const RectI& rect) {
  GrayStats out;
  RectI r = rect.ClipTo(frame.width(), frame.height());
  if (r.Empty()) return out;

  std::array<int64_t, 256> hist{};
  double sum = 0.0, sum2 = 0.0;
  for (int y = r.y; y < r.Bottom(); ++y) {
    for (int x = r.x; x < r.Right(); ++x) {
      double luma = frame.At(x, y).Luma();
      sum += luma;
      sum2 += luma * luma;
      hist[static_cast<size_t>(luma)]++;
    }
  }
  const double n = static_cast<double>(r.Area());
  out.mean = sum / n;
  out.variance = sum2 / n - out.mean * out.mean;
  for (int64_t count : hist) {
    if (count > 0) {
      double p = static_cast<double>(count) / n;
      out.entropy -= p * std::log2(p);
    }
  }
  return out;
}

double SkinPixelRatio(const media::Frame& frame) {
  if (frame.Empty()) return 0.0;
  int64_t skin = 0;
  for (const media::Rgb& p : frame.pixels()) {
    if (media::IsSkinColor(p)) ++skin;
  }
  return static_cast<double>(skin) / static_cast<double>(frame.PixelCount());
}

}  // namespace cobra::vision
