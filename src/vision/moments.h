#pragma once

/// \file moments.h
/// Image moments and derived shape features — the "standard shape features
/// such as the mass center, the area, the bounding box, the orientation and
/// the eccentricity" the tennis detector extracts (paper §3).

#include <vector>

#include "media/frame.h"
#include "vision/mask.h"

namespace cobra::vision {

/// Raw and central moments of a pixel region.
struct RegionMoments {
  double m00 = 0.0;  ///< area
  double m10 = 0.0;
  double m01 = 0.0;
  double mu20 = 0.0;  ///< central second moments
  double mu02 = 0.0;
  double mu11 = 0.0;

  PointD Centroid() const {
    return m00 > 0 ? PointD{m10 / m00, m01 / m00} : PointD{};
  }

  /// Major-axis orientation in radians, in (-pi/2, pi/2]; measured from the
  /// x axis, y pointing down.
  double Orientation() const;

  /// Eccentricity in [0, 1): 0 for a circle, -> 1 for a line segment.
  double Eccentricity() const;
};

/// Moments of a connected component's pixel list.
RegionMoments ComputeMoments(const std::vector<std::pair<int, int>>& pixels);

/// Moments of all set pixels of a mask.
RegionMoments ComputeMoments(const BinaryMask& mask);

/// The complete per-region feature record stored in the COBRA feature
/// layer for a tracked player.
struct ShapeFeatures {
  double area = 0.0;
  PointD mass_center;
  RectI bounding_box;
  double orientation = 0.0;   ///< radians
  double eccentricity = 0.0;
  media::Rgb dominant_color;  ///< modal quantized color of the region
};

/// Extracts shape features for a component of `frame`.
ShapeFeatures ComputeShapeFeatures(const media::Frame& frame,
                                   const ConnectedComponent& component);

}  // namespace cobra::vision
