#include "vision/frame_feature_cache.h"

#include <tuple>
#include <utility>

namespace cobra::vision {

namespace {
/// Fixed bookkeeping charge per entry (key + node + control block).
constexpr size_t kEntryOverhead = 128;
}  // namespace

bool FrameFeatureCache::Key::operator<(const Key& other) const {
  return std::tie(kind, frame, downsample, bins) <
         std::tie(other.kind, other.frame, other.downsample, other.bins);
}

FrameFeatureCache::FrameFeatureCache(const media::VideoSource& video,
                                     FrameFeatureCacheConfig config)
    : video_(video), config_(config) {}

FrameFeatureCache::Entry* FrameFeatureCache::Lookup(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return &it->second;
}

void FrameFeatureCache::Insert(const Key& key, Entry entry) {
  entry.bytes += kEntryOverhead;
  if (entry.bytes > config_.cache_bytes) return;  // would never fit
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  if (!inserted) return;  // a concurrent computation beat us; keep theirs
  lru_.push_front(key);
  it->second.lru_pos = lru_.begin();
  stats_.bytes += it->second.bytes;
  while (stats_.bytes > config_.cache_bytes && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    stats_.bytes -= victim->second.bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Result<std::shared_ptr<const media::Frame>> FrameFeatureCache::GetFrame(
    int64_t index, int downsample) {
  const Key key{Key::Kind::kFrame, index, downsample, 0};
  if (config_.cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* entry = Lookup(key)) return entry->frame;
  }
  COBRA_ASSIGN_OR_RETURN(media::Frame frame, video_.GetFrame(index));
  if (downsample > 1) {
    COBRA_ASSIGN_OR_RETURN(frame, frame.Downsample(downsample));
  }
  auto shared = std::make_shared<const media::Frame>(std::move(frame));
  if (config_.cache_bytes > 0) {
    Entry entry;
    entry.frame = shared;
    entry.bytes =
        static_cast<size_t>(shared->PixelCount()) * sizeof(media::Rgb);
    std::lock_guard<std::mutex> lock(mutex_);
    Insert(key, std::move(entry));
  }
  return shared;
}

Result<std::shared_ptr<const ColorHistogram>> FrameFeatureCache::GetHistogram(
    int64_t index, int downsample, int bins_per_channel) {
  const Key key{Key::Kind::kHistogram, index, downsample, bins_per_channel};
  if (config_.cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* entry = Lookup(key)) return entry->histogram;
  }
  COBRA_ASSIGN_OR_RETURN(std::shared_ptr<const media::Frame> frame,
                         GetFrame(index, downsample));
  COBRA_ASSIGN_OR_RETURN(ColorHistogram histogram,
                         ColorHistogram::FromFrame(*frame, bins_per_channel));
  auto shared = std::make_shared<const ColorHistogram>(std::move(histogram));
  if (config_.cache_bytes > 0) {
    Entry entry;
    entry.histogram = shared;
    entry.bytes = shared->NumBins() * sizeof(double);
    std::lock_guard<std::mutex> lock(mutex_);
    Insert(key, std::move(entry));
  }
  return shared;
}

Result<double> FrameFeatureCache::GetSkinRatio(int64_t index) {
  const Key key{Key::Kind::kSkinRatio, index, 1, 0};
  if (config_.cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* entry = Lookup(key)) return entry->scalar;
  }
  COBRA_ASSIGN_OR_RETURN(std::shared_ptr<const media::Frame> frame,
                         GetFrame(index, 1));
  const double ratio = SkinPixelRatio(*frame);
  if (config_.cache_bytes > 0) {
    Entry entry;
    entry.scalar = ratio;
    std::lock_guard<std::mutex> lock(mutex_);
    Insert(key, std::move(entry));
  }
  return ratio;
}

Result<GrayStats> FrameFeatureCache::GetGrayStats(int64_t index) {
  const Key key{Key::Kind::kGrayStats, index, 1, 0};
  if (config_.cache_bytes > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* entry = Lookup(key)) return entry->gray;
  }
  COBRA_ASSIGN_OR_RETURN(std::shared_ptr<const media::Frame> frame,
                         GetFrame(index, 1));
  const GrayStats stats = ComputeGrayStats(*frame);
  if (config_.cache_bytes > 0) {
    Entry entry;
    entry.gray = stats;
    std::lock_guard<std::mutex> lock(mutex_);
    Insert(key, std::move(entry));
  }
  return stats;
}

FrameFeatureCache::Stats FrameFeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FrameFeatureCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
}

}  // namespace cobra::vision
