#pragma once

/// \file mask.h
/// Binary pixel masks and simple morphology, used by the player
/// segmentation step of the tennis detector.

#include <cstdint>
#include <functional>
#include <vector>

#include "media/frame.h"
#include "util/geometry.h"
#include "vision/kernels.h"

namespace cobra::vision {

/// A width x height binary raster.
class BinaryMask {
 public:
  BinaryMask() = default;
  BinaryMask(int width, int height)
      : width_(width),
        height_(height),
        bits_(static_cast<size_t>(width) * static_cast<size_t>(height), 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  bool Empty() const { return width_ == 0 || height_ == 0; }

  bool At(int x, int y) const { return bits_[Index(x, y)] != 0; }
  void Set(int x, int y, bool v) { bits_[Index(x, y)] = v ? 1 : 0; }

  /// Number of set pixels.
  int64_t Count() const;

  /// Tight bounding box of set pixels (empty rect if none).
  RectI BoundingBox() const;

  /// 3x3 box erosion (8-neighborhood).
  BinaryMask Erode() const;
  /// 3x3 box dilation (8-neighborhood).
  BinaryMask Dilate() const;
  /// Erode-then-dilate; removes isolated noise pixels.
  BinaryMask Open() const { return Erode().Dilate(); }
  /// Dilate-then-erode; fills small holes.
  BinaryMask Close() const { return Dilate().Erode(); }

  /// Builds a mask by applying `predicate` to every pixel of `frame`,
  /// optionally restricted to `roi` (pixels outside stay 0).
  static BinaryMask FromPredicate(
      const media::Frame& frame,
      const std::function<bool(const media::Rgb&)>& predicate);
  static BinaryMask FromPredicate(
      const media::Frame& frame, const RectI& roi,
      const std::function<bool(const media::Rgb&)>& predicate);

  /// Builds the mask of pixels inside `box` within `roi` (clipped; pixels
  /// outside stay 0). Batch-kernel fast path for color-model match tests
  /// (see GaussianColorModel::MatchBox); equivalent to FromPredicate with
  /// `box.Contains` but runs SIMD-wide.
  static BinaryMask FromColorBox(const media::Frame& frame, const RectI& roi,
                                 const kernels::ColorBox& box);

  /// Builds the mask of pixels belonging to NONE of `boxes` within `roi` —
  /// the foreground-extraction shape the player tracker uses.
  static BinaryMask FromOutsideColorBoxes(const media::Frame& frame,
                                          const RectI& roi,
                                          const kernels::ColorBox* boxes,
                                          size_t num_boxes);

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) +
           static_cast<size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> bits_;
};

/// A 4-connected component of set pixels.
struct ConnectedComponent {
  int label = 0;
  int64_t area = 0;
  RectI bbox;
  PointD centroid;
  std::vector<std::pair<int, int>> pixels;  ///< (x, y) members
};

/// Labels 4-connected components; returns them sorted by decreasing area.
/// Components smaller than `min_area` are dropped.
std::vector<ConnectedComponent> LabelComponents(const BinaryMask& mask,
                                                int64_t min_area = 1);

}  // namespace cobra::vision
