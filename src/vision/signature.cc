#include "vision/signature.h"

#include <chrono>

#include "vision/kernels.h"

namespace cobra::vision {

namespace {

constexpr int kGrid = 16;  // 16×16 luma cells -> 256 hash bits

}  // namespace

ShotSignature SignatureFromFrame(const media::Frame& frame) {
  ShotSignature sig;
  const int w = frame.width();
  const int h = frame.height();
  const int64_t total = frame.PixelCount();
  if (total == 0) return sig;

  // One pass over the pixels: per-cell luma sums + counts for the block
  // hash, coarse RGB and luma histograms for the sketch. All integer.
  uint64_t cell_sum[kGrid * kGrid] = {};
  uint32_t cell_count[kGrid * kGrid] = {};
  uint64_t total_sum = 0;
  uint32_t rgb_hist[8] = {};
  uint32_t luma_hist[24] = {};
  for (int y = 0; y < h; ++y) {
    const media::Rgb* row = frame.Row(y);
    const int cy = y * kGrid / h;
    for (int x = 0; x < w; ++x) {
      const media::Rgb p = row[x];
      const uint32_t lm = kernels::LumaMilli(p);
      cell_sum[cy * kGrid + x * kGrid / w] += lm;
      ++cell_count[cy * kGrid + x * kGrid / w];
      total_sum += lm;
      ++rgb_hist[((p.r >> 7) << 2) | ((p.g >> 7) << 1) | (p.b >> 7)];
      ++luma_hist[(lm / 1000) * 24 >> 8];
    }
  }

  // bit i set iff cell mean > frame mean: cell_sum/cell_count >
  // total_sum/total, cross-multiplied to stay in integers. Empty cells
  // (frames narrower than the grid) compare 0 > 0 and stay clear.
  for (int i = 0; i < kGrid * kGrid; ++i) {
    const bool set =
        static_cast<unsigned __int128>(cell_sum[i]) *
            static_cast<unsigned __int128>(total) >
        static_cast<unsigned __int128>(total_sum) *
            static_cast<unsigned __int128>(cell_count[i]);
    if (set) sig.hash[i / 64] |= uint64_t{1} << (i % 64);
  }

  // Sketch bytes: round(255 * count / total), exact in 64-bit integers.
  const auto quantize = [total](uint32_t count) {
    return static_cast<uint8_t>(
        (uint64_t{count} * 255 + static_cast<uint64_t>(total) / 2) /
        static_cast<uint64_t>(total));
  };
  for (int i = 0; i < 8; ++i) sig.sketch[i] = quantize(rgb_hist[i]);
  for (int i = 0; i < 24; ++i) sig.sketch[8 + i] = quantize(luma_hist[i]);
  return sig;
}

Result<std::vector<SignatureRecord>> ExtractShotSignatures(
    FrameFeatureCache& cache, int64_t video_id,
    const std::vector<FrameInterval>& shots, SignatureExtractionStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const FrameFeatureCache::Stats before = cache.stats();
  std::vector<SignatureRecord> records;
  records.reserve(shots.size());
  for (const FrameInterval& shot : shots) {
    if (shot.Empty()) {
      return Status::OutOfRange("empty shot interval for signature");
    }
    const int64_t keyframe = shot.begin + (shot.end - shot.begin) / 2;
    COBRA_ASSIGN_OR_RETURN(auto frame, cache.GetFrame(keyframe, 1));
    SignatureRecord rec;
    rec.sig = SignatureFromFrame(*frame);
    rec.video_id = video_id;
    rec.begin = shot.begin;
    rec.end = shot.end;
    records.push_back(rec);
  }
  if (stats != nullptr) {
    const FrameFeatureCache::Stats after = cache.stats();
    stats->shots += static_cast<int64_t>(shots.size());
    stats->cache_hits += after.hits - before.hits;
    stats->cache_misses += after.misses - before.misses;
    stats->millis += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }
  return records;
}

}  // namespace cobra::vision
