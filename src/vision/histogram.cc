#include "vision/histogram.h"

#include <algorithm>

#include "util/strings.h"
#include "vision/kernels.h"

namespace cobra::vision {

namespace {

Status ValidateBins(int bins_per_channel) {
  if (bins_per_channel < 2 || bins_per_channel > 256 ||
      256 % bins_per_channel != 0) {
    return Status::InvalidArgument(
        StringFormat("bins_per_channel must divide 256, got %d",
                     bins_per_channel));
  }
  return Status::OK();
}

}  // namespace

Result<ColorHistogram> ColorHistogram::FromFrame(const media::Frame& frame,
                                                 int bins_per_channel) {
  return FromRegion(frame, RectI{0, 0, frame.width(), frame.height()},
                    bins_per_channel);
}

Result<ColorHistogram> ColorHistogram::FromRegion(const media::Frame& frame,
                                                  const RectI& rect,
                                                  int bins_per_channel) {
  COBRA_RETURN_NOT_OK(ValidateBins(bins_per_channel));
  RectI r = rect.ClipTo(frame.width(), frame.height());
  if (r.Empty()) {
    return Status::InvalidArgument("histogram region is empty");
  }
  // Bin in exact uint32 counts (batch kernel, SIMD-dispatched) and normalize
  // once at the end; the old per-pixel `+= 1.0` double accumulation is both
  // slower and drifts for large regions.
  const size_t num_bins = static_cast<size_t>(bins_per_channel) *
                          bins_per_channel * bins_per_channel;
  std::vector<uint32_t> counts(num_bins, 0);
  const kernels::KernelOps& ops = kernels::Ops();
  if (r.width == frame.width()) {
    // Full-width region: rows are contiguous (Frame::Row contract), so the
    // whole region is one span.
    ops.histogram(frame.Row(r.y), static_cast<size_t>(r.Area()),
                  bins_per_channel, counts.data());
  } else {
    for (int y = r.y; y < r.Bottom(); ++y) {
      ops.histogram(frame.Row(y) + r.x, static_cast<size_t>(r.width),
                    bins_per_channel, counts.data());
    }
  }
  std::vector<double> values(num_bins);
  const double total = static_cast<double>(r.Area());
  for (size_t i = 0; i < num_bins; ++i) values[i] = counts[i] / total;
  return ColorHistogram(bins_per_channel, std::move(values));
}

size_t ColorHistogram::ModalBin() const {
  return static_cast<size_t>(
      std::max_element(values_.begin(), values_.end()) - values_.begin());
}

double ColorHistogram::DominantRatio() const { return values_[ModalBin()]; }

media::Rgb ColorHistogram::BinCenter(size_t bin) const {
  const int n = bins_per_channel_;
  const int width = 256 / n;
  int b = static_cast<int>(bin % n);
  int g = static_cast<int>((bin / n) % n);
  int r = static_cast<int>(bin / (static_cast<size_t>(n) * n));
  auto center = [width](int idx) {
    return static_cast<uint8_t>(idx * width + width / 2);
  };
  return media::Rgb{center(r), center(g), center(b)};
}

double ColorHistogram::L1Distance(const ColorHistogram& other) const {
  return kernels::Ops().l1(values_.data(), other.values_.data(),
                           values_.size());
}

double ColorHistogram::ChiSquareDistance(const ColorHistogram& other) const {
  return kernels::Ops().chi_square(values_.data(), other.values_.data(),
                                   values_.size());
}

double ColorHistogram::IntersectionDistance(const ColorHistogram& other) const {
  return 1.0 - kernels::Ops().intersection_sum(
                   values_.data(), other.values_.data(), values_.size());
}

const char* HistogramDistanceToString(HistogramDistance d) {
  switch (d) {
    case HistogramDistance::kL1:
      return "L1";
    case HistogramDistance::kChiSquare:
      return "chi-square";
    case HistogramDistance::kIntersection:
      return "intersection";
  }
  return "unknown";
}

double Distance(const ColorHistogram& a, const ColorHistogram& b,
                HistogramDistance metric) {
  switch (metric) {
    case HistogramDistance::kL1:
      return a.L1Distance(b);
    case HistogramDistance::kChiSquare:
      return a.ChiSquareDistance(b);
    case HistogramDistance::kIntersection:
      return a.IntersectionDistance(b);
  }
  return 0.0;
}

}  // namespace cobra::vision
