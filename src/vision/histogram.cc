#include "vision/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace cobra::vision {

namespace {

Status ValidateBins(int bins_per_channel) {
  if (bins_per_channel < 2 || bins_per_channel > 256 ||
      256 % bins_per_channel != 0) {
    return Status::InvalidArgument(
        StringFormat("bins_per_channel must divide 256, got %d",
                     bins_per_channel));
  }
  return Status::OK();
}

}  // namespace

Result<ColorHistogram> ColorHistogram::FromFrame(const media::Frame& frame,
                                                 int bins_per_channel) {
  return FromRegion(frame, RectI{0, 0, frame.width(), frame.height()},
                    bins_per_channel);
}

Result<ColorHistogram> ColorHistogram::FromRegion(const media::Frame& frame,
                                                  const RectI& rect,
                                                  int bins_per_channel) {
  COBRA_RETURN_NOT_OK(ValidateBins(bins_per_channel));
  RectI r = rect.ClipTo(frame.width(), frame.height());
  if (r.Empty()) {
    return Status::InvalidArgument("histogram region is empty");
  }
  const int shift_div = 256 / bins_per_channel;
  std::vector<double> values(
      static_cast<size_t>(bins_per_channel) * bins_per_channel * bins_per_channel,
      0.0);
  for (int y = r.y; y < r.Bottom(); ++y) {
    for (int x = r.x; x < r.Right(); ++x) {
      const media::Rgb& p = frame.At(x, y);
      size_t bin = (static_cast<size_t>(p.r / shift_div) * bins_per_channel +
                    p.g / shift_div) *
                       bins_per_channel +
                   p.b / shift_div;
      values[bin] += 1.0;
    }
  }
  const double total = static_cast<double>(r.Area());
  for (double& v : values) v /= total;
  return ColorHistogram(bins_per_channel, std::move(values));
}

size_t ColorHistogram::ModalBin() const {
  return static_cast<size_t>(
      std::max_element(values_.begin(), values_.end()) - values_.begin());
}

double ColorHistogram::DominantRatio() const { return values_[ModalBin()]; }

media::Rgb ColorHistogram::BinCenter(size_t bin) const {
  const int n = bins_per_channel_;
  const int width = 256 / n;
  int b = static_cast<int>(bin % n);
  int g = static_cast<int>((bin / n) % n);
  int r = static_cast<int>(bin / (static_cast<size_t>(n) * n));
  auto center = [width](int idx) {
    return static_cast<uint8_t>(idx * width + width / 2);
  };
  return media::Rgb{center(r), center(g), center(b)};
}

double ColorHistogram::L1Distance(const ColorHistogram& other) const {
  double d = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    d += std::fabs(values_[i] - other.values_[i]);
  }
  return d;
}

double ColorHistogram::ChiSquareDistance(const ColorHistogram& other) const {
  double d = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    double sum = values_[i] + other.values_[i];
    if (sum > 0) {
      double diff = values_[i] - other.values_[i];
      d += diff * diff / sum;
    }
  }
  return d;
}

double ColorHistogram::IntersectionDistance(const ColorHistogram& other) const {
  double inter = 0.0;
  for (size_t i = 0; i < values_.size(); ++i) {
    inter += std::min(values_[i], other.values_[i]);
  }
  return 1.0 - inter;
}

const char* HistogramDistanceToString(HistogramDistance d) {
  switch (d) {
    case HistogramDistance::kL1:
      return "L1";
    case HistogramDistance::kChiSquare:
      return "chi-square";
    case HistogramDistance::kIntersection:
      return "intersection";
  }
  return "unknown";
}

double Distance(const ColorHistogram& a, const ColorHistogram& b,
                HistogramDistance metric) {
  switch (metric) {
    case HistogramDistance::kL1:
      return a.L1Distance(b);
    case HistogramDistance::kChiSquare:
      return a.ChiSquareDistance(b);
    case HistogramDistance::kIntersection:
      return a.IntersectionDistance(b);
  }
  return 0.0;
}

}  // namespace cobra::vision
