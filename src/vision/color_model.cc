#include "vision/color_model.h"

#include <algorithm>
#include <cmath>

namespace cobra::vision {

namespace {
// Variance floor (squared): sensor noise keeps channels from ever being
// truly constant; without the floor a zero-variance model rejects all pixels.
constexpr double kMinVariance = 16.0;
}  // namespace

void GaussianColorModel::Add(const media::Rgb& p) {
  ++count_;
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  for (int i = 0; i < 3; ++i) {
    sum_[i] += ch[i];
    sum2_[i] += ch[i] * ch[i];
  }
}

GaussianColorModel GaussianColorModel::FromRegion(const media::Frame& frame,
                                                  const RectI& rect) {
  GaussianColorModel model;
  RectI r = rect.ClipTo(frame.width(), frame.height());
  for (int y = r.y; y < r.Bottom(); ++y) {
    for (int x = r.x; x < r.Right(); ++x) {
      model.Add(frame.At(x, y));
    }
  }
  return model;
}

double GaussianColorModel::Var(int ch) const {
  if (count_ < 2) return kMinVariance;
  double mean = sum_[ch] / count_;
  return std::max(kMinVariance, sum2_[ch] / count_ - mean * mean);
}

double GaussianColorModel::Distance2(const media::Rgb& p) const {
  const double means[3] = {mean_r(), mean_g(), mean_b()};
  const double vars[3] = {Var(0), Var(1), Var(2)};
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  double d2 = 0.0;
  for (int i = 0; i < 3; ++i) {
    double d = ch[i] - means[i];
    d2 += d * d / vars[i];
  }
  return d2;
}

bool GaussianColorModel::Matches(const media::Rgb& p, double k) const {
  const double means[3] = {mean_r(), mean_g(), mean_b()};
  const double vars[3] = {Var(0), Var(1), Var(2)};
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  for (int i = 0; i < 3; ++i) {
    if (std::fabs(ch[i] - means[i]) > k * std::sqrt(vars[i])) return false;
  }
  return true;
}

}  // namespace cobra::vision
