#include "vision/color_model.h"

#include <algorithm>
#include <cmath>

namespace cobra::vision {

namespace {
// Variance floor (squared): sensor noise keeps channels from ever being
// truly constant; without the floor a zero-variance model rejects all pixels.
constexpr double kMinVariance = 16.0;
}  // namespace

void GaussianColorModel::Add(const media::Rgb& p) {
  ++count_;
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  for (int i = 0; i < 3; ++i) {
    sum_[i] += ch[i];
    sum2_[i] += ch[i] * ch[i];
  }
}

void GaussianColorModel::AddRegion(const media::Frame& frame,
                                   const RectI& rect) {
  RectI r = rect.ClipTo(frame.width(), frame.height());
  if (r.Empty()) return;
  kernels::ColorSums sums;
  const kernels::KernelOps& ops = kernels::Ops();
  if (r.width == frame.width()) {
    ops.color_sums(frame.Row(r.y), static_cast<size_t>(r.Area()), &sums);
  } else {
    for (int y = r.y; y < r.Bottom(); ++y) {
      ops.color_sums(frame.Row(y) + r.x, static_cast<size_t>(r.width), &sums);
    }
  }
  count_ += static_cast<int64_t>(sums.count);
  for (int i = 0; i < 3; ++i) {
    sum_[i] += static_cast<double>(sums.sum[i]);
    sum2_[i] += static_cast<double>(sums.sum2[i]);
  }
}

GaussianColorModel GaussianColorModel::FromRegion(const media::Frame& frame,
                                                  const RectI& rect) {
  GaussianColorModel model;
  model.AddRegion(frame, rect);
  return model;
}

double GaussianColorModel::Var(int ch) const {
  if (count_ < 2) return kMinVariance;
  double mean = sum_[ch] / count_;
  return std::max(kMinVariance, sum2_[ch] / count_ - mean * mean);
}

GaussianColorModel::MahalanobisParams GaussianColorModel::Params() const {
  MahalanobisParams params;
  const double means[3] = {mean_r(), mean_g(), mean_b()};
  for (int i = 0; i < 3; ++i) {
    params.mean[i] = means[i];
    params.inv_var[i] = 1.0 / Var(i);
  }
  return params;
}

double GaussianColorModel::Distance2(const media::Rgb& p,
                                     const MahalanobisParams& params) {
  const double ch[3] = {static_cast<double>(p.r), static_cast<double>(p.g),
                        static_cast<double>(p.b)};
  double d2 = 0.0;
  for (int i = 0; i < 3; ++i) {
    double d = ch[i] - params.mean[i];
    d2 += d * d * params.inv_var[i];
  }
  return d2;
}

kernels::ColorBox GaussianColorModel::MatchBox(double k) const {
  const double means[3] = {mean_r(), mean_g(), mean_b()};
  kernels::ColorBox box;
  for (int i = 0; i < 3; ++i) {
    const double sigma = std::sqrt(Var(i));
    // An integer channel value c matches iff mean - k*sigma <= c <=
    // mean + k*sigma, i.e. ceil(lo) <= c <= floor(hi); a channel whose
    // rounded bounds cross keeps the default match-nothing box.
    const int lo = static_cast<int>(std::ceil(means[i] - k * sigma));
    const int hi = static_cast<int>(std::floor(means[i] + k * sigma));
    if (lo > 255 || hi < 0 || lo > hi) return kernels::ColorBox{};
    box.lo[i] = static_cast<uint8_t>(std::max(0, lo));
    box.hi[i] = static_cast<uint8_t>(std::min(255, hi));
  }
  return box;
}

}  // namespace cobra::vision
