#pragma once

/// \file color_model.h
/// Gaussian per-channel color model — the "estimated statistics of the
/// tennis field color" the player segmentation starts from (paper §3).

#include <cstdint>

#include "media/frame.h"
#include "util/geometry.h"

namespace cobra::vision {

/// Independent per-channel Gaussian model of a color population.
class GaussianColorModel {
 public:
  /// Adds one sample.
  void Add(const media::Rgb& p);

  /// Estimates the model from all pixels of `rect` in `frame`.
  static GaussianColorModel FromRegion(const media::Frame& frame,
                                       const RectI& rect);

  int64_t count() const { return count_; }
  double mean_r() const { return count_ ? sum_[0] / count_ : 0; }
  double mean_g() const { return count_ ? sum_[1] / count_ : 0; }
  double mean_b() const { return count_ ? sum_[2] / count_ : 0; }
  double var_r() const { return Var(0); }
  double var_g() const { return Var(1); }
  double var_b() const { return Var(2); }

  /// Squared Mahalanobis-style distance with independent channels; variance
  /// is floored so a near-constant model still admits sensor noise.
  double Distance2(const media::Rgb& p) const;

  /// True if `p` lies within `k` standard deviations on every channel
  /// (the segmentation predicate: court pixels match, player pixels don't).
  bool Matches(const media::Rgb& p, double k = 3.0) const;

 private:
  double Var(int ch) const;

  int64_t count_ = 0;
  double sum_[3] = {0, 0, 0};
  double sum2_[3] = {0, 0, 0};
};

}  // namespace cobra::vision
