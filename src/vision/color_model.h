#pragma once

/// \file color_model.h
/// Gaussian per-channel color model — the "estimated statistics of the
/// tennis field color" the player segmentation starts from (paper §3).

#include <cstdint>

#include "media/frame.h"
#include "util/geometry.h"
#include "vision/kernels.h"

namespace cobra::vision {

/// Independent per-channel Gaussian model of a color population.
class GaussianColorModel {
 public:
  /// Means and inverse variances hoisted out of per-pixel distance loops.
  struct MahalanobisParams {
    double mean[3] = {0, 0, 0};
    double inv_var[3] = {0, 0, 0};
  };

  /// Adds one sample.
  void Add(const media::Rgb& p);

  /// Adds every pixel of `rect` (clipped) — batch-kernel path, identical to
  /// calling Add per pixel (integer sums are exact in double up to 2^53).
  void AddRegion(const media::Frame& frame, const RectI& rect);

  /// Estimates the model from all pixels of `rect` in `frame`.
  static GaussianColorModel FromRegion(const media::Frame& frame,
                                       const RectI& rect);

  int64_t count() const { return count_; }
  double mean_r() const { return count_ ? sum_[0] / count_ : 0; }
  double mean_g() const { return count_ ? sum_[1] / count_ : 0; }
  double mean_b() const { return count_ ? sum_[2] / count_ : 0; }
  double var_r() const { return Var(0); }
  double var_g() const { return Var(1); }
  double var_b() const { return Var(2); }

  /// Snapshot of means + inverse variances. Hoist out of pixel loops; the
  /// model recomputes nothing per pixel afterwards.
  MahalanobisParams Params() const;

  /// Squared Mahalanobis-style distance with independent channels; variance
  /// is floored so a near-constant model still admits sensor noise.
  double Distance2(const media::Rgb& p) const {
    return Distance2(p, Params());
  }
  static double Distance2(const media::Rgb& p, const MahalanobisParams& params);

  /// The k-sigma match test as inclusive integer per-channel bounds:
  /// `MatchBox(k).Contains(p)` <=> `p` lies within k standard deviations on
  /// every channel. Computed once (ceil/floor of mean -/+ k*sigma), so batch
  /// kernels can classify pixels with byte compares only.
  kernels::ColorBox MatchBox(double k = 3.0) const;

  /// True if `p` lies within `k` standard deviations on every channel
  /// (the segmentation predicate: court pixels match, player pixels don't).
  /// Hoist `MatchBox(k)` instead when testing many pixels.
  bool Matches(const media::Rgb& p, double k = 3.0) const {
    return MatchBox(k).Contains(p);
  }

 private:
  double Var(int ch) const;

  int64_t count_ = 0;
  double sum_[3] = {0, 0, 0};
  double sum2_[3] = {0, 0, 0};
};

}  // namespace cobra::vision
