#include "vision/kernels.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

// SIMD tiers exist only on x86-64 GCC/Clang builds with the COBRA_SIMD CMake
// option ON; everywhere else only the scalar tier is compiled and dispatch
// degenerates to it.
#if defined(COBRA_SIMD) && COBRA_SIMD && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define COBRA_SIMD_X86 1
#include <immintrin.h>
#else
#define COBRA_SIMD_X86 0
#endif

namespace cobra::vision::kernels {

// Frame rows are reinterpreted as raw byte streams by the deinterleave and
// SAD kernels, which requires the packed-triple layout Frame::Row documents.
static_assert(sizeof(media::Rgb) == 3, "Rgb must be a packed byte triple");

namespace {

// log2 of the bin width 256/B. B is a divisor of 256, hence a power of two.
inline unsigned BinShift(int bins_per_channel) {
  return static_cast<unsigned>(
      std::countr_zero(256u / static_cast<unsigned>(bins_per_channel)));
}

// ---------------------------------------------------------------------------
// Scalar reference tier.
//
// The double-precision distance kernels use a fixed 4-lane accumulation tree
// (element i -> partial i mod 4; combine (s0+s1)+(s2+s3)) so that the vector
// tiers, which carry the same four partials in SIMD lanes, are bit-identical.
// Everything else accumulates in integers, where order cannot matter.
// ---------------------------------------------------------------------------

namespace scalar {

void Histogram(const media::Rgb* px, size_t n, int bins_per_channel,
               uint32_t* bins) {
  const unsigned shift = BinShift(bins_per_channel);
  const uint32_t b = static_cast<uint32_t>(bins_per_channel);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t bin =
        ((static_cast<uint32_t>(px[i].r >> shift) * b + (px[i].g >> shift)) *
         b) +
        (px[i].b >> shift);
    ++bins[bin];
  }
}

double L1(const double* a, const double* b, size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) s[i & 3] += std::fabs(a[i] - b[i]);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double ChiSquare(const double* a, const double* b, size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    const double sum = a[i] + b[i];
    const double diff = a[i] - b[i];
    s[i & 3] += sum > 0.0 ? diff * diff / sum : 0.0;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double IntersectionSum(const double* a, const double* b, size_t n) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  // (a < b ? a : b) mirrors the vector min instruction exactly.
  for (size_t i = 0; i < n; ++i) s[i & 3] += a[i] < b[i] ? a[i] : b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

void ClassifyInside(const media::Rgb* px, size_t n, const ColorBox& box,
                    uint8_t* out) {
  for (size_t i = 0; i < n; ++i) out[i] = box.Contains(px[i]) ? 1 : 0;
}

void ClassifyOutside(const media::Rgb* px, size_t n, const ColorBox* boxes,
                     size_t num_boxes, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    bool inside = false;
    for (size_t bi = 0; bi < num_boxes && !inside; ++bi) {
      inside = boxes[bi].Contains(px[i]);
    }
    out[i] = inside ? 0 : 1;
  }
}

uint64_t CountInside(const media::Rgb* px, size_t n, const ColorBox& box) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += box.Contains(px[i]) ? 1 : 0;
  return count;
}

uint64_t CountSkin(const media::Rgb* px, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += media::IsSkinColor(px[i]) ? 1 : 0;
  return count;
}

void GraySums(const media::Rgb* px, size_t n, struct GraySums* sums) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t lm = LumaMilli(px[i]);
    sums->sum_milli += lm;
    sums->sum2_milli += static_cast<uint64_t>(lm) * lm;
    ++sums->hist[lm / 1000];
  }
  sums->count += n;
}

void ColorSums(const media::Rgb* px, size_t n, struct ColorSums* sums) {
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c[3] = {px[i].r, px[i].g, px[i].b};
    for (int ch = 0; ch < 3; ++ch) {
      sums->sum[ch] += c[ch];
      sums->sum2[ch] += c[ch] * c[ch];
    }
  }
  sums->count += n;
}

uint64_t AbsDiffSum(const media::Rgb* a, const media::Rgb* b, size_t n) {
  const uint8_t* pa = reinterpret_cast<const uint8_t*>(a);
  const uint8_t* pb = reinterpret_cast<const uint8_t*>(b);
  uint64_t total = 0;
  const size_t m = 3 * n;
  for (size_t i = 0; i < m; ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return total;
}

uint64_t ByteSum(const uint8_t* bytes, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) total += bytes[i];
  return total;
}

}  // namespace scalar

constexpr KernelOps kScalarOps = {
    scalar::Histogram,      scalar::L1,          scalar::ChiSquare,
    scalar::IntersectionSum, scalar::ClassifyInside,
    scalar::ClassifyOutside, scalar::CountInside, scalar::CountSkin,
    scalar::GraySums,       scalar::ColorSums,   scalar::AbsDiffSum,
    scalar::ByteSum,
};

#if COBRA_SIMD_X86

// classify_outside precomputes per-box lane constants into a fixed buffer;
// larger box sets (never hit by the detectors, which use <= 3) fall back to
// the scalar tier.
constexpr size_t kMaxBoxLanes = 8;

// ---------------------------------------------------------------------------
// SSE4.1 tier: 4 pixels per iteration.
//
// The RGB24 deinterleave loads 16 bytes to cover 4 pixels (12 bytes), so the
// main loops only run while at least 6 pixels (18 bytes) remain; the last
// <= 5 pixels take the scalar tail. SSE4.1 is required for pshufb (SSSE3),
// pmulld, and pmovzxdq.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("sse4.1")

namespace sse41 {

struct RgbLanes {
  __m128i r, g, b;
};

// Deinterleaves 4 packed Rgb pixels into three epi32x4 registers. Reads 16
// bytes starting at p; the caller guarantees they are in bounds.
inline RgbLanes LoadRgb4(const uint8_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i rm =
      _mm_setr_epi8(0, -1, -1, -1, 3, -1, -1, -1, 6, -1, -1, -1, 9, -1, -1, -1);
  const __m128i gm =
      _mm_setr_epi8(1, -1, -1, -1, 4, -1, -1, -1, 7, -1, -1, -1, 10, -1, -1, -1);
  const __m128i bm =
      _mm_setr_epi8(2, -1, -1, -1, 5, -1, -1, -1, 8, -1, -1, -1, 11, -1, -1, -1);
  return RgbLanes{_mm_shuffle_epi8(raw, rm), _mm_shuffle_epi8(raw, gm),
                  _mm_shuffle_epi8(raw, bm)};
}

// Widens the 4 epi32 lanes of v to epi64 and adds them into acc (exact).
inline __m128i AddWidened(__m128i acc, __m128i v) {
  acc = _mm_add_epi64(acc, _mm_cvtepu32_epi64(v));
  return _mm_add_epi64(acc, _mm_cvtepu32_epi64(_mm_srli_si128(v, 8)));
}

inline uint64_t HorizontalSum64(__m128i acc) {
  alignas(16) uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] + lanes[1];
}

void Histogram(const media::Rgb* px, size_t n, int bins_per_channel,
               uint32_t* bins) {
  const unsigned shift = BinShift(bins_per_channel);
  const __m128i vb = _mm_set1_epi32(bins_per_channel);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  alignas(16) uint32_t idx[4];
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const RgbLanes v = LoadRgb4(bytes + 3 * i);
    const __m128i r = _mm_srli_epi32(v.r, static_cast<int>(shift));
    const __m128i g = _mm_srli_epi32(v.g, static_cast<int>(shift));
    const __m128i b = _mm_srli_epi32(v.b, static_cast<int>(shift));
    const __m128i bin = _mm_add_epi32(
        _mm_mullo_epi32(_mm_add_epi32(_mm_mullo_epi32(r, vb), g), vb), b);
    _mm_store_si128(reinterpret_cast<__m128i*>(idx), bin);
    ++bins[idx[0]];
    ++bins[idx[1]];
    ++bins[idx[2]];
    ++bins[idx[3]];
  }
  scalar::Histogram(px + i, n - i, bins_per_channel, bins);
}

double L1(const double* a, const double* b, size_t n) {
  const __m128d sign = _mm_set1_pd(-0.0);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d d01 = _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
    const __m128d d23 =
        _mm_sub_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2));
    acc01 = _mm_add_pd(acc01, _mm_andnot_pd(sign, d01));
    acc23 = _mm_add_pd(acc23, _mm_andnot_pd(sign, d23));
  }
  alignas(16) double s[4];
  _mm_store_pd(s, acc01);
  _mm_store_pd(s + 2, acc23);
  for (; i < n; ++i) s[i & 3] += std::fabs(a[i] - b[i]);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double ChiSquare(const double* a, const double* b, size_t n) {
  const __m128d zero = _mm_setzero_pd();
  __m128d acc01 = zero;
  __m128d acc23 = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128d a01 = _mm_loadu_pd(a + i), a23 = _mm_loadu_pd(a + i + 2);
    const __m128d b01 = _mm_loadu_pd(b + i), b23 = _mm_loadu_pd(b + i + 2);
    const __m128d s01 = _mm_add_pd(a01, b01), s23 = _mm_add_pd(a23, b23);
    const __m128d d01 = _mm_sub_pd(a01, b01), d23 = _mm_sub_pd(a23, b23);
    // Lanes with sum <= 0 divide to inf/nan and are masked back to zero,
    // matching the scalar branch (adding +0.0 is exact).
    const __m128d t01 = _mm_div_pd(_mm_mul_pd(d01, d01), s01);
    const __m128d t23 = _mm_div_pd(_mm_mul_pd(d23, d23), s23);
    acc01 = _mm_add_pd(acc01, _mm_and_pd(t01, _mm_cmpgt_pd(s01, zero)));
    acc23 = _mm_add_pd(acc23, _mm_and_pd(t23, _mm_cmpgt_pd(s23, zero)));
  }
  alignas(16) double s[4];
  _mm_store_pd(s, acc01);
  _mm_store_pd(s + 2, acc23);
  for (; i < n; ++i) {
    const double sum = a[i] + b[i];
    const double diff = a[i] - b[i];
    s[i & 3] += sum > 0.0 ? diff * diff / sum : 0.0;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double IntersectionSum(const double* a, const double* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = _mm_add_pd(acc01,
                       _mm_min_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(
        acc23, _mm_min_pd(_mm_loadu_pd(a + i + 2), _mm_loadu_pd(b + i + 2)));
  }
  alignas(16) double s[4];
  _mm_store_pd(s, acc01);
  _mm_store_pd(s + 2, acc23);
  for (; i < n; ++i) s[i & 3] += a[i] < b[i] ? a[i] : b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

struct BoxLanes {
  __m128i lo[3], hi[3];  // lo[c] = box.lo[c] - 1, hi[c] = box.hi[c] + 1
};

inline BoxLanes MakeBoxLanes(const ColorBox& box) {
  BoxLanes lanes;
  for (int c = 0; c < 3; ++c) {
    lanes.lo[c] = _mm_set1_epi32(static_cast<int>(box.lo[c]) - 1);
    lanes.hi[c] = _mm_set1_epi32(static_cast<int>(box.hi[c]) + 1);
  }
  return lanes;
}

// All-ones lanes where lo[c] < channel < hi[c] for every channel, i.e. the
// pixel is inside the (inclusive) original box.
inline __m128i InsideMask(const RgbLanes& v, const BoxLanes& box) {
  const __m128i* ch[3] = {&v.r, &v.g, &v.b};
  __m128i m = _mm_set1_epi32(-1);
  for (int c = 0; c < 3; ++c) {
    m = _mm_and_si128(m, _mm_cmpgt_epi32(*ch[c], box.lo[c]));
    m = _mm_and_si128(m, _mm_cmpgt_epi32(box.hi[c], *ch[c]));
  }
  return m;
}

void ClassifyInside(const media::Rgb* px, size_t n, const ColorBox& box,
                    uint8_t* out) {
  const BoxLanes lanes = MakeBoxLanes(box);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const int bits = _mm_movemask_ps(
        _mm_castsi128_ps(InsideMask(LoadRgb4(bytes + 3 * i), lanes)));
    out[i + 0] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    out[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
    out[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
  }
  scalar::ClassifyInside(px + i, n - i, box, out + i);
}

void ClassifyOutside(const media::Rgb* px, size_t n, const ColorBox* boxes,
                     size_t num_boxes, uint8_t* out) {
  if (num_boxes > kMaxBoxLanes) {
    scalar::ClassifyOutside(px, n, boxes, num_boxes, out);
    return;
  }
  BoxLanes lanes[kMaxBoxLanes];
  for (size_t bi = 0; bi < num_boxes; ++bi) lanes[bi] = MakeBoxLanes(boxes[bi]);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const RgbLanes v = LoadRgb4(bytes + 3 * i);
    __m128i any = _mm_setzero_si128();
    for (size_t bi = 0; bi < num_boxes; ++bi) {
      any = _mm_or_si128(any, InsideMask(v, lanes[bi]));
    }
    const int bits = _mm_movemask_ps(_mm_castsi128_ps(any));
    out[i + 0] = static_cast<uint8_t>((bits & 1) ^ 1);
    out[i + 1] = static_cast<uint8_t>(((bits >> 1) & 1) ^ 1);
    out[i + 2] = static_cast<uint8_t>(((bits >> 2) & 1) ^ 1);
    out[i + 3] = static_cast<uint8_t>(((bits >> 3) & 1) ^ 1);
  }
  scalar::ClassifyOutside(px + i, n - i, boxes, num_boxes, out + i);
}

uint64_t CountInside(const media::Rgb* px, size_t n, const ColorBox& box) {
  const BoxLanes lanes = MakeBoxLanes(box);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const int bits = _mm_movemask_ps(
        _mm_castsi128_ps(InsideMask(LoadRgb4(bytes + 3 * i), lanes)));
    count += static_cast<unsigned>(std::popcount(static_cast<unsigned>(bits)));
  }
  return count + scalar::CountInside(px + i, n - i, box);
}

// Integer-exact skin predicate; see media::IsSkinColor for the derivation.
inline __m128i SkinMask(const RgbLanes& v) {
  const __m128i d = _mm_sub_epi32(v.r, v.b);
  const __m128i gb = _mm_sub_epi32(v.g, v.b);
  __m128i m = _mm_cmpgt_epi32(v.r, _mm_set1_epi32(80));
  m = _mm_and_si128(m, _mm_cmpgt_epi32(v.r, v.g));
  m = _mm_and_si128(m, _mm_cmpgt_epi32(v.g, v.b));
  m = _mm_and_si128(m, _mm_cmpgt_epi32(d, _mm_set1_epi32(14)));
  // 10 d > r
  m = _mm_and_si128(
      m, _mm_cmpgt_epi32(_mm_mullo_epi32(d, _mm_set1_epi32(10)), v.r));
  // 4 d < 3 r
  m = _mm_and_si128(
      m, _mm_cmpgt_epi32(_mm_mullo_epi32(v.r, _mm_set1_epi32(3)),
                         _mm_mullo_epi32(d, _mm_set1_epi32(4))));
  // 6 (g - b) < 5 d
  m = _mm_and_si128(
      m, _mm_cmpgt_epi32(_mm_mullo_epi32(d, _mm_set1_epi32(5)),
                         _mm_mullo_epi32(gb, _mm_set1_epi32(6))));
  return m;
}

uint64_t CountSkin(const media::Rgb* px, size_t n) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const int bits =
        _mm_movemask_ps(_mm_castsi128_ps(SkinMask(LoadRgb4(bytes + 3 * i))));
    count += static_cast<unsigned>(std::popcount(static_cast<unsigned>(bits)));
  }
  return count + scalar::CountSkin(px + i, n - i);
}

void GraySums(const media::Rgb* px, size_t n, struct GraySums* sums) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  __m128i acc_sum = _mm_setzero_si128();
  __m128i acc_sq = _mm_setzero_si128();
  alignas(16) uint32_t bin[4];
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const RgbLanes v = LoadRgb4(bytes + 3 * i);
    const __m128i lm = _mm_add_epi32(
        _mm_add_epi32(_mm_mullo_epi32(v.r, _mm_set1_epi32(299)),
                      _mm_mullo_epi32(v.g, _mm_set1_epi32(587))),
        _mm_mullo_epi32(v.b, _mm_set1_epi32(114)));
    // lm / 1000 = (lm >> 3) / 125 by magic multiply (ceil(2^23 / 125) =
    // 67109): exact for lm <= 255000, and the product stays under 2^31.
    // Tested exhaustively in vision_kernels_test.
    const __m128i hbin = _mm_srli_epi32(
        _mm_mullo_epi32(_mm_srli_epi32(lm, 3), _mm_set1_epi32(67109)), 23);
    _mm_store_si128(reinterpret_cast<__m128i*>(bin), hbin);
    ++sums->hist[bin[0]];
    ++sums->hist[bin[1]];
    ++sums->hist[bin[2]];
    ++sums->hist[bin[3]];
    acc_sum = AddWidened(acc_sum, lm);
    // Squares need 64-bit products: even lanes via pmuludq, odd lanes after
    // a 32-bit right shift.
    acc_sq = _mm_add_epi64(acc_sq, _mm_mul_epu32(lm, lm));
    const __m128i odd = _mm_srli_epi64(lm, 32);
    acc_sq = _mm_add_epi64(acc_sq, _mm_mul_epu32(odd, odd));
  }
  sums->sum_milli += HorizontalSum64(acc_sum);
  sums->sum2_milli += HorizontalSum64(acc_sq);
  sums->count += i;
  scalar::GraySums(px + i, n - i, sums);
}

void ColorSums(const media::Rgb* px, size_t n, struct ColorSums* sums) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  __m128i acc_sum[3] = {_mm_setzero_si128(), _mm_setzero_si128(),
                        _mm_setzero_si128()};
  __m128i acc_sq[3] = {_mm_setzero_si128(), _mm_setzero_si128(),
                       _mm_setzero_si128()};
  size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const RgbLanes v = LoadRgb4(bytes + 3 * i);
    const __m128i* ch[3] = {&v.r, &v.g, &v.b};
    for (int c = 0; c < 3; ++c) {
      acc_sum[c] = AddWidened(acc_sum[c], *ch[c]);
      acc_sq[c] = AddWidened(acc_sq[c], _mm_mullo_epi32(*ch[c], *ch[c]));
    }
  }
  for (int c = 0; c < 3; ++c) {
    sums->sum[c] += HorizontalSum64(acc_sum[c]);
    sums->sum2[c] += HorizontalSum64(acc_sq[c]);
  }
  sums->count += i;
  scalar::ColorSums(px + i, n - i, sums);
}

uint64_t AbsDiffSum(const media::Rgb* a, const media::Rgb* b, size_t n) {
  const uint8_t* pa = reinterpret_cast<const uint8_t*>(a);
  const uint8_t* pb = reinterpret_cast<const uint8_t*>(b);
  const size_t m = 3 * n;
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= m; i += 16) {
    acc = _mm_add_epi64(
        acc, _mm_sad_epu8(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa + i)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb + i))));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i < m; ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return total;
}

uint64_t ByteSum(const uint8_t* bytes, size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm_add_epi64(
        acc, _mm_sad_epu8(
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + i)),
                 zero));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i < n; ++i) total += bytes[i];
  return total;
}

}  // namespace sse41

#pragma GCC pop_options

// ---------------------------------------------------------------------------
// AVX2 tier: 8 pixels per iteration.
//
// The deinterleave loads two 16-byte chunks at byte offsets 0 and 12 to
// cover 8 pixels (24 bytes), over-reading 4 bytes, so the main loops only
// run while at least 10 pixels (30 bytes) remain; the last <= 9 pixels take
// the scalar tail.
// ---------------------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

namespace avx2 {

struct RgbLanes {
  __m256i r, g, b;
};

inline RgbLanes LoadRgb8(const uint8_t* p) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 12));
  const __m256i both = _mm256_set_m128i(hi, lo);
  const __m256i rm = _mm256_setr_epi8(
      0, -1, -1, -1, 3, -1, -1, -1, 6, -1, -1, -1, 9, -1, -1, -1,
      0, -1, -1, -1, 3, -1, -1, -1, 6, -1, -1, -1, 9, -1, -1, -1);
  const __m256i gm = _mm256_setr_epi8(
      1, -1, -1, -1, 4, -1, -1, -1, 7, -1, -1, -1, 10, -1, -1, -1,
      1, -1, -1, -1, 4, -1, -1, -1, 7, -1, -1, -1, 10, -1, -1, -1);
  const __m256i bm = _mm256_setr_epi8(
      2, -1, -1, -1, 5, -1, -1, -1, 8, -1, -1, -1, 11, -1, -1, -1,
      2, -1, -1, -1, 5, -1, -1, -1, 8, -1, -1, -1, 11, -1, -1, -1);
  return RgbLanes{_mm256_shuffle_epi8(both, rm), _mm256_shuffle_epi8(both, gm),
                  _mm256_shuffle_epi8(both, bm)};
}

inline __m256i AddWidened(__m256i acc, __m256i v) {
  acc = _mm256_add_epi64(acc, _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v)));
  return _mm256_add_epi64(acc,
                          _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1)));
}

inline uint64_t HorizontalSum64(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void Histogram(const media::Rgb* px, size_t n, int bins_per_channel,
               uint32_t* bins) {
  const unsigned shift = BinShift(bins_per_channel);
  const __m256i vb = _mm256_set1_epi32(bins_per_channel);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  alignas(32) uint32_t idx[8];
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const RgbLanes v = LoadRgb8(bytes + 3 * i);
    const __m256i r = _mm256_srli_epi32(v.r, static_cast<int>(shift));
    const __m256i g = _mm256_srli_epi32(v.g, static_cast<int>(shift));
    const __m256i b = _mm256_srli_epi32(v.b, static_cast<int>(shift));
    const __m256i bin = _mm256_add_epi32(
        _mm256_mullo_epi32(_mm256_add_epi32(_mm256_mullo_epi32(r, vb), g), vb),
        b);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), bin);
    for (int j = 0; j < 8; ++j) ++bins[idx[j]];
  }
  scalar::Histogram(px + i, n - i, bins_per_channel, bins);
}

double L1(const double* a, const double* b, size_t n) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                    _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_andnot_pd(sign, d));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += std::fabs(a[i] - b[i]);
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double ChiSquare(const double* a, const double* b, size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    const __m256d sum = _mm256_add_pd(va, vb);
    const __m256d diff = _mm256_sub_pd(va, vb);
    const __m256d t = _mm256_div_pd(_mm256_mul_pd(diff, diff), sum);
    acc = _mm256_add_pd(acc,
                        _mm256_and_pd(t, _mm256_cmp_pd(sum, zero, _CMP_GT_OQ)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) {
    const double sum = a[i] + b[i];
    const double diff = a[i] - b[i];
    s[i & 3] += sum > 0.0 ? diff * diff / sum : 0.0;
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

double IntersectionSum(const double* a, const double* b, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_min_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) s[i & 3] += a[i] < b[i] ? a[i] : b[i];
  return (s[0] + s[1]) + (s[2] + s[3]);
}

struct BoxLanes {
  __m256i lo[3], hi[3];
};

inline BoxLanes MakeBoxLanes(const ColorBox& box) {
  BoxLanes lanes;
  for (int c = 0; c < 3; ++c) {
    lanes.lo[c] = _mm256_set1_epi32(static_cast<int>(box.lo[c]) - 1);
    lanes.hi[c] = _mm256_set1_epi32(static_cast<int>(box.hi[c]) + 1);
  }
  return lanes;
}

inline __m256i InsideMask(const RgbLanes& v, const BoxLanes& box) {
  const __m256i* ch[3] = {&v.r, &v.g, &v.b};
  __m256i m = _mm256_set1_epi32(-1);
  for (int c = 0; c < 3; ++c) {
    m = _mm256_and_si256(m, _mm256_cmpgt_epi32(*ch[c], box.lo[c]));
    m = _mm256_and_si256(m, _mm256_cmpgt_epi32(box.hi[c], *ch[c]));
  }
  return m;
}

void ClassifyInside(const media::Rgb* px, size_t n, const ColorBox& box,
                    uint8_t* out) {
  const BoxLanes lanes = MakeBoxLanes(box);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(InsideMask(LoadRgb8(bytes + 3 * i), lanes)));
    for (int j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint8_t>((bits >> j) & 1);
    }
  }
  scalar::ClassifyInside(px + i, n - i, box, out + i);
}

void ClassifyOutside(const media::Rgb* px, size_t n, const ColorBox* boxes,
                     size_t num_boxes, uint8_t* out) {
  if (num_boxes > kMaxBoxLanes) {
    scalar::ClassifyOutside(px, n, boxes, num_boxes, out);
    return;
  }
  BoxLanes lanes[kMaxBoxLanes];
  for (size_t bi = 0; bi < num_boxes; ++bi) lanes[bi] = MakeBoxLanes(boxes[bi]);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const RgbLanes v = LoadRgb8(bytes + 3 * i);
    __m256i any = _mm256_setzero_si256();
    for (size_t bi = 0; bi < num_boxes; ++bi) {
      any = _mm256_or_si256(any, InsideMask(v, lanes[bi]));
    }
    const int bits = _mm256_movemask_ps(_mm256_castsi256_ps(any));
    for (int j = 0; j < 8; ++j) {
      out[i + j] = static_cast<uint8_t>(((bits >> j) & 1) ^ 1);
    }
  }
  scalar::ClassifyOutside(px + i, n - i, boxes, num_boxes, out + i);
}

uint64_t CountInside(const media::Rgb* px, size_t n, const ColorBox& box) {
  const BoxLanes lanes = MakeBoxLanes(box);
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(InsideMask(LoadRgb8(bytes + 3 * i), lanes)));
    count += static_cast<unsigned>(std::popcount(static_cast<unsigned>(bits)));
  }
  return count + scalar::CountInside(px + i, n - i, box);
}

inline __m256i SkinMask(const RgbLanes& v) {
  const __m256i d = _mm256_sub_epi32(v.r, v.b);
  const __m256i gb = _mm256_sub_epi32(v.g, v.b);
  __m256i m = _mm256_cmpgt_epi32(v.r, _mm256_set1_epi32(80));
  m = _mm256_and_si256(m, _mm256_cmpgt_epi32(v.r, v.g));
  m = _mm256_and_si256(m, _mm256_cmpgt_epi32(v.g, v.b));
  m = _mm256_and_si256(m, _mm256_cmpgt_epi32(d, _mm256_set1_epi32(14)));
  m = _mm256_and_si256(
      m, _mm256_cmpgt_epi32(_mm256_mullo_epi32(d, _mm256_set1_epi32(10)),
                            v.r));
  m = _mm256_and_si256(
      m, _mm256_cmpgt_epi32(_mm256_mullo_epi32(v.r, _mm256_set1_epi32(3)),
                            _mm256_mullo_epi32(d, _mm256_set1_epi32(4))));
  m = _mm256_and_si256(
      m, _mm256_cmpgt_epi32(_mm256_mullo_epi32(d, _mm256_set1_epi32(5)),
                            _mm256_mullo_epi32(gb, _mm256_set1_epi32(6))));
  return m;
}

uint64_t CountSkin(const media::Rgb* px, size_t n) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const int bits = _mm256_movemask_ps(
        _mm256_castsi256_ps(SkinMask(LoadRgb8(bytes + 3 * i))));
    count += static_cast<unsigned>(std::popcount(static_cast<unsigned>(bits)));
  }
  return count + scalar::CountSkin(px + i, n - i);
}

void GraySums(const media::Rgb* px, size_t n, struct GraySums* sums) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  __m256i acc_sum = _mm256_setzero_si256();
  __m256i acc_sq = _mm256_setzero_si256();
  alignas(32) uint32_t bin[8];
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const RgbLanes v = LoadRgb8(bytes + 3 * i);
    const __m256i lm = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_mullo_epi32(v.r, _mm256_set1_epi32(299)),
                         _mm256_mullo_epi32(v.g, _mm256_set1_epi32(587))),
        _mm256_mullo_epi32(v.b, _mm256_set1_epi32(114)));
    const __m256i hbin = _mm256_srli_epi32(
        _mm256_mullo_epi32(_mm256_srli_epi32(lm, 3), _mm256_set1_epi32(67109)),
        23);
    _mm256_store_si256(reinterpret_cast<__m256i*>(bin), hbin);
    for (int j = 0; j < 8; ++j) ++sums->hist[bin[j]];
    acc_sum = AddWidened(acc_sum, lm);
    acc_sq = _mm256_add_epi64(acc_sq, _mm256_mul_epu32(lm, lm));
    const __m256i odd = _mm256_srli_epi64(lm, 32);
    acc_sq = _mm256_add_epi64(acc_sq, _mm256_mul_epu32(odd, odd));
  }
  sums->sum_milli += HorizontalSum64(acc_sum);
  sums->sum2_milli += HorizontalSum64(acc_sq);
  sums->count += i;
  scalar::GraySums(px + i, n - i, sums);
}

void ColorSums(const media::Rgb* px, size_t n, struct ColorSums* sums) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(px);
  __m256i acc_sum[3] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                        _mm256_setzero_si256()};
  __m256i acc_sq[3] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                       _mm256_setzero_si256()};
  size_t i = 0;
  for (; i + 10 <= n; i += 8) {
    const RgbLanes v = LoadRgb8(bytes + 3 * i);
    const __m256i* ch[3] = {&v.r, &v.g, &v.b};
    for (int c = 0; c < 3; ++c) {
      acc_sum[c] = AddWidened(acc_sum[c], *ch[c]);
      acc_sq[c] = AddWidened(acc_sq[c], _mm256_mullo_epi32(*ch[c], *ch[c]));
    }
  }
  for (int c = 0; c < 3; ++c) {
    sums->sum[c] += HorizontalSum64(acc_sum[c]);
    sums->sum2[c] += HorizontalSum64(acc_sq[c]);
  }
  sums->count += i;
  scalar::ColorSums(px + i, n - i, sums);
}

uint64_t AbsDiffSum(const media::Rgb* a, const media::Rgb* b, size_t n) {
  const uint8_t* pa = reinterpret_cast<const uint8_t*>(a);
  const uint8_t* pb = reinterpret_cast<const uint8_t*>(b);
  const size_t m = 3 * n;
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= m; i += 32) {
    acc = _mm256_add_epi64(
        acc,
        _mm256_sad_epu8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pa + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pb + i))));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i < m; ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(pa[i]) - static_cast<int>(pb[i])));
  }
  return total;
}

uint64_t ByteSum(const uint8_t* bytes, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc = _mm256_add_epi64(
        acc,
        _mm256_sad_epu8(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i)),
            zero));
  }
  uint64_t total = HorizontalSum64(acc);
  for (; i < n; ++i) total += bytes[i];
  return total;
}

}  // namespace avx2

#pragma GCC pop_options

constexpr KernelOps kSse41Ops = {
    sse41::Histogram,      sse41::L1,          sse41::ChiSquare,
    sse41::IntersectionSum, sse41::ClassifyInside,
    sse41::ClassifyOutside, sse41::CountInside, sse41::CountSkin,
    sse41::GraySums,       sse41::ColorSums,   sse41::AbsDiffSum,
    sse41::ByteSum,
};

constexpr KernelOps kAvx2Ops = {
    avx2::Histogram,      avx2::L1,          avx2::ChiSquare,
    avx2::IntersectionSum, avx2::ClassifyInside,
    avx2::ClassifyOutside, avx2::CountInside, avx2::CountSkin,
    avx2::GraySums,       avx2::ColorSums,   avx2::AbsDiffSum,
    avx2::ByteSum,
};

#endif  // COBRA_SIMD_X86

}  // namespace

const KernelOps& ScalarOps() { return kScalarOps; }

SimdLevel BestSupportedLevel() {
#if COBRA_SIMD_X86
  return util::simd::CpuBestLevel();
#else
  return SimdLevel::kScalar;
#endif
}

const KernelOps* OpsFor(SimdLevel level) {
  if (level == SimdLevel::kScalar) return &kScalarOps;
#if COBRA_SIMD_X86
  if (static_cast<int>(level) > static_cast<int>(BestSupportedLevel())) {
    return nullptr;
  }
  if (level == SimdLevel::kSse41) return &kSse41Ops;
  if (level == SimdLevel::kAvx2) return &kAvx2Ops;
#endif
  return nullptr;
}

SimdLevel ActiveLevel() {
  const int forced = util::simd::ForcedLevel();
  if (forced < 0) return BestSupportedLevel();
  // The shared cap may name a tier this library did not compile; clamp down.
  int clamped = forced;
  while (clamped > 0 && OpsFor(static_cast<SimdLevel>(clamped)) == nullptr) {
    --clamped;
  }
  return static_cast<SimdLevel>(clamped);
}

SimdLevel SetActiveLevel(SimdLevel level) {
  int clamped = static_cast<int>(level);
  while (clamped > 0 && OpsFor(static_cast<SimdLevel>(clamped)) == nullptr) {
    --clamped;
  }
  const SimdLevel previous = ActiveLevel();
  util::simd::SetForcedLevel(clamped);
  return previous;
}

const KernelOps& Ops() { return *OpsFor(ActiveLevel()); }

}  // namespace cobra::vision::kernels
