#pragma once

/// \file signature_kernels.h
/// SIMD distance kernels for compact perceptual shot signatures
/// (vision/signature.h): 256-bit Hamming distance on 4×64-bit hash words
/// and squared L2 on the 32-byte quantized color sketch, in the same
/// scalar/SSE4.1/AVX2 runtime-dispatch shape as vision/kernels.
///
/// Every tier computes exact integer results, so all tiers are trivially
/// bit-identical — the property tests still sweep them because the batch
/// kernels do their own striding and tail handling.
///
/// One wrinkle vs the pixel kernels: the POPCNT instruction is *not*
/// implied by SSE4.1 (it arrived with SSE4.2-era CPUs and has its own
/// CPUID flag), so the SSE4.1 tier additionally probes `popcnt` support
/// and BestSupportedLevel() reports scalar on machines without it. The
/// AVX2 tier needs no POPCNT at all: it counts bits with the classic
/// pshufb nibble-LUT + psadbw reduction.
///
/// Dispatch state is the shared util/simd cap: forcing a level there caps
/// this layer too, clamped to the tiers this translation unit compiled.

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace cobra::vision::signature_kernels {

using util::simd::SimdLevel;

/// The distance kernel table for one tier. Batch kernels read one
/// signature component per record from `base + i * stride_bytes`
/// (stride-aware so they can walk arrays of whole SignatureRecords,
/// including zero-copy mmap'd segment sections, without a gather pass).
struct SignatureKernelOps {
  /// Hamming distance between two 256-bit hashes (4 u64 words each).
  uint32_t (*Hamming256)(const uint64_t* a, const uint64_t* b);
  /// out[i] = Hamming256(q, base + i * stride_bytes) for i in [0, n).
  void (*Hamming256Batch)(const uint64_t* q, const uint8_t* base,
                          size_t stride_bytes, size_t n, uint32_t* out);
  /// Squared L2 distance between two 32-byte sketches (max 32·255² < 2³²).
  uint32_t (*L2Sq32)(const uint8_t* a, const uint8_t* b);
  /// out[i] = L2Sq32(q, base + i * stride_bytes) for i in [0, n).
  void (*L2Sq32Batch)(const uint8_t* q, const uint8_t* base,
                      size_t stride_bytes, size_t n, uint32_t* out);
};

/// The scalar reference tier (always available).
const SignatureKernelOps& ScalarOps();

/// Best tier both compiled in and supported by this CPU (the SSE4.1 row
/// additionally requires the POPCNT CPUID flag, see file comment).
SimdLevel BestSupportedLevel();

/// Ops for `level`, or nullptr if that tier is unavailable here.
const SignatureKernelOps* OpsFor(SimdLevel level);

/// The tier Ops() dispatches to: the shared util/simd cap clamped to
/// what this layer supports.
SimdLevel ActiveLevel();

/// Sets the shared cap (clamped to a supported tier); returns the
/// previous active level. Test/bench helper, like kernels::SetActiveLevel.
SimdLevel SetActiveLevel(SimdLevel level);

/// The active tier's kernel table.
const SignatureKernelOps& Ops();

}  // namespace cobra::vision::signature_kernels
