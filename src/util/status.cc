#include "util/status.h"

namespace cobra {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kDetectorError:
      return "Detector error";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace cobra
