#pragma once

/// \file stats.h
/// Summary statistics and classifier evaluation helpers used throughout the
/// test suite and the benchmark harness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cobra {

/// Streaming mean / variance / min / max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Binary detection quality: precision / recall / F1 from TP, FP, FN counts.
struct PrecisionRecall {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;

  double Precision() const {
    int64_t denom = true_positives + false_positives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
  double Recall() const {
    int64_t denom = true_positives + false_negatives;
    return denom ? static_cast<double>(true_positives) / denom : 0.0;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
  }

  std::string ToString() const;
};

/// Square confusion matrix over `num_classes` labels.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes)
      : n_(num_classes), cells_(num_classes * num_classes, 0) {}

  void Add(size_t truth, size_t predicted) { cells_[truth * n_ + predicted]++; }

  int64_t At(size_t truth, size_t predicted) const {
    return cells_[truth * n_ + predicted];
  }

  size_t num_classes() const { return n_; }
  int64_t Total() const;

  /// Fraction of diagonal mass.
  double Accuracy() const;
  /// Precision for one class (column-wise).
  double ClassPrecision(size_t cls) const;
  /// Recall for one class (row-wise).
  double ClassRecall(size_t cls) const;

  /// Multi-line table with the given class names (size must equal
  /// num_classes()).
  std::string ToString(const std::vector<std::string>& class_names) const;

 private:
  size_t n_;
  std::vector<int64_t> cells_;
};

/// Matches detected positions against ground-truth positions with a
/// tolerance (in the same units), greedily, each truth matched at most once.
/// Used for shot boundary scoring (positions are frame indices).
PrecisionRecall MatchWithTolerance(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& detected,
                                   int64_t tolerance);

}  // namespace cobra
