#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (synthetic video, corpus
/// generation, HMM sampling) draw from `Rng` so that every experiment is
/// reproducible from a single seed.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cobra {

/// Deterministic 64-bit PRNG (xoshiro256**).
///
/// Not cryptographically secure; chosen for speed and reproducibility across
/// platforms (unlike std::mt19937 distributions, whose outputs are not
/// standardized for all of <random>).
class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0xC0B2A5EEDULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Samples an index according to non-negative `weights` (need not sum
  /// to 1). Returns weights.size()-1 if all weights are zero.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// SplitMix64 finalizer: a fast stateless 64-bit mixing hash. Used where a
/// deterministic pseudo-random value must be a pure function of its inputs
/// (e.g. per-block colors in the audience-shot renderer).
inline uint64_t MixHash(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Samples from a Zipf(s) distribution over {1..n} by inverse-CDF table.
/// Used by the text corpus generator to get realistic term frequencies.
class ZipfSampler {
 public:
  /// \param n number of ranks
  /// \param s skew exponent (s=1 is classic Zipf)
  ZipfSampler(size_t n, double s);

  /// Returns a rank in [1, n].
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace cobra
