#pragma once

/// \file thread_pool.h
/// A fixed-size worker pool shared by the indexing pipeline: the FDE runs
/// independent detectors of one grammar wave concurrently, and detectors
/// parallelize their own frame loops through the same pool.
///
/// Design constraints (see DESIGN.md "Parallel execution model"):
///   * deterministic results — `ParallelFor` writes are indexed by the loop
///     variable, so output never depends on scheduling;
///   * nested use — a task running on the pool may itself call
///     `ParallelFor`/`TaskGroup::Wait`; the waiting thread drains queued
///     tasks instead of blocking, so the pool cannot deadlock on itself;
///   * `num_threads <= 1` degenerates to inline execution on the calling
///     thread, reproducing single-threaded behavior exactly.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cobra::util {

class TaskGroup;

/// Fixed-size thread pool. Tasks are submitted through a TaskGroup (or the
/// ParallelFor convenience) so the submitter can wait for exactly its own
/// work and receive its exceptions.
class ThreadPool {
 public:
  /// `num_threads <= 1` creates no workers: all work runs on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 in inline mode).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the pool executes everything on the calling thread.
  bool inline_mode() const { return workers_.empty(); }

  /// Calls `fn(i)` for every i in [begin, end). Iterations are batched into
  /// chunks of `grain` consecutive indices; chunks run concurrently. Blocks
  /// until every iteration finished; rethrows the first exception thrown by
  /// any iteration. Every index is visited exactly once.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  /// A sensible default for `num_threads`: the hardware concurrency, at
  /// least 1.
  static int DefaultThreads();

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void Enqueue(Task task);
  /// Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask();
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

/// A batch of tasks submitted to one pool that can be awaited together.
/// Not thread-safe for concurrent Run/Wait from multiple submitters; one
/// owner submits and waits.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool (runs inline immediately when the pool is
  /// null or in inline mode).
  void Run(std::function<void()> fn);

  /// Blocks until every task scheduled through this group completed. While
  /// waiting, the calling thread executes queued tasks (its own or other
  /// groups'), which makes nested waits deadlock-free. Rethrows the first
  /// exception any task threw.
  void Wait();

 private:
  friend class ThreadPool;

  void Finish(std::exception_ptr error);

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  int64_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace cobra::util
