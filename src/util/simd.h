#pragma once

/// \file simd.h
/// Process-wide SIMD dispatch state shared by every kernel layer.
///
/// The instruction-set tier enum, the CPUID probe and the test override used
/// to live inside vision/kernels; the media DCT/dequant kernels need the
/// same dispatch (and the same test override must force every layer at
/// once), and vision already depends on media, so the shared state lives
/// here at the bottom of the dependency stack. Each kernel layer still owns
/// its ops tables and clamps to the tiers *it* compiled; this file only
/// answers "what does the CPU support" and "what cap did a test force".

#include <atomic>

namespace cobra::util::simd {

/// Instruction-set tiers, ordered. SSE4.1 is the baseline vector tier
/// everywhere (see vision/kernels.h for the rationale).
enum class SimdLevel { kScalar = 0, kSse41 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

/// Highest tier this CPU can execute (CPUID, probed once). Says nothing
/// about which tiers a given library compiled; callers clamp to their own.
SimdLevel CpuBestLevel();

/// The forced cap set by SetForcedLevel, or -1 for "auto" (no cap).
int ForcedLevel();

/// Forces every kernel layer to dispatch at (at most) `level`; -1 restores
/// auto. Intended for tests and benches that compare tiers within one
/// binary; not synchronized with concurrent kernel users.
void SetForcedLevel(int level);

}  // namespace cobra::util::simd
