#include "util/geometry.h"

#include <cstdio>

namespace cobra {

std::string RectI::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%d,%d %dx%d]", x, y, width, height);
  return buf;
}

std::string FrameInterval::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "[%lld..%lld]", static_cast<long long>(begin),
                static_cast<long long>(end));
  return buf;
}

AllenRelation ClassifyAllen(const FrameInterval& a, const FrameInterval& b) {
  // Discrete (inclusive) intervals: "meets" means exactly adjacent.
  if (a.begin == b.begin && a.end == b.end) return AllenRelation::kEquals;
  if (a.end + 1 < b.begin) return AllenRelation::kBefore;
  if (a.end + 1 == b.begin) return AllenRelation::kMeets;
  if (b.end + 1 == a.begin) return AllenRelation::kMetBy;
  if (b.end + 1 < a.begin) return AllenRelation::kAfter;
  if (a.begin == b.begin) {
    return a.end < b.end ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  if (a.end == b.end) {
    return a.begin > b.begin ? AllenRelation::kFinishes
                             : AllenRelation::kFinishedBy;
  }
  if (a.begin > b.begin && a.end < b.end) return AllenRelation::kDuring;
  if (a.begin < b.begin && a.end > b.end) return AllenRelation::kContains;
  return a.begin < b.begin ? AllenRelation::kOverlaps
                           : AllenRelation::kOverlappedBy;
}

const char* AllenRelationToString(AllenRelation rel) {
  switch (rel) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kAfter:
      return "after";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kFinishedBy:
      return "finished-by";
    case AllenRelation::kEquals:
      return "equals";
  }
  return "unknown";
}

}  // namespace cobra
