#pragma once

/// \file crc32.h
/// CRC-32 (the zlib/IEEE 802.3 polynomial, reflected) for the durable
/// segment format: every segment section and WAL record carries a checksum
/// so torn or corrupted bytes are detected at open/replay time instead of
/// surfacing as undefined behavior in the readers (DESIGN.md §4h).

#include <cstddef>
#include <cstdint>

namespace cobra::util {

/// CRC-32 of `size` bytes starting at `data`, seeded with `seed` (pass the
/// previous return value to checksum discontiguous regions as one stream).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace cobra::util
