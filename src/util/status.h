#pragma once

/// \file status.h
/// Error handling primitives for the COBRA library.
///
/// Public APIs do not throw; fallible operations return `Status` (no value)
/// or `Result<T>` (value or error), following the Arrow/RocksDB style.

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace cobra {

/// Machine-readable error category carried by `Status`.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kParseError = 8,
  kDetectorError = 9,
  kUnavailable = 10,        ///< transient overload — retry later (load shed)
  kDeadlineExceeded = 11,   ///< the caller's deadline expired before completion
};

/// Human-readable name for a `StatusCode` ("OK", "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. `Status` is cheap to move and to test for success.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DetectorError(std::string msg) {
    return Status(StatusCode::kDetectorError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // nullptr means OK
};

/// Value-or-error return type.
///
/// `Result<T>` holds either a `T` or a non-OK `Status`. Accessing the value
/// of an errored result is a programming error (checked by assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(payload_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; `Status::OK()` when the result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The contained value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Moves the value out. Requires `ok()`.
  T TakeValue() {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK `Status` to the caller.
#define COBRA_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::cobra::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

#define COBRA_CONCAT_IMPL(a, b) a##b
#define COBRA_CONCAT(a, b) COBRA_CONCAT_IMPL(a, b)

/// Unwraps a `Result<T>` into `lhs`, propagating errors to the caller.
#define COBRA_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto COBRA_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!COBRA_CONCAT(_res_, __LINE__).ok())                        \
    return COBRA_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(COBRA_CONCAT(_res_, __LINE__)).TakeValue()

}  // namespace cobra
