#pragma once

/// \file strings.h
/// Minimal string helpers shared by the grammar parser, tokenizer and the
/// query language front-end.

#include <string>
#include <string_view>
#include <vector>

namespace cobra {

/// Splits on a single character; empty fields are kept.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; no empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cobra
