#include "util/simd.h"

namespace cobra::util::simd {

namespace {

SimdLevel Detect() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.1")) return SimdLevel::kSse41;
#endif
  return SimdLevel::kScalar;
}

// -1 means "auto"; otherwise the forced SimdLevel cap.
std::atomic<int> g_forced_level{-1};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse41:
      return "sse4.1";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel CpuBestLevel() {
  static const SimdLevel best = Detect();
  return best;
}

int ForcedLevel() { return g_forced_level.load(std::memory_order_relaxed); }

void SetForcedLevel(int level) {
  g_forced_level.store(level, std::memory_order_relaxed);
}

}  // namespace cobra::util::simd
