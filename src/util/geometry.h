#pragma once

/// \file geometry.h
/// Small geometric value types shared by the vision and detector layers.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace cobra {

/// 2-D point with double coordinates (image space: x right, y down).
struct PointD {
  double x = 0.0;
  double y = 0.0;

  PointD() = default;
  PointD(double px, double py) : x(px), y(py) {}

  PointD operator+(const PointD& o) const { return {x + o.x, y + o.y}; }
  PointD operator-(const PointD& o) const { return {x - o.x, y - o.y}; }
  PointD operator*(double s) const { return {x * s, y * s}; }

  double Norm() const { return std::sqrt(x * x + y * y); }

  double DistanceTo(const PointD& o) const { return (*this - o).Norm(); }

  bool operator==(const PointD& o) const { return x == o.x && y == o.y; }
};

/// Axis-aligned integer rectangle: [x, x+width) x [y, y+height).
struct RectI {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  RectI() = default;
  RectI(int px, int py, int w, int h) : x(px), y(py), width(w), height(h) {}

  bool Empty() const { return width <= 0 || height <= 0; }
  int64_t Area() const { return Empty() ? 0 : int64_t{width} * height; }
  int Right() const { return x + width; }    ///< one past the last column
  int Bottom() const { return y + height; }  ///< one past the last row

  PointD Center() const { return {x + width / 2.0, y + height / 2.0}; }

  bool Contains(int px, int py) const {
    return px >= x && px < Right() && py >= y && py < Bottom();
  }

  RectI Intersect(const RectI& o) const {
    int nx = std::max(x, o.x);
    int ny = std::max(y, o.y);
    int nr = std::min(Right(), o.Right());
    int nb = std::min(Bottom(), o.Bottom());
    if (nr <= nx || nb <= ny) return RectI{};
    return RectI{nx, ny, nr - nx, nb - ny};
  }

  RectI Union(const RectI& o) const {
    if (Empty()) return o;
    if (o.Empty()) return *this;
    int nx = std::min(x, o.x);
    int ny = std::min(y, o.y);
    int nr = std::max(Right(), o.Right());
    int nb = std::max(Bottom(), o.Bottom());
    return RectI{nx, ny, nr - nx, nb - ny};
  }

  /// Intersection-over-union; 0 for disjoint or empty rectangles.
  double Iou(const RectI& o) const {
    int64_t inter = Intersect(o).Area();
    int64_t uni = Area() + o.Area() - inter;
    return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
  }

  /// Clips this rectangle against [0,w) x [0,h).
  RectI ClipTo(int w, int h) const { return Intersect(RectI{0, 0, w, h}); }

  bool operator==(const RectI& o) const {
    return x == o.x && y == o.y && width == o.width && height == o.height;
  }

  std::string ToString() const;
};

/// Closed temporal interval of frame indices [begin, end] (both inclusive),
/// the unit of the COBRA event layer.
struct FrameInterval {
  int64_t begin = 0;
  int64_t end = -1;  ///< end < begin encodes an empty interval

  FrameInterval() = default;
  FrameInterval(int64_t b, int64_t e) : begin(b), end(e) {}

  bool Empty() const { return end < begin; }
  int64_t Length() const { return Empty() ? 0 : end - begin + 1; }

  bool Contains(int64_t frame) const { return frame >= begin && frame <= end; }

  bool Overlaps(const FrameInterval& o) const {
    return !Empty() && !o.Empty() && begin <= o.end && o.begin <= end;
  }

  FrameInterval Intersect(const FrameInterval& o) const {
    FrameInterval r{std::max(begin, o.begin), std::min(end, o.end)};
    return r;
  }

  bool operator==(const FrameInterval& o) const {
    return begin == o.begin && end == o.end;
  }

  std::string ToString() const;
};

/// Allen's thirteen interval relations, used by the COBRA event grammar
/// rules for temporal reasoning over detected intervals.
enum class AllenRelation {
  kBefore,
  kAfter,
  kMeets,
  kMetBy,
  kOverlaps,
  kOverlappedBy,
  kStarts,
  kStartedBy,
  kDuring,
  kContains,
  kFinishes,
  kFinishedBy,
  kEquals,
};

/// Computes the Allen relation of `a` with respect to `b`.
/// Requires both intervals non-empty.
AllenRelation ClassifyAllen(const FrameInterval& a, const FrameInterval& b);

/// Name of an Allen relation ("before", "meets", ...).
const char* AllenRelationToString(AllenRelation rel);

}  // namespace cobra
