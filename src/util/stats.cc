#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cobra {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string PrecisionRecall::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "P=%.3f R=%.3f F1=%.3f (tp=%lld fp=%lld fn=%lld)",
                Precision(), Recall(), F1(),
                static_cast<long long>(true_positives),
                static_cast<long long>(false_positives),
                static_cast<long long>(false_negatives));
  return buf;
}

int64_t ConfusionMatrix::Total() const {
  int64_t t = 0;
  for (int64_t c : cells_) t += c;
  return t;
}

double ConfusionMatrix::Accuracy() const {
  int64_t total = Total();
  if (total == 0) return 0.0;
  int64_t diag = 0;
  for (size_t i = 0; i < n_; ++i) diag += At(i, i);
  return static_cast<double>(diag) / static_cast<double>(total);
}

double ConfusionMatrix::ClassPrecision(size_t cls) const {
  int64_t col = 0;
  for (size_t t = 0; t < n_; ++t) col += At(t, cls);
  return col ? static_cast<double>(At(cls, cls)) / static_cast<double>(col) : 0.0;
}

double ConfusionMatrix::ClassRecall(size_t cls) const {
  int64_t row = 0;
  for (size_t p = 0; p < n_; ++p) row += At(cls, p);
  return row ? static_cast<double>(At(cls, cls)) / static_cast<double>(row) : 0.0;
}

std::string ConfusionMatrix::ToString(
    const std::vector<std::string>& class_names) const {
  std::string out = "truth \\ predicted";
  for (const auto& name : class_names) {
    out += "\t";
    out += name;
  }
  out += "\n";
  for (size_t t = 0; t < n_; ++t) {
    out += class_names[t];
    for (size_t p = 0; p < n_; ++p) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "\t%lld", static_cast<long long>(At(t, p)));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

PrecisionRecall MatchWithTolerance(const std::vector<int64_t>& truth,
                                   const std::vector<int64_t>& detected,
                                   int64_t tolerance) {
  std::vector<int64_t> t = truth, d = detected;
  std::sort(t.begin(), t.end());
  std::sort(d.begin(), d.end());
  std::vector<bool> truth_used(t.size(), false);
  PrecisionRecall pr;
  for (int64_t det : d) {
    // Find the closest unused truth position within tolerance.
    int64_t best_dist = tolerance + 1;
    size_t best_idx = t.size();
    for (size_t i = 0; i < t.size(); ++i) {
      if (truth_used[i]) continue;
      int64_t dist = std::llabs(t[i] - det);
      if (dist < best_dist) {
        best_dist = dist;
        best_idx = i;
      }
    }
    if (best_idx < t.size()) {
      truth_used[best_idx] = true;
      pr.true_positives++;
    } else {
      pr.false_positives++;
    }
  }
  for (bool used : truth_used) {
    if (!used) pr.false_negatives++;
  }
  return pr;
}

}  // namespace cobra
